// Quickstart: one supplier, one consumer, one registry — the smallest
// complete NDSM deployment.
//
// A supplier node hosts a "greeter" service and advertises it; a consumer
// node discovers it by query, binds the best match under a QoS spec, and
// calls it.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ndsm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A fabric is an in-process network; a store is an in-process registry.
	// Swap NewMemTransport for NewTCPTransport and the store for a
	// NewRegistryClient to distribute this across machines unchanged.
	fabric := ndsm.NewFabric()
	registry := ndsm.NewStore(nil, 0)

	// --- supplier side ---
	supplier, err := ndsm.NewNode(ndsm.NodeConfig{
		Name:      "greeter-host",
		Transport: ndsm.NewMemTransport(fabric),
		Registry:  registry,
	})
	if err != nil {
		return err
	}
	defer supplier.Close() //nolint:errcheck

	desc := &ndsm.Description{
		Name:        "greeter",
		Version:     "1.0",
		Reliability: 0.99,
		PowerLevel:  1,
		Attributes:  map[string]string{"lang": "en"},
	}
	err = supplier.Serve(desc, func(payload []byte) ([]byte, error) {
		return []byte(fmt.Sprintf("hello, %s!", payload)), nil
	})
	if err != nil {
		return err
	}
	fmt.Println("supplier: serving 'greeter' v1.0")

	// --- consumer side ---
	consumer, err := ndsm.NewNode(ndsm.NodeConfig{
		Name:      "client",
		Transport: ndsm.NewMemTransport(fabric),
		Registry:  registry,
	})
	if err != nil {
		return err
	}
	defer consumer.Close() //nolint:errcheck

	// The spec is both the discovery query (hard constraints) and the QoS
	// preferences used to rank matching suppliers.
	spec := &ndsm.Spec{
		Query: ndsm.Query{
			Name:        "greeter",
			MinVersion:  "1.0",
			Constraints: []ndsm.Constraint{{Attr: "lang", Op: ndsm.OpEq, Value: "en"}},
		},
	}
	binding, err := consumer.Bind(spec, ndsm.BindOptions{})
	if err != nil {
		return err
	}
	defer binding.Close() //nolint:errcheck
	fmt.Printf("consumer: bound to %s\n", binding.Peer())

	reply, err := binding.Request([]byte("world"))
	if err != nil {
		return err
	}
	fmt.Printf("consumer: got %q\n", reply)

	report := binding.Tracker().Report()
	fmt.Printf("consumer: achieved QoS — delivered=%d ratio=%.2f\n",
		report.Delivered, report.DeliveryRatio)
	return nil
}
