// Printerspool: the paper's §3.4 spatial-QoS example — "a user would like
// to print a file on the nearest and best matched printer".
//
// An office network has printers of varying reliability, capability, and
// physical location. The user demands color (a hard constraint), prefers
// nearby and reliable devices (weighted soft preferences), and the
// middleware's utility matcher picks the winner. Naive strategies — nearest
// only, most reliable only — pick worse printers; the demo prints all
// three choices. Finally the user actually prints through a binding.
//
// Run:
//
//	go run ./examples/printerspool
package main

import (
	"fmt"
	"log"
	"time"

	"ndsm"
)

// printerSpec describes one office printer.
type printerSpec struct {
	name        string
	color       bool
	ppm         int
	reliability float64
	loc         ndsm.Location
}

func officePrinters() []printerSpec {
	return []printerSpec{
		{"lobby-mono", false, 40, 0.99, ndsm.Location{X: 5, Y: 5}},       // near but monochrome
		{"desk-inkjet", true, 8, 0.60, ndsm.Location{X: 8, Y: 4}},        // nearest color, flaky
		{"copyroom-laser", true, 30, 0.95, ndsm.Location{X: 30, Y: 20}},  // the sweet spot
		{"basement-press", true, 60, 0.99, ndsm.Location{X: 180, Y: 90}}, // best specs, far away
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fabric := ndsm.NewFabric()
	registry := ndsm.NewStore(nil, 0)

	// Each printer is a supplier node hosting a "printer" service.
	for _, p := range officePrinters() {
		node, err := ndsm.NewNode(ndsm.NodeConfig{
			Name:      p.name,
			Transport: ndsm.NewMemTransport(fabric),
			Registry:  registry,
		})
		if err != nil {
			return err
		}
		defer node.Close() //nolint:errcheck
		p := p
		desc := &ndsm.Description{
			Name:        "printer",
			Reliability: p.reliability,
			PowerLevel:  1,
			Attributes: map[string]string{
				"color": fmt.Sprintf("%t", p.color),
				"ppm":   fmt.Sprintf("%d", p.ppm),
			},
			Location: &p.loc,
		}
		if err := node.Serve(desc, func(job []byte) ([]byte, error) {
			return []byte(fmt.Sprintf("printed %d bytes on %s", len(job), p.name)), nil
		}); err != nil {
			return err
		}
	}

	// The user stands near the lobby and wants a color printer, at least
	// 20 ppm, preferring nearby (60%) and reliable (40%) devices.
	user := ndsm.Location{X: 10, Y: 10}
	spec := &ndsm.Spec{
		Query: ndsm.Query{
			Name: "printer",
			Constraints: []ndsm.Constraint{
				{Attr: "color", Op: ndsm.OpEq, Value: "true"},
				{Attr: "ppm", Op: ndsm.OpGe, Value: "20"},
			},
		},
		Weights:        ndsm.Weights{Reliability: 0.4, Proximity: 0.6},
		Near:           &user,
		ProximityScale: 200,
	}

	// Show the whole ranking, then what the naive strategies would do.
	candidates, err := registry.Lookup(&ndsm.Query{Name: "printer"})
	if err != nil {
		return err
	}
	now := time.Now()
	fmt.Println("utility ranking (feasible candidates only):")
	for _, r := range ndsm.Rank(spec, candidates, now) {
		fmt.Printf("  %-16s utility=%.3f distance=%.0fm reliability=%.2f\n",
			r.Desc.Provider, r.Score, r.Desc.Location.Distance(user), r.Desc.Reliability)
	}
	fmt.Println()
	fmt.Println("what naive strategies would pick:")
	fmt.Println("  nearest-any:     lobby-mono   (can't print color at all)")
	fmt.Println("  nearest-color:   desk-inkjet  (too slow: 8 ppm < 20, fails the query)")
	fmt.Println("  most-reliable:   basement-press (180m walk)")

	// Bind and actually print.
	client, err := ndsm.NewNode(ndsm.NodeConfig{
		Name:      "laptop",
		Transport: ndsm.NewMemTransport(fabric),
		Registry:  registry,
	})
	if err != nil {
		return err
	}
	defer client.Close() //nolint:errcheck
	binding, err := client.Bind(spec, ndsm.BindOptions{})
	if err != nil {
		return err
	}
	defer binding.Close() //nolint:errcheck
	out, err := binding.Request(make([]byte, 2048))
	if err != nil {
		return err
	}
	fmt.Printf("\nmiddleware choice: %s\n-> %s\n", binding.Peer(), out)
	return nil
}
