// Healthmonitor: the paper's §3.1 running example, end to end.
//
// A blood-pressure *sensor* (service supplier) feeds a blood-pressure
// *analyzer* (consumer of the sensor, supplier of analyses), which feeds a
// *display* (consumer). Then the primary sensor crashes mid-stream and the
// middleware rebinds the analyzer to a backup sensor without the
// application noticing — §3.4's graceful degradation.
//
// Run:
//
//	go run ./examples/healthmonitor
package main

import (
	"fmt"
	"log"
	"time"

	"ndsm"
	"ndsm/sensorsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fabric := ndsm.NewFabric()
	registry := ndsm.NewStore(nil, 0)
	newNode := func(name string) (*ndsm.Node, error) {
		return ndsm.NewNode(ndsm.NodeConfig{
			Name:      name,
			Transport: ndsm.NewMemTransport(fabric),
			Registry:  registry,
		})
	}

	// --- two blood-pressure sensors: a good primary and a weaker backup ---
	sensorNode := func(name string, reliability float64, seed int64) (*ndsm.Node, error) {
		n, err := newNode(name)
		if err != nil {
			return nil, err
		}
		gen := sensorsim.BloodPressure(seed)
		desc := &ndsm.Description{
			Name:        "sensor/bloodpressure",
			Reliability: reliability,
			PowerLevel:  1,
			Attributes:  map[string]string{"unit": "mmHg"},
		}
		if err := n.Serve(desc, func([]byte) ([]byte, error) {
			return gen.Next().Encode(), nil
		}); err != nil {
			return nil, err
		}
		return n, nil
	}
	primary, err := sensorNode("bp-primary", 0.99, 1)
	if err != nil {
		return err
	}
	defer primary.Close() //nolint:errcheck
	backup, err := sensorNode("bp-backup", 0.80, 2)
	if err != nil {
		return err
	}
	defer backup.Close() //nolint:errcheck

	// --- the analyzer: consumer of the sensor, supplier of analyses ---
	analyzer, err := newNode("bp-analyzer")
	if err != nil {
		return err
	}
	defer analyzer.Close() //nolint:errcheck

	sensorBinding, err := analyzer.Bind(&ndsm.Spec{
		Query:   ndsm.Query{Name: "sensor/bloodpressure"},
		Benefit: ndsm.Benefit{FullUntil: 100 * time.Millisecond, ZeroAfter: 500 * time.Millisecond},
		Weights: ndsm.Weights{Reliability: 1},
	}, ndsm.BindOptions{})
	if err != nil {
		return err
	}
	defer sensorBinding.Close() //nolint:errcheck
	fmt.Printf("analyzer: reading from %s\n", sensorBinding.Peer())

	classifier := sensorsim.Classifier{Low: 90, High: 140}
	analysisDesc := &ndsm.Description{
		Name:        "analysis/bloodpressure",
		Reliability: 0.95,
		PowerLevel:  1,
	}
	err = analyzer.Serve(analysisDesc, func([]byte) ([]byte, error) {
		raw, err := sensorBinding.Request([]byte("read"))
		if err != nil {
			return nil, err
		}
		reading, err := sensorsim.DecodeReading(raw)
		if err != nil {
			return nil, err
		}
		verdict := classifier.Classify(reading)
		return []byte(fmt.Sprintf("%s -> %s (via %s)", reading, verdict, sensorBinding.Peer())), nil
	})
	if err != nil {
		return err
	}

	// --- the display: plain consumer of the analysis ---
	display, err := newNode("ward-display")
	if err != nil {
		return err
	}
	defer display.Close() //nolint:errcheck
	analysisBinding, err := display.Bind(&ndsm.Spec{
		Query: ndsm.Query{Name: "analysis/bloodpressure"},
	}, ndsm.BindOptions{})
	if err != nil {
		return err
	}
	defer analysisBinding.Close() //nolint:errcheck

	show := func(n int) error {
		for i := 0; i < n; i++ {
			out, err := analysisBinding.Request(nil)
			if err != nil {
				return err
			}
			fmt.Printf("display: %s\n", out)
		}
		return nil
	}
	if err := show(3); err != nil {
		return err
	}

	// --- the primary sensor crashes ---
	fmt.Println("\n!! primary sensor crashes !!")
	primaryDesc := &ndsm.Description{Name: "sensor/bloodpressure", Provider: "bp-primary"}
	if err := registry.Unregister(primaryDesc.Key()); err != nil {
		return err
	}
	if err := primary.Close(); err != nil {
		return err
	}

	// The analyzer's next read fails over to the backup transparently; the
	// display never sees an error.
	if err := show(3); err != nil {
		return err
	}
	fmt.Printf("\nanalyzer: rebinds performed = %d (now on %s)\n",
		sensorBinding.Rebinds.Load(), sensorBinding.Peer())
	rep := sensorBinding.Tracker().Report()
	fmt.Printf("analyzer: achieved QoS on current binding — delivered=%d failed=%d\n",
		rep.Delivered, rep.Failed)
	return nil
}
