// Sensornet: MiLAN (§4 of the paper) configuring a simulated wireless
// sensor network.
//
// A patient-monitoring application declares, per application state, the QoS
// it needs for each variable (blood pressure, heart rate); eight battery-
// powered sensors declare what they can contribute. MiLAN selects, round by
// round, the feasible sensor set that maximizes network lifetime, rotating
// sets as batteries drain — and the network outlives the all-sensors-on
// baseline by a wide margin. A mid-run switch to the "emergency" state shows
// requirements-driven reconfiguration.
//
// Run:
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"
	"sort"

	"ndsm/milan"
	"ndsm/simnet"
)

const (
	varBP milan.Variable = "blood-pressure"
	varHR milan.Variable = "heart-rate"

	stNormal    milan.State = "normal"
	stEmergency milan.State = "emergency"
)

// buildSystem declares the application QoS graph and the sensor inventory.
func buildSystem() *milan.System {
	sys := &milan.System{
		App: milan.AppSpec{
			Variables: []milan.Variable{varBP, varHR},
			Required: map[milan.State]map[milan.Variable]float64{
				stNormal:    {varBP: 0.7, varHR: 0.7},
				stEmergency: {varBP: 0.95, varHR: 0.9},
			},
		},
		Sink:    "basestation",
		SinkPos: simnet.Position{X: 0, Y: 0},
		Range:   30,
	}
	// Four BP sensors and four HR sensors of varying individual quality.
	qualities := []float64{0.85, 0.80, 0.75, 0.72}
	for i, q := range qualities {
		sys.Sensors = append(sys.Sensors,
			milan.Sensor{
				Node:        simnet.NodeID(fmt.Sprintf("bp-%d", i)),
				QoS:         map[milan.Variable]float64{varBP: q},
				SampleBytes: 100,
			},
			milan.Sensor{
				Node:        simnet.NodeID(fmt.Sprintf("hr-%d", i)),
				QoS:         map[milan.Variable]float64{varHR: q},
				SampleBytes: 100,
			})
	}
	return sys
}

// buildField places the sensors on the radio field with small batteries so
// lifetimes stay demo-sized.
func buildField(sys *milan.System) (*simnet.Network, error) {
	net := simnet.New(simnet.Config{Range: sys.Range})
	if err := net.AddNodeEnergy(sys.Sink, sys.SinkPos, 1e6); err != nil {
		return nil, err
	}
	for i, sn := range sys.Sensors {
		pos := simnet.Position{X: 8 + float64(i%4)*4, Y: float64(i) * 2}
		if err := net.AddNodeEnergy(sn.Node, pos, 0.01); err != nil {
			return nil, err
		}
	}
	return net, nil
}

func lifetimeWith(selector milan.Selector) (int, milan.Stats, error) {
	sys := buildSystem()
	net, err := buildField(sys)
	if err != nil {
		return 0, milan.Stats{}, err
	}
	defer net.Close()
	mgr, err := milan.NewManager(sys, net, selector, stNormal)
	if err != nil {
		return 0, milan.Stats{}, err
	}
	life, err := mgr.Run(10_000_000)
	return life, mgr.Stats(), err
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- the headline comparison ---
	fmt.Println("network lifetime (reporting rounds until the app's QoS is infeasible):")
	for _, sel := range []milan.Selector{milan.AllSensors{}, milan.Greedy{}, milan.Exhaustive{}} {
		life, stats, err := lifetimeWith(sel)
		if err != nil {
			return err
		}
		fmt.Printf("  %-18s lifetime=%-6d reconfigs=%-3d samples delivered=%d\n",
			sel.Name(), life, stats.Reconfigs, stats.Delivered)
	}

	// --- state-driven reconfiguration ---
	sys := buildSystem()
	net, err := buildField(sys)
	if err != nil {
		return err
	}
	defer net.Close()
	mgr, err := milan.NewManager(sys, net, milan.Exhaustive{}, stNormal)
	if err != nil {
		return err
	}
	fmt.Printf("\nstate %q: active sensors = %v\n", stNormal, mgr.Active())
	if err := mgr.SetState(stEmergency); err != nil {
		return err
	}
	fmt.Printf("state %q: active sensors = %v\n", stEmergency, mgr.Active())
	fmt.Println("  (emergency QoS forces redundant sensors on: combined quality")
	fmt.Println("   1-(1-q1)(1-q2)... must reach 0.95 for BP and 0.90 for HR)")

	// --- network roles: MiLAN's configuration output (§4) ---
	fmt.Println("\nnetwork configuration (roles):")
	byRole := map[milan.Role][]string{}
	for node, role := range mgr.Roles() {
		byRole[role] = append(byRole[role], string(node))
	}
	for _, role := range []milan.Role{milan.RoleSink, milan.RoleSource, milan.RoleRouter, milan.RoleSleeper} {
		nodes := byRole[role]
		sort.Strings(nodes)
		fmt.Printf("  %-8s %v\n", role, nodes)
	}
	return nil
}
