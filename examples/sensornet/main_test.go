package main

import (
	"os"
	"testing"
	"time"
)

// TestRun smokes the whole example in-process: it must finish well inside
// the deadline and exit cleanly, like the binary would.
func TestRun(t *testing.T) {
	// The example narrates to stdout; silence it so test output stays clean.
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close() //nolint:errcheck
	}()

	done := make(chan error, 1)
	go func() { done <- run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("example did not finish within 60s")
	}
}
