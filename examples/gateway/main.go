// Gateway: the paper's interoperability feature (§3.9) — bridging two
// middleware domains the way the surveyed CORBA–DCE bridges did.
//
// A hospital domain hosts vitals services; a separate clinic domain cannot
// reach them directly (different fabrics — different networks). A gateway
// accepts connections in the clinic domain and forwards them into the
// hospital, rewriting topics across the naming boundary (the clinic says
// "partner/vitals/bp", the hospital serves "vitals/bp"), tagging messages
// with their origin domain, and filtering out the hospital's private
// services.
//
// Run:
//
//	go run ./examples/gateway
package main

import (
	"fmt"
	"log"
	"time"

	"ndsm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two isolated domains: separate fabrics, separate registries.
	hospitalNet := ndsm.NewFabric()
	clinicNet := ndsm.NewFabric()
	hospitalReg := ndsm.NewStore(nil, 0)

	// --- hospital domain: a vitals service and a private admin service ---
	hospital, err := ndsm.NewNode(ndsm.NodeConfig{
		Name:      "vitals-server",
		Transport: ndsm.NewMemTransport(hospitalNet),
		Registry:  hospitalReg,
	})
	if err != nil {
		return err
	}
	defer hospital.Close() //nolint:errcheck
	err = hospital.Serve(&ndsm.Description{Name: "vitals/bp", Reliability: 0.95, PowerLevel: 1},
		func(p []byte) ([]byte, error) {
			return []byte(fmt.Sprintf("bp-reading for %q", p)), nil
		})
	if err != nil {
		return err
	}
	err = hospital.Serve(&ndsm.Description{Name: "private/admin", Reliability: 1, PowerLevel: 1},
		func([]byte) ([]byte, error) { return []byte("secret"), nil })
	if err != nil {
		return err
	}

	// --- the gateway: listens in the clinic, dials into the hospital ---
	clinicSide := ndsm.NewMemTransport(clinicNet)
	gwListener, err := clinicSide.Listen("hospital-gateway")
	if err != nil {
		return err
	}
	hospitalSide := ndsm.NewMemTransport(hospitalNet)
	gw, err := ndsm.NewGateway(ndsm.GatewayConfig{
		Listener: gwListener,
		Dial:     func() (ndsm.Conn, error) { return hospitalSide.Dial("vitals-server") },
		AtoB: []ndsm.Rule{
			ndsm.DropTopicRule("partner/private/"),             // never export these
			ndsm.TopicPrefixRule("partner/vitals/", "vitals/"), // clinic name -> hospital name
			ndsm.HeaderRule("origin-domain", "clinic"),         // provenance
		},
	})
	if err != nil {
		return err
	}
	defer gw.Close() //nolint:errcheck

	// --- clinic side: talk to the hospital service through the gateway ---
	conn, err := clinicSide.Dial("hospital-gateway")
	if err != nil {
		return err
	}
	defer conn.Close() //nolint:errcheck

	call := func(topic string) {
		if err := conn.Send(&ndsm.Message{
			ID: 1, Kind: 1 /* request */, Topic: topic, Payload: []byte("patient-12"),
		}); err != nil {
			fmt.Printf("clinic -> %-24s send error: %v\n", topic, err)
			return
		}
		reply, err := conn.Recv()
		if err != nil {
			fmt.Printf("clinic -> %-24s no reply (%v)\n", topic, err)
			return
		}
		fmt.Printf("clinic -> %-24s reply: %s\n", topic, reply.Payload)
	}

	call("partner/vitals/bp")
	ab, ba := gw.Forwarded()
	fmt.Printf("\ngateway: forwarded %d clinic->hospital, %d hospital->clinic\n", ab, ba)

	// Filtered topics never cross.
	if err := conn.Send(&ndsm.Message{ID: 2, Kind: 1, Topic: "partner/private/admin"}); err != nil {
		return err
	}
	// (no reply will come — the rule dropped it)
	fmt.Printf("gateway: dropped so far = %d (private topic filtered)\n", waitDropped(gw))
	return nil
}

// waitDropped polls briefly until the gateway registers the filtered
// message.
func waitDropped(gw *ndsm.Gateway) int64 {
	for i := 0; i < 200; i++ {
		if n := gw.Dropped(); n > 0 {
			return n
		}
		time.Sleep(5 * time.Millisecond)
	}
	return gw.Dropped()
}
