package interop

import (
	"testing"
	"time"

	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

func sample() *wire.Message {
	return &wire.Message{
		ID:       7,
		Kind:     wire.KindRequest,
		Src:      "a",
		Dst:      "b",
		Topic:    "bp/read",
		Priority: 2,
		Headers:  map[string]string{"k": "v"},
		Payload:  []byte("data"),
	}
}

func TestTranscodeAllPairs(t *testing.T) {
	codecs := []wire.Codec{wire.Binary{}, wire.XML{}, wire.JSON{}}
	m := sample()
	for _, from := range codecs {
		for _, to := range codecs {
			data, err := from.Encode(m)
			if err != nil {
				t.Fatal(err)
			}
			out, err := Transcode(data, from, to)
			if err != nil {
				t.Fatalf("%s -> %s: %v", from.Name(), to.Name(), err)
			}
			got, err := to.Decode(out)
			if err != nil {
				t.Fatalf("%s decode: %v", to.Name(), err)
			}
			if !m.Equal(got) {
				t.Fatalf("%s -> %s lost information", from.Name(), to.Name())
			}
		}
	}
}

func TestTranscodeGarbage(t *testing.T) {
	if _, err := Transcode([]byte("junk"), wire.Binary{}, wire.JSON{}); err == nil {
		t.Fatal("garbage transcoded")
	}
}

func TestTopicPrefixRule(t *testing.T) {
	rule := TopicPrefixRule("bp/", "vitals/bp/")
	m := sample()
	m = rule(m)
	if m.Topic != "vitals/bp/read" {
		t.Fatalf("topic = %q", m.Topic)
	}
	m.Topic = "other/x"
	m = rule(m)
	if m.Topic != "other/x" {
		t.Fatalf("non-matching topic rewritten: %q", m.Topic)
	}
}

func TestHeaderRule(t *testing.T) {
	rule := HeaderRule("origin", "domain-a")
	m := &wire.Message{Kind: wire.KindData}
	m = rule(m)
	if m.Headers["origin"] != "domain-a" {
		t.Fatalf("headers = %v", m.Headers)
	}
}

func TestDropTopicRule(t *testing.T) {
	rule := DropTopicRule("private/")
	if rule(&wire.Message{Kind: wire.KindData, Topic: "private/secret"}) != nil {
		t.Fatal("private topic not dropped")
	}
	if rule(&wire.Message{Kind: wire.KindData, Topic: "public/x"}) == nil {
		t.Fatal("public topic dropped")
	}
}

// gatewayFixture bridges domain A (one fabric) to domain B (another
// fabric) where an echo server lives.
func gatewayFixture(t *testing.T, cfgRules func(*GatewayConfig)) (*Gateway, transport.Transport) {
	t.Helper()
	fabricA := transport.NewFabric()
	fabricB := transport.NewFabric()
	trA := transport.NewMem(fabricA)
	trB := transport.NewMem(fabricB)
	t.Cleanup(func() { _ = trA.Close(); _ = trB.Close() })

	// Domain B: echo server.
	lB, err := trB.Listen("service-b")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := lB.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					m, err := conn.Recv()
					if err != nil {
						return
					}
					reply := &wire.Message{ID: 1000 + m.ID, Kind: wire.KindReply, Corr: m.ID, Topic: m.Topic, Payload: m.Payload}
					if err := conn.Send(reply); err != nil {
						return
					}
				}
			}()
		}
	}()

	// Gateway listens in domain A, dials domain B.
	lA, err := trA.Listen("gateway")
	if err != nil {
		t.Fatal(err)
	}
	cfg := GatewayConfig{
		Listener: lA,
		Dial:     func() (transport.Conn, error) { return trB.Dial("service-b") },
	}
	if cfgRules != nil {
		cfgRules(&cfg)
	}
	gw, err := NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = gw.Close() })
	return gw, trA
}

func callThrough(t *testing.T, trA transport.Transport, topic string) *wire.Message {
	t.Helper()
	conn, err := trA.Dial("gateway")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if err := conn.Send(&wire.Message{ID: 1, Kind: wire.KindRequest, Topic: topic, Payload: []byte("ping")}); err != nil {
		t.Fatal(err)
	}
	type result struct {
		m   *wire.Message
		err error
	}
	ch := make(chan result, 1)
	go func() {
		m, err := conn.Recv()
		ch <- result{m, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		return r.m
	case <-time.After(5 * time.Second):
		t.Fatal("no reply through gateway")
		return nil
	}
}

func TestGatewayBridgesDomains(t *testing.T) {
	gw, trA := gatewayFixture(t, nil)
	reply := callThrough(t, trA, "svc/echo")
	if reply.Kind != wire.KindReply || string(reply.Payload) != "ping" {
		t.Fatalf("reply = %+v", reply)
	}
	ab, ba := gw.Forwarded()
	if ab != 1 || ba != 1 {
		t.Fatalf("forwarded = %d/%d", ab, ba)
	}
}

func TestGatewayAppliesRules(t *testing.T) {
	_, trA := gatewayFixture(t, func(cfg *GatewayConfig) {
		cfg.AtoB = []Rule{TopicPrefixRule("bp/", "vitals/bp/"), HeaderRule("via", "gw")}
	})
	reply := callThrough(t, trA, "bp/read")
	// The echo server saw the rewritten topic.
	if reply.Topic != "vitals/bp/read" {
		t.Fatalf("topic = %q", reply.Topic)
	}
}

func TestGatewayDropsFiltered(t *testing.T) {
	gw, trA := gatewayFixture(t, func(cfg *GatewayConfig) {
		cfg.AtoB = []Rule{DropTopicRule("private/")}
	})
	conn, err := trA.Dial("gateway")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(&wire.Message{ID: 1, Kind: wire.KindRequest, Topic: "private/x"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for gw.Dropped() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("message not dropped")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestGatewayCloseIdempotent(t *testing.T) {
	gw, _ := gatewayFixture(t, nil)
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestGatewayDialFailureClosesClient(t *testing.T) {
	fabricA := transport.NewFabric()
	trA := transport.NewMem(fabricA)
	t.Cleanup(func() { _ = trA.Close() })
	lA, err := trA.Listen("gw")
	if err != nil {
		t.Fatal(err)
	}
	gw, err := NewGateway(GatewayConfig{
		Listener: lA,
		Dial: func() (transport.Conn, error) {
			return nil, transport.ErrConnectRefused
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = gw.Close() })
	conn, err := trA.Dial("gw")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The gateway cannot reach domain B; our connection must be closed.
	done := make(chan error, 1)
	go func() {
		_, err := conn.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected closed connection")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client connection left dangling")
	}
}

func TestNewGatewayValidation(t *testing.T) {
	if _, err := NewGateway(GatewayConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
