// Package interop implements the paper's interoperability feature (§3.9):
// connecting middleware domains that differ in encoding and naming, the way
// the surveyed CORBA–DCE bridges [17] and XML-based integrations [76] did.
//
// Two mechanisms ship:
//
//   - Transcode: re-encode a serialized message from one codec to another
//     (binary ↔ XML ↔ JSON) without touching its semantics,
//   - Gateway: a live bridge between two domains — it accepts connections in
//     one domain, dials the other, and forwards messages both ways while
//     applying mapping rules (topic renames, header injection) that absorb
//     naming differences between the domains.
package interop

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// Transcode re-encodes a serialized message from one codec to another. The
// decoded envelope is identical; only the representation changes.
func Transcode(data []byte, from, to wire.Codec) ([]byte, error) {
	m, err := from.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("interop: decode %s: %w", from.Name(), err)
	}
	out, err := to.Encode(m)
	if err != nil {
		return nil, fmt.Errorf("interop: encode %s: %w", to.Name(), err)
	}
	return out, nil
}

// Rule rewrites a message crossing the gateway. Returning nil drops the
// message (filtering).
type Rule func(m *wire.Message) *wire.Message

// TopicPrefixRule maps a topic prefix to another prefix ("bp/" -> "vitals/bp/"),
// leaving non-matching topics untouched.
func TopicPrefixRule(fromPrefix, toPrefix string) Rule {
	return func(m *wire.Message) *wire.Message {
		if strings.HasPrefix(m.Topic, fromPrefix) {
			m.Topic = toPrefix + strings.TrimPrefix(m.Topic, fromPrefix)
		}
		return m
	}
}

// HeaderRule injects a header on every crossing message (e.g. marking the
// origin domain).
func HeaderRule(key, value string) Rule {
	return func(m *wire.Message) *wire.Message {
		if m.Headers == nil {
			m.Headers = make(map[string]string, 1)
		}
		m.Headers[key] = value
		return m
	}
}

// DropTopicRule filters out messages whose topic matches the prefix —
// domains rarely want to export everything.
func DropTopicRule(prefix string) Rule {
	return func(m *wire.Message) *wire.Message {
		if strings.HasPrefix(m.Topic, prefix) {
			return nil
		}
		return m
	}
}

// GatewayConfig wires a gateway between two domains.
type GatewayConfig struct {
	// Listener accepts connections from domain A.
	Listener transport.Listener
	// Dial opens a connection into domain B for each accepted A-side
	// connection.
	Dial func() (transport.Conn, error)
	// AtoB rules apply to messages flowing A→B; BtoA to the reverse
	// direction. Either may be empty.
	AtoB []Rule
	BtoA []Rule
}

// Gateway bridges two middleware domains.
type Gateway struct {
	cfg GatewayConfig

	mu     sync.Mutex
	conns  map[transport.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Forwarded counts messages relayed per direction; Droppedcounts
	// messages filtered by rules.
	forwardedAB atomic.Int64
	forwardedBA atomic.Int64
	dropped     atomic.Int64
}

// ErrGatewayClosed reports use after Close.
var ErrGatewayClosed = errors.New("interop: gateway closed")

// NewGateway starts bridging.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if cfg.Listener == nil || cfg.Dial == nil {
		return nil, errors.New("interop: gateway needs Listener and Dial")
	}
	g := &Gateway{cfg: cfg, conns: make(map[transport.Conn]struct{})}
	g.wg.Add(1)
	go g.acceptLoop()
	return g, nil
}

// Forwarded reports messages relayed in each direction.
func (g *Gateway) Forwarded() (aToB, bToA int64) {
	return g.forwardedAB.Load(), g.forwardedBA.Load()
}

// Dropped reports messages filtered by rules.
func (g *Gateway) Dropped() int64 { return g.dropped.Load() }

// Close stops the gateway and all bridged connections.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	conns := make([]transport.Conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	_ = g.cfg.Listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	g.wg.Wait()
	return nil
}

func (g *Gateway) track(c transport.Conn) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false
	}
	g.conns[c] = struct{}{}
	return true
}

func (g *Gateway) untrack(c transport.Conn) {
	g.mu.Lock()
	delete(g.conns, c)
	g.mu.Unlock()
}

func (g *Gateway) acceptLoop() {
	defer g.wg.Done()
	for {
		aConn, err := g.cfg.Listener.Accept()
		if err != nil {
			return
		}
		bConn, err := g.cfg.Dial()
		if err != nil {
			_ = aConn.Close()
			continue
		}
		if !g.track(aConn) || !g.track(bConn) {
			_ = aConn.Close()
			_ = bConn.Close()
			return
		}
		g.wg.Add(2)
		go g.pump(aConn, bConn, g.cfg.AtoB, &g.forwardedAB)
		go g.pump(bConn, aConn, g.cfg.BtoA, &g.forwardedBA)
	}
}

// pump copies messages src→dst applying rules; it tears both sides down on
// the first error so the peer notices the bridge is gone.
func (g *Gateway) pump(src, dst transport.Conn, rules []Rule, counter *atomic.Int64) {
	defer g.wg.Done()
	defer func() {
		_ = src.Close()
		_ = dst.Close()
		g.untrack(src)
		g.untrack(dst)
	}()
	for {
		m, err := src.Recv()
		if err != nil {
			return
		}
		for _, rule := range rules {
			m = rule(m)
			if m == nil {
				break
			}
		}
		if m == nil {
			g.dropped.Add(1)
			continue
		}
		if err := dst.Send(m); err != nil {
			return
		}
		counter.Add(1)
	}
}
