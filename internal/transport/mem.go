package transport

import (
	"fmt"
	"sync"

	"ndsm/internal/wire"
)

// memConnBuffer is the per-direction queue depth of an in-memory connection.
// It is deliberately small so back-pressure resembles a socket send buffer.
const memConnBuffer = 64

// Fabric is a process-wide switchboard connecting mem transports to each
// other. Multiple MemTransports sharing a Fabric can dial one another by
// address; separate Fabrics are fully isolated (useful to model separate
// networks in tests).
type Fabric struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	closed    bool
}

// NewFabric returns an empty switchboard.
func NewFabric() *Fabric {
	return &Fabric{listeners: make(map[string]*memListener)}
}

// Mem is the in-process Transport implementation.
type Mem struct {
	fabric *Fabric

	mu        sync.Mutex
	closed    bool
	listeners []*memListener
	conns     []*memConn
}

var _ Transport = (*Mem)(nil)

// NewMem returns a mem transport attached to the fabric.
func NewMem(fabric *Fabric) *Mem {
	return &Mem{fabric: fabric}
}

// Name implements Transport.
func (t *Mem) Name() string { return "mem" }

// Listen implements Transport.
func (t *Mem) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	t.mu.Unlock()

	l := &memListener{
		addr:    addr,
		fabric:  t.fabric,
		backlog: make(chan *memConn, 16),
		done:    make(chan struct{}),
	}
	t.fabric.mu.Lock()
	if t.fabric.closed {
		t.fabric.mu.Unlock()
		return nil, ErrClosed
	}
	if _, busy := t.fabric.listeners[addr]; busy {
		t.fabric.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	t.fabric.listeners[addr] = l
	t.fabric.mu.Unlock()

	t.mu.Lock()
	t.listeners = append(t.listeners, l)
	t.mu.Unlock()
	return l, nil
}

// Dial implements Transport.
func (t *Mem) Dial(addr string) (Conn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	t.mu.Unlock()

	t.fabric.mu.Lock()
	l, ok := t.fabric.listeners[addr]
	t.fabric.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrConnectRefused, addr)
	}

	client, server := newMemPair("dial:"+addr, addr)
	if !l.enqueue(server) {
		return nil, fmt.Errorf("%w: %s", ErrConnectRefused, addr)
	}
	t.mu.Lock()
	t.conns = append(t.conns, client)
	t.mu.Unlock()
	return client, nil
}

// Close implements Transport.
func (t *Mem) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	listeners := t.listeners
	conns := t.conns
	t.mu.Unlock()
	for _, l := range listeners {
		_ = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	return nil
}

type memListener struct {
	addr    string
	fabric  *Fabric
	backlog chan *memConn

	mu     sync.Mutex
	closed bool

	closeOnce sync.Once
	done      chan struct{}
}

// enqueue hands a freshly dialed server-side conn to the listener. The mutex
// makes enqueue-vs-close atomic, so a conn can never be stranded in the
// backlog of a closed listener (which would leave the dialer's side open
// forever with nobody serving it).
func (l *memListener) enqueue(c *memConn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	select {
	case l.backlog <- c:
		return true
	default:
		return false // backlog full: refuse
	}
}

func (l *memListener) Accept() (Conn, error) {
	// Drain any backlog left from before Close; only then report closed.
	select {
	case c := <-l.backlog:
		return c, nil
	default:
	}
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *memListener) Addr() string { return l.addr }

func (l *memListener) Close() error {
	l.closeOnce.Do(func() {
		l.mu.Lock()
		l.closed = true
		// Reject conns nobody will ever accept.
		for {
			select {
			case c := <-l.backlog:
				_ = c.Close()
			default:
				l.mu.Unlock()
				close(l.done)
				l.fabric.mu.Lock()
				if l.fabric.listeners[l.addr] == l {
					delete(l.fabric.listeners, l.addr)
				}
				l.fabric.mu.Unlock()
				return
			}
		}
	})
	return nil
}

// memConn is one side of an in-memory duplex pipe.
type memConn struct {
	local  string
	remote string
	out    chan *wire.Message
	in     chan *wire.Message

	closeOnce  sync.Once
	closed     chan struct{}   // this side closed
	peerClosed <-chan struct{} // other side closed
}

// newMemPair builds both ends of a pipe. a is the dialer end.
func newMemPair(dialerAddr, listenerAddr string) (dialer, listener *memConn) {
	ab := make(chan *wire.Message, memConnBuffer)
	ba := make(chan *wire.Message, memConnBuffer)
	aClosed := make(chan struct{})
	bClosed := make(chan struct{})
	dialer = &memConn{
		local: dialerAddr, remote: listenerAddr,
		out: ab, in: ba,
		closed: aClosed, peerClosed: bClosed,
	}
	listener = &memConn{
		local: listenerAddr, remote: dialerAddr,
		out: ba, in: ab,
		closed: bClosed, peerClosed: aClosed,
	}
	return dialer, listener
}

func (c *memConn) Send(m *wire.Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	// Clone so sender-side mutation after Send doesn't race the receiver;
	// a real network would have serialized the bytes already.
	m = m.Clone()
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peerClosed:
		return ErrClosed
	case c.out <- m:
		return nil
	}
}

func (c *memConn) Recv() (*wire.Message, error) {
	select {
	case m := <-c.in:
		return m, nil
	case <-c.closed:
		// Drain anything already queued before reporting close.
		select {
		case m := <-c.in:
			return m, nil
		default:
			return nil, ErrClosed
		}
	case <-c.peerClosed:
		select {
		case m := <-c.in:
			return m, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *memConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

func (c *memConn) LocalAddr() string  { return c.local }
func (c *memConn) RemoteAddr() string { return c.remote }
