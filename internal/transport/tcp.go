package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"ndsm/internal/wire"
)

// TCP is the wireline Transport over stdlib net. Messages are framed as in
// wire.AppendFrame (length prefix + content-type tag + CRC32), so a single
// connection can interleave codecs; this transport encodes with the codec
// given at construction and decodes whatever tag each inbound frame carries.
//
// The send path coalesces: concurrent senders share a wire.BatchWriter, so
// under load many frames leave in one syscall, and a steady-state send
// allocates nothing. The receive path reads through a wire.FrameReader,
// slicing a batch apart out of one buffered read.
type TCP struct {
	codec wire.Codec

	mu        sync.Mutex
	closed    bool
	listeners []net.Listener
	conns     []*tcpConn
}

var _ Transport = (*TCP)(nil)

// NewTCP returns a TCP transport encoding outbound messages with codec
// (Binary if nil).
func NewTCP(codec wire.Codec) *TCP {
	if codec == nil {
		codec = wire.Binary{}
	}
	return &TCP{codec: codec}
}

// Name implements Transport.
func (t *TCP) Name() string { return "tcp" }

// Listen implements Transport. Use "127.0.0.1:0" to get an ephemeral port;
// the listener's Addr reports the bound address.
func (t *TCP) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	t.mu.Unlock()

	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: tcp listen %s: %w", addr, err)
	}
	t.mu.Lock()
	t.listeners = append(t.listeners, nl)
	t.mu.Unlock()
	return &tcpListener{t: t, nl: nl}, nil
}

// Dial implements Transport.
func (t *TCP) Dial(addr string) (Conn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	t.mu.Unlock()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrConnectRefused, addr, err)
	}
	return t.wrap(nc), nil
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	listeners := t.listeners
	conns := t.conns
	t.mu.Unlock()
	for _, l := range listeners {
		_ = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	return nil
}

func (t *TCP) wrap(nc net.Conn) *tcpConn {
	c := &tcpConn{
		nc: nc,
		fr: wire.NewFrameReader(nc),
		bw: wire.NewBatchWriter(nc, t.codec),
	}
	t.mu.Lock()
	t.conns = append(t.conns, c)
	t.mu.Unlock()
	return c
}

type tcpListener struct {
	t  *TCP
	nl net.Listener
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("transport: tcp accept: %w", err)
	}
	return l.t.wrap(nc), nil
}

func (l *tcpListener) Addr() string { return l.nl.Addr().String() }

func (l *tcpListener) Close() error { return l.nl.Close() }

type tcpConn struct {
	nc net.Conn
	fr *wire.FrameReader
	bw *wire.BatchWriter

	closeOnce sync.Once
	closeErr  error
}

func (c *tcpConn) Send(m *wire.Message) error {
	if err := c.bw.Send(m); err != nil {
		if errors.Is(err, net.ErrClosed) {
			return ErrClosed
		}
		return fmt.Errorf("transport: tcp send: %w", err)
	}
	return nil
}

func (c *tcpConn) Recv() (*wire.Message, error) {
	m, err := c.fr.ReadMessage()
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	return m, nil
}

func (c *tcpConn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.nc.Close() })
	return c.closeErr
}

func (c *tcpConn) LocalAddr() string  { return c.nc.LocalAddr().String() }
func (c *tcpConn) RemoteAddr() string { return c.nc.RemoteAddr().String() }
