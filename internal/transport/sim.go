package transport

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ndsm/internal/netsim"
	"ndsm/internal/wire"
)

// DatagramService is the single-hop (or, with a router in front, multi-hop)
// datagram substrate the sim transport runs over. *netsim.Network satisfies
// it directly; internal/routing wraps it with multi-hop forwarding while
// keeping the same shape.
type DatagramService interface {
	Send(from, to netsim.NodeID, data []byte) error
	Recv(id netsim.NodeID) (<-chan netsim.Packet, error)
}

var _ DatagramService = (*netsim.Network)(nil)

// ProtoSim is the first byte of every sim-transport datagram (the magic
// byte). A netmux channel registered on this byte receives exactly the sim
// transport's traffic, which lets the transport share one radio with other
// protocol agents (routing, distributed discovery).
const ProtoSim byte = simMagic

// Sim datagram header: [magic][8-byte conn id][flag], then the encoded
// message for data frames.
const (
	simMagic    = 0xC7
	simHdrLen   = 10
	simFlagData = 1
	simFlagFin  = 2
	// simFlagBatch marks a datagram carrying several coalesced messages as
	// length-prefixed sub-frames: [4-byte big-endian len][encoded message]
	// repeated. Sent only when batching is enabled (see SetBatching), but
	// always understood on receive.
	simFlagBatch = 3
	// simFlagInitiator marks frames sent by the side that dialed the
	// connection. Connection IDs are allocated independently by each node, so
	// this bit disambiguates "your conn 7" from "my conn 7".
	simFlagInitiator = 0x80
)

// simConnBuffer is each sim connection's inbound message buffer. Larger than
// the mem transport's: batched datagrams land several messages at once, and
// a pipelined caller keeps a window of replies in flight.
const simConnBuffer = 256

// Sim is the Transport over a simulated radio network. One Sim instance
// belongs to one simulated node; it multiplexes any number of logical
// connections over unreliable datagrams. Connections are established
// implicitly (no handshake): the first data frame with a new connection ID
// creates the accepting side, so connection setup costs zero round trips —
// appropriate for lossy sensor networks where a SYN exchange could never
// complete.
type Sim struct {
	svc   DatagramService
	local netsim.NodeID
	codec wire.Codec
	batch atomic.Bool

	nextConn atomic.Uint64

	mu       sync.Mutex
	closed   bool
	conns    map[string]*simConn // key: remoteNode + "/" + connID
	listener *simListener

	wg   sync.WaitGroup
	stop chan struct{}

	// DroppedFrames counts inbound frames discarded for malformed headers or
	// full connection buffers.
	droppedFrames atomic.Int64
}

var _ Transport = (*Sim)(nil)

// NewSim creates the transport endpoint for node local on the given
// substrate, and starts its demultiplexer. Codec defaults to Binary.
func NewSim(svc DatagramService, local netsim.NodeID, codec wire.Codec) (*Sim, error) {
	if codec == nil {
		codec = wire.Binary{}
	}
	inbox, err := svc.Recv(local)
	if err != nil {
		return nil, fmt.Errorf("transport: sim: %w", err)
	}
	t := &Sim{
		svc:   svc,
		local: local,
		codec: codec,
		conns: make(map[string]*simConn),
		stop:  make(chan struct{}),
	}
	t.wg.Add(1)
	go t.demux(inbox)
	return t, nil
}

// Name implements Transport.
func (t *Sim) Name() string { return "sim" }

// DroppedFrames reports inbound frames discarded by the demultiplexer.
func (t *Sim) DroppedFrames() int64 { return t.droppedFrames.Load() }

// SetBatching toggles datagram coalescing on the send side: concurrent
// senders on one connection share a pending buffer, and a whole queue of
// messages leaves as one simFlagBatch datagram. This amortizes the per-packet
// cost of the radio substrate under load — but it also changes loss
// granularity (one lost datagram now loses every message in the batch), so
// it is opt-in: chaos and energy experiments keep the per-message default.
// Receivers always understand batched datagrams regardless of this setting.
func (t *Sim) SetBatching(on bool) { t.batch.Store(on) }

// Listen implements Transport. addr must equal the node's own ID; a node has
// exactly one listener.
func (t *Sim) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if addr != string(t.local) {
		return nil, fmt.Errorf("transport: sim node %s cannot listen on %q", t.local, addr)
	}
	if t.listener != nil {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	l := &simListener{
		t:       t,
		backlog: make(chan *simConn, 16),
		done:    make(chan struct{}),
	}
	t.listener = l
	return l, nil
}

// Dial implements Transport. addr is the remote node ID. Establishment is
// optimistic: no traffic flows until the first Send.
func (t *Sim) Dial(addr string) (Conn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	id := t.nextConn.Add(1)
	c := t.newConnLocked(netsim.NodeID(addr), id, true)
	return c, nil
}

// Close implements Transport.
func (t *Sim) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.stop)
	conns := make([]*simConn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	l := t.listener
	t.mu.Unlock()

	if l != nil {
		_ = l.Close()
	}
	for _, c := range conns {
		c.closeLocal(false) // don't send FINs during teardown
	}
	t.wg.Wait()
	return nil
}

// newConnLocked registers a connection. initiator marks who allocated the ID
// (IDs are scoped to the initiating node, so the map key embeds the remote
// for accepted conns and the local allocation for dialed ones).
func (t *Sim) newConnLocked(remote netsim.NodeID, id uint64, dialed bool) *simConn {
	c := &simConn{
		t:      t,
		remote: remote,
		id:     id,
		dialed: dialed,
		in:     make(chan *wire.Message, simConnBuffer),
		closed: make(chan struct{}),
	}
	t.conns[c.key()] = c
	return c
}

// demux routes inbound datagrams to connections, creating accepting-side
// connections on first contact.
func (t *Sim) demux(inbox <-chan netsim.Packet) {
	defer t.wg.Done()
	for {
		select {
		case <-t.stop:
			return
		case pkt, ok := <-inbox:
			if !ok {
				return
			}
			t.handle(pkt)
		}
	}
}

func (t *Sim) handle(pkt netsim.Packet) {
	if len(pkt.Data) < simHdrLen || pkt.Data[0] != simMagic {
		t.droppedFrames.Add(1)
		return
	}
	id := binary.BigEndian.Uint64(pkt.Data[1:9])
	flag := pkt.Data[9] &^ simFlagInitiator
	fromInitiator := pkt.Data[9]&simFlagInitiator != 0
	body := pkt.Data[simHdrLen:]

	t.mu.Lock()
	// A frame from the conn's initiator lands on our accepted side; a frame
	// from the acceptor is a reply on a conn we dialed.
	var c *simConn
	if fromInitiator {
		c = t.conns[connKey(pkt.From, id, false)]
	} else {
		c = t.conns[connKey(pkt.From, id, true)]
	}
	if c == nil && (flag == simFlagData || flag == simFlagBatch) && fromInitiator {
		// First contact: create the accepting side if someone is listening.
		if t.listener == nil {
			t.mu.Unlock()
			t.droppedFrames.Add(1)
			return
		}
		c = t.newConnLocked(pkt.From, id, false)
		select {
		case t.listener.backlog <- c:
		default:
			// Backlog full: reject by dropping and forgetting.
			delete(t.conns, c.key())
			t.mu.Unlock()
			t.droppedFrames.Add(1)
			return
		}
	}
	t.mu.Unlock()
	if c == nil {
		if flag != simFlagFin { // late FINs for unknown conns are normal
			t.droppedFrames.Add(1)
		}
		return
	}

	switch flag {
	case simFlagFin:
		c.closeLocal(false)
	case simFlagData:
		t.deliver(c, body)
	case simFlagBatch:
		// Split the coalesced datagram into its length-prefixed sub-frames.
		for len(body) >= 4 {
			n := binary.BigEndian.Uint32(body[:4])
			if uint64(n) > uint64(len(body)-4) {
				t.droppedFrames.Add(1) // truncated batch tail
				return
			}
			t.deliverBatch(c, body[4:4+n])
			body = body[4+n:]
		}
		if len(body) != 0 {
			t.droppedFrames.Add(1) // trailing garbage
		}
	default:
		t.droppedFrames.Add(1)
	}
}

// deliver decodes one encoded message and queues it on the connection,
// dropping (and counting) on decode failure or a full buffer.
func (t *Sim) deliver(c *simConn, body []byte) {
	m, err := t.codec.Decode(body)
	if err != nil {
		t.droppedFrames.Add(1)
		return
	}
	select {
	case c.in <- m:
	default:
		t.droppedFrames.Add(1)
	}
}

// deliverBatch is deliver for coalesced sub-frames. The datagram already
// survived the radio, and one batch can carry thousands of messages — far
// more than any fixed connection buffer — so a full buffer applies
// backpressure to the demultiplexer instead of dropping: receiver overrun
// must not masquerade as radio loss in the regime batching exists for.
// Delivery is abandoned (and counted) only when the connection or transport
// goes away.
func (t *Sim) deliverBatch(c *simConn, body []byte) {
	m, err := t.codec.Decode(body)
	if err != nil {
		t.droppedFrames.Add(1)
		return
	}
	select {
	case c.in <- m:
	case <-c.closed:
		t.droppedFrames.Add(1)
	case <-t.stop:
		t.droppedFrames.Add(1)
	}
}

// connKey builds the map key for a connection. The dialed flag disambiguates
// the two ID spaces (ours vs the peer's).
func connKey(remote netsim.NodeID, id uint64, dialed bool) string {
	role := byte('a')
	if dialed {
		role = 'd'
	}
	return fmt.Sprintf("%s/%d/%c", remote, id, role)
}

type simListener struct {
	t       *Sim
	backlog chan *simConn

	closeOnce sync.Once
	done      chan struct{}
}

func (l *simListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *simListener) Addr() string { return string(l.t.local) }

func (l *simListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.t.mu.Lock()
		if l.t.listener == l {
			l.t.listener = nil
		}
		l.t.mu.Unlock()
	})
	return nil
}

type simConn struct {
	t      *Sim
	remote netsim.NodeID
	id     uint64
	dialed bool
	in     chan *wire.Message

	// Batched-send state (group commit, see BatchWriter in internal/wire):
	// pending always starts with the simFlagBatch header, sub-frames appended.
	bmu      sync.Mutex
	pending  []byte
	spare    []byte
	flushing bool

	closeOnce sync.Once
	closed    chan struct{}
}

func (c *simConn) key() string { return connKey(c.remote, c.id, c.dialed) }

func (c *simConn) header(flag byte) []byte {
	hdr := make([]byte, simHdrLen)
	hdr[0] = simMagic
	binary.BigEndian.PutUint64(hdr[1:9], c.id)
	if c.dialed {
		flag |= simFlagInitiator
	}
	hdr[9] = flag
	return hdr
}

func (c *simConn) Send(m *wire.Message) error {
	select {
	case <-c.closed:
		return ErrClosed
	default:
	}
	if c.t.batch.Load() {
		return c.sendBatched(m)
	}
	body, err := c.t.codec.Encode(m)
	if err != nil {
		return err
	}
	data := append(c.header(simFlagData), body...)
	if err := c.t.svc.Send(c.t.local, c.remote, data); err != nil {
		return fmt.Errorf("transport: sim send: %w", err)
	}
	return nil
}

// appendHeader appends the 10-byte datagram header for flag to dst.
func (c *simConn) appendHeader(dst []byte, flag byte) []byte {
	if c.dialed {
		flag |= simFlagInitiator
	}
	dst = append(dst, simMagic)
	dst = binary.BigEndian.AppendUint64(dst, c.id)
	return append(dst, flag)
}

// sendBatched queues m as a sub-frame of the connection's pending batch
// datagram; the first sender to find no flush running drains the batch —
// its own message plus everything queued meanwhile — in one substrate Send.
// Datagram-send failures are reported to the flusher only and are not
// sticky: sim datagrams are lossy by nature, and the substrate's per-packet
// errors (loss, energy exhaustion) are transient.
func (c *simConn) sendBatched(m *wire.Message) error {
	c.bmu.Lock()
	if len(c.pending) == 0 {
		c.pending = c.appendHeader(c.pending, simFlagBatch)
	}
	start := len(c.pending)
	c.pending = append(c.pending, 0, 0, 0, 0)
	out, err := wire.EncodeAppend(c.t.codec, c.pending, m)
	if err != nil {
		c.pending = c.pending[:start]
		c.bmu.Unlock()
		return err
	}
	binary.BigEndian.PutUint32(out[start:start+4], uint32(len(out)-start-4))
	c.pending = out
	if c.flushing {
		c.bmu.Unlock()
		return nil
	}
	c.flushing = true
	// Group-commit yield: give concurrently-runnable senders one scheduling
	// quantum to append before the drain. Under load this turns near-miss
	// arrivals into one datagram instead of two; when the conn is idle it
	// costs a no-op scheduler call.
	c.bmu.Unlock()
	runtime.Gosched()
	c.bmu.Lock()
	for err == nil && len(c.pending) > simHdrLen {
		buf := c.pending
		c.pending = c.appendHeader(c.spare[:0], simFlagBatch)
		c.spare = nil
		c.bmu.Unlock()
		serr := c.t.svc.Send(c.t.local, c.remote, buf)
		c.bmu.Lock()
		if cap(buf) > 1<<20 {
			buf = nil // one huge batch must not pin its buffer for the conn's lifetime
		}
		c.spare = buf[:0]
		if serr != nil {
			err = fmt.Errorf("transport: sim send: %w", serr)
		}
	}
	c.flushing = false
	if len(c.pending) <= simHdrLen {
		c.pending = c.pending[:0] // empty batch: rebuild the header next time
	}
	c.bmu.Unlock()
	return err
}

func (c *simConn) Recv() (*wire.Message, error) {
	select {
	case m := <-c.in:
		return m, nil
	case <-c.closed:
		select {
		case m := <-c.in:
			return m, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *simConn) Close() error {
	c.closeLocal(true)
	return nil
}

// closeLocal tears the connection down; sendFin controls whether a FIN
// datagram is attempted (best effort — it may be lost).
func (c *simConn) closeLocal(sendFin bool) {
	c.closeOnce.Do(func() {
		close(c.closed)
		if sendFin {
			_ = c.t.svc.Send(c.t.local, c.remote, c.header(simFlagFin))
		}
		c.t.mu.Lock()
		delete(c.t.conns, c.key())
		c.t.mu.Unlock()
	})
}

func (c *simConn) LocalAddr() string  { return string(c.t.local) }
func (c *simConn) RemoteAddr() string { return string(c.remote) }
