// Package transport realizes the paper's network-independence feature
// (§3.2): the middleware runs over any medium that can implement the small
// Transport interface. Three implementations ship:
//
//   - mem: in-process channel pairs, for tests and single-process deployments,
//   - tcp: stdlib net over real sockets (wireline networks),
//   - sim: a lightweight connection layer over the netsim radio substrate
//     (standing in for Bluetooth/802.11/sensor radios).
//
// Everything above this package — discovery, transactions, QoS — is written
// against Transport only and cannot tell which network it is on, which is
// exactly the independence property the paper calls for.
package transport

import (
	"errors"

	"ndsm/internal/wire"
)

// Errors shared across transports.
var (
	ErrClosed         = errors.New("transport: closed")
	ErrAddrInUse      = errors.New("transport: address already in use")
	ErrConnectRefused = errors.New("transport: connection refused")
)

// Conn is a bidirectional, ordered message stream between two endpoints.
// Send is safe for concurrent use (pipelined callers send from many
// goroutines at once); Recv may run concurrently with Send but not with
// itself — a connection has one receive loop.
type Conn interface {
	// Send transmits one message. It does not wait for the peer to read it.
	//
	// Send must not retain m or any memory it references past the call:
	// implementations either serialize the message before returning or clone
	// it. Callers rely on this to recycle request envelopes through pools
	// the moment Send returns.
	Send(m *wire.Message) error
	// Recv blocks for the next message. It returns ErrClosed after the
	// connection closes and all buffered messages are drained.
	Recv() (*wire.Message, error)
	// Close releases the connection. Safe to call multiple times.
	Close() error
	// LocalAddr and RemoteAddr name the endpoints.
	LocalAddr() string
	RemoteAddr() string
}

// Listener accepts inbound connections on a bound address.
type Listener interface {
	// Accept blocks for the next inbound connection. It returns ErrClosed
	// after Close.
	Accept() (Conn, error)
	// Addr returns the bound address.
	Addr() string
	// Close stops accepting. Safe to call multiple times.
	Close() error
}

// Transport binds local addresses and connects to remote ones. The address
// syntax is transport-specific (a name for mem and sim, host:port for tcp).
type Transport interface {
	// Name identifies the transport kind ("mem", "tcp", "sim").
	Name() string
	// Listen binds addr and returns a listener.
	Listen(addr string) (Listener, error)
	// Dial connects to addr.
	Dial(addr string) (Conn, error)
	// Close releases all transport resources, closing every connection and
	// listener created through it.
	Close() error
}
