package transport

import (
	"sync/atomic"

	"ndsm/internal/obs"
	"ndsm/internal/wire"
)

// Instrument wraps a transport so every connection it dials or accepts
// reports message and byte counts to reg (nil: the default registry), under
// "transport.<name>.sent_msgs", ".sent_bytes", ".recv_msgs", ".recv_bytes",
// plus the live-connection gauge "transport.<name>.open_conns". Byte counts
// are payload sizes — the envelope overhead is codec-specific and the paper's
// message-cost experiments count payload traffic.
func Instrument(t Transport, reg *obs.Registry) Transport {
	r := obs.Or(reg)
	prefix := "transport." + t.Name()
	return &instrumented{
		inner:     t,
		sentMsgs:  r.Counter(prefix + ".sent_msgs"),
		sentBytes: r.Counter(prefix + ".sent_bytes"),
		recvMsgs:  r.Counter(prefix + ".recv_msgs"),
		recvBytes: r.Counter(prefix + ".recv_bytes"),
		openConns: r.Gauge(prefix + ".open_conns"),
	}
}

type instrumented struct {
	inner     Transport
	sentMsgs  *obs.Counter
	sentBytes *obs.Counter
	recvMsgs  *obs.Counter
	recvBytes *obs.Counter
	openConns *obs.Gauge
}

func (t *instrumented) Name() string { return t.inner.Name() }
func (t *instrumented) Close() error { return t.inner.Close() }

func (t *instrumented) Listen(addr string) (Listener, error) {
	l, err := t.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &instrumentedListener{inner: l, t: t}, nil
}

func (t *instrumented) Dial(addr string) (Conn, error) {
	c, err := t.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return t.wrap(c), nil
}

func (t *instrumented) wrap(c Conn) Conn {
	t.openConns.Add(1)
	return &instrumentedConn{inner: c, t: t}
}

type instrumentedListener struct {
	inner Listener
	t     *instrumented
}

func (l *instrumentedListener) Accept() (Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return l.t.wrap(c), nil
}

func (l *instrumentedListener) Addr() string { return l.inner.Addr() }
func (l *instrumentedListener) Close() error { return l.inner.Close() }

type instrumentedConn struct {
	inner  Conn
	t      *instrumented
	closed atomic.Bool
}

func (c *instrumentedConn) Send(m *wire.Message) error {
	err := c.inner.Send(m)
	if err == nil {
		c.t.sentMsgs.Inc(1)
		c.t.sentBytes.Inc(int64(len(m.Payload)))
	}
	return err
}

func (c *instrumentedConn) Recv() (*wire.Message, error) {
	m, err := c.inner.Recv()
	if err == nil {
		c.t.recvMsgs.Inc(1)
		c.t.recvBytes.Inc(int64(len(m.Payload)))
	}
	return m, err
}

func (c *instrumentedConn) Close() error {
	if c.closed.CompareAndSwap(false, true) {
		c.t.openConns.Add(-1)
	}
	return c.inner.Close()
}

func (c *instrumentedConn) LocalAddr() string  { return c.inner.LocalAddr() }
func (c *instrumentedConn) RemoteAddr() string { return c.inner.RemoteAddr() }
