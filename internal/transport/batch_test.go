package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ndsm/internal/netsim"
	"ndsm/internal/wire"
)

// countingService wraps a DatagramService and counts substrate sends, so
// tests can observe the coalescing factor. A non-zero delay makes each
// datagram slow, forcing concurrent senders to queue behind the flusher.
type countingService struct {
	DatagramService
	sends atomic.Int64
	delay time.Duration
}

func (s *countingService) Send(from, to netsim.NodeID, data []byte) error {
	s.sends.Add(1)
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return s.DatagramService.Send(from, to, data)
}

func newSimBatchPair(t *testing.T) (*Sim, *Sim, *countingService) {
	t.Helper()
	net := netsim.New(netsim.Config{Range: 100, Unlimited: true, InboxSize: 4096})
	for _, id := range []netsim.NodeID{"a", "b"} {
		if err := net.AddNode(id, netsim.Position{}); err != nil {
			t.Fatal(err)
		}
	}
	svc := &countingService{DatagramService: net}
	ta, err := NewSim(svc, "a", nil)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewSim(svc, "b", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = ta.Close()
		_ = tb.Close()
	})
	return ta, tb, svc
}

// A batched sim connection delivers every message, in order, and packs many
// messages into far fewer datagrams than the per-message path would.
func TestSimBatchingCoalescesAndDelivers(t *testing.T) {
	ta, tb, svc := newSimBatchPair(t)
	ta.SetBatching(true)
	svc.delay = time.Millisecond // slow substrate → senders queue behind the flusher
	l, err := tb.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := ta.Dial("b")
	if err != nil {
		t.Fatal(err)
	}

	const n = 200
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := conn.Send(&wire.Message{ID: uint64(i), Kind: wire.KindData, Topic: "t"}); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	acc, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool, n)
	for len(seen) < n {
		m, err := acc.Recv()
		if err != nil {
			t.Fatalf("recv after %d messages: %v", len(seen), err)
		}
		if seen[m.ID] {
			t.Fatalf("duplicate message %d", m.ID)
		}
		seen[m.ID] = true
	}
	if got := svc.sends.Load(); got >= n {
		t.Fatalf("no coalescing: %d datagrams for %d messages", got, n)
	}
	if dropped := tb.DroppedFrames(); dropped != 0 {
		t.Fatalf("%d frames dropped on lossless link", dropped)
	}
}

// Batched datagrams are understood even when the receiver never opted in:
// batching is a sender-side choice.
func TestSimBatchDecodeAlwaysOn(t *testing.T) {
	ta, tb, _ := newSimBatchPair(t)
	ta.SetBatching(true) // only the sender batches
	l, err := tb.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := ta.Dial("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(&wire.Message{ID: 7, Kind: wire.KindData}); err != nil {
		t.Fatal(err)
	}
	acc, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	m, err := acc.Recv()
	if err != nil || m.ID != 7 {
		t.Fatalf("recv = %v, %v", m, err)
	}
}

// A malformed batch datagram (truncated sub-frame length) is dropped and
// counted, and the connection keeps working.
func TestSimBatchTruncatedTailCounted(t *testing.T) {
	ta, tb, _ := newSimBatchPair(t)
	l, err := tb.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := ta.Dial("b")
	if err != nil {
		t.Fatal(err)
	}
	// Establish the accepting side with a good message first.
	if err := conn.Send(&wire.Message{ID: 1, Kind: wire.KindData}); err != nil {
		t.Fatal(err)
	}
	acc, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Recv(); err != nil {
		t.Fatal(err)
	}

	// Hand-craft a batch datagram whose sub-frame length overruns the body.
	sc := conn.(*simConn)
	bad := sc.appendHeader(nil, simFlagBatch)
	bad = append(bad, 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3)
	if err := ta.svc.Send("a", "b", bad); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for tb.DroppedFrames() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("truncated batch never counted as dropped")
		}
		time.Sleep(time.Millisecond)
	}
	// The connection survives.
	if err := conn.Send(&wire.Message{ID: 2, Kind: wire.KindData}); err != nil {
		t.Fatal(err)
	}
	if m, err := acc.Recv(); err != nil || m.ID != 2 {
		t.Fatalf("recv after bad batch = %v, %v", m, err)
	}
}

// Race stress over the batched TCP path: concurrent senders on both sides of
// a real socket, every frame delivered intact. Run with -race.
func TestTCPBatchedConcurrentSendStress(t *testing.T) {
	tr := NewTCP(nil)
	defer tr.Close()
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted

	const senders, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m := &wire.Message{
					ID:      uint64(g*per + i + 1),
					Kind:    wire.KindData,
					Topic:   fmt.Sprintf("g%d", g),
					Payload: []byte("payload"),
				}
				if err := conn.Send(m); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(g)
	}
	seen := make(map[uint64]bool, senders*per)
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for len(seen) < senders*per {
			m, err := srv.Recv()
			if err != nil {
				t.Errorf("recv after %d: %v", len(seen), err)
				return
			}
			if seen[m.ID] || m.ID == 0 || m.ID > senders*per {
				t.Errorf("bad or duplicate frame id %d", m.ID)
				return
			}
			seen[m.ID] = true
		}
	}()
	wg.Wait()
	select {
	case <-recvDone:
	case <-time.After(10 * time.Second):
		t.Fatalf("receiver stalled at %d/%d frames", len(seen), senders*per)
	}
}
