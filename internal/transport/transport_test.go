package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ndsm/internal/netsim"
	"ndsm/internal/obs"
	"ndsm/internal/wire"
)

// harness abstracts transport construction so one conformance suite runs
// against every implementation — the concrete expression of §3.2's network
// independence.
type harness struct {
	name string
	// setup returns a transport for the listener side, a listen address, and
	// a dialer-side transport (may be the same object).
	setup func(t *testing.T) (lt Transport, addr string, dt Transport)
}

func harnesses() []harness {
	return []harness{
		{
			name: "mem",
			setup: func(t *testing.T) (Transport, string, Transport) {
				fabric := NewFabric()
				lt := NewMem(fabric)
				dt := NewMem(fabric)
				t.Cleanup(func() { _ = lt.Close(); _ = dt.Close() })
				return lt, "svc-addr", dt
			},
		},
		{
			name: "tcp",
			setup: func(t *testing.T) (Transport, string, Transport) {
				lt := NewTCP(nil)
				dt := NewTCP(wire.JSON{}) // mixed codecs must interoperate
				t.Cleanup(func() { _ = lt.Close(); _ = dt.Close() })
				return lt, "127.0.0.1:0", dt
			},
		},
		{
			name: "sim",
			setup: func(t *testing.T) (Transport, string, Transport) {
				net := netsim.New(netsim.Config{Range: 100, Unlimited: true})
				if err := net.AddNode("lnode", netsim.Position{X: 0, Y: 0}); err != nil {
					t.Fatal(err)
				}
				if err := net.AddNode("dnode", netsim.Position{X: 10, Y: 0}); err != nil {
					t.Fatal(err)
				}
				lt, err := NewSim(net, "lnode", nil)
				if err != nil {
					t.Fatal(err)
				}
				dt, err := NewSim(net, "dnode", nil)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { _ = lt.Close(); _ = dt.Close(); net.Close() })
				return lt, "lnode", dt
			},
		},
	}
}

// startEcho runs a listener that replies to every request with a reply
// message, until the listener closes.
func startEcho(t *testing.T, l Listener) {
	t.Helper()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					m, err := conn.Recv()
					if err != nil {
						return
					}
					reply := &wire.Message{
						ID:      m.ID + 1000,
						Kind:    wire.KindReply,
						Corr:    m.ID,
						Payload: m.Payload,
					}
					if err := conn.Send(reply); err != nil {
						return
					}
				}
			}()
		}
	}()
}

func recvWithTimeout(t *testing.T, c Conn) *wire.Message {
	t.Helper()
	type result struct {
		m   *wire.Message
		err error
	}
	ch := make(chan result, 1)
	go func() {
		m, err := c.Recv()
		ch <- result{m, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("Recv: %v", r.err)
		}
		return r.m
	case <-time.After(10 * time.Second):
		t.Fatal("Recv timed out")
		return nil
	}
}

func TestConformanceRequestReply(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			lt, addr, dt := h.setup(t)
			l, err := lt.Listen(addr)
			if err != nil {
				t.Fatal(err)
			}
			startEcho(t, l)

			conn, err := dt.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()

			req := &wire.Message{ID: 1, Kind: wire.KindRequest, Payload: []byte("ping")}
			if err := conn.Send(req); err != nil {
				t.Fatal(err)
			}
			reply := recvWithTimeout(t, conn)
			if reply.Kind != wire.KindReply || reply.Corr != 1 || string(reply.Payload) != "ping" {
				t.Fatalf("bad reply: %+v", reply)
			}
		})
	}
}

func TestConformanceOrdering(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			lt, addr, dt := h.setup(t)
			l, err := lt.Listen(addr)
			if err != nil {
				t.Fatal(err)
			}
			startEcho(t, l)
			conn, err := dt.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()

			const n = 20
			for i := 1; i <= n; i++ {
				m := &wire.Message{ID: uint64(i), Kind: wire.KindRequest, Payload: []byte(fmt.Sprintf("m%d", i))}
				if err := conn.Send(m); err != nil {
					t.Fatal(err)
				}
			}
			for i := 1; i <= n; i++ {
				reply := recvWithTimeout(t, conn)
				if reply.Corr != uint64(i) {
					t.Fatalf("reply %d out of order: corr=%d", i, reply.Corr)
				}
			}
		})
	}
}

func TestConformanceMultipleConns(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			lt, addr, dt := h.setup(t)
			l, err := lt.Listen(addr)
			if err != nil {
				t.Fatal(err)
			}
			startEcho(t, l)

			const conns = 5
			var wg sync.WaitGroup
			errs := make(chan error, conns)
			for i := 0; i < conns; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					conn, err := dt.Dial(l.Addr())
					if err != nil {
						errs <- err
						return
					}
					defer conn.Close()
					m := &wire.Message{ID: uint64(i + 1), Kind: wire.KindRequest, Payload: []byte{byte(i)}}
					if err := conn.Send(m); err != nil {
						errs <- err
						return
					}
					reply, err := conn.Recv()
					if err != nil {
						errs <- err
						return
					}
					if reply.Corr != uint64(i+1) || reply.Payload[0] != byte(i) {
						errs <- fmt.Errorf("conn %d got wrong reply: %+v", i, reply)
					}
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

func TestConformanceCloseUnblocksRecv(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			lt, addr, dt := h.setup(t)
			l, err := lt.Listen(addr)
			if err != nil {
				t.Fatal(err)
			}
			startEcho(t, l)
			conn, err := dt.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}

			done := make(chan error, 1)
			go func() {
				_, err := conn.Recv()
				done <- err
			}()
			time.Sleep(10 * time.Millisecond)
			if err := conn.Close(); err != nil {
				t.Fatal(err)
			}
			select {
			case err := <-done:
				if !errors.Is(err, ErrClosed) {
					t.Fatalf("Recv after close: err = %v, want ErrClosed", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("Recv not unblocked by Close")
			}
		})
	}
}

func TestConformanceListenerClose(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			lt, addr, _ := h.setup(t)
			l, err := lt.Listen(addr)
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() {
				_, err := l.Accept()
				done <- err
			}()
			time.Sleep(10 * time.Millisecond)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			select {
			case err := <-done:
				if !errors.Is(err, ErrClosed) {
					t.Fatalf("Accept after close: err = %v, want ErrClosed", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("Accept not unblocked by Close")
			}
			// Address is reusable after close.
			l2, err := lt.Listen(addr)
			if err != nil {
				t.Fatalf("re-listen: %v", err)
			}
			_ = l2.Close()
		})
	}
}

func TestConformanceTransportClose(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			lt, addr, dt := h.setup(t)
			l, err := lt.Listen(addr)
			if err != nil {
				t.Fatal(err)
			}
			startEcho(t, l)
			if _, err := dt.Dial(l.Addr()); err != nil {
				t.Fatal(err)
			}
			if err := dt.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := dt.Dial(l.Addr()); !errors.Is(err, ErrClosed) {
				t.Fatalf("Dial after transport close: err = %v, want ErrClosed", err)
			}
			if _, err := dt.Listen(addr + "x"); !errors.Is(err, ErrClosed) {
				t.Fatalf("Listen after transport close: err = %v, want ErrClosed", err)
			}
			_ = dt.Close() // idempotent
		})
	}
}

func TestConformanceInvalidMessageRejected(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			lt, addr, dt := h.setup(t)
			l, err := lt.Listen(addr)
			if err != nil {
				t.Fatal(err)
			}
			startEcho(t, l)
			conn, err := dt.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if err := conn.Send(&wire.Message{}); err == nil {
				t.Fatal("invalid message accepted")
			}
		})
	}
}

func TestMemDialUnknownAddr(t *testing.T) {
	tr := NewMem(NewFabric())
	defer tr.Close()
	if _, err := tr.Dial("nowhere"); !errors.Is(err, ErrConnectRefused) {
		t.Fatalf("err = %v, want ErrConnectRefused", err)
	}
}

func TestMemAddrInUse(t *testing.T) {
	tr := NewMem(NewFabric())
	defer tr.Close()
	if _, err := tr.Listen("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Listen("a"); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("err = %v, want ErrAddrInUse", err)
	}
}

func TestMemFabricIsolation(t *testing.T) {
	t1 := NewMem(NewFabric())
	t2 := NewMem(NewFabric())
	defer t1.Close()
	defer t2.Close()
	if _, err := t1.Listen("shared"); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Dial("shared"); !errors.Is(err, ErrConnectRefused) {
		t.Fatalf("cross-fabric dial: err = %v, want ErrConnectRefused", err)
	}
}

func TestMemSendClone(t *testing.T) {
	fabric := NewFabric()
	tr := NewMem(fabric)
	defer tr.Close()
	l, err := tr.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := tr.Dial("svc")
	if err != nil {
		t.Fatal(err)
	}
	server, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	m := &wire.Message{ID: 1, Kind: wire.KindData, Payload: []byte("orig")}
	if err := conn.Send(m); err != nil {
		t.Fatal(err)
	}
	m.Payload[0] = 'X' // mutate after send
	got := recvWithTimeout(t, server)
	if string(got.Payload) != "orig" {
		t.Fatalf("receiver saw sender's mutation: %q", got.Payload)
	}
}

func TestTCPDialRefused(t *testing.T) {
	tr := NewTCP(nil)
	defer tr.Close()
	if _, err := tr.Dial("127.0.0.1:1"); !errors.Is(err, ErrConnectRefused) {
		t.Fatalf("err = %v, want ErrConnectRefused", err)
	}
}

func TestTCPAddrReporting(t *testing.T) {
	tr := NewTCP(nil)
	defer tr.Close()
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if l.Addr() == "127.0.0.1:0" {
		t.Fatalf("listener did not report bound port: %s", l.Addr())
	}
	conn, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.RemoteAddr() != l.Addr() {
		t.Fatalf("RemoteAddr = %s, want %s", conn.RemoteAddr(), l.Addr())
	}
}

func TestSimListenWrongAddr(t *testing.T) {
	net := netsim.New(netsim.Config{Range: 100, Unlimited: true})
	defer net.Close()
	if err := net.AddNode("n1", netsim.Position{}); err != nil {
		t.Fatal(err)
	}
	tr, err := NewSim(net, "n1", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Listen("other"); err == nil {
		t.Fatal("listen on foreign address accepted")
	}
}

func TestSimUnknownNode(t *testing.T) {
	net := netsim.New(netsim.Config{Range: 100})
	defer net.Close()
	if _, err := NewSim(net, "ghost", nil); err == nil {
		t.Fatal("NewSim for unknown node accepted")
	}
}

func TestSimSendOutOfRangeSurfacesError(t *testing.T) {
	net := netsim.New(netsim.Config{Range: 10, Unlimited: true})
	defer net.Close()
	for id, pos := range map[netsim.NodeID]netsim.Position{"a": {}, "b": {X: 500}} {
		if err := net.AddNode(id, pos); err != nil {
			t.Fatal(err)
		}
	}
	ta, err := NewSim(net, "a", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	conn, err := ta.Dial("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(&wire.Message{ID: 1, Kind: wire.KindData}); !errors.Is(err, netsim.ErrNotNeighbor) {
		t.Fatalf("err = %v, want ErrNotNeighbor", err)
	}
}

func TestSimConnIDCollision(t *testing.T) {
	// Both nodes dial each other; each side allocates conn ID 1. The
	// initiator flag must keep the four logical endpoints distinct.
	net := netsim.New(netsim.Config{Range: 100, Unlimited: true})
	defer net.Close()
	for _, id := range []netsim.NodeID{"a", "b"} {
		if err := net.AddNode(id, netsim.Position{}); err != nil {
			t.Fatal(err)
		}
	}
	ta, err := NewSim(net, "a", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := NewSim(net, "b", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	la, err := ta.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	lb, err := tb.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	startEcho(t, la)
	startEcho(t, lb)

	ab, err := ta.Dial("b")
	if err != nil {
		t.Fatal(err)
	}
	ba, err := tb.Dial("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := ab.Send(&wire.Message{ID: 10, Kind: wire.KindRequest, Payload: []byte("from-a")}); err != nil {
		t.Fatal(err)
	}
	if err := ba.Send(&wire.Message{ID: 20, Kind: wire.KindRequest, Payload: []byte("from-b")}); err != nil {
		t.Fatal(err)
	}
	ra := recvWithTimeout(t, ab)
	rb := recvWithTimeout(t, ba)
	if ra.Corr != 10 || string(ra.Payload) != "from-a" {
		t.Fatalf("a's reply wrong: %+v", ra)
	}
	if rb.Corr != 20 || string(rb.Payload) != "from-b" {
		t.Fatalf("b's reply wrong: %+v", rb)
	}
}

func TestSimDroppedFrameAccounting(t *testing.T) {
	net := netsim.New(netsim.Config{Range: 100, Unlimited: true})
	defer net.Close()
	for _, id := range []netsim.NodeID{"a", "b"} {
		if err := net.AddNode(id, netsim.Position{}); err != nil {
			t.Fatal(err)
		}
	}
	tb, err := NewSim(net, "b", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	// Raw garbage datagram straight onto the substrate.
	if err := net.Send("a", "b", []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tb.DroppedFrames() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("garbage frame never counted as dropped")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSimDataToNonListeningNodeDropped(t *testing.T) {
	net := netsim.New(netsim.Config{Range: 100, Unlimited: true})
	defer net.Close()
	for _, id := range []netsim.NodeID{"a", "b"} {
		if err := net.AddNode(id, netsim.Position{}); err != nil {
			t.Fatal(err)
		}
	}
	ta, err := NewSim(net, "a", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := NewSim(net, "b", nil) // not listening
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	conn, err := ta.Dial("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(&wire.Message{ID: 1, Kind: wire.KindData}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tb.DroppedFrames() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("data to non-listening node not counted dropped")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestInstrumentCountsTraffic(t *testing.T) {
	reg := obs.NewRegistry()
	tr := Instrument(NewMem(NewFabric()), reg)
	l, err := tr.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			m, err := conn.Recv()
			if err != nil {
				return
			}
			_ = conn.Send(&wire.Message{Kind: wire.KindReply, Corr: m.ID, Payload: m.Payload})
		}
	}()
	conn, err := tr.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	acceptDeadline := time.Now().Add(2 * time.Second)
	for reg.Gauge("transport.mem.open_conns").Value() != 2 {
		if time.Now().After(acceptDeadline) {
			t.Fatalf("open_conns = %v, want 2 (dialer + acceptor)", reg.Gauge("transport.mem.open_conns").Value())
		}
		time.Sleep(time.Millisecond)
	}
	payload := []byte("12345")
	if err := conn.Send(&wire.Message{ID: 1, Kind: wire.KindRequest, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	// Both halves of the exchange ran through instrumented conns: the
	// request (client send + server recv) and the reply (server send +
	// client recv) each count once on each side.
	if snap.Counters["transport.mem.sent_msgs"] != 2 || snap.Counters["transport.mem.recv_msgs"] != 2 {
		t.Fatalf("msg counters = %v", snap.Counters)
	}
	if snap.Counters["transport.mem.sent_bytes"] != 10 || snap.Counters["transport.mem.recv_bytes"] != 10 {
		t.Fatalf("byte counters = %v", snap.Counters)
	}
	_ = conn.Close()
	_ = conn.Close() // double close must not double-decrement
	deadline := time.Now().Add(2 * time.Second)
	for reg.Gauge("transport.mem.open_conns").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("open_conns = %v after close, want 0", reg.Gauge("transport.mem.open_conns").Value())
		}
		time.Sleep(time.Millisecond)
	}
}
