package sensors

import (
	"math"
	"strings"
	"testing"
)

func TestGeneratorDeterministic(t *testing.T) {
	a := BloodPressure(42)
	b := BloodPressure(42)
	for i := 0; i < 50; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("sample %d diverged: %v vs %v", i, ra, rb)
		}
	}
	c := BloodPressure(43)
	a2 := BloodPressure(42)
	same := true
	for i := 0; i < 20; i++ {
		if a2.Next().Value != c.Next().Value {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGeneratorSequenceNumbers(t *testing.T) {
	g := HeartRate(1)
	for i := uint64(0); i < 10; i++ {
		if r := g.Next(); r.Seq != i {
			t.Fatalf("seq = %d, want %d", r.Seq, i)
		}
	}
}

func TestGeneratorStaysNearBaseline(t *testing.T) {
	g := BloodPressure(7)
	var sum float64
	const n = 1000
	for i := 0; i < n; i++ {
		r := g.Next()
		sum += r.Value
		if math.Abs(r.Value-120) > 40 {
			t.Fatalf("sample %v wildly off baseline", r)
		}
	}
	mean := sum / n
	if math.Abs(mean-120) > 3 {
		t.Fatalf("mean %v too far from baseline 120", mean)
	}
}

func TestGeneratorDrift(t *testing.T) {
	g := NewGenerator(100, 0, 0, 0, "x", 1)
	g.Drift = 1
	first := g.Next().Value
	for i := 0; i < 9; i++ {
		g.Next()
	}
	tenth := g.Next().Value
	if math.Abs((tenth-first)-10) > 1e-9 {
		t.Fatalf("drift over 10 samples = %v, want 10", tenth-first)
	}
}

func TestReadingEncodeDecode(t *testing.T) {
	r := Reading{Seq: 42, Value: 118.25, Unit: "mmHg"}
	got, err := DecodeReading(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 42 || math.Abs(got.Value-118.25) > 1e-4 || got.Unit != "mmHg" {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestDecodeReadingErrors(t *testing.T) {
	cases := [][]byte{
		[]byte(""),
		[]byte("no-separators"),
		[]byte("x|1.0|mmHg"),
		[]byte("1|x|mmHg"),
	}
	for _, c := range cases {
		if _, err := DecodeReading(c); err == nil {
			t.Errorf("decoded garbage %q", c)
		}
	}
}

func TestReadingString(t *testing.T) {
	s := Reading{Seq: 3, Value: 36.81, Unit: "C"}.String()
	if !strings.Contains(s, "#3") || !strings.Contains(s, "36.81") {
		t.Fatalf("String = %q", s)
	}
}

func TestPresetGenerators(t *testing.T) {
	presets := map[string]struct {
		g    *Generator
		unit string
		lo   float64
		hi   float64
	}{
		"bp":    {BloodPressure(1), "mmHg", 90, 150},
		"hr":    {HeartRate(1), "bpm", 55, 90},
		"temp":  {Temperature(1), "C", 36, 38},
		"accel": {Accelerometer(1), "g", -5, 5},
	}
	for name, p := range presets {
		for i := 0; i < 100; i++ {
			r := p.g.Next()
			if r.Unit != p.unit {
				t.Fatalf("%s unit = %q", name, r.Unit)
			}
			if r.Value < p.lo || r.Value > p.hi {
				t.Fatalf("%s sample %v out of band [%v,%v]", name, r.Value, p.lo, p.hi)
			}
		}
	}
}

func TestClassifier(t *testing.T) {
	c := Classifier{Low: 90, High: 140}
	if got := c.Classify(Reading{Value: 80}); got != "low" {
		t.Fatalf("80 = %s", got)
	}
	if got := c.Classify(Reading{Value: 120}); got != "normal" {
		t.Fatalf("120 = %s", got)
	}
	if got := c.Classify(Reading{Value: 140}); got != "high" {
		t.Fatalf("140 = %s", got)
	}
	if got := c.Classify(Reading{Value: 90}); got != "normal" {
		t.Fatalf("90 = %s (band is inclusive low)", got)
	}
}
