// Package sensors provides synthetic signal generators standing in for the
// physical sensors the paper's scenarios assume (blood-pressure cuffs, heart
// rate monitors, MEMS accelerometers, thermometers). Suppliers are defined
// by their service description plus a data stream; these deterministic,
// seedable waveform generators exercise matching, transactions and QoS
// exactly as hardware would.
package sensors

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"sync"
)

// Reading is one sensor sample.
type Reading struct {
	// Seq is the sample index.
	Seq uint64
	// Value is the primary measurement.
	Value float64
	// Unit is the measurement unit ("mmHg", "bpm", "°C").
	Unit string
}

// String renders the reading compactly.
func (r Reading) String() string {
	return fmt.Sprintf("#%d %.2f %s", r.Seq, r.Value, r.Unit)
}

// Encode renders the reading as a compact wire payload.
func (r Reading) Encode() []byte {
	return []byte(fmt.Sprintf("%d|%.4f|%s", r.Seq, r.Value, r.Unit))
}

// DecodeReading parses an encoded reading.
func DecodeReading(data []byte) (Reading, error) {
	var seq uint64
	var value float64
	parts := splitN(string(data), '|', 3)
	if len(parts) != 3 {
		return Reading{}, fmt.Errorf("sensors: malformed reading %q", data)
	}
	seq, err := strconv.ParseUint(parts[0], 10, 64)
	if err != nil {
		return Reading{}, fmt.Errorf("sensors: bad seq: %w", err)
	}
	value, err = strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return Reading{}, fmt.Errorf("sensors: bad value: %w", err)
	}
	return Reading{Seq: seq, Value: value, Unit: parts[2]}, nil
}

func splitN(s string, sep byte, n int) []string {
	var out []string
	start := 0
	for i := 0; i < len(s) && len(out) < n-1; i++ {
		if s[i] == sep {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	out = append(out, s[start:])
	return out
}

// Generator produces a deterministic synthetic waveform: a baseline with a
// sinusoidal physiological rhythm, slow drift, and seeded Gaussian noise.
type Generator struct {
	// Baseline is the signal's resting value.
	Baseline float64
	// Amplitude scales the periodic component.
	Amplitude float64
	// Period is samples per cycle.
	Period float64
	// Noise is the Gaussian noise standard deviation.
	Noise float64
	// Drift is the per-sample baseline drift.
	Drift float64
	// Unit labels readings.
	Unit string

	mu  sync.Mutex
	seq uint64
	rng *rand.Rand
}

// NewGenerator seeds the generator for reproducible streams.
func NewGenerator(baseline, amplitude, period, noise float64, unit string, seed int64) *Generator {
	return &Generator{
		Baseline:  baseline,
		Amplitude: amplitude,
		Period:    period,
		Noise:     noise,
		Unit:      unit,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Next produces the next sample.
func (g *Generator) Next() Reading {
	g.mu.Lock()
	defer g.mu.Unlock()
	seq := g.seq
	g.seq++
	value := g.Baseline + g.Drift*float64(seq)
	if g.Period > 0 {
		value += g.Amplitude * math.Sin(2*math.Pi*float64(seq)/g.Period)
	}
	if g.Noise > 0 && g.rng != nil {
		value += g.rng.NormFloat64() * g.Noise
	}
	return Reading{Seq: seq, Value: value, Unit: g.Unit}
}

// BloodPressure returns a systolic blood-pressure generator around 120 mmHg
// — the paper's running example (§3.1).
func BloodPressure(seed int64) *Generator {
	return NewGenerator(120, 8, 40, 2, "mmHg", seed)
}

// HeartRate returns a heart-rate generator around 72 bpm.
func HeartRate(seed int64) *Generator {
	return NewGenerator(72, 6, 60, 1.5, "bpm", seed)
}

// Temperature returns a body-temperature generator around 36.8 °C.
func Temperature(seed int64) *Generator {
	return NewGenerator(36.8, 0.3, 240, 0.05, "C", seed)
}

// Accelerometer returns a MEMS-style accelerometer generator in g units.
func Accelerometer(seed int64) *Generator {
	return NewGenerator(0, 1.2, 25, 0.2, "g", seed)
}

// Classifier labels readings against a [low, high) normal band — the
// "blood pressure analyzer" role of §3.1 (a consumer of sensor data and a
// supplier of analyses).
type Classifier struct {
	Low  float64
	High float64
}

// Classify returns "low", "normal", or "high".
func (c Classifier) Classify(r Reading) string {
	switch {
	case r.Value < c.Low:
		return "low"
	case r.Value >= c.High:
		return "high"
	default:
		return "normal"
	}
}
