package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ndsm/internal/endpoint"
	"ndsm/internal/health"
	"ndsm/internal/obs"
	"ndsm/internal/simtime"
	"ndsm/internal/sketch"
	"ndsm/internal/wire"
)

// AggregatorOptions tunes an Aggregator.
type AggregatorOptions struct {
	// Clock is the aggregator's freshness clock (default real time). It
	// should advance in lockstep with the publishers' clocks — the cluster's
	// shared time discipline, virtual in simulated worlds.
	Clock simtime.Clock
	// Window is the per-series point capacity (default 128).
	Window int
	// StaleAfter marks a node stale when no report has arrived for this
	// long (default 15s — three missed publishes at the default interval).
	StaleAfter time.Duration
	// Registry receives the aggregator's own instruments (nil: the process
	// default): "telemetry.reports" ingested and "telemetry.rejected".
	Registry *obs.Registry
}

func (o AggregatorOptions) withDefaults() AggregatorOptions {
	if o.Clock == nil {
		o.Clock = simtime.Real{}
	}
	if o.Window <= 0 {
		o.Window = 128
	}
	if o.StaleAfter <= 0 {
		o.StaleAfter = 15 * time.Second
	}
	return o
}

// nodeState is everything the aggregator holds for one reporting node.
type nodeState struct {
	lastSeq  uint64
	lastTime time.Time // newest report's own timestamp
	lastSeen time.Time // aggregator clock at newest ingest (freshness basis)
	reports  uint64
	totals   map[string]int64 // cumulative counter totals (sum of deltas)
	series   map[string]*Series
	health   []health.PeerStatus
	traceLen int
	traceTot uint64
	traceDrp uint64
	// digests and topk are the node's newest request-analytics sketches,
	// decoded at ingest. Cumulative summaries: the latest report supersedes
	// all earlier ones, so there is nothing to window.
	digests map[string]*sketch.TDigest
	topk    *sketch.TopK
}

// Aggregator folds node reports into per-node, per-metric windowed time
// series and derives per-node freshness. It is safe for concurrent use: the
// Handler can ingest from many server goroutines while views are served.
type Aggregator struct {
	opts AggregatorOptions

	ingested *obs.Counter
	rejected *obs.Counter

	mu    sync.Mutex
	nodes map[string]*nodeState
}

// NewAggregator builds an aggregator.
func NewAggregator(opts AggregatorOptions) *Aggregator {
	opts = opts.withDefaults()
	r := obs.Or(opts.Registry)
	return &Aggregator{
		opts:     opts,
		ingested: r.Counter("telemetry.reports"),
		rejected: r.Counter("telemetry.rejected"),
		nodes:    make(map[string]*nodeState),
	}
}

// StaleAfter returns the configured staleness horizon.
func (a *Aggregator) StaleAfter() time.Duration { return a.opts.StaleAfter }

// Ingest folds one report in. Reports must arrive with strictly increasing
// sequence numbers and timestamps per node; duplicates, reorders, and
// time-travel are rejected so every stored series stays monotone in the
// publisher's clock.
func (a *Aggregator) Ingest(r *Report) error {
	if r == nil || r.Node == "" {
		a.rejected.Inc(1)
		return fmt.Errorf("telemetry: ingest: report without a node")
	}
	now := a.opts.Clock.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	ns := a.nodes[r.Node]
	if ns == nil {
		ns = &nodeState{
			totals: make(map[string]int64),
			series: make(map[string]*Series),
		}
		a.nodes[r.Node] = ns
	}
	if ns.reports > 0 {
		if r.Seq <= ns.lastSeq {
			a.rejected.Inc(1)
			return fmt.Errorf("telemetry: ingest %s: seq %d not after %d (duplicate or reorder)", r.Node, r.Seq, ns.lastSeq)
		}
		if !r.Time.After(ns.lastTime) {
			a.rejected.Inc(1)
			return fmt.Errorf("telemetry: ingest %s: time %v not after %v", r.Node, r.Time, ns.lastTime)
		}
	}
	// Decode analytics sketches before mutating any state: a report with a
	// corrupt digest is rejected whole, like one with a bad sequence number.
	var digests map[string]*sketch.TDigest
	if len(r.TopicDigests) > 0 {
		digests = make(map[string]*sketch.TDigest, len(r.TopicDigests))
		for topic, raw := range r.TopicDigests {
			d, err := sketch.DecodeTDigest(raw)
			if err != nil {
				a.rejected.Inc(1)
				return fmt.Errorf("telemetry: ingest %s: topic %q digest: %w", r.Node, topic, err)
			}
			digests[topic] = d
		}
	}
	var topk *sketch.TopK
	if len(r.TopKDigest) > 0 {
		tk, err := sketch.DecodeTopK(r.TopKDigest)
		if err != nil {
			a.rejected.Inc(1)
			return fmt.Errorf("telemetry: ingest %s: topk digest: %w", r.Node, err)
		}
		topk = tk
	}
	ns.lastSeq = r.Seq
	ns.lastTime = r.Time
	ns.lastSeen = now
	ns.reports++
	for name, delta := range r.Counters {
		ns.totals[name] += delta
		a.append(ns, name, r.Time, float64(ns.totals[name]))
	}
	for name, rate := range r.Rates {
		a.append(ns, name+".rate", r.Time, rate)
	}
	for name, v := range r.Gauges {
		a.append(ns, name, r.Time, v)
	}
	ns.health = r.Health
	ns.traceLen = r.TraceLen
	ns.traceTot = r.TraceTotal
	ns.traceDrp = r.TraceDropped
	if digests != nil {
		ns.digests = digests
	}
	if topk != nil {
		ns.topk = topk
	}
	a.ingested.Inc(1)
	return nil
}

func (a *Aggregator) append(ns *nodeState, name string, t time.Time, v float64) {
	s := ns.series[name]
	if s == nil {
		s = NewSeries(a.opts.Window)
		ns.series[name] = s
	}
	s.Append(Point{T: t, V: v})
}

// Handler adapts the aggregator into an endpoint.Handler for Topic, so any
// node's existing listener can host the plane (core.Node.HandleTopic). A
// rejected report answers with an error reply; accepted ones with an ack.
func (a *Aggregator) Handler() endpoint.Handler {
	return func(req *wire.Message) (*wire.Message, error) {
		r, err := DecodeReport(req.Payload)
		if err != nil {
			return nil, err
		}
		if err := a.Ingest(r); err != nil {
			return nil, err
		}
		return &wire.Message{Kind: wire.KindAck}, nil
	}
}

// Fresh reports whether the node's newest report is within StaleAfter of the
// aggregator's clock. Unknown nodes are not fresh.
func (a *Aggregator) Fresh(node string) bool {
	now := a.opts.Clock.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	ns := a.nodes[node]
	return ns != nil && now.Sub(ns.lastSeen) <= a.opts.StaleAfter
}

// Nodes lists known reporting nodes, sorted.
func (a *Aggregator) Nodes() []string {
	a.mu.Lock()
	out := make([]string, 0, len(a.nodes))
	for name := range a.nodes {
		out = append(out, name)
	}
	a.mu.Unlock()
	sort.Strings(out)
	return out
}

// Series returns a copy of one node's series points (nil when absent).
func (a *Aggregator) Series(node, metric string) []Point {
	a.mu.Lock()
	defer a.mu.Unlock()
	ns := a.nodes[node]
	if ns == nil || ns.series[metric] == nil {
		return nil
	}
	return ns.series[metric].Points()
}

// NodeView is one node's slice of the merged cluster view.
type NodeView struct {
	Node       string              `json:"node"`
	Seq        uint64              `json:"seq"`
	Reports    uint64              `json:"reports"`
	LastReport time.Time           `json:"lastReport"`
	Age        time.Duration       `json:"ageNs"`
	Fresh      bool                `json:"fresh"`
	Series     map[string][]Point  `json:"series"`
	Health     []health.PeerStatus `json:"health,omitempty"`
	TraceLen   int                 `json:"traceLen,omitempty"`
	TraceTotal uint64              `json:"traceTotal,omitempty"`
	TraceDrops uint64              `json:"traceDropped,omitempty"`
}

// ClusterView is the merged view webbridge serves on GET /cluster.
type ClusterView struct {
	Now        time.Time     `json:"now"`
	StaleAfter time.Duration `json:"staleAfterNs"`
	Nodes      []NodeView    `json:"nodes"`
	// Topics is the cluster-merged per-topic latency attribution (empty when
	// no node publishes request-analytics digests).
	Topics []TopicStat `json:"topics,omitempty"`
	// HotTopics is the cluster-merged heavy-hitter estimate from the nodes'
	// space-saving summaries.
	HotTopics []sketch.TopKEntry `json:"hotTopics,omitempty"`
}

// View snapshots the whole cluster: every node's series (copied), freshness
// verdict, health view, and trace depth, sorted by node name.
func (a *Aggregator) View() ClusterView {
	now := a.opts.Clock.Now()
	a.mu.Lock()
	view := ClusterView{Now: now, StaleAfter: a.opts.StaleAfter, Nodes: make([]NodeView, 0, len(a.nodes))}
	for name, ns := range a.nodes {
		nv := NodeView{
			Node:       name,
			Seq:        ns.lastSeq,
			Reports:    ns.reports,
			LastReport: ns.lastTime,
			Age:        now.Sub(ns.lastSeen),
			Fresh:      now.Sub(ns.lastSeen) <= a.opts.StaleAfter,
			Series:     make(map[string][]Point, len(ns.series)),
			Health:     append([]health.PeerStatus(nil), ns.health...),
			TraceLen:   ns.traceLen,
			TraceTotal: ns.traceTot,
			TraceDrops: ns.traceDrp,
		}
		for metric, s := range ns.series {
			nv.Series[metric] = s.Points()
		}
		view.Nodes = append(view.Nodes, nv)
	}
	view.Topics = statsFromDigests(a.mergedDigestsLocked())
	if m := a.mergedTopKLocked(); m != nil {
		view.HotTopics = m.Top(m.Len())
	}
	a.mu.Unlock()
	sort.Slice(view.Nodes, func(i, j int) bool { return view.Nodes[i].Node < view.Nodes[j].Node })
	return view
}
