package telemetry

import (
	"sort"

	"ndsm/internal/sketch"
)

// TopicStat is one topic's cluster-merged latency summary: every node's
// per-topic t-digest merged into one, which is exactly what the sketches'
// mergeability buys — the quantiles below are computed over the union of all
// nodes' samples, not an average of per-node quantiles.
type TopicStat struct {
	Topic string  `json:"topic"`
	Count float64 `json:"count"`
	P50   float64 `json:"p50Ms"`
	P99   float64 `json:"p99Ms"`
}

// mergedDigestsLocked merges every node's newest per-topic digests into one
// digest per topic. Callers hold a.mu.
func (a *Aggregator) mergedDigestsLocked() map[string]*sketch.TDigest {
	merged := make(map[string]*sketch.TDigest)
	for _, ns := range a.nodes {
		for topic, d := range ns.digests {
			m := merged[topic]
			if m == nil {
				m = sketch.NewTDigest(0)
				merged[topic] = m
			}
			m.Merge(d)
		}
	}
	return merged
}

// TopicQuantile estimates the q-th latency quantile (milliseconds) for one
// topic across the whole cluster by merging every node's digest. The boolean
// is false when no node has reported a digest for the topic — distinct from a
// true 0ms quantile. This is the signal latency-quantile SLO objectives judge.
func (a *Aggregator) TopicQuantile(topic string, q float64) (float64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var m *sketch.TDigest
	for _, ns := range a.nodes {
		d := ns.digests[topic]
		if d == nil {
			continue
		}
		if m == nil {
			m = sketch.NewTDigest(0)
		}
		m.Merge(d)
	}
	if m == nil || m.Count() == 0 {
		return 0, false
	}
	return m.Quantile(q), true
}

// TopicStats returns every topic's cluster-merged latency summary, heaviest
// first (ties broken by name). This is the dash attribution panel's data.
func (a *Aggregator) TopicStats() []TopicStat {
	a.mu.Lock()
	merged := a.mergedDigestsLocked()
	a.mu.Unlock()
	return statsFromDigests(merged)
}

func statsFromDigests(merged map[string]*sketch.TDigest) []TopicStat {
	out := make([]TopicStat, 0, len(merged))
	for topic, d := range merged {
		if d.Count() == 0 {
			continue
		}
		out = append(out, TopicStat{
			Topic: topic,
			Count: d.Count(),
			P50:   d.Quantile(0.50),
			P99:   d.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Topic < out[j].Topic
	})
	return out
}

// MergedTopK merges every node's topic top-k summary and returns the n
// heaviest topics cluster-wide (n <= 0: all tracked). The space-saving
// guarantee survives the merge: a topic above 1/capacity of cluster traffic
// cannot be missing.
func (a *Aggregator) MergedTopK(n int) []sketch.TopKEntry {
	a.mu.Lock()
	m := a.mergedTopKLocked()
	a.mu.Unlock()
	if m == nil {
		return nil
	}
	if n <= 0 {
		n = m.Len()
	}
	return m.Top(n)
}

func (a *Aggregator) mergedTopKLocked() *sketch.TopK {
	var m *sketch.TopK
	for _, ns := range a.nodes {
		if ns.topk == nil {
			continue
		}
		if m == nil {
			m = sketch.NewTopK(0)
		}
		m.Merge(ns.topk)
	}
	return m
}
