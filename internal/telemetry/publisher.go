package telemetry

import (
	"errors"
	"sync"
	"time"

	"ndsm/internal/endpoint"
	"ndsm/internal/health"
	"ndsm/internal/obs"
	"ndsm/internal/reqlog"
	"ndsm/internal/simtime"
	"ndsm/internal/trace"
)

// PublisherOptions assembles a Publisher.
type PublisherOptions struct {
	// Node names the reporting node (required).
	Node string
	// Registry is the node's metrics registry (nil: the process default).
	// Each publish diffs it against the previous publish's snapshot, so
	// reports carry deltas.
	Registry *obs.Registry
	// Health, when set, embeds the node's per-peer detector view in every
	// report.
	Health *health.Monitor
	// Spans, when set, embeds the node's trace-collector depth.
	Spans *trace.Collector
	// ReqLog, when set, embeds the node's request-analytics sketches — the
	// per-topic latency t-digests and the topic top-k summary — in every
	// report, so the aggregator can merge cluster-wide per-topic quantiles
	// and heavy hitters (see reqlog and sketch).
	ReqLog *reqlog.Recorder
	// Clock stamps reports and paces Start's loop (default real time; a
	// *simtime.Virtual makes simulated-world telemetry deterministic).
	Clock simtime.Clock
	// Interval is Start's publish cadence (default 5s). Synchronous
	// Publish callers can ignore it.
	Interval time.Duration
	// Send ships one encoded report (required): in production a
	// CallerSend over the node's transport, in tests anything.
	Send func(*Report) error
}

// Publisher periodically describes one node as a Report and ships it through
// its Send hook. Publishing is entirely out-of-band: nothing on the node's
// request path knows the publisher exists, which is what keeps the
// telemetry-off hot path allocation-identical (see the zero-alloc guard).
type Publisher struct {
	opts PublisherOptions

	mu       sync.Mutex
	seq      uint64
	prev     obs.Snapshot
	prevTime time.Time
	stop     chan struct{}
	done     chan struct{}
	closed   bool
}

// NewPublisher builds a publisher. It snapshots the registry immediately so
// the first Publish reports the delta since construction, not since process
// start.
func NewPublisher(opts PublisherOptions) (*Publisher, error) {
	if opts.Node == "" {
		return nil, errors.New("telemetry: publisher needs a node name")
	}
	if opts.Send == nil {
		return nil, errors.New("telemetry: publisher needs a send hook")
	}
	if opts.Clock == nil {
		opts.Clock = simtime.Real{}
	}
	if opts.Interval <= 0 {
		opts.Interval = 5 * time.Second
	}
	p := &Publisher{opts: opts}
	p.prev = obs.Or(opts.Registry).Snapshot()
	p.prevTime = opts.Clock.Now()
	return p, nil
}

// Publish builds one report — snapshot delta, rates, health, trace depth —
// and ships it synchronously through Send. Safe for concurrent use with a
// running Start loop; each report consumes the delta exactly once.
func (p *Publisher) Publish() error {
	p.mu.Lock()
	now := p.opts.Clock.Now()
	snap := obs.Or(p.opts.Registry).Snapshot()
	diff := snap.Diff(p.prev)
	elapsed := now.Sub(p.prevTime)
	p.seq++
	r := &Report{
		Node:     p.opts.Node,
		Seq:      p.seq,
		Time:     now,
		Elapsed:  elapsed,
		Counters: diff.Counters,
		Rates:    diff.Rate(elapsed),
		Gauges:   diff.Gauges,
	}
	// Fold histogram quantiles in as gauges (<hist>.p50/.p99): quantile
	// estimates do not survive delta arithmetic, but as published gauge
	// series they give the aggregator — and the SLO engine's
	// latency-quantile objectives — a per-node latency signal to judge.
	for name, h := range snap.Histograms {
		if h.Count == 0 {
			continue
		}
		if r.Gauges == nil {
			r.Gauges = make(map[string]float64, 2*len(snap.Histograms))
		}
		r.Gauges[name+".p50"] = h.P50
		r.Gauges[name+".p99"] = h.P99
	}
	if p.opts.Health != nil {
		r.Health = p.opts.Health.Status()
	}
	if c := p.opts.Spans; c != nil {
		r.TraceLen = c.Len()
		r.TraceTotal = c.Total()
		r.TraceDropped = c.Dropped()
	}
	if rec := p.opts.ReqLog; rec != nil {
		r.TopicDigests = rec.TopicDigests()
		r.TopKDigest = rec.TopKBinary()
	}
	p.prev = snap
	p.prevTime = now
	p.mu.Unlock()
	return p.opts.Send(r)
}

// Start launches the periodic publish loop on the publisher's clock. Send
// errors are swallowed: telemetry is best-effort by design — a partitioned
// node keeps trying, and the aggregator's staleness marking is the signal.
func (p *Publisher) Start() {
	p.mu.Lock()
	if p.closed || p.stop != nil {
		p.mu.Unlock()
		return
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	stop, done := p.stop, p.done
	p.mu.Unlock()
	go func() {
		defer close(done)
		for {
			select {
			case <-p.opts.Clock.After(p.opts.Interval):
				_ = p.Publish()
			case <-stop:
				return
			}
		}
	}()
}

// Close stops the Start loop (if running) and marks the publisher done.
func (p *Publisher) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	stop, done := p.stop, p.done
	p.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return nil
}

// CallerSend adapts an endpoint.Caller into a Publisher Send hook: each
// report is encoded and shipped as one request on Topic — in-band over
// whatever transport the caller already runs on. timeout bounds each send
// (default 2s) so a partitioned aggregator cannot wedge the publish loop.
func CallerSend(c *endpoint.Caller, src, dst string, timeout time.Duration) func(*Report) error {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return func(r *Report) error {
		payload, err := r.Encode()
		if err != nil {
			return err
		}
		_, err = c.Do(&endpoint.Call{
			Topic:   Topic,
			Src:     src,
			Dst:     dst,
			Payload: payload,
			Timeout: timeout,
		})
		return err
	}
}
