package telemetry

import (
	"fmt"
	"html"
	"sort"
	"strings"
	"time"

	"ndsm/internal/sketch"
)

// sparkW/sparkH size the inline SVG sparklines.
const (
	sparkW = 160
	sparkH = 28
)

// DashAlert is one alert row for the dashboard's alerts panel. The telemetry
// package cannot import the slo engine (the engine consumes the aggregator),
// so the bridge flattens live alert state into this neutral shape.
type DashAlert struct {
	Objective string
	Node      string
	Severity  string // "ok" | "warning" | "critical"
	Burn      float64
	Since     time.Time
}

// RenderDash renders the cluster view as a single self-contained HTML page:
// one card per node (freshness badge, per-peer health, trace depth) with an
// inline-SVG sparkline per metric series. No scripts, no external assets —
// it must work from the embedded web server of a constrained device, which
// is the paper's §2 deployment target.
func RenderDash(v ClusterView) []byte { return RenderDashAlerts(v, nil) }

// RenderDashAlerts is RenderDash plus an alerts panel above the node cards:
// every SLO alert instance with its severity, long-window burn rate, and
// how long it has held its level.
func RenderDashAlerts(v ClusterView, alerts []DashAlert) []byte {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><title>ndsm cluster</title>
<style>
body{font-family:ui-monospace,monospace;background:#111;color:#ddd;margin:1.5em}
h1{font-size:1.2em} .meta{color:#888;font-size:.85em}
.node{border:1px solid #333;border-radius:6px;padding:.8em 1em;margin:.8em 0;background:#181818}
.node h2{font-size:1em;margin:0 0 .4em}
.badge{display:inline-block;padding:0 .5em;border-radius:3px;font-size:.8em;margin-left:.6em}
.fresh{background:#153;color:#9f9} .stale{background:#511;color:#f99}
table{border-collapse:collapse;font-size:.85em}
td,th{padding:.1em .6em;text-align:left;border-bottom:1px solid #2a2a2a}
.spark{vertical-align:middle} .val{color:#9cf}
.peers{color:#aaa;font-size:.85em;margin:.3em 0}
.sus{color:#f99}
.alerts{border:1px solid #333;border-radius:6px;padding:.8em 1em;margin:.8em 0;background:#181818}
.alerts h2{font-size:1em;margin:0 0 .4em}
.sev-ok{background:#153;color:#9f9} .sev-warning{background:#542;color:#fc6} .sev-critical{background:#511;color:#f99}
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>ndsm cluster telemetry</h1>\n<p class=\"meta\">%d node(s) &middot; view at %s &middot; stale after %s</p>\n",
		len(v.Nodes), html.EscapeString(v.Now.Format(time.RFC3339)), v.StaleAfter)
	writeAlertsPanel(&b, v.Now, alerts)
	writeTopicsPanel(&b, v.Topics, v.HotTopics)
	for _, n := range v.Nodes {
		badge := `<span class="badge fresh">fresh</span>`
		if !n.Fresh {
			badge = `<span class="badge stale">stale</span>`
		}
		fmt.Fprintf(&b, "<div class=\"node\"><h2>%s%s</h2>\n", html.EscapeString(n.Node), badge)
		fmt.Fprintf(&b, "<p class=\"meta\">seq %d &middot; %d report(s) &middot; last %s (age %s)",
			n.Seq, n.Reports, html.EscapeString(n.LastReport.Format(time.RFC3339)), n.Age)
		if n.TraceLen > 0 || n.TraceTotal > 0 {
			fmt.Fprintf(&b, " &middot; trace %d held / %d total / %d dropped", n.TraceLen, n.TraceTotal, n.TraceDrops)
		}
		b.WriteString("</p>\n")
		if len(n.Health) > 0 {
			b.WriteString(`<p class="peers">peers:`)
			for _, p := range n.Health {
				cls := ""
				if p.Suspected {
					cls = ` class="sus"`
				}
				fmt.Fprintf(&b, " <span%s>%s(%s", cls, html.EscapeString(p.Peer), html.EscapeString(p.Breaker))
				if p.Suspected {
					b.WriteString(", suspected")
				}
				b.WriteString(")</span>")
			}
			b.WriteString("</p>\n")
		}
		writeSeriesTable(&b, n.Series)
		b.WriteString("</div>\n")
	}
	b.WriteString("</body></html>\n")
	return []byte(b.String())
}

// writeAlertsPanel renders the SLO alerts table. No alerts configured: no
// panel (the dashboard predates the engine and must not grow noise).
func writeAlertsPanel(b *strings.Builder, now time.Time, alerts []DashAlert) {
	if len(alerts) == 0 {
		return
	}
	b.WriteString("<div class=\"alerts\"><h2>SLO alerts</h2>\n")
	b.WriteString("<table><tr><th>objective</th><th>node</th><th>state</th><th>burn</th><th>since</th></tr>\n")
	for _, a := range alerts {
		since := ""
		if !a.Since.IsZero() {
			since = now.Sub(a.Since).String()
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td><span class=\"badge sev-%s\">%s</span></td><td class=\"val\">%.2f</td><td>%s</td></tr>\n",
			html.EscapeString(a.Objective), html.EscapeString(a.Node),
			html.EscapeString(a.Severity), html.EscapeString(a.Severity),
			a.Burn, html.EscapeString(since))
	}
	b.WriteString("</table></div>\n")
}

// writeTopicsPanel renders the cluster-merged per-topic attribution: call
// share bars from the merged top-k, latency quantiles from the merged
// t-digests. No digests published: no panel.
func writeTopicsPanel(b *strings.Builder, topics []TopicStat, hot []sketch.TopKEntry) {
	if len(topics) == 0 && len(hot) == 0 {
		return
	}
	b.WriteString("<div class=\"alerts\"><h2>Request attribution</h2>\n")
	if len(topics) > 0 {
		total := 0.0
		for _, t := range topics {
			total += t.Count
		}
		b.WriteString("<table><tr><th>topic</th><th>calls</th><th>share</th><th>p50 ms</th><th>p99 ms</th></tr>\n")
		for _, t := range topics {
			share := 0.0
			if total > 0 {
				share = t.Count / total
			}
			fmt.Fprintf(b, "<tr><td>%s</td><td class=\"val\">%s</td><td>%s %.1f%%</td><td class=\"val\">%s</td><td class=\"val\">%s</td></tr>\n",
				html.EscapeString(t.Topic), trimNum(t.Count), shareBar(share), 100*share,
				trimNum(t.P50), trimNum(t.P99))
		}
		b.WriteString("</table>\n")
	}
	if len(hot) > 0 {
		b.WriteString("<p class=\"peers\">hot topics:")
		for i, e := range hot {
			if i >= 5 {
				break
			}
			fmt.Fprintf(b, " %s(%d&plusmn;%d)", html.EscapeString(e.Key), e.Count, e.Err)
		}
		b.WriteString("</p>\n")
	}
	b.WriteString("</div>\n")
}

// shareBar renders a topic's traffic share as a fixed-width inline SVG bar.
func shareBar(share float64) string {
	w := share * (sparkW - 2)
	return fmt.Sprintf(
		`<svg class="spark" width="%d" height="10" viewBox="0 0 %d 10"><rect x="1" y="2" width="%.1f" height="6" fill="#6cf"/></svg>`,
		sparkW, sparkW, w)
}

func writeSeriesTable(b *strings.Builder, series map[string][]Point) {
	if len(series) == 0 {
		return
	}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	b.WriteString("<table><tr><th>metric</th><th>last</th><th></th></tr>\n")
	for _, name := range names {
		pts := series[name]
		last := 0.0
		if len(pts) > 0 {
			last = pts[len(pts)-1].V
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td class=\"val\">%s</td><td>%s</td></tr>\n",
			html.EscapeString(name), trimNum(last), sparkline(pts))
	}
	b.WriteString("</table>\n")
}

// sparkline renders one series as an inline SVG polyline scaled into a
// fixed-size box; a flat series draws a midline.
func sparkline(pts []Point) string {
	if len(pts) == 0 {
		return ""
	}
	minV, maxV := pts[0].V, pts[0].V
	minT, maxT := pts[0].T, pts[len(pts)-1].T
	for _, p := range pts {
		if p.V < minV {
			minV = p.V
		}
		if p.V > maxV {
			maxV = p.V
		}
	}
	span := maxV - minV
	tspan := float64(maxT.Sub(minT))
	var coords []string
	for i, p := range pts {
		x := float64(i) / float64(max(len(pts)-1, 1)) * (sparkW - 2)
		if tspan > 0 {
			x = float64(p.T.Sub(minT)) / tspan * (sparkW - 2)
		}
		y := float64(sparkH) / 2
		if span > 0 {
			y = (1 - (p.V-minV)/span) * (sparkH - 4)
		}
		coords = append(coords, fmt.Sprintf("%.1f,%.1f", x+1, y+2))
	}
	return fmt.Sprintf(
		`<svg class="spark" width="%d" height="%d" viewBox="0 0 %d %d"><polyline fill="none" stroke="#6cf" stroke-width="1.5" points="%s"/></svg>`,
		sparkW, sparkH, sparkW, sparkH, strings.Join(coords, " "))
}

func trimNum(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}
