package telemetry

import "time"

// Point is one sample in a time series.
type Point struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// Series is a fixed-capacity ring buffer of points: the windowed storage
// behind every per-node, per-metric aggregator series. Appends are O(1), the
// newest Cap points win, and eviction is counted so a view can say how much
// history it no longer holds. Series is not safe for concurrent use; the
// Aggregator serializes access under its own lock.
type Series struct {
	buf     []Point
	next    int
	full    bool
	evicted uint64
}

// NewSeries builds a series holding up to capacity points (default 128 when
// capacity <= 0).
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = 128
	}
	return &Series{buf: make([]Point, 0, capacity)}
}

// Append adds a point, evicting the oldest when the window is full.
func (s *Series) Append(p Point) {
	if !s.full {
		s.buf = append(s.buf, p)
		if len(s.buf) == cap(s.buf) {
			s.full = true
			s.next = 0
		}
		return
	}
	s.evicted++
	s.buf[s.next] = p
	s.next = (s.next + 1) % len(s.buf)
}

// Len reports how many points the window holds.
func (s *Series) Len() int { return len(s.buf) }

// Cap reports the window capacity.
func (s *Series) Cap() int { return cap(s.buf) }

// Evicted reports how many points fell out of the window.
func (s *Series) Evicted() uint64 { return s.evicted }

// Points returns the retained points oldest-first.
func (s *Series) Points() []Point {
	out := make([]Point, 0, len(s.buf))
	if s.full {
		out = append(out, s.buf[s.next:]...)
		out = append(out, s.buf[:s.next]...)
	} else {
		out = append(out, s.buf...)
	}
	return out
}

// Last returns the newest point (ok=false on an empty series).
func (s *Series) Last() (Point, bool) {
	if len(s.buf) == 0 {
		return Point{}, false
	}
	idx := len(s.buf) - 1
	if s.full {
		idx = (s.next - 1 + len(s.buf)) % len(s.buf)
	}
	return s.buf[idx], true
}
