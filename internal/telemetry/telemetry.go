// Package telemetry is the middleware's cluster observability plane: the
// continuous QoS-and-state observation loop the paper's §4 (MiLAN) argues a
// network-centric middleware must run to reconfigure the network around
// application needs.
//
// Each node runs a Publisher that periodically serializes a compact Report —
// the obs.Snapshot delta since its previous report, per-second rates derived
// from that delta, gauge readings, the health monitor's per-peer verdicts,
// and the trace collector's depth — stamped with the node's (possibly
// simulated) clock. Reports ship in-band over the existing endpoint/wire
// layer under the Topic constant: the plane piggybacks on the request/reply
// substrate the way health heartbeats piggyback on discovery, so it costs no
// new protocol.
//
// An Aggregator (in-process, inside ndsm-node, or inside the chaos world)
// ingests reports into per-node, per-metric windowed ring-buffer time
// series, derives freshness (a node silent for longer than StaleAfter is
// stale — the signal the chaos telemetry-freshness invariant asserts), and
// exposes the merged cluster view through webbridge's GET /cluster (JSON)
// and GET /dash (self-contained HTML dashboard).
package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"ndsm/internal/health"
)

// Topic is the endpoint topic telemetry reports ride on. Any node hosting an
// Aggregator registers its Handler here (core.Node.HandleTopic); publishers
// address their reports to it like any other request.
const Topic = "telemetry/report"

// Report is one node's periodic self-description. Counters carry deltas
// since the node's previous report (not absolutes), so aggregators can
// window and rate them without holding per-node baselines; Rates are those
// deltas divided by Elapsed. Time comes from the publisher's injected clock,
// which is what makes simulated-world telemetry deterministic.
type Report struct {
	// Node is the reporting node's name (its transport address).
	Node string `json:"node"`
	// Seq increments per publish; aggregators reject non-increasing
	// sequence numbers, so duplicated or reordered reports cannot corrupt a
	// series.
	Seq uint64 `json:"seq"`
	// Time is the publisher's clock reading at publish.
	Time time.Time `json:"time"`
	// Elapsed is the clock time since the node's previous report (zero on
	// the first).
	Elapsed time.Duration `json:"elapsed"`
	// Counters are deltas since the previous report.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Rates are Counters divided by Elapsed, in events per second.
	Rates map[string]float64 `json:"rates,omitempty"`
	// Gauges are instantaneous readings.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Health is the node's failure-detector view of its peers.
	Health []health.PeerStatus `json:"health,omitempty"`
	// TraceLen, TraceTotal, and TraceDropped describe the node's span
	// collector (zero when the node runs untraced).
	TraceLen     int    `json:"traceLen,omitempty"`
	TraceTotal   uint64 `json:"traceTotal,omitempty"`
	TraceDropped uint64 `json:"traceDropped,omitempty"`
	// TopicDigests carries one serialized t-digest of request latency in
	// milliseconds per topic (sketch.DecodeTDigest), cumulative since the
	// node's recorder started. Unlike Counters these are not deltas: t-digests
	// merge but do not subtract, so each report ships the whole summary and
	// the aggregator keeps only the newest per node. JSON base64-encodes the
	// bytes natively.
	TopicDigests map[string][]byte `json:"topicDigests,omitempty"`
	// TopKDigest is the node's serialized space-saving topic summary
	// (sketch.DecodeTopK), cumulative like TopicDigests.
	TopKDigest []byte `json:"topkDigest,omitempty"`
}

// Encode serializes the report for the wire.
func (r *Report) Encode() ([]byte, error) {
	if r.Node == "" {
		return nil, errors.New("telemetry: report needs a node name")
	}
	return json.Marshal(r)
}

// DecodeReport parses a wire payload back into a report.
func DecodeReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("telemetry: decode report: %w", err)
	}
	if r.Node == "" {
		return nil, errors.New("telemetry: report without a node name")
	}
	return &r, nil
}
