package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ndsm/internal/obs"
	"ndsm/internal/simtime"
	"ndsm/internal/wire"
)

func TestSeriesRingWindow(t *testing.T) {
	s := NewSeries(4)
	if s.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", s.Cap())
	}
	base := time.Unix(0, 0)
	for i := 0; i < 6; i++ {
		s.Append(Point{T: base.Add(time.Duration(i) * time.Second), V: float64(i)})
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
	if s.Evicted() != 2 {
		t.Fatalf("evicted = %d, want 2", s.Evicted())
	}
	pts := s.Points()
	for i, p := range pts {
		want := float64(i + 2) // 0 and 1 were evicted
		if p.V != want {
			t.Errorf("point %d = %v, want %v", i, p.V, want)
		}
		if i > 0 && !pts[i-1].T.Before(p.T) {
			t.Errorf("points not time-ordered at %d: %v !< %v", i, pts[i-1].T, p.T)
		}
	}
	last, ok := s.Last()
	if !ok || last.V != 5 {
		t.Fatalf("last = %v/%v, want 5/true", last.V, ok)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries(0) // 0 falls back to the default capacity
	if s.Cap() <= 0 {
		t.Fatalf("default cap = %d, want > 0", s.Cap())
	}
	if _, ok := s.Last(); ok {
		t.Fatal("Last on empty series reported ok")
	}
	if pts := s.Points(); len(pts) != 0 {
		t.Fatalf("Points on empty series = %v", pts)
	}
}

func TestReportEncodeDecodeRoundtrip(t *testing.T) {
	r := &Report{
		Node:     "n1",
		Seq:      7,
		Time:     time.Unix(42, 0),
		Elapsed:  time.Second,
		Counters: map[string]int64{"x": 3},
		Rates:    map[string]float64{"x": 3},
		Gauges:   map[string]float64{"g": 1.5},
	}
	data, err := r.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeReport(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Node != "n1" || got.Seq != 7 || got.Counters["x"] != 3 || got.Gauges["g"] != 1.5 {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}

	if _, err := (&Report{}).Encode(); err == nil {
		t.Fatal("encoding a nodeless report succeeded")
	}
	if _, err := DecodeReport([]byte(`{"seq":1}`)); err == nil {
		t.Fatal("decoding a nodeless report succeeded")
	}
	if _, err := DecodeReport([]byte("not json")); err == nil {
		t.Fatal("decoding garbage succeeded")
	}
}

// TestPublisherDeltasAndRates walks a publisher through two intervals on a
// virtual clock and checks each report carries exactly that interval's
// counter delta and per-second rate.
func TestPublisherDeltasAndRates(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	reg := obs.NewRegistry()
	var got []*Report
	p, err := NewPublisher(PublisherOptions{
		Node:     "n1",
		Registry: reg,
		Clock:    clock,
		Send:     func(r *Report) error { got = append(got, r); return nil },
	})
	if err != nil {
		t.Fatalf("new publisher: %v", err)
	}
	defer p.Close() //nolint:errcheck

	reg.Counter("reqs").Inc(10)
	reg.Gauge("depth").Set(4)
	clock.Advance(2 * time.Second)
	if err := p.Publish(); err != nil {
		t.Fatalf("publish 1: %v", err)
	}

	reg.Counter("reqs").Inc(6)
	clock.Advance(3 * time.Second)
	if err := p.Publish(); err != nil {
		t.Fatalf("publish 2: %v", err)
	}

	if len(got) != 2 {
		t.Fatalf("sent %d reports, want 2", len(got))
	}
	r1, r2 := got[0], got[1]
	if r1.Seq != 1 || r2.Seq != 2 {
		t.Errorf("seqs = %d,%d, want 1,2", r1.Seq, r2.Seq)
	}
	if !r2.Time.After(r1.Time) {
		t.Errorf("timestamps not increasing: %v then %v", r1.Time, r2.Time)
	}
	if r1.Counters["reqs"] != 10 {
		t.Errorf("report 1 delta = %d, want 10", r1.Counters["reqs"])
	}
	if r1.Rates["reqs"] != 5 { // 10 over 2s
		t.Errorf("report 1 rate = %v, want 5", r1.Rates["reqs"])
	}
	if r1.Gauges["depth"] != 4 {
		t.Errorf("report 1 gauge = %v, want 4", r1.Gauges["depth"])
	}
	if r2.Counters["reqs"] != 6 {
		t.Errorf("report 2 delta = %d, want 6 (delta, not cumulative)", r2.Counters["reqs"])
	}
	if r2.Rates["reqs"] != 2 { // 6 over 3s
		t.Errorf("report 2 rate = %v, want 2", r2.Rates["reqs"])
	}
}

func TestPublisherValidation(t *testing.T) {
	if _, err := NewPublisher(PublisherOptions{Send: func(*Report) error { return nil }}); err == nil {
		t.Fatal("publisher without a node name built")
	}
	if _, err := NewPublisher(PublisherOptions{Node: "n"}); err == nil {
		t.Fatal("publisher without a send hook built")
	}
}

// TestPublisherStartLoop drives the periodic loop on a virtual clock.
func TestPublisherStartLoop(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	sent := make(chan *Report, 16)
	p, err := NewPublisher(PublisherOptions{
		Node:     "n1",
		Registry: obs.NewRegistry(),
		Clock:    clock,
		Interval: time.Second,
		Send:     func(r *Report) error { sent <- r; return nil },
	})
	if err != nil {
		t.Fatalf("new publisher: %v", err)
	}
	p.Start()
	p.Start() // second Start is a no-op, not a second loop

	for i := 0; i < 3; i++ {
		// The loop goroutine races to re-register its timer after each
		// publish; AdvanceToNext reports false until a waiter exists.
		deadline := time.Now().Add(5 * time.Second)
		for !clock.AdvanceToNext() {
			if time.Now().After(deadline) {
				t.Fatalf("loop never armed its timer before tick %d", i)
			}
			time.Sleep(time.Millisecond)
		}
		select {
		case r := <-sent:
			if r.Seq != uint64(i+1) {
				t.Fatalf("tick %d seq = %d, want %d", i, r.Seq, i+1)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no report after virtual tick %d", i)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := p.Close(); err != nil { // idempotent
		t.Fatalf("second close: %v", err)
	}
}

func TestAggregatorRejectsStaleSeqAndTime(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	a := NewAggregator(AggregatorOptions{Clock: clock, Registry: obs.NewRegistry()})
	base := time.Unix(100, 0)
	ok := &Report{Node: "n1", Seq: 2, Time: base, Counters: map[string]int64{"x": 1}}
	if err := a.Ingest(ok); err != nil {
		t.Fatalf("first ingest: %v", err)
	}
	if err := a.Ingest(&Report{Node: "n1", Seq: 2, Time: base.Add(time.Second)}); err == nil {
		t.Fatal("duplicate seq accepted")
	}
	if err := a.Ingest(&Report{Node: "n1", Seq: 3, Time: base}); err == nil {
		t.Fatal("non-advancing timestamp accepted")
	}
	if err := a.Ingest(&Report{Node: "n1", Seq: 3, Time: base.Add(time.Second)}); err != nil {
		t.Fatalf("valid successor rejected: %v", err)
	}
	if err := a.Ingest(nil); err == nil {
		t.Fatal("nil report accepted")
	}
	if err := a.Ingest(&Report{Seq: 1, Time: base}); err == nil {
		t.Fatal("nodeless report accepted")
	}
}

func TestAggregatorSeriesAndTotals(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	a := NewAggregator(AggregatorOptions{Clock: clock, Registry: obs.NewRegistry()})
	base := time.Unix(0, 0)
	for i := 1; i <= 3; i++ {
		r := &Report{
			Node:     "n1",
			Seq:      uint64(i),
			Time:     base.Add(time.Duration(i) * time.Second),
			Counters: map[string]int64{"reqs": 10},
			Rates:    map[string]float64{"reqs": 10},
			Gauges:   map[string]float64{"depth": float64(i)},
		}
		if err := a.Ingest(r); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	// Counter series accumulate deltas into running totals.
	pts := a.Series("n1", "reqs")
	if len(pts) != 3 || pts[0].V != 10 || pts[1].V != 20 || pts[2].V != 30 {
		t.Fatalf("counter series = %v, want cumulative 10,20,30", pts)
	}
	// Rates land on a derived ".rate" series.
	if pts := a.Series("n1", "reqs.rate"); len(pts) != 3 || pts[0].V != 10 {
		t.Fatalf("rate series = %v", pts)
	}
	// Gauges are stored as-is.
	if pts := a.Series("n1", "depth"); len(pts) != 3 || pts[2].V != 3 {
		t.Fatalf("gauge series = %v", pts)
	}
	if a.Series("n1", "nope") != nil || a.Series("ghost", "reqs") != nil {
		t.Fatal("absent series not nil")
	}
	if got := a.Nodes(); len(got) != 1 || got[0] != "n1" {
		t.Fatalf("nodes = %v", got)
	}
}

func TestAggregatorFreshness(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	a := NewAggregator(AggregatorOptions{Clock: clock, StaleAfter: 3 * time.Second, Registry: obs.NewRegistry()})
	if a.Fresh("n1") {
		t.Fatal("unknown node fresh")
	}
	if err := a.Ingest(&Report{Node: "n1", Seq: 1, Time: clock.Now()}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if !a.Fresh("n1") {
		t.Fatal("node not fresh right after ingest")
	}
	clock.Advance(3 * time.Second)
	if !a.Fresh("n1") {
		t.Fatal("node stale exactly at the horizon (bound is inclusive)")
	}
	clock.Advance(time.Millisecond)
	if a.Fresh("n1") {
		t.Fatal("node still fresh past the horizon")
	}
	// A new report restores freshness.
	if err := a.Ingest(&Report{Node: "n1", Seq: 2, Time: clock.Now()}); err != nil {
		t.Fatalf("reingest: %v", err)
	}
	if !a.Fresh("n1") {
		t.Fatal("node not fresh after recovery report")
	}
}

func TestAggregatorHandlerRoundtrip(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	a := NewAggregator(AggregatorOptions{Clock: clock, Registry: obs.NewRegistry()})
	h := a.Handler()

	r := &Report{Node: "n9", Seq: 1, Time: time.Unix(5, 0), Counters: map[string]int64{"x": 2}}
	payload, err := r.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	reply, err := h(&wire.Message{Kind: wire.KindRequest, Topic: Topic, Payload: payload})
	if err != nil {
		t.Fatalf("handler: %v", err)
	}
	if reply.Kind != wire.KindAck {
		t.Fatalf("reply kind = %v, want ack", reply.Kind)
	}
	if got := a.Series("n9", "x"); len(got) != 1 || got[0].V != 2 {
		t.Fatalf("series after handler ingest = %v", got)
	}

	if _, err := h(&wire.Message{Kind: wire.KindRequest, Topic: Topic, Payload: []byte("junk")}); err == nil {
		t.Fatal("handler accepted a garbage payload")
	}
	// Replay of the same report must surface as an error reply.
	if _, err := h(&wire.Message{Kind: wire.KindRequest, Topic: Topic, Payload: payload}); err == nil {
		t.Fatal("handler accepted a replayed report")
	}
}

func TestViewMergesCluster(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	a := NewAggregator(AggregatorOptions{Clock: clock, StaleAfter: 2 * time.Second, Registry: obs.NewRegistry()})
	if err := a.Ingest(&Report{Node: "b", Seq: 1, Time: clock.Now(), Counters: map[string]int64{"x": 1}}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5 * time.Second) // b goes stale
	if err := a.Ingest(&Report{Node: "a", Seq: 1, Time: clock.Now(), Gauges: map[string]float64{"g": 9}}); err != nil {
		t.Fatal(err)
	}
	v := a.View()
	if len(v.Nodes) != 2 || v.Nodes[0].Node != "a" || v.Nodes[1].Node != "b" {
		t.Fatalf("view nodes = %+v, want sorted a,b", v.Nodes)
	}
	if !v.Nodes[0].Fresh || v.Nodes[1].Fresh {
		t.Fatalf("freshness = %v,%v, want fresh a / stale b", v.Nodes[0].Fresh, v.Nodes[1].Fresh)
	}
	if v.StaleAfter != 2*time.Second {
		t.Fatalf("view staleAfter = %v", v.StaleAfter)
	}
	if len(v.Nodes[1].Series["x"]) != 1 {
		t.Fatalf("b's series missing from view: %+v", v.Nodes[1].Series)
	}
}

func TestRenderDash(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	a := NewAggregator(AggregatorOptions{Clock: clock, StaleAfter: 2 * time.Second, Registry: obs.NewRegistry()})
	base := clock.Now()
	for i := 1; i <= 5; i++ {
		if err := a.Ingest(&Report{
			Node:     "n<1>", // markup in a node name must come out escaped
			Seq:      uint64(i),
			Time:     base.Add(time.Duration(i) * time.Second),
			Counters: map[string]int64{"reqs": int64(i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(10 * time.Second)
	if err := a.Ingest(&Report{Node: "dead", Seq: 1, Time: clock.Now()}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5 * time.Second) // now "dead" is stale too... and n<1> long stale

	page := string(RenderDash(a.View()))
	for _, want := range []string{
		"<!DOCTYPE html", "<svg", "polyline", "stale", "reqs", "n&lt;1&gt;",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("dash missing %q", want)
		}
	}
	if strings.Contains(page, "n<1>") {
		t.Error("node name not HTML-escaped")
	}
	if strings.Contains(page, "<script") || bytes.Contains([]byte(page), []byte("http://")) {
		t.Error("dash must be self-contained: no scripts, no external fetches")
	}

	// An empty cluster still renders a page.
	empty := string(RenderDash(NewAggregator(AggregatorOptions{Registry: obs.NewRegistry()}).View()))
	if !strings.Contains(empty, "<!DOCTYPE html") {
		t.Error("empty dash is not a page")
	}
}
