package telemetry

import (
	"strings"
	"testing"
	"time"

	"ndsm/internal/obs"
	"ndsm/internal/simtime"
)

// TestPublisherHistogramQuantileGauges: the publisher folds histogram
// quantiles into the report's gauges so latency-threshold SLOs have a
// per-node series to watch.
func TestPublisherHistogramQuantileGauges(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	reg := obs.NewRegistry()
	var got []*Report
	p, err := NewPublisher(PublisherOptions{
		Node:     "n1",
		Registry: reg,
		Clock:    clock,
		Send:     func(r *Report) error { got = append(got, r); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck

	for i := 0; i < 100; i++ {
		reg.Histogram("rpc.latency").Observe(float64(i + 1))
	}
	clock.Advance(time.Second)
	if err := p.Publish(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("sent %d reports, want 1", len(got))
	}
	r := got[0]
	p50, ok50 := r.Gauges["rpc.latency.p50"]
	p99, ok99 := r.Gauges["rpc.latency.p99"]
	if !ok50 || !ok99 {
		t.Fatalf("quantile gauges missing: %+v", r.Gauges)
	}
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("quantiles implausible: p50=%v p99=%v", p50, p99)
	}

	// An empty histogram must not export zero-valued quantiles.
	reg.Histogram("idle.latency")
	clock.Advance(time.Second)
	if err := p.Publish(); err != nil {
		t.Fatal(err)
	}
	if _, ok := got[1].Gauges["idle.latency.p99"]; ok {
		t.Fatalf("empty histogram exported a quantile gauge: %+v", got[1].Gauges)
	}
}

// TestRenderDashAlerts: the alerts panel renders firing objectives and is
// omitted entirely when the cluster is calm.
func TestRenderDashAlerts(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	a := NewAggregator(AggregatorOptions{Clock: clock, StaleAfter: time.Hour, Registry: obs.NewRegistry()})
	if err := a.Ingest(&Report{Node: "n1", Seq: 1, Time: clock.Now(),
		Counters: map[string]int64{"reqs": 1}}); err != nil {
		t.Fatal(err)
	}

	alerts := []DashAlert{
		{Objective: "ctl-<miss>", Node: "n1", Severity: "critical", Burn: 6.25, Since: clock.Now()},
		{Objective: "freshness", Node: "n2", Severity: "warning", Burn: 1.5, Since: clock.Now()},
	}
	page := string(RenderDashAlerts(a.View(), alerts))
	for _, want := range []string{"SLO alerts", "sev-critical", "sev-warning", "ctl-&lt;miss&gt;", "6.25"} {
		if !strings.Contains(page, want) {
			t.Errorf("alert dash missing %q", want)
		}
	}
	if strings.Contains(page, "ctl-<miss>") {
		t.Error("objective name not HTML-escaped")
	}

	calm := string(RenderDashAlerts(a.View(), nil))
	if strings.Contains(calm, "SLO alerts") {
		t.Error("calm dash renders an alerts panel")
	}
}
