package telemetry

import (
	"strings"
	"testing"
	"time"

	"ndsm/internal/obs"
	"ndsm/internal/reqlog"
	"ndsm/internal/simtime"
	"ndsm/internal/sketch"
)

// fillRecorder records n requests on topic with the given latency.
func fillRecorder(rec *reqlog.Recorder, topic string, n int, latency time.Duration) {
	for i := 0; i < n; i++ {
		rec.Record(reqlog.Record{
			Time:    time.Unix(1_700_000_000, 0),
			Kind:    reqlog.KindClient,
			Topic:   topic,
			Outcome: reqlog.OutcomeOK,
			Latency: latency,
		})
	}
}

// TestDigestShippingAndClusterMerge walks a digest end to end: recorder →
// publisher report → wire encode/decode → aggregator ingest → cluster-merged
// quantiles and top-k over two nodes with disjoint traffic mixes.
func TestDigestShippingAndClusterMerge(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(1_700_000_000, 0))
	agg := NewAggregator(AggregatorOptions{Clock: clock, Registry: obs.NewRegistry()})

	publish := func(node string, rec *reqlog.Recorder) {
		t.Helper()
		var sent *Report
		p, err := NewPublisher(PublisherOptions{
			Node:     node,
			Registry: obs.NewRegistry(),
			ReqLog:   rec,
			Clock:    clock,
			Send:     func(r *Report) error { sent = r; return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Second)
		if err := p.Publish(); err != nil {
			t.Fatal(err)
		}
		if len(sent.TopicDigests) == 0 || len(sent.TopKDigest) == 0 {
			t.Fatalf("%s: report shipped without digests: %+v", node, sent)
		}
		// Round-trip the wire encoding: digests must survive JSON base64.
		data, err := sent.Encode()
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeReport(data)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Ingest(decoded); err != nil {
			t.Fatal(err)
		}
	}

	recA := reqlog.New(reqlog.Options{Registry: obs.NewRegistry()})
	fillRecorder(recA, "svc/hot", 600, 10*time.Millisecond)
	fillRecorder(recA, "svc/cold", 100, 50*time.Millisecond)
	publish("node-a", recA)

	recB := reqlog.New(reqlog.Options{Registry: obs.NewRegistry()})
	fillRecorder(recB, "svc/hot", 400, 30*time.Millisecond)
	publish("node-b", recB)

	// Merged hot-topic quantiles span both nodes: 600 samples at 10ms and
	// 400 at 30ms put the median at 10ms and p99 at 30ms.
	if p50, ok := agg.TopicQuantile("svc/hot", 0.50); !ok || p50 > 15 {
		t.Errorf("merged p50 = %v/%v, want ~10ms", p50, ok)
	}
	if p99, ok := agg.TopicQuantile("svc/hot", 0.99); !ok || p99 < 25 {
		t.Errorf("merged p99 = %v/%v, want ~30ms", p99, ok)
	}
	if _, ok := agg.TopicQuantile("svc/none", 0.5); ok {
		t.Error("unknown topic reported a quantile")
	}

	top := agg.MergedTopK(2)
	if len(top) != 2 || top[0].Key != "svc/hot" || top[0].Count != 1000 {
		t.Fatalf("merged topk = %+v, want svc/hot at 1000 first", top)
	}

	stats := agg.TopicStats()
	if len(stats) != 2 || stats[0].Topic != "svc/hot" || stats[0].Count != 1000 {
		t.Fatalf("topic stats = %+v, want svc/hot count 1000 first", stats)
	}
	if stats[1].Topic != "svc/cold" || stats[1].P99 < 45 {
		t.Errorf("cold stats = %+v, want p99 ~50ms", stats[1])
	}

	// The cluster view carries the merged attribution, and the dash renders
	// it as the Request attribution panel.
	view := agg.View()
	if len(view.Topics) != 2 || len(view.HotTopics) == 0 {
		t.Fatalf("view topics = %+v hot = %+v", view.Topics, view.HotTopics)
	}
	page := string(RenderDash(view))
	if !strings.Contains(page, "Request attribution") || !strings.Contains(page, "svc/hot") {
		t.Error("dash missing attribution panel")
	}
}

// TestIngestRejectsCorruptDigests pins the trust boundary: a report whose
// sketch payload fails to decode is rejected whole, leaving state untouched.
func TestIngestRejectsCorruptDigests(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	agg := NewAggregator(AggregatorOptions{Clock: clock, Registry: obs.NewRegistry()})
	base := Report{Node: "n1", Seq: 1, Time: time.Unix(1, 0)}

	bad := base
	bad.TopicDigests = map[string][]byte{"t": {0xFF, 0x01}}
	if err := agg.Ingest(&bad); err == nil {
		t.Fatal("corrupt topic digest accepted")
	}
	bad = base
	bad.TopKDigest = []byte{0xFF}
	if err := agg.Ingest(&bad); err == nil {
		t.Fatal("corrupt topk digest accepted")
	}
	if got := agg.Nodes(); len(got) != 0 && agg.View().Nodes[0].Reports != 0 {
		t.Fatalf("rejected reports mutated state: %+v", got)
	}

	// A well-formed report with real digests still lands.
	d := sketch.NewTDigest(0)
	d.Add(5)
	tk := sketch.NewTopK(0)
	tk.Offer("t", 1)
	good := base
	good.TopicDigests = map[string][]byte{"t": d.AppendBinary(nil)}
	good.TopKDigest = tk.AppendBinary(nil)
	if err := agg.Ingest(&good); err != nil {
		t.Fatal(err)
	}
	if _, ok := agg.TopicQuantile("t", 0.5); !ok {
		t.Error("digest from good report not queryable")
	}
}
