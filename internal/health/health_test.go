package health

import (
	"testing"
	"time"

	"ndsm/internal/discovery"
	"ndsm/internal/obs"
	"ndsm/internal/simtime"
	"ndsm/internal/svcdesc"
)

func newTestMonitor(clock simtime.Clock, reg *obs.Registry) *Monitor {
	return NewMonitor(Options{
		Clock:            clock,
		WindowSize:       16,
		MinSamples:       3,
		PhiThreshold:     3,
		FallbackTimeout:  500 * time.Millisecond,
		FailureThreshold: 2,
		OpenTimeout:      200 * time.Millisecond,
		HalfOpenProbes:   1,
		Registry:         reg,
	})
}

func TestUnknownPeerNotSuspect(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	m := newTestMonitor(clock, obs.NewRegistry())
	if m.Suspect("ghost") {
		t.Fatal("never-seen peer must not be suspect")
	}
	if got := m.Phi("ghost"); got != 0 {
		t.Fatalf("phi of unknown peer = %v, want 0", got)
	}
	if m.State("ghost") != Closed {
		t.Fatalf("unknown peer breaker = %v, want closed", m.State("ghost"))
	}
}

func TestPhiGrowsWithSilence(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	m := newTestMonitor(clock, obs.NewRegistry())
	// Regular 50ms heartbeats establish the inter-arrival distribution.
	for i := 0; i < 10; i++ {
		m.Heartbeat("s0")
		clock.Advance(50 * time.Millisecond)
	}
	low := m.Phi("s0")
	if m.Suspect("s0") {
		t.Fatalf("fresh peer suspected (phi=%v)", low)
	}
	clock.Advance(400 * time.Millisecond)
	high := m.Phi("s0")
	if high <= low {
		t.Fatalf("phi did not grow with silence: %v -> %v", low, high)
	}
	if !m.Suspect("s0") {
		t.Fatalf("silent peer not suspected (phi=%v)", high)
	}
	// A fresh heartbeat clears suspicion.
	m.Heartbeat("s0")
	if m.Suspect("s0") {
		t.Fatal("heartbeat did not clear suspicion")
	}
}

func TestFallbackTimeoutCoversColdStart(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	m := newTestMonitor(clock, obs.NewRegistry())
	// One heartbeat: zero inter-arrival samples, so phi cannot fire — only
	// the fixed-timeout fallback can.
	m.Heartbeat("s0")
	clock.Advance(400 * time.Millisecond)
	if m.Suspect("s0") {
		t.Fatal("suspect before fallback timeout")
	}
	clock.Advance(200 * time.Millisecond)
	if !m.Suspect("s0") {
		t.Fatal("fallback timeout did not mark cold-start peer suspect")
	}
}

func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	reg := obs.NewRegistry()
	m := newTestMonitor(clock, reg)
	if err := m.Allow("s0"); err != nil {
		t.Fatalf("closed circuit rejected call: %v", err)
	}
	m.ReportFailure("s0")
	if m.State("s0") != Closed {
		t.Fatal("one failure should not open (threshold 2)")
	}
	m.ReportFailure("s0")
	if m.State("s0") != Open {
		t.Fatalf("state after threshold failures = %v, want open", m.State("s0"))
	}
	if !m.Suspect("s0") {
		t.Fatal("open circuit must imply suspicion")
	}
	if err := m.Allow("s0"); err == nil {
		t.Fatal("open circuit allowed a call")
	}
	if got := reg.Counter("health.breaker_opened").Value(); got != 1 {
		t.Fatalf("breaker_opened = %d, want 1", got)
	}
}

func TestBreakerHalfOpenProbeBudgetAndRecovery(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	reg := obs.NewRegistry()
	m := newTestMonitor(clock, reg)
	m.ReportFailure("s0")
	m.ReportFailure("s0")
	clock.Advance(200 * time.Millisecond) // OpenTimeout elapses
	if err := m.Allow("s0"); err != nil {
		t.Fatalf("half-open circuit rejected first probe: %v", err)
	}
	if m.State("s0") != HalfOpen {
		t.Fatalf("state = %v, want half-open", m.State("s0"))
	}
	// Probe budget is 1: a second concurrent call is rejected.
	if err := m.Allow("s0"); err == nil {
		t.Fatal("half-open circuit exceeded probe budget")
	}
	m.ReportSuccess("s0")
	if m.State("s0") != Closed {
		t.Fatalf("state after probe success = %v, want closed", m.State("s0"))
	}
	if err := m.Allow("s0"); err != nil {
		t.Fatalf("recovered circuit rejected call: %v", err)
	}
	if got := reg.Counter("health.breaker_closed").Value(); got != 1 {
		t.Fatalf("breaker_closed = %d, want 1", got)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	m := newTestMonitor(clock, obs.NewRegistry())
	m.ReportFailure("s0")
	m.ReportFailure("s0")
	clock.Advance(200 * time.Millisecond)
	if err := m.Allow("s0"); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	m.ReportFailure("s0")
	if m.State("s0") != Open {
		t.Fatalf("state after probe failure = %v, want open", m.State("s0"))
	}
	// The re-opened circuit waits a full OpenTimeout again.
	clock.Advance(100 * time.Millisecond)
	if err := m.Allow("s0"); err == nil {
		t.Fatal("re-opened circuit allowed a call before OpenTimeout")
	}
	clock.Advance(100 * time.Millisecond)
	if err := m.Allow("s0"); err != nil {
		t.Fatalf("circuit stuck open after second OpenTimeout: %v", err)
	}
}

func TestSuccessIsHeartbeat(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	m := newTestMonitor(clock, obs.NewRegistry())
	m.Heartbeat("s0")
	clock.Advance(600 * time.Millisecond)
	if !m.Suspect("s0") {
		t.Fatal("want suspicion after fallback timeout")
	}
	m.ReportSuccess("s0")
	if m.Suspect("s0") {
		t.Fatal("a successful reply is proof of life; suspicion must clear")
	}
}

func TestSuspectedPeersAndForget(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	m := newTestMonitor(clock, obs.NewRegistry())
	m.Heartbeat("s0")
	m.Heartbeat("s1")
	clock.Advance(600 * time.Millisecond)
	m.Heartbeat("s1") // only s0 stays silent
	sus := m.SuspectedPeers()
	if len(sus) != 1 || sus[0] != "s0" {
		t.Fatalf("SuspectedPeers = %v, want [s0]", sus)
	}
	m.Forget("s0")
	if m.Suspect("s0") {
		t.Fatal("forgotten peer still suspect")
	}
}

// fakeRegistry is a canned-response discovery registry.
type fakeRegistry struct {
	descs []*svcdesc.Description
}

func (f *fakeRegistry) Register(*svcdesc.Description) error { return nil }
func (f *fakeRegistry) Unregister(string) error             { return nil }
func (f *fakeRegistry) Renew(string) error                  { return nil }
func (f *fakeRegistry) Lookup(*svcdesc.Query) ([]*svcdesc.Description, error) {
	return f.descs, nil
}
func (f *fakeRegistry) Close() error { return nil }

func TestWatchRegistryHeartbeatsListedProviders(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	reg := obs.NewRegistry()
	m := newTestMonitor(clock, reg)
	inner := &fakeRegistry{descs: []*svcdesc.Description{
		{Name: "svc/x", Provider: "s0"},
		{Name: "svc/x", Provider: "s1"},
	}}
	watched := WatchRegistry(inner, m)
	// Lookups at a steady cadence keep both providers alive.
	for i := 0; i < 5; i++ {
		if _, err := watched.Lookup(&svcdesc.Query{Name: "svc/x"}); err != nil {
			t.Fatal(err)
		}
		clock.Advance(50 * time.Millisecond)
	}
	if m.Suspect("s0") || m.Suspect("s1") {
		t.Fatal("steadily listed providers must not be suspect")
	}
	// s1 drops out of the listings (lease expired / stopped answering).
	inner.descs = inner.descs[:1]
	for i := 0; i < 12; i++ {
		if _, err := watched.Lookup(&svcdesc.Query{Name: "svc/x"}); err != nil {
			t.Fatal(err)
		}
		clock.Advance(50 * time.Millisecond)
	}
	if m.Suspect("s0") {
		t.Fatal("still-listed provider became suspect")
	}
	if !m.Suspect("s1") {
		t.Fatal("unlisted provider never became suspect")
	}
	if got := reg.Counter("health.heartbeats").Value(); got == 0 {
		t.Fatal("watched lookups recorded no heartbeats")
	}
}

// WatchRegistry must pass nil monitors through untouched.
func TestWatchRegistryNilMonitor(t *testing.T) {
	inner := &fakeRegistry{}
	if got := WatchRegistry(inner, nil); got != discovery.Registry(inner) {
		t.Fatal("nil monitor should return the inner registry unchanged")
	}
}
