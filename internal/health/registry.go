package health

import (
	"ndsm/internal/discovery"
	"ndsm/internal/svcdesc"
)

// watchedRegistry decorates a discovery.Registry so that every provider
// listed in a successful lookup counts as a heartbeat.
type watchedRegistry struct {
	inner   discovery.Registry
	monitor *Monitor
}

var _ discovery.Registry = (*watchedRegistry)(nil)

// WatchRegistry wraps a registry so lookups feed the monitor: a provider
// listed in a lookup result either renewed its lease recently (centralized
// mode) or answered the flood query directly (distributed mode) — both are
// proofs of life piggybacked on the discovery traffic the stack already
// generates, so the failure detector needs no wire protocol of its own.
func WatchRegistry(inner discovery.Registry, m *Monitor) discovery.Registry {
	if m == nil {
		return inner
	}
	return &watchedRegistry{inner: inner, monitor: m}
}

// Register implements discovery.Registry.
func (w *watchedRegistry) Register(d *svcdesc.Description) error { return w.inner.Register(d) }

// Unregister implements discovery.Registry.
func (w *watchedRegistry) Unregister(key string) error { return w.inner.Unregister(key) }

// Renew implements discovery.Registry.
func (w *watchedRegistry) Renew(key string) error { return w.inner.Renew(key) }

// Lookup implements discovery.Registry, heartbeating every listed provider.
func (w *watchedRegistry) Lookup(q *svcdesc.Query) ([]*svcdesc.Description, error) {
	descs, err := w.inner.Lookup(q)
	if err != nil {
		return descs, err
	}
	for _, d := range descs {
		if d != nil && d.Provider != "" {
			w.monitor.Heartbeat(d.Provider)
		}
	}
	return descs, nil
}

// Close implements discovery.Registry.
func (w *watchedRegistry) Close() error { return w.inner.Close() }
