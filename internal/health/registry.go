package health

import (
	"ndsm/internal/discovery"
	"ndsm/internal/svcdesc"
)

// watchedRegistry decorates a discovery.Resolver so that every provider
// listed in a successful lookup counts as a heartbeat.
type watchedRegistry struct {
	inner   discovery.Resolver
	monitor *Monitor
}

var (
	_ discovery.Resolver    = (*watchedRegistry)(nil)
	_ discovery.Invalidator = (*watchedRegistry)(nil)
)

// WatchRegistry wraps a resolver so lookups feed the monitor: a provider
// listed in a lookup result either renewed its lease recently (centralized
// mode) or answered the flood query directly (distributed mode) — both are
// proofs of life piggybacked on the discovery traffic the stack already
// generates, so the failure detector needs no wire protocol of its own.
func WatchRegistry(inner discovery.Resolver, m *Monitor) discovery.Resolver {
	if m == nil {
		return inner
	}
	return &watchedRegistry{inner: inner, monitor: m}
}

// Register implements discovery.Resolver.
func (w *watchedRegistry) Register(d *svcdesc.Description) error { return w.inner.Register(d) }

// Unregister implements discovery.Resolver.
func (w *watchedRegistry) Unregister(key string) error { return w.inner.Unregister(key) }

// Renew implements discovery.Resolver.
func (w *watchedRegistry) Renew(key string) error { return w.inner.Renew(key) }

// Lookup implements discovery.Resolver, heartbeating every listed provider.
func (w *watchedRegistry) Lookup(q *svcdesc.Query) ([]*svcdesc.Description, error) {
	descs, err := w.inner.Lookup(q)
	if err != nil {
		return descs, err
	}
	for _, d := range descs {
		if d != nil && d.Provider != "" {
			w.monitor.Heartbeat(d.Provider)
		}
	}
	return descs, nil
}

// InvalidateProvider implements discovery.Invalidator, forwarding to the
// wrapped resolver when it caches lookups (a no-op otherwise) — suspicion
// raised against a provider must reach the cache even through this wrapper.
func (w *watchedRegistry) InvalidateProvider(provider string) {
	discovery.Invalidate(w.inner, provider)
}

// Close implements discovery.Resolver.
func (w *watchedRegistry) Close() error { return w.inner.Close() }
