// Package health is the middleware's liveness layer: a per-peer failure
// detector feeding a per-peer circuit breaker, both driven entirely by an
// injected simtime.Clock so virtual-time tests exercise every timing path.
//
// The detector follows the phi-accrual design of Hayashibara et al.: instead
// of a binary alive/dead verdict it accrues suspicion continuously from the
// observed heartbeat inter-arrival distribution, so the threshold trades
// detection time against false positives explicitly. Heartbeats cost nothing
// extra — they piggyback on traffic the stack already generates (discovery
// lease renewals observed through lookup results, request replies), in the
// spirit of Chandra & Toueg's unreliable failure detectors: cheap, wrong
// sometimes, and useful anyway. A fixed-timeout fallback covers the cold
// start (too few samples for a meaningful distribution) and bounds detection
// time when the sampled mean drifts.
//
// The breaker (closed -> open -> half-open with a probe budget) converts
// suspicion and observed call failures into fail-fast behaviour: once a
// peer's circuit opens, callers get an immediate ErrOpen instead of burning
// a timeout on a peer that is almost certainly gone. After OpenTimeout the
// circuit admits a bounded number of probes; one success closes it.
package health

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"ndsm/internal/obs"
	"ndsm/internal/simtime"
	"ndsm/internal/trace"
)

// ErrOpen is returned by Allow while a peer's circuit is open (or its
// half-open probe budget is spent). Callers should fail fast, not retry.
var ErrOpen = errors.New("health: circuit open")

// State is a circuit breaker state.
type State int

// Breaker states.
const (
	// Closed passes all traffic (the healthy steady state).
	Closed State = iota
	// Open fails all traffic fast until OpenTimeout elapses.
	Open
	// HalfOpen admits up to HalfOpenProbes trial calls; one success closes
	// the circuit, one failure re-opens it.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Options tunes a Monitor. The zero value is usable: real clock, defaults
// tuned for second-scale heartbeat cadences.
type Options struct {
	// Clock drives all detector and breaker timing (default real time).
	Clock simtime.Clock
	// WindowSize is the inter-arrival sample window per peer (default 32).
	WindowSize int
	// MinSamples is how many inter-arrival samples the phi estimate needs
	// before it participates in suspicion (default 3).
	MinSamples int
	// PhiThreshold is the suspicion level that marks a peer suspect
	// (default 8; lower detects faster but false-suspects more).
	PhiThreshold float64
	// FallbackTimeout is the fixed-timeout fallback: a peer whose last
	// heartbeat is older than this is suspect regardless of phi — it covers
	// the cold start before MinSamples accrue and upper-bounds detection
	// time (default 10s; negative disables).
	FallbackTimeout time.Duration
	// FailureThreshold is how many consecutive call failures open a closed
	// circuit (default 3).
	FailureThreshold int
	// OpenTimeout is how long an open circuit rejects everything before
	// admitting probes (default 5s).
	OpenTimeout time.Duration
	// HalfOpenProbes is the half-open trial budget (default 1).
	HalfOpenProbes int
	// Registry receives transition counters (nil: the default registry).
	Registry *obs.Registry
	// Name prefixes the metric names (default "health").
	Name string
	// Tracer records liveness events (heartbeats, suspicion flips, breaker
	// transitions) as zero-length spans on the timeline. Nil follows the
	// process default.
	Tracer *trace.Tracer
}

func (o Options) withDefaults() Options {
	if o.Clock == nil {
		o.Clock = simtime.Real{}
	}
	if o.WindowSize <= 0 {
		o.WindowSize = 32
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 3
	}
	if o.PhiThreshold <= 0 {
		o.PhiThreshold = 8
	}
	if o.FallbackTimeout == 0 {
		o.FallbackTimeout = 10 * time.Second
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 3
	}
	if o.OpenTimeout <= 0 {
		o.OpenTimeout = 5 * time.Second
	}
	if o.HalfOpenProbes <= 0 {
		o.HalfOpenProbes = 1
	}
	if o.Name == "" {
		o.Name = "health"
	}
	return o
}

// peerState is one peer's detector window plus breaker machine.
type peerState struct {
	// Detector: last heartbeat and the inter-arrival sample ring.
	last      time.Time
	hasLast   bool
	intervals []float64 // milliseconds
	next      int
	n         int
	sum       float64
	suspected bool // last verdict, for transition counting

	// Breaker.
	state    State
	fails    int
	openedAt time.Time
	probes   int
}

// Monitor tracks liveness per peer: heartbeat arrivals feed the phi-accrual
// detector, call outcomes feed the circuit breaker, and Suspect/Allow expose
// the combined verdict. Safe for concurrent use.
type Monitor struct {
	opts     Options
	traceRef *trace.Ref

	mu    sync.Mutex
	peers map[string]*peerState

	heartbeats *obs.Counter
	suspicions *obs.Counter
	opened     *obs.Counter
	halfOpened *obs.Counter
	closedC    *obs.Counter
	suspectedG *obs.Gauge
}

// NewMonitor builds a monitor.
func NewMonitor(opts Options) *Monitor {
	opts = opts.withDefaults()
	r := obs.Or(opts.Registry)
	return &Monitor{
		opts:       opts,
		traceRef:   trace.NewRef(opts.Tracer),
		peers:      make(map[string]*peerState),
		heartbeats: r.Counter(opts.Name + ".heartbeats"),
		suspicions: r.Counter(opts.Name + ".suspicions"),
		opened:     r.Counter(opts.Name + ".breaker_opened"),
		halfOpened: r.Counter(opts.Name + ".breaker_half_opened"),
		closedC:    r.Counter(opts.Name + ".breaker_closed"),
		suspectedG: r.Gauge(opts.Name + ".suspected"),
	}
}

// SetTracer installs the monitor's tracer (nil reverts to the process
// default).
func (m *Monitor) SetTracer(t *trace.Tracer) { m.traceRef.Set(t) }

func (m *Monitor) peer(name string) *peerState {
	ps := m.peers[name]
	if ps == nil {
		ps = &peerState{intervals: make([]float64, m.opts.WindowSize)}
		m.peers[name] = ps
	}
	return ps
}

// Heartbeat records a proof of life from peer (a lease renewal seen in a
// lookup result, a reply, any message) at the monitor clock's current time.
func (m *Monitor) Heartbeat(peer string) {
	if peer == "" {
		return
	}
	now := m.opts.Clock.Now()
	m.mu.Lock()
	m.heartbeatLocked(m.peer(peer), now)
	m.mu.Unlock()
	m.heartbeats.Inc(1)
	m.traceRef.Get().Event("health.heartbeat", "peer", peer)
}

func (m *Monitor) heartbeatLocked(ps *peerState, now time.Time) {
	if ps.hasLast {
		dt := now.Sub(ps.last)
		if dt > 0 {
			v := float64(dt) / float64(time.Millisecond)
			if ps.n == len(ps.intervals) {
				ps.sum -= ps.intervals[ps.next]
			} else {
				ps.n++
			}
			ps.intervals[ps.next] = v
			ps.sum += v
			ps.next = (ps.next + 1) % len(ps.intervals)
		}
	}
	ps.last = now
	ps.hasLast = true
}

// Phi returns the peer's current suspicion level: 0 for a peer heard from
// just now (or never heard from at all), growing without bound as silence
// stretches past the sampled inter-arrival mean. Following the exponential
// approximation used by production phi-accrual implementations,
// phi = elapsed / (mean * ln 10).
func (m *Monitor) Phi(peer string) float64 {
	now := m.opts.Clock.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	ps := m.peers[peer]
	if ps == nil {
		return 0
	}
	return m.phiLocked(ps, now)
}

func (m *Monitor) phiLocked(ps *peerState, now time.Time) float64 {
	if !ps.hasLast || ps.n == 0 {
		return 0
	}
	mean := ps.sum / float64(ps.n)
	if mean <= 0 {
		return 0
	}
	elapsed := float64(now.Sub(ps.last)) / float64(time.Millisecond)
	if elapsed <= 0 {
		return 0
	}
	return elapsed / (mean * math.Ln10)
}

// Suspect reports whether the peer is currently suspected dead: its circuit
// is open, its phi exceeds the threshold (once enough samples accrued), or
// its silence exceeds the fixed-timeout fallback. A peer never heard from is
// not suspect — suspicion needs evidence of prior life.
func (m *Monitor) Suspect(peer string) bool {
	now := m.opts.Clock.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	ps := m.peers[peer]
	if ps == nil {
		return false
	}
	verdict := m.suspectLocked(ps, now)
	if verdict != ps.suspected {
		ps.suspected = verdict
		if verdict {
			m.suspicions.Inc(1)
			m.suspectedG.Add(1)
			m.traceRef.Get().Event("health.suspected", "peer", peer,
				"phi", fmt.Sprintf("%.2f", m.phiLocked(ps, now)))
		} else {
			m.suspectedG.Add(-1)
			m.traceRef.Get().Event("health.recovered", "peer", peer)
		}
	}
	return verdict
}

func (m *Monitor) suspectLocked(ps *peerState, now time.Time) bool {
	if ps.state == Open {
		return true
	}
	if !ps.hasLast {
		return false
	}
	elapsed := now.Sub(ps.last)
	if m.opts.FallbackTimeout > 0 && elapsed > m.opts.FallbackTimeout {
		return true
	}
	return ps.n >= m.opts.MinSamples && m.phiLocked(ps, now) > m.opts.PhiThreshold
}

// Allow asks the peer's circuit breaker whether a call may proceed: nil when
// closed (or when a half-open probe slot is free), ErrOpen otherwise. Every
// allowed call must be concluded with ReportSuccess or ReportFailure.
func (m *Monitor) Allow(peer string) error {
	now := m.opts.Clock.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	ps := m.peer(peer)
	if ps.state == Open {
		if now.Sub(ps.openedAt) < m.opts.OpenTimeout {
			return ErrOpen
		}
		ps.state = HalfOpen
		ps.probes = 0
		m.halfOpened.Inc(1)
		m.traceRef.Get().Event("health.breaker_half_open", "peer", peer)
	}
	if ps.state == HalfOpen {
		if ps.probes >= m.opts.HalfOpenProbes {
			return ErrOpen
		}
		ps.probes++
	}
	return nil
}

// ReportSuccess concludes a call that reached the peer and got an answer. It
// closes the circuit and, because an answer is proof of life, also counts as
// a heartbeat.
func (m *Monitor) ReportSuccess(peer string) {
	if peer == "" {
		return
	}
	now := m.opts.Clock.Now()
	m.mu.Lock()
	ps := m.peer(peer)
	ps.fails = 0
	if ps.state != Closed {
		ps.state = Closed
		m.closedC.Inc(1)
		m.traceRef.Get().Event("health.breaker_closed", "peer", peer)
	}
	m.heartbeatLocked(ps, now)
	m.mu.Unlock()
	m.heartbeats.Inc(1)
}

// ReportFailure concludes a call that failed at the transport level. A
// half-open probe failure re-opens the circuit immediately; FailureThreshold
// consecutive failures open a closed one.
func (m *Monitor) ReportFailure(peer string) {
	if peer == "" {
		return
	}
	now := m.opts.Clock.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	ps := m.peer(peer)
	ps.fails++
	switch ps.state {
	case HalfOpen:
		ps.state = Open
		ps.openedAt = now
		m.opened.Inc(1)
		m.traceRef.Get().Event("health.breaker_open", "peer", peer)
	case Closed:
		if ps.fails >= m.opts.FailureThreshold {
			ps.state = Open
			ps.openedAt = now
			m.opened.Inc(1)
			m.traceRef.Get().Event("health.breaker_open", "peer", peer)
		}
	}
}

// State returns the peer's breaker state (Closed for unknown peers).
func (m *Monitor) State(peer string) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps := m.peers[peer]
	if ps == nil {
		return Closed
	}
	return ps.state
}

// PeerStatus is one peer's combined liveness verdict, as reported by Status
// (and served by the webbridge's /healthz endpoint).
type PeerStatus struct {
	Peer      string  `json:"peer"`
	Suspected bool    `json:"suspected"`
	Phi       float64 `json:"phi"`
	Breaker   string  `json:"breaker"`
}

// Status snapshots every tracked peer's detector and breaker state, sorted
// by peer name for stable output.
func (m *Monitor) Status() []PeerStatus {
	now := m.opts.Clock.Now()
	m.mu.Lock()
	out := make([]PeerStatus, 0, len(m.peers))
	for name, ps := range m.peers {
		out = append(out, PeerStatus{
			Peer:      name,
			Suspected: m.suspectLocked(ps, now),
			Phi:       m.phiLocked(ps, now),
			Breaker:   ps.state.String(),
		})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// SuspectedPeers lists every currently suspected peer.
func (m *Monitor) SuspectedPeers() []string {
	now := m.opts.Clock.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for name, ps := range m.peers {
		if m.suspectLocked(ps, now) {
			out = append(out, name)
		}
	}
	return out
}

// Forget drops all state for a peer (decommissioned supplier, shrinking
// fleet) so stale windows don't linger.
func (m *Monitor) Forget(peer string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ps := m.peers[peer]; ps != nil && ps.suspected {
		m.suspectedG.Add(-1)
	}
	delete(m.peers, peer)
}
