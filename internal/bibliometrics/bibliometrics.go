// Package bibliometrics regenerates the paper's only quantitative artifact,
// Figure 1: the number of middleware-related references per year in the
// IEEE Xplore database, 1989–2001. The series below is transcribed from the
// figure's bars and the surrounding prose ("the first middleware article was
// published in 1993 ... increased to 7 in 1994 and to approximately 170
// articles/year in the next 3 years").
package bibliometrics

import (
	"fmt"

	"ndsm/internal/stats"
)

// YearCount is one bar of Figure 1.
type YearCount struct {
	Year  int
	Count int
}

// Figure1 returns the transcribed series. Values before 1993 are zero (no
// middleware literature existed); the ramp follows the paper's prose and the
// bar heights.
func Figure1() []YearCount {
	return []YearCount{
		{1989, 0},
		{1990, 0},
		{1991, 0},
		{1992, 0},
		{1993, 1},
		{1994, 7},
		{1995, 20},
		{1996, 45},
		{1997, 75},
		{1998, 110},
		{1999, 150},
		{2000, 170},
		{2001, 180},
	}
}

// Total returns the series sum.
func Total(series []YearCount) int {
	sum := 0
	for _, yc := range series {
		sum += yc.Count
	}
	return sum
}

// Chart renders the series as the ASCII analogue of Figure 1.
func Chart(series []YearCount, width int) string {
	labels := make([]string, len(series))
	values := make([]float64, len(series))
	for i, yc := range series {
		labels[i] = fmt.Sprintf("%d", yc.Year)
		values[i] = float64(yc.Count)
	}
	return stats.BarChart(
		"Figure 1: middleware references per year (IEEE Xplore)",
		labels, values, width)
}

// CSV renders the series as two-column CSV.
func CSV(series []YearCount) string {
	t := stats.NewTable("", "year", "references")
	for _, yc := range series {
		t.AddRow(yc.Year, yc.Count)
	}
	return t.CSV()
}

// MonotoneAfterOnset verifies the figure's qualitative claim: zero before
// 1993, then non-decreasing growth.
func MonotoneAfterOnset(series []YearCount) bool {
	prev := -1
	for _, yc := range series {
		if yc.Year < 1993 && yc.Count != 0 {
			return false
		}
		if prev >= 0 && yc.Count < prev {
			return false
		}
		prev = yc.Count
	}
	return true
}
