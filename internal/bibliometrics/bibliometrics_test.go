package bibliometrics

import (
	"strings"
	"testing"
)

func TestFigure1Shape(t *testing.T) {
	series := Figure1()
	if len(series) != 13 {
		t.Fatalf("series length = %d, want 13 (1989-2001)", len(series))
	}
	if series[0].Year != 1989 || series[len(series)-1].Year != 2001 {
		t.Fatalf("year range %d-%d", series[0].Year, series[len(series)-1].Year)
	}
	// The paper's prose anchors: first article 1993, 7 in 1994,
	// ≈170/year by the end.
	byYear := map[int]int{}
	for _, yc := range series {
		byYear[yc.Year] = yc.Count
	}
	if byYear[1992] != 0 || byYear[1993] != 1 {
		t.Fatalf("onset wrong: 1992=%d 1993=%d", byYear[1992], byYear[1993])
	}
	if byYear[1994] != 7 {
		t.Fatalf("1994 = %d, want 7", byYear[1994])
	}
	if byYear[2001] < 160 || byYear[2001] > 200 {
		t.Fatalf("2001 = %d, want ≈170-180", byYear[2001])
	}
	if !MonotoneAfterOnset(series) {
		t.Fatal("series not monotone after onset")
	}
}

func TestMonotoneAfterOnsetRejects(t *testing.T) {
	if MonotoneAfterOnset([]YearCount{{1990, 5}}) {
		t.Fatal("pre-1993 nonzero accepted")
	}
	if MonotoneAfterOnset([]YearCount{{1995, 10}, {1996, 5}}) {
		t.Fatal("decrease accepted")
	}
}

func TestTotal(t *testing.T) {
	if got := Total([]YearCount{{1999, 2}, {2000, 3}}); got != 5 {
		t.Fatalf("Total = %d", got)
	}
}

func TestChart(t *testing.T) {
	out := Chart(Figure1(), 40)
	if !strings.Contains(out, "Figure 1") {
		t.Fatalf("missing title:\n%s", out)
	}
	for _, year := range []string{"1989", "1993", "2001"} {
		if !strings.Contains(out, year) {
			t.Fatalf("missing year %s:\n%s", year, out)
		}
	}
	// The tallest bar belongs to 2001.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "2001") || strings.Count(last, "#") != 40 {
		t.Fatalf("2001 bar wrong: %q", last)
	}
}

func TestCSV(t *testing.T) {
	out := CSV(Figure1())
	if !strings.HasPrefix(out, "year,references\n") {
		t.Fatalf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "1994,7\n") {
		t.Fatalf("missing 1994 row:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 14 {
		t.Fatalf("rows = %d, want 14", got)
	}
}
