package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"ndsm/internal/endpoint"
	"ndsm/internal/obs"
	"ndsm/internal/reqlog"
	"ndsm/internal/stats"
	"ndsm/internal/telemetry"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// E15Options sizes the request-analytics experiment.
type E15Options struct {
	// Seed fixes the workload RNG (default 15).
	Seed int64
	// Nodes is how many recorders (simulated nodes) feed the aggregator
	// (default 3).
	Nodes int
	// Requests is the per-node request count (default 20000).
	Requests int
	// ColdTopics is how many background topics share the non-hot traffic
	// (default 12).
	ColdTopics int
	// HotShare is the injected hot topic's traffic fraction (default 0.5).
	HotShare float64
	// Duration is one closed-loop throughput trial's measured window
	// (default 300ms).
	Duration time.Duration
	// Trials is how many interleaved off/on throughput trials run; the best
	// of each mode is compared, which cancels scheduler noise (default 3).
	Trials int
}

func (o E15Options) withDefaults() E15Options {
	if o.Seed == 0 {
		o.Seed = 15
	}
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Requests <= 0 {
		o.Requests = 20000
	}
	if o.ColdTopics <= 0 {
		o.ColdTopics = 12
	}
	if o.HotShare <= 0 || o.HotShare >= 1 {
		o.HotShare = 0.5
	}
	if o.Duration <= 0 {
		o.Duration = 300 * time.Millisecond
	}
	if o.Trials <= 0 {
		o.Trials = 3
	}
	return o
}

// E15 validates the request-analytics plane on both of its promises:
//
//   - Attribution accuracy: a skewed workload with one injected hot topic is
//     recorded on every node, the per-node sketches ship through telemetry
//     reports, and the aggregator's cluster-wide merge must rank the hot
//     topic #1 in the heavy-hitter summary with merged t-digest quantiles
//     within a few percent of the exact (fully retained) distribution.
//   - Overhead: the recorder's sampled-out hot path must cost zero
//     allocations per request, and the server-side recorder's absolute cost —
//     measured as added nanoseconds per request on a worst-case closed-loop
//     no-op echo, where nothing else amortizes it — must stay bounded. The
//     headline "<5% throughput regression" claim is carried by the -load
//     matrix instead: those servers run with recorders attached, so the
//     committed baseline's req/s is instrumented req/s and the compare
//     gate's load bound holds it.
//
// Both halves gate absolutely in ndsm-bench -compare: rank, p99 error,
// allocs/op, and the per-request overhead have contracts, not baselines.
func E15(opts E15Options) (Result, error) {
	opts = opts.withDefaults()

	acc, err := e15Attribution(opts)
	if err != nil {
		return Result{}, fmt.Errorf("E15 attribution: %w", err)
	}

	allocs := e15SampledOutAllocs()

	off, on, err := e15ThroughputPair(opts)
	if err != nil {
		return Result{}, fmt.Errorf("E15 throughput: %w", err)
	}
	// Absolute per-request cost of recording: the difference in round-trip
	// time, not a ratio — a no-op echo makes any fixed cost look like a large
	// percentage, but the nanoseconds are what a real workload actually pays.
	overheadNs := 0.0
	if off > 0 && on > 0 {
		overheadNs = 1e9 * (1/on - 1/off)
	}

	attr := stats.NewTable("E15: cluster attribution from merged sketches",
		"topic", "rank", "exact share %", "count err %", "p50 err %", "p99 err %")
	attr.AddRow("hot", acc.hotRank, acc.hotShare, acc.hotCountErr, acc.hotP50Err, acc.hotP99Err)
	attr.AddRow("cold (worst)", acc.worstColdRank, acc.worstColdShare,
		acc.worstColdCountErr, acc.worstColdP50Err, acc.worstColdP99Err)

	alloc := stats.NewTable("E15: sampled-out hot path",
		"path", "allocs/op")
	alloc.AddRow("recorder.Record (sampled out)", allocs)

	tput := stats.NewTable("E15: endpoint throughput with wide events",
		"workload", "req/s reqlog off", "req/s reqlog on", "overhead ns/req")
	tput.AddRow("closed loop", off, on, overheadNs)

	notes := []string{
		fmt.Sprintf("workload: %d nodes x %d requests, hot topic at %.0f%% share over %d cold topics (seed %d);",
			opts.Nodes, opts.Requests, 100*opts.HotShare, opts.ColdTopics, opts.Seed),
		"sketches travel inside telemetry reports; quantiles and ranks are read from the aggregator's cluster merge, never from raw samples;",
		fmt.Sprintf("throughput: best of %d interleaved %v closed-loop trials per mode; overhead is the added round-trip time on a no-op in-memory echo — the worst case, since nothing amortizes the recorder's two clock reads;",
			opts.Trials, opts.Duration),
		"the <5% regression contract lives in the -load matrix: those servers record wide events, so the baseline's req/s is already instrumented.",
	}
	if acc.hotRank != 1 {
		notes = append(notes, fmt.Sprintf("VIOLATION hot topic ranked #%d in the merged top-k, want #1.", acc.hotRank))
	}
	return Result{
		ID:     "E15",
		Title:  "Request analytics: attribution accuracy and wide-event overhead",
		Tables: []*stats.Table{attr, alloc, tput},
		Notes:  notes,
	}, nil
}

// e15Accuracy is the attribution leg's reading.
type e15Accuracy struct {
	hotRank     int
	hotShare    float64
	hotCountErr float64
	hotP50Err   float64
	hotP99Err   float64

	worstColdRank     int
	worstColdShare    float64
	worstColdCountErr float64
	worstColdP50Err   float64
	worstColdP99Err   float64
}

// e15Attribution drives the skewed workload through per-node recorders,
// ships each node's sketches in a telemetry report, and compares the
// aggregator's cluster-wide merge against the exact per-topic distributions.
func e15Attribution(opts E15Options) (e15Accuracy, error) {
	const hotTopic = "svc/hot"
	coldTopic := func(i int) string { return fmt.Sprintf("svc/cold%02d", i) }

	agg := telemetry.NewAggregator(telemetry.AggregatorOptions{
		StaleAfter: time.Minute,
		Registry:   obs.NewRegistry(),
	})
	// Exact per-topic latency samples (ms), all nodes pooled — the ground
	// truth the sketches are judged against.
	exact := make(map[string][]float64)
	counts := make(map[string]float64)

	for n := 0; n < opts.Nodes; n++ {
		rng := rand.New(rand.NewSource(opts.Seed + int64(n)))
		rec := reqlog.New(reqlog.Options{Registry: obs.NewRegistry()})
		for i := 0; i < opts.Requests; i++ {
			topic := hotTopic
			// Hot traffic is fast and heavy; each cold topic is a slower
			// long-tailed stream, so ranks and quantiles pull in opposite
			// directions — exactly the confusion attribution must resolve.
			latMs := 1 + rng.ExpFloat64()*2
			if rng.Float64() >= opts.HotShare {
				c := rng.Intn(opts.ColdTopics)
				topic = coldTopic(c)
				latMs = 5 + float64(c) + rng.ExpFloat64()*20
			}
			rec.Record(reqlog.Record{
				Time:    time.Now(),
				Kind:    reqlog.KindServer,
				Topic:   topic,
				Outcome: reqlog.OutcomeOK,
				Latency: time.Duration(latMs * float64(time.Millisecond)),
			})
			exact[topic] = append(exact[topic], latMs)
			counts[topic]++
		}
		if err := agg.Ingest(&telemetry.Report{
			Node:         fmt.Sprintf("n%d", n),
			Seq:          1,
			Time:         time.Now(),
			TopicDigests: rec.TopicDigests(),
			TopKDigest:   rec.TopKBinary(),
		}); err != nil {
			return e15Accuracy{}, err
		}
	}
	total := 0.0
	for _, c := range counts {
		total += c
	}
	for _, samples := range exact {
		sort.Float64s(samples)
	}

	ranked := agg.MergedTopK(0)
	rankOf := func(topic string) (int, float64) {
		for i, e := range ranked {
			if e.Key == topic {
				return i + 1, float64(e.Count)
			}
		}
		return len(ranked) + 1, 0
	}
	quantErr := func(topic string, q float64) (float64, error) {
		est, ok := agg.TopicQuantile(topic, q)
		if !ok {
			return 0, fmt.Errorf("topic %s missing from merged digests", topic)
		}
		samples := exact[topic]
		truth := samples[int(q*float64(len(samples)-1))]
		return 100 * abs(est-truth) / truth, nil
	}
	pctErr := func(est, truth float64) float64 {
		if truth == 0 {
			return 0
		}
		return 100 * abs(est-truth) / truth
	}

	var acc e15Accuracy
	var estCount float64
	acc.hotRank, estCount = rankOf(hotTopic)
	acc.hotShare = 100 * counts[hotTopic] / total
	acc.hotCountErr = pctErr(estCount, counts[hotTopic])
	var err error
	if acc.hotP50Err, err = quantErr(hotTopic, 0.50); err != nil {
		return acc, err
	}
	if acc.hotP99Err, err = quantErr(hotTopic, 0.99); err != nil {
		return acc, err
	}

	// The worst cold topic by p99 error: attribution has to hold on the
	// long tail too, not only on the headline heavy hitter.
	for i := 0; i < opts.ColdTopics; i++ {
		topic := coldTopic(i)
		rank, est := rankOf(topic)
		p50, err := quantErr(topic, 0.50)
		if err != nil {
			return acc, err
		}
		p99, err := quantErr(topic, 0.99)
		if err != nil {
			return acc, err
		}
		if p99 >= acc.worstColdP99Err {
			acc.worstColdRank = rank
			acc.worstColdShare = 100 * counts[topic] / total
			acc.worstColdCountErr = pctErr(est, counts[topic])
			acc.worstColdP50Err = p50
			acc.worstColdP99Err = p99
		}
	}
	return acc, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// e15SampledOutAllocs measures the recorder's steady-state sampled-out path:
// a healthy record on a warm topic that the exemplar sampler drops. The
// contract is zero allocations — observability that taxes the hot path per
// request gets turned off in production.
func e15SampledOutAllocs() float64 {
	rec := reqlog.New(reqlog.Options{
		SampleEvery: 1 << 30, // never keep a healthy exemplar
		Registry:    obs.NewRegistry(),
	})
	r := reqlog.Record{
		Time:    time.Unix(0, 0),
		Kind:    reqlog.KindServer,
		Topic:   "svc/warm",
		Outcome: reqlog.OutcomeOK,
		Latency: 2 * time.Millisecond,
	}
	// Warm the topic slot and the digest's internal buffers past their
	// growth phase so the measurement sees steady state only.
	for i := 0; i < 4096; i++ {
		rec.Record(r)
	}
	return testing.AllocsPerRun(2000, func() { rec.Record(r) })
}

// e15ThroughputPair measures a closed-loop endpoint workload with the
// server-side recorder off and on, interleaving trials and keeping each
// mode's best — the stable way to read a sub-microsecond per-request
// overhead through scheduler noise.
func e15ThroughputPair(opts E15Options) (off, on float64, err error) {
	for t := 0; t < opts.Trials; t++ {
		a, err := e15Throughput(false, opts.Duration)
		if err != nil {
			return 0, 0, err
		}
		if a > off {
			off = a
		}
		b, err := e15Throughput(true, opts.Duration)
		if err != nil {
			return 0, 0, err
		}
		if b > on {
			on = b
		}
	}
	return off, on, nil
}

// e15Throughput runs one closed-loop trial: a single caller issuing
// back-to-back requests at an unloaded in-memory server, with or without a
// wide-event recorder attached, returning requests per second.
func e15Throughput(withLog bool, duration time.Duration) (float64, error) {
	tr := transport.NewMem(transport.NewFabric())
	l, err := tr.Listen("srv")
	if err != nil {
		return 0, err
	}
	sopts := endpoint.ServerOptions{Name: "srv", Metrics: obs.NewRegistry()}
	if withLog {
		sopts.ReqLog = reqlog.New(reqlog.Options{Registry: obs.NewRegistry()})
	}
	srv := endpoint.NewServer(l, sopts)
	defer srv.Close() //nolint:errcheck
	srv.Handle("work", func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	caller, err := endpoint.NewCaller(tr, "srv", endpoint.CallerOptions{Eager: true})
	if err != nil {
		return 0, err
	}
	defer caller.Close() //nolint:errcheck

	payload := make([]byte, 64)
	// Warm the connection and (with the recorder on) the topic slot.
	for i := 0; i < 64; i++ {
		if _, err := caller.Do(&endpoint.Call{Topic: "work", Payload: payload, Timeout: endpoint.NoTimeout}); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	ops := 0
	for time.Since(start) < duration {
		for i := 0; i < 32; i++ {
			if _, err := caller.Do(&endpoint.Call{Topic: "work", Payload: payload, Timeout: endpoint.NoTimeout}); err != nil {
				return 0, err
			}
			ops++
		}
	}
	return float64(ops) / time.Since(start).Seconds(), nil
}
