package experiments

import (
	"fmt"
	"time"

	"ndsm/internal/discovery"
	"ndsm/internal/discovery/cluster"
	"ndsm/internal/netmux"
	"ndsm/internal/netsim"
	"ndsm/internal/obs"
	"ndsm/internal/routing"
	"ndsm/internal/stats"
	"ndsm/internal/svcdesc"
	"ndsm/internal/transport"
)

// radioNode is one fully stacked simulated node: mux, geographic router, and
// a sim transport riding the router — the stack centralized discovery uses
// to reach a registry across multiple radio hops.
type radioNode struct {
	id     netsim.NodeID
	mux    *netmux.Mux
	router *routing.Router
	tr     *transport.Sim
}

func (rn *radioNode) close() {
	if rn.tr != nil {
		_ = rn.tr.Close()
	}
	if rn.router != nil {
		rn.router.Close()
	}
	if rn.mux != nil {
		rn.mux.Close()
	}
}

// buildRadioNode stacks mux → router(geographic) → sim transport on a node.
func buildRadioNode(net *netsim.Network, id netsim.NodeID) (*radioNode, error) {
	mux, err := netmux.New(net, id)
	if err != nil {
		return nil, err
	}
	router, err := routing.NewWithSource(net, id, routing.Geographic{}, mux.Channel(0xAB))
	if err != nil {
		mux.Close()
		return nil, err
	}
	tr, err := transport.NewSim(router, id, nil)
	if err != nil {
		router.Close()
		mux.Close()
		return nil, err
	}
	return &radioNode{id: id, mux: mux, router: router, tr: tr}, nil
}

// gridNet builds an n-node grid (spacing 10 m, range 12 m) with unlimited
// energy, so message counts are the only cost metric.
func gridNet(n int) (*netsim.Network, []netsim.NodeID, error) {
	net := netsim.New(netsim.Config{Range: 12, Unlimited: true})
	ids, err := netsim.GridField(net, "n", n, 10)
	if err != nil {
		net.Close()
		return nil, nil, err
	}
	return net, ids, nil
}

func bpService(provider string) *svcdesc.Description {
	return &svcdesc.Description{
		Name:        "sensor/bp",
		Provider:    provider,
		Reliability: 0.9,
		PowerLevel:  1,
	}
}

// E1Options sizes the discovery comparison.
type E1Options struct {
	// Sizes are the grid node counts to sweep (default 9, 25, 49).
	Sizes []int
	// Lookups per configuration (default 5).
	Lookups int
	// ClusterSizes are the registry-cluster member counts for the lookup-path
	// sweep (default 1, 3, 5).
	ClusterSizes []int
	// ClusterLookups per cluster configuration (default 200; enough samples
	// for a stable p50 on a microsecond-scale path).
	ClusterLookups int
}

func (o E1Options) withDefaults() E1Options {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{9, 25, 49}
	}
	if o.Lookups <= 0 {
		o.Lookups = 5
	}
	if len(o.ClusterSizes) == 0 {
		o.ClusterSizes = []int{1, 3, 5}
	}
	if o.ClusterLookups <= 0 {
		o.ClusterLookups = 200
	}
	return o
}

// E1 compares centralized vs distributed discovery: radio messages and
// latency per lookup as the network grows.
func E1(opts E1Options) (Result, error) {
	opts = opts.withDefaults()
	table := stats.NewTable("E1: discovery cost vs network size",
		"nodes", "organization", "radio msgs/lookup", "latency ms", "found")
	for _, n := range opts.Sizes {
		msgs, lat, found, err := e1Distributed(n, opts.Lookups)
		if err != nil {
			return Result{}, fmt.Errorf("E1 distributed n=%d: %w", n, err)
		}
		table.AddRow(n, "distributed (flood)", msgs, lat, found)

		msgs, lat, found, err = e1Centralized(n, opts.Lookups)
		if err != nil {
			return Result{}, fmt.Errorf("E1 centralized n=%d: %w", n, err)
		}
		table.AddRow(n, "centralized (registry)", msgs, lat, found)
	}

	clusterTbl := stats.NewTable("E1b: registry cluster lookup path",
		"cluster size", "wire p50 µs", "cached p50 µs", "speedup x", "cache hit %")
	notes := []string{
		"Flood cost grows with N (every node rebroadcasts the query once);",
		"centralized cost grows only with the hop distance to the registry.",
		"E1b: steady-state lookups against a replicated registry cluster,",
		"quorum scatter-gather over the wire vs the client-side lease cache.",
	}
	for _, size := range opts.ClusterSizes {
		wire, cachedP50, hit, err := e1Cluster(size, opts.ClusterLookups)
		if err != nil {
			return Result{}, fmt.Errorf("E1 cluster size=%d: %w", size, err)
		}
		speedup := 0.0
		if cachedP50 > 0 {
			speedup = wire / cachedP50
		}
		clusterTbl.AddRow(size, wire, cachedP50, speedup, hit)
		if speedup < 10 {
			notes = append(notes, fmt.Sprintf(
				"UNEXPECTED: cluster size %d cached p50 only %.1fx faster than wire (want >=10x).",
				size, speedup))
		}
	}
	return Result{
		ID:     "E1",
		Title:  "Discovery: message cost and latency vs network size",
		Tables: []*stats.Table{table, clusterTbl},
		Notes:  notes,
	}, nil
}

// e1Cluster measures the two steady-state lookup paths against a registry
// cluster of the given size on an in-memory fabric: the quorum scatter-gather
// wire path, and the client lease cache serving fresh hits locally. Returns
// the two p50s (µs) and the cache hit rate (%).
func e1Cluster(size, lookups int) (wireP50, cachedP50, hitRate float64, err error) {
	fabric := transport.NewFabric()
	members := make([]string, size)
	for i := range members {
		members[i] = fmt.Sprintf("registry%d", i)
	}
	var nodes []*cluster.Node
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	for _, id := range members {
		tr := transport.NewMem(fabric)
		l, lerr := tr.Listen(id)
		if lerr != nil {
			return 0, 0, 0, lerr
		}
		n, nerr := cluster.NewNode(tr, l, cluster.NodeOptions{Self: id, Members: members})
		if nerr != nil {
			return 0, 0, 0, nerr
		}
		nodes = append(nodes, n)
	}

	res, err := cluster.NewResolver(transport.NewMem(fabric), cluster.ResolverOptions{Members: members})
	if err != nil {
		return 0, 0, 0, err
	}
	defer res.Close() //nolint:errcheck
	metrics := obs.NewRegistry()
	cached := discovery.NewCached(res, discovery.CacheOptions{TTL: time.Hour, Metrics: metrics})
	defer cached.Close() //nolint:errcheck

	for i := 0; i < 8; i++ {
		if err := cached.Register(bpService(fmt.Sprintf("sup%d", i))); err != nil {
			return 0, 0, 0, err
		}
	}
	q := &svcdesc.Query{Name: "sensor/bp"}
	if _, err := cached.Lookup(q); err != nil { // prime the cache
		return 0, 0, 0, err
	}

	wire := stats.NewSample(lookups)
	for i := 0; i < lookups; i++ {
		start := time.Now()
		if _, err := res.Lookup(q); err != nil {
			return 0, 0, 0, err
		}
		wire.Add(float64(time.Since(start)) / float64(time.Microsecond))
	}
	local := stats.NewSample(lookups)
	for i := 0; i < lookups; i++ {
		start := time.Now()
		if _, err := cached.Lookup(q); err != nil {
			return 0, 0, 0, err
		}
		local.Add(float64(time.Since(start)) / float64(time.Microsecond))
	}

	hits := metrics.Counter("discovery.cache.hits").Value()
	misses := metrics.Counter("discovery.cache.misses").Value()
	if total := hits + misses; total > 0 {
		hitRate = 100 * float64(hits) / float64(total)
	}
	return wire.Median(), local.Median(), hitRate, nil
}

// e1Distributed floods lookups from corner 0 for a service at the far
// corner.
func e1Distributed(n, lookups int) (msgs float64, latency float64, found bool, err error) {
	net, ids, err := gridNet(n)
	if err != nil {
		return 0, 0, false, err
	}
	defer net.Close()
	var agents []*discovery.Agent
	for _, id := range ids {
		mux, err := netmux.New(net, id)
		if err != nil {
			return 0, 0, false, err
		}
		defer mux.Close()
		a := discovery.NewAgent(mux, discovery.AgentConfig{
			QueryTTL:      16,
			CollectWindow: 120 * time.Millisecond,
			MaxResults:    1,
		})
		defer a.Close() //nolint:errcheck
		agents = append(agents, a)
	}
	if err := agents[n-1].Register(bpService(string(ids[n-1]))); err != nil {
		return 0, 0, false, err
	}

	lat := stats.NewSample(lookups)
	before := net.Counters()["sent"]
	for i := 0; i < lookups; i++ {
		start := time.Now()
		descs, err := agents[0].Lookup(&svcdesc.Query{Name: "sensor/bp"})
		if err != nil {
			return 0, 0, false, err
		}
		lat.AddDuration(time.Since(start))
		found = len(descs) > 0
	}
	// Allow in-flight rebroadcasts to finish before counting.
	time.Sleep(50 * time.Millisecond)
	total := net.Counters()["sent"] - before
	return float64(total) / float64(lookups), lat.Mean(), found, nil
}

// e1Centralized runs a registry at the grid center over the routed sim
// transport and looks up from corner 0.
func e1Centralized(n, lookups int) (msgs float64, latency float64, found bool, err error) {
	net, ids, err := gridNet(n)
	if err != nil {
		return 0, 0, false, err
	}
	defer net.Close()

	var nodes []*radioNode
	defer func() {
		for _, rn := range nodes {
			rn.close()
		}
	}()
	need := map[netsim.NodeID]bool{ids[0]: true, ids[n/2]: true, ids[n-1]: true}
	byID := make(map[netsim.NodeID]*radioNode)
	for _, id := range ids {
		if !need[id] {
			// Relays only need mux+router (no transport endpoints).
			mux, err := netmux.New(net, id)
			if err != nil {
				return 0, 0, false, err
			}
			router, err := routing.NewWithSource(net, id, routing.Geographic{}, mux.Channel(0xAB))
			if err != nil {
				mux.Close()
				return 0, 0, false, err
			}
			nodes = append(nodes, &radioNode{id: id, mux: mux, router: router})
			continue
		}
		rn, err := buildRadioNode(net, id)
		if err != nil {
			return 0, 0, false, err
		}
		nodes = append(nodes, rn)
		byID[id] = rn
	}

	registryNode := byID[ids[n/2]]
	l, err := registryNode.tr.Listen(string(registryNode.id))
	if err != nil {
		return 0, 0, false, err
	}
	srv := discovery.NewServer(discovery.NewStore(nil, 0), l)
	defer srv.Close() //nolint:errcheck

	// The supplier at the far corner registers over the radio.
	supplier := discovery.NewClient(byID[ids[n-1]].tr, string(registryNode.id))
	defer supplier.Close() //nolint:errcheck
	if err := supplier.Register(bpService(string(ids[n-1]))); err != nil {
		return 0, 0, false, err
	}

	client := discovery.NewClient(byID[ids[0]].tr, string(registryNode.id))
	defer client.Close() //nolint:errcheck

	lat := stats.NewSample(lookups)
	before := net.Counters()["sent"]
	for i := 0; i < lookups; i++ {
		start := time.Now()
		descs, err := client.Lookup(&svcdesc.Query{Name: "sensor/bp"})
		if err != nil {
			return 0, 0, false, err
		}
		lat.AddDuration(time.Since(start))
		found = len(descs) > 0
	}
	total := net.Counters()["sent"] - before
	return float64(total) / float64(lookups), lat.Mean(), found, nil
}

// E2Options sizes the adaptive-discovery experiment.
type E2Options struct {
	// Lookups per scenario (default 6).
	Lookups int
}

func (o E2Options) withDefaults() E2Options {
	if o.Lookups <= 0 {
		o.Lookups = 6
	}
	return o
}

// E2 shows the adaptive organization tracking the better mode as the
// environment changes: density decides when the registry is healthy, and the
// agent falls back to flooding when the registry dies.
func E2(opts E2Options) (Result, error) {
	opts = opts.withDefaults()
	table := stats.NewTable("E2: adaptive discovery mode selection",
		"scenario", "density", "registry", "mode chosen", "lookups ok")

	type scenario struct {
		name       string
		density    int
		registryUp bool
	}
	for _, sc := range []scenario{
		{"dense, registry up", 10, true},
		{"sparse, registry up", 2, true},
		{"dense, registry down", 10, false},
	} {
		mode, ok, err := e2Scenario(sc.density, sc.registryUp, opts.Lookups)
		if err != nil {
			return Result{}, fmt.Errorf("E2 %s: %w", sc.name, err)
		}
		reg := "up"
		if !sc.registryUp {
			reg = "down"
		}
		table.AddRow(sc.name, sc.density, reg, mode, fmt.Sprintf("%d/%d", ok, opts.Lookups))
	}
	for _, size := range []int{1, 3, 5} {
		mode, ok, err := e2ClusterScenario(size, opts.Lookups)
		if err != nil {
			return Result{}, fmt.Errorf("E2 cluster(%d): %w", size, err)
		}
		name := fmt.Sprintf("dense, cluster(%d), member down", size)
		table.AddRow(name, 10, "1 member down", mode, fmt.Sprintf("%d/%d", ok, opts.Lookups))
	}
	return Result{
		ID:     "E2",
		Title:  "Adaptive discovery: centralized when dense+healthy, flooding otherwise",
		Tables: []*stats.Table{table},
		Notes: []string{
			"Policy: DensityPolicy(6). Lookups keep succeeding when the registry dies —",
			"the adaptive organization degrades to flooding instead of failing.",
			"Cluster rows kill one registry member: a single-node 'cluster' degrades",
			"to flooding like the classic registry, while 3 and 5 members keep the",
			"lookup quorum and the adaptive layer stays on the centralized path.",
		},
	}, nil
}

// e2ClusterScenario runs the adaptive stack with a registry cluster as its
// centralized side and one member killed: with enough members the lookup
// quorum survives and the policy stays central; a 1-member cluster behaves
// like the dead classic registry and the agent floods.
func e2ClusterScenario(size, lookups int) (mode string, okCount int, err error) {
	net := netsim.New(netsim.Config{Range: 12, Unlimited: true})
	defer net.Close()
	ids := []netsim.NodeID{"q", "s", "r"}
	for i, id := range ids {
		if err := net.AddNode(id, netsim.Position{X: float64(i) * 10}); err != nil {
			return "", 0, err
		}
	}
	var agents []*discovery.Agent
	for _, id := range ids {
		mux, err := netmux.New(net, id)
		if err != nil {
			return "", 0, err
		}
		defer mux.Close()
		a := discovery.NewAgent(mux, discovery.AgentConfig{CollectWindow: 100 * time.Millisecond, MaxResults: 1})
		defer a.Close() //nolint:errcheck
		agents = append(agents, a)
	}
	if err := agents[1].Register(bpService("s")); err != nil {
		return "", 0, err
	}

	// Cluster registry over mem transport (infrastructure network).
	fabric := transport.NewFabric()
	members := make([]string, size)
	for i := range members {
		members[i] = fmt.Sprintf("registry%d", i)
	}
	var nodes []*cluster.Node
	defer func() {
		for _, n := range nodes {
			if n != nil {
				_ = n.Close()
			}
		}
	}()
	for _, id := range members {
		tr := transport.NewMem(fabric)
		l, lerr := tr.Listen(id)
		if lerr != nil {
			return "", 0, lerr
		}
		n, nerr := cluster.NewNode(tr, l, cluster.NodeOptions{Self: id, Members: members})
		if nerr != nil {
			return "", 0, nerr
		}
		nodes = append(nodes, n)
	}
	central, err := cluster.NewResolver(transport.NewMem(fabric), cluster.ResolverOptions{Members: members})
	if err != nil {
		return "", 0, err
	}
	if err := central.Register(bpService("s")); err != nil {
		return "", 0, err
	}
	central.SetCallTimeout(50*time.Millisecond, nil)

	// One member dies. Replication (RF 2, clamped to 1 for the single-member
	// cluster) and the N-RF+1 lookup quorum decide whether the centralized
	// path survives it.
	_ = nodes[0].Close()
	nodes[0] = nil

	ad := discovery.NewAdaptive(central, agents[0], func() int { return 10 }, discovery.DensityPolicy(6), nil)
	for i := 0; i < lookups; i++ {
		descs, err := ad.Lookup(&svcdesc.Query{Name: "sensor/bp"})
		if err == nil && len(descs) > 0 {
			okCount++
		}
	}
	dec := ad.Decisions.Snapshot()
	if dec[string(discovery.ModeCentral)] >= dec[string(discovery.ModeFlood)] {
		mode = string(discovery.ModeCentral)
	} else {
		mode = string(discovery.ModeFlood)
	}
	return mode, okCount, nil
}

func e2Scenario(density int, registryUp bool, lookups int) (mode string, okCount int, err error) {
	// A 3-node line: querier, supplier neighbour, spare.
	net := netsim.New(netsim.Config{Range: 12, Unlimited: true})
	defer net.Close()
	ids := []netsim.NodeID{"q", "s", "r"}
	for i, id := range ids {
		if err := net.AddNode(id, netsim.Position{X: float64(i) * 10}); err != nil {
			return "", 0, err
		}
	}
	var agents []*discovery.Agent
	for _, id := range ids {
		mux, err := netmux.New(net, id)
		if err != nil {
			return "", 0, err
		}
		defer mux.Close()
		a := discovery.NewAgent(mux, discovery.AgentConfig{CollectWindow: 100 * time.Millisecond, MaxResults: 1})
		defer a.Close() //nolint:errcheck
		agents = append(agents, a)
	}
	if err := agents[1].Register(bpService("s")); err != nil {
		return "", 0, err
	}

	// Central registry over mem transport (infrastructure network).
	var central discovery.Resolver
	fabric := transport.NewFabric()
	mem := transport.NewMem(fabric)
	defer mem.Close() //nolint:errcheck
	if registryUp {
		l, err := mem.Listen("registry")
		if err != nil {
			return "", 0, err
		}
		srv := discovery.NewServer(discovery.NewStore(nil, 0), l)
		defer srv.Close() //nolint:errcheck
		cli := discovery.NewClient(transport.NewMem(fabric), "registry")
		if err := cli.Register(bpService("s")); err != nil {
			return "", 0, err
		}
		central = cli
	} else {
		// A client pointed at a dead address.
		central = discovery.NewClient(transport.NewMem(fabric), "registry-gone")
	}

	ad := discovery.NewAdaptive(central, agents[0], func() int { return density }, discovery.DensityPolicy(6), nil)
	for i := 0; i < lookups; i++ {
		descs, err := ad.Lookup(&svcdesc.Query{Name: "sensor/bp"})
		if err == nil && len(descs) > 0 {
			okCount++
		}
	}
	dec := ad.Decisions.Snapshot()
	if dec[string(discovery.ModeCentral)] >= dec[string(discovery.ModeFlood)] {
		mode = string(discovery.ModeCentral)
	} else {
		mode = string(discovery.ModeFlood)
	}
	return mode, okCount, nil
}
