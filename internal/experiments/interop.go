package experiments

import (
	"fmt"
	"time"

	"ndsm/internal/interop"
	"ndsm/internal/stats"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// E10Options sizes the interoperability experiment.
type E10Options struct {
	// Iterations per codec measurement (default 5000).
	Iterations int
	// GatewayOps for the bridge-overhead measurement (default 1000).
	GatewayOps int
}

func (o E10Options) withDefaults() E10Options {
	if o.Iterations <= 0 {
		o.Iterations = 5000
	}
	if o.GatewayOps <= 0 {
		o.GatewayOps = 1000
	}
	return o
}

func e10Message() *wire.Message {
	return &wire.Message{
		ID:       42,
		Kind:     wire.KindRequest,
		Src:      "node-a",
		Dst:      "node-b",
		Topic:    "sensors/bloodpressure",
		Priority: 3,
		Deadline: time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC),
		Headers:  map[string]string{"trace": "t-1", "auth": "tok"},
		Payload:  []byte("42|120.2500|mmHg"),
	}
}

// E10 compares the codecs (size, encode/decode cost), measures transcoding,
// and quantifies the latency a domain gateway adds to a request/reply.
func E10(opts E10Options) (Result, error) {
	opts = opts.withDefaults()
	m := e10Message()
	codecs := []wire.Codec{wire.Binary{}, wire.JSON{}, wire.XML{}}

	codecTable := stats.NewTable("E10: codec comparison",
		"codec", "bytes", "encode µs", "decode µs")
	for _, c := range codecs {
		data, err := c.Encode(m)
		if err != nil {
			return Result{}, err
		}
		start := time.Now()
		for i := 0; i < opts.Iterations; i++ {
			if _, err := c.Encode(m); err != nil {
				return Result{}, err
			}
		}
		encUS := float64(time.Since(start).Nanoseconds()) / float64(opts.Iterations) / 1e3
		start = time.Now()
		for i := 0; i < opts.Iterations; i++ {
			if _, err := c.Decode(data); err != nil {
				return Result{}, err
			}
		}
		decUS := float64(time.Since(start).Nanoseconds()) / float64(opts.Iterations) / 1e3
		codecTable.AddRow(c.Name(), len(data), encUS, decUS)
	}

	bridgeTable := stats.NewTable("E10b: transcoding", "direction", "µs/msg")
	pairs := []struct{ from, to wire.Codec }{
		{wire.Binary{}, wire.XML{}},
		{wire.XML{}, wire.Binary{}},
		{wire.JSON{}, wire.XML{}},
	}
	for _, p := range pairs {
		data, err := p.from.Encode(m)
		if err != nil {
			return Result{}, err
		}
		start := time.Now()
		for i := 0; i < opts.Iterations; i++ {
			if _, err := interop.Transcode(data, p.from, p.to); err != nil {
				return Result{}, err
			}
		}
		us := float64(time.Since(start).Nanoseconds()) / float64(opts.Iterations) / 1e3
		bridgeTable.AddRow(fmt.Sprintf("%s -> %s", p.from.Name(), p.to.Name()), us)
	}

	gwTable, err := e10Gateway(opts.GatewayOps)
	if err != nil {
		return Result{}, err
	}

	return Result{
		ID:     "E10",
		Title:  "Interoperability: codecs, transcoding, gateway overhead",
		Tables: []*stats.Table{codecTable, bridgeTable, gwTable},
		Notes: []string{
			"Expected shape: binary smallest and fastest, XML largest and slowest;",
			"the gateway adds one extra hop of latency to each direction.",
		},
	}, nil
}

// e10Gateway measures request/reply RTT direct vs through a domain gateway.
func e10Gateway(ops int) (*stats.Table, error) {
	fabricA := transport.NewFabric()
	fabricB := transport.NewFabric()
	trA := transport.NewMem(fabricA)
	trB := transport.NewMem(fabricB)
	defer trA.Close() //nolint:errcheck
	defer trB.Close() //nolint:errcheck

	// Echo service in domain B.
	lB, err := trB.Listen("svc")
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			conn, err := lB.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					m, err := conn.Recv()
					if err != nil {
						return
					}
					if err := conn.Send(&wire.Message{Kind: wire.KindReply, Corr: m.ID, Payload: m.Payload}); err != nil {
						return
					}
				}
			}()
		}
	}()

	rtt := func(dial func() (transport.Conn, error)) (float64, error) {
		conn, err := dial()
		if err != nil {
			return 0, err
		}
		defer conn.Close() //nolint:errcheck
		payload := make([]byte, 64)
		start := time.Now()
		for i := 0; i < ops; i++ {
			if err := conn.Send(&wire.Message{ID: uint64(i + 1), Kind: wire.KindRequest, Payload: payload}); err != nil {
				return 0, err
			}
			if _, err := conn.Recv(); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(ops) / 1e3, nil
	}

	direct, err := rtt(func() (transport.Conn, error) { return trB.Dial("svc") })
	if err != nil {
		return nil, err
	}

	lA, err := trA.Listen("gw")
	if err != nil {
		return nil, err
	}
	gw, err := interop.NewGateway(interop.GatewayConfig{
		Listener: lA,
		Dial:     func() (transport.Conn, error) { return trB.Dial("svc") },
	})
	if err != nil {
		return nil, err
	}
	defer gw.Close() //nolint:errcheck
	bridged, err := rtt(func() (transport.Conn, error) { return trA.Dial("gw") })
	if err != nil {
		return nil, err
	}

	t := stats.NewTable("E10c: gateway overhead", "path", "RTT µs")
	t.AddRow("direct (same domain)", direct)
	t.AddRow("via gateway (cross domain)", bridged)
	return t, nil
}
