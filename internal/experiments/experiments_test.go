package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// cell fetches a table cell by row/column index.
func cell(t *testing.T, res Result, table, row, col int) string {
	t.Helper()
	if table >= len(res.Tables) {
		t.Fatalf("%s: table %d missing", res.ID, table)
	}
	rows := res.Tables[table].Rows
	if row >= len(rows) || col >= len(rows[row]) {
		t.Fatalf("%s: cell (%d,%d) missing in %d rows", res.ID, row, col, len(rows))
	}
	return rows[row][col]
}

func cellFloat(t *testing.T, res Result, table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, res, table, row, col), 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", res.ID, row, col, cell(t, res, table, row, col))
	}
	return v
}

func TestF1(t *testing.T) {
	res := F1()
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 13 {
		t.Fatalf("F1 shape wrong: %+v", res)
	}
	if !strings.Contains(res.Chart, "1993") {
		t.Fatal("chart missing onset year")
	}
}

func TestE1Shape(t *testing.T) {
	res, err := E1(E1Options{Sizes: []int{9, 16}, Lookups: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Every configuration found the service.
	for i := range rows {
		if cell(t, res, 0, i, 4) != "true" {
			t.Fatalf("row %d did not find the service: %v", i, rows[i])
		}
	}
	// Flood cost grows with N; and at each N flooding costs more radio
	// messages than the centralized lookup.
	flood9 := cellFloat(t, res, 0, 0, 2)
	central9 := cellFloat(t, res, 0, 1, 2)
	flood16 := cellFloat(t, res, 0, 2, 2)
	if flood16 <= flood9 {
		t.Fatalf("flood cost not growing: %v -> %v", flood9, flood16)
	}
	if flood9 <= central9 {
		t.Fatalf("flooding (%v) should cost more than centralized (%v)", flood9, central9)
	}
	// The cluster lookup-path sweep: one row per cluster size, and at every
	// size the cached path must beat the wire quorum path by >=10x at p50 —
	// the acceptance bar for the client lease cache.
	cl := res.Tables[1]
	if len(cl.Rows) != 3 {
		t.Fatalf("cluster table rows = %d", len(cl.Rows))
	}
	for i := range cl.Rows {
		if speedup := cellFloat(t, res, 1, i, 3); speedup < 10 {
			t.Errorf("cluster row %d: cached lookup only %.1fx faster than wire, want >=10x", i, speedup)
		}
		if hit := cellFloat(t, res, 1, i, 4); hit < 99 {
			t.Errorf("cluster row %d: cache hit rate %.1f%%, want ~100%%", i, hit)
		}
	}
}

func TestE2Shape(t *testing.T) {
	res, err := E2(E2Options{Lookups: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	if cell(t, res, 0, 0, 3) != "central" {
		t.Fatalf("dense+up chose %s", cell(t, res, 0, 0, 3))
	}
	if cell(t, res, 0, 1, 3) != "flood" {
		t.Fatalf("sparse chose %s", cell(t, res, 0, 1, 3))
	}
	if cell(t, res, 0, 2, 3) != "flood" {
		t.Fatalf("registry-down chose %s", cell(t, res, 0, 2, 3))
	}
	// Cluster rows: a 1-member cluster with its member down degrades to
	// flooding like the classic dead registry; 3 and 5 members keep the
	// lookup quorum and the adaptive layer stays central.
	if cell(t, res, 0, 3, 3) != "flood" {
		t.Fatalf("cluster(1) member-down chose %s", cell(t, res, 0, 3, 3))
	}
	for i := 4; i <= 5; i++ {
		if cell(t, res, 0, i, 3) != "central" {
			t.Fatalf("row %d (quorum-up cluster) chose %s", i, cell(t, res, 0, i, 3))
		}
	}
	// All lookups succeeded in every scenario (graceful degradation).
	for i := range rows {
		if !strings.HasPrefix(cell(t, res, 0, i, 4), "2/") {
			t.Fatalf("scenario %d lookups: %s", i, cell(t, res, 0, i, 4))
		}
	}
}

func TestE3Shape(t *testing.T) {
	res, err := E3(E3Options{Printers: 40})
	if err != nil {
		t.Fatal(err)
	}
	utility := cellFloat(t, res, 0, 0, 2)
	nearest := cellFloat(t, res, 0, 1, 2)
	reliable := cellFloat(t, res, 0, 2, 2)
	if utility < nearest || utility < reliable {
		t.Fatalf("utility selection not best: %v vs %v / %v", utility, nearest, reliable)
	}
}

func TestE4Shape(t *testing.T) {
	res, err := E4(E4Options{Requests: 60, Suppliers: 3})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Row order: rate0/adaptive, rate0/static, rate1/adaptive, rate1/static...
	// At kill rate 0 both modes are perfect.
	if cellFloat(t, res, 0, 0, 2) != 100 || cellFloat(t, res, 0, 1, 2) != 100 {
		t.Fatalf("baseline rows not perfect: %v", rows)
	}
	// At the highest kill rate, middleware success must beat static.
	adaptive := cellFloat(t, res, 0, 4, 2)
	static := cellFloat(t, res, 0, 5, 2)
	if adaptive <= static {
		t.Fatalf("adaptive %v%% <= static %v%%", adaptive, static)
	}
}

func TestE4XShape(t *testing.T) {
	res, err := E4X(E4XOptions{Scenarios: 1, Ticks: 40})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The scenario injected faults and the workload still made progress.
	if cellFloat(t, res, 0, 0, 1) < 1 {
		t.Fatalf("no faults injected: %v", rows)
	}
	if cellFloat(t, res, 0, 0, 2) <= 0 {
		t.Fatalf("no successful requests under chaos: %v", rows)
	}
	// A clean run: no invariant violations.
	if v := cellFloat(t, res, 0, 0, 5); v != 0 {
		t.Fatalf("%v invariant violations: %+v", v, res.Notes)
	}
}

func TestE5Shape(t *testing.T) {
	res, err := E5(E5Options{Nodes: 16, Packets: 5})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// All strategies delivered everything on a clean grid.
	for i := range rows {
		if cell(t, res, 0, i, 1) != "5/5" {
			t.Fatalf("row %d delivery: %v", i, rows[i])
		}
	}
	// Flooding transmissions exceed geographic's.
	floodTx := cellFloat(t, res, 0, 0, 2)
	geoTx := cellFloat(t, res, 0, 3, 2)
	if floodTx <= geoTx {
		t.Fatalf("flooding tx %v <= geographic tx %v", floodTx, geoTx)
	}
	// DV paid control traffic, geographic none.
	if cellFloat(t, res, 0, 1, 4) == 0 {
		t.Fatal("dv-hop shows no control traffic")
	}
	if cellFloat(t, res, 0, 3, 4) != 0 {
		t.Fatal("geographic shows control traffic")
	}
}

func TestE5Ablation(t *testing.T) {
	res, err := E5Ablation()
	if err != nil {
		t.Fatal(err)
	}
	// Hop count takes the drained shortcut; the energy metric detours.
	if cell(t, res, 0, 0, 1) != "weak" {
		t.Fatalf("hop metric used relay %s, want weak", cell(t, res, 0, 0, 1))
	}
	if cell(t, res, 0, 1, 1) != "detour (s1,s2)" {
		t.Fatalf("energy metric used relay %s, want detour", cell(t, res, 0, 1, 1))
	}
	// The energy metric leaves the weak node with more residual energy.
	hopResidual := cellFloat(t, res, 0, 0, 2)
	energyResidual := cellFloat(t, res, 0, 1, 2)
	if energyResidual <= hopResidual {
		t.Fatalf("energy residual %v <= hop residual %v", energyResidual, hopResidual)
	}
}

func TestE6Shape(t *testing.T) {
	res, err := E6(E6Options{SensorsPerVariable: 2, InitialEnergy: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Row order: all-sensors, random-feasible, greedy, exhaustive.
	all := cellFloat(t, res, 0, 0, 1)
	exhaustive := cellFloat(t, res, 0, 3, 1)
	if exhaustive <= all {
		t.Fatalf("milan lifetime %v <= all-sensors %v", exhaustive, all)
	}
	greedy := cellFloat(t, res, 0, 2, 1)
	if greedy <= all {
		t.Fatalf("greedy lifetime %v <= all-sensors %v", greedy, all)
	}
}

func TestE6Ablation(t *testing.T) {
	res, err := E6Ablation(4)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Exhaustive's predicted lifetime ≥ greedy's at each size.
	for i := 0; i < len(rows); i += 2 {
		ex := cellFloat(t, res, 0, i, 2)
		gr := cellFloat(t, res, 0, i+1, 2)
		if ex < gr {
			t.Fatalf("row %d: exhaustive %v < greedy %v", i, ex, gr)
		}
	}
}

func TestE7Shape(t *testing.T) {
	res, err := E7(E7Options{Ops: 100, Sizes: []int{64}})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := range rows {
		if ops := cellFloat(t, res, 0, i, 2); ops <= 0 {
			t.Fatalf("row %d ops/sec = %v", i, ops)
		}
	}
}

func TestE8Shape(t *testing.T) {
	res, err := E8(E8Options{Jobs: 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 3 {
		t.Fatalf("tables = %d", len(res.Tables))
	}
	// At U=0.5 (row 0) nobody misses; at U=1.1 (row 3) EDF misses less than
	// FIFO.
	if cellFloat(t, res, 0, 0, 1) != 0 || cellFloat(t, res, 0, 0, 3) != 0 {
		t.Fatalf("misses at U=0.5: %v", res.Tables[0].Rows[0])
	}
	fifoOver := cellFloat(t, res, 0, 3, 1)
	edfOver := cellFloat(t, res, 0, 3, 3)
	if edfOver >= fifoOver {
		t.Fatalf("EDF %v%% >= FIFO %v%% under overload", edfOver, fifoOver)
	}
	// Admission: U=1.1 rejected by both; U=0.5 admitted by both.
	if cell(t, res, 1, 0, 1) != "true" || cell(t, res, 1, 3, 2) != "false" {
		t.Fatalf("admission table wrong: %v", res.Tables[1].Rows)
	}
	// Handoff: 8 moved, 2 aborted.
	if cell(t, res, 2, 0, 1) != "8" || cell(t, res, 2, 0, 2) != "2" {
		t.Fatalf("handoff row: %v", res.Tables[2].Rows[0])
	}
}

func TestE9Shape(t *testing.T) {
	res, err := E9(E9Options{Ops: 400})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := range rows {
		if cell(t, res, 0, i, 4) != "true" {
			t.Fatalf("row %d state not intact: %v", i, rows[i])
		}
	}
	// Group commit beats fsync-per-append on throughput.
	group := cellFloat(t, res, 0, 0, 1)
	synced := cellFloat(t, res, 0, 1, 1)
	if group <= synced {
		t.Fatalf("group commit %v <= synced %v ops/s", group, synced)
	}
	// Checkpoint at 50% replays about half the ops.
	full := cellFloat(t, res, 0, 0, 2)
	ckpt := cellFloat(t, res, 0, 2, 2)
	if ckpt >= full {
		t.Fatalf("checkpoint replay %v >= full replay %v", ckpt, full)
	}
}

func TestE10Shape(t *testing.T) {
	res, err := E10(E10Options{Iterations: 200, GatewayOps: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Codec sizes: binary < json < xml.
	binSize := cellFloat(t, res, 0, 0, 1)
	jsonSize := cellFloat(t, res, 0, 1, 1)
	xmlSize := cellFloat(t, res, 0, 2, 1)
	if !(binSize < jsonSize && jsonSize <= xmlSize) {
		t.Fatalf("size ordering: %v %v %v", binSize, jsonSize, xmlSize)
	}
	// Both paths completed with sane (positive) round-trip times. The
	// "gateway > direct" ordering holds in full runs but is too
	// scheduler-sensitive to assert at quick-mode op counts on a loaded box.
	direct := cellFloat(t, res, 2, 0, 1)
	bridged := cellFloat(t, res, 2, 1, 1)
	if direct <= 0 || bridged <= 0 {
		t.Fatalf("RTTs: direct %v, bridged %v", direct, bridged)
	}
}

func TestE11Shape(t *testing.T) {
	res, err := E11(E11Options{Ticks: 40})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want detector-on and baseline", len(rows))
	}
	// Same kill schedule: the detector run must waste strictly fewer
	// requests on dead suppliers than the baseline — the E11 core claim.
	onDead := cellFloat(t, res, 0, 0, 4)
	offDead := cellFloat(t, res, 0, 1, 4)
	if onDead >= offDead {
		t.Fatalf("liveness did not reduce dead-peer attempts: on=%v off=%v\n%+v",
			onDead, offDead, res.Notes)
	}
	// And hold strictly better availability after the kills.
	if onTail, offTail := cellFloat(t, res, 0, 0, 2), cellFloat(t, res, 0, 1, 2); onTail <= offTail {
		t.Fatalf("post-kill availability did not improve: on=%v%% off=%v%%", onTail, offTail)
	}
	// The detector-on run must be invariant-clean; the baseline is expected
	// to violate (that is the experiment's point).
	if v := cellFloat(t, res, 0, 0, 5); v != 0 {
		t.Fatalf("%v detector-on violations: %+v", v, res.Notes)
	}
}

func TestE12Shape(t *testing.T) {
	res, err := E12(E12Options{Ticks: 40, KillAt: 8, KillTicks: 15})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want classic and cluster", len(rows))
	}
	// The cluster's centralized path must serve every probe through the kill
	// window — the tentpole claim the chaos invariant also gates.
	if central := cellFloat(t, res, 0, 1, 4); central != 100 {
		t.Fatalf("cluster central-path availability %v%% in kill window, want 100%%\n%+v",
			central, res.Notes)
	}
	// Both worlds must be invariant-clean: the classic world survives via
	// flood fallback, the cluster via replication.
	for i := range rows {
		if v := cellFloat(t, res, 0, i, 5); v != 0 {
			t.Fatalf("row %d has %v violations: %+v", i, v, res.Notes)
		}
	}
}

func TestE13Shape(t *testing.T) {
	res, err := E13(E13Options{Duration: 350 * time.Millisecond, Loads: []float64{2}})
	if err != nil {
		t.Fatal(err)
	}
	rowByLabel := func(label string) int {
		for i, row := range res.Tables[0].Rows {
			if len(row) > 0 && row[0] == label {
				return i
			}
		}
		t.Fatalf("row %q missing:\n%s", label, res.Tables[0].Render())
		return -1
	}
	flat, lanes := rowByLabel("flat 2.0x"), rowByLabel("lanes 2.0x")
	flatMiss := cellFloat(t, res, 0, flat, 1)
	lanesMiss := cellFloat(t, res, 0, lanes, 1)
	// The tentpole claim at 2x overload: lanes keep the control loop on
	// deadline (near-zero misses; 10% allows CI scheduler noise) while the
	// flat bound starves it, and bulk is what sheds in lanes mode.
	if lanesMiss > 10 {
		t.Fatalf("lanes control miss %v%% at 2x overload, want ~0\n%s", lanesMiss, res.Tables[0].Render())
	}
	if lanesMiss > flatMiss {
		t.Fatalf("lanes (%v%%) missed more than flat (%v%%)\n%s", lanesMiss, flatMiss, res.Tables[0].Render())
	}
	if shed := cellFloat(t, res, 0, lanes, 4); shed == 0 {
		t.Fatalf("lanes mode shed no bulk at 2x overload\n%s", res.Tables[0].Render())
	}
}

func TestE15Shape(t *testing.T) {
	res, err := E15(E15Options{
		Nodes: 2, Requests: 4000, ColdTopics: 6,
		Duration: 120 * time.Millisecond, Trials: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 3 {
		t.Fatalf("tables: %d, want 3", len(res.Tables))
	}
	// Attribution: the injected hot topic must rank #1 in the cluster merge
	// and the merged p99 must track the exact distribution.
	if rank := cellFloat(t, res, 0, 0, 1); rank != 1 {
		t.Fatalf("hot topic rank %v, want 1\n%s", rank, res.Tables[0].Render())
	}
	if p99 := cellFloat(t, res, 0, 0, 5); p99 > 5 {
		t.Fatalf("hot p99 error %v%%, want <= 5\n%s", p99, res.Tables[0].Render())
	}
	// Overhead: the sampled-out path must be allocation-free, and the
	// recorder's absolute cost on the no-op closed loop must stay in the
	// sub-microsecond regime (10µs ceiling here for loaded CI machines —
	// the tight 2µs gate belongs to ndsm-bench -compare, where the trials
	// are longer).
	if allocs := cellFloat(t, res, 1, 0, 1); allocs != 0 {
		t.Fatalf("sampled-out path costs %v allocs/op, want 0\n%s", allocs, res.Tables[1].Render())
	}
	if ns := cellFloat(t, res, 2, 0, 3); ns > 10000 {
		t.Fatalf("wide-event overhead %v ns/req, want <= 10000\n%s", ns, res.Tables[2].Render())
	}
}

func TestRunnerUnknownID(t *testing.T) {
	if _, err := (Runner{}).Run("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunnerQuickAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	var sb strings.Builder
	if err := (Runner{QuickMode: true}).RunAll(&sb); err != nil {
		t.Fatalf("RunAll: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, id := range IDs() {
		if !strings.Contains(out, "=== "+id+":") {
			t.Fatalf("output missing %s", id)
		}
	}
}

func TestRender(t *testing.T) {
	out := Render(F1())
	if !strings.Contains(out, "=== F1:") || !strings.Contains(out, "note:") {
		t.Fatalf("render:\n%s", out)
	}
}
