package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"ndsm/internal/recovery"
	"ndsm/internal/stats"
)

// E9Options sizes the recovery experiment.
type E9Options struct {
	// Ops per run (default 5000).
	Ops int
	// Dir for WAL files (default: a temp dir).
	Dir string
}

func (o E9Options) withDefaults() E9Options {
	if o.Ops <= 0 {
		o.Ops = 5000
	}
	return o
}

// counterState is a trivially recoverable state machine used to measure the
// log, not the application.
type counterState struct {
	Total int64 `json:"total"`
}

func (s *counterState) Apply(data []byte) error {
	s.Total += int64(len(data))
	return nil
}
func (s *counterState) Snapshot() ([]byte, error) { return json.Marshal(s) }
func (s *counterState) Restore(b []byte) error    { return json.Unmarshal(b, s) }

// E9 measures the write-ahead log: logging throughput under the two sync
// policies, crash-replay time, and the effect of checkpointing on replay.
func E9(opts E9Options) (Result, error) {
	opts = opts.withDefaults()
	table := stats.NewTable("E9: recovery system",
		"configuration", "log ops/sec", "replay ops", "replay ms", "state intact")

	for _, cfg := range []struct {
		name       string
		sync       bool
		checkpoint bool
	}{
		{"group commit, no checkpoint", false, false},
		{"sync every append, no checkpoint", true, false},
		{"group commit + checkpoint@50%", false, true},
	} {
		row, err := e9Run(opts, cfg.sync, cfg.checkpoint)
		if err != nil {
			return Result{}, fmt.Errorf("E9 %s: %w", cfg.name, err)
		}
		table.AddRow(cfg.name, row.opsPerSec, row.replayOps, row.replayMillis, row.intact)
	}
	return Result{
		ID:     "E9",
		Title:  "Recovery: WAL throughput, crash replay, checkpoint ablation",
		Tables: []*stats.Table{table},
		Notes: []string{
			"Sync-per-append pays an fsync per op (orders of magnitude slower);",
			"a checkpoint at 50% halves the records replay must re-apply.",
		},
	}, nil
}

type e9Row struct {
	opsPerSec    float64
	replayOps    int
	replayMillis float64
	intact       bool
}

func e9Run(opts E9Options, syncEvery, checkpoint bool) (e9Row, error) {
	dir := opts.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "ndsm-e9")
		if err != nil {
			return e9Row{}, err
		}
		defer os.RemoveAll(dir)
	}
	sm := &counterState{}
	mgr, err := recovery.NewManager(dir, sm, recovery.WALOptions{SyncEveryAppend: syncEvery})
	if err != nil {
		return e9Row{}, err
	}
	payload := make([]byte, 64)

	ops := opts.Ops
	if syncEvery {
		// fsync-per-op is slow; keep the run bounded.
		ops = opts.Ops / 10
		if ops < 100 {
			ops = 100
		}
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		if _, err := mgr.Log(fmt.Sprintf("op-%d", i), payload); err != nil {
			return e9Row{}, err
		}
		if checkpoint && i == ops/2 {
			if err := mgr.Checkpoint(); err != nil {
				return e9Row{}, err
			}
		}
	}
	if !syncEvery {
		if err := mgr.Sync(); err != nil {
			return e9Row{}, err
		}
	}
	elapsed := time.Since(start)
	wantTotal := sm.Total
	if err := mgr.Close(); err != nil {
		return e9Row{}, err
	}

	// Crash and recover into a fresh state machine.
	sm2 := &counterState{}
	mgr2, err := recovery.NewManager(dir, sm2, recovery.WALOptions{})
	if err != nil {
		return e9Row{}, err
	}
	defer mgr2.Close() //nolint:errcheck
	replayStart := time.Now()
	applied, err := mgr2.Recover()
	if err != nil {
		return e9Row{}, err
	}
	replayElapsed := time.Since(replayStart)

	return e9Row{
		opsPerSec:    float64(ops) / elapsed.Seconds(),
		replayOps:    applied,
		replayMillis: float64(replayElapsed.Nanoseconds()) / 1e6,
		intact:       sm2.Total == wantTotal,
	}, nil
}
