package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"ndsm/internal/discovery"
	"ndsm/internal/qos"
	"ndsm/internal/scheduler"
	"ndsm/internal/stats"
	"ndsm/internal/svcdesc"
	"ndsm/internal/transaction"
)

// E8Options sizes the scheduling experiment.
type E8Options struct {
	// Jobs per run (default 400).
	Jobs int
	// Seed fixes the job generator.
	Seed int64
}

func (o E8Options) withDefaults() E8Options {
	if o.Jobs <= 0 {
		o.Jobs = 400
	}
	if o.Seed == 0 {
		o.Seed = 29
	}
	return o
}

// e8Job is one released unit of work in the deterministic scheduling
// simulation.
type e8Job struct {
	release  time.Duration // release time from epoch
	exec     time.Duration // execution demand
	deadline time.Duration // absolute deadline from epoch
	priority uint8
}

// e8Generate builds a job stream at the target CPU utilization: three
// periodic "transaction" classes with deadlines equal to their periods.
func e8Generate(utilization float64, jobs int, rng *rand.Rand) []e8Job {
	// Three classes with periods 10/20/40 ms; execution times scale with the
	// requested utilization.
	type class struct {
		period   time.Duration
		share    float64
		priority uint8
	}
	classes := []class{
		{10 * time.Millisecond, 0.5, 3},
		{20 * time.Millisecond, 0.3, 2},
		{40 * time.Millisecond, 0.2, 1},
	}
	var out []e8Job
	for _, c := range classes {
		exec := time.Duration(utilization * c.share * float64(c.period))
		n := jobs / len(classes)
		for i := 0; i < n; i++ {
			release := time.Duration(i) * c.period
			// Small jitter so releases interleave irregularly.
			release += time.Duration(rng.Intn(1000)) * time.Microsecond
			out = append(out, e8Job{
				release:  release,
				exec:     exec,
				deadline: release + c.period,
				priority: c.priority,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].release < out[j].release })
	return out
}

// e8Simulate runs a single-server discrete-time scheduling simulation under
// the given policy and returns the deadline miss ratio.
func e8Simulate(jobs []e8Job, policy scheduler.Policy) float64 {
	queue := scheduler.NewQueue(policy)
	epoch := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	now := time.Duration(0)
	next := 0
	missed, total := 0, 0
	for next < len(jobs) || queue.Len() > 0 {
		// Admit all jobs released by now.
		for next < len(jobs) && jobs[next].release <= now {
			j := jobs[next]
			queue.Push(scheduler.Item{
				Priority: j.priority,
				Deadline: epoch.Add(j.deadline),
				Size:     int(j.exec),
			})
			next++
		}
		it, err := queue.Pop()
		if err != nil {
			// Idle until the next release.
			if next < len(jobs) {
				now = jobs[next].release
				continue
			}
			break
		}
		// Execute: time advances by the job's demand.
		now += time.Duration(it.Size)
		total++
		if epoch.Add(now).After(it.Deadline) {
			missed++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(missed) / float64(total)
}

// E8 sweeps utilization across the three dispatch policies and measures
// deadline miss ratios, then demonstrates departure handoff.
func E8(opts E8Options) (Result, error) {
	opts = opts.withDefaults()
	missTable := stats.NewTable("E8: deadline miss ratio vs utilization",
		"utilization", "fifo %", "priority %", "edf %")
	for _, u := range []float64{0.5, 0.7, 0.9, 1.1} {
		rng := rand.New(rand.NewSource(opts.Seed))
		jobs := e8Generate(u, opts.Jobs, rng)
		fifo := e8Simulate(jobs, scheduler.FIFO)
		prio := e8Simulate(jobs, scheduler.PriorityOrder)
		edf := e8Simulate(jobs, scheduler.EDF)
		missTable.AddRow(u, 100*fifo, 100*prio, 100*edf)
	}

	// Admission tests at the same utilizations.
	admTable := stats.NewTable("E8b: admission tests", "utilization", "RM admissible", "EDF admissible")
	for _, u := range []float64{0.5, 0.7, 0.9, 1.1} {
		tasks := []scheduler.Task{
			{C: time.Duration(u * 0.5 * float64(10*time.Millisecond)), T: 10 * time.Millisecond},
			{C: time.Duration(u * 0.3 * float64(20*time.Millisecond)), T: 20 * time.Millisecond},
			{C: time.Duration(u * 0.2 * float64(40*time.Millisecond)), T: 40 * time.Millisecond},
		}
		admTable.AddRow(u, scheduler.RMAdmissible(tasks), scheduler.EDFAdmissible(tasks))
	}

	// Handoff: a departing supplier's transactions move to replacements.
	handoffTable, err := e8Handoff()
	if err != nil {
		return Result{}, err
	}

	return Result{
		ID:     "E8",
		Title:  "Scheduling: policy comparison, admission control, and handoff",
		Tables: []*stats.Table{missTable, admTable, handoffTable},
		Notes: []string{
			"EDF dominates below overload (U<=1); FIFO misses first.",
			"RM's bound (~0.78 for 3 tasks) rejects U=0.9 sets EDF still admits.",
		},
	}, nil
}

func e8Handoff() (*stats.Table, error) {
	table := transaction.NewTable()
	registry := discovery.NewStore(nil, 0)
	now := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	// 10 transactions on the departing supplier; 8 topics have backups.
	for i := 0; i < 10; i++ {
		topic := fmt.Sprintf("svc-%d", i)
		table.Open(topic, "departing", transaction.Continuous, 1, qos.Benefit{}, now)
		if i < 8 {
			if err := registry.Register(&svcdesc.Description{
				Name: topic, Provider: fmt.Sprintf("backup-%d", i), Reliability: 0.9, PowerLevel: 1,
			}); err != nil {
				return nil, err
			}
		}
	}
	hm := scheduler.NewHandoffManager(table, registry, nil)
	report, err := hm.HandoffPeer("departing", now)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("E8c: departure handoff", "transactions", "moved", "aborted")
	t.AddRow(len(report.Results), report.Moved, report.Aborted)
	return t, nil
}
