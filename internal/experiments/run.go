package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Quick controls experiment sizing: quick mode shrinks populations and
// iteration counts so the full suite finishes in well under a minute (used
// by tests); full mode is what cmd/ndsm-bench runs by default.
type Quick bool

// Runner executes experiments by ID.
type Runner struct {
	// QuickMode shrinks workloads.
	QuickMode bool
}

// IDs lists all experiment identifiers in run order.
func IDs() []string {
	return []string{"F1", "E1", "E2", "E3", "E4", "E4x", "E5", "E5a", "E6", "E6a", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15"}
}

// Run executes one experiment by ID.
func (r Runner) Run(id string) (Result, error) {
	q := r.QuickMode
	switch strings.ToUpper(id) {
	case "F1":
		return F1(), nil
	case "E1":
		if q {
			return E1(E1Options{Sizes: []int{9, 16}, Lookups: 2, ClusterLookups: 50})
		}
		return E1(E1Options{})
	case "E2":
		if q {
			return E2(E2Options{Lookups: 2})
		}
		return E2(E2Options{})
	case "E3":
		if q {
			return E3(E3Options{Printers: 30})
		}
		return E3(E3Options{})
	case "E4":
		if q {
			return E4(E4Options{Requests: 60, Suppliers: 3})
		}
		return E4(E4Options{})
	case "E4X":
		if q {
			return E4X(E4XOptions{Scenarios: 1, Ticks: 40})
		}
		return E4X(E4XOptions{})
	case "E5":
		if q {
			return E5(E5Options{Nodes: 16, Packets: 5})
		}
		return E5(E5Options{})
	case "E5A":
		return E5Ablation()
	case "E6":
		if q {
			return E6(E6Options{SensorsPerVariable: 2, InitialEnergy: 0.005})
		}
		return E6(E6Options{})
	case "E6A":
		if q {
			return E6Ablation(4)
		}
		return E6Ablation(6)
	case "E7":
		if q {
			return E7(E7Options{Ops: 200, Sizes: []int{64}})
		}
		return E7(E7Options{})
	case "E8":
		if q {
			return E8(E8Options{Jobs: 120})
		}
		return E8(E8Options{})
	case "E9":
		if q {
			return E9(E9Options{Ops: 500})
		}
		return E9(E9Options{})
	case "E10":
		if q {
			return E10(E10Options{Iterations: 500, GatewayOps: 200})
		}
		return E10(E10Options{})
	case "E11":
		if q {
			return E11(E11Options{Ticks: 40})
		}
		return E11(E11Options{})
	case "E12":
		if q {
			return E12(E12Options{Ticks: 40, KillAt: 8, KillTicks: 15})
		}
		return E12(E12Options{})
	case "E13":
		if q {
			return E13(E13Options{Duration: 350 * time.Millisecond, Loads: []float64{1, 2}})
		}
		return E13(E13Options{})
	case "E14":
		if q {
			return E14(E14Options{
				Ticks: 60, FaultTicks: 18, CalmSeeds: 2,
				FloodFor: 250 * time.Millisecond,
				Recovery: 300 * time.Millisecond,
				Window:   300 * time.Millisecond,
			})
		}
		return E14(E14Options{})
	case "E15":
		if q {
			return E15(E15Options{
				Nodes: 2, Requests: 4000, ColdTopics: 6,
				Duration: 120 * time.Millisecond, Trials: 2,
			})
		}
		return E15(E15Options{})
	default:
		return Result{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
}

// RunAll executes every experiment, writing rendered results to w as it
// goes. It returns the first error but keeps going through the rest.
func (r Runner) RunAll(w io.Writer) error {
	var firstErr error
	for _, id := range IDs() {
		res, err := r.Run(id)
		if err != nil {
			fmt.Fprintf(w, "!! %s failed: %v\n\n", id, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		fmt.Fprint(w, Render(res))
	}
	return firstErr
}

// Render formats one result for terminal output.
func Render(res Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", res.ID, res.Title)
	if res.Chart != "" {
		b.WriteString(res.Chart)
		b.WriteString("\n")
	}
	for _, t := range res.Tables {
		b.WriteString(t.Render())
		b.WriteString("\n")
	}
	for _, note := range res.Notes {
		fmt.Fprintf(&b, "  note: %s\n", note)
	}
	b.WriteString("\n")
	return b.String()
}
