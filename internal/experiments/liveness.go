package experiments

import (
	"fmt"
	"time"

	"ndsm/internal/chaos"
	"ndsm/internal/stats"
)

// E11Options sizes the bounded-degradation liveness experiment.
type E11Options struct {
	// Seed fixes the substrate RNG (default 9).
	Seed int64
	// Ticks is the workload length (default 60).
	Ticks int
	// FirstKill and SecondKill are the tick offsets of the two permanent
	// supplier kills (defaults 5 and 15).
	FirstKill  int
	SecondKill int
}

func (o E11Options) withDefaults() E11Options {
	if o.Seed == 0 {
		o.Seed = 9
	}
	if o.Ticks <= 0 {
		o.Ticks = 60
	}
	if o.FirstKill <= 0 {
		o.FirstKill = 5
	}
	if o.SecondKill <= 0 {
		o.SecondKill = 15
	}
	return o
}

// E11 measures bounded degradation under the liveness layer: the same seeded
// kill schedule runs twice, once with the failure detector + breaker on and
// once with them off, and the runs are compared on how many requests each
// aimed at dead suppliers.
//
// The schedule permanently kills the two best-reliability suppliers (the
// consumer starts bound to the best). Without a detector their hour-long
// leases keep them listed, QoS selection keeps preferring them over the live
// but lower-ranked survivor, and single-peer exclusion makes the binding
// ping-pong between the two corpses for the rest of the run — availability
// collapses. With the detector on, lease expiry plus the fixed-timeout
// fallback turn each kill into suspicion within a few ticks, selection skips
// the suspects, and the binding settles on the survivor: degradation stays
// bounded by detection time instead of compounding.
func E11(opts E11Options) (Result, error) {
	opts = opts.withDefaults()
	const tickEvery = 50 * time.Millisecond
	schedule := chaos.Schedule{
		{At: time.Duration(opts.FirstKill) * tickEvery, Fault: chaos.FaultCrashSupplier, Target: "s0"},
		{At: time.Duration(opts.SecondKill) * tickEvery, Fault: chaos.FaultCrashSupplier, Target: "s1"},
	}
	run := func(disable bool) (*chaos.ScenarioResult, error) {
		return chaos.RunScenario(chaos.ScenarioConfig{
			Seed:            opts.Seed,
			Ticks:           opts.Ticks,
			TickEvery:       tickEvery,
			Schedule:        schedule,
			DisableLiveness: disable,
		})
	}
	on, err := run(false)
	if err != nil {
		return Result{}, fmt.Errorf("E11 detector-on: %w", err)
	}
	off, err := run(true)
	if err != nil {
		return Result{}, fmt.Errorf("E11 detector-off: %w", err)
	}

	// Tail availability: the steady state after the second kill, where the
	// two runs diverge.
	tailOK := func(res *chaos.ScenarioResult) float64 {
		ok, n := 0, 0
		for i := opts.SecondKill; i < len(res.OKByTick); i++ {
			n++
			if res.OKByTick[i] {
				ok++
			}
		}
		if n == 0 {
			return 0
		}
		return 100 * float64(ok) / float64(n)
	}

	table := stats.NewTable("E11: bounded degradation, same kill schedule",
		"detector", "requests ok %", "ok % after kills", "rebinds", "dead-peer attempts", "violations")
	for _, row := range []struct {
		name string
		res  *chaos.ScenarioResult
	}{{"on", on}, {"off (baseline)", off}} {
		table.AddRow(row.name,
			100*float64(row.res.TicksOK)/float64(row.res.Ticks),
			tailOK(row.res),
			row.res.Rebinds,
			row.res.DeadAttempts,
			len(row.res.Violations))
	}

	notes := []string{
		"Both rows replay the identical schedule: permanent kills of the two",
		"best-reliability suppliers at ticks " +
			fmt.Sprintf("%d and %d; one supplier survives.", opts.FirstKill, opts.SecondKill),
		"'dead-peer attempts' counts ticks whose request was aimed at a killed",
		"supplier before the liveness layer (if any) diverted it.",
	}
	if on.DeadAttempts < off.DeadAttempts {
		notes = append(notes, fmt.Sprintf(
			"liveness cut dead-peer attempts %d -> %d and held post-kill availability at %.0f%% vs %.0f%%.",
			off.DeadAttempts, on.DeadAttempts, tailOK(on), tailOK(off)))
	} else {
		notes = append(notes, fmt.Sprintf(
			"UNEXPECTED: liveness did not reduce dead-peer attempts (on=%d, off=%d).",
			on.DeadAttempts, off.DeadAttempts))
	}
	for _, v := range on.Violations {
		notes = append(notes, "VIOLATION (detector on) "+v)
	}
	for _, v := range off.Violations {
		// Baseline violations are the experiment's point, not a failure: with
		// no detector, stale leases break the rebind-recovery bound.
		notes = append(notes, "baseline violation (expected): "+v)
	}
	return Result{
		ID:     "E11",
		Title:  "Liveness layer: bounded degradation vs detector-off baseline",
		Tables: []*stats.Table{table},
		Notes:  notes,
	}, nil
}
