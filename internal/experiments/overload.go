package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ndsm/internal/endpoint"
	"ndsm/internal/obs"
	"ndsm/internal/stats"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// E13Options sizes the priority-lane overload experiment.
type E13Options struct {
	// Duration is the measured window per (mode, load) point (default 1.5s).
	Duration time.Duration
	// Loads are offered-load multiples of server capacity (default 0.5, 1, 2).
	Loads []float64
	// ServiceTime is the simulated per-request work (default 2ms).
	ServiceTime time.Duration
	// MaxInFlight is the server's concurrency bound (default 8).
	MaxInFlight int
	// ControlPeriod spaces the periodic control loop's requests; each request's
	// deadline is the next period boundary (default 10ms).
	ControlPeriod time.Duration
	// BulkDeadline bounds each bulk transfer request (default 100ms).
	BulkDeadline time.Duration
	// ControlQuota reserves admission slots for the control lane (default 2).
	ControlQuota int
	// QueueDepth bounds each lane's pending queue in lanes mode (default 32).
	QueueDepth int
}

func (o E13Options) withDefaults() E13Options {
	if o.Duration <= 0 {
		o.Duration = 1500 * time.Millisecond
	}
	if len(o.Loads) == 0 {
		o.Loads = []float64{0.5, 1, 2}
	}
	if o.ServiceTime <= 0 {
		o.ServiceTime = 2 * time.Millisecond
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 8
	}
	if o.ControlPeriod <= 0 {
		o.ControlPeriod = 10 * time.Millisecond
	}
	if o.BulkDeadline <= 0 {
		o.BulkDeadline = 100 * time.Millisecond
	}
	if o.ControlQuota <= 0 {
		o.ControlQuota = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 32
	}
	return o
}

// e13Point is one (mode, load) measurement.
type e13Point struct {
	mode        string
	load        float64
	ctlHit      int64
	ctlMiss     int64
	bulkOK      int64
	bulkShed    int64
	bulkMiss    int64 // timed out / late, not shed
	srvExpired  int64
	srvPreempt  int64
	bulkOffered int64
}

// E13 drives a simulated periodic control loop alongside an open-loop bulk
// telemetry flood at a bounded endpoint server, sweeping offered load from
// half capacity to 2x overload, and compares two admission modes on the same
// workload: "flat" (the old single MaxInFlight bound, first-come first-served)
// and "lanes" (per-lane quotas + shared pool + benefit-aware queue shedding).
//
// The claim under test is the paper's overload story: admission control must
// preserve time-constrained work when demand exceeds capacity. With a control
// lane reservation, the control loop's deadline-miss rate stays ~0% even at 2x
// overload, because bulk traffic is what sheds; under the flat bound the bulk
// flood monopolizes every slot and the control loop starves.
func E13(opts E13Options) (Result, error) {
	opts = opts.withDefaults()
	var points []e13Point
	for _, mode := range []string{"flat", "lanes"} {
		for _, load := range opts.Loads {
			p, err := e13Run(mode, load, opts)
			if err != nil {
				return Result{}, fmt.Errorf("E13 %s %.1fx: %w", mode, load, err)
			}
			points = append(points, p)
		}
	}

	table := stats.NewTable("E13: deadline miss rate vs offered load",
		"mode+load", "control miss %", "control calls", "bulk ok %", "bulk shed %", "bulk offered")
	pct := func(part, total int64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(part) / float64(total)
	}
	for _, p := range points {
		table.AddRow(fmt.Sprintf("%s %.1fx", p.mode, p.load),
			pct(p.ctlMiss, p.ctlHit+p.ctlMiss),
			p.ctlHit+p.ctlMiss,
			pct(p.bulkOK, p.bulkOffered),
			pct(p.bulkShed, p.bulkOffered),
			p.bulkOffered)
	}

	notes := []string{
		fmt.Sprintf("server: MaxInFlight %d, service time %v; control loop period %v (deadline = period);",
			opts.MaxInFlight, opts.ServiceTime, opts.ControlPeriod),
		fmt.Sprintf("lanes mode reserves %d slots for the control lane and queues %d per lane;",
			opts.ControlQuota, opts.QueueDepth),
		"bulk is an open-loop flood of lane-bulk futures at the stated multiple of capacity.",
	}
	for _, p := range points {
		if p.mode == "lanes" && (p.srvExpired > 0 || p.srvPreempt > 0) {
			notes = append(notes, fmt.Sprintf(
				"lanes %.1fx queue shedding: %d expired in queue, %d preempted by higher-benefit work.",
				p.load, p.srvExpired, p.srvPreempt))
		}
	}
	return Result{
		ID:     "E13",
		Title:  "Priority lanes: control-loop deadline misses under bulk overload",
		Tables: []*stats.Table{table},
		Notes:  notes,
	}, nil
}

// e13Run measures one (mode, load) point on a fresh server.
func e13Run(mode string, load float64, opts E13Options) (e13Point, error) {
	reg := obs.NewRegistry()
	tr := transport.NewMem(transport.NewFabric())
	l, err := tr.Listen("srv")
	if err != nil {
		return e13Point{}, err
	}
	sopts := endpoint.ServerOptions{Name: "srv", MaxInFlight: opts.MaxInFlight, Metrics: reg}
	if mode == "lanes" {
		sopts.Lanes = &endpoint.LaneConfig{
			Quota:      map[endpoint.Lane]int{endpoint.LaneControl: opts.ControlQuota},
			QueueDepth: opts.QueueDepth,
		}
	}
	srv := endpoint.NewServer(l, sopts)
	defer srv.Close()
	srv.Handle("work", func(req *wire.Message) (*wire.Message, error) {
		time.Sleep(opts.ServiceTime)
		return &wire.Message{Kind: wire.KindReply}, nil
	})

	// Separate callers per lane: each classifies its whole traffic stream
	// once, the way a real control plane and a real bulk pipeline would.
	ctl, err := endpoint.NewCaller(tr, "srv", endpoint.CallerOptions{Lane: endpoint.LaneControl})
	if err != nil {
		return e13Point{}, err
	}
	defer ctl.Close()
	bulk, err := endpoint.NewCaller(tr, "srv", endpoint.CallerOptions{Lane: endpoint.LaneBulk})
	if err != nil {
		return e13Point{}, err
	}
	defer bulk.Close()

	p := e13Point{mode: mode, load: load}
	stop := make(chan struct{})
	var wg sync.WaitGroup // bulk producer
	var futs sync.WaitGroup
	var offered, ok64, shed64, miss64 atomic.Int64

	// Open-loop bulk flood: capacity is MaxInFlight/ServiceTime requests per
	// second; offer load x that, self-correcting against timer jitter.
	rate := load * float64(opts.MaxInFlight) / opts.ServiceTime.Seconds()
	wg.Add(1)
	go func() {
		defer wg.Done()
		start := time.Now()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			due := int64(time.Since(start).Seconds() * rate)
			for offered.Load() < due {
				offered.Add(1)
				fut := bulk.Go(&endpoint.Call{Topic: "work", Timeout: opts.BulkDeadline})
				futs.Add(1)
				go func() {
					defer futs.Done()
					_, err := fut.Wait()
					switch {
					case err == nil:
						ok64.Add(1)
					case endpoint.IsShed(err):
						shed64.Add(1)
					default:
						miss64.Add(1)
					}
				}()
			}
		}
	}()

	// Periodic control loop: one request per period, deadline = the period.
	// A miss is any error (a shed counts — the work did not complete in time).
	deadline := time.Now().Add(opts.Duration)
	for time.Now().Before(deadline) {
		began := time.Now()
		_, err := ctl.Do(&endpoint.Call{Topic: "work", Timeout: opts.ControlPeriod})
		if err == nil {
			p.ctlHit++
		} else {
			p.ctlMiss++
		}
		if rest := opts.ControlPeriod - time.Since(began); rest > 0 {
			time.Sleep(rest)
		}
	}
	close(stop)
	wg.Wait()
	futs.Wait()

	p.bulkOffered = offered.Load()
	p.bulkOK = ok64.Load()
	p.bulkShed = shed64.Load()
	p.bulkMiss = miss64.Load()
	if mode == "lanes" {
		p.srvExpired = reg.Counter("srv.shed.expired").Value()
		p.srvPreempt = reg.Counter("srv.shed.preempted").Value()
	}
	return p, nil
}
