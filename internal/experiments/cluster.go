package experiments

import (
	"fmt"
	"time"

	"ndsm/internal/chaos"
	"ndsm/internal/stats"
)

// E12Options sizes the registry-cluster availability experiment.
type E12Options struct {
	// Seed fixes the substrate RNG (default 9).
	Seed int64
	// Ticks is the workload length (default 60).
	Ticks int
	// KillAt is the tick offset of the registry kill (default 10).
	KillAt int
	// KillTicks is how long the killed node stays down (default 20).
	KillTicks int
	// Members sizes the cluster run (default 3, RF 2).
	Members int
}

func (o E12Options) withDefaults() E12Options {
	if o.Seed == 0 {
		o.Seed = 9
	}
	if o.Ticks <= 0 {
		o.Ticks = 60
	}
	if o.KillAt <= 0 {
		o.KillAt = 10
	}
	if o.KillTicks <= 0 {
		o.KillTicks = 20
	}
	if o.Members <= 0 {
		o.Members = 3
	}
	return o
}

// E12 is E11's question asked of the registry instead of the suppliers: at a
// fixed tick the registry dies for a fixed window. The classic world loses
// its only registry node, so the centralized path is gone and every lookup
// survives only by flooding until the revive; the cluster world loses one of
// N members and the centralized path keeps answering — every key has a
// surviving replica and the N-RF+1 lookup quorum still clears. The rows
// compare lookup availability inside the kill window; the cluster row also
// reports the cache-backed cluster path probed without any flood fallback.
func E12(opts E12Options) (Result, error) {
	opts = opts.withDefaults()
	const tickEvery = 50 * time.Millisecond
	windowOK := func(trace []bool) float64 {
		ok, n := 0, 0
		for i := opts.KillAt; i < opts.KillAt+opts.KillTicks && i < len(trace); i++ {
			n++
			if trace[i] {
				ok++
			}
		}
		if n == 0 {
			return 0
		}
		return 100 * float64(ok) / float64(n)
	}
	run := func(members int, fault chaos.FaultKind, target string) (*chaos.ScenarioResult, error) {
		return chaos.RunScenario(chaos.ScenarioConfig{
			Seed:            opts.Seed,
			Ticks:           opts.Ticks,
			TickEvery:       tickEvery,
			RegistryCluster: members,
			Schedule: chaos.Schedule{{
				At:       time.Duration(opts.KillAt) * tickEvery,
				Fault:    fault,
				Target:   target,
				Duration: time.Duration(opts.KillTicks) * tickEvery,
			}},
		})
	}

	classic, err := run(0, chaos.FaultKillRegistry, chaos.RegistryID)
	if err != nil {
		return Result{}, fmt.Errorf("E12 classic: %w", err)
	}
	clustered, err := run(opts.Members, chaos.FaultKillRegistryNode, "registry1")
	if err != nil {
		return Result{}, fmt.Errorf("E12 cluster: %w", err)
	}

	table := stats.NewTable("E12: availability through a registry kill",
		"world", "requests ok %", "lookups ok %", "lookup ok % in kill window",
		"central-path ok % in kill window", "violations")
	table.AddRow("single registry",
		100*float64(classic.TicksOK)/float64(classic.Ticks),
		100*float64(classic.LookupsOK)/float64(classic.Ticks),
		windowOK(classic.LookupOKByTick),
		"n/a (registry dead)",
		len(classic.Violations))
	table.AddRow(fmt.Sprintf("cluster(%d) RF=2", opts.Members),
		100*float64(clustered.TicksOK)/float64(clustered.Ticks),
		100*float64(clustered.LookupsOK)/float64(clustered.Ticks),
		windowOK(clustered.LookupOKByTick),
		windowOK(clustered.ClusterOKByTick),
		len(clustered.Violations))

	notes := []string{
		fmt.Sprintf("Same schedule shape both rows: registry down ticks %d-%d of %d.",
			opts.KillAt, opts.KillAt+opts.KillTicks, opts.Ticks),
		"The classic world survives the window only because adaptive discovery",
		"floods while its registry is dead; the cluster world keeps the",
		"centralized path — replication, quorum lookups, lease cache — serving.",
	}
	for _, v := range classic.Violations {
		notes = append(notes, "VIOLATION (classic) "+v)
	}
	for _, v := range clustered.Violations {
		notes = append(notes, "VIOLATION (cluster) "+v)
	}
	return Result{
		ID:     "E12",
		Title:  "Registry cluster: availability through a registry-node kill",
		Tables: []*stats.Table{table},
		Notes:  notes,
	}, nil
}
