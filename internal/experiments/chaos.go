package experiments

import (
	"fmt"

	"ndsm/internal/chaos"
	"ndsm/internal/stats"
)

// E4XOptions sizes the composed-fault chaos experiment.
type E4XOptions struct {
	// Scenarios is how many seeded scenarios to soak (default 3).
	Scenarios int
	// Seed is the first scenario's seed (default 101).
	Seed int64
	// Ticks is the workload length per scenario (default 60).
	Ticks int
	// Suppliers sizes each scenario's world (default 3).
	Suppliers int
}

func (o E4XOptions) withDefaults() E4XOptions {
	if o.Scenarios <= 0 {
		o.Scenarios = 3
	}
	if o.Seed == 0 {
		o.Seed = 101
	}
	if o.Ticks <= 0 {
		o.Ticks = 60
	}
	if o.Suppliers <= 0 {
		o.Suppliers = 3
	}
	return o
}

// E4X extends E4 from single-cause supplier kills to composed failures: each
// seeded scenario drives the full radio stack through loss bursts, latency
// spikes, partitions, supplier crashes, registry loss, and WAL crash-replay
// cycles, then checks the §3.4/§3.8 invariants (acked ops stay durable,
// rebinding recovers within a bound, discovery converges after registry
// loss, WAL replay reproduces state). Every row is reproducible from its
// seed alone.
func E4X(opts E4XOptions) (Result, error) {
	opts = opts.withDefaults()
	report, err := chaos.Soak(chaos.SoakConfig{
		Scenarios: opts.Scenarios,
		BaseSeed:  opts.Seed,
		Scenario: chaos.ScenarioConfig{
			Ticks:     opts.Ticks,
			Suppliers: opts.Suppliers,
			Windows:   4,
		},
	})
	if err != nil {
		return Result{}, fmt.Errorf("E4X: %w", err)
	}

	table := stats.NewTable("E4x: composed-fault chaos soak",
		"seed", "faults", "requests ok %", "lookups ok %", "rebinds", "violations")
	for _, res := range report.Results {
		injected := 0
		for _, ev := range res.Events {
			if ev.Phase == chaos.PhaseInject {
				injected++
			}
		}
		table.AddRow(res.Seed, injected,
			100*float64(res.TicksOK)/float64(res.Ticks),
			100*float64(res.LookupsOK)/float64(res.Ticks),
			res.Rebinds, len(res.Violations))
	}

	notes := []string{
		"Each scenario composes loss bursts, latency spikes, partitions, supplier",
		"crashes, registry kills and WAL crash-replay cycles from one seed;",
		"violations list the reproducing seed — rerun with",
		"chaos.RunScenario(chaos.ScenarioConfig{Seed: <seed>}) to replay a row.",
	}
	for _, v := range report.Violations() {
		notes = append(notes, "VIOLATION "+v)
	}
	return Result{
		ID:     "E4x",
		Title:  "Chaos soak: invariants under composed failures",
		Tables: []*stats.Table{table},
		Notes:  notes,
	}, nil
}
