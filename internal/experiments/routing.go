package experiments

import (
	"fmt"
	"time"

	"ndsm/internal/netsim"
	"ndsm/internal/routing"
	"ndsm/internal/stats"
)

// E5Options sizes the routing comparison.
type E5Options struct {
	// Nodes in the grid (default 49).
	Nodes int
	// Packets sent corner-to-corner per strategy (default 20).
	Packets int
	// PayloadBytes per packet (default 128).
	PayloadBytes int
}

func (o E5Options) withDefaults() E5Options {
	if o.Nodes <= 0 {
		o.Nodes = 49
	}
	if o.Packets <= 0 {
		o.Packets = 20
	}
	if o.PayloadBytes <= 0 {
		o.PayloadBytes = 128
	}
	return o
}

// E5 compares the four routing strategies on the same corner-to-corner
// workload: delivery ratio, radio transmissions per delivered packet, energy
// per delivered packet, and control traffic.
func E5(opts E5Options) (Result, error) {
	opts = opts.withDefaults()
	table := stats.NewTable("E5: routing strategies",
		"strategy", "delivered", "tx/delivered", "energy mJ/delivered", "control msgs")

	type strat struct {
		name    string
		factory func() routing.Strategy
		// converge rounds before measuring (proactive protocols only).
		converge int
	}
	strategies := []strat{
		{"flooding", func() routing.Strategy { return routing.Flooding{} }, 0},
		{"dv-hop", func() routing.Strategy { return routing.NewDistanceVector(routing.HopCost) }, 14},
		{"dv-energy", func() routing.Strategy { return routing.NewDistanceVector(routing.EnergyCost(128, 0.05)) }, 14},
		{"geographic", func() routing.Strategy { return routing.Geographic{} }, 0},
	}
	for _, st := range strategies {
		row, err := e5Run(opts, st.factory, st.converge)
		if err != nil {
			return Result{}, fmt.Errorf("E5 %s: %w", st.name, err)
		}
		table.AddRow(st.name, fmt.Sprintf("%d/%d", row.delivered, opts.Packets),
			row.txPerDelivered, row.energyPerDelivered*1e3, row.controlMsgs)
	}
	return Result{
		ID:     "E5",
		Title:  "Routing: delivery, transmissions, and energy per strategy",
		Tables: []*stats.Table{table},
		Notes: []string{
			"Flooding delivers everything but transmits O(N) per packet;",
			"DV and geographic unicast pay ~path-length transmissions;",
			"DV pays convergence control traffic, geographic pays none.",
		},
	}, nil
}

type e5Row struct {
	delivered          int
	txPerDelivered     float64
	energyPerDelivered float64
	controlMsgs        int64
}

func e5Run(opts E5Options, factory func() routing.Strategy, converge int) (e5Row, error) {
	net := netsim.New(netsim.Config{Range: 12, Unlimited: true})
	defer net.Close()
	ids, err := netsim.GridField(net, "n", opts.Nodes, 10)
	if err != nil {
		return e5Row{}, err
	}
	mesh, err := routing.NewMesh(net, factory)
	if err != nil {
		return e5Row{}, err
	}
	defer mesh.Close()

	if converge > 0 {
		mesh.Converge(converge)
	}
	controlMsgs := net.Counters()["sent"]
	controlEnergy := net.TotalConsumed()

	src, dst := ids[0], ids[len(ids)-1]
	rx, err := mesh.Router(dst).Recv(dst)
	if err != nil {
		return e5Row{}, err
	}
	payload := make([]byte, opts.PayloadBytes)
	sent := 0
	for i := 0; i < opts.Packets; i++ {
		if err := mesh.Router(src).Send(src, dst, payload); err == nil {
			sent++
		}
	}
	// Collect deliveries.
	delivered := 0
	timeout := time.After(10 * time.Second)
collect:
	for delivered < sent {
		select {
		case <-rx:
			delivered++
		case <-timeout:
			break collect
		}
	}
	mesh.Settle(5 * time.Second)

	dataMsgs := net.Counters()["sent"] - controlMsgs
	dataEnergy := net.TotalConsumed() - controlEnergy
	row := e5Row{delivered: delivered, controlMsgs: controlMsgs}
	if delivered > 0 {
		row.txPerDelivered = float64(dataMsgs) / float64(delivered)
		row.energyPerDelivered = dataEnergy / float64(delivered)
	}
	return row, nil
}

// E5Ablation compares the DV metric choice (hop vs energy) where they must
// disagree: the shortest path runs through a nearly-drained relay, a longer
// detour through healthy ones. Hop count takes the short path and finishes
// the weak node off; the energy metric pays the extra hop and spares it.
func E5Ablation() (Result, error) {
	table := stats.NewTable("E5a: DV metric ablation (drained shortcut)",
		"metric", "relay used", "weak node residual J")
	for _, metric := range []string{"hop", "energy"} {
		relay, residual, err := e5Ablate(metric)
		if err != nil {
			return Result{}, err
		}
		table.AddRow(metric, relay, residual)
	}
	return Result{
		ID:     "E5a",
		Title:  "Ablation: routing metric (hop count vs residual-energy aware)",
		Tables: []*stats.Table{table},
	}, nil
}

func e5Ablate(metric string) (relayUsed string, weakResidual float64, err error) {
	net := netsim.New(netsim.Config{Range: 12})
	defer net.Close()
	add := func(id netsim.NodeID, pos netsim.Position, energy float64) error {
		return net.AddNodeEnergy(id, pos, energy)
	}
	// Short path: src -> weak -> dst (2 hops, weak is nearly drained).
	// Detour:    src -> s1 -> s2 -> dst (3 hops, all healthy).
	if err := add("src", netsim.Position{X: 0, Y: 0}, 1); err != nil {
		return "", 0, err
	}
	if err := add("weak", netsim.Position{X: 10, Y: 0}, 0.002); err != nil {
		return "", 0, err
	}
	if err := add("s1", netsim.Position{X: 5, Y: 9}, 1); err != nil {
		return "", 0, err
	}
	if err := add("s2", netsim.Position{X: 15, Y: 9}, 1); err != nil {
		return "", 0, err
	}
	if err := add("dst", netsim.Position{X: 20, Y: 0}, 1); err != nil {
		return "", 0, err
	}

	cost := routing.HopCost
	if metric == "energy" {
		// Penalty weight large enough that a drained next hop outweighs an
		// extra transmission.
		cost = routing.EnergyCost(128, 0.5)
	}
	mesh, err := routing.NewMesh(net, func() routing.Strategy { return routing.NewDistanceVector(cost) })
	if err != nil {
		return "", 0, err
	}
	defer mesh.Close()
	mesh.Converge(6)

	rx, err := mesh.Router("dst").Recv("dst")
	if err != nil {
		return "", 0, err
	}
	weakBefore, _ := net.Consumed("weak")
	detourBefore, _ := net.Consumed("s1")
	for i := 0; i < 10; i++ {
		if err := mesh.Router("src").Send("src", "dst", make([]byte, 128)); err != nil {
			break
		}
		select {
		case <-rx:
		case <-time.After(2 * time.Second):
		}
	}
	mesh.Settle(5 * time.Second)
	weakAfter, _ := net.Consumed("weak")
	detourAfter, _ := net.Consumed("s1")
	relayUsed = "detour (s1,s2)"
	if weakAfter-weakBefore > detourAfter-detourBefore {
		relayUsed = "weak"
	}
	residual, _ := net.Energy("weak")
	return relayUsed, residual, nil
}
