package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ndsm/internal/chaos"
	"ndsm/internal/endpoint"
	"ndsm/internal/obs"
	"ndsm/internal/slo"
	"ndsm/internal/stats"
	"ndsm/internal/telemetry"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// E14Options sizes the SLO detection-and-adaptation experiment.
type E14Options struct {
	// Seed fixes the chaos substrate RNG (default 14).
	Seed int64
	// Ticks is each simulated leg's length (default 70).
	Ticks int
	// FaultAt is the tick offset of the injected fault (default 10).
	FaultAt int
	// FaultTicks is how long the fault holds (default 25).
	FaultTicks int
	// Members sizes the registry cluster in the member-kill leg (default 3,
	// RF 2; two members die at once, so quorum lookups must fail).
	Members int
	// FloodFor is the real-time overload leg's burn phase (default 450ms).
	FloodFor time.Duration
	// Recovery is the post-flood observation phase (default 400ms).
	Recovery time.Duration
	// Window is the overload leg's long burn window. It must cover the whole
	// flood so the alert cannot clear while the fault is still live (default
	// 500ms; see the objective comment in e14Overload).
	Window time.Duration
	// Load is the bulk flood's offered-load multiple of capacity (default 2).
	Load float64
	// ServiceTime is the simulated per-request work (default 2ms).
	ServiceTime time.Duration
	// MaxInFlight is the server's concurrency bound (default 8).
	MaxInFlight int
	// ControlPeriod spaces the control loop; deadline = period (default 10ms).
	ControlPeriod time.Duration
	// Boost is the control-lane quota the adapter widens to (default 2).
	Boost int
	// CalmSeeds is the calm-soak leg's seed count (default 5).
	CalmSeeds int
}

func (o E14Options) withDefaults() E14Options {
	if o.Seed == 0 {
		o.Seed = 14
	}
	if o.Ticks <= 0 {
		o.Ticks = 70
	}
	if o.FaultAt <= 0 {
		o.FaultAt = 10
	}
	if o.FaultTicks <= 0 {
		o.FaultTicks = 25
	}
	if o.Members <= 0 {
		o.Members = 3
	}
	if o.FloodFor <= 0 {
		o.FloodFor = 450 * time.Millisecond
	}
	if o.Recovery <= 0 {
		o.Recovery = 400 * time.Millisecond
	}
	if o.Window <= 0 {
		o.Window = 500 * time.Millisecond
	}
	if o.Load <= 0 {
		o.Load = 2
	}
	if o.ServiceTime <= 0 {
		o.ServiceTime = 2 * time.Millisecond
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 8
	}
	if o.ControlPeriod <= 0 {
		o.ControlPeriod = 10 * time.Millisecond
	}
	if o.Boost <= 0 {
		o.Boost = 2
	}
	if o.CalmSeeds <= 0 {
		o.CalmSeeds = 5
	}
	return o
}

// e14Missing marks an alert that never fired (or cleared) in a leg's table
// cell. A sentinel far above any plausible bound keeps the cell numeric so
// the baseline gate "alert ticks > N" catches a broken detector.
const e14Missing = 999

// e14Detection is one simulated leg's reading of the alert feed.
type e14Detection struct {
	alertTicks  int // first critical, ticks after injection
	clearTicks  int // final return to ok, ticks after the heal
	transitions int // state changes for this alert instance (flapping shows here)
	violations  []string
}

// E14 measures the alerting plane's detection latency and the quota adapter's
// reaction across three fault classes, plus a calm-world control:
//
//   - a supplier partition must drive the telemetry-freshness objective
//     critical within the alert-latency bound and decay back after the heal;
//   - killing two of three registry members (RF 2) must break the quorum
//     lookup path and drive lookup-availability critical once the lease
//     cache's stale window runs out;
//   - a real-time 2x bulk flood against a lane-aware server with *zero*
//     control reservation must burn the control deadline-miss objective, and
//     the alert-driven quota adapter must widen the control lane until misses
//     stop — then decay back to zero after the flood;
//   - a calm soak (faults suppressed, workload live) must raise no alert at
//     all: detection speed is only worth having at zero false positives.
//
// The first two legs run on the chaos substrate's virtual clock, so "time to
// alert" is deterministic ticks; the overload leg is wall-clock like E13.
func E14(opts E14Options) (Result, error) {
	opts = opts.withDefaults()
	const tickEvery = 50 * time.Millisecond
	healAt := opts.FaultAt + opts.FaultTicks

	// Leg 1: partition one supplier; the freshness objective must notice.
	partition, err := e14ChaosLeg(chaos.ScenarioConfig{
		Seed:      opts.Seed,
		Ticks:     opts.Ticks,
		TickEvery: tickEvery,
		SLO:       true,
		Schedule: chaos.Schedule{{
			At:       time.Duration(opts.FaultAt) * tickEvery,
			Fault:    chaos.FaultPartition,
			Target:   "s2",
			Duration: time.Duration(opts.FaultTicks) * tickEvery,
		}},
	}, chaos.FreshnessObjective, "s2", tickEvery, opts.FaultAt, healAt)
	if err != nil {
		return Result{}, fmt.Errorf("E14 partition: %w", err)
	}

	// Leg 2: kill two of three cluster members at once. RF 2 means some owner
	// sets are now fully dead and the N-RF+1 quorum is unreachable, so cached
	// lookups start failing when the stale window runs out.
	memberKill, err := e14ChaosLeg(chaos.ScenarioConfig{
		Seed:            opts.Seed,
		Ticks:           opts.Ticks,
		TickEvery:       tickEvery,
		SLO:             true,
		RegistryCluster: opts.Members,
		Schedule: chaos.Schedule{
			{
				At:       time.Duration(opts.FaultAt) * tickEvery,
				Fault:    chaos.FaultKillRegistryNode,
				Target:   "registry1",
				Duration: time.Duration(opts.FaultTicks) * tickEvery,
			},
			{
				At:       time.Duration(opts.FaultAt) * tickEvery,
				Fault:    chaos.FaultKillRegistryNode,
				Target:   "registry2",
				Duration: time.Duration(opts.FaultTicks) * tickEvery,
			},
		},
	}, chaos.LookupObjective, chaos.ConsumerID, tickEvery, opts.FaultAt, healAt)
	if err != nil {
		return Result{}, fmt.Errorf("E14 member kill: %w", err)
	}

	// Leg 3: the calm control. Same worlds, workload on, faults suppressed.
	calmAlerts, calmViolations := 0, 0
	calmReport, err := chaos.Soak(chaos.SoakConfig{
		Scenarios: opts.CalmSeeds,
		BaseSeed:  opts.Seed * 100,
		Scenario: chaos.ScenarioConfig{
			Ticks:    opts.Ticks / 2,
			SLO:      true,
			Overload: true,
			NoFaults: true,
		},
	})
	if err != nil {
		return Result{}, fmt.Errorf("E14 calm soak: %w", err)
	}
	for _, res := range calmReport.Results {
		calmAlerts += len(res.Alerts)
		calmViolations += len(res.Violations)
	}

	// Leg 4: real-time overload, with and without the quota adapter.
	bare, err := e14Overload(false, opts)
	if err != nil {
		return Result{}, fmt.Errorf("E14 overload (no adapter): %w", err)
	}
	adapted, err := e14Overload(true, opts)
	if err != nil {
		return Result{}, fmt.Errorf("E14 overload (adapter): %w", err)
	}

	detect := stats.NewTable("E14: time to alert by fault class (virtual time)",
		"fault class", "alert ticks", "clear ticks", "transitions", "violations")
	detect.AddRow("partition (telemetry-freshness)",
		partition.alertTicks, partition.clearTicks, partition.transitions, len(partition.violations))
	detect.AddRow("registry member kills (lookup-availability)",
		memberKill.alertTicks, memberKill.clearTicks, memberKill.transitions, len(memberKill.violations))
	detect.AddRow("calm soak", "n/a", "n/a", calmAlerts, calmViolations)

	adapt := stats.NewTable("E14: overload adaptation (real time)",
		"mode", "alert ms", "adapt ms", "ctl miss % pre-adapt", "ctl miss % post-adapt",
		"decay ms", "boosts")
	addOverloadRow := func(name string, p e14OverloadPoint) {
		ms := func(d time.Duration) interface{} {
			if d < 0 {
				return "n/a"
			}
			return float64(d.Milliseconds())
		}
		adapt.AddRow(name, ms(p.alertAt), ms(p.adaptAt), p.preMissPct, p.postMissPct,
			ms(p.decayAfter), p.boosts)
	}
	addOverloadRow("no adapter", bare)
	addOverloadRow("adapter", adapted)

	notes := []string{
		fmt.Sprintf("simulated legs: fault at tick %d for %d ticks of %d; chaos SLO windows apply (freshness crit = half the window stale).",
			opts.FaultAt, opts.FaultTicks, opts.Ticks),
		fmt.Sprintf("calm soak: %d fault-free seeds x %d ticks with the overload workload live — any alert is a false positive.",
			opts.CalmSeeds, opts.Ticks/2),
		fmt.Sprintf("overload leg: %.0fx bulk flood for %v at a lane-aware server with zero control reservation (MaxInFlight %d);",
			opts.Load, opts.FloodFor, opts.MaxInFlight),
		fmt.Sprintf("the adapter widens the control lane to %d on warning and decays back after the alert clears.", opts.Boost),
		"member-kill violations are the induced outage itself: two dead members exceed what RF 2 can mask, which is the point.",
	}
	if !adapted.clearedOK {
		notes = append(notes, "VIOLATION (adapter) alert did not return to ok after the flood stopped.")
	}
	if adapted.finalQuota != 0 {
		notes = append(notes, fmt.Sprintf("VIOLATION (adapter) quota %d after recovery, want base 0.", adapted.finalQuota))
	}
	for _, v := range partition.violations {
		notes = append(notes, "VIOLATION (partition) "+v)
	}
	return Result{
		ID:     "E14",
		Title:  "SLO burn-rate alerting: detection latency and alert-driven quota adaptation",
		Tables: []*stats.Table{detect, adapt},
		Notes:  notes,
	}, nil
}

// e14ChaosLeg runs one fault schedule through a chaos SLO world and reads the
// named alert instance's detection latency off the transition stamps. The
// substrate's virtual epoch is time.Unix(0,0) and each tick evaluates after
// the clock advances, so a transition stamped t happened on tick t/tickEvery-1.
func e14ChaosLeg(cfg chaos.ScenarioConfig, objective, node string, tickEvery time.Duration, faultAt, healAt int) (e14Detection, error) {
	res, err := chaos.RunScenario(cfg)
	if err != nil {
		return e14Detection{}, err
	}
	d := e14Detection{alertTicks: e14Missing, clearTicks: e14Missing, violations: res.Violations}
	epoch := time.Unix(0, 0)
	for _, tr := range res.Alerts {
		if tr.Objective != objective || tr.Node != node {
			continue
		}
		d.transitions++
		tick := int(tr.At.Sub(epoch)/tickEvery) - 1
		if tr.To == slo.Critical && d.alertTicks == e14Missing {
			d.alertTicks = tick - faultAt
		}
		if tr.To == slo.OK && tick >= healAt {
			d.clearTicks = tick - healAt
		}
	}
	return d, nil
}

// e14OverloadPoint is one real-time overload run's reading.
type e14OverloadPoint struct {
	alertAt     time.Duration // first critical (-1: never)
	adaptAt     time.Duration // first boosted quota (-1: never / no adapter)
	decayAfter  time.Duration // quota back to base, measured from flood end
	preMissPct  float64       // control misses before the adapt (or alert) point
	postMissPct float64       // control misses after it, to flood end
	boosts      int64
	clearedOK   bool
	finalQuota  int
}

// e14Overload drives the E13 workload shape — a periodic control loop beside
// an open-loop bulk flood — at a lane-aware server whose control lane starts
// with no reservation at all, so the flood starves the control loop exactly
// like the flat bound. The deadline-miss objective burns, and with the
// adapter on, the resulting alert widens the control lane out of the shared
// pool until the loop stops missing; when the flood ends and the alert
// clears, the quota decays back to zero.
func e14Overload(withAdapter bool, opts E14Options) (e14OverloadPoint, error) {
	p := e14OverloadPoint{alertAt: -1, adaptAt: -1, decayAfter: -1}
	reg := obs.NewRegistry()
	tr := transport.NewMem(transport.NewFabric())
	l, err := tr.Listen("srv")
	if err != nil {
		return p, err
	}
	srv := endpoint.NewServer(l, endpoint.ServerOptions{
		Name:        "srv",
		MaxInFlight: opts.MaxInFlight,
		Metrics:     obs.NewRegistry(),
		// Lane-aware but with nothing reserved and no waiting room: the shape
		// a fleet starts in before anyone has tuned quotas. Saturation sheds
		// immediately, so the flood starves control until the adapter acts.
		Lanes: &endpoint.LaneConfig{},
	})
	defer srv.Close()
	srv.Handle("work", func(req *wire.Message) (*wire.Message, error) {
		time.Sleep(opts.ServiceTime)
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	ctl, err := endpoint.NewCaller(tr, "srv", endpoint.CallerOptions{Lane: endpoint.LaneControl})
	if err != nil {
		return p, err
	}
	defer ctl.Close()
	bulk, err := endpoint.NewCaller(tr, "srv", endpoint.CallerOptions{Lane: endpoint.LaneBulk})
	if err != nil {
		return p, err
	}
	defer bulk.Close()

	// The alerting plane: the control loop publishes its own hit/miss
	// counters into a local aggregator after every probe, and the engine
	// evaluates at the same cadence — detection latency is then a property
	// of the windows, not of a publish interval.
	agg := telemetry.NewAggregator(telemetry.AggregatorOptions{
		StaleAfter: time.Minute,
		Registry:   obs.NewRegistry(),
	})
	pub, err := telemetry.NewPublisher(telemetry.PublisherOptions{
		Node:     "ctl-loop",
		Registry: reg,
		Send:     func(r *telemetry.Report) error { return agg.Ingest(r) },
	})
	if err != nil {
		return p, err
	}
	eng, err := slo.New(slo.Options{Aggregator: agg})
	if err != nil {
		return p, err
	}
	// Budget 2%: a control plane that misses more than one probe in fifty is
	// degraded. The tight budget also pins the alert up for the whole flood:
	// with the long window covering the full burn phase, even the couple of
	// pre-boost misses keep burnLong >= 1, so the adapter cannot decay (and
	// re-expose the loop) while the flood is still running.
	err = eng.Add(slo.Objective{
		Name:        chaos.ControlObjective,
		Description: "control-lane probes meet their deadline",
		Kind:        slo.KindRatio,
		Node:        "ctl-loop",
		BadSeries:   "ctl.miss",
		TotalSeries: "ctl.total",
		Window:      opts.Window,
		ShortWindow: 5 * opts.ControlPeriod,
		Budget:      0.02,
		WarnBurn:    1,
		CritBurn:    4,
		ClearAfter:  2,
	})
	if err != nil {
		return p, err
	}
	var adapter *slo.QuotaAdapter
	if withAdapter {
		adapter, err = slo.NewQuotaAdapter(eng, slo.QuotaAdapterOptions{
			Objective: chaos.ControlObjective,
			Base:      0,
			Boost:     opts.Boost,
			Servers:   []slo.LaneServer{srv},
			Registry:  reg,
		})
		if err != nil {
			return p, err
		}
	}

	start := time.Now()
	stop := make(chan struct{})
	var wg, futs sync.WaitGroup
	var offered atomic.Int64
	rate := opts.Load * float64(opts.MaxInFlight) / opts.ServiceTime.Seconds()
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			elapsed := time.Since(start)
			if elapsed >= opts.FloodFor {
				return
			}
			due := int64(elapsed.Seconds() * rate)
			for offered.Load() < due {
				offered.Add(1)
				fut := bulk.Go(&endpoint.Call{Topic: "work", Timeout: opts.FloodFor})
				futs.Add(1)
				go func() {
					defer futs.Done()
					_, _ = fut.Wait()
				}()
			}
		}
	}()

	type sample struct {
		at    time.Duration
		miss  bool
		sev   slo.Severity
		quota int
	}
	var samples []sample
	total := opts.FloodFor + opts.Recovery
	for time.Since(start) < total {
		began := time.Now()
		_, err := ctl.Do(&endpoint.Call{Topic: "work", Timeout: opts.ControlPeriod})
		miss := err != nil
		reg.Counter("ctl.total").Inc(1)
		if miss {
			reg.Counter("ctl.miss").Inc(1)
		}
		if err := pub.Publish(); err != nil {
			close(stop)
			wg.Wait()
			futs.Wait()
			return p, err
		}
		eng.Evaluate()
		s := sample{at: time.Since(start), miss: miss, sev: eng.SeverityOf(chaos.ControlObjective)}
		if adapter != nil {
			s.quota = adapter.Quota()
		}
		samples = append(samples, s)
		if rest := opts.ControlPeriod - time.Since(began); rest > 0 {
			time.Sleep(rest)
		}
	}
	close(stop)
	wg.Wait()
	futs.Wait()

	for _, s := range samples {
		if p.alertAt < 0 && s.sev >= slo.Critical {
			p.alertAt = s.at
		}
		if p.adaptAt < 0 && adapter != nil && s.quota >= opts.Boost {
			p.adaptAt = s.at
		}
		if p.decayAfter < 0 && adapter != nil && s.at > opts.FloodFor && s.quota == 0 {
			p.decayAfter = s.at - opts.FloodFor
		}
	}
	// Split the flood phase at the adapt point (alert point without an
	// adapter, so both rows read "did anything change after detection").
	// Two periods of grace cover the probe already in flight when the quota
	// widened.
	split := p.adaptAt
	if split < 0 {
		split = p.alertAt
	}
	grace := 2 * opts.ControlPeriod
	var preMiss, preTotal, postMiss, postTotal int
	for _, s := range samples {
		if s.at > opts.FloodFor {
			continue
		}
		switch {
		case split < 0 || s.at <= split+grace:
			preTotal++
			if s.miss {
				preMiss++
			}
		default:
			postTotal++
			if s.miss {
				postMiss++
			}
		}
	}
	pct := func(part, total int) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(part) / float64(total)
	}
	p.preMissPct = pct(preMiss, preTotal)
	p.postMissPct = pct(postMiss, postTotal)
	if len(samples) > 0 {
		p.clearedOK = samples[len(samples)-1].sev == slo.OK
	}
	if adapter != nil {
		p.finalQuota = adapter.Quota()
		p.boosts = reg.Counter("slo.adapter.boosts").Value()
	}
	return p, nil
}
