package experiments

import (
	"fmt"
	"math/rand"

	"ndsm/internal/milan"
	"ndsm/internal/netsim"
	"ndsm/internal/stats"
)

// E6Options sizes the MiLAN lifetime experiment.
type E6Options struct {
	// SensorsPerVariable sets redundancy (default 4 → 8 sensors total).
	SensorsPerVariable int
	// InitialEnergy per sensor in joules (default 0.02 for fast runs).
	InitialEnergy float64
	// MaxRounds caps a run (default 2,000,000).
	MaxRounds int
	// Seed fixes sensor placement and qualities.
	Seed int64
}

func (o E6Options) withDefaults() E6Options {
	if o.SensorsPerVariable <= 0 {
		o.SensorsPerVariable = 4
	}
	if o.InitialEnergy <= 0 {
		o.InitialEnergy = 0.02
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 2000000
	}
	if o.Seed == 0 {
		o.Seed = 11
	}
	return o
}

const (
	varBP milan.Variable = "blood-pressure"
	varHR milan.Variable = "heart-rate"

	stateNormal milan.State = "normal"
)

// e6System builds a two-variable monitoring deployment with redundant
// sensors of random quality scattered around the sink.
func e6System(opts E6Options, rng *rand.Rand) *milan.System {
	sys := &milan.System{
		App: milan.AppSpec{
			Variables: []milan.Variable{varBP, varHR},
			Required: map[milan.State]map[milan.Variable]float64{
				stateNormal: {varBP: 0.7, varHR: 0.7},
			},
		},
		Sink:    "sink",
		SinkPos: netsim.Position{X: 0, Y: 0},
		Range:   30,
	}
	for v, variable := range []milan.Variable{varBP, varHR} {
		for i := 0; i < opts.SensorsPerVariable; i++ {
			sys.Sensors = append(sys.Sensors, milan.Sensor{
				Node:        netsim.NodeID(fmt.Sprintf("s%d-%d", v, i)),
				QoS:         map[milan.Variable]float64{variable: 0.72 + rng.Float64()*0.2},
				SampleBytes: 100,
			})
		}
	}
	return sys
}

func e6Field(sys *milan.System, opts E6Options, rng *rand.Rand) (*netsim.Network, error) {
	net := netsim.New(netsim.Config{Range: sys.Range})
	if err := net.AddNodeEnergy(sys.Sink, sys.SinkPos, 1e6); err != nil {
		net.Close()
		return nil, err
	}
	for _, sn := range sys.Sensors {
		pos := netsim.Position{X: 5 + rng.Float64()*20, Y: rng.Float64() * 20}
		if err := net.AddNodeEnergy(sn.Node, pos, opts.InitialEnergy); err != nil {
			net.Close()
			return nil, err
		}
	}
	return net, nil
}

// E6 is the headline reproduction: network lifetime under MiLAN's
// lifetime-optimal feasible-set selection versus the baselines.
func E6(opts E6Options) (Result, error) {
	opts = opts.withDefaults()
	table := stats.NewTable("E6: MiLAN network lifetime",
		"selector", "lifetime rounds", "vs all-sensors", "reconfigs", "delivered", "first death round")

	type runResult struct {
		name     string
		lifetime int
		stats    milan.Stats
	}
	var results []runResult
	selectors := []milan.Selector{
		milan.AllSensors{},
		milan.RandomFeasible{Rng: rand.New(rand.NewSource(opts.Seed + 1))},
		milan.Greedy{},
		milan.Exhaustive{},
	}
	for _, sel := range selectors {
		rng := rand.New(rand.NewSource(opts.Seed)) // identical deployments
		sys := e6System(opts, rng)
		net, err := e6Field(sys, opts, rng)
		if err != nil {
			return Result{}, err
		}
		mgr, err := milan.NewManager(sys, net, sel, stateNormal)
		if err != nil {
			net.Close()
			return Result{}, fmt.Errorf("E6 %s: %w", sel.Name(), err)
		}
		lifetime, err := mgr.Run(opts.MaxRounds)
		if err != nil {
			net.Close()
			return Result{}, fmt.Errorf("E6 %s run: %w", sel.Name(), err)
		}
		results = append(results, runResult{name: sel.Name(), lifetime: lifetime, stats: mgr.Stats()})
		net.Close()
	}

	baseline := results[0].lifetime // all-sensors
	for _, r := range results {
		speedup := 0.0
		if baseline > 0 {
			speedup = float64(r.lifetime) / float64(baseline)
		}
		table.AddRow(r.name, r.lifetime, fmt.Sprintf("%.2fx", speedup),
			r.stats.Reconfigs, r.stats.Delivered, r.stats.FirstDeath)
	}
	return Result{
		ID:     "E6",
		Title:  "MiLAN: application-lifetime optimization vs baselines (paper §4)",
		Tables: []*stats.Table{table},
		Notes: []string{
			"Lifetime = reporting rounds until no feasible sensor set remains.",
			"Expected shape: exhaustive ≥ greedy > random-feasible > all-sensors,",
			"because MiLAN activates minimal sets and rotates them as batteries drain.",
		},
	}, nil
}

// E6Ablation compares MiLAN's exhaustive search against the greedy heuristic
// as the sensor count grows (the cost side of the design choice).
func E6Ablation(maxSensorsPerVar int) (Result, error) {
	if maxSensorsPerVar <= 0 {
		maxSensorsPerVar = 6
	}
	table := stats.NewTable("E6a: selector ablation",
		"sensors", "selector", "predicted lifetime", "feasible")
	for spv := 2; spv <= maxSensorsPerVar; spv += 2 {
		opts := E6Options{SensorsPerVariable: spv, Seed: 11}.withDefaults()
		rng := rand.New(rand.NewSource(opts.Seed))
		sys := e6System(opts, rng)
		energies := make(milan.Energies)
		positions := make(map[netsim.NodeID]netsim.Position)
		for _, sn := range sys.Sensors {
			energies[sn.Node] = opts.InitialEnergy
			positions[sn.Node] = netsim.Position{X: 5 + rng.Float64()*20, Y: rng.Float64() * 20}
		}
		for _, sel := range []milan.Selector{milan.Exhaustive{}, milan.Greedy{}} {
			set, err := sel.Select(sys, stateNormal, energies, positions)
			feasible := err == nil
			life := 0.0
			if feasible {
				life = sys.PredictedLifetime(set, energies, positions)
			}
			table.AddRow(2*spv, sel.Name(), life, feasible)
		}
	}
	return Result{
		ID:     "E6a",
		Title:  "Ablation: exhaustive vs greedy feasible-set search",
		Tables: []*stats.Table{table},
	}, nil
}
