// Package experiments contains the reproduction harness: one function per
// experiment in DESIGN.md's index (F1 and E1–E11). Each returns rendered
// stats.Tables; cmd/ndsm-bench prints them, the root benchmarks time their
// cores, and EXPERIMENTS.md records their measured shapes against the
// paper's claims.
package experiments

import (
	"ndsm/internal/bibliometrics"
	"ndsm/internal/stats"
)

// Result is one experiment's output: a headline table plus optional extra
// sections (charts, sub-tables).
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Notes  []string
	Chart  string
}

// F1 regenerates the paper's Figure 1.
func F1() Result {
	series := bibliometrics.Figure1()
	t := stats.NewTable("F1 data", "year", "references")
	for _, yc := range series {
		t.AddRow(yc.Year, yc.Count)
	}
	return Result{
		ID:     "F1",
		Title:  "Paper Figure 1: middleware references per year (IEEE Xplore, 1989-2001)",
		Tables: []*stats.Table{t},
		Chart:  bibliometrics.Chart(series, 50),
		Notes: []string{
			"Series transcribed from the figure; onset 1993, ≈170/year by 2000-2001.",
		},
	}
}
