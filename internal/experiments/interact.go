package experiments

import (
	"fmt"
	"time"

	"ndsm/internal/interact/mq"
	"ndsm/internal/interact/pubsub"
	"ndsm/internal/interact/rpc"
	"ndsm/internal/interact/tuplespace"
	"ndsm/internal/stats"
	"ndsm/internal/transport"
)

// E7Options sizes the interaction-style comparison.
type E7Options struct {
	// Ops per style/size combination (default 2000).
	Ops int
	// Sizes are payload sizes in bytes (default 64 and 4096).
	Sizes []int
}

func (o E7Options) withDefaults() E7Options {
	if o.Ops <= 0 {
		o.Ops = 2000
	}
	if len(o.Sizes) == 0 {
		o.Sizes = []int{64, 4096}
	}
	return o
}

// E7 measures the four interaction styles of §3.1/§3.6 on an identical
// round-trip workload over the mem transport: client-server RPC, message
// queue, publish-subscribe, and tuple space.
func E7(opts E7Options) (Result, error) {
	opts = opts.withDefaults()
	table := stats.NewTable("E7: interaction styles",
		"style", "payload B", "ops/sec", "mean µs/op")
	type styleFn func(size, ops int) (time.Duration, error)
	styles := []struct {
		name string
		run  styleFn
	}{
		{"rpc (client-server)", e7RPC},
		{"message queue", e7MQ},
		{"publish-subscribe", e7PubSub},
		{"tuple space", e7Tuple},
	}
	for _, size := range opts.Sizes {
		for _, st := range styles {
			elapsed, err := st.run(size, opts.Ops)
			if err != nil {
				return Result{}, fmt.Errorf("E7 %s size=%d: %w", st.name, size, err)
			}
			perOp := elapsed / time.Duration(opts.Ops)
			table.AddRow(st.name, size,
				float64(opts.Ops)/elapsed.Seconds(),
				float64(perOp.Nanoseconds())/1e3)
		}
	}
	return Result{
		ID:     "E7",
		Title:  "Interaction styles: throughput and latency",
		Tables: []*stats.Table{table},
		Notes: []string{
			"Same ping-pong workload per style; differences reflect protocol",
			"round trips (RPC: 1 RTT; MQ: 2 RTTs — push + pop; pub/sub: publish",
			"ack + event; tuple space: out ack + in).",
		},
	}, nil
}

func e7RPC(size, ops int) (time.Duration, error) {
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	defer tr.Close() //nolint:errcheck
	l, err := tr.Listen("svc")
	if err != nil {
		return 0, err
	}
	srv := rpc.NewServer(l)
	defer srv.Close() //nolint:errcheck
	srv.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	cli, err := rpc.Dial(transport.NewMem(fabric), "svc", nil)
	if err != nil {
		return 0, err
	}
	defer cli.Close() //nolint:errcheck

	payload := make([]byte, size)
	start := time.Now()
	for i := 0; i < ops; i++ {
		if _, err := cli.Call("echo", payload, 10*time.Second); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

func e7MQ(size, ops int) (time.Duration, error) {
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	defer tr.Close() //nolint:errcheck
	l, err := tr.Listen("broker")
	if err != nil {
		return 0, err
	}
	b := mq.NewBroker(l, 0, nil)
	defer b.Close() //nolint:errcheck
	cli, err := mq.Dial(transport.NewMem(fabric), "broker")
	if err != nil {
		return 0, err
	}
	defer cli.Close() //nolint:errcheck

	payload := make([]byte, size)
	start := time.Now()
	for i := 0; i < ops; i++ {
		if err := cli.Push("q", payload); err != nil {
			return 0, err
		}
		if _, err := cli.Pop("q", time.Second); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

func e7PubSub(size, ops int) (time.Duration, error) {
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	defer tr.Close() //nolint:errcheck
	l, err := tr.Listen("bus")
	if err != nil {
		return 0, err
	}
	b := pubsub.NewBroker(l)
	defer b.Close() //nolint:errcheck
	cli, err := pubsub.Dial(transport.NewMem(fabric), "bus")
	if err != nil {
		return 0, err
	}
	defer cli.Close() //nolint:errcheck
	events, err := cli.Subscribe("t")
	if err != nil {
		return 0, err
	}

	payload := make([]byte, size)
	start := time.Now()
	for i := 0; i < ops; i++ {
		if err := cli.Publish("t", payload); err != nil {
			return 0, err
		}
		select {
		case <-events:
		case <-time.After(10 * time.Second):
			return 0, fmt.Errorf("event %d never arrived", i)
		}
	}
	return time.Since(start), nil
}

func e7Tuple(size, ops int) (time.Duration, error) {
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	defer tr.Close() //nolint:errcheck
	l, err := tr.Listen("space")
	if err != nil {
		return 0, err
	}
	srv := tuplespace.NewServer(tuplespace.NewSpace(nil), l)
	defer srv.Close() //nolint:errcheck
	cli, err := tuplespace.Dial(transport.NewMem(fabric), "space")
	if err != nil {
		return 0, err
	}
	defer cli.Close() //nolint:errcheck

	value := string(make([]byte, size))
	start := time.Now()
	for i := 0; i < ops; i++ {
		if err := cli.Out(tuplespace.Tuple{"k", value}); err != nil {
			return 0, err
		}
		if _, err := cli.In(tuplespace.Tuple{"k", "*"}, time.Second); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}
