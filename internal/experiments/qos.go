package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"ndsm/internal/chaos"
	"ndsm/internal/core"
	"ndsm/internal/discovery"
	"ndsm/internal/qos"
	"ndsm/internal/simtime"
	"ndsm/internal/stats"
	"ndsm/internal/svcdesc"
	"ndsm/internal/transport"
)

// E3Options sizes the QoS matching experiment.
type E3Options struct {
	// Printers is the candidate population (default 100).
	Printers int
	// Seed fixes the candidate generator.
	Seed int64
}

func (o E3Options) withDefaults() E3Options {
	if o.Printers <= 0 {
		o.Printers = 100
	}
	if o.Seed == 0 {
		o.Seed = 17
	}
	return o
}

// E3 reproduces §3.4's "nearest best-matched printer": utility-based
// selection against the two naive strategies the paper warns about
// (logical/reliability-only matching, and distance-only matching).
func E3(opts E3Options) (Result, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	user := &svcdesc.Location{X: 50, Y: 50}

	var printers []*svcdesc.Description
	for i := 0; i < opts.Printers; i++ {
		printers = append(printers, &svcdesc.Description{
			Name:        "printer",
			Provider:    fmt.Sprintf("printer-%02d", i),
			Reliability: 0.4 + rng.Float64()*0.5,
			PowerLevel:  1,
			Attributes:  map[string]string{"color": fmt.Sprintf("%t", rng.Intn(2) == 0)},
			Location:    &svcdesc.Location{X: 60 + rng.Float64()*140, Y: 60 + rng.Float64()*140},
		})
	}
	// Two deterministic decoys that expose the naive strategies: the printer
	// right next to the user is flaky, and the most reliable printer is at
	// the far corner.
	printers = append(printers,
		&svcdesc.Description{
			Name: "printer", Provider: "flaky-next-door",
			Reliability: 0.35, PowerLevel: 1,
			Attributes: map[string]string{"color": "true"},
			Location:   &svcdesc.Location{X: 52, Y: 51},
		},
		&svcdesc.Description{
			Name: "printer", Provider: "bulletproof-far-away",
			Reliability: 0.999, PowerLevel: 1,
			Attributes: map[string]string{"color": "true"},
			Location:   &svcdesc.Location{X: 198, Y: 199},
		})
	spec := &qos.Spec{
		Query: svcdesc.Query{
			Name:        "printer",
			Constraints: []svcdesc.Constraint{{Attr: "color", Op: svcdesc.OpEq, Value: "true"}},
		},
		Weights:        qos.Weights{Reliability: 0.4, Proximity: 0.6},
		Near:           user,
		ProximityScale: 200,
	}
	now := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)

	pick := func(strategy string) *svcdesc.Description {
		switch strategy {
		case "utility":
			return qos.Select(spec, printers, now)
		case "nearest-only":
			matching := svcdesc.Filter(printers, &spec.Query, now)
			svcdesc.SortByDistance(matching, *user)
			if len(matching) == 0 {
				return nil
			}
			return matching[0]
		case "reliability-only":
			var best *svcdesc.Description
			for _, d := range svcdesc.Filter(printers, &spec.Query, now) {
				if best == nil || d.Reliability > best.Reliability {
					best = d
				}
			}
			return best
		}
		return nil
	}

	table := stats.NewTable("E3: nearest best-matched printer",
		"strategy", "chosen", "utility", "distance m", "reliability")
	for _, strategy := range []string{"utility", "nearest-only", "reliability-only"} {
		d := pick(strategy)
		if d == nil {
			return Result{}, fmt.Errorf("E3: %s found no printer", strategy)
		}
		table.AddRow(strategy, d.Provider,
			qos.Score(spec, d, now),
			d.Location.Distance(*user),
			d.Reliability)
	}
	return Result{
		ID:     "E3",
		Title:  "QoS matching: utility selection vs naive strategies",
		Tables: []*stats.Table{table},
		Notes: []string{
			"The utility row must have the highest utility column by construction;",
			"the naive rows show what distance-only and reliability-only matching give up.",
		},
	}, nil
}

// E4Options sizes the graceful-degradation experiment.
type E4Options struct {
	// Requests per run (default 200).
	Requests int
	// Suppliers available (default 5).
	Suppliers int
	// Seed fixes the failure schedule.
	Seed int64
}

func (o E4Options) withDefaults() E4Options {
	if o.Requests <= 0 {
		o.Requests = 200
	}
	if o.Suppliers <= 0 {
		o.Suppliers = 5
	}
	if o.Seed == 0 {
		o.Seed = 23
	}
	return o
}

// E4 measures graceful degradation: request success ratio as suppliers are
// killed at increasing rates, with the kernel's re-matching on versus a
// static binding baseline.
func E4(opts E4Options) (Result, error) {
	opts = opts.withDefaults()
	table := stats.NewTable("E4: availability under supplier failures",
		"kill rate", "mode", "success %", "rebinds", "suppliers left")
	for _, killRate := range []float64{0, 0.01, 0.03} {
		for _, adaptive := range []bool{true, false} {
			success, rebinds, left, err := e4Run(opts, killRate, adaptive)
			if err != nil {
				return Result{}, fmt.Errorf("E4 rate=%v adaptive=%v: %w", killRate, adaptive, err)
			}
			mode := "middleware (rebind)"
			if !adaptive {
				mode = "static binding"
			}
			table.AddRow(killRate, mode, 100*success, rebinds, left)
		}
	}
	return Result{
		ID:     "E4",
		Title:  "Graceful degradation: availability across supplier failures",
		Tables: []*stats.Table{table},
		Notes: []string{
			"With re-matching, success stays near 100% until suppliers run out;",
			"a static binding loses every request after its supplier's first crash.",
		},
	}, nil
}

// e4Tick is the virtual time one E4 request represents; the chaos schedule
// places each kill on this grid.
const e4Tick = time.Millisecond

// e4Schedule pre-draws the failure schedule: the same seeded coin flips the
// bespoke kill loop used, expressed declaratively. A step at (i+1)*e4Tick
// fires after the i-th clock advance — i.e. right before request i, exactly
// when the old loop killed. The target "@peer" is resolved at inject time to
// whichever supplier the binding is then using (worst case).
func e4Schedule(opts E4Options, killRate float64) chaos.Schedule {
	rng := rand.New(rand.NewSource(opts.Seed))
	var sched chaos.Schedule
	for i := 0; i < opts.Requests; i++ {
		if killRate > 0 && rng.Float64() < killRate {
			sched = append(sched, chaos.Step{
				At:     time.Duration(i+1) * e4Tick,
				Fault:  chaos.FaultCrashSupplier,
				Target: "@peer",
			})
		}
	}
	return sched
}

func e4Run(opts E4Options, killRate float64, adaptive bool) (successRatio float64, rebinds int64, suppliersLeft int, err error) {
	fabric := transport.NewFabric()
	registry := discovery.NewStore(nil, 0)

	mkNode := func(name string) (*core.Node, error) {
		return core.NewNode(core.Config{
			Name:      name,
			Transport: transport.NewMem(fabric),
			Registry:  registry,
		})
	}

	type sup struct {
		node *core.Node
		name string
	}
	var sups []*sup
	for i := 0; i < opts.Suppliers; i++ {
		name := fmt.Sprintf("supplier-%d", i)
		n, err := mkNode(name)
		if err != nil {
			return 0, 0, 0, err
		}
		defer n.Close() //nolint:errcheck
		desc := &svcdesc.Description{Name: "sensor/bp", Reliability: 0.9, PowerLevel: 1}
		if err := n.Serve(desc, func(p []byte) ([]byte, error) { return p, nil }); err != nil {
			return 0, 0, 0, err
		}
		sups = append(sups, &sup{node: n, name: name})
	}

	consumer, err := mkNode("consumer")
	if err != nil {
		return 0, 0, 0, err
	}
	defer consumer.Close() //nolint:errcheck
	binding, err := consumer.Bind(&qos.Spec{Query: svcdesc.Query{Name: "sensor/bp"}}, core.BindOptions{})
	if err != nil {
		return 0, 0, 0, err
	}
	defer binding.Close() //nolint:errcheck

	alive := make(map[string]*sup, len(sups))
	for _, s := range sups {
		alive[s.name] = s
	}
	kill := func(name string) {
		s, ok := alive[name]
		if !ok {
			return
		}
		delete(alive, name)
		desc := &svcdesc.Description{Name: "sensor/bp", Provider: name}
		_ = registry.Unregister(desc.Key())
		_ = s.node.Close()
	}

	// The kill loop is the chaos engine: the pre-drawn schedule plays out on
	// a virtual clock that advances one tick per request.
	clock := simtime.NewVirtual(time.Unix(0, 0))
	engine := chaos.NewEngine(clock)
	engine.Register(chaos.FaultCrashSupplier, chaos.InjectorFunc(func(target string) (func() error, error) {
		if target == "@peer" {
			target = binding.Peer() // always kill the supplier in use: worst case
		}
		kill(target)
		return nil, nil
	}))
	engine.Load(e4Schedule(opts, killRate))

	ok := 0
	for i := 0; i < opts.Requests; i++ {
		clock.Advance(e4Tick)
		if err := engine.Step(); err != nil {
			return 0, 0, 0, err
		}
		var err error
		if adaptive {
			_, err = binding.Request([]byte("r"))
		} else {
			_, err = requestStatic(binding, []byte("r"))
		}
		if err == nil {
			ok++
		}
	}
	return float64(ok) / float64(opts.Requests), binding.Rebinds.Load(), len(alive), nil
}

// requestStatic suppresses the binding's rebind machinery to model a
// middleware-less client: it fails permanently once its supplier dies.
func requestStatic(b *core.Binding, payload []byte) ([]byte, error) {
	return b.RequestStatic(payload)
}
