package routing

import (
	"fmt"
	"time"

	"ndsm/internal/netsim"
)

// Mesh manages one Router per network node — the shape every experiment and
// the MiLAN configurator use. It also provides deterministic convergence for
// proactive strategies: Tick rounds followed by quiescence detection.
type Mesh struct {
	net     *netsim.Network
	routers map[netsim.NodeID]*Router
	order   []netsim.NodeID
}

// NewMesh builds a router for every node currently in the network. factory
// must return a fresh Strategy per node (strategies hold per-node state).
func NewMesh(net *netsim.Network, factory func() Strategy) (*Mesh, error) {
	m := &Mesh{net: net, routers: make(map[netsim.NodeID]*Router)}
	for _, id := range net.Nodes() {
		r, err := New(net, id, factory())
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("routing: mesh: %w", err)
		}
		m.routers[id] = r
		m.order = append(m.order, id)
	}
	return m, nil
}

// Router returns the router for a node (nil if absent).
func (m *Mesh) Router(id netsim.NodeID) *Router { return m.routers[id] }

// Routers returns all routers in deterministic node order.
func (m *Mesh) Routers() []*Router {
	out := make([]*Router, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.routers[id])
	}
	return out
}

// Close stops every router.
func (m *Mesh) Close() {
	for _, r := range m.routers {
		r.Close()
	}
}

// Tick runs one advertisement round on every router.
func (m *Mesh) Tick() {
	for _, id := range m.order {
		m.routers[id].Tick()
	}
}

// Settle blocks until all routers have drained their inboxes and processed
// everything in flight, or the timeout elapses. It reports whether the mesh
// quiesced.
func (m *Mesh) Settle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	stable := 0
	var last int64 = -1
	for time.Now().Before(deadline) {
		total := int64(0)
		empty := true
		for _, id := range m.order {
			total += m.routers[id].Handled()
			if ch, err := m.net.Recv(id); err == nil && len(ch) > 0 {
				empty = false
			}
		}
		if empty && total == last {
			stable++
			if stable >= 3 {
				return true
			}
		} else {
			stable = 0
		}
		last = total
		time.Sleep(time.Millisecond)
	}
	return false
}

// Converge runs rounds advertisement rounds, settling after each — enough
// for DSDV tables to reach every corner of a connected field when rounds is
// at least the network diameter.
func (m *Mesh) Converge(rounds int) bool {
	ok := true
	for i := 0; i < rounds; i++ {
		m.Tick()
		if !m.Settle(10 * time.Second) {
			ok = false
		}
	}
	return ok
}
