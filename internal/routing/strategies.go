package routing

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"

	"ndsm/internal/netsim"
)

// Flooding is the baseline strategy: every data packet is rebroadcast by
// every node exactly once (TTL-bounded). Reaches everything reachable at the
// cost of O(N) transmissions per packet.
type Flooding struct{}

var _ Strategy = Flooding{}

// Name implements Strategy.
func (Flooding) Name() string { return "flooding" }

// UsesFlooding implements Strategy.
func (Flooding) UsesFlooding() bool { return true }

// NextHop implements Strategy (unused for flooding).
func (Flooding) NextHop(*Router, netsim.NodeID) (netsim.NodeID, bool) { return "", false }

// Advertisement implements Strategy: flooding needs no control traffic.
func (Flooding) Advertisement(*Router) []byte { return nil }

// HandleAdvertisement implements Strategy.
func (Flooding) HandleAdvertisement(*Router, netsim.NodeID, []byte) {}

// CostFunc prices the link from a router to a direct neighbour. Lower is
// better.
type CostFunc func(r *Router, neighbor netsim.NodeID) float64

// HopCost counts every link as 1 — classic shortest-hop DSDV.
func HopCost(*Router, netsim.NodeID) float64 { return 1 }

// EnergyCost prices a link by the transmit energy for a reference packet
// plus a residual-energy penalty on the next hop, so routes bend around
// nearly-drained nodes. This is the metric MiLAN's network-configuration
// layer uses to extend lifetime.
func EnergyCost(refBytes int, penaltyWeight float64) CostFunc {
	return func(r *Router, neighbor netsim.NodeID) float64 {
		net := r.Network()
		myPos, err1 := net.PositionOf(r.ID())
		nbPos, err2 := net.PositionOf(neighbor)
		if err1 != nil || err2 != nil {
			return math.Inf(1)
		}
		d := myPos.Distance(nbPos)
		tx := netsim.DefaultRadio().TxEnergy(refBytes, d) * 1e6 // µJ
		residual, err := net.Energy(neighbor)
		if err != nil {
			return math.Inf(1)
		}
		return tx + penaltyWeight/(residual+1e-3)
	}
}

// dvRoute is one distance-vector table entry.
type dvRoute struct {
	nextHop netsim.NodeID
	cost    float64
	seq     uint32
}

// DistanceVector is a DSDV-style proactive strategy: each node periodically
// broadcasts its route table with per-destination sequence numbers; fresher
// sequence numbers always win, equal sequence numbers take the cheaper path.
// The metric is pluggable (HopCost, EnergyCost).
type DistanceVector struct {
	cost CostFunc

	mu     sync.Mutex
	routes map[netsim.NodeID]dvRoute
	ownSeq uint32
}

var _ Strategy = (*DistanceVector)(nil)

// NewDistanceVector creates a DV strategy with the given link cost metric.
func NewDistanceVector(cost CostFunc) *DistanceVector {
	if cost == nil {
		cost = HopCost
	}
	return &DistanceVector{cost: cost, routes: make(map[netsim.NodeID]dvRoute)}
}

// Name implements Strategy.
func (dv *DistanceVector) Name() string { return "distance-vector" }

// UsesFlooding implements Strategy.
func (dv *DistanceVector) UsesFlooding() bool { return false }

// NextHop implements Strategy. It validates that the chosen hop is still a
// live radio neighbour so stale routes fail fast instead of black-holing.
func (dv *DistanceVector) NextHop(r *Router, dest netsim.NodeID) (netsim.NodeID, bool) {
	dv.mu.Lock()
	route, ok := dv.routes[dest]
	dv.mu.Unlock()
	if !ok || math.IsInf(route.cost, 1) {
		return "", false
	}
	neighbors, err := r.Network().Neighbors(r.ID())
	if err != nil {
		return "", false
	}
	for _, nb := range neighbors {
		if nb == route.nextHop {
			return route.nextHop, true
		}
	}
	// Next hop died or moved away: drop the route; a later advertisement
	// will repair it.
	dv.mu.Lock()
	if cur, ok := dv.routes[dest]; ok && cur.nextHop == route.nextHop {
		delete(dv.routes, dest)
	}
	dv.mu.Unlock()
	return "", false
}

// Routes returns a copy of the table's destinations and costs (for tests and
// the experiment harness).
func (dv *DistanceVector) Routes() map[netsim.NodeID]float64 {
	dv.mu.Lock()
	defer dv.mu.Unlock()
	out := make(map[netsim.NodeID]float64, len(dv.routes))
	for d, r := range dv.routes {
		out[d] = r.cost
	}
	return out
}

// dvEntry is the wire form of one advertised route.
type dvEntry struct {
	dest netsim.NodeID
	cost float64
	seq  uint32
}

func encodeDV(entries []dvEntry) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(entries)))
	for _, e := range entries {
		buf = binary.AppendUvarint(buf, uint64(len(e.dest)))
		buf = append(buf, e.dest...)
		var c [8]byte
		binary.BigEndian.PutUint64(c[:], math.Float64bits(e.cost))
		buf = append(buf, c[:]...)
		var s [4]byte
		binary.BigEndian.PutUint32(s[:], e.seq)
		buf = append(buf, s[:]...)
	}
	return buf
}

func decodeDV(data []byte) ([]dvEntry, bool) {
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, false
	}
	data = data[used:]
	entries := make([]dvEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		l, used := binary.Uvarint(data)
		if used <= 0 || l > uint64(len(data)-used) {
			return nil, false
		}
		dest := netsim.NodeID(data[used : used+int(l)])
		data = data[used+int(l):]
		if len(data) < 12 {
			return nil, false
		}
		cost := math.Float64frombits(binary.BigEndian.Uint64(data[:8]))
		seq := binary.BigEndian.Uint32(data[8:12])
		data = data[12:]
		entries = append(entries, dvEntry{dest: dest, cost: cost, seq: seq})
	}
	return entries, true
}

// Advertisement implements Strategy: a full table dump plus the node's own
// entry with a freshly bumped sequence number (DSDV full-dump behaviour).
func (dv *DistanceVector) Advertisement(r *Router) []byte {
	dv.mu.Lock()
	defer dv.mu.Unlock()
	dv.ownSeq++
	entries := []dvEntry{{dest: r.ID(), cost: 0, seq: dv.ownSeq}}
	dests := make([]netsim.NodeID, 0, len(dv.routes))
	for d := range dv.routes {
		dests = append(dests, d)
	}
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	for _, d := range dests {
		route := dv.routes[d]
		entries = append(entries, dvEntry{dest: d, cost: route.cost, seq: route.seq})
	}
	return encodeDV(entries)
}

// seqSettle is the DSDV settling window: a route learned over a longer path
// lags the short path's sequence numbers by its extra propagation rounds, so
// within this window cost — not freshness — decides. Routes more than
// seqSettle sequence numbers fresher always win (liveness); without that,
// stale information could linger and re-introduce counting-to-infinity.
const seqSettle = 2

// HandleAdvertisement implements Strategy: Bellman-Ford relaxation with
// DSDV sequence-number freshness softened by a settling window.
func (dv *DistanceVector) HandleAdvertisement(r *Router, from netsim.NodeID, payload []byte) {
	entries, ok := decodeDV(payload)
	if !ok {
		return
	}
	linkCost := dv.cost(r, from)
	if math.IsInf(linkCost, 1) {
		return
	}
	dv.mu.Lock()
	defer dv.mu.Unlock()
	for _, e := range entries {
		if e.dest == r.ID() {
			continue
		}
		newCost := e.cost + linkCost
		cur, exists := dv.routes[e.dest]
		switch {
		case !exists:
			// First route.
		case from == cur.nextHop && e.seq >= cur.seq:
			// Refresh of the route in use: track its current cost and seq.
		case e.seq > cur.seq+seqSettle:
			// Much fresher: accept for liveness regardless of cost.
		case e.seq+seqSettle >= cur.seq && newCost < cur.cost:
			// Comparably fresh and cheaper.
		default:
			continue
		}
		dv.routes[e.dest] = dvRoute{nextHop: from, cost: newCost, seq: e.seq}
	}
}

// Geographic is greedy geographic forwarding: each hop hands the packet to
// the neighbour geographically closest to the destination, failing when no
// neighbour is strictly closer than the current node (the classic local
// minimum). It needs no control traffic at all; positions come from the
// location substrate (a GPS stand-in per the simulator substitution).
type Geographic struct{}

var _ Strategy = Geographic{}

// Name implements Strategy.
func (Geographic) Name() string { return "geographic" }

// UsesFlooding implements Strategy.
func (Geographic) UsesFlooding() bool { return false }

// NextHop implements Strategy.
func (Geographic) NextHop(r *Router, dest netsim.NodeID) (netsim.NodeID, bool) {
	net := r.Network()
	destPos, err := net.PositionOf(dest)
	if err != nil {
		return "", false
	}
	myPos, err := net.PositionOf(r.ID())
	if err != nil {
		return "", false
	}
	neighbors, err := net.Neighbors(r.ID())
	if err != nil {
		return "", false
	}
	best := netsim.NodeID("")
	bestDist := myPos.Distance(destPos)
	for _, nb := range neighbors {
		if nb == dest {
			return nb, true // destination in direct range
		}
		p, err := net.PositionOf(nb)
		if err != nil {
			continue
		}
		if d := p.Distance(destPos); d < bestDist {
			best, bestDist = nb, d
		}
	}
	if best == "" {
		return "", false
	}
	return best, true
}

// Advertisement implements Strategy.
func (Geographic) Advertisement(*Router) []byte { return nil }

// HandleAdvertisement implements Strategy.
func (Geographic) HandleAdvertisement(*Router, netsim.NodeID, []byte) {}
