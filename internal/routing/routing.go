// Package routing provides multi-hop datagram delivery over the netsim
// radio substrate — the paper's locating-and-routing feature (§3.5). The
// paper argues routing belongs *inside* the middleware so it can exploit
// low-level network information (energy, position) that per-application
// routing cannot; MiLAN (§4) relies on exactly this to extend network
// lifetime.
//
// A Router instance runs on each node. Stacked under transport.Sim it
// satisfies transport.DatagramService, so everything above the transport is
// oblivious to hop count. Four strategies ship:
//
//   - Flooding: TTL-bounded broadcast with duplicate suppression — the
//     baseline every comparison measures against,
//   - DSDV-style distance vector with hop-count metric,
//   - Energy-aware distance vector: link cost grows as the next hop's
//     residual energy falls, steering traffic around nearly-drained nodes,
//   - Greedy geographic forwarding using node positions (the GPS/location
//     substrate stands in via the simulator's position oracle).
package routing

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ndsm/internal/netsim"
)

// Routed packet header constants.
const (
	routeMagic  = 0xAB
	typeData    = 1
	typeControl = 2
	// DefaultTTL bounds forwarding chains; diameter of our test fields stays
	// well below it.
	DefaultTTL = 32
	// outboxSize is the delivered-packet queue depth per router.
	outboxSize = 256
	// dedupWindow is how many recent sequence numbers per origin the
	// duplicate-suppression cache retains.
	dedupWindow = 1024
)

// Routing errors.
var (
	ErrNoRoute      = errors.New("routing: no route to destination")
	ErrRouterClosed = errors.New("routing: router closed")
)

// packet is the parsed routed-packet header.
type packet struct {
	ptype   byte
	origin  netsim.NodeID
	dest    netsim.NodeID // empty for control broadcasts
	seq     uint32
	ttl     uint8
	payload []byte
}

func (p *packet) encode() []byte {
	buf := make([]byte, 0, 16+len(p.origin)+len(p.dest)+len(p.payload))
	buf = append(buf, routeMagic, p.ptype, p.ttl)
	var seq [4]byte
	binary.BigEndian.PutUint32(seq[:], p.seq)
	buf = append(buf, seq[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(p.origin)))
	buf = append(buf, p.origin...)
	buf = binary.AppendUvarint(buf, uint64(len(p.dest)))
	buf = append(buf, p.dest...)
	buf = append(buf, p.payload...)
	return buf
}

func decodePacket(data []byte) (*packet, error) {
	if len(data) < 7 || data[0] != routeMagic {
		return nil, errors.New("routing: not a routed packet")
	}
	p := &packet{ptype: data[1], ttl: data[2], seq: binary.BigEndian.Uint32(data[3:7])}
	rest := data[7:]
	readStr := func() (string, error) {
		n, used := binary.Uvarint(rest)
		if used <= 0 || n > uint64(len(rest)-used) {
			return "", errors.New("routing: truncated packet")
		}
		s := string(rest[used : used+int(n)])
		rest = rest[used+int(n):]
		return s, nil
	}
	origin, err := readStr()
	if err != nil {
		return nil, err
	}
	dest, err := readStr()
	if err != nil {
		return nil, err
	}
	p.origin = netsim.NodeID(origin)
	p.dest = netsim.NodeID(dest)
	p.payload = rest
	return p, nil
}

// Strategy is a routing algorithm plugged into a Router.
type Strategy interface {
	// Name identifies the strategy for reporting.
	Name() string
	// UsesFlooding reports whether data packets are flooded rather than
	// unicast along next hops.
	UsesFlooding() bool
	// NextHop returns the neighbour to forward a packet destined for dest.
	NextHop(r *Router, dest netsim.NodeID) (netsim.NodeID, bool)
	// Advertisement returns this tick's control payload to broadcast to
	// neighbours, or nil when the strategy has nothing to say.
	Advertisement(r *Router) []byte
	// HandleAdvertisement ingests a neighbour's control payload.
	HandleAdvertisement(r *Router, from netsim.NodeID, payload []byte)
}

// Router is one node's routing agent. Create with New, stop with Close.
type Router struct {
	net      *netsim.Network
	id       netsim.NodeID
	strategy Strategy
	ttl      uint8

	seq atomic.Uint32

	mu        sync.Mutex
	seen      map[netsim.NodeID]map[uint32]bool // dedup: origin -> recent seqs
	seenOrder map[netsim.NodeID][]uint32

	out    chan netsim.Packet
	stop   chan struct{}
	done   chan struct{}
	closed atomic.Bool

	// forwarded counts packets this node relayed for others.
	forwarded atomic.Int64
	// dropped counts packets discarded (TTL, dedup overflow, no route).
	dropped atomic.Int64
	// handled counts every inbound radio packet processed; Mesh.Settle uses
	// it to detect quiescence.
	handled atomic.Int64
}

// New creates and starts a router for node id using the given strategy. The
// router consumes the node's netsim receive queue directly; when other
// protocols share the radio, demultiplex with netmux and use NewWithSource.
func New(net *netsim.Network, id netsim.NodeID, strategy Strategy) (*Router, error) {
	inbox, err := net.Recv(id)
	if err != nil {
		return nil, fmt.Errorf("routing: %w", err)
	}
	return NewWithSource(net, id, strategy, inbox)
}

// NewWithSource creates a router fed from an explicit packet source (e.g. a
// netmux protocol channel) instead of the node's raw receive queue.
func NewWithSource(net *netsim.Network, id netsim.NodeID, strategy Strategy, inbox <-chan netsim.Packet) (*Router, error) {
	if _, err := net.PositionOf(id); err != nil {
		return nil, fmt.Errorf("routing: %w", err)
	}
	r := &Router{
		net:       net,
		id:        id,
		strategy:  strategy,
		ttl:       DefaultTTL,
		seen:      make(map[netsim.NodeID]map[uint32]bool),
		seenOrder: make(map[netsim.NodeID][]uint32),
		out:       make(chan netsim.Packet, outboxSize),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	go r.loop(inbox)
	return r, nil
}

// ID returns the router's node.
func (r *Router) ID() netsim.NodeID { return r.id }

// Network returns the underlying substrate (used by strategies).
func (r *Router) Network() *netsim.Network { return r.net }

// Strategy returns the plugged strategy.
func (r *Router) Strategy() Strategy { return r.strategy }

// Forwarded reports how many packets this router relayed for other nodes.
func (r *Router) Forwarded() int64 { return r.forwarded.Load() }

// Dropped reports packets this router discarded.
func (r *Router) Dropped() int64 { return r.dropped.Load() }

// Close stops the router's demux loop.
func (r *Router) Close() {
	if r.closed.CompareAndSwap(false, true) {
		close(r.stop)
		<-r.done
	}
}

// Send implements transport.DatagramService: deliver data to dest over
// multiple hops. from must equal the router's own node.
func (r *Router) Send(from, to netsim.NodeID, data []byte) error {
	if from != r.id {
		return fmt.Errorf("routing: router %s cannot send as %s", r.id, from)
	}
	if r.closed.Load() {
		return ErrRouterClosed
	}
	p := &packet{
		ptype:   typeData,
		origin:  r.id,
		dest:    to,
		seq:     r.seq.Add(1),
		ttl:     r.ttl,
		payload: data,
	}
	if to == r.id { // loopback
		r.deliver(netsim.Packet{From: from, To: to, Data: append([]byte(nil), data...)})
		return nil
	}
	return r.route(p)
}

// Recv implements transport.DatagramService: the stream of packets whose
// final destination is this node, with routing headers stripped and From set
// to the packet's origin.
func (r *Router) Recv(id netsim.NodeID) (<-chan netsim.Packet, error) {
	if id != r.id {
		return nil, fmt.Errorf("routing: router %s cannot receive for %s", r.id, id)
	}
	return r.out, nil
}

// Tick broadcasts the strategy's current advertisement to neighbours (route
// maintenance). Call it periodically, or use Mesh.Converge in experiments.
func (r *Router) Tick() {
	payload := r.strategy.Advertisement(r)
	if payload == nil {
		return
	}
	p := &packet{
		ptype:   typeControl,
		origin:  r.id,
		seq:     r.seq.Add(1),
		ttl:     1, // advertisements travel a single hop
		payload: payload,
	}
	_, _ = r.net.Broadcast(r.id, p.encode())
}

// route forwards a data packet: flooding or next-hop unicast depending on
// strategy.
func (r *Router) route(p *packet) error {
	if r.strategy.UsesFlooding() {
		r.markSeen(p.origin, p.seq)
		if _, err := r.net.Broadcast(r.id, p.encode()); err != nil {
			return err
		}
		return nil
	}
	hop, ok := r.strategy.NextHop(r, p.dest)
	if !ok {
		r.dropped.Add(1)
		return fmt.Errorf("%w: %s -> %s (%s)", ErrNoRoute, r.id, p.dest, r.strategy.Name())
	}
	if err := r.net.Send(r.id, hop, p.encode()); err != nil {
		return fmt.Errorf("routing: hop %s -> %s: %w", r.id, hop, err)
	}
	return nil
}

// loop demultiplexes inbound radio packets.
func (r *Router) loop(inbox <-chan netsim.Packet) {
	defer close(r.done)
	for {
		select {
		case <-r.stop:
			return
		case pkt, ok := <-inbox:
			if !ok {
				return
			}
			r.handle(pkt)
		}
	}
}

// Handled reports how many inbound radio packets this router has processed.
func (r *Router) Handled() int64 { return r.handled.Load() }

func (r *Router) handle(raw netsim.Packet) {
	defer r.handled.Add(1)
	p, err := decodePacket(raw.Data)
	if err != nil {
		r.dropped.Add(1)
		return
	}
	switch p.ptype {
	case typeControl:
		r.strategy.HandleAdvertisement(r, raw.From, p.payload)
	case typeData:
		r.handleData(p)
	default:
		r.dropped.Add(1)
	}
}

func (r *Router) handleData(p *packet) {
	if r.strategy.UsesFlooding() {
		if r.hasSeen(p.origin, p.seq) {
			return // duplicate
		}
		r.markSeen(p.origin, p.seq)
		if p.dest == r.id {
			r.deliver(netsim.Packet{From: p.origin, To: r.id, Data: p.payload})
			return
		}
		if p.ttl <= 1 {
			r.dropped.Add(1)
			return
		}
		fwd := *p
		fwd.ttl--
		r.forwarded.Add(1)
		_, _ = r.net.Broadcast(r.id, fwd.encode())
		return
	}

	if p.dest == r.id {
		r.deliver(netsim.Packet{From: p.origin, To: r.id, Data: p.payload})
		return
	}
	if p.ttl <= 1 {
		r.dropped.Add(1)
		return
	}
	hop, ok := r.strategy.NextHop(r, p.dest)
	if !ok {
		r.dropped.Add(1)
		return
	}
	fwd := *p
	fwd.ttl--
	r.forwarded.Add(1)
	if err := r.net.Send(r.id, hop, fwd.encode()); err != nil {
		r.dropped.Add(1)
	}
}

func (r *Router) deliver(pkt netsim.Packet) {
	select {
	case r.out <- pkt:
	default:
		r.dropped.Add(1)
	}
}

func (r *Router) hasSeen(origin netsim.NodeID, seq uint32) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen[origin][seq]
}

func (r *Router) markSeen(origin netsim.NodeID, seq uint32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.seen[origin]
	if m == nil {
		m = make(map[uint32]bool)
		r.seen[origin] = m
	}
	if m[seq] {
		return
	}
	m[seq] = true
	order := append(r.seenOrder[origin], seq)
	if len(order) > dedupWindow {
		delete(m, order[0])
		order = order[1:]
	}
	r.seenOrder[origin] = order
}
