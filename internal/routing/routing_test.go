package routing

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ndsm/internal/netsim"
)

// lineNet builds a 5-node line a-b-c-d-e with 10m spacing and 12m range, so
// each node only reaches its immediate neighbours.
func lineNet(t *testing.T) (*netsim.Network, []netsim.NodeID) {
	t.Helper()
	net := netsim.New(netsim.Config{Range: 12, Unlimited: true})
	t.Cleanup(net.Close)
	ids := []netsim.NodeID{"a", "b", "c", "d", "e"}
	for i, id := range ids {
		if err := net.AddNode(id, netsim.Position{X: float64(i) * 10}); err != nil {
			t.Fatal(err)
		}
	}
	return net, ids
}

func newMesh(t *testing.T, net *netsim.Network, factory func() Strategy) *Mesh {
	t.Helper()
	m, err := NewMesh(net, factory)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func recvOne(t *testing.T, r *Router) netsim.Packet {
	t.Helper()
	ch, err := r.Recv(r.ID())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-ch:
		return pkt
	case <-time.After(10 * time.Second):
		t.Fatal("no packet delivered")
		return netsim.Packet{}
	}
}

func expectNone(t *testing.T, r *Router) {
	t.Helper()
	ch, err := r.Recv(r.ID())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-ch:
		t.Fatalf("unexpected packet: %+v", pkt)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestPacketEncodeDecode(t *testing.T) {
	p := &packet{ptype: typeData, origin: "alpha", dest: "omega", seq: 77, ttl: 9, payload: []byte("body")}
	got, err := decodePacket(p.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ptype != p.ptype || got.origin != p.origin || got.dest != p.dest ||
		got.seq != p.seq || got.ttl != p.ttl || string(got.payload) != "body" {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestPacketDecodeGarbage(t *testing.T) {
	if _, err := decodePacket([]byte{1, 2, 3}); err == nil {
		t.Fatal("short garbage accepted")
	}
	if _, err := decodePacket([]byte("definitely not a routed packet")); err == nil {
		t.Fatal("wrong magic accepted")
	}
}

// Property: packet encode/decode round-trips.
func TestPacketRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	f := func() bool {
		randID := func() netsim.NodeID {
			b := make([]rune, r.Intn(10))
			for i := range b {
				b[i] = rune('a' + r.Intn(26))
			}
			return netsim.NodeID(b)
		}
		p := &packet{
			ptype:  byte(1 + r.Intn(2)),
			origin: randID(),
			dest:   randID(),
			seq:    r.Uint32(),
			ttl:    uint8(r.Intn(256)),
		}
		if n := r.Intn(32); n > 0 {
			p.payload = make([]byte, n)
			r.Read(p.payload) //nolint:errcheck
		}
		got, err := decodePacket(p.encode())
		if err != nil {
			return false
		}
		return got.origin == p.origin && got.dest == p.dest && got.seq == p.seq &&
			got.ttl == p.ttl && string(got.payload) == string(p.payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFloodingEndToEnd(t *testing.T) {
	net, ids := lineNet(t)
	m := newMesh(t, net, func() Strategy { return Flooding{} })
	src, dst := m.Router(ids[0]), m.Router(ids[4])
	if err := src.Send("a", "e", []byte("flood-hello")); err != nil {
		t.Fatal(err)
	}
	pkt := recvOne(t, dst)
	if pkt.From != "a" || string(pkt.Data) != "flood-hello" {
		t.Fatalf("bad delivery: %+v", pkt)
	}
}

func TestFloodingNoDuplicateDelivery(t *testing.T) {
	// Dense mesh: everyone hears everyone; dedup must keep delivery unique.
	net := netsim.New(netsim.Config{Range: 100, Unlimited: true})
	t.Cleanup(net.Close)
	for _, id := range []netsim.NodeID{"a", "b", "c", "d"} {
		if err := net.AddNode(id, netsim.Position{}); err != nil {
			t.Fatal(err)
		}
	}
	m := newMesh(t, net, func() Strategy { return Flooding{} })
	if err := m.Router("a").Send("a", "d", []byte("x")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, m.Router("d"))
	expectNone(t, m.Router("d"))
}

func TestFloodingTTLBounds(t *testing.T) {
	net, ids := lineNet(t)
	m := newMesh(t, net, func() Strategy { return Flooding{} })
	src := m.Router(ids[0])
	src.ttl = 2 // a broadcasts (ttl 2), b forwards (ttl 1), c drops
	if err := src.Send("a", "e", []byte("short-leash")); err != nil {
		t.Fatal(err)
	}
	expectNone(t, m.Router(ids[4]))
}

func TestDVConvergesAndRoutes(t *testing.T) {
	net, ids := lineNet(t)
	m := newMesh(t, net, func() Strategy { return NewDistanceVector(HopCost) })
	if !m.Converge(6) {
		t.Fatal("mesh did not quiesce")
	}
	dv := m.Router("a").Strategy().(*DistanceVector)
	routes := dv.Routes()
	if cost, ok := routes["e"]; !ok || cost != 4 {
		t.Fatalf("a's route to e = %v (ok=%v), want cost 4", cost, ok)
	}
	if err := m.Router("a").Send("a", "e", []byte("dv-hello")); err != nil {
		t.Fatal(err)
	}
	pkt := recvOne(t, m.Router("e"))
	if pkt.From != "a" || string(pkt.Data) != "dv-hello" {
		t.Fatalf("bad delivery: %+v", pkt)
	}
	// Exactly the 3 intermediate nodes forwarded once each.
	var forwards int64
	for _, id := range ids {
		forwards += m.Router(id).Forwarded()
	}
	if forwards != 3 {
		t.Fatalf("forwards = %d, want 3", forwards)
	}
}

func TestDVNoRouteBeforeConvergence(t *testing.T) {
	net, _ := lineNet(t)
	m := newMesh(t, net, func() Strategy { return NewDistanceVector(HopCost) })
	err := m.Router("a").Send("a", "e", []byte("x"))
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestDVRepairAfterNodeDeath(t *testing.T) {
	// Grid so an alternate path exists when a relay dies.
	net := netsim.New(netsim.Config{Range: 12, Unlimited: true})
	t.Cleanup(net.Close)
	// Square: a(0,0) b(10,0) c(0,10) d(10,10); a-d via b or c.
	coords := map[netsim.NodeID]netsim.Position{
		"a": {X: 0, Y: 0}, "b": {X: 10, Y: 0}, "c": {X: 0, Y: 10}, "d": {X: 10, Y: 10},
	}
	for id, pos := range coords {
		if err := net.AddNode(id, pos); err != nil {
			t.Fatal(err)
		}
	}
	m := newMesh(t, net, func() Strategy { return NewDistanceVector(HopCost) })
	m.Converge(5)
	if err := m.Router("a").Send("a", "d", []byte("1")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, m.Router("d"))

	// Kill whichever relay a is using; the stale-route check plus fresh
	// advertisements must repair via the other corner.
	dv := m.Router("a").Strategy().(*DistanceVector)
	dv.mu.Lock()
	relay := dv.routes["d"].nextHop
	dv.mu.Unlock()
	if err := net.Kill(relay); err != nil {
		t.Fatal(err)
	}
	m.Converge(5)
	if err := m.Router("a").Send("a", "d", []byte("2")); err != nil {
		t.Fatalf("send after repair: %v", err)
	}
	pkt := recvOne(t, m.Router("d"))
	if string(pkt.Data) != "2" {
		t.Fatalf("bad packet: %+v", pkt)
	}
}

func TestEnergyAwareAvoidsDrainedRelay(t *testing.T) {
	// Two parallel relays between src and dst; the energy-aware metric must
	// route through the healthy one. Each mesh gets its own network — two
	// meshes on one substrate would steal each other's packets.
	mkNet := func() *netsim.Network {
		net := netsim.New(netsim.Config{Range: 12, Unlimited: true})
		t.Cleanup(net.Close)
		add := func(id netsim.NodeID, pos netsim.Position, energy float64) {
			if err := net.AddNodeEnergy(id, pos, energy); err != nil {
				t.Fatal(err)
			}
		}
		add("src", netsim.Position{X: 0, Y: 5}, 2)
		add("weak", netsim.Position{X: 10, Y: 0}, 0.001) // nearly drained
		add("strong", netsim.Position{X: 10, Y: 10}, 2)
		add("dst", netsim.Position{X: 20, Y: 5}, 2)
		return net
	}

	m := newMesh(t, mkNet(), func() Strategy {
		return NewDistanceVector(EnergyCost(128, 0.05))
	})
	m.Converge(5)
	dv := m.Router("src").Strategy().(*DistanceVector)
	dv.mu.Lock()
	hop := dv.routes["dst"].nextHop
	dv.mu.Unlock()
	if hop != "strong" {
		t.Fatalf("energy-aware route via %s, want strong", hop)
	}
	// Hop-count metric is indifferent; both relays cost 2 hops — sanity
	// check that energy metric actually changed the decision, not topology.
	m2 := newMesh(t, mkNet(), func() Strategy { return NewDistanceVector(HopCost) })
	m2.Converge(5)
	if err := m2.Router("src").Send("src", "dst", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestGeographicForwarding(t *testing.T) {
	net, ids := lineNet(t)
	m := newMesh(t, net, func() Strategy { return Geographic{} })
	// No convergence needed at all.
	if err := m.Router("a").Send("a", "e", []byte("geo")); err != nil {
		t.Fatal(err)
	}
	pkt := recvOne(t, m.Router(ids[4]))
	if string(pkt.Data) != "geo" {
		t.Fatalf("bad packet: %+v", pkt)
	}
}

func TestGeographicLocalMinimum(t *testing.T) {
	// dst is across a void: a's only neighbour is behind it, so greedy
	// forwarding must fail rather than loop.
	net := netsim.New(netsim.Config{Range: 12, Unlimited: true})
	t.Cleanup(net.Close)
	for id, pos := range map[netsim.NodeID]netsim.Position{
		"a":      {X: 0, Y: 0},
		"behind": {X: -10, Y: 0},
		"dst":    {X: 100, Y: 0},
	} {
		if err := net.AddNode(id, pos); err != nil {
			t.Fatal(err)
		}
	}
	m := newMesh(t, net, func() Strategy { return Geographic{} })
	if err := m.Router("a").Send("a", "dst", []byte("x")); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestLoopbackDelivery(t *testing.T) {
	net, _ := lineNet(t)
	m := newMesh(t, net, func() Strategy { return Flooding{} })
	if err := m.Router("a").Send("a", "a", []byte("self")); err != nil {
		t.Fatal(err)
	}
	pkt := recvOne(t, m.Router("a"))
	if pkt.From != "a" || string(pkt.Data) != "self" {
		t.Fatalf("loopback: %+v", pkt)
	}
}

func TestSendAsWrongNode(t *testing.T) {
	net, _ := lineNet(t)
	m := newMesh(t, net, func() Strategy { return Flooding{} })
	if err := m.Router("a").Send("b", "c", nil); err == nil {
		t.Fatal("send as foreign node accepted")
	}
	if _, err := m.Router("a").Recv("b"); err == nil {
		t.Fatal("recv for foreign node accepted")
	}
}

func TestRouterClose(t *testing.T) {
	net, _ := lineNet(t)
	r, err := New(net, "a", Flooding{})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	if err := r.Send("a", "b", nil); !errors.Is(err, ErrRouterClosed) {
		t.Fatalf("send after close: %v", err)
	}
}

func TestNewUnknownNode(t *testing.T) {
	net := netsim.New(netsim.Config{})
	t.Cleanup(net.Close)
	if _, err := New(net, "ghost", Flooding{}); err == nil {
		t.Fatal("router for unknown node created")
	}
}

func TestDedupWindowEviction(t *testing.T) {
	net, _ := lineNet(t)
	r, err := New(net, "a", Flooding{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	for seq := uint32(1); seq <= dedupWindow+10; seq++ {
		r.markSeen("x", seq)
	}
	if r.hasSeen("x", 1) {
		t.Fatal("oldest entry not evicted")
	}
	if !r.hasSeen("x", dedupWindow+10) {
		t.Fatal("newest entry missing")
	}
	r.markSeen("x", dedupWindow+10) // re-mark is a no-op
	if len(r.seen["x"]) > dedupWindow {
		t.Fatalf("window exceeded: %d", len(r.seen["x"]))
	}
}

func TestDVEncodingRoundTrip(t *testing.T) {
	in := []dvEntry{
		{dest: "node-1", cost: 3.25, seq: 9},
		{dest: "", cost: math.Inf(1), seq: 0},
		{dest: "x", cost: 0, seq: 4294967295},
	}
	out, ok := decodeDV(encodeDV(in))
	if !ok || len(out) != len(in) {
		t.Fatalf("decode failed: %v %d", ok, len(out))
	}
	for i := range in {
		if out[i].dest != in[i].dest || out[i].seq != in[i].seq {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
		if out[i].cost != in[i].cost && !(math.IsInf(out[i].cost, 1) && math.IsInf(in[i].cost, 1)) {
			t.Fatalf("entry %d cost mismatch", i)
		}
	}
	if _, ok := decodeDV([]byte{0xFF}); ok {
		t.Fatal("garbage decoded")
	}
}

func TestMeshRouterAccessors(t *testing.T) {
	net, ids := lineNet(t)
	m := newMesh(t, net, func() Strategy { return Flooding{} })
	if m.Router("a") == nil || m.Router("ghost") != nil {
		t.Fatal("Router accessor wrong")
	}
	rs := m.Routers()
	if len(rs) != len(ids) {
		t.Fatalf("Routers() = %d, want %d", len(rs), len(ids))
	}
	if rs[0].ID() != "a" {
		t.Fatalf("order not deterministic: %s", rs[0].ID())
	}
}

func TestFloodingCostExceedsDVCost(t *testing.T) {
	// The shape behind experiment E5: on a 2-D field, flooding transmits far
	// more than DV unicast for the same workload (every node rebroadcasts vs
	// one transmission per path hop).
	mkNet := func() (*netsim.Network, func()) {
		net := netsim.New(netsim.Config{Range: 12, Unlimited: true})
		if _, err := netsim.GridField(net, "g", 16, 10); err != nil {
			t.Fatal(err)
		}
		return net, net.Close
	}

	netF, closeF := mkNet()
	defer closeF()
	mf, err := NewMesh(netF, func() Strategy { return Flooding{} })
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	if err := mf.Router("g0").Send("g0", "g15", []byte("x")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, mf.Router("g15"))
	mf.Settle(5 * time.Second)
	floodSent := netF.Counters()["sent"]

	netD, closeD := mkNet()
	defer closeD()
	md, err := NewMesh(netD, func() Strategy { return NewDistanceVector(HopCost) })
	if err != nil {
		t.Fatal(err)
	}
	defer md.Close()
	md.Converge(8)
	before := netD.Counters()["sent"]
	if err := md.Router("g0").Send("g0", "g15", []byte("x")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, md.Router("g15"))
	md.Settle(5 * time.Second)
	dvSent := netD.Counters()["sent"] - before

	if dvSent != 6 { // corner-to-corner shortest path on a 4x4 grid
		t.Fatalf("dv data transmissions = %d, want 6", dvSent)
	}
	if floodSent < 2*dvSent {
		t.Fatalf("flooding (%d) should cost well over dv (%d)", floodSent, dvSent)
	}
}
