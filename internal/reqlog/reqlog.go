// Package reqlog is the middleware's per-request analytics plane: one
// structured *wide event* per request — topic, lane, peer, queue wait,
// retries, shed reason, deadline slack, trace/span exemplar IDs — recorded
// at the endpoint layer so every rpc/mq/discovery/core call is covered
// without new call sites.
//
// Two consumers with opposite needs share the plane, so the recorder keeps
// two representations:
//
//   - Aggregates: every request feeds a per-topic t-digest (latency
//     quantiles) and a space-saving top-k (heavy-hitter topics), both
//     cardinality-bounded and mergeable — the telemetry publisher ships them
//     inside ordinary reports and the aggregator folds them cluster-wide.
//     This path is O(1) and allocation-free per request in steady state.
//
//   - Exemplars: a bounded ring of raw records with *tail-based retention* —
//     slow, shed, errored, and deadline-tight requests are always kept
//     (their own sub-ring, which a flood of healthy traffic cannot evict),
//     healthy requests are sampled down to one in SampleEvery. The tail ring
//     is what GET /requests serves and what flight-recorder bundles and
//     failing chaos seeds capture.
//
// The recorder is deliberately independent of the endpoint package (the
// endpoint imports it, not the reverse), so anything with a request-shaped
// event — schedulers, the WAL, future planes — can record into the same
// ring.
package reqlog

import (
	"sort"
	"sync"
	"time"

	"ndsm/internal/obs"
	"ndsm/internal/simtime"
	"ndsm/internal/sketch"
)

// Record kinds: which side of the wire observed the request.
const (
	KindClient = "client"
	KindServer = "server"
)

// Outcomes classify how a request concluded.
const (
	OutcomeOK          = "ok"
	OutcomeError       = "error"
	OutcomeShed        = "shed"
	OutcomeTimeout     = "timeout"
	OutcomeUnavailable = "unavailable"
)

// OverflowTopic absorbs per-topic digests beyond MaxTopics, keeping the
// aggregate plane cardinality-bounded whatever the topic space does.
const OverflowTopic = "~other"

// Record is one wide event. Durations are nanoseconds on the wire (Go's
// native Duration encoding); exemplar IDs are the in-band trace context, so
// a tail record links straight to its span tree.
type Record struct {
	Time       time.Time     `json:"time"`
	Kind       string        `json:"kind"`
	Topic      string        `json:"topic"`
	Peer       string        `json:"peer,omitempty"`
	Lane       string        `json:"lane,omitempty"`
	Outcome    string        `json:"outcome"`
	ShedReason string        `json:"shedReason,omitempty"`
	Latency    time.Duration `json:"latencyNs"`
	QueueWait  time.Duration `json:"queueWaitNs,omitempty"`
	Retries    int           `json:"retries,omitempty"`
	// DeadlineSlack is the time remaining to the request's wire deadline at
	// completion (negative: it finished past its deadline). Only meaningful
	// with HasDeadline.
	DeadlineSlack time.Duration `json:"deadlineSlackNs,omitempty"`
	HasDeadline   bool          `json:"hasDeadline,omitempty"`
	TraceID       uint64        `json:"traceId,omitempty"`
	SpanID        uint64        `json:"spanId,omitempty"`
}

// tailWorthy classifies a record for retention: anything anomalous — a
// non-ok outcome, latency at or beyond the slow threshold, a deadline
// finished tight (under a quarter of its budget left) or blown — is always
// kept. Healthy traffic is sampled instead.
func (r *Record) tailWorthy(slow time.Duration) bool {
	if r.Outcome != OutcomeOK {
		return true
	}
	if slow > 0 && r.Latency >= slow {
		return true
	}
	if r.HasDeadline {
		if r.DeadlineSlack < 0 {
			return true
		}
		// Tight: under 25% of the original budget (latency + slack) left.
		if 4*r.DeadlineSlack < r.Latency+r.DeadlineSlack {
			return true
		}
	}
	return false
}

// Options assembles a Recorder.
type Options struct {
	// Clock is unused by the hot path today (callers stamp Record.Time) but
	// anchors Snapshot ordering in tests; default real time.
	Clock simtime.Clock
	// Capacity bounds the exemplar rings: 3/4 tail, 1/4 healthy (default
	// 1024, minimum 8).
	Capacity int
	// SampleEvery keeps one in N healthy records (default 64; 1 keeps all).
	SampleEvery int
	// SlowThreshold marks a healthy request tail-worthy by latency alone
	// (default 100ms; <0 disables the latency criterion).
	SlowThreshold time.Duration
	// Compression is the per-topic t-digest δ (default sketch default).
	Compression float64
	// TopKCapacity bounds the heavy-hitter summary (default sketch default).
	TopKCapacity int
	// MaxTopics bounds per-topic digest cardinality; overflow folds into
	// OverflowTopic (default 64).
	MaxTopics int
	// Registry receives the recorder's counters (nil: the process default):
	// "reqlog.recorded", "reqlog.tail", "reqlog.sampled".
	Registry *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Clock == nil {
		o.Clock = simtime.Real{}
	}
	if o.Capacity <= 0 {
		o.Capacity = 1024
	}
	if o.Capacity < 8 {
		o.Capacity = 8
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 64
	}
	if o.SlowThreshold == 0 {
		o.SlowThreshold = 100 * time.Millisecond
	}
	if o.SlowThreshold < 0 {
		o.SlowThreshold = 0
	}
	if o.MaxTopics <= 0 {
		o.MaxTopics = 64
	}
	return o
}

// ring is a fixed-capacity overwrite-oldest record buffer.
type ring struct {
	buf   []Record
	start int
	n     int
}

func (r *ring) push(rec Record) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = rec
		r.n++
		return
	}
	r.buf[r.start] = rec
	r.start = (r.start + 1) % len(r.buf)
}

// appendNewestFirst appends the ring's records newest-first to dst.
func (r *ring) appendNewestFirst(dst []Record) []Record {
	for i := r.n - 1; i >= 0; i-- {
		dst = append(dst, r.buf[(r.start+i)%len(r.buf)])
	}
	return dst
}

// topicStat is one topic's aggregate state.
type topicStat struct {
	dig *sketch.TDigest
}

// Recorder is the per-node wide-event sink. Safe for concurrent use; the
// hot path is one short critical section and, in steady state, zero
// allocations even for records that are sampled out (the AllocsPerRun guard
// in ndsm-bench pins that).
type Recorder struct {
	opts Options

	recorded *obs.Counter
	tailKept *obs.Counter
	sampled  *obs.Counter

	mu       sync.Mutex
	tail     ring
	healthy  ring
	seen     uint64 // healthy records seen, for 1-in-N sampling
	topics   map[string]*topicStat
	overflow *topicStat
	topk     *sketch.TopK
}

// New builds a recorder.
func New(opts Options) *Recorder {
	opts = opts.withDefaults()
	reg := obs.Or(opts.Registry)
	tailCap := opts.Capacity * 3 / 4
	healthyCap := opts.Capacity - tailCap
	return &Recorder{
		opts:     opts,
		recorded: reg.Counter("reqlog.recorded"),
		tailKept: reg.Counter("reqlog.tail"),
		sampled:  reg.Counter("reqlog.sampled"),
		tail:     ring{buf: make([]Record, tailCap)},
		healthy:  ring{buf: make([]Record, healthyCap)},
		topics:   make(map[string]*topicStat, opts.MaxTopics),
		topk:     sketch.NewTopK(opts.TopKCapacity),
	}
}

// Record folds one wide event in: aggregates always, the exemplar ring by
// tail classification (always) or healthy sampling (1-in-SampleEvery).
func (r *Recorder) Record(rec Record) {
	r.recorded.Inc(1)
	r.mu.Lock()
	r.topk.Offer(rec.Topic, 1)
	st := r.topics[rec.Topic]
	if st == nil {
		st = r.newTopicLocked(rec.Topic)
	}
	st.dig.Add(float64(rec.Latency) / float64(time.Millisecond))
	if rec.tailWorthy(r.opts.SlowThreshold) {
		r.tail.push(rec)
		r.mu.Unlock()
		r.tailKept.Inc(1)
		return
	}
	r.seen++
	keep := r.seen%uint64(r.opts.SampleEvery) == 0
	if keep {
		r.healthy.push(rec)
	}
	r.mu.Unlock()
	if keep {
		r.sampled.Inc(1)
	}
}

// newTopicLocked creates (or overflows) a topic's aggregate slot.
func (r *Recorder) newTopicLocked(topic string) *topicStat {
	if len(r.topics) >= r.opts.MaxTopics {
		if r.overflow == nil {
			r.overflow = &topicStat{dig: sketch.NewTDigest(r.opts.Compression)}
			r.topics[OverflowTopic] = r.overflow
		}
		return r.overflow
	}
	st := &topicStat{dig: sketch.NewTDigest(r.opts.Compression)}
	r.topics[topic] = st
	return st
}

// Filter selects records out of Snapshot; zero fields match everything.
type Filter struct {
	Topic   string
	Lane    string
	Outcome string
	Kind    string
	// Limit caps returned records (<= 0: no cap).
	Limit int
}

func (f *Filter) match(rec *Record) bool {
	if f.Topic != "" && rec.Topic != f.Topic {
		return false
	}
	if f.Lane != "" && rec.Lane != f.Lane {
		return false
	}
	if f.Outcome != "" && rec.Outcome != f.Outcome {
		return false
	}
	if f.Kind != "" && rec.Kind != f.Kind {
		return false
	}
	return true
}

// Snapshot copies matching retained records, newest first (tail and sampled
// healthy records interleaved by time).
func (r *Recorder) Snapshot(f Filter) []Record {
	r.mu.Lock()
	all := make([]Record, 0, r.tail.n+r.healthy.n)
	all = r.tail.appendNewestFirst(all)
	all = r.healthy.appendNewestFirst(all)
	r.mu.Unlock()
	sort.SliceStable(all, func(i, j int) bool { return all[i].Time.After(all[j].Time) })
	out := all[:0]
	for i := range all {
		if f.match(&all[i]) {
			out = append(out, all[i])
			if f.Limit > 0 && len(out) == f.Limit {
				break
			}
		}
	}
	return out
}

// Tail copies just the tail ring — the anomalous exemplars — newest first.
// This is what flight-recorder bundles and chaos failure artifacts embed: the
// requests that went wrong, guaranteed unevicted by healthy traffic.
func (r *Recorder) Tail() []Record {
	r.mu.Lock()
	out := r.tail.appendNewestFirst(make([]Record, 0, r.tail.n))
	r.mu.Unlock()
	return out
}

// Topics lists topics with aggregate state, sorted.
func (r *Recorder) Topics() []string {
	r.mu.Lock()
	out := make([]string, 0, len(r.topics))
	for t := range r.topics {
		out = append(out, t)
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

// TopicQuantile reads one topic's local latency quantile in milliseconds.
func (r *Recorder) TopicQuantile(topic string, q float64) (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.topics[topic]
	if st == nil || st.dig.Count() == 0 {
		return 0, false
	}
	return st.dig.Quantile(q), true
}

// TopicDigests serializes every per-topic t-digest — the payload the
// telemetry publisher ships. Digests are cumulative since recorder start;
// aggregators keep the newest per node and merge across nodes.
func (r *Recorder) TopicDigests() map[string][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.topics) == 0 {
		return nil
	}
	out := make(map[string][]byte, len(r.topics))
	for t, st := range r.topics {
		out[t] = st.dig.AppendBinary(nil)
	}
	return out
}

// TopKBinary serializes the heavy-hitter summary (nil before any traffic).
func (r *Recorder) TopKBinary() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.topk.Total() == 0 {
		return nil
	}
	return r.topk.AppendBinary(nil)
}

// TopK returns the n heaviest local topics.
func (r *Recorder) TopK(n int) []sketch.TopKEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.topk.Top(n)
}

// Len reports retained exemplar counts (tail, sampled healthy).
func (r *Recorder) Len() (tail, healthy int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tail.n, r.healthy.n
}
