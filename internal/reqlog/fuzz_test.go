package reqlog

import (
	"testing"
	"time"
)

// FuzzWideEventDecode hammers the record decoder with arbitrary bytes. The
// decoder is the trust boundary for tail dumps and flight-recorder bundles
// read back by tooling: it must never panic, and any input it accepts must
// satisfy the producer invariants and re-encode losslessly.
func FuzzWideEventDecode(f *testing.F) {
	good := Record{
		Time: time.Unix(1_700_000_000, 0).UTC(), Kind: KindServer,
		Topic: "orders/create", Peer: "node-1", Lane: "control",
		Outcome: OutcomeShed, ShedReason: "server at capacity",
		Latency: time.Millisecond, QueueWait: 250 * time.Microsecond,
		TraceID: 1, SpanID: 2,
	}
	if data, err := EncodeRecord(good); err == nil {
		f.Add(data)
	}
	ok := Record{Time: time.Unix(1_700_000_000, 0).UTC(), Kind: KindClient,
		Topic: "t", Outcome: OutcomeOK, Latency: time.Microsecond}
	if data, err := EncodeRecord(ok); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"time":"2024-01-01T00:00:00Z","kind":"client","topic":"t","outcome":"ok"}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		// Accepted records satisfy the producer invariants...
		if err := rec.validate(); err != nil {
			t.Fatalf("accepted record fails validate: %v", err)
		}
		// ...and survive a re-encode/re-decode cycle intact.
		re, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("re-encode of accepted record failed: %v", err)
		}
		back, err := DecodeRecord(re)
		if err != nil {
			t.Fatalf("re-decode of accepted record failed: %v", err)
		}
		if !back.Time.Equal(rec.Time) {
			t.Fatalf("time drifted across round trip: %v vs %v", back.Time, rec.Time)
		}
		back.Time, rec.Time = time.Time{}, time.Time{}
		if back != rec {
			t.Fatalf("record drifted across round trip:\n%+v\n%+v", back, rec)
		}
	})
}
