package reqlog

import (
	"fmt"
	"testing"
	"time"

	"ndsm/internal/obs"
	"ndsm/internal/simtime"
)

func testOpts(clk simtime.Clock) Options {
	return Options{
		Clock:         clk,
		Capacity:      64, // 48 tail + 16 healthy
		SampleEvery:   4,
		SlowThreshold: 50 * time.Millisecond,
		Registry:      obs.NewRegistry(),
	}
}

func okRecord(at time.Time, topic string) Record {
	return Record{
		Time: at, Kind: KindServer, Topic: topic,
		Lane: "default", Outcome: OutcomeOK, Latency: 2 * time.Millisecond,
	}
}

// TestTailRetentionSurvivesHealthyFlood is the core retention property: a
// burst of shed records must still be present after a flood of healthy
// traffic large enough to cycle the healthy ring many times over.
func TestTailRetentionSurvivesHealthyFlood(t *testing.T) {
	clk := simtime.NewVirtual(time.Unix(1_700_000_000, 0))
	r := New(testOpts(clk))

	// The anomaly: a short shed burst.
	const sheds = 10
	for i := 0; i < sheds; i++ {
		r.Record(Record{
			Time: clk.Now(), Kind: KindServer, Topic: "orders/create",
			Lane: "control", Outcome: OutcomeShed,
			ShedReason: "server at capacity", Latency: 0,
		})
		clk.Advance(time.Millisecond)
	}
	// The flood: 10k healthy records afterwards.
	for i := 0; i < 10_000; i++ {
		r.Record(okRecord(clk.Now(), "metrics/poll"))
		clk.Advance(100 * time.Microsecond)
	}

	got := r.Snapshot(Filter{Outcome: OutcomeShed})
	if len(got) != sheds {
		t.Fatalf("shed records after flood = %d, want %d", len(got), sheds)
	}
	for _, rec := range got {
		if rec.ShedReason != "server at capacity" || rec.Topic != "orders/create" {
			t.Errorf("shed record corrupted: %+v", rec)
		}
	}
	// Healthy records are sampled, not dropped entirely.
	if healthy := r.Snapshot(Filter{Outcome: OutcomeOK}); len(healthy) == 0 {
		t.Error("healthy ring empty despite flood")
	}
	tail, healthy := r.Len()
	if tail > 48 || healthy > 16 {
		t.Errorf("rings exceeded capacity: tail=%d healthy=%d", tail, healthy)
	}
}

// TestTailClassification walks the classifier's boundaries.
func TestTailClassification(t *testing.T) {
	slow := 50 * time.Millisecond
	cases := []struct {
		name string
		rec  Record
		want bool
	}{
		{"healthy fast", Record{Outcome: OutcomeOK, Latency: time.Millisecond}, false},
		{"error", Record{Outcome: OutcomeError, Latency: time.Millisecond}, true},
		{"shed", Record{Outcome: OutcomeShed}, true},
		{"timeout", Record{Outcome: OutcomeTimeout}, true},
		{"at slow threshold", Record{Outcome: OutcomeOK, Latency: slow}, true},
		{"just under slow", Record{Outcome: OutcomeOK, Latency: slow - 1}, false},
		{"deadline blown", Record{Outcome: OutcomeOK, Latency: 10 * time.Millisecond,
			HasDeadline: true, DeadlineSlack: -time.Millisecond}, true},
		{"deadline tight", Record{Outcome: OutcomeOK, Latency: 40 * time.Millisecond,
			HasDeadline: true, DeadlineSlack: 5 * time.Millisecond}, true}, // 5ms of a 45ms budget left
		{"deadline roomy", Record{Outcome: OutcomeOK, Latency: 10 * time.Millisecond,
			HasDeadline: true, DeadlineSlack: 40 * time.Millisecond}, false},
	}
	for _, tc := range cases {
		if got := tc.rec.tailWorthy(slow); got != tc.want {
			t.Errorf("%s: tailWorthy = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestRingWrap pins overwrite-oldest behaviour exactly at the boundary.
func TestRingWrap(t *testing.T) {
	r := ring{buf: make([]Record, 4)}
	base := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		r.push(Record{Time: base.Add(time.Duration(i) * time.Second), Topic: fmt.Sprintf("t%d", i)})
	}
	got := r.appendNewestFirst(nil)
	if len(got) != 4 {
		t.Fatalf("wrapped ring holds %d, want 4", len(got))
	}
	for i, want := range []string{"t9", "t8", "t7", "t6"} {
		if got[i].Topic != want {
			t.Errorf("slot %d = %s, want %s", i, got[i].Topic, want)
		}
	}
	// Exactly-full (no wrap yet) keeps everything.
	r2 := ring{buf: make([]Record, 4)}
	for i := 0; i < 4; i++ {
		r2.push(Record{Topic: fmt.Sprintf("x%d", i)})
	}
	if got := r2.appendNewestFirst(nil); len(got) != 4 || got[0].Topic != "x3" || got[3].Topic != "x0" {
		t.Errorf("exact-fill ring = %+v", got)
	}
}

func TestSnapshotFilters(t *testing.T) {
	clk := simtime.NewVirtual(time.Unix(1_700_000_000, 0))
	r := New(Options{Clock: clk, Capacity: 64, SampleEvery: 1, Registry: obs.NewRegistry()})
	mk := func(topic, lane, outcome, kind string) {
		r.Record(Record{Time: clk.Now(), Kind: kind, Topic: topic, Lane: lane,
			Outcome: outcome, Latency: time.Millisecond})
		clk.Advance(time.Millisecond)
	}
	mk("a", "default", OutcomeOK, KindClient)
	mk("a", "bulk", OutcomeError, KindServer)
	mk("b", "default", OutcomeOK, KindServer)
	mk("b", "control", OutcomeShed, KindServer)

	if got := r.Snapshot(Filter{Topic: "a"}); len(got) != 2 {
		t.Errorf("topic filter: %d records, want 2", len(got))
	}
	if got := r.Snapshot(Filter{Lane: "control"}); len(got) != 1 || got[0].Outcome != OutcomeShed {
		t.Errorf("lane filter: %+v", got)
	}
	if got := r.Snapshot(Filter{Outcome: OutcomeOK, Kind: KindServer}); len(got) != 1 || got[0].Topic != "b" {
		t.Errorf("outcome+kind filter: %+v", got)
	}
	all := r.Snapshot(Filter{})
	if len(all) != 4 {
		t.Fatalf("unfiltered: %d records, want 4", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Time.After(all[i-1].Time) {
			t.Errorf("snapshot not newest-first at %d", i)
		}
	}
	if got := r.Snapshot(Filter{Limit: 2}); len(got) != 2 || got[0].Topic != "b" {
		t.Errorf("limit: %+v", got)
	}
}

func TestTopicOverflowFoldsIntoOther(t *testing.T) {
	r := New(Options{Capacity: 64, MaxTopics: 4, SampleEvery: 1, Registry: obs.NewRegistry()})
	base := time.Unix(1_700_000_000, 0)
	for i := 0; i < 20; i++ {
		rec := okRecord(base.Add(time.Duration(i)*time.Second), fmt.Sprintf("topic-%d", i))
		rec.Latency = 5 * time.Millisecond
		r.Record(rec)
	}
	topics := r.Topics()
	if len(topics) != 5 { // 4 real + ~other
		t.Fatalf("topics = %v, want 4 + overflow", topics)
	}
	if q, ok := r.TopicQuantile(OverflowTopic, 0.5); !ok || q <= 0 {
		t.Errorf("overflow digest quantile = %v, %v", q, ok)
	}
	// Digest payloads decode and cover all slots.
	if d := r.TopicDigests(); len(d) != 5 {
		t.Errorf("TopicDigests len = %d", len(d))
	}
}

func TestQuantileAndTopKAccessors(t *testing.T) {
	r := New(Options{Capacity: 64, SampleEvery: 1, Registry: obs.NewRegistry()})
	base := time.Unix(1_700_000_000, 0)
	for i := 0; i < 1000; i++ {
		rec := okRecord(base, "hot/topic")
		rec.Latency = time.Duration(i%100+1) * time.Millisecond
		r.Record(rec)
	}
	for i := 0; i < 50; i++ {
		r.Record(okRecord(base, "cold/topic"))
	}
	if q, ok := r.TopicQuantile("hot/topic", 0.5); !ok || q < 30 || q > 70 {
		t.Errorf("median = %v (ok=%v), want ~50ms", q, ok)
	}
	if _, ok := r.TopicQuantile("absent", 0.5); ok {
		t.Error("absent topic reported a quantile")
	}
	top := r.TopK(1)
	if len(top) != 1 || top[0].Key != "hot/topic" || top[0].Count != 1000 {
		t.Errorf("TopK(1) = %+v", top)
	}
	if r.TopKBinary() == nil {
		t.Error("TopKBinary nil after traffic")
	}
}

func TestCodecRoundTripAndValidation(t *testing.T) {
	rec := Record{
		Time: time.Unix(1_700_000_000, 12345).UTC(), Kind: KindClient,
		Topic: "orders/create", Peer: "node-2", Lane: "bulk",
		Outcome: OutcomeShed, ShedReason: "preempted by higher-benefit work",
		Latency: 3 * time.Millisecond, QueueWait: 700 * time.Microsecond,
		Retries: 2, DeadlineSlack: -time.Millisecond, HasDeadline: true,
		TraceID: 0xdeadbeef, SpanID: 0x1234,
	}
	data, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Time.Equal(rec.Time) || back != (func() Record { r := rec; r.Time = back.Time; return r }()) {
		t.Errorf("round trip: %+v vs %+v", back, rec)
	}

	bad := []Record{
		{Time: rec.Time, Kind: "neither", Topic: "t", Outcome: OutcomeOK},
		{Time: rec.Time, Kind: KindClient, Topic: "", Outcome: OutcomeOK},
		{Time: rec.Time, Kind: KindClient, Topic: "t", Outcome: "fine"},
		{Time: rec.Time, Kind: KindClient, Topic: "t", Outcome: OutcomeOK, Latency: -1},
		{Time: rec.Time, Kind: KindClient, Topic: "t", Outcome: OutcomeOK, ShedReason: "x"},
		{Kind: KindClient, Topic: "t", Outcome: OutcomeOK}, // zero time
	}
	for i, b := range bad {
		data, _ := EncodeRecord(b)
		if _, err := DecodeRecord(data); err == nil {
			t.Errorf("bad record %d accepted: %+v", i, b)
		}
	}
	if _, err := DecodeRecord([]byte(`{"time":"2024-01-01T00:00:00Z","kind":"client","topic":"t","outcome":"ok","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := DecodeRecord(append(data, []byte(` {"x":1}`)...)); err == nil {
		t.Error("trailing data accepted")
	}

	// Array codec.
	arr, err := EncodeRecords([]Record{rec, rec})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := DecodeRecords(arr)
	if err != nil || len(recs) != 2 {
		t.Fatalf("DecodeRecords: %v (%d)", err, len(recs))
	}
	if empty, err := EncodeRecords(nil); err != nil || string(empty) != "[]" {
		t.Errorf("nil slice encodes as %s", empty)
	}
}
