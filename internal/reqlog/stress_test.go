package reqlog

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ndsm/internal/obs"
)

// TestConcurrentRecordSnapshot runs recorders and readers concurrently so
// `go test -race` exercises every lock edge: Record vs Snapshot vs digest
// export vs top-k reads.
func TestConcurrentRecordSnapshot(t *testing.T) {
	r := New(Options{Capacity: 128, SampleEvery: 2, Registry: obs.NewRegistry()})
	base := time.Unix(1_700_000_000, 0)
	var wg sync.WaitGroup
	const writers, readers, perWriter = 8, 4, 2000

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := Record{
					Time:    base.Add(time.Duration(i) * time.Microsecond),
					Kind:    KindServer,
					Topic:   fmt.Sprintf("topic-%d", i%10),
					Lane:    "default",
					Outcome: OutcomeOK,
					Latency: time.Duration(i%50) * time.Millisecond,
				}
				if i%97 == 0 {
					rec.Outcome = OutcomeShed
					rec.ShedReason = "server at capacity"
				}
				r.Record(rec)
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = r.Snapshot(Filter{Outcome: OutcomeShed, Limit: 16})
				_ = r.TopicDigests()
				_ = r.TopKBinary()
				_ = r.TopK(5)
				_, _ = r.TopicQuantile("topic-1", 0.99)
				_ = r.Topics()
			}
		}()
	}
	wg.Wait()

	// Totals reconcile: every record landed in exactly one aggregate stream.
	var total uint64
	for _, e := range r.TopK(0) {
		total += e.Count
	}
	if want := uint64(writers * perWriter); total != want {
		t.Errorf("topk total = %d, want %d", total, want)
	}
	tail, healthy := r.Len()
	if tail == 0 || healthy == 0 {
		t.Errorf("rings empty after stress: tail=%d healthy=%d", tail, healthy)
	}
}

// TestSampledOutRecordZeroAllocs pins the E15 overhead claim: once topics
// are warm, a healthy request that the sampler drops costs zero allocations
// end to end (counter, top-k offer, digest add, classification).
func TestSampledOutRecordZeroAllocs(t *testing.T) {
	r := New(Options{
		Capacity:    64,
		SampleEvery: 1 << 30, // never keep → every run is the sampled-out path
		Registry:    obs.NewRegistry(),
	})
	base := time.Unix(1_700_000_000, 0)
	rec := okRecord(base, "warm/topic")
	// Warm: topic slot, top-k slot, digest buffers through many compressions.
	for i := 0; i < 50_000; i++ {
		rec.Latency = time.Duration(i%100) * time.Millisecond / 10
		r.Record(rec)
	}
	i := 0
	if avg := testing.AllocsPerRun(20_000, func() {
		rec.Latency = time.Duration(i%100) * time.Millisecond / 10
		r.Record(rec)
		i++
	}); avg != 0 {
		t.Errorf("sampled-out Record allocates %.3f allocs/op, want 0", avg)
	}
}

// TestKeptRecordCheapAllocs documents the kept path too: a ring write copies
// the record into a preallocated slot, so even kept records stay alloc-free.
func TestKeptRecordCheapAllocs(t *testing.T) {
	r := New(Options{Capacity: 64, SampleEvery: 1, Registry: obs.NewRegistry()})
	base := time.Unix(1_700_000_000, 0)
	rec := okRecord(base, "warm/topic")
	for i := 0; i < 50_000; i++ {
		r.Record(rec)
	}
	if avg := testing.AllocsPerRun(20_000, func() {
		r.Record(rec)
	}); avg != 0 {
		t.Errorf("kept Record allocates %.3f allocs/op, want 0", avg)
	}
}
