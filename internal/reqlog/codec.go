package reqlog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// The JSON codec is how wide events leave the process — /requests responses,
// flight-recorder bundles, chaos tail dumps. DecodeRecord is the matching
// trust boundary for anything reading those artifacts back (fuzzed by
// FuzzWideEventDecode): a record that decodes is guaranteed well-formed, so
// downstream tooling can index on Kind/Outcome without re-validating.

// maxEncodedRecord bounds a single serialized record; topics and peers are
// short path-like strings, so anything near this is hostile.
const maxEncodedRecord = 1 << 16

// EncodeRecord serializes one record as a single JSON object.
func EncodeRecord(rec Record) ([]byte, error) {
	return json.Marshal(rec)
}

// EncodeRecords serializes records as a JSON array (the /requests payload).
func EncodeRecords(recs []Record) ([]byte, error) {
	if recs == nil {
		recs = []Record{}
	}
	return json.Marshal(recs)
}

func validKind(k string) bool { return k == KindClient || k == KindServer }

func validOutcome(o string) bool {
	switch o {
	case OutcomeOK, OutcomeError, OutcomeShed, OutcomeTimeout, OutcomeUnavailable:
		return true
	}
	return false
}

// validate enforces the invariants Record producers maintain; decode rejects
// anything outside them so readers of dumped artifacts can trust the shape.
func (r *Record) validate() error {
	if !validKind(r.Kind) {
		return fmt.Errorf("reqlog: kind %q invalid", r.Kind)
	}
	if r.Topic == "" {
		return fmt.Errorf("reqlog: empty topic")
	}
	if !validOutcome(r.Outcome) {
		return fmt.Errorf("reqlog: outcome %q invalid", r.Outcome)
	}
	if r.Latency < 0 {
		return fmt.Errorf("reqlog: negative latency %v", r.Latency)
	}
	if r.QueueWait < 0 {
		return fmt.Errorf("reqlog: negative queue wait %v", r.QueueWait)
	}
	if r.Retries < 0 {
		return fmt.Errorf("reqlog: negative retries %d", r.Retries)
	}
	if r.ShedReason != "" && r.Outcome != OutcomeShed {
		return fmt.Errorf("reqlog: shed reason on outcome %q", r.Outcome)
	}
	if !r.HasDeadline && r.DeadlineSlack != 0 {
		return fmt.Errorf("reqlog: deadline slack without deadline")
	}
	if r.Time.IsZero() {
		return fmt.Errorf("reqlog: zero time")
	}
	return nil
}

// DecodeRecord parses and validates one serialized record.
func DecodeRecord(data []byte) (Record, error) {
	var rec Record
	if len(data) > maxEncodedRecord {
		return rec, fmt.Errorf("reqlog: record too large (%d bytes)", len(data))
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return Record{}, fmt.Errorf("reqlog: decode record: %w", err)
	}
	// Artifacts are written by this package; trailing data is corruption.
	if dec.More() {
		return Record{}, fmt.Errorf("reqlog: trailing data after record")
	}
	if err := rec.validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// DecodeRecords parses a JSON array of records, validating each.
func DecodeRecords(data []byte) ([]Record, error) {
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("reqlog: decode records: %w", err)
	}
	for i := range recs {
		if err := recs[i].validate(); err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
	}
	return recs, nil
}

// Age is a display helper: how long ago the record completed relative to
// now, truncated for human output.
func (r *Record) Age(now time.Time) time.Duration {
	return now.Sub(r.Time).Truncate(time.Millisecond)
}
