package rpc

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ndsm/internal/endpoint"
	"ndsm/internal/transport"
)

func fixture(t *testing.T) (*Server, *Client) {
	t.Helper()
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	l, err := tr.Listen("rpc")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l)
	cli, err := Dial(transport.NewMem(fabric), "rpc", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cli.Close()
		_ = srv.Close()
		_ = tr.Close()
	})
	return srv, cli
}

func TestCallReply(t *testing.T) {
	srv, cli := fixture(t)
	srv.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	got, err := cli.Call("echo", []byte("hello"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	if srv.Calls()["echo"] != 1 {
		t.Fatalf("calls = %v", srv.Calls())
	}
}

func TestHandlerError(t *testing.T) {
	srv, cli := fixture(t)
	srv.Handle("fail", func([]byte) ([]byte, error) { return nil, errors.New("boom") })
	_, err := cli.Call("fail", nil, time.Second)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, cli := fixture(t)
	_, err := cli.Call("nope", nil, time.Second)
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("err = %v", err)
	}
}

func TestTimeout(t *testing.T) {
	srv, cli := fixture(t)
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	srv.Handle("slow", func([]byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	_, err := cli.Call("slow", nil, 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	srv, cli := fixture(t)
	srv.Handle("id", func(p []byte) ([]byte, error) { return p, nil })
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("req-%d", i)
			got, err := cli.Call("id", []byte(want), 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if string(got) != want {
				errs <- fmt.Errorf("cross-talk: sent %q got %q", want, got)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSlowCallDoesNotBlockFastCall(t *testing.T) {
	srv, cli := fixture(t)
	release := make(chan struct{})
	srv.Handle("slow", func([]byte) ([]byte, error) {
		<-release
		return []byte("slow-done"), nil
	})
	srv.Handle("fast", func([]byte) ([]byte, error) { return []byte("fast-done"), nil })

	slowRes := cli.Go("slow", nil, 10*time.Second)
	got, err := cli.Call("fast", nil, 5*time.Second)
	if err != nil || string(got) != "fast-done" {
		t.Fatalf("fast call behind slow call: %q, %v", got, err)
	}
	close(release)
	res := <-slowRes
	if res.Err != nil || string(res.Data) != "slow-done" {
		t.Fatalf("slow result: %+v", res)
	}
}

func TestClientClose(t *testing.T) {
	srv, cli := fixture(t)
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	srv.Handle("hang", func([]byte) ([]byte, error) { <-block; return nil, nil })
	done := make(chan error, 1)
	go func() {
		_, err := cli.Call("hang", nil, 0)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	_ = cli.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("outstanding call not failed by Close")
	}
	if _, err := cli.Call("x", nil, time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after close: %v", err)
	}
	_ = cli.Close() // idempotent
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := fixture(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial(transport.NewMem(transport.NewFabric()), "nowhere", nil); err == nil {
		t.Fatal("dial to nowhere succeeded")
	}
}

func TestHandlerReplacement(t *testing.T) {
	srv, cli := fixture(t)
	srv.Handle("m", func([]byte) ([]byte, error) { return []byte("v1"), nil })
	srv.Handle("m", func([]byte) ([]byte, error) { return []byte("v2"), nil })
	got, err := cli.Call("m", nil, time.Second)
	if err != nil || string(got) != "v2" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestGoCallPipelined(t *testing.T) {
	srv, cli := fixture(t)
	srv.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	const n = 50
	futs := make([]*endpoint.Future, n)
	for i := range futs {
		futs[i] = cli.GoCall("echo", []byte(fmt.Sprintf("m-%d", i)), 2*time.Second)
	}
	for i, fut := range futs {
		m, err := fut.Wait()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if want := fmt.Sprintf("m-%d", i); string(m.Payload) != want {
			t.Fatalf("cross-wired reply %d: %q", i, m.Payload)
		}
	}
}

func TestGoCallRemoteError(t *testing.T) {
	srv, cli := fixture(t)
	srv.Handle("boom", func(p []byte) ([]byte, error) { return nil, errors.New("kaput") })
	if _, err := cli.GoCall("boom", nil, 2*time.Second).Wait(); err == nil ||
		!strings.Contains(err.Error(), "kaput") {
		t.Fatalf("err = %v, want remote kaput", err)
	}
}
