// Package rpc is the client-server interaction style (§3.1, §3.6): typed
// request/reply with per-call deadlines over any Transport. It is the
// middleware's stand-in for the RPC/RMI technologies the paper surveys,
// built with asynchronous connection handling so calls never block the
// transport (the paper's "should provide asynchronous connections").
package rpc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ndsm/internal/simtime"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// RPC errors.
var (
	ErrTimeout       = errors.New("rpc: call timed out")
	ErrClosed        = errors.New("rpc: closed")
	ErrUnknownMethod = errors.New("rpc: unknown method")
)

// Handler processes one call's payload and returns the reply payload.
type Handler func(payload []byte) ([]byte, error)

// Server dispatches calls to registered handlers.
type Server struct {
	mu       sync.Mutex
	handlers map[string]Handler
	conns    map[transport.Conn]struct{}
	listener transport.Listener
	closed   bool
	wg       sync.WaitGroup

	// Calls counts handled calls by method.
	calls map[string]int64
}

// NewServer starts serving on the listener.
func NewServer(l transport.Listener) *Server {
	s := &Server{
		handlers: make(map[string]Handler),
		conns:    make(map[transport.Conn]struct{}),
		listener: l,
		calls:    make(map[string]int64),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Handle registers a handler for a method name; it replaces any previous
// registration.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	s.handlers[method] = h
	s.mu.Unlock()
}

// Calls returns a copy of the per-method call counters.
func (s *Server) Calls() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.calls))
	for k, v := range s.calls {
		out[k] = v
	}
	return out
}

// Close stops the server and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	_ = s.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn transport.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// Replies are written from handler goroutines; serialize them.
	var sendMu sync.Mutex
	for {
		req, err := conn.Recv()
		if err != nil {
			return
		}
		if req.Kind != wire.KindRequest {
			continue
		}
		s.mu.Lock()
		h := s.handlers[req.Topic]
		s.calls[req.Topic]++
		s.mu.Unlock()

		// Handle each call in its own goroutine so a slow method does not
		// head-of-line block the connection.
		s.wg.Add(1)
		go func(req *wire.Message) {
			defer s.wg.Done()
			reply := &wire.Message{Corr: req.ID, Topic: req.Topic}
			if h == nil {
				reply.Kind = wire.KindError
				reply.Payload = []byte(fmt.Sprintf("%v: %s", ErrUnknownMethod, req.Topic))
			} else if out, err := h(req.Payload); err != nil {
				reply.Kind = wire.KindError
				reply.Payload = []byte(err.Error())
			} else {
				reply.Kind = wire.KindReply
				reply.Payload = out
			}
			sendMu.Lock()
			defer sendMu.Unlock()
			_ = conn.Send(reply)
		}(req)
	}
}

// Client issues calls over one connection, multiplexing any number of
// concurrent calls by correlation ID.
type Client struct {
	clock simtime.Clock
	conn  transport.Conn

	nextID atomic.Uint64

	mu      sync.Mutex
	waiters map[uint64]chan *wire.Message
	closed  bool

	done chan struct{}
}

// Dial connects a client to an RPC server.
func Dial(tr transport.Transport, addr string, clock simtime.Clock) (*Client, error) {
	if clock == nil {
		clock = simtime.Real{}
	}
	conn, err := tr.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	c := &Client{
		clock:   clock,
		conn:    conn,
		waiters: make(map[uint64]chan *wire.Message),
		done:    make(chan struct{}),
	}
	go c.demux()
	return c, nil
}

// Close shuts the client down; outstanding calls fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}

// Call invokes method with payload and waits up to timeout for the reply.
func (c *Client) Call(method string, payload []byte, timeout time.Duration) ([]byte, error) {
	id := c.nextID.Add(1)
	replyCh := make(chan *wire.Message, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.waiters[id] = replyCh
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, id)
		c.mu.Unlock()
	}()

	req := &wire.Message{
		ID:      id,
		Kind:    wire.KindRequest,
		Topic:   method,
		Payload: payload,
	}
	if timeout > 0 {
		req.Deadline = c.clock.Now().Add(timeout)
	}
	if err := c.conn.Send(req); err != nil {
		return nil, fmt.Errorf("rpc: send: %w", err)
	}

	var timer <-chan time.Time
	if timeout > 0 {
		timer = c.clock.After(timeout)
	}
	select {
	case reply := <-replyCh:
		if reply.Kind == wire.KindError {
			return nil, fmt.Errorf("rpc: remote: %s", reply.Payload)
		}
		return reply.Payload, nil
	case <-timer:
		return nil, fmt.Errorf("%w: %s after %v", ErrTimeout, method, timeout)
	case <-c.done:
		return nil, ErrClosed
	}
}

// Go invokes method asynchronously; the returned channel receives the single
// result.
func (c *Client) Go(method string, payload []byte, timeout time.Duration) <-chan Result {
	out := make(chan Result, 1)
	go func() {
		data, err := c.Call(method, payload, timeout)
		out <- Result{Data: data, Err: err}
	}()
	return out
}

// Result is an asynchronous call outcome.
type Result struct {
	Data []byte
	Err  error
}

func (c *Client) demux() {
	defer close(c.done)
	for {
		m, err := c.conn.Recv()
		if err != nil {
			return
		}
		c.mu.Lock()
		ch := c.waiters[m.Corr]
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- m:
			default:
			}
		}
	}
}
