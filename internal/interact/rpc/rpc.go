// Package rpc is the client-server interaction style (§3.1, §3.6): typed
// request/reply with per-call deadlines over any Transport. It is the
// middleware's stand-in for the RPC/RMI technologies the paper surveys.
// Since the unified-endpoint refactor it is a thin facade over
// internal/endpoint: the correlation, demultiplexing, and timeout machinery
// live there, shared with discovery, the message queue, and the kernel.
package rpc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ndsm/internal/endpoint"
	"ndsm/internal/reqlog"
	"ndsm/internal/simtime"
	"ndsm/internal/trace"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// RPC errors.
var (
	ErrTimeout       = errors.New("rpc: call timed out")
	ErrClosed        = errors.New("rpc: closed")
	ErrUnknownMethod = errors.New("rpc: unknown method")
)

// Handler processes one call's payload and returns the reply payload.
type Handler func(payload []byte) ([]byte, error)

// Server dispatches calls to registered handlers.
type Server struct {
	ep       *endpoint.Server
	traceRef *trace.Ref

	mu    sync.Mutex
	calls map[string]int64
}

// ServerConfig tunes an RPC server's admission control: MaxInFlight bounds
// concurrent dispatches (0 unlimited) and Lanes layers priority-lane quotas
// and benefit-aware queue shedding over that bound (see endpoint.LaneConfig).
type ServerConfig struct {
	MaxInFlight int
	Lanes       *endpoint.LaneConfig
	// ReqLog records one wide event per dispatched or shed call (see
	// reqlog); nil disables request analytics.
	ReqLog *reqlog.Recorder
}

// NewServer starts serving on the listener with unlimited admission.
func NewServer(l transport.Listener) *Server {
	return NewServerWith(l, ServerConfig{})
}

// NewServerWith starts serving on the listener with the given admission
// configuration.
func NewServerWith(l transport.Listener, cfg ServerConfig) *Server {
	s := &Server{calls: make(map[string]int64), traceRef: trace.NewRef(nil)}
	s.ep = endpoint.NewServer(l, endpoint.ServerOptions{
		Kinds:       []wire.Kind{wire.KindRequest},
		MaxInFlight: cfg.MaxInFlight,
		Lanes:       cfg.Lanes,
		ReqLog:      cfg.ReqLog,
		Interceptors: []endpoint.ServerInterceptor{
			endpoint.WithServerTracing(s.traceRef, "rpc.serve"),
			s.countCalls,
			endpoint.WithServerMetrics(nil, "rpc.server", nil),
		},
		Fallback: func(req *wire.Message) (*wire.Message, error) {
			return nil, fmt.Errorf("%v: %s", ErrUnknownMethod, req.Topic)
		},
	})
	return s
}

// countCalls tallies every dispatched method, known or not (the pre-endpoint
// server counted unknown methods too, and tests rely on it).
func (s *Server) countCalls(next endpoint.Handler) endpoint.Handler {
	return func(req *wire.Message) (*wire.Message, error) {
		s.mu.Lock()
		s.calls[req.Topic]++
		s.mu.Unlock()
		return next(req)
	}
}

// Handle registers a handler for a method name; it replaces any previous
// registration.
func (s *Server) Handle(method string, h Handler) {
	s.ep.Handle(method, func(req *wire.Message) (*wire.Message, error) {
		out, err := h(req.Payload)
		if err != nil {
			return nil, err
		}
		return &wire.Message{Kind: wire.KindReply, Payload: out}, nil
	})
}

// SetTracer installs the server's tracer (nil reverts to the process
// default).
func (s *Server) SetTracer(t *trace.Tracer) { s.traceRef.Set(t) }

// Calls returns a copy of the per-method call counters.
func (s *Server) Calls() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.calls))
	for k, v := range s.calls {
		out[k] = v
	}
	return out
}

// Close stops the server and waits for in-flight handlers.
func (s *Server) Close() error { return s.ep.Close() }

// Client issues calls over one connection, multiplexing any number of
// concurrent calls by correlation ID.
type Client struct {
	caller   *endpoint.Caller
	traceRef *trace.Ref
}

// ClientConfig tunes a client's observability and lane classification.
type ClientConfig struct {
	// ReqLog records one wide event per logical call; nil disables it.
	ReqLog *reqlog.Recorder
	// TopicLanes classifies calls by method when no explicit lane is passed
	// (CallLane's lane wins).
	TopicLanes *endpoint.LaneTable
}

// Dial connects a client to an RPC server.
func Dial(tr transport.Transport, addr string, clock simtime.Clock) (*Client, error) {
	return DialWith(tr, addr, clock, ClientConfig{})
}

// DialWith is Dial with request analytics and lane-table configuration.
func DialWith(tr transport.Transport, addr string, clock simtime.Clock, cfg ClientConfig) (*Client, error) {
	c := &Client{traceRef: trace.NewRef(nil)}
	interceptors := []endpoint.ClientInterceptor{
		// With no tracer installed this is a pass-through that keeps the
		// hot path allocation-free (BenchmarkInteractRPC's band).
		endpoint.WithTracing(c.traceRef, "rpc.call"),
	}
	if cfg.ReqLog != nil {
		interceptors = append([]endpoint.ClientInterceptor{
			endpoint.WithWideEvents(endpoint.WideEventOptions{
				Recorder: cfg.ReqLog, Clock: clock, Peer: addr,
			}),
		}, interceptors...)
	}
	caller, err := endpoint.NewCaller(tr, addr, endpoint.CallerOptions{
		Clock:        clock,
		Eager:        true,
		Interceptors: interceptors,
		TopicLanes:   cfg.TopicLanes,
	})
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	c.caller = caller
	return c, nil
}

// SetTracer installs the client's tracer (nil reverts to the process
// default).
func (c *Client) SetTracer(t *trace.Tracer) { c.traceRef.Set(t) }

// Close shuts the client down; outstanding calls fail with ErrClosed.
func (c *Client) Close() error { return c.caller.Close() }

// Call invokes method with payload and waits up to timeout for the reply
// (timeout <= 0: wait forever).
func (c *Client) Call(method string, payload []byte, timeout time.Duration) ([]byte, error) {
	return c.CallLane(method, payload, timeout, endpoint.LaneDefault)
}

// CallLane is Call on an explicit admission lane: the class rides in-band
// (endpoint.HeaderLane) so a bounded server isolates this call from — or
// sheds it before — other lanes' traffic. A periodic control caller uses
// endpoint.LaneControl; background transfers use endpoint.LaneBulk.
func (c *Client) CallLane(method string, payload []byte, timeout time.Duration, lane endpoint.Lane) ([]byte, error) {
	t := timeout
	if t <= 0 {
		t = endpoint.NoTimeout
	}
	m, err := c.caller.Do(&endpoint.Call{Topic: method, Payload: payload, Timeout: t, Lane: lane})
	return translate(m, err, method, timeout)
}

// translate maps endpoint outcomes onto the rpc error vocabulary.
func translate(m *wire.Message, err error, method string, timeout time.Duration) ([]byte, error) {
	if err != nil {
		if re, ok := endpoint.IsRemote(err); ok {
			return nil, fmt.Errorf("rpc: remote: %s", re.Msg)
		}
		if errors.Is(err, endpoint.ErrTimeout) {
			return nil, fmt.Errorf("%w: %s after %v", ErrTimeout, method, timeout)
		}
		if errors.Is(err, endpoint.ErrClosed) || errors.Is(err, endpoint.ErrUnavailable) {
			// An RPC client owns exactly one connection: once it is gone —
			// deliberately or not — the client is closed for business.
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("rpc: %w", err)
	}
	return m.Payload, nil
}

// GoCall starts method without waiting for the reply and returns its future:
// the pipelined form of Call. The request is on the wire when GoCall
// returns, so back-to-back GoCalls keep the connection full instead of
// alternating send/wait. Resolve with fut.Wait (endpoint error vocabulary);
// Go wraps this with the rpc translation.
func (c *Client) GoCall(method string, payload []byte, timeout time.Duration) *endpoint.Future {
	return c.GoCallLane(method, payload, timeout, endpoint.LaneDefault)
}

// GoCallLane is GoCall on an explicit admission lane (see CallLane).
func (c *Client) GoCallLane(method string, payload []byte, timeout time.Duration, lane endpoint.Lane) *endpoint.Future {
	t := timeout
	if t <= 0 {
		t = endpoint.NoTimeout
	}
	return c.caller.Go(&endpoint.Call{Topic: method, Payload: payload, Timeout: t, Lane: lane})
}

// Go invokes method asynchronously; the returned channel receives the single
// result. The request is pipelined onto the wire before Go returns — only
// the wait parks a goroutine.
func (c *Client) Go(method string, payload []byte, timeout time.Duration) <-chan Result {
	fut := c.GoCall(method, payload, timeout)
	out := make(chan Result, 1)
	go func() {
		m, err := fut.Wait()
		data, err := translate(m, err, method, timeout)
		out <- Result{Data: data, Err: err}
	}()
	return out
}

// Result is an asynchronous call outcome.
type Result struct {
	Data []byte
	Err  error
}
