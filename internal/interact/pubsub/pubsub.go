// Package pubsub is the event-based interaction style (the paper's
// publish-subscribe middleware [67,68]): subscribers register topic
// patterns with a broker; publishers emit events the broker fans out
// asynchronously. Neither side knows the other — the space decoupling that
// lets plug-and-play components come and go.
package pubsub

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// Protocol topics.
const (
	topicSubscribe   = "ps.subscribe"
	topicUnsubscribe = "ps.unsubscribe"
	topicPublish     = "ps.publish"
)

// ErrClosed reports use of a closed endpoint.
var ErrClosed = errors.New("pubsub: closed")

// subscriberBuffer is each subscription's event queue depth; slow consumers
// drop (and count) rather than stall the broker.
const subscriberBuffer = 128

// Event is one published notification.
type Event struct {
	Topic   string
	Payload []byte
}

// MatchTopic reports whether a concrete topic matches a pattern. Patterns
// are exact strings or prefixes ending in "*" ("sensors/*").
func MatchTopic(pattern, topic string) bool {
	if pattern == "*" {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(topic, strings.TrimSuffix(pattern, "*"))
	}
	return pattern == topic
}

// subscription is a broker-side registration.
type subscription struct {
	pattern string
	conn    transport.Conn
	sendMu  *sync.Mutex
}

// Broker fans published events out to matching subscribers.
type Broker struct {
	mu       sync.Mutex
	subs     map[transport.Conn]map[string]*subscription // conn -> pattern -> sub
	sendMus  map[transport.Conn]*sync.Mutex
	conns    map[transport.Conn]struct{}
	listener transport.Listener
	closed   bool
	wg       sync.WaitGroup

	// Published and Dropped count events through the broker.
	Published atomic.Int64
	Dropped   atomic.Int64
}

// NewBroker starts a broker on the listener.
func NewBroker(l transport.Listener) *Broker {
	b := &Broker{
		subs:     make(map[transport.Conn]map[string]*subscription),
		sendMus:  make(map[transport.Conn]*sync.Mutex),
		conns:    make(map[transport.Conn]struct{}),
		listener: l,
	}
	b.wg.Add(1)
	go b.acceptLoop()
	return b
}

// Close stops the broker.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	conns := make([]transport.Conn, 0, len(b.conns))
	for c := range b.conns {
		conns = append(conns, c)
	}
	b.mu.Unlock()
	_ = b.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	b.wg.Wait()
	return nil
}

// Subscriptions reports the current registration count.
func (b *Broker) Subscriptions() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, pats := range b.subs {
		n += len(pats)
	}
	return n
}

func (b *Broker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.listener.Accept()
		if err != nil {
			return
		}
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			_ = conn.Close()
			return
		}
		b.conns[conn] = struct{}{}
		b.sendMus[conn] = &sync.Mutex{}
		b.mu.Unlock()
		b.wg.Add(1)
		go b.serveConn(conn)
	}
}

func (b *Broker) serveConn(conn transport.Conn) {
	defer b.wg.Done()
	defer func() {
		_ = conn.Close()
		b.mu.Lock()
		delete(b.conns, conn)
		delete(b.subs, conn)
		delete(b.sendMus, conn)
		b.mu.Unlock()
	}()
	for {
		req, err := conn.Recv()
		if err != nil {
			return
		}
		switch req.Topic {
		case topicSubscribe:
			pattern := string(req.Payload)
			b.mu.Lock()
			if b.subs[conn] == nil {
				b.subs[conn] = make(map[string]*subscription)
			}
			b.subs[conn][pattern] = &subscription{pattern: pattern, conn: conn, sendMu: b.sendMus[conn]}
			b.mu.Unlock()
			b.reply(conn, req, wire.KindAck, nil)
		case topicUnsubscribe:
			pattern := string(req.Payload)
			b.mu.Lock()
			delete(b.subs[conn], pattern)
			b.mu.Unlock()
			b.reply(conn, req, wire.KindAck, nil)
		case topicPublish:
			b.Published.Add(1)
			b.fanout(req)
			b.reply(conn, req, wire.KindAck, nil)
		default:
			b.reply(conn, req, wire.KindError, []byte(fmt.Sprintf("pubsub: unknown topic %q", req.Topic)))
		}
	}
}

func (b *Broker) reply(conn transport.Conn, req *wire.Message, kind wire.Kind, payload []byte) {
	b.mu.Lock()
	mu := b.sendMus[conn]
	b.mu.Unlock()
	if mu == nil {
		return
	}
	mu.Lock()
	defer mu.Unlock()
	_ = conn.Send(&wire.Message{Kind: kind, Corr: req.ID, Topic: req.Topic, Payload: payload})
}

// fanout pushes the event to every matching subscription.
func (b *Broker) fanout(req *wire.Message) {
	eventTopic := req.Headers["topic"]
	b.mu.Lock()
	var targets []*subscription
	for _, pats := range b.subs {
		for _, sub := range pats {
			if MatchTopic(sub.pattern, eventTopic) {
				targets = append(targets, sub)
			}
		}
	}
	b.mu.Unlock()
	for _, sub := range targets {
		ev := &wire.Message{
			Kind:    wire.KindEvent,
			Topic:   eventTopic,
			Payload: req.Payload,
		}
		sub.sendMu.Lock()
		err := sub.conn.Send(ev)
		sub.sendMu.Unlock()
		if err != nil {
			b.Dropped.Add(1)
		}
	}
}

// Client publishes and subscribes against a broker.
type Client struct {
	mu     sync.Mutex
	conn   transport.Conn
	nextID uint64
	acks   map[uint64]chan *wire.Message
	subs   map[string]chan Event
	closed bool
	done   chan struct{}

	// DroppedEvents counts events discarded because a subscription channel
	// was full.
	DroppedEvents atomic.Int64
}

// Dial connects to a broker.
func Dial(tr transport.Transport, addr string) (*Client, error) {
	conn, err := tr.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("pubsub: dial %s: %w", addr, err)
	}
	c := &Client{
		conn: conn,
		acks: make(map[uint64]chan *wire.Message),
		subs: make(map[string]chan Event),
		done: make(chan struct{}),
	}
	go c.demux()
	return c, nil
}

// Close shuts the client down; subscription channels are closed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	c.mu.Lock()
	for pattern, ch := range c.subs {
		close(ch)
		delete(c.subs, pattern)
	}
	c.mu.Unlock()
	return err
}

func (c *Client) demux() {
	defer close(c.done)
	for {
		m, err := c.conn.Recv()
		if err != nil {
			return
		}
		if m.Kind == wire.KindEvent {
			c.mu.Lock()
			var targets []chan Event
			for pattern, ch := range c.subs {
				if MatchTopic(pattern, m.Topic) {
					targets = append(targets, ch)
				}
			}
			c.mu.Unlock()
			for _, ch := range targets {
				select {
				case ch <- Event{Topic: m.Topic, Payload: m.Payload}:
				default:
					c.DroppedEvents.Add(1)
				}
			}
			continue
		}
		c.mu.Lock()
		ch := c.acks[m.Corr]
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- m:
			default:
			}
		}
	}
}

func (c *Client) request(topic string, headers map[string]string, payload []byte) error {
	ackCh := make(chan *wire.Message, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.nextID++
	id := c.nextID
	c.acks[id] = ackCh
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.acks, id)
		c.mu.Unlock()
	}()
	req := &wire.Message{ID: id, Kind: wire.KindRequest, Topic: topic, Headers: headers, Payload: payload}
	if err := c.conn.Send(req); err != nil {
		return fmt.Errorf("pubsub: send: %w", err)
	}
	select {
	case m := <-ackCh:
		if m.Kind == wire.KindError {
			return errors.New(string(m.Payload))
		}
		return nil
	case <-c.done:
		return ErrClosed
	}
}

// Subscribe registers a pattern and returns the event channel. Subscribing
// the same pattern again returns the existing channel.
func (c *Client) Subscribe(pattern string) (<-chan Event, error) {
	c.mu.Lock()
	if ch, ok := c.subs[pattern]; ok {
		c.mu.Unlock()
		return ch, nil
	}
	ch := make(chan Event, subscriberBuffer)
	c.subs[pattern] = ch
	c.mu.Unlock()
	if err := c.request(topicSubscribe, nil, []byte(pattern)); err != nil {
		c.mu.Lock()
		delete(c.subs, pattern)
		c.mu.Unlock()
		return nil, err
	}
	return ch, nil
}

// Unsubscribe withdraws a pattern and closes its channel.
func (c *Client) Unsubscribe(pattern string) error {
	if err := c.request(topicUnsubscribe, nil, []byte(pattern)); err != nil {
		return err
	}
	c.mu.Lock()
	if ch, ok := c.subs[pattern]; ok {
		close(ch)
		delete(c.subs, pattern)
	}
	c.mu.Unlock()
	return nil
}

// Publish emits an event to a topic.
func (c *Client) Publish(topic string, payload []byte) error {
	return c.request(topicPublish, map[string]string{"topic": topic}, payload)
}
