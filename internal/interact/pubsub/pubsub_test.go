package pubsub

import (
	"testing"
	"time"

	"ndsm/internal/transport"
)

func fixture(t *testing.T) (*Broker, *Client, *Client) {
	t.Helper()
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	l, err := tr.Listen("bus")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBroker(l)
	pub, err := Dial(transport.NewMem(fabric), "bus")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Dial(transport.NewMem(fabric), "bus")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = pub.Close()
		_ = sub.Close()
		_ = b.Close()
		_ = tr.Close()
	})
	return b, pub, sub
}

func recvEvent(t *testing.T, ch <-chan Event) Event {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("event channel closed")
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("no event")
		return Event{}
	}
}

func expectNoEvent(t *testing.T, ch <-chan Event) {
	t.Helper()
	select {
	case ev := <-ch:
		t.Fatalf("unexpected event: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestMatchTopic(t *testing.T) {
	tests := []struct {
		pattern, topic string
		want           bool
	}{
		{"a/b", "a/b", true},
		{"a/b", "a/c", false},
		{"a/*", "a/b", true},
		{"a/*", "b/b", false},
		{"*", "anything", true},
		{"a*", "abc", true},
	}
	for _, tt := range tests {
		if got := MatchTopic(tt.pattern, tt.topic); got != tt.want {
			t.Errorf("MatchTopic(%q, %q) = %v", tt.pattern, tt.topic, got)
		}
	}
}

func TestPublishSubscribe(t *testing.T) {
	_, pub, sub := fixture(t)
	ch, err := sub.Subscribe("sensors/bp")
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("sensors/bp", []byte("120/80")); err != nil {
		t.Fatal(err)
	}
	ev := recvEvent(t, ch)
	if ev.Topic != "sensors/bp" || string(ev.Payload) != "120/80" {
		t.Fatalf("event = %+v", ev)
	}
}

func TestWildcardSubscription(t *testing.T) {
	_, pub, sub := fixture(t)
	ch, err := sub.Subscribe("sensors/*")
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("sensors/hr", []byte("72")); err != nil {
		t.Fatal(err)
	}
	if ev := recvEvent(t, ch); ev.Topic != "sensors/hr" {
		t.Fatalf("event = %+v", ev)
	}
	if err := pub.Publish("actuators/display", []byte("x")); err != nil {
		t.Fatal(err)
	}
	expectNoEvent(t, ch)
}

func TestMultipleSubscribers(t *testing.T) {
	b, pub, sub1 := fixture(t)
	_ = b
	// sub1's fabric is shared through the fixture's transports; reuse pub's
	// transport for the second subscriber by dialing again.
	ch1, err := sub1.Subscribe("t")
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := pub.Subscribe("t") // a client can both publish and subscribe
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("t", []byte("fanout")); err != nil {
		t.Fatal(err)
	}
	if ev := recvEvent(t, ch1); string(ev.Payload) != "fanout" {
		t.Fatalf("sub1: %+v", ev)
	}
	if ev := recvEvent(t, ch2); string(ev.Payload) != "fanout" {
		t.Fatalf("sub2: %+v", ev)
	}
}

func TestUnsubscribe(t *testing.T) {
	b, pub, sub := fixture(t)
	ch, err := sub.Subscribe("t")
	if err != nil {
		t.Fatal(err)
	}
	if b.Subscriptions() != 1 {
		t.Fatalf("subscriptions = %d", b.Subscriptions())
	}
	if err := sub.Unsubscribe("t"); err != nil {
		t.Fatal(err)
	}
	if b.Subscriptions() != 0 {
		t.Fatalf("subscriptions after unsubscribe = %d", b.Subscriptions())
	}
	if err := pub.Publish("t", []byte("late")); err != nil {
		t.Fatal(err)
	}
	select {
	case ev, ok := <-ch:
		if ok {
			t.Fatalf("event after unsubscribe: %+v", ev)
		}
		// closed channel is the expected outcome
	case <-time.After(50 * time.Millisecond):
		t.Fatal("unsubscribed channel not closed")
	}
}

func TestPublishNoSubscribers(t *testing.T) {
	b, pub, _ := fixture(t)
	if err := pub.Publish("void", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if b.Published.Load() != 1 {
		t.Fatalf("published = %d", b.Published.Load())
	}
}

func TestSubscribeSamePatternTwice(t *testing.T) {
	_, _, sub := fixture(t)
	ch1, err := sub.Subscribe("t")
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := sub.Subscribe("t")
	if err != nil {
		t.Fatal(err)
	}
	if ch1 != ch2 {
		t.Fatal("duplicate subscribe returned a different channel")
	}
}

func TestSubscriberDisconnectCleansUp(t *testing.T) {
	b, pub, sub := fixture(t)
	if _, err := sub.Subscribe("t"); err != nil {
		t.Fatal(err)
	}
	_ = sub.Close()
	// Allow the broker to notice the disconnect.
	deadline := time.Now().Add(5 * time.Second)
	for b.Subscriptions() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("broker kept subscriptions of a dead client")
		}
		time.Sleep(time.Millisecond)
	}
	if err := pub.Publish("t", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestClientCloseClosesChannels(t *testing.T) {
	_, _, sub := fixture(t)
	ch, err := sub.Subscribe("t")
	if err != nil {
		t.Fatal(err)
	}
	_ = sub.Close()
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("got event after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("channel not closed on client close")
	}
	_ = sub.Close() // idempotent
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial(transport.NewMem(transport.NewFabric()), "nowhere"); err == nil {
		t.Fatal("dial to nowhere succeeded")
	}
}
