// Package mq is the message-oriented interaction style (MOM, the paper's
// "message-based techniques" [64,65]): named FIFO queues on a broker, with
// push, blocking pop (long-poll), and bounded depth. Producers and consumers
// are fully decoupled in time — the asynchrony §3.6 demands.
package mq

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"ndsm/internal/endpoint"
	"ndsm/internal/reqlog"
	"ndsm/internal/simtime"
	"ndsm/internal/trace"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// Queue protocol topics.
const (
	topicPush  = "mq.push"
	topicPop   = "mq.pop"
	topicDepth = "mq.depth"
)

// MQ errors.
var (
	ErrEmpty     = errors.New("mq: queue empty")
	ErrQueueFull = errors.New("mq: queue full")
	ErrClosed    = errors.New("mq: closed")
)

// DefaultMaxDepth bounds each queue unless the broker is configured
// otherwise.
const DefaultMaxDepth = 1024

// queue is one named FIFO with blocked-consumer wakeup.
type queue struct {
	mu      sync.Mutex
	items   [][]byte
	max     int
	waiters []chan []byte // blocked pops, FIFO
}

func (q *queue) push(data []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	// Hand directly to the oldest blocked consumer when one exists.
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		select {
		case w <- data:
			return nil
		default:
			// Waiter gave up (timeout) — try the next.
		}
	}
	if len(q.items) >= q.max {
		return ErrQueueFull
	}
	q.items = append(q.items, data)
	return nil
}

// pop returns an item immediately or registers a waiter channel.
func (q *queue) pop() ([]byte, chan []byte) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) > 0 {
		item := q.items[0]
		q.items = q.items[1:]
		return item, nil
	}
	w := make(chan []byte, 1)
	q.waiters = append(q.waiters, w)
	return nil, w
}

func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Broker hosts named queues over a transport listener.
type Broker struct {
	clock    simtime.Clock
	maxDepth int

	mu       sync.Mutex
	queues   map[string]*queue
	conns    map[transport.Conn]struct{}
	listener transport.Listener
	closed   bool
	wg       sync.WaitGroup
}

// NewBroker starts a broker on the listener. maxDepth bounds each queue
// (DefaultMaxDepth if 0).
func NewBroker(l transport.Listener, maxDepth int, clock simtime.Clock) *Broker {
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	if clock == nil {
		clock = simtime.Real{}
	}
	b := &Broker{
		clock:    clock,
		maxDepth: maxDepth,
		queues:   make(map[string]*queue),
		conns:    make(map[transport.Conn]struct{}),
		listener: l,
	}
	b.wg.Add(1)
	go b.acceptLoop()
	return b
}

// Close stops the broker.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	conns := make([]transport.Conn, 0, len(b.conns))
	for c := range b.conns {
		conns = append(conns, c)
	}
	b.mu.Unlock()
	_ = b.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	b.wg.Wait()
	return nil
}

// Depth reports a queue's current backlog.
func (b *Broker) Depth(name string) int {
	b.mu.Lock()
	q := b.queues[name]
	b.mu.Unlock()
	if q == nil {
		return 0
	}
	return q.depth()
}

func (b *Broker) queue(name string) *queue {
	b.mu.Lock()
	defer b.mu.Unlock()
	q := b.queues[name]
	if q == nil {
		q = &queue{max: b.maxDepth}
		b.queues[name] = q
	}
	return q
}

func (b *Broker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.listener.Accept()
		if err != nil {
			return
		}
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			_ = conn.Close()
			return
		}
		b.conns[conn] = struct{}{}
		b.mu.Unlock()
		b.wg.Add(1)
		go b.serveConn(conn)
	}
}

// popRequest is the pop call's JSON body.
type popRequest struct {
	Queue string `json:"queue"`
	// WaitMillis long-polls up to this long for an item (0: immediate).
	WaitMillis int64 `json:"waitMillis"`
}

func (b *Broker) serveConn(conn transport.Conn) {
	defer b.wg.Done()
	defer func() {
		_ = conn.Close()
		b.mu.Lock()
		delete(b.conns, conn)
		b.mu.Unlock()
	}()
	// Conn.Send is safe for concurrent use (long-poll replies come from
	// their own goroutines), and unserialized sends coalesce on batching
	// transports.
	reply := func(req *wire.Message, kind wire.Kind, payload []byte) {
		_ = conn.Send(&wire.Message{Kind: kind, Corr: req.ID, Topic: req.Topic, Payload: payload})
	}
	for {
		req, err := conn.Recv()
		if err != nil {
			return
		}
		switch req.Topic {
		case topicPush:
			// Headers carry the queue name; payload is the item.
			name := req.Headers["queue"]
			if name == "" {
				reply(req, wire.KindError, []byte("mq: missing queue header"))
				continue
			}
			if err := b.queue(name).push(req.Payload); err != nil {
				reply(req, wire.KindError, []byte(err.Error()))
				continue
			}
			reply(req, wire.KindAck, nil)
		case topicPop:
			var pr popRequest
			if err := json.Unmarshal(req.Payload, &pr); err != nil || pr.Queue == "" {
				reply(req, wire.KindError, []byte("mq: bad pop request"))
				continue
			}
			// Long-poll in its own goroutine so one blocked pop doesn't
			// stall other requests on this connection.
			b.wg.Add(1)
			go func(req *wire.Message, pr popRequest) {
				defer b.wg.Done()
				item, waiter := b.queue(pr.Queue).pop()
				if waiter != nil {
					var timer <-chan time.Time
					if pr.WaitMillis > 0 {
						timer = b.clock.After(time.Duration(pr.WaitMillis) * time.Millisecond)
					} else {
						reply(req, wire.KindError, []byte(ErrEmpty.Error()))
						return
					}
					select {
					case item = <-waiter:
					case <-timer:
						reply(req, wire.KindError, []byte(ErrEmpty.Error()))
						return
					}
				}
				reply(req, wire.KindReply, item)
			}(req, pr)
		case topicDepth:
			name := req.Headers["queue"]
			reply(req, wire.KindReply, []byte(fmt.Sprintf("%d", b.Depth(name))))
		default:
			reply(req, wire.KindError, []byte(fmt.Sprintf("mq: unknown topic %q", req.Topic)))
		}
	}
}

// Client talks to a broker through the shared endpoint engine. Safe for
// concurrent use; pops long-poll, so replies can arrive out of order and are
// demultiplexed by correlation ID inside the caller.
type Client struct {
	caller   *endpoint.Caller
	traceRef *trace.Ref
	lane     endpoint.Lane
}

// Dial connects to a broker.
func Dial(tr transport.Transport, addr string) (*Client, error) {
	return DialLane(tr, addr, endpoint.LaneDefault)
}

// DialLane connects to a broker with every request classified into an
// admission lane (stamped in-band at the endpoint layer). Queue traffic is
// the textbook bulk workload: a client feeding a telemetry or batch pipeline
// dials with endpoint.LaneBulk so bounded servers along the path shed its
// pushes before any control-lane work.
func DialLane(tr transport.Transport, addr string, lane endpoint.Lane) (*Client, error) {
	return DialWith(tr, addr, DialConfig{Lane: lane})
}

// DialConfig tunes a client's lane classification and request analytics.
type DialConfig struct {
	// Lane classifies every request from this client (DialLane's parameter).
	Lane endpoint.Lane
	// ReqLog records one wide event per queue operation; nil disables it.
	ReqLog *reqlog.Recorder
}

// DialWith is Dial with full configuration.
func DialWith(tr transport.Transport, addr string, cfg DialConfig) (*Client, error) {
	c := &Client{traceRef: trace.NewRef(nil), lane: cfg.Lane}
	interceptors := []endpoint.ClientInterceptor{
		endpoint.WithTracing(c.traceRef, "mq.call"),
		endpoint.WithMetrics(nil, "mq.client", nil),
	}
	if cfg.ReqLog != nil {
		interceptors = append([]endpoint.ClientInterceptor{
			endpoint.WithWideEvents(endpoint.WideEventOptions{
				Recorder: cfg.ReqLog, Peer: addr,
			}),
		}, interceptors...)
	}
	caller, err := endpoint.NewCaller(tr, addr, endpoint.CallerOptions{
		Eager:        true,
		Interceptors: interceptors,
	})
	if err != nil {
		return nil, fmt.Errorf("mq: dial %s: %w", addr, err)
	}
	c.caller = caller
	return c, nil
}

// SetTracer installs the client's tracer (nil reverts to the process
// default).
func (c *Client) SetTracer(t *trace.Tracer) { c.traceRef.Set(t) }

// Close shuts the client down.
func (c *Client) Close() error { return c.caller.Close() }

func (c *Client) request(topic string, headers map[string]string, payload []byte) (*wire.Message, error) {
	m, err := c.caller.Do(&endpoint.Call{
		Topic:   topic,
		Headers: headers,
		Payload: payload,
		Lane:    c.lane,
		// The broker owns all waiting (long-poll bounded by WaitMillis), so
		// the client itself waits without a local deadline, as before.
		Timeout: endpoint.NoTimeout,
	})
	if err != nil {
		if re, ok := endpoint.IsRemote(err); ok {
			return nil, decodeErr([]byte(re.Msg))
		}
		if errors.Is(err, endpoint.ErrClosed) || errors.Is(err, endpoint.ErrUnavailable) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("mq: %w", err)
	}
	return m, nil
}

// Push enqueues an item.
func (c *Client) Push(queueName string, data []byte) error {
	_, err := c.request(topicPush, map[string]string{"queue": queueName}, data)
	return err
}

// PushAsync enqueues an item without blocking for the broker's ack: the
// request is pipelined onto the wire before PushAsync returns, so
// back-to-back pushes keep the connection full (and coalesce into batched
// frames on transports that support it). The returned handle resolves to
// exactly what Push would have returned.
func (c *Client) PushAsync(queueName string, data []byte) *PushHandle {
	fut := c.caller.Go(&endpoint.Call{
		Topic:   topicPush,
		Headers: map[string]string{"queue": queueName},
		Payload: data,
		Lane:    c.lane,
		Timeout: endpoint.NoTimeout,
	})
	return &PushHandle{fut: fut}
}

// PushHandle is a pending PushAsync: a promise for the broker's ack.
type PushHandle struct{ fut *endpoint.Future }

// Wait blocks for the acknowledgement and returns Push's error (nil once
// the item is durably queued, ErrQueueFull/ErrClosed/... otherwise).
func (h *PushHandle) Wait() error {
	_, err := h.fut.Wait()
	if err != nil {
		if re, ok := endpoint.IsRemote(err); ok {
			return decodeErr([]byte(re.Msg))
		}
		if errors.Is(err, endpoint.ErrClosed) || errors.Is(err, endpoint.ErrUnavailable) {
			return ErrClosed
		}
		return fmt.Errorf("mq: %w", err)
	}
	return nil
}

// Pop dequeues the oldest item, long-polling up to wait. It returns ErrEmpty
// when nothing arrives in time.
func (c *Client) Pop(queueName string, wait time.Duration) ([]byte, error) {
	body, err := json.Marshal(popRequest{Queue: queueName, WaitMillis: wait.Milliseconds()})
	if err != nil {
		return nil, fmt.Errorf("mq: encode pop: %w", err)
	}
	m, err := c.request(topicPop, nil, body)
	if err != nil {
		return nil, err
	}
	return m.Payload, nil
}

// Depth reports a queue's backlog.
func (c *Client) Depth(queueName string) (int, error) {
	m, err := c.request(topicDepth, map[string]string{"queue": queueName}, nil)
	if err != nil {
		return 0, err
	}
	var n int
	if _, err := fmt.Sscanf(string(m.Payload), "%d", &n); err != nil {
		return 0, fmt.Errorf("mq: bad depth reply %q", m.Payload)
	}
	return n, nil
}

// decodeErr maps the broker's error strings back to sentinel errors where
// possible.
func decodeErr(payload []byte) error {
	s := string(payload)
	switch s {
	case ErrEmpty.Error():
		return ErrEmpty
	case ErrQueueFull.Error():
		return ErrQueueFull
	default:
		return errors.New(s)
	}
}
