package mq

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ndsm/internal/discovery"
	"ndsm/internal/svcdesc"
	"ndsm/internal/transport"
)

func fixture(t *testing.T, maxDepth int) (*Broker, *Client) {
	t.Helper()
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	l, err := tr.Listen("mq")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBroker(l, maxDepth, nil)
	c, err := Dial(transport.NewMem(fabric), "mq")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = c.Close()
		_ = b.Close()
		_ = tr.Close()
	})
	return b, c
}

func TestPushPopFIFO(t *testing.T) {
	_, c := fixture(t, 0)
	for i := 0; i < 5; i++ {
		if err := c.Push("jobs", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		got, err := c.Pop("jobs", 0)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("pop %d = %v, want %d", i, got, i)
		}
	}
}

func TestPopEmptyImmediate(t *testing.T) {
	_, c := fixture(t, 0)
	if _, err := c.Pop("empty", 0); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestPopLongPollTimesOut(t *testing.T) {
	_, c := fixture(t, 0)
	start := time.Now()
	_, err := c.Pop("empty", 50*time.Millisecond)
	if !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("long poll returned too early")
	}
}

func TestPopLongPollWakesOnPush(t *testing.T) {
	_, c := fixture(t, 0)
	c2, err := Dial(transport.NewMem(transport.NewFabric()), "mq")
	if err == nil {
		_ = c2.Close()
		t.Fatal("expected isolated fabric dial to fail") // sanity of fixture
	}

	got := make(chan []byte, 1)
	errCh := make(chan error, 1)
	go func() {
		data, err := c.Pop("wake", 5*time.Second)
		if err != nil {
			errCh <- err
			return
		}
		got <- data
	}()
	time.Sleep(20 * time.Millisecond) // let the pop block
	if err := c.Push("wake", []byte("ding")); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-got:
		if string(data) != "ding" {
			t.Fatalf("got %q", data)
		}
	case err := <-errCh:
		t.Fatalf("pop failed: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("blocked pop never woke")
	}
}

func TestQueueFull(t *testing.T) {
	_, c := fixture(t, 2)
	if err := c.Push("q", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Push("q", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := c.Push("q", []byte("3")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestDepth(t *testing.T) {
	b, c := fixture(t, 0)
	if err := c.Push("q", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Push("q", []byte("y")); err != nil {
		t.Fatal(err)
	}
	n, err := c.Depth("q")
	if err != nil || n != 2 {
		t.Fatalf("Depth = %d, %v", n, err)
	}
	if b.Depth("q") != 2 {
		t.Fatal("broker depth disagrees")
	}
	if b.Depth("missing") != 0 {
		t.Fatal("missing queue should have depth 0")
	}
}

func TestQueuesAreIndependent(t *testing.T) {
	_, c := fixture(t, 0)
	if err := c.Push("a", []byte("for-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pop("b", 0); !errors.Is(err, ErrEmpty) {
		t.Fatalf("queue b should be empty: %v", err)
	}
	got, err := c.Pop("a", 0)
	if err != nil || string(got) != "for-a" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestMultipleConsumersEachGetOne(t *testing.T) {
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	t.Cleanup(func() { _ = tr.Close() })
	l, err := tr.Listen("mq")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBroker(l, 0, nil)
	t.Cleanup(func() { _ = b.Close() })

	const consumers = 4
	var clients []*Client
	for i := 0; i < consumers; i++ {
		c, err := Dial(transport.NewMem(fabric), "mq")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = c.Close() })
		clients = append(clients, c)
	}

	var mu sync.Mutex
	seen := map[string]int{}
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			data, err := c.Pop("work", 5*time.Second)
			if err != nil {
				t.Errorf("pop: %v", err)
				return
			}
			mu.Lock()
			seen[string(data)]++
			mu.Unlock()
		}(c)
	}
	time.Sleep(20 * time.Millisecond)
	producer, err := Dial(transport.NewMem(fabric), "mq")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = producer.Close() })
	for i := 0; i < consumers; i++ {
		if err := producer.Push("work", []byte(fmt.Sprintf("item-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != consumers {
		t.Fatalf("items duplicated or lost: %v", seen)
	}
	for item, count := range seen {
		if count != 1 {
			t.Fatalf("item %s delivered %d times", item, count)
		}
	}
}

func TestClientClosed(t *testing.T) {
	_, c := fixture(t, 0)
	_ = c.Close()
	if err := c.Push("q", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	_ = c.Close()
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial(transport.NewMem(transport.NewFabric()), "nowhere"); err == nil {
		t.Fatal("dial to nowhere succeeded")
	}
}

func TestPushAsyncPipelined(t *testing.T) {
	_, c := fixture(t, 0)
	const n = 20
	handles := make([]*PushHandle, n)
	for i := range handles {
		handles[i] = c.PushAsync("jobs", []byte{byte(i)})
	}
	for i, h := range handles {
		if err := h.Wait(); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	// Pipelined pushes from one goroutine stay FIFO: one ordered connection,
	// broker enqueues inline.
	for i := 0; i < n; i++ {
		got, err := c.Pop("jobs", 0)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("pop %d = %v", i, got)
		}
	}
}

func TestPushAsyncQueueFull(t *testing.T) {
	_, c := fixture(t, 1)
	if err := c.PushAsync("q", []byte("a")).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := c.PushAsync("q", []byte("b")).Wait(); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestDialServiceResolvesBroker(t *testing.T) {
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	l, err := tr.Listen("broker-1")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBroker(l, 0, nil)
	defer b.Close() //nolint:errcheck

	reg := discovery.NewStore(nil, 0)
	if err := reg.Register(&svcdesc.Description{
		Name:        "mq/telemetry",
		Provider:    "broker-1",
		Reliability: 0.9,
		PowerLevel:  1,
	}); err != nil {
		t.Fatal(err)
	}

	c, err := DialService(transport.NewMem(fabric), reg, &svcdesc.Query{Name: "mq/*"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	if err := c.Push("q", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Pop("q", 0)
	if err != nil || string(got) != "hello" {
		t.Fatalf("pop = %q, %v", got, err)
	}

	if _, err := DialService(transport.NewMem(fabric), reg, &svcdesc.Query{Name: "nothing"}); err == nil {
		t.Fatal("DialService matched a broker for an empty query result")
	}
}
