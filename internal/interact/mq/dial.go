package mq

import (
	"fmt"

	"ndsm/internal/discovery"
	"ndsm/internal/svcdesc"
	"ndsm/internal/transport"
)

// DialService connects to a broker found through the registry instead of a
// fixed address: the query is resolved (through whatever Resolver the caller
// runs — central, cluster, or cached) and the matches are dialed in order
// until one accepts. Brokers advertise like any other service, so the MOM
// style gets registry failover and lookup caching for free.
func DialService(tr transport.Transport, r discovery.Resolver, q *svcdesc.Query) (*Client, error) {
	descs, err := r.Lookup(q)
	if err != nil {
		return nil, fmt.Errorf("mq: resolve broker: %w", err)
	}
	if len(descs) == 0 {
		return nil, fmt.Errorf("mq: no broker matches %q", q.Name)
	}
	var firstErr error
	for _, d := range descs {
		c, err := Dial(tr, d.Provider)
		if err == nil {
			return c, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, fmt.Errorf("mq: every advertised broker refused: %w", firstErr)
}
