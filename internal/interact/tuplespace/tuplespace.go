// Package tuplespace is the shared-memory interaction style: a Linda-like
// tuple space (the paper cites T Spaces [69] and LIME [68,100], the latter
// by this paper's second author). Processes communicate by writing tuples
// into a shared space (Out) and reading (Rd) or consuming (In) tuples by
// template matching — fully decoupled in both time and space.
//
// Tuples are ordered string fields; templates match per field with "*" as
// the wildcard. A Space can be used in-process or served over any Transport.
package tuplespace

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"ndsm/internal/simtime"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// Wildcard matches any field value in a template.
const Wildcard = "*"

// Tuplespace errors.
var (
	ErrNoMatch = errors.New("tuplespace: no matching tuple")
	ErrClosed  = errors.New("tuplespace: closed")
)

// Tuple is an ordered sequence of string fields.
type Tuple []string

// Matches reports whether the tuple satisfies the template: equal length,
// each template field equal or Wildcard.
func (t Tuple) Matches(template Tuple) bool {
	if len(t) != len(template) {
		return false
	}
	for i, f := range template {
		if f != Wildcard && f != t[i] {
			return false
		}
	}
	return true
}

func (t Tuple) clone() Tuple { return append(Tuple(nil), t...) }

// waiter is a blocked In/Rd.
type waiter struct {
	template Tuple
	consume  bool
	ch       chan Tuple // capacity 1
}

// notification is a standing subscription to future matching tuples
// (a LIME-style reaction).
type notification struct {
	template Tuple
	ch       chan Tuple
	// consume removes the matching tuple instead of copying it.
	consume bool
}

// Space is the in-process tuple space. All methods are safe for concurrent
// use.
type Space struct {
	clock simtime.Clock

	mu       sync.Mutex
	tuples   []Tuple
	waiters  []*waiter
	notifies map[*notification]struct{}
	// notifyDropped counts reaction deliveries lost to full channels.
	notifyDropped int64
}

// NewSpace returns an empty space timing blocking operations against clock
// (real if nil).
func NewSpace(clock simtime.Clock) *Space {
	if clock == nil {
		clock = simtime.Real{}
	}
	return &Space{clock: clock}
}

// Len reports how many tuples the space holds.
func (s *Space) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tuples)
}

// Out writes a tuple into the space, waking matching blocked readers: every
// pending Rd gets a copy; the oldest pending In consumes it (in which case
// the tuple is not stored). Standing notifications (Notify) receive copies;
// a consuming notification (NotifyTake) may also claim the tuple.
func (s *Space) Out(t Tuple) {
	t = t.clone()
	s.mu.Lock()
	defer s.mu.Unlock()

	consumed := false
	// Reactions fire before blocked readers: they are standing requests
	// registered earlier by definition.
	for n := range s.notifies {
		if !t.Matches(n.template) {
			continue
		}
		if n.consume && consumed {
			continue
		}
		select {
		case n.ch <- t.clone():
			if n.consume {
				consumed = true
			}
		default:
			s.notifyDropped++
		}
	}

	kept := s.waiters[:0]
	for _, w := range s.waiters {
		if consumed && w.consume {
			kept = append(kept, w)
			continue
		}
		if !t.Matches(w.template) {
			kept = append(kept, w)
			continue
		}
		select {
		case w.ch <- t.clone():
			if w.consume {
				consumed = true
			}
			// satisfied waiter is dropped from the list either way
		default:
			// Waiter already satisfied or timed out; drop it.
		}
	}
	s.waiters = kept
	if !consumed {
		s.tuples = append(s.tuples, t)
	}
}

// notifyBuffer is each reaction channel's depth.
const notifyBuffer = 64

// Notify registers a standing reaction: every future tuple matching the
// template is copied to the returned channel (the tuple is still stored).
// Call the cancel function to deregister; the channel is closed then.
func (s *Space) Notify(template Tuple) (<-chan Tuple, func()) {
	return s.notify(template, false)
}

// NotifyTake is the consuming variant: matching tuples are delivered to the
// channel instead of being stored (at most one consumer claims each tuple).
func (s *Space) NotifyTake(template Tuple) (<-chan Tuple, func()) {
	return s.notify(template, true)
}

func (s *Space) notify(template Tuple, consume bool) (<-chan Tuple, func()) {
	n := &notification{template: template.clone(), ch: make(chan Tuple, notifyBuffer), consume: consume}
	s.mu.Lock()
	if s.notifies == nil {
		s.notifies = make(map[*notification]struct{})
	}
	s.notifies[n] = struct{}{}
	s.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			s.mu.Lock()
			delete(s.notifies, n)
			s.mu.Unlock()
			close(n.ch)
		})
	}
	return n.ch, cancel
}

// NotifyDropped reports reaction deliveries lost to full channels.
func (s *Space) NotifyDropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.notifyDropped
}

// RdP returns a copy of a matching tuple without removing it (non-blocking).
func (s *Space) RdP(template Tuple) (Tuple, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.tuples {
		if t.Matches(template) {
			return t.clone(), true
		}
	}
	return nil, false
}

// InP removes and returns a matching tuple (non-blocking).
func (s *Space) InP(template Tuple) (Tuple, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, t := range s.tuples {
		if t.Matches(template) {
			s.tuples = append(s.tuples[:i], s.tuples[i+1:]...)
			return t, true
		}
	}
	return nil, false
}

// Rd blocks until a matching tuple exists (or timeout) and returns a copy.
func (s *Space) Rd(template Tuple, timeout time.Duration) (Tuple, error) {
	return s.blocking(template, false, timeout)
}

// In blocks until a matching tuple exists (or timeout), removes and returns
// it.
func (s *Space) In(template Tuple, timeout time.Duration) (Tuple, error) {
	return s.blocking(template, true, timeout)
}

func (s *Space) blocking(template Tuple, consume bool, timeout time.Duration) (Tuple, error) {
	// Fast path.
	if consume {
		if t, ok := s.InP(template); ok {
			return t, nil
		}
	} else {
		if t, ok := s.RdP(template); ok {
			return t, nil
		}
	}
	w := &waiter{template: template.clone(), consume: consume, ch: make(chan Tuple, 1)}
	s.mu.Lock()
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()

	var timer <-chan time.Time
	if timeout > 0 {
		timer = s.clock.After(timeout)
	}
	select {
	case t := <-w.ch:
		return t, nil
	case <-timer:
		s.mu.Lock()
		for i, other := range s.waiters {
			if other == w {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		// A racing Out may have satisfied us between timeout and removal.
		select {
		case t := <-w.ch:
			return t, nil
		default:
		}
		return nil, fmt.Errorf("%w: %v after %v", ErrNoMatch, template, timeout)
	}
}

// --- remote access ---

// Protocol topics.
const (
	topicOut = "ts.out"
	topicIn  = "ts.in"
	topicRd  = "ts.rd"
)

// tsRequest is the remote operation body.
type tsRequest struct {
	Tuple      Tuple `json:"tuple"`
	WaitMillis int64 `json:"waitMillis,omitempty"`
}

// Server exposes a Space over a transport listener.
type Server struct {
	space *Space

	mu       sync.Mutex
	conns    map[transport.Conn]struct{}
	listener transport.Listener
	closed   bool
	wg       sync.WaitGroup
}

// NewServer starts serving space on l.
func NewServer(space *Space, l transport.Listener) *Server {
	s := &Server{space: space, conns: make(map[transport.Conn]struct{}), listener: l}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Space returns the served space.
func (s *Server) Space() *Space { return s.space }

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	_ = s.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn transport.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var sendMu sync.Mutex
	reply := func(req *wire.Message, kind wire.Kind, payload []byte) {
		sendMu.Lock()
		defer sendMu.Unlock()
		_ = conn.Send(&wire.Message{Kind: kind, Corr: req.ID, Topic: req.Topic, Payload: payload})
	}
	for {
		req, err := conn.Recv()
		if err != nil {
			return
		}
		var body tsRequest
		if err := json.Unmarshal(req.Payload, &body); err != nil {
			reply(req, wire.KindError, []byte("tuplespace: bad request"))
			continue
		}
		switch req.Topic {
		case topicOut:
			s.space.Out(body.Tuple)
			reply(req, wire.KindAck, nil)
		case topicIn, topicRd:
			// Potentially blocking: serve in its own goroutine.
			s.wg.Add(1)
			go func(req *wire.Message, body tsRequest) {
				defer s.wg.Done()
				wait := time.Duration(body.WaitMillis) * time.Millisecond
				var (
					t   Tuple
					err error
				)
				if req.Topic == topicIn {
					if wait <= 0 {
						if got, ok := s.space.InP(body.Tuple); ok {
							t = got
						} else {
							err = ErrNoMatch
						}
					} else {
						t, err = s.space.In(body.Tuple, wait)
					}
				} else {
					if wait <= 0 {
						if got, ok := s.space.RdP(body.Tuple); ok {
							t = got
						} else {
							err = ErrNoMatch
						}
					} else {
						t, err = s.space.Rd(body.Tuple, wait)
					}
				}
				if err != nil {
					reply(req, wire.KindError, []byte(ErrNoMatch.Error()))
					return
				}
				out, merr := json.Marshal(t)
				if merr != nil {
					reply(req, wire.KindError, []byte("tuplespace: encode tuple"))
					return
				}
				reply(req, wire.KindReply, out)
			}(req, body)
		default:
			reply(req, wire.KindError, []byte(fmt.Sprintf("tuplespace: unknown topic %q", req.Topic)))
		}
	}
}

// Client accesses a remote Space.
type Client struct {
	mu      sync.Mutex
	conn    transport.Conn
	nextID  uint64
	waiters map[uint64]chan *wire.Message
	closed  bool
	done    chan struct{}
}

// Dial connects to a tuple space server.
func Dial(tr transport.Transport, addr string) (*Client, error) {
	conn, err := tr.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("tuplespace: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:    conn,
		waiters: make(map[uint64]chan *wire.Message),
		done:    make(chan struct{}),
	}
	go c.demux()
	return c, nil
}

// Close shuts the client down.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}

func (c *Client) demux() {
	defer close(c.done)
	for {
		m, err := c.conn.Recv()
		if err != nil {
			return
		}
		c.mu.Lock()
		ch := c.waiters[m.Corr]
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- m:
			default:
			}
		}
	}
}

func (c *Client) request(topic string, body tsRequest) (*wire.Message, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("tuplespace: encode request: %w", err)
	}
	replyCh := make(chan *wire.Message, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextID++
	id := c.nextID
	c.waiters[id] = replyCh
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, id)
		c.mu.Unlock()
	}()
	req := &wire.Message{ID: id, Kind: wire.KindRequest, Topic: topic, Payload: payload}
	if err := c.conn.Send(req); err != nil {
		return nil, fmt.Errorf("tuplespace: send: %w", err)
	}
	select {
	case m := <-replyCh:
		return m, nil
	case <-c.done:
		return nil, ErrClosed
	}
}

// Out writes a tuple into the remote space.
func (c *Client) Out(t Tuple) error {
	m, err := c.request(topicOut, tsRequest{Tuple: t})
	if err != nil {
		return err
	}
	if m.Kind == wire.KindError {
		return errors.New(string(m.Payload))
	}
	return nil
}

// In removes and returns a matching tuple, waiting up to wait.
func (c *Client) In(template Tuple, wait time.Duration) (Tuple, error) {
	return c.take(topicIn, template, wait)
}

// Rd copies a matching tuple, waiting up to wait.
func (c *Client) Rd(template Tuple, wait time.Duration) (Tuple, error) {
	return c.take(topicRd, template, wait)
}

func (c *Client) take(topic string, template Tuple, wait time.Duration) (Tuple, error) {
	m, err := c.request(topic, tsRequest{Tuple: template, WaitMillis: wait.Milliseconds()})
	if err != nil {
		return nil, err
	}
	if m.Kind == wire.KindError {
		if string(m.Payload) == ErrNoMatch.Error() {
			return nil, ErrNoMatch
		}
		return nil, errors.New(string(m.Payload))
	}
	var t Tuple
	if err := json.Unmarshal(m.Payload, &t); err != nil {
		return nil, fmt.Errorf("tuplespace: decode tuple: %w", err)
	}
	return t, nil
}
