package tuplespace

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"ndsm/internal/transport"
)

func TestTupleMatches(t *testing.T) {
	tests := []struct {
		tuple, template Tuple
		want            bool
	}{
		{Tuple{"a", "b"}, Tuple{"a", "b"}, true},
		{Tuple{"a", "b"}, Tuple{"a", "*"}, true},
		{Tuple{"a", "b"}, Tuple{"*", "*"}, true},
		{Tuple{"a", "b"}, Tuple{"a", "c"}, false},
		{Tuple{"a", "b"}, Tuple{"a"}, false},
		{Tuple{"a"}, Tuple{"a", "*"}, false},
		{Tuple{}, Tuple{}, true},
	}
	for _, tt := range tests {
		if got := tt.tuple.Matches(tt.template); got != tt.want {
			t.Errorf("%v matches %v = %v", tt.tuple, tt.template, got)
		}
	}
}

func TestOutRdPInP(t *testing.T) {
	s := NewSpace(nil)
	s.Out(Tuple{"temp", "room1", "22.5"})
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	got, ok := s.RdP(Tuple{"temp", "*", "*"})
	if !ok || got[2] != "22.5" {
		t.Fatalf("RdP = %v, %v", got, ok)
	}
	if s.Len() != 1 {
		t.Fatal("RdP removed the tuple")
	}
	got, ok = s.InP(Tuple{"temp", "room1", "*"})
	if !ok || got[1] != "room1" {
		t.Fatalf("InP = %v, %v", got, ok)
	}
	if s.Len() != 0 {
		t.Fatal("InP did not remove the tuple")
	}
	if _, ok := s.InP(Tuple{"temp", "*", "*"}); ok {
		t.Fatal("second InP matched")
	}
}

func TestRdPReturnsCopy(t *testing.T) {
	s := NewSpace(nil)
	s.Out(Tuple{"k", "v"})
	got, _ := s.RdP(Tuple{"k", "*"})
	got[1] = "tampered"
	again, _ := s.RdP(Tuple{"k", "*"})
	if again[1] != "v" {
		t.Fatal("RdP exposed internal tuple")
	}
}

func TestOutClonesInput(t *testing.T) {
	s := NewSpace(nil)
	in := Tuple{"k", "v"}
	s.Out(in)
	in[1] = "tampered"
	got, _ := s.RdP(Tuple{"k", "*"})
	if got[1] != "v" {
		t.Fatal("Out shared caller's tuple")
	}
}

func TestInBlocksUntilOut(t *testing.T) {
	s := NewSpace(nil)
	got := make(chan Tuple, 1)
	errCh := make(chan error, 1)
	go func() {
		tp, err := s.In(Tuple{"job", "*"}, 5*time.Second)
		if err != nil {
			errCh <- err
			return
		}
		got <- tp
	}()
	time.Sleep(20 * time.Millisecond)
	s.Out(Tuple{"job", "42"})
	select {
	case tp := <-got:
		if tp[1] != "42" {
			t.Fatalf("got %v", tp)
		}
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("In never woke")
	}
	if s.Len() != 0 {
		t.Fatal("consumed tuple still stored")
	}
}

func TestInTimesOut(t *testing.T) {
	s := NewSpace(nil)
	_, err := s.In(Tuple{"never"}, 30*time.Millisecond)
	if !errors.Is(err, ErrNoMatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestRdDoesNotConsume(t *testing.T) {
	s := NewSpace(nil)
	done := make(chan Tuple, 2)
	for i := 0; i < 2; i++ {
		go func() {
			tp, err := s.Rd(Tuple{"x", "*"}, 5*time.Second)
			if err == nil {
				done <- tp
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	s.Out(Tuple{"x", "1"})
	// Both blocked readers see the single tuple.
	for i := 0; i < 2; i++ {
		select {
		case tp := <-done:
			if tp[1] != "1" {
				t.Fatalf("got %v", tp)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("rd waiter starved")
		}
	}
	if s.Len() != 1 {
		t.Fatal("rd consumed the tuple")
	}
}

func TestOnlyOneInConsumes(t *testing.T) {
	s := NewSpace(nil)
	var okCount, errCount int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.In(Tuple{"one", "*"}, 200*time.Millisecond)
			mu.Lock()
			if err == nil {
				okCount++
			} else {
				errCount++
			}
			mu.Unlock()
		}()
	}
	time.Sleep(20 * time.Millisecond)
	s.Out(Tuple{"one", "only"})
	wg.Wait()
	if okCount != 1 || errCount != 3 {
		t.Fatalf("ok=%d err=%d, want 1/3", okCount, errCount)
	}
}

// Property: any tuple matches a template of the same length made of
// wildcards, and matches itself.
func TestMatchProperty(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	f := func() bool {
		n := r.Intn(6)
		tp := make(Tuple, n)
		wild := make(Tuple, n)
		for i := range tp {
			tp[i] = fmt.Sprintf("f%d", r.Intn(10))
			wild[i] = Wildcard
		}
		if !tp.Matches(tp) || !tp.Matches(wild) {
			return false
		}
		// Changing one field breaks the exact match (unless wildcarded).
		if n > 0 {
			broken := tp.clone()
			broken[0] = "different-value"
			if tp.Matches(broken) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Out then InP with the same tuple as template always retrieves it.
func TestOutInProperty(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	s := NewSpace(nil)
	f := func() bool {
		n := 1 + r.Intn(5)
		tp := make(Tuple, n)
		for i := range tp {
			tp[i] = fmt.Sprintf("v%d", r.Intn(100))
		}
		s.Out(tp)
		got, ok := s.InP(tp)
		return ok && got.Matches(tp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- remote access ---

func remoteFixture(t *testing.T) (*Server, *Client) {
	t.Helper()
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	l, err := tr.Listen("ts")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewSpace(nil), l)
	cli, err := Dial(transport.NewMem(fabric), "ts")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cli.Close()
		_ = srv.Close()
		_ = tr.Close()
	})
	return srv, cli
}

func TestRemoteOutInRd(t *testing.T) {
	srv, cli := remoteFixture(t)
	if err := cli.Out(Tuple{"config", "rate", "10"}); err != nil {
		t.Fatal(err)
	}
	if srv.Space().Len() != 1 {
		t.Fatal("tuple not stored server-side")
	}
	got, err := cli.Rd(Tuple{"config", "*", "*"}, 0)
	if err != nil || got[2] != "10" {
		t.Fatalf("Rd = %v, %v", got, err)
	}
	got, err = cli.In(Tuple{"config", "rate", "*"}, 0)
	if err != nil || got[2] != "10" {
		t.Fatalf("In = %v, %v", got, err)
	}
	if srv.Space().Len() != 0 {
		t.Fatal("In did not consume")
	}
}

func TestRemoteNoMatch(t *testing.T) {
	_, cli := remoteFixture(t)
	if _, err := cli.In(Tuple{"nope"}, 0); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("err = %v", err)
	}
	if _, err := cli.Rd(Tuple{"nope"}, 30*time.Millisecond); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoteBlockingIn(t *testing.T) {
	srv, cli := remoteFixture(t)
	got := make(chan Tuple, 1)
	go func() {
		tp, err := cli.In(Tuple{"job", "*"}, 5*time.Second)
		if err == nil {
			got <- tp
		}
	}()
	time.Sleep(20 * time.Millisecond)
	srv.Space().Out(Tuple{"job", "7"})
	select {
	case tp := <-got:
		if tp[1] != "7" {
			t.Fatalf("got %v", tp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("remote blocking In never woke")
	}
}

func TestRemoteTwoClientsCoordinate(t *testing.T) {
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	t.Cleanup(func() { _ = tr.Close() })
	l, err := tr.Listen("ts")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewSpace(nil), l)
	t.Cleanup(func() { _ = srv.Close() })
	producer, err := Dial(transport.NewMem(fabric), "ts")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = producer.Close() })
	consumer, err := Dial(transport.NewMem(fabric), "ts")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = consumer.Close() })

	got := make(chan Tuple, 1)
	go func() {
		tp, err := consumer.In(Tuple{"msg", "*"}, 5*time.Second)
		if err == nil {
			got <- tp
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if err := producer.Out(Tuple{"msg", "hello"}); err != nil {
		t.Fatal(err)
	}
	select {
	case tp := <-got:
		if tp[1] != "hello" {
			t.Fatalf("got %v", tp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cross-client coordination failed")
	}
}

func TestRemoteClientClosed(t *testing.T) {
	_, cli := remoteFixture(t)
	_ = cli.Close()
	if err := cli.Out(Tuple{"x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	_ = cli.Close()
}

func TestRemoteDialFailure(t *testing.T) {
	if _, err := Dial(transport.NewMem(transport.NewFabric()), "nowhere"); err == nil {
		t.Fatal("dial to nowhere succeeded")
	}
}

func TestNotifyReceivesFutureTuples(t *testing.T) {
	s := NewSpace(nil)
	s.Out(Tuple{"pre", "1"}) // before registration: not delivered
	ch, cancel := s.Notify(Tuple{"pre", "*"})
	defer cancel()
	select {
	case tp := <-ch:
		t.Fatalf("past tuple delivered: %v", tp)
	default:
	}
	s.Out(Tuple{"pre", "2"})
	select {
	case tp := <-ch:
		if tp[1] != "2" {
			t.Fatalf("got %v", tp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reaction never fired")
	}
	// Non-consuming: the tuple is stored too.
	if _, ok := s.RdP(Tuple{"pre", "2"}); !ok {
		t.Fatal("notified tuple not stored")
	}
}

func TestNotifyCancel(t *testing.T) {
	s := NewSpace(nil)
	ch, cancel := s.Notify(Tuple{"x"})
	cancel()
	cancel() // idempotent
	s.Out(Tuple{"x"})
	if _, ok := <-ch; ok {
		t.Fatal("cancelled reaction received a tuple")
	}
}

func TestNotifyTakeConsumes(t *testing.T) {
	s := NewSpace(nil)
	ch, cancel := s.NotifyTake(Tuple{"job", "*"})
	defer cancel()
	s.Out(Tuple{"job", "42"})
	select {
	case tp := <-ch:
		if tp[1] != "42" {
			t.Fatalf("got %v", tp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("consuming reaction never fired")
	}
	if s.Len() != 0 {
		t.Fatal("consumed tuple still stored")
	}
}

func TestNotifyTakeSingleClaim(t *testing.T) {
	s := NewSpace(nil)
	ch1, cancel1 := s.NotifyTake(Tuple{"one", "*"})
	defer cancel1()
	ch2, cancel2 := s.NotifyTake(Tuple{"one", "*"})
	defer cancel2()
	s.Out(Tuple{"one", "only"})
	delivered := 0
	for _, ch := range []<-chan Tuple{ch1, ch2} {
		select {
		case <-ch:
			delivered++
		case <-time.After(50 * time.Millisecond):
		}
	}
	if delivered != 1 {
		t.Fatalf("delivered to %d consuming reactions, want 1", delivered)
	}
}

func TestNotifyOverflowCounted(t *testing.T) {
	s := NewSpace(nil)
	_, cancel := s.Notify(Tuple{"flood", "*"})
	defer cancel()
	for i := 0; i < notifyBuffer+10; i++ {
		s.Out(Tuple{"flood", "x"})
	}
	if got := s.NotifyDropped(); got != 10 {
		t.Fatalf("NotifyDropped = %d, want 10", got)
	}
}
