package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ndsm/internal/discovery"
	"ndsm/internal/endpoint"
	"ndsm/internal/qos"
	"ndsm/internal/svcdesc"
	"ndsm/internal/transaction"
)

// Binding is a QoS-managed consumer-side attachment to the best feasible
// supplier for a spec. Every request is measured against the spec's benefit
// function; when the supplier fails or the achieved QoS violates the floor,
// the binding re-matches and rebinds transparently — the §3.4 graceful
// degradation loop.
type Binding struct {
	node *Node
	spec *qos.Spec
	txn  *transaction.Txn

	// QoS floor triggering proactive rebinds (see BindOptions).
	minRatio   float64
	minBenefit float64
	minSamples int
	lane       endpoint.Lane

	mu     sync.Mutex
	peer   string
	caller *endpoint.Caller
	closed bool

	// Rebinds counts supplier migrations.
	Rebinds atomic.Int64
}

// BindOptions tunes a binding's degradation policy.
type BindOptions struct {
	// MinDeliveryRatio and MinBenefit define the achieved-QoS floor; when
	// either is violated (after MinSamples attempts) the next request
	// rebinds first. Zero values disable proactive rebinding.
	MinDeliveryRatio float64
	MinBenefit       float64
	MinSamples       int
	// Lane classifies every request on this binding for admission control at
	// the supplier (stamped in-band at the endpoint layer). A periodic
	// control loop binds with endpoint.LaneControl so a bulk flood cannot
	// shed its requests; background transfers bind with endpoint.LaneBulk.
	Lane endpoint.Lane
}

// Bind discovers, selects, and connects the best supplier for spec.
func (n *Node) Bind(spec *qos.Spec, opts BindOptions) (*Binding, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrNodeClosed
	}
	n.mu.Unlock()

	b := &Binding{
		node:       n,
		spec:       spec,
		minRatio:   opts.MinDeliveryRatio,
		minBenefit: opts.MinBenefit,
		minSamples: opts.MinSamples,
		lane:       opts.Lane,
	}
	if b.minSamples <= 0 {
		b.minSamples = 10
	}
	peer, err := b.selectPeer("")
	if err != nil {
		return nil, err
	}
	if err := b.connect(peer); err != nil {
		return nil, err
	}
	b.txn = n.table.Open(spec.Query.Name, peer, transaction.OnDemand, 0, spec.Benefit, n.clock.Now())
	n.mu.Lock()
	n.bindings = append(n.bindings, b)
	n.mu.Unlock()
	n.Events.Publish(Event{Type: EventBound, Service: spec.Query.Name, Peer: peer})
	return b, nil
}

// Peer returns the currently bound supplier address.
func (b *Binding) Peer() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peer
}

// Tracker returns the binding's achieved-QoS tracker.
func (b *Binding) Tracker() *qos.Tracker { return b.txn.Tracker }

// selectPeer ranks current candidates, excluding one peer (the failed one).
// With a health monitor attached, suspected peers are skipped too — unless
// that empties the candidate set, in which case the unfiltered set is used:
// the detector is allowed to be wrong (it is an unreliable failure detector
// by construction), so false suspicion must never strand the binding.
func (b *Binding) selectPeer(exclude string) (string, error) {
	candidates, err := b.node.registry.Lookup(&b.spec.Query)
	if err != nil {
		return "", fmt.Errorf("core: lookup %s: %w", b.spec.Query.Name, err)
	}
	filtered := candidates[:0]
	for _, c := range candidates {
		if c.Provider != exclude {
			filtered = append(filtered, c)
		}
	}
	if h := b.node.health; h != nil {
		live := make([]*svcdesc.Description, 0, len(filtered))
		for _, c := range filtered {
			if !h.Suspect(c.Provider) {
				live = append(live, c)
			}
		}
		if len(live) > 0 {
			filtered = live
		}
	}
	best := qos.Select(b.spec, filtered, b.node.clock.Now())
	if best == nil {
		return "", fmt.Errorf("%w: %s", ErrNoSupplier, b.spec.Query.Name)
	}
	return best.Provider, nil
}

// connect replaces the binding's connection with a fresh caller to peer.
func (b *Binding) connect(peer string) error {
	// The breaker sits outermost so fast-fails never pollute the metrics
	// interceptor's call counts or latency histogram; tracing wraps both so
	// the call span also records breaker fast-fails.
	interceptors := []endpoint.ClientInterceptor{
		endpoint.WithMetrics(b.node.metrics, "core.binding", b.node.clock),
	}
	if h := b.node.health; h != nil {
		interceptors = append([]endpoint.ClientInterceptor{
			endpoint.WithBreaker(h, peer, b.node.metrics, "core.binding"),
		}, interceptors...)
	}
	interceptors = append([]endpoint.ClientInterceptor{
		endpoint.WithTracing(b.node.traceRef, "binding.call"),
	}, interceptors...)
	if b.node.reqlog != nil {
		// Outermost of all: the wide event sees the final outcome, total
		// latency, and the trace context the tracing interceptor injected.
		interceptors = append([]endpoint.ClientInterceptor{
			endpoint.WithWideEvents(endpoint.WideEventOptions{
				Recorder: b.node.reqlog,
				Clock:    b.node.clock,
				Peer:     peer,
			}),
		}, interceptors...)
	}
	caller, err := endpoint.NewCaller(b.node.tr, peer, endpoint.CallerOptions{
		Clock:        b.node.clock,
		Eager:        true,
		Interceptors: interceptors,
		Lane:         b.lane,
		TopicLanes:   b.node.topicLanes,
	})
	if err != nil {
		return fmt.Errorf("core: dial %s: %w", peer, err)
	}
	b.mu.Lock()
	if b.caller != nil {
		_ = b.caller.Close()
	}
	b.caller = caller
	b.peer = peer
	b.mu.Unlock()
	return nil
}

// Rebind re-matches, excluding the current peer, and reconnects. The
// transaction record tracks the handoff. The decision is traced: the rebind
// span records the old and new peer and parents under whatever request or
// suspicion event triggered it.
func (b *Binding) Rebind() error {
	b.mu.Lock()
	old := b.peer
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return ErrNodeClosed
	}
	if t := b.node.traceRef.Get(); t != nil {
		sp, done := t.Scope("binding.rebind")
		sp.SetAttr("service", b.spec.Query.Name)
		sp.SetAttr("from", old)
		err := b.rebindFrom(old)
		if err == nil {
			sp.SetAttr("to", b.Peer())
		}
		sp.SetError(err)
		done()
		return err
	}
	return b.rebindFrom(old)
}

// rebindFrom is Rebind's untraced body: re-match excluding old, reconnect,
// and record the handoff.
func (b *Binding) rebindFrom(old string) error {
	peer, err := b.selectPeer(old)
	if err != nil {
		b.node.Events.Publish(Event{Type: EventBindingLost, Service: b.spec.Query.Name, Peer: old})
		return err
	}
	if err := b.connect(peer); err != nil {
		return err
	}
	if err := b.node.table.BeginHandoff(b.txn.ID); err == nil {
		_ = b.node.table.CompleteHandoff(b.txn.ID, peer)
	}
	b.Rebinds.Add(1)
	b.node.Events.Publish(Event{Type: EventRebound, Service: b.spec.Query.Name, Peer: peer})
	return nil
}

// Request performs one on-demand interaction with the bound supplier. The
// deadline comes from the spec's benefit curve; delivery and delay feed the
// tracker. On a connection failure the binding rebinds once and retries;
// when the achieved QoS has fallen below the BindOptions floor, the binding
// proactively re-matches before sending.
//
// The whole interaction — suspicion-triggered rebind, the wire call, and any
// failure-triggered retry — runs under one "binding.request" span, so a
// degraded request reads as a single subtree in the timeline.
func (b *Binding) Request(payload []byte) ([]byte, error) {
	if t := b.node.traceRef.Get(); t != nil {
		sp, done := t.Scope("binding.request")
		sp.SetAttr("service", b.spec.Query.Name)
		sp.SetAttr("peer", b.Peer())
		out, err := b.request(payload)
		sp.SetError(err)
		done()
		return out, err
	}
	return b.request(payload)
}

// request is Request's untraced body.
func (b *Binding) request(payload []byte) ([]byte, error) {
	if h := b.node.health; h != nil {
		if peer := b.Peer(); peer != "" && h.Suspect(peer) {
			// Proactive degradation handling, one step earlier than the QoS
			// floor: the liveness layer suspects the bound supplier, so
			// re-match before burning a request (and its timeout) on it. A
			// failed rebind is not fatal — suspicion may be false, and the
			// request below will tell.
			b.node.Events.Publish(Event{Type: EventPeerSuspected, Service: b.spec.Query.Name, Peer: peer})
			// A cached resolver would re-serve the corpse for the rest of its
			// lease; drop those results so the rebind's lookup re-resolves.
			discovery.Invalidate(b.node.registry, peer)
			_ = b.Rebind()
		}
	}
	if b.violated() {
		// Proactive degradation handling: the current supplier is not
		// delivering the demanded QoS even though it is still reachable.
		b.node.Events.Publish(Event{Type: EventQoSViolated, Service: b.spec.Query.Name, Peer: b.Peer()})
		// A failed proactive rebind is not fatal — the current supplier may
		// still serve this request; the QoS floor simply stays violated.
		_ = b.Rebind()
	}
	out, err := b.requestOnce(payload)
	if err == nil {
		return out, nil
	}
	var remoteErr *remoteError
	if errors.As(err, &remoteErr) {
		// The supplier answered with an application error: not a QoS
		// failure, no rebind.
		return nil, err
	}
	// Transport-level failure: degrade gracefully by rebinding. Cached
	// lookup results naming the failed peer are dropped first — rebinding
	// through a cache that still lists the corpse wastes the lease.
	discovery.Invalidate(b.node.registry, b.Peer())
	tracker := b.Tracker()
	tracker.ObserveFailure()
	if b.violated() {
		b.node.Events.Publish(Event{Type: EventQoSViolated, Service: b.spec.Query.Name, Peer: b.Peer()})
	}
	if rerr := b.Rebind(); rerr != nil {
		return nil, fmt.Errorf("core: request failed (%v) and rebind failed: %w", err, rerr)
	}
	return b.requestOnce(payload)
}

// RequestStatic performs one exchange without the graceful-degradation
// machinery: no rebinding, no re-matching. It models a middleware-less
// client and is the baseline experiment E4 measures the kernel against.
func (b *Binding) RequestStatic(payload []byte) ([]byte, error) {
	out, err := b.requestOnce(payload)
	if err != nil {
		var remoteErr *remoteError
		if !errors.As(err, &remoteErr) {
			b.Tracker().ObserveFailure()
		}
		return nil, err
	}
	return out, nil
}

// remoteError wraps an application-level error returned by the supplier.
type remoteError struct{ msg string }

func (e *remoteError) Error() string { return "core: remote: " + e.msg }

func (b *Binding) violated() bool {
	if b.minRatio == 0 && b.minBenefit == 0 {
		return false
	}
	return b.Tracker().Violated(b.minRatio, b.minBenefit, b.minSamples)
}

// requestOnce performs a single exchange through the binding's endpoint
// caller. The deadline derives from the spec's benefit curve and propagates
// on the wire; delivery and delay feed the QoS tracker.
func (b *Binding) requestOnce(payload []byte) ([]byte, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrNodeClosed
	}
	caller := b.caller
	b.mu.Unlock()

	timeout := b.spec.Benefit.ZeroAfter
	if timeout == 0 {
		timeout = b.spec.Benefit.FullUntil
	}
	callTimeout := timeout
	if callTimeout <= 0 {
		callTimeout = endpoint.NoTimeout
	}
	start := b.node.clock.Now()
	m, err := caller.Do(&endpoint.Call{
		Topic:   b.spec.Query.Name,
		Src:     b.node.name,
		Dst:     b.Peer(),
		Payload: payload,
		Timeout: callTimeout,
		Lane:    b.lane,
	})
	if err != nil {
		if re, ok := endpoint.IsRemote(err); ok {
			return nil, &remoteError{msg: re.Msg}
		}
		if errors.Is(err, endpoint.ErrTimeout) {
			return nil, fmt.Errorf("core: request to %s timed out after %v", b.Peer(), timeout)
		}
		return nil, err
	}
	b.Tracker().ObserveDelivery(b.node.clock.Now().Sub(start))
	return m.Payload, nil
}

// RequestAsync starts one exchange without waiting for the reply: the
// request is pipelined onto the wire before RequestAsync returns, so a
// consumer can keep a window of requests in flight over the one supplier
// connection. Like RequestStatic it skips the graceful-degradation
// machinery (rebinding decisions are inherently synchronous); the QoS
// tracker still observes the outcome when the reply is awaited.
func (b *Binding) RequestAsync(payload []byte) *AsyncReply {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return &AsyncReply{err: ErrNodeClosed}
	}
	caller := b.caller
	b.mu.Unlock()

	timeout := b.spec.Benefit.ZeroAfter
	if timeout == 0 {
		timeout = b.spec.Benefit.FullUntil
	}
	callTimeout := timeout
	if callTimeout <= 0 {
		callTimeout = endpoint.NoTimeout
	}
	r := &AsyncReply{b: b, peer: b.Peer(), timeout: timeout, start: b.node.clock.Now()}
	r.fut = caller.Go(&endpoint.Call{
		Topic:   b.spec.Query.Name,
		Src:     b.node.name,
		Dst:     r.peer,
		Payload: payload,
		Timeout: callTimeout,
		Lane:    b.lane,
	})
	return r
}

// AsyncReply is a pending RequestAsync: a promise for the supplier's reply.
type AsyncReply struct {
	b       *Binding
	fut     *endpoint.Future
	peer    string
	timeout time.Duration
	start   time.Time
	err     error // pre-send failure

	once    sync.Once
	payload []byte
	outErr  error
}

// Wait blocks for the reply (bounded by the binding's QoS deadline fixed at
// issue time) and feeds the QoS tracker exactly once: a delivery observation
// with the true request-to-reply latency, or a failure for transport-level
// errors. Wait is idempotent.
func (r *AsyncReply) Wait() ([]byte, error) {
	r.once.Do(func() {
		if r.err != nil {
			r.outErr = r.err
			return
		}
		m, err := r.fut.Wait()
		if err != nil {
			if re, ok := endpoint.IsRemote(err); ok {
				// The supplier answered: an application error, not a QoS
				// failure.
				r.outErr = &remoteError{msg: re.Msg}
				return
			}
			r.b.Tracker().ObserveFailure()
			if errors.Is(err, endpoint.ErrTimeout) {
				r.outErr = fmt.Errorf("core: request to %s timed out after %v", r.peer, r.timeout)
				return
			}
			r.outErr = err
			return
		}
		r.b.Tracker().ObserveDelivery(r.b.node.clock.Now().Sub(r.start))
		r.payload = m.Payload
	})
	return r.payload, r.outErr
}

// Poll turns the binding into a continuous (or intermittent-with-prediction)
// transaction: a pump issues Request at the schedule's pace and hands every
// result to deliver. Failures that the rebinding machinery cannot absorb are
// reported to deliver with a nil payload and the error. Stop the pump by
// calling the returned stop function.
func (b *Binding) Poll(schedule transaction.Schedule, request []byte, deliver func([]byte, error)) (stop func()) {
	pump := transaction.NewPump(b.node.clock, schedule,
		func() ([]byte, bool) {
			b.mu.Lock()
			closed := b.closed
			b.mu.Unlock()
			return request, !closed
		},
		func(payload []byte) error {
			out, err := b.Request(payload)
			deliver(out, err)
			return err
		})
	return pump.Stop
}

// Close releases the binding and completes its transaction.
func (b *Binding) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	caller := b.caller
	b.mu.Unlock()
	_ = b.node.table.Complete(b.txn.ID)
	if caller != nil {
		return caller.Close()
	}
	return nil
}
