package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ndsm/internal/discovery"
	"ndsm/internal/qos"
	"ndsm/internal/svcdesc"
	"ndsm/internal/transaction"
	"ndsm/internal/transport"
)

// world is a little deployment: a shared fabric, a shared registry, and a
// helper to start nodes in it.
type world struct {
	t        *testing.T
	fabric   *transport.Fabric
	registry *discovery.Store
}

func newWorld(t *testing.T) *world {
	return &world{t: t, fabric: transport.NewFabric(), registry: discovery.NewStore(nil, 0)}
}

func (w *world) node(name string) *Node {
	w.t.Helper()
	n, err := NewNode(Config{
		Name:      name,
		Transport: transport.NewMem(w.fabric),
		Registry:  w.registry,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(func() { _ = n.Close() })
	return n
}

func bpDesc(rel float64) *svcdesc.Description {
	return &svcdesc.Description{
		Name:        "sensor/bp",
		Reliability: rel,
		PowerLevel:  1,
	}
}

func echoHandler(prefix string) Handler {
	return func(p []byte) ([]byte, error) {
		return append([]byte(prefix), p...), nil
	}
}

func TestNodeConfigValidation(t *testing.T) {
	w := newWorld(t)
	if _, err := NewNode(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := NewNode(Config{Name: "x"}); err == nil {
		t.Fatal("missing transport accepted")
	}
	if _, err := NewNode(Config{Name: "x", Transport: transport.NewMem(w.fabric)}); err == nil {
		t.Fatal("missing registry accepted")
	}
}

func TestServeAndBind(t *testing.T) {
	w := newWorld(t)
	sup := w.node("supplier-1")
	con := w.node("consumer-1")

	if err := sup.Serve(bpDesc(0.9), echoHandler("bp:")); err != nil {
		t.Fatal(err)
	}
	b, err := con.Bind(&qos.Spec{Query: svcdesc.Query{Name: "sensor/bp"}}, BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Peer() != "supplier-1" {
		t.Fatalf("peer = %s", b.Peer())
	}
	out, err := b.Request([]byte("read"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "bp:read" {
		t.Fatalf("out = %q", out)
	}
	rep := b.Tracker().Report()
	if rep.Delivered != 1 || rep.Failed != 0 {
		t.Fatalf("tracker = %+v", rep)
	}
}

func TestBindSelectsBestQoS(t *testing.T) {
	w := newWorld(t)
	weak := w.node("weak")
	strong := w.node("strong")
	con := w.node("consumer")
	if err := weak.Serve(bpDesc(0.5), echoHandler("weak:")); err != nil {
		t.Fatal(err)
	}
	if err := strong.Serve(bpDesc(0.99), echoHandler("strong:")); err != nil {
		t.Fatal(err)
	}
	b, err := con.Bind(&qos.Spec{
		Query:   svcdesc.Query{Name: "sensor/bp"},
		Weights: qos.Weights{Reliability: 1},
	}, BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Peer() != "strong" {
		t.Fatalf("bound %s, want strong", b.Peer())
	}
}

func TestBindNoSupplier(t *testing.T) {
	w := newWorld(t)
	con := w.node("consumer")
	if _, err := con.Bind(&qos.Spec{Query: svcdesc.Query{Name: "nothing"}}, BindOptions{}); !errors.Is(err, ErrNoSupplier) {
		t.Fatalf("err = %v", err)
	}
}

func TestGracefulDegradationRebind(t *testing.T) {
	w := newWorld(t)
	primary := w.node("primary")
	backup := w.node("backup")
	con := w.node("consumer")
	if err := primary.Serve(bpDesc(0.99), echoHandler("primary:")); err != nil {
		t.Fatal(err)
	}
	if err := backup.Serve(bpDesc(0.5), echoHandler("backup:")); err != nil {
		t.Fatal(err)
	}
	b, err := con.Bind(&qos.Spec{
		Query:   svcdesc.Query{Name: "sensor/bp"},
		Weights: qos.Weights{Reliability: 1},
	}, BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Peer() != "primary" {
		t.Fatalf("initial peer = %s", b.Peer())
	}

	events := con.Events.Subscribe()

	// Crash the primary: the supplier node goes away entirely.
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	_ = w.registry.Unregister(svcdescKey("primary"))

	out, err := b.Request([]byte("x"))
	if err != nil {
		t.Fatalf("request after primary crash: %v", err)
	}
	if string(out) != "backup:x" {
		t.Fatalf("out = %q", out)
	}
	if b.Peer() != "backup" {
		t.Fatalf("peer = %s, want backup", b.Peer())
	}
	if b.Rebinds.Load() != 1 {
		t.Fatalf("rebinds = %d", b.Rebinds.Load())
	}
	// A rebound event was published.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-events:
			if ev.Type == EventRebound && ev.Peer == "backup" {
				return
			}
		case <-deadline:
			t.Fatal("no rebound event")
		}
	}
}

func svcdescKey(provider string) string {
	d := bpDesc(0.9)
	d.Provider = provider
	return d.Key()
}

func TestBindingLostWhenNoAlternative(t *testing.T) {
	w := newWorld(t)
	only := w.node("only")
	con := w.node("consumer")
	if err := only.Serve(bpDesc(0.9), echoHandler("x:")); err != nil {
		t.Fatal(err)
	}
	b, err := con.Bind(&qos.Spec{Query: svcdesc.Query{Name: "sensor/bp"}}, BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	_ = only.Close()
	_ = w.registry.Unregister(svcdescKey("only"))
	if _, err := b.Request([]byte("x")); err == nil {
		t.Fatal("request succeeded with no suppliers left")
	}
}

func TestRemoteErrorDoesNotRebind(t *testing.T) {
	w := newWorld(t)
	sup := w.node("supplier")
	con := w.node("consumer")
	if err := sup.Serve(bpDesc(0.9), func([]byte) ([]byte, error) {
		return nil, errors.New("sensor saturated")
	}); err != nil {
		t.Fatal(err)
	}
	b, err := con.Bind(&qos.Spec{Query: svcdesc.Query{Name: "sensor/bp"}}, BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	_, err = b.Request([]byte("x"))
	if err == nil || !strings.Contains(err.Error(), "sensor saturated") {
		t.Fatalf("err = %v", err)
	}
	if b.Rebinds.Load() != 0 {
		t.Fatal("application error triggered rebind")
	}
}

func TestRequestTimeout(t *testing.T) {
	w := newWorld(t)
	sup := w.node("supplier")
	con := w.node("consumer")
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	if err := sup.Serve(bpDesc(0.9), func([]byte) ([]byte, error) {
		<-block
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	b, err := con.Bind(&qos.Spec{
		Query:   svcdesc.Query{Name: "sensor/bp"},
		Benefit: qos.Benefit{FullUntil: 20 * time.Millisecond, ZeroAfter: 40 * time.Millisecond},
	}, BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Request([]byte("x")); err == nil {
		t.Fatal("request should fail (timeout, no alternative)")
	}
	if rep := b.Tracker().Report(); rep.Failed == 0 {
		t.Fatalf("tracker = %+v", rep)
	}
}

func TestWithdraw(t *testing.T) {
	w := newWorld(t)
	sup := w.node("supplier")
	if err := sup.Serve(bpDesc(0.9), echoHandler("x:")); err != nil {
		t.Fatal(err)
	}
	if got := sup.Services(); len(got) != 1 || got[0] != "sensor/bp" {
		t.Fatalf("services = %v", got)
	}
	if err := sup.Withdraw("sensor/bp"); err != nil {
		t.Fatal(err)
	}
	if err := sup.Withdraw("sensor/bp"); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("double withdraw: %v", err)
	}
	descs, _ := w.registry.Lookup(&svcdesc.Query{Name: "sensor/bp"})
	if len(descs) != 0 {
		t.Fatal("withdrawn service still advertised")
	}
}

func TestServeDuplicate(t *testing.T) {
	w := newWorld(t)
	sup := w.node("supplier")
	if err := sup.Serve(bpDesc(0.9), echoHandler("a:")); err != nil {
		t.Fatal(err)
	}
	if err := sup.Serve(bpDesc(0.9), echoHandler("b:")); !errors.Is(err, ErrServiceExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestServeValidation(t *testing.T) {
	w := newWorld(t)
	sup := w.node("supplier")
	if err := sup.Serve(bpDesc(0.9), nil); err == nil {
		t.Fatal("nil handler accepted")
	}
	if err := sup.Serve(&svcdesc.Description{}, echoHandler("")); err == nil {
		t.Fatal("invalid description accepted")
	}
}

func TestRenewLeases(t *testing.T) {
	w := newWorld(t)
	sup := w.node("supplier")
	if err := sup.Serve(bpDesc(0.9), echoHandler("x:")); err != nil {
		t.Fatal(err)
	}
	v := w.registry.Version()
	if err := sup.RenewLeases(); err != nil {
		t.Fatal(err)
	}
	if w.registry.Version() == v {
		t.Fatal("renew did not touch the registry")
	}
}

func TestMultipleServicesOneNode(t *testing.T) {
	w := newWorld(t)
	sup := w.node("multi")
	con := w.node("consumer")
	if err := sup.Serve(bpDesc(0.9), echoHandler("bp:")); err != nil {
		t.Fatal(err)
	}
	hr := &svcdesc.Description{Name: "sensor/hr", Reliability: 0.9, PowerLevel: 1}
	if err := sup.Serve(hr, echoHandler("hr:")); err != nil {
		t.Fatal(err)
	}
	bBP, err := con.Bind(&qos.Spec{Query: svcdesc.Query{Name: "sensor/bp"}}, BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer bBP.Close()
	bHR, err := con.Bind(&qos.Spec{Query: svcdesc.Query{Name: "sensor/hr"}}, BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer bHR.Close()
	if out, _ := bBP.Request([]byte("1")); string(out) != "bp:1" {
		t.Fatalf("bp out = %q", out)
	}
	if out, _ := bHR.Request([]byte("2")); string(out) != "hr:2" {
		t.Fatalf("hr out = %q", out)
	}
}

func TestNodeCloseIdempotentAndEvents(t *testing.T) {
	w := newWorld(t)
	n := w.node("n")
	events := n.Events.Subscribe()
	if err := n.Serve(bpDesc(0.9), echoHandler("")); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Type != EventServiceUp {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no service-up event")
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Serve(bpDesc(0.9), echoHandler("")); !errors.Is(err, ErrNodeClosed) {
		t.Fatalf("serve after close: %v", err)
	}
	if _, err := n.Bind(&qos.Spec{Query: svcdesc.Query{Name: "x"}}, BindOptions{}); !errors.Is(err, ErrNodeClosed) {
		t.Fatalf("bind after close: %v", err)
	}
}

func TestEventBusDropsWhenFull(t *testing.T) {
	var bus Bus
	_ = bus.Subscribe() // never drained
	for i := 0; i < eventBuffer+5; i++ {
		bus.Publish(Event{Type: EventServiceUp})
	}
	if bus.Dropped() != 5 {
		t.Fatalf("dropped = %d, want 5", bus.Dropped())
	}
}

func TestTransactionRecorded(t *testing.T) {
	w := newWorld(t)
	sup := w.node("supplier")
	con := w.node("consumer")
	if err := sup.Serve(bpDesc(0.9), echoHandler("x:")); err != nil {
		t.Fatal(err)
	}
	b, err := con.Bind(&qos.Spec{Query: svcdesc.Query{Name: "sensor/bp"}}, BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	active := con.Transactions().Active()
	if len(active) != 1 || active[0].Peer != "supplier" || active[0].Topic != "sensor/bp" {
		t.Fatalf("active = %+v", active)
	}
	_ = b.Close()
	if len(con.Transactions().Active()) != 0 {
		t.Fatal("transaction still active after binding close")
	}
}

func TestConcurrentBindingsShareSupplier(t *testing.T) {
	w := newWorld(t)
	sup := w.node("supplier")
	if err := sup.Serve(bpDesc(0.9), echoHandler("s:")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		con := w.node(fmt.Sprintf("consumer-%d", i))
		b, err := con.Bind(&qos.Spec{Query: svcdesc.Query{Name: "sensor/bp"}}, BindOptions{})
		if err != nil {
			t.Fatal(err)
		}
		out, err := b.Request([]byte("q"))
		if err != nil || string(out) != "s:q" {
			t.Fatalf("consumer %d: %q, %v", i, out, err)
		}
		_ = b.Close()
	}
}

func TestBindingPollContinuous(t *testing.T) {
	w := newWorld(t)
	sup := w.node("supplier")
	con := w.node("consumer")
	n := 0
	if err := sup.Serve(bpDesc(0.9), func([]byte) ([]byte, error) {
		n++
		return []byte(fmt.Sprintf("sample-%d", n)), nil
	}); err != nil {
		t.Fatal(err)
	}
	b, err := con.Bind(&qos.Spec{Query: svcdesc.Query{Name: "sensor/bp"}}, BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var mu sync.Mutex
	var got []string
	done := make(chan struct{})
	stop := b.Poll(transaction.Periodic{Period: 5 * time.Millisecond}, []byte("read"),
		func(out []byte, err error) {
			if err != nil {
				return
			}
			mu.Lock()
			got = append(got, string(out))
			if len(got) == 3 {
				close(done)
			}
			mu.Unlock()
		})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("continuous transaction never delivered 3 samples")
	}
	stop()
	mu.Lock()
	defer mu.Unlock()
	if got[0] != "sample-1" || got[2] != "sample-3" {
		t.Fatalf("samples = %v", got)
	}
	if rep := b.Tracker().Report(); rep.Delivered < 3 {
		t.Fatalf("tracker = %+v", rep)
	}
}

func TestBindingPollStopsAfterClose(t *testing.T) {
	w := newWorld(t)
	sup := w.node("supplier")
	con := w.node("consumer")
	if err := sup.Serve(bpDesc(0.9), echoHandler("x:")); err != nil {
		t.Fatal(err)
	}
	b, err := con.Bind(&qos.Spec{Query: svcdesc.Query{Name: "sensor/bp"}}, BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stop := b.Poll(transaction.Periodic{Period: time.Millisecond}, nil, func([]byte, error) {})
	_ = b.Close()
	// The pump's source sees the closed binding and ends; stop must not hang.
	finished := make(chan struct{})
	go func() {
		stop()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("Poll stop hung after binding close")
	}
}

func TestProactiveRebindOnQoSFloor(t *testing.T) {
	w := newWorld(t)
	poor := w.node("poor")
	good := w.node("good")
	con := w.node("consumer")
	// The poor supplier has the higher advertised reliability, so it wins
	// the initial match — but it will fail to deliver.
	if err := poor.Serve(bpDesc(0.99), echoHandler("poor:")); err != nil {
		t.Fatal(err)
	}
	if err := good.Serve(bpDesc(0.9), echoHandler("good:")); err != nil {
		t.Fatal(err)
	}
	b, err := con.Bind(&qos.Spec{
		Query:   svcdesc.Query{Name: "sensor/bp"},
		Weights: qos.Weights{Reliability: 1},
	}, BindOptions{MinDeliveryRatio: 0.9, MinSamples: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Peer() != "poor" {
		t.Fatalf("initial peer = %s", b.Peer())
	}
	// Simulate observed delivery failures (e.g. lost samples on a stream)
	// without a transport failure.
	for i := 0; i < 5; i++ {
		b.Tracker().ObserveFailure()
	}
	out, err := b.Request([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "good:x" {
		t.Fatalf("out = %q — proactive rebind did not happen", out)
	}
	if b.Peer() != "good" || b.Rebinds.Load() != 1 {
		t.Fatalf("peer=%s rebinds=%d", b.Peer(), b.Rebinds.Load())
	}
	// The tracker was reset by the handoff, so the next request does not
	// rebind again.
	if _, err := b.Request([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if b.Rebinds.Load() != 1 {
		t.Fatalf("rebinds = %d after healthy request", b.Rebinds.Load())
	}
}

func TestQoSFloorWithoutAlternativeKeepsServing(t *testing.T) {
	w := newWorld(t)
	only := w.node("only")
	con := w.node("consumer")
	if err := only.Serve(bpDesc(0.9), echoHandler("only:")); err != nil {
		t.Fatal(err)
	}
	b, err := con.Bind(&qos.Spec{Query: svcdesc.Query{Name: "sensor/bp"}},
		BindOptions{MinDeliveryRatio: 0.9, MinSamples: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 3; i++ {
		b.Tracker().ObserveFailure()
	}
	// No alternative exists; the request must still go through on the
	// current (violating) supplier.
	out, err := b.Request([]byte("x"))
	if err != nil || string(out) != "only:x" {
		t.Fatalf("out=%q err=%v", out, err)
	}
}

func TestRequestAsyncPipelined(t *testing.T) {
	w := newWorld(t)
	sup := w.node("supplier-1")
	con := w.node("consumer-1")
	if err := sup.Serve(bpDesc(0.9), echoHandler("bp:")); err != nil {
		t.Fatal(err)
	}
	b, err := con.Bind(&qos.Spec{Query: svcdesc.Query{Name: "sensor/bp"}}, BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const n = 32
	replies := make([]*AsyncReply, n)
	for i := range replies {
		replies[i] = b.RequestAsync([]byte(fmt.Sprintf("r-%d", i)))
	}
	for i, r := range replies {
		out, err := r.Wait()
		if err != nil {
			t.Fatalf("async request %d: %v", i, err)
		}
		if want := fmt.Sprintf("bp:r-%d", i); string(out) != want {
			t.Fatalf("reply %d = %q, want %q", i, out, want)
		}
		// Wait is idempotent.
		again, err2 := r.Wait()
		if err2 != nil || string(again) != string(out) {
			t.Fatalf("second Wait diverged: %q %v", again, err2)
		}
	}
	// The tracker observed the deliveries.
	if got := b.Tracker().Report().Delivered; got < n {
		t.Fatalf("tracker saw %d deliveries, want >= %d", got, n)
	}
}

func TestRequestAsyncAfterClose(t *testing.T) {
	w := newWorld(t)
	sup := w.node("supplier-1")
	con := w.node("consumer-1")
	if err := sup.Serve(bpDesc(0.9), echoHandler("bp:")); err != nil {
		t.Fatal(err)
	}
	b, err := con.Bind(&qos.Spec{Query: svcdesc.Query{Name: "sensor/bp"}}, BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = b.Close()
	if _, err := b.RequestAsync(nil).Wait(); !errors.Is(err, ErrNodeClosed) {
		t.Fatalf("err = %v, want ErrNodeClosed", err)
	}
}
