package core

import (
	"sync/atomic"
	"testing"
	"time"

	"ndsm/internal/discovery"
	"ndsm/internal/endpoint"
	"ndsm/internal/health"
	"ndsm/internal/obs"
	"ndsm/internal/qos"
	"ndsm/internal/simtime"
	"ndsm/internal/svcdesc"
	"ndsm/internal/transport"
)

// healthNode starts a node with a liveness monitor (and optional admission
// bound) in the world.
func (w *world) healthNode(name string, m *health.Monitor, maxInFlight int) *Node {
	w.t.Helper()
	n, err := NewNode(Config{
		Name:        name,
		Transport:   transport.NewMem(w.fabric),
		Registry:    w.registry,
		Health:      m,
		MaxInFlight: maxInFlight,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(func() { _ = n.Close() })
	return n
}

func testMonitor(clock simtime.Clock) *health.Monitor {
	return health.NewMonitor(health.Options{
		Clock:            clock,
		MinSamples:       3,
		PhiThreshold:     3,
		FallbackTimeout:  200 * time.Millisecond,
		FailureThreshold: 2,
		OpenTimeout:      time.Hour, // circuits stay open for the whole test
		Registry:         obs.NewRegistry(),
	})
}

func bpSpec() *qos.Spec {
	return &qos.Spec{Query: svcdesc.Query{Name: "sensor/bp"}}
}

func TestSelectPeerSkipsSuspectedPeers(t *testing.T) {
	w := newWorld(t)
	hi := w.node("s-hi")
	lo := w.node("s-lo")
	if err := hi.Serve(bpDesc(0.95), echoHandler("hi:")); err != nil {
		t.Fatal(err)
	}
	if err := lo.Serve(bpDesc(0.90), echoHandler("lo:")); err != nil {
		t.Fatal(err)
	}

	clock := simtime.NewVirtual(time.Unix(0, 0))
	m := testMonitor(clock)
	con := w.healthNode("consumer-1", m, 0)

	// Open s-hi's circuit: QoS selection would prefer it (0.95 > 0.90), but
	// the liveness layer overrules reliability on suspicion.
	m.ReportFailure("s-hi")
	m.ReportFailure("s-hi")

	b, err := con.Bind(bpSpec(), BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close() //nolint:errcheck
	if b.Peer() != "s-lo" {
		t.Fatalf("bound %s, want the unsuspected s-lo", b.Peer())
	}
}

func TestSelectPeerFallsBackWhenAllSuspected(t *testing.T) {
	w := newWorld(t)
	hi := w.node("s-hi")
	lo := w.node("s-lo")
	if err := hi.Serve(bpDesc(0.95), echoHandler("hi:")); err != nil {
		t.Fatal(err)
	}
	if err := lo.Serve(bpDesc(0.90), echoHandler("lo:")); err != nil {
		t.Fatal(err)
	}

	clock := simtime.NewVirtual(time.Unix(0, 0))
	m := testMonitor(clock)
	con := w.healthNode("consumer-1", m, 0)

	// Both circuits open: an unreliable detector suspecting everyone must
	// not strand the binding — selection falls back to the full set.
	for _, peer := range []string{"s-hi", "s-lo"} {
		m.ReportFailure(peer)
		m.ReportFailure(peer)
	}
	b, err := con.Bind(bpSpec(), BindOptions{})
	if err != nil {
		t.Fatalf("all-suspected selection stranded the binding: %v", err)
	}
	defer b.Close() //nolint:errcheck
	if b.Peer() != "s-hi" {
		t.Fatalf("fallback selection bound %s, want the QoS-best s-hi", b.Peer())
	}
}

func TestProactiveRebindOnSuspicion(t *testing.T) {
	w := newWorld(t)
	hi := w.node("s-hi")
	lo := w.node("s-lo")
	if err := hi.Serve(bpDesc(0.95), echoHandler("hi:")); err != nil {
		t.Fatal(err)
	}
	if err := lo.Serve(bpDesc(0.90), echoHandler("lo:")); err != nil {
		t.Fatal(err)
	}

	clock := simtime.NewVirtual(time.Unix(0, 0))
	m := testMonitor(clock)
	con := w.healthNode("consumer-1", m, 0)
	events := con.Events.Subscribe()

	b, err := con.Bind(bpSpec(), BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close() //nolint:errcheck
	if b.Peer() != "s-hi" {
		t.Fatalf("bound %s, want s-hi", b.Peer())
	}

	// s-hi goes silent past the fixed-timeout fallback: the next request
	// must rebind proactively — before sending anything to s-hi — and the
	// supplier node itself is still up, so only the detector drives this.
	m.Heartbeat("s-hi")
	clock.Advance(300 * time.Millisecond)
	out, err := b.Request([]byte("x"))
	if err != nil {
		t.Fatalf("request after proactive rebind: %v", err)
	}
	if string(out) != "lo:x" {
		t.Fatalf("reply %q: request was not served by the rebound supplier", out)
	}
	if b.Peer() != "s-lo" {
		t.Fatalf("peer %s after suspicion, want s-lo", b.Peer())
	}

	var sawSuspected bool
	for len(events) > 0 {
		if ev := <-events; ev.Type == EventPeerSuspected && ev.Peer == "s-hi" {
			sawSuspected = true
		}
	}
	if !sawSuspected {
		t.Fatal("no EventPeerSuspected published")
	}
}

func TestNodeAdmissionControlSheds(t *testing.T) {
	w := newWorld(t)
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	sup := w.healthNode("s-only", nil, 1)
	err := sup.Serve(bpDesc(0.9), func(p []byte) ([]byte, error) {
		entered <- struct{}{}
		<-release
		return p, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	con := w.node("consumer-1")
	b, err := con.Bind(bpSpec(), BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close() //nolint:errcheck

	done := make(chan error, 1)
	go func() {
		_, err := b.RequestStatic([]byte("a"))
		done <- err
	}()
	<-entered

	// Admission bound is 1 and it is taken: the second request is shed with
	// a retryable rejection, not queued and not executed.
	_, err = b.RequestStatic([]byte("b"))
	if !endpoint.IsShed(err) {
		t.Fatalf("err = %v, want a shed rejection", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("parked request failed: %v", err)
	}
}

func TestNodeHealthAccessors(t *testing.T) {
	w := newWorld(t)
	m := testMonitor(simtime.NewVirtual(time.Unix(0, 0)))
	n := w.healthNode("n1", m, 0)
	if n.Health() != m {
		t.Fatal("Health() accessor lost the monitor")
	}
	if n.Registry() == discovery.Registry(w.registry) {
		t.Fatal("registry not wrapped by the health watcher")
	}
	plain := w.node("n2")
	if plain.Health() != nil {
		t.Fatal("nil-health node reports a monitor")
	}
	if plain.Registry() != discovery.Registry(w.registry) {
		t.Fatal("nil-health node should keep the raw registry")
	}
}

// countingRegistry wraps a Resolver and counts wire lookups.
type countingRegistry struct {
	discovery.Resolver
	lookups atomic.Int64
}

func (c *countingRegistry) Lookup(q *svcdesc.Query) ([]*svcdesc.Description, error) {
	c.lookups.Add(1)
	return c.Resolver.Lookup(q)
}

func TestSuspicionInvalidatesLookupCache(t *testing.T) {
	// A consumer resolving through a long-TTL lookup cache must not serve a
	// suspected peer out of that cache: the EventPeerSuspected rebind path
	// invalidates the provider, so the re-match goes back to the wire.
	w := newWorld(t)
	hi := w.node("s-hi")
	lo := w.node("s-lo")
	if err := hi.Serve(bpDesc(0.95), echoHandler("hi:")); err != nil {
		t.Fatal(err)
	}
	if err := lo.Serve(bpDesc(0.90), echoHandler("lo:")); err != nil {
		t.Fatal(err)
	}

	clock := simtime.NewVirtual(time.Unix(0, 0))
	m := testMonitor(clock)
	counting := &countingRegistry{Resolver: w.registry}
	cached := discovery.NewCached(counting, discovery.CacheOptions{TTL: time.Hour})
	con, err := NewNode(Config{
		Name:      "consumer-1",
		Transport: transport.NewMem(w.fabric),
		Registry:  cached,
		Health:    m,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = con.Close() })

	b, err := con.Bind(bpSpec(), BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close() //nolint:errcheck
	if b.Peer() != "s-hi" {
		t.Fatalf("bound %s, want s-hi", b.Peer())
	}
	after := counting.lookups.Load()
	if after == 0 {
		t.Fatal("bind never reached the wire")
	}

	// Silence past the detector's fallback: the next request suspects s-hi
	// and rebinds. With an hour of cache TTL the re-match could only see
	// fresh providers if the suspicion invalidated the cached result.
	m.Heartbeat("s-hi")
	clock.Advance(300 * time.Millisecond)
	out, err := b.Request([]byte("x"))
	if err != nil {
		t.Fatalf("request after proactive rebind: %v", err)
	}
	if string(out) != "lo:x" || b.Peer() != "s-lo" {
		t.Fatalf("reply %q peer %s: rebind did not land on s-lo", out, b.Peer())
	}
	if got := counting.lookups.Load(); got != after+1 {
		t.Fatalf("wire lookups = %d after rebind, want %d: the suspected peer was served from cache", got, after+1)
	}
}
