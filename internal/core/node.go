package core

import (
	"errors"
	"fmt"
	"sync"

	"ndsm/internal/discovery"
	"ndsm/internal/endpoint"
	"ndsm/internal/health"
	"ndsm/internal/obs"
	"ndsm/internal/reqlog"
	"ndsm/internal/simtime"
	"ndsm/internal/svcdesc"
	"ndsm/internal/trace"
	"ndsm/internal/transaction"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// Handler serves one request for a hosted service.
type Handler func(payload []byte) ([]byte, error)

// Core errors.
var (
	ErrNodeClosed     = errors.New("core: node closed")
	ErrNoSupplier     = errors.New("core: no feasible supplier")
	ErrServiceExists  = errors.New("core: service already hosted")
	ErrUnknownService = errors.New("core: unknown service")
)

// Config assembles a Node.
type Config struct {
	// Name is the node's address on its transport (what suppliers advertise
	// as Provider).
	Name string
	// Transport carries all of the node's traffic.
	Transport transport.Transport
	// Registry is the discovery organization the node uses (centralized
	// client, flood agent, mirrored, adaptive — anything).
	Registry discovery.Resolver
	// Clock times QoS and leases (default real).
	Clock simtime.Clock
	// Health is the optional liveness layer. When set, the node's registry
	// lookups feed it heartbeats (providers listed in results are alive),
	// bindings skip suspected peers at selection time, rebind proactively on
	// suspicion, and gate every request through the per-peer circuit
	// breaker. Nil disables all of it.
	Health *health.Monitor
	// MaxInFlight bounds the node's concurrent in-flight server requests
	// (admission control); excess requests are shed with a retryable
	// rejection. 0 means unlimited.
	MaxInFlight int
	// Lanes enables priority-lane admission control over the MaxInFlight
	// pool (per-lane quotas, shared-pool borrowing, benefit-aware queue
	// shedding — see endpoint.LaneConfig). Its Clock defaults to the node's
	// clock so expiry decisions agree with the deadlines bindings stamp.
	Lanes *endpoint.LaneConfig
	// Metrics receives the node's instruments — server dispatch counters,
	// binding call latency, shed counts. Nil uses the process default; a
	// per-node registry is what gives multi-node simulations (and the
	// telemetry plane riding on them) per-node series instead of one merged
	// blur.
	Metrics *obs.Registry
	// Tracer records causal spans for the node's bindings and dispatches.
	// Nil follows the process default (trace.SetDefault); tracing stays off
	// until one is installed.
	Tracer *trace.Tracer
	// ReqLog is the node's wide-event recorder: every server dispatch and
	// shed, and every binding call, lands in it as one structured record
	// (see reqlog). Nil disables request analytics.
	ReqLog *reqlog.Recorder
	// TopicLanes classifies binding calls into admission lanes by service
	// topic when the binding itself doesn't choose one — the config-driven
	// counterpart to BindOptions.Lane.
	TopicLanes *endpoint.LaneTable
}

// Node is one middleware endpoint: it serves any number of supplier services
// on a single listener and opens QoS-managed consumer bindings.
type Node struct {
	name       string
	tr         transport.Transport
	registry   discovery.Resolver
	clock      simtime.Clock
	health     *health.Monitor
	metrics    *obs.Registry
	traceRef   *trace.Ref
	reqlog     *reqlog.Recorder
	topicLanes *endpoint.LaneTable

	// Events is the node's event manager.
	Events Bus

	table *transaction.Table

	// ep serves all hosted suppliers on the node's single listener through
	// the shared request/reply engine.
	ep *endpoint.Server

	mu        sync.Mutex
	suppliers map[string]*supplier // by service name
	bindings  []*Binding
	closed    bool
}

// supplier is one hosted service.
type supplier struct {
	desc    *svcdesc.Description
	handler Handler
}

// NewNode starts a node: it binds the transport listener immediately.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Name == "" {
		return nil, errors.New("core: node needs a name")
	}
	if cfg.Transport == nil {
		return nil, errors.New("core: node needs a transport")
	}
	if cfg.Registry == nil {
		return nil, errors.New("core: node needs a registry")
	}
	if cfg.Clock == nil {
		cfg.Clock = simtime.Real{}
	}
	l, err := cfg.Transport.Listen(cfg.Name)
	if err != nil {
		return nil, fmt.Errorf("core: listen %s: %w", cfg.Name, err)
	}
	// With a health monitor attached, every lookup result doubles as a
	// heartbeat source: providers listed by discovery renewed a lease or
	// answered a flood — evidence of life the detector is built on.
	registry := health.WatchRegistry(cfg.Registry, cfg.Health)
	n := &Node{
		name:       cfg.Name,
		tr:         cfg.Transport,
		registry:   registry,
		clock:      cfg.Clock,
		health:     cfg.Health,
		metrics:    cfg.Metrics,
		traceRef:   trace.NewRef(cfg.Tracer),
		reqlog:     cfg.ReqLog,
		topicLanes: cfg.TopicLanes,
		table:      transaction.NewTable(),
		suppliers:  make(map[string]*supplier),
	}
	if cfg.Lanes != nil && cfg.Lanes.Clock == nil {
		lanes := *cfg.Lanes
		lanes.Clock = cfg.Clock
		cfg.Lanes = &lanes
	}
	n.ep = endpoint.NewServer(l, endpoint.ServerOptions{
		Name:        cfg.Name,
		Kinds:       []wire.Kind{wire.KindRequest},
		MaxInFlight: cfg.MaxInFlight,
		Lanes:       cfg.Lanes,
		Metrics:     cfg.Metrics,
		ReqLog:      cfg.ReqLog,
		Clock:       cfg.Clock,
		Interceptors: []endpoint.ServerInterceptor{
			// Tracing outermost so the server span brackets the metrics
			// observation and any handler-side downstream calls.
			endpoint.WithServerTracing(n.traceRef, "core.node.serve"),
			endpoint.WithServerMetrics(cfg.Metrics, "core.node", nil),
		},
		Fallback: func(req *wire.Message) (*wire.Message, error) {
			return nil, fmt.Errorf("%w: %s", ErrUnknownService, req.Topic)
		},
	})
	return n, nil
}

// Name returns the node's address.
func (n *Node) Name() string { return n.name }

// Registry returns the node's registry view (health-watched when a monitor
// is configured).
func (n *Node) Registry() discovery.Resolver { return n.registry }

// Health returns the node's liveness monitor (nil when disabled).
func (n *Node) Health() *health.Monitor { return n.health }

// Metrics resolves the node's metrics registry (the process default when
// none was configured).
func (n *Node) Metrics() *obs.Registry { return obs.Or(n.metrics) }

// SetLaneQuota re-reserves one lane's admission quota on the node's server
// at runtime (see endpoint.Server.SetLaneQuota). False without lane-aware
// admission. This is the seam telemetry-driven quota adapters retune
// through.
func (n *Node) SetLaneQuota(lane endpoint.Lane, quota int) bool {
	return n.ep.SetLaneQuota(lane, quota)
}

// LaneQuota reads one lane's current reserved quota on the node's server.
func (n *Node) LaneQuota(lane endpoint.Lane) int { return n.ep.LaneQuota(lane) }

// HandleTopic registers a raw endpoint handler on the node's listener for a
// topic outside the hosted-service namespace — no discovery registration, no
// QoS. This is how in-band control planes (the telemetry aggregator) ride a
// node's existing listener instead of opening a protocol of their own.
func (n *Node) HandleTopic(topic string, h endpoint.Handler) { n.ep.Handle(topic, h) }

// UnhandleTopic removes a HandleTopic registration.
func (n *Node) UnhandleTopic(topic string) { n.ep.Unhandle(topic) }

// SetTracer swaps the node's tracer at runtime (nil reverts to the process
// default). Existing bindings pick it up on their next call.
func (n *Node) SetTracer(t *trace.Tracer) { n.traceRef.Set(t) }

// Tracer resolves the node's effective tracer (nil when tracing is off).
func (n *Node) Tracer() *trace.Tracer { return n.traceRef.Get() }

// Transactions exposes the node's transaction table.
func (n *Node) Transactions() *transaction.Table { return n.table }

// Close withdraws all services, closes all bindings and stops the node.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	services := make([]string, 0, len(n.suppliers))
	for name := range n.suppliers {
		services = append(services, name)
	}
	bindings := append([]*Binding(nil), n.bindings...)
	n.mu.Unlock()

	for _, svc := range services {
		_ = n.withdraw(svc)
	}
	for _, b := range bindings {
		_ = b.Close()
	}
	return n.ep.Close()
}

// Serve hosts a service: the description is completed with this node as
// provider, registered with discovery, and requests to its name are
// dispatched to the handler.
func (n *Node) Serve(desc *svcdesc.Description, handler Handler) error {
	if handler == nil {
		return errors.New("core: nil handler")
	}
	d := desc.Clone()
	d.Provider = n.name
	if err := d.Validate(); err != nil {
		return err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrNodeClosed
	}
	if _, busy := n.suppliers[d.Name]; busy {
		n.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrServiceExists, d.Name)
	}
	n.suppliers[d.Name] = &supplier{desc: d, handler: handler}
	n.mu.Unlock()
	n.ep.Handle(d.Name, func(req *wire.Message) (*wire.Message, error) {
		out, err := handler(req.Payload)
		if err != nil {
			return nil, err
		}
		return &wire.Message{Kind: wire.KindReply, Payload: out}, nil
	})

	if err := n.registry.Register(d); err != nil {
		n.mu.Lock()
		delete(n.suppliers, d.Name)
		n.mu.Unlock()
		n.ep.Unhandle(d.Name)
		return fmt.Errorf("core: register %s: %w", d.Name, err)
	}
	n.Events.Publish(Event{Type: EventServiceUp, Service: d.Name, Peer: n.name})
	return nil
}

// Withdraw stops hosting a service and unregisters it.
func (n *Node) Withdraw(service string) error { return n.withdraw(service) }

func (n *Node) withdraw(service string) error {
	n.mu.Lock()
	sup, ok := n.suppliers[service]
	delete(n.suppliers, service)
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownService, service)
	}
	n.ep.Unhandle(service)
	err := n.registry.Unregister(sup.desc.Key())
	n.Events.Publish(Event{Type: EventServiceDown, Service: service, Peer: n.name})
	return err
}

// RenewLeases re-registers all hosted services (lease keep-alive). Call it
// periodically at a fraction of the advertised TTL.
func (n *Node) RenewLeases() error {
	n.mu.Lock()
	descs := make([]*svcdesc.Description, 0, len(n.suppliers))
	for _, sup := range n.suppliers {
		descs = append(descs, sup.desc)
	}
	n.mu.Unlock()
	var firstErr error
	for _, d := range descs {
		if err := n.registry.Register(d); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Services lists hosted service names.
func (n *Node) Services() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.suppliers))
	for name := range n.suppliers {
		out = append(out, name)
	}
	return out
}
