// Package core is the middleware kernel (§3.1): it hosts service suppliers
// and service consumers on a Node, wires discovery, QoS selection,
// transactions, and recovery together, and runs the adaptation loop that
// gives applications plug-and-play behaviour and graceful degradation —
// when a bound supplier fails or its achieved QoS collapses, the kernel
// re-matches and rebinds without application involvement.
package core

import (
	"sync"
)

// EventType classifies kernel events (§3.10: "the middleware should react
// to events from all system components").
type EventType string

// Kernel events.
const (
	// EventServiceUp fires when a local supplier starts serving.
	EventServiceUp EventType = "service-up"
	// EventServiceDown fires when a local supplier is withdrawn.
	EventServiceDown EventType = "service-down"
	// EventBound fires when a consumer binds a supplier.
	EventBound EventType = "bound"
	// EventRebound fires when a binding migrates to a new supplier.
	EventRebound EventType = "rebound"
	// EventBindingLost fires when no feasible supplier remains.
	EventBindingLost EventType = "binding-lost"
	// EventQoSViolated fires when achieved QoS drops below the floor.
	EventQoSViolated EventType = "qos-violated"
	// EventPeerSuspected fires when the liveness layer suspects the bound
	// supplier and the binding rebinds proactively, before any QoS
	// violation reaches the application.
	EventPeerSuspected EventType = "peer-suspected"
)

// Event is one kernel notification.
type Event struct {
	Type EventType
	// Service is the topic/service name involved.
	Service string
	// Peer is the supplier address involved, when applicable.
	Peer string
}

// eventBuffer is each subscriber's queue depth; slow subscribers lose the
// oldest semantics and instead drop new events (counted by the bus).
const eventBuffer = 64

// Bus is the node-local event manager.
type Bus struct {
	mu      sync.Mutex
	subs    []chan Event
	dropped int64
}

// Subscribe returns a channel of future events.
func (b *Bus) Subscribe() <-chan Event {
	ch := make(chan Event, eventBuffer)
	b.mu.Lock()
	b.subs = append(b.subs, ch)
	b.mu.Unlock()
	return ch
}

// Publish fans an event out to all subscribers without blocking.
func (b *Bus) Publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ch := range b.subs {
		select {
		case ch <- ev:
		default:
			b.dropped++
		}
	}
}

// Dropped reports events lost to full subscriber queues.
func (b *Bus) Dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}
