package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ndsm/internal/qos"
	"ndsm/internal/svcdesc"
	"ndsm/internal/transport"
)

// TestChurnSoak exercises the kernel's adaptation loop under sustained
// component churn (§3.3 "how frequently the available components change"):
// suppliers continuously join and crash while consumers keep requesting.
// The invariant: as long as at least one supplier is registered, consumers
// eventually succeed, and the kernel never wedges or panics.
func TestChurnSoak(t *testing.T) {
	w := newWorld(t)

	// A stable anchor supplier guarantees the service never disappears
	// entirely; churners come and go around it.
	anchor := w.node("anchor")
	if err := anchor.Serve(bpDesc(0.7), echoHandler("anchor:")); err != nil {
		t.Fatal(err)
	}

	const (
		churners  = 3
		consumers = 3
		rounds    = 30
	)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Churners: register a high-reliability supplier, serve briefly, crash.
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			gen := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				gen++
				name := fmt.Sprintf("churner-%d-%d", c, gen)
				n, err := NewNode(Config{
					Name:      name,
					Transport: transport.NewMem(w.fabric),
					Registry:  w.registry,
				})
				if err != nil {
					continue
				}
				_ = n.Serve(bpDesc(0.99), echoHandler(name+":"))
				time.Sleep(time.Duration(1+rng.Intn(5)) * time.Millisecond)
				// Crash without unregistering half the time — the lease (or
				// rebind-on-failure) must cover it. TTL default is long, so
				// unregister the other half to keep the table fresh.
				if rng.Intn(2) == 0 {
					d := bpDesc(0.99)
					d.Provider = name
					_ = w.registry.Unregister(d.Key())
				}
				_ = n.Close()
			}
		}(c)
	}

	// Consumers: request in a loop; every consumer must finish its rounds
	// with a healthy success count (failures happen when a churner dies
	// mid-request AND its advertisement is stale, but the anchor bounds the
	// damage via rebind).
	errCh := make(chan error, consumers)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			con := w.node(fmt.Sprintf("churn-consumer-%d", c))
			b, err := con.Bind(&qos.Spec{
				Query:   svcdesc.Query{Name: "sensor/bp"},
				Benefit: qos.Benefit{FullUntil: time.Second, ZeroAfter: 3 * time.Second},
			}, BindOptions{})
			if err != nil {
				errCh <- fmt.Errorf("consumer %d bind: %w", c, err)
				return
			}
			defer b.Close() //nolint:errcheck
			success := 0
			for r := 0; r < rounds; r++ {
				if _, err := b.Request([]byte("x")); err == nil {
					success++
				}
			}
			// The anchor guarantees a floor well above zero; demand 50%.
			if success < rounds/2 {
				errCh <- fmt.Errorf("consumer %d: only %d/%d requests succeeded", c, success, rounds)
			}
		}(c)
	}

	// Let consumers finish, then stop churners.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Consumers exit on their own; churners need the stop signal. Wait for
	// consumer goroutines by draining errCh after a grace period.
	time.Sleep(200 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("churn soak wedged")
	}
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
