// Package netsim is the simulated network substrate standing in for the
// wireless testbeds the paper assumes (Bluetooth, 802.11, sensor radios).
//
// It models what the middleware actually observes from a radio network:
//
//   - a planar field of nodes with positions and a fixed radio range,
//   - single-hop unicast and broadcast with configurable loss and latency,
//   - a first-order radio energy model (Heinzelman's LEACH model:
//     E_tx(k,d) = E_elec*k + ε_amp*k*d², E_rx(k) = E_elec*k) with per-node
//     energy budgets and death on exhaustion,
//   - node mobility (explicit moves plus a random-waypoint stepper),
//   - network partitions (severed link pairs),
//   - per-network traffic counters used by the adaptive discovery protocol
//     and the experiment harness.
//
// Multi-hop communication is built above this by internal/routing; the
// simulator itself only ever delivers between radio neighbours.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ndsm/internal/obs"
	"ndsm/internal/simtime"
	"ndsm/internal/stats"
	"ndsm/internal/trace"
)

// NodeID names a simulated node.
type NodeID string

// Position is a point on the simulation field, in meters.
type Position struct {
	X float64
	Y float64
}

// Distance returns the Euclidean distance between two positions.
func (p Position) Distance(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Packet is a single-hop datagram delivered between radio neighbours.
type Packet struct {
	// From and To identify the endpoints. To is empty for broadcasts.
	From NodeID
	To   NodeID
	// Data is the payload; the simulator charges energy per byte.
	Data []byte
	// ArrivedAt is the simulated arrival time.
	ArrivedAt time.Time
}

// RadioParams is the first-order radio energy model.
type RadioParams struct {
	// ElecJPerBit is the electronics energy per bit for both TX and RX
	// circuitry (LEACH uses 50 nJ/bit).
	ElecJPerBit float64
	// AmpJPerBitM2 is the transmit amplifier energy per bit per m²
	// (LEACH uses 100 pJ/bit/m²).
	AmpJPerBitM2 float64
}

// DefaultRadio matches the LEACH paper's first-order model constants.
func DefaultRadio() RadioParams {
	return RadioParams{ElecJPerBit: 50e-9, AmpJPerBitM2: 100e-12}
}

// TxEnergy returns the energy to transmit n bytes over distance d meters.
func (r RadioParams) TxEnergy(n int, d float64) float64 {
	bits := float64(n * 8)
	return r.ElecJPerBit*bits + r.AmpJPerBitM2*bits*d*d
}

// RxEnergy returns the energy to receive n bytes.
func (r RadioParams) RxEnergy(n int) float64 {
	return r.ElecJPerBit * float64(n*8)
}

// Config parameterizes a Network.
type Config struct {
	// Range is the radio range in meters (default 25).
	Range float64
	// LossRate is the independent per-packet loss probability (default 0).
	LossRate float64
	// Latency is the fixed one-hop delivery delay (default 0: synchronous
	// delivery).
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) per packet.
	Jitter time.Duration
	// InboxSize is each node's receive queue capacity; packets arriving at a
	// full queue are dropped and counted (default 256).
	InboxSize int
	// Radio is the energy model (default DefaultRadio).
	Radio RadioParams
	// InitialEnergy is each node's starting budget in joules (default 2 J;
	// 0 keeps the default, use Unlimited for no budget).
	InitialEnergy float64
	// Unlimited disables energy accounting deaths (consumption still
	// tracked).
	Unlimited bool
	// Clock drives latency timers (default simtime.Real).
	Clock simtime.Clock
	// Seed seeds the loss/jitter/mobility RNG (default 1).
	Seed int64
	// Tracer records one span per radio hop (unicast send, broadcast) with
	// the drop reason on failures, so a user-level call's timeline shows
	// where each packet went. Nil follows the process default; span creation
	// never touches the simulation RNG, so traced and untraced runs with the
	// same seed behave identically.
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.Range <= 0 {
		c.Range = 25
	}
	if c.InboxSize <= 0 {
		c.InboxSize = 256
	}
	if c.Radio == (RadioParams{}) {
		c.Radio = DefaultRadio()
	}
	if c.InitialEnergy <= 0 {
		c.InitialEnergy = 2
	}
	if c.Clock == nil {
		c.Clock = simtime.Real{}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Errors returned by Network operations.
var (
	ErrUnknownNode   = errors.New("netsim: unknown node")
	ErrNodeDead      = errors.New("netsim: node is dead")
	ErrNotNeighbor   = errors.New("netsim: destination out of radio range")
	ErrLinkSevered   = errors.New("netsim: link severed by partition")
	ErrPacketLost    = errors.New("netsim: packet lost")
	ErrInboxFull     = errors.New("netsim: destination inbox full")
	ErrNetworkClosed = errors.New("netsim: network closed")
	ErrDuplicateNode = errors.New("netsim: node already exists")
)

type simNode struct {
	id       NodeID
	pos      Position
	energy   float64
	consumed float64
	alive    bool
	inbox    chan Packet
}

// Network is a simulated radio field. All methods are safe for concurrent
// use.
type Network struct {
	cfg      Config
	traceRef *trace.Ref

	mu      sync.Mutex
	rng     *rand.Rand
	nodes   map[NodeID]*simNode
	severed map[[2]NodeID]bool
	closed  bool

	wg   sync.WaitGroup
	stop chan struct{}

	counters stats.Counter
	// obsCounters mirror counters into the shared observability registry
	// under "netsim.<name>"; energyGauge tracks total consumed energy.
	obsCounters map[string]*obs.Counter
	energyGauge *obs.Gauge
}

// New creates a network with the given configuration.
func New(cfg Config) *Network {
	cfg = cfg.withDefaults()
	n := &Network{
		cfg:         cfg,
		traceRef:    trace.NewRef(cfg.Tracer),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		nodes:       make(map[NodeID]*simNode),
		severed:     make(map[[2]NodeID]bool),
		stop:        make(chan struct{}),
		obsCounters: make(map[string]*obs.Counter),
		energyGauge: obs.Default().Gauge("netsim.energy_consumed_j"),
	}
	for _, name := range []string{"sent", "bytes", "lost", "delivered", "dropped_full", "broadcasts"} {
		n.obsCounters[name] = obs.Default().Counter("netsim." + name)
	}
	return n
}

// SetTracer installs the network's tracer (nil reverts to the process
// default).
func (n *Network) SetTracer(t *trace.Tracer) { n.traceRef.Set(t) }

// count bumps a traffic counter in both the local snapshot (Counters) and
// the shared observability registry.
func (n *Network) count(name string, delta int64) {
	n.counters.Inc(name, delta)
	n.obsCounters[name].Inc(delta)
}

// Close stops all in-flight deliveries and waits for them.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	close(n.stop)
	n.mu.Unlock()
	n.wg.Wait()
}

// AddNode places a node on the field with the default energy budget.
func (n *Network) AddNode(id NodeID, pos Position) error {
	return n.AddNodeEnergy(id, pos, n.cfg.InitialEnergy)
}

// AddNodeEnergy places a node with an explicit energy budget in joules.
func (n *Network) AddNodeEnergy(id NodeID, pos Position, energy float64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrNetworkClosed
	}
	if _, ok := n.nodes[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, id)
	}
	n.nodes[id] = &simNode{
		id:     id,
		pos:    pos,
		energy: energy,
		alive:  true,
		inbox:  make(chan Packet, n.cfg.InboxSize),
	}
	return nil
}

// RemoveNode deletes a node entirely (its inbox channel is closed).
func (n *Network) RemoveNode(id NodeID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	delete(n.nodes, id)
	close(node.inbox)
	return nil
}

// Kill marks a node dead (crash-stop failure); its inbox stays open but it
// no longer sends or receives.
func (n *Network) Kill(id NodeID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	node.alive = false
	return nil
}

// Revive brings a killed node back (if it has energy left).
func (n *Network) Revive(id NodeID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	if node.energy > 0 || n.cfg.Unlimited {
		node.alive = true
	}
	return nil
}

// Alive reports whether the node exists and is alive.
func (n *Network) Alive(id NodeID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[id]
	return ok && node.alive
}

// MoveNode teleports a node to a new position (mobility).
func (n *Network) MoveNode(id NodeID, pos Position) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	node.pos = pos
	return nil
}

// PositionOf returns a node's current position.
func (n *Network) PositionOf(id NodeID) (Position, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[id]
	if !ok {
		return Position{}, fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	return node.pos, nil
}

// Nodes returns the IDs of all nodes (alive or dead), sorted.
func (n *Network) Nodes() []NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Neighbors returns the alive nodes within radio range of id, excluding
// severed links, sorted by ID.
func (n *Network) Neighbors(id NodeID) ([]NodeID, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	var out []NodeID
	for oid, other := range n.nodes {
		if oid == id || !other.alive {
			continue
		}
		if node.pos.Distance(other.pos) <= n.cfg.Range && !n.severedLocked(id, oid) {
			out = append(out, oid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Density returns the number of alive radio neighbours of id.
func (n *Network) Density(id NodeID) int {
	nb, err := n.Neighbors(id)
	if err != nil {
		return 0
	}
	return len(nb)
}

// Recv returns the receive queue of a node. Reading from it consumes
// delivered packets.
func (n *Network) Recv(id NodeID) (<-chan Packet, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	return node.inbox, nil
}

// Energy returns the remaining energy budget of a node in joules.
func (n *Network) Energy(id NodeID) (float64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	return node.energy, nil
}

// Consumed returns the total energy a node has spent.
func (n *Network) Consumed(id NodeID) (float64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	return node.consumed, nil
}

// TotalConsumed returns the energy spent across all nodes.
func (n *Network) TotalConsumed() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	var sum float64
	for _, node := range n.nodes {
		sum += node.consumed
	}
	return sum
}

// AliveCount returns the number of alive nodes.
func (n *Network) AliveCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := 0
	for _, node := range n.nodes {
		if node.alive {
			c++
		}
	}
	return c
}

// SetLossRate replaces the per-packet loss probability at runtime and
// returns the previous rate. Fault-injection harnesses use it to model loss
// bursts: raise the rate for a window, then restore the returned value.
func (n *Network) SetLossRate(p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	prev := n.cfg.LossRate
	n.cfg.LossRate = p
	return prev
}

// LossRate returns the current per-packet loss probability.
func (n *Network) LossRate() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cfg.LossRate
}

// SetLatency replaces the fixed one-hop delay and jitter at runtime and
// returns the previous values (latency spikes, the dual of SetLossRate).
// Packets already in flight keep their original arrival times.
func (n *Network) SetLatency(latency, jitter time.Duration) (time.Duration, time.Duration) {
	if latency < 0 {
		latency = 0
	}
	if jitter < 0 {
		jitter = 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	prevLat, prevJit := n.cfg.Latency, n.cfg.Jitter
	n.cfg.Latency, n.cfg.Jitter = latency, jitter
	return prevLat, prevJit
}

// Sever cuts the bidirectional link between a and b (partition modelling).
func (n *Network) Sever(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.severed[linkKey(a, b)] = true
}

// Heal restores a severed link.
func (n *Network) Heal(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.severed, linkKey(a, b))
}

// Partition severs every link between the two groups.
func (n *Network) Partition(groupA, groupB []NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, a := range groupA {
		for _, b := range groupB {
			n.severed[linkKey(a, b)] = true
		}
	}
}

// Isolate severs every link between id and all other current nodes — the
// single-node partition a fault injector uses to cut an infrastructure node
// off without killing it. Undo with Rejoin.
func (n *Network) Isolate(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for oid := range n.nodes {
		if oid != id {
			n.severed[linkKey(id, oid)] = true
		}
	}
}

// Rejoin heals every severed link involving id.
func (n *Network) Rejoin(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for k := range n.severed {
		if k[0] == id || k[1] == id {
			delete(n.severed, k)
		}
	}
}

// HealAll removes all severed links.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.severed = make(map[[2]NodeID]bool)
}

func linkKey(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

func (n *Network) severedLocked(a, b NodeID) bool {
	return n.severed[linkKey(a, b)]
}

// Counters returns a snapshot of the network's traffic counters:
// sent, delivered, lost, dropped_full, broadcasts, bytes.
func (n *Network) Counters() map[string]int64 {
	return n.counters.Snapshot()
}

// Send transmits data from one node to a radio neighbour. It charges TX
// energy to the sender and, on successful delivery, RX energy to the
// receiver. It returns an error describing why delivery failed; the energy
// for the attempt is charged regardless (the radio transmitted either way).
//
// With a tracer installed each hop records a "radio.send" span under the
// sender's ambient span, closing at the packet's simulated arrival time so
// the timeline shows the hop latency; failed hops record the drop reason.
func (n *Network) Send(from, to NodeID, data []byte) error {
	sp := n.traceRef.Get().StartSpan("radio.send", trace.Context{})
	if sp == nil {
		_, err := n.send(from, to, data)
		return err
	}
	sp.SetAttr("from", string(from))
	sp.SetAttr("to", string(to))
	arrive, err := n.send(from, to, data)
	sp.SetError(err)
	if err == nil && !arrive.IsZero() {
		sp.FinishAt(arrive)
	} else {
		sp.Finish()
	}
	return err
}

// send is Send's untraced body; it returns the packet's simulated arrival
// time on success.
func (n *Network) send(from, to NodeID, data []byte) (time.Time, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return time.Time{}, ErrNetworkClosed
	}
	src, ok := n.nodes[from]
	if !ok {
		n.mu.Unlock()
		return time.Time{}, fmt.Errorf("%w: %s", ErrUnknownNode, from)
	}
	if !src.alive {
		n.mu.Unlock()
		return time.Time{}, fmt.Errorf("%w: %s", ErrNodeDead, from)
	}
	dst, ok := n.nodes[to]
	if !ok {
		n.mu.Unlock()
		return time.Time{}, fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	d := src.pos.Distance(dst.pos)
	if d > n.cfg.Range {
		n.mu.Unlock()
		return time.Time{}, fmt.Errorf("%w: %s -> %s (%.1fm > %.1fm)", ErrNotNeighbor, from, to, d, n.cfg.Range)
	}
	if n.severedLocked(from, to) {
		n.mu.Unlock()
		return time.Time{}, fmt.Errorf("%w: %s -> %s", ErrLinkSevered, from, to)
	}

	n.chargeLocked(src, n.cfg.Radio.TxEnergy(len(data), d))
	n.count("sent", 1)
	n.count("bytes", int64(len(data)))

	if !dst.alive {
		n.mu.Unlock()
		return time.Time{}, fmt.Errorf("%w: %s", ErrNodeDead, to)
	}
	if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		n.mu.Unlock()
		n.count("lost", 1)
		return time.Time{}, fmt.Errorf("%w: %s -> %s", ErrPacketLost, from, to)
	}
	n.chargeLocked(dst, n.cfg.Radio.RxEnergy(len(data)))
	if !dst.alive { // RX cost may have exhausted the destination
		n.mu.Unlock()
		return time.Time{}, fmt.Errorf("%w: %s", ErrNodeDead, to)
	}

	pkt := Packet{
		From:      from,
		To:        to,
		Data:      append([]byte(nil), data...),
		ArrivedAt: n.cfg.Clock.Now().Add(n.latencyLocked()),
	}
	delay := pkt.ArrivedAt.Sub(n.cfg.Clock.Now())
	inbox := dst.inbox
	n.mu.Unlock()

	return pkt.ArrivedAt, n.deliver(inbox, pkt, delay)
}

// Broadcast transmits data from a node to every alive radio neighbour. The
// sender is charged a single maximum-range transmission; each neighbour pays
// RX cost and loss is evaluated per receiver. It returns the number of
// neighbours the packet was delivered to.
//
// With a tracer installed the whole broadcast records one "radio.broadcast"
// span (delivered count as an attribute), closing at the latest simulated
// arrival among the receivers.
func (n *Network) Broadcast(from NodeID, data []byte) (int, error) {
	sp := n.traceRef.Get().StartSpan("radio.broadcast", trace.Context{})
	if sp == nil {
		c, _, err := n.broadcast(from, data)
		return c, err
	}
	sp.SetAttr("from", string(from))
	count, latest, err := n.broadcast(from, data)
	sp.SetAttr("delivered", fmt.Sprintf("%d", count))
	sp.SetError(err)
	if err == nil && !latest.IsZero() {
		sp.FinishAt(latest)
	} else {
		sp.Finish()
	}
	return count, err
}

// broadcast is Broadcast's untraced body; it also returns the latest
// simulated arrival time among the delivered copies.
func (n *Network) broadcast(from NodeID, data []byte) (int, time.Time, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return 0, time.Time{}, ErrNetworkClosed
	}
	src, ok := n.nodes[from]
	if !ok {
		n.mu.Unlock()
		return 0, time.Time{}, fmt.Errorf("%w: %s", ErrUnknownNode, from)
	}
	if !src.alive {
		n.mu.Unlock()
		return 0, time.Time{}, fmt.Errorf("%w: %s", ErrNodeDead, from)
	}
	n.chargeLocked(src, n.cfg.Radio.TxEnergy(len(data), n.cfg.Range))
	n.count("sent", 1)
	n.count("broadcasts", 1)
	n.count("bytes", int64(len(data)))

	type target struct {
		inbox chan Packet
		pkt   Packet
		delay time.Duration
	}
	var targets []target
	now := n.cfg.Clock.Now()
	for oid, other := range n.nodes {
		if oid == from || !other.alive {
			continue
		}
		if src.pos.Distance(other.pos) > n.cfg.Range || n.severedLocked(from, oid) {
			continue
		}
		if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
			n.count("lost", 1)
			continue
		}
		n.chargeLocked(other, n.cfg.Radio.RxEnergy(len(data)))
		if !other.alive {
			continue
		}
		lat := n.latencyLocked()
		targets = append(targets, target{
			inbox: other.inbox,
			pkt: Packet{
				From:      from,
				Data:      append([]byte(nil), data...),
				ArrivedAt: now.Add(lat),
			},
			delay: lat,
		})
	}
	n.mu.Unlock()

	delivered := 0
	var latest time.Time
	for _, tg := range targets {
		if err := n.deliver(tg.inbox, tg.pkt, tg.delay); err == nil {
			delivered++
			if tg.pkt.ArrivedAt.After(latest) {
				latest = tg.pkt.ArrivedAt
			}
		}
	}
	return delivered, latest, nil
}

// deliver places pkt into inbox, after delay if one is configured.
func (n *Network) deliver(inbox chan Packet, pkt Packet, delay time.Duration) error {
	if delay <= 0 {
		select {
		case inbox <- pkt:
			n.count("delivered", 1)
			return nil
		default:
			n.count("dropped_full", 1)
			return ErrInboxFull
		}
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		select {
		case <-n.cfg.Clock.After(delay):
		case <-n.stop:
			return
		}
		select {
		case inbox <- pkt:
			n.count("delivered", 1)
		default:
			n.count("dropped_full", 1)
		}
	}()
	return nil
}

// latencyLocked draws a delivery delay. Callers hold n.mu (for the RNG).
func (n *Network) latencyLocked() time.Duration {
	lat := n.cfg.Latency
	if n.cfg.Jitter > 0 {
		lat += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
	}
	return lat
}

// chargeLocked deducts energy from a node and kills it on exhaustion.
func (n *Network) chargeLocked(node *simNode, joules float64) {
	node.consumed += joules
	n.energyGauge.Add(joules)
	if n.cfg.Unlimited {
		return
	}
	node.energy -= joules
	if node.energy <= 0 {
		node.energy = 0
		node.alive = false
	}
}
