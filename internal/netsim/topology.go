package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// UniformField places n nodes named prefix0..prefix{n-1} uniformly at random
// on a size×size field, using the given seed for reproducibility.
func UniformField(net *Network, prefix string, n int, size float64, seed int64) ([]NodeID, error) {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		id := NodeID(fmt.Sprintf("%s%d", prefix, i))
		pos := Position{X: rng.Float64() * size, Y: rng.Float64() * size}
		if err := net.AddNode(id, pos); err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// GridField places nodes on a √n×√n grid with the given spacing, guaranteeing
// a connected topology when spacing <= radio range.
func GridField(net *Network, prefix string, n int, spacing float64) ([]NodeID, error) {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	ids := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		id := NodeID(fmt.Sprintf("%s%d", prefix, i))
		pos := Position{X: float64(i%side) * spacing, Y: float64(i/side) * spacing}
		if err := net.AddNode(id, pos); err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Connected reports whether all alive nodes form one radio-connected
// component.
func Connected(net *Network) bool {
	ids := net.Nodes()
	var alive []NodeID
	for _, id := range ids {
		if net.Alive(id) {
			alive = append(alive, id)
		}
	}
	if len(alive) <= 1 {
		return true
	}
	seen := map[NodeID]bool{alive[0]: true}
	frontier := []NodeID{alive[0]}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		nb, err := net.Neighbors(cur)
		if err != nil {
			continue
		}
		for _, o := range nb {
			if !seen[o] {
				seen[o] = true
				frontier = append(frontier, o)
			}
		}
	}
	for _, id := range alive {
		if !seen[id] {
			return false
		}
	}
	return true
}

// Waypoint is a random-waypoint mobility model: each node picks a random
// destination on the field and moves toward it at its speed; on arrival it
// picks a new destination. Step the model explicitly from the experiment
// loop so movement stays deterministic.
type Waypoint struct {
	net   *Network
	rng   *rand.Rand
	size  float64
	speed float64 // meters per step
	dests map[NodeID]Position
}

// NewWaypoint creates a waypoint model over the given nodes. speed is meters
// moved per Step call.
func NewWaypoint(net *Network, size, speed float64, seed int64) *Waypoint {
	return &Waypoint{
		net:   net,
		rng:   rand.New(rand.NewSource(seed)),
		size:  size,
		speed: speed,
		dests: make(map[NodeID]Position),
	}
}

// Step advances every alive node one movement increment.
func (w *Waypoint) Step() {
	ids := w.net.Nodes()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if !w.net.Alive(id) {
			continue
		}
		pos, err := w.net.PositionOf(id)
		if err != nil {
			continue
		}
		dest, ok := w.dests[id]
		if !ok || pos.Distance(dest) < w.speed {
			dest = Position{X: w.rng.Float64() * w.size, Y: w.rng.Float64() * w.size}
			w.dests[id] = dest
		}
		d := pos.Distance(dest)
		if d == 0 {
			continue
		}
		frac := w.speed / d
		if frac > 1 {
			frac = 1
		}
		next := Position{X: pos.X + (dest.X-pos.X)*frac, Y: pos.Y + (dest.Y-pos.Y)*frac}
		_ = w.net.MoveNode(id, next)
	}
}
