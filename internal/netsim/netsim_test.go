package netsim

import (
	"errors"
	"math"
	"testing"
	"time"

	"ndsm/internal/simtime"
)

func testNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n := New(cfg)
	t.Cleanup(n.Close)
	return n
}

func mustAdd(t *testing.T, n *Network, id NodeID, pos Position) {
	t.Helper()
	if err := n.AddNode(id, pos); err != nil {
		t.Fatalf("AddNode(%s): %v", id, err)
	}
}

func TestPositionDistance(t *testing.T) {
	p := Position{0, 0}
	q := Position{3, 4}
	if got := p.Distance(q); got != 5 {
		t.Fatalf("Distance = %v, want 5", got)
	}
	if got := q.Distance(q); got != 0 {
		t.Fatalf("self distance = %v, want 0", got)
	}
}

func TestRadioEnergyModel(t *testing.T) {
	r := DefaultRadio()
	// 1 byte at distance 0: only electronics cost, both directions equal.
	if tx, rx := r.TxEnergy(1, 0), r.RxEnergy(1); tx != rx {
		t.Fatalf("TxEnergy(1,0)=%v != RxEnergy(1)=%v", tx, rx)
	}
	// Amplifier term grows with d².
	e10 := r.TxEnergy(100, 10)
	e20 := r.TxEnergy(100, 20)
	ampGrowth := (e20 - r.RxEnergy(100)) / (e10 - r.RxEnergy(100))
	if math.Abs(ampGrowth-4) > 1e-9 {
		t.Fatalf("amplifier growth = %v, want 4 (d² law)", ampGrowth)
	}
}

func TestAddRemoveNode(t *testing.T) {
	n := testNet(t, Config{})
	mustAdd(t, n, "a", Position{0, 0})
	if err := n.AddNode("a", Position{1, 1}); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("duplicate add: err = %v", err)
	}
	if got := n.Nodes(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Nodes = %v", got)
	}
	if err := n.RemoveNode("a"); err != nil {
		t.Fatal(err)
	}
	if err := n.RemoveNode("a"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("second remove: err = %v", err)
	}
	if len(n.Nodes()) != 0 {
		t.Fatal("node not removed")
	}
}

func TestSendDelivers(t *testing.T) {
	n := testNet(t, Config{Range: 10})
	mustAdd(t, n, "a", Position{0, 0})
	mustAdd(t, n, "b", Position{5, 0})
	if err := n.Send("a", "b", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	rx, err := n.Recv("b")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-rx:
		if pkt.From != "a" || pkt.To != "b" || string(pkt.Data) != "hi" {
			t.Fatalf("bad packet: %+v", pkt)
		}
	default:
		t.Fatal("no packet delivered")
	}
	c := n.Counters()
	if c["sent"] != 1 || c["delivered"] != 1 {
		t.Fatalf("counters = %v", c)
	}
}

func TestSendDataIsolated(t *testing.T) {
	n := testNet(t, Config{Range: 10})
	mustAdd(t, n, "a", Position{0, 0})
	mustAdd(t, n, "b", Position{1, 0})
	data := []byte("mutable")
	if err := n.Send("a", "b", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	rx, _ := n.Recv("b")
	pkt := <-rx
	if string(pkt.Data) != "mutable" {
		t.Fatalf("delivered data shares caller buffer: %q", pkt.Data)
	}
}

func TestSendOutOfRange(t *testing.T) {
	n := testNet(t, Config{Range: 10})
	mustAdd(t, n, "a", Position{0, 0})
	mustAdd(t, n, "b", Position{50, 0})
	if err := n.Send("a", "b", []byte("x")); !errors.Is(err, ErrNotNeighbor) {
		t.Fatalf("err = %v, want ErrNotNeighbor", err)
	}
}

func TestSendUnknownAndDead(t *testing.T) {
	n := testNet(t, Config{Range: 10})
	mustAdd(t, n, "a", Position{0, 0})
	mustAdd(t, n, "b", Position{1, 0})
	if err := n.Send("zz", "b", nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown src: %v", err)
	}
	if err := n.Send("a", "zz", nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown dst: %v", err)
	}
	if err := n.Kill("b"); err != nil {
		t.Fatal(err)
	}
	if err := n.Send("a", "b", nil); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("dead dst: %v", err)
	}
	if err := n.Send("b", "a", nil); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("dead src: %v", err)
	}
	if err := n.Revive("b"); err != nil {
		t.Fatal(err)
	}
	if err := n.Send("a", "b", nil); err != nil {
		t.Fatalf("after revive: %v", err)
	}
}

func TestLossRate(t *testing.T) {
	n := testNet(t, Config{Range: 10, LossRate: 1.0, Unlimited: true})
	mustAdd(t, n, "a", Position{0, 0})
	mustAdd(t, n, "b", Position{1, 0})
	for i := 0; i < 5; i++ {
		if err := n.Send("a", "b", []byte("x")); !errors.Is(err, ErrPacketLost) {
			t.Fatalf("err = %v, want ErrPacketLost", err)
		}
	}
	if c := n.Counters(); c["lost"] != 5 || c["delivered"] != 0 {
		t.Fatalf("counters = %v", c)
	}
}

func TestLossRateStatistical(t *testing.T) {
	n := testNet(t, Config{Range: 10, LossRate: 0.3, Unlimited: true, Seed: 42})
	mustAdd(t, n, "a", Position{0, 0})
	mustAdd(t, n, "b", Position{1, 0})
	rx, _ := n.Recv("b")
	const total = 2000
	lost := 0
	for i := 0; i < total; i++ {
		if err := n.Send("a", "b", []byte("x")); errors.Is(err, ErrPacketLost) {
			lost++
		}
		// Drain to keep the inbox from filling.
		select {
		case <-rx:
		default:
		}
	}
	rate := float64(lost) / total
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("observed loss rate %.3f, want ≈0.30", rate)
	}
}

func TestEnergyAccounting(t *testing.T) {
	n := testNet(t, Config{Range: 100})
	mustAdd(t, n, "a", Position{0, 0})
	mustAdd(t, n, "b", Position{10, 0})
	before, _ := n.Energy("a")
	if err := n.Send("a", "b", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	afterA, _ := n.Energy("a")
	wantTx := DefaultRadio().TxEnergy(100, 10)
	if math.Abs((before-afterA)-wantTx) > 1e-15 {
		t.Fatalf("sender spent %v, want %v", before-afterA, wantTx)
	}
	consumedB, _ := n.Consumed("b")
	if math.Abs(consumedB-DefaultRadio().RxEnergy(100)) > 1e-15 {
		t.Fatalf("receiver consumed %v, want RxEnergy", consumedB)
	}
	if n.TotalConsumed() <= 0 {
		t.Fatal("TotalConsumed should be positive")
	}
}

func TestEnergyExhaustionKillsNode(t *testing.T) {
	n := testNet(t, Config{Range: 100})
	// Tiny budget: one 1000-byte send at 50m drains it.
	if err := n.AddNodeEnergy("a", Position{0, 0}, 1e-9); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, n, "b", Position{50, 0})
	err := n.Send("a", "b", make([]byte, 1000))
	// The send itself may succeed or fail depending on ordering; what matters
	// is the node dies.
	_ = err
	if n.Alive("a") {
		t.Fatal("node with exhausted energy still alive")
	}
	e, _ := n.Energy("a")
	if e != 0 {
		t.Fatalf("energy = %v, want 0", e)
	}
	if err := n.Revive("a"); err != nil {
		t.Fatal(err)
	}
	if n.Alive("a") {
		t.Fatal("revive should not resurrect an energy-exhausted node")
	}
}

func TestUnlimitedEnergy(t *testing.T) {
	n := testNet(t, Config{Range: 100, Unlimited: true})
	if err := n.AddNodeEnergy("a", Position{0, 0}, 1e-12); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, n, "b", Position{50, 0})
	for i := 0; i < 10; i++ {
		if err := n.Send("a", "b", make([]byte, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	if !n.Alive("a") {
		t.Fatal("unlimited node died")
	}
	if c, _ := n.Consumed("a"); c <= 0 {
		t.Fatal("consumption should still be tracked")
	}
}

func TestNeighborsAndDensity(t *testing.T) {
	n := testNet(t, Config{Range: 10})
	mustAdd(t, n, "a", Position{0, 0})
	mustAdd(t, n, "b", Position{5, 0})
	mustAdd(t, n, "c", Position{9, 0})
	mustAdd(t, n, "far", Position{100, 100})
	nb, err := n.Neighbors("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(nb) != 2 || nb[0] != "b" || nb[1] != "c" {
		t.Fatalf("Neighbors(a) = %v, want [b c]", nb)
	}
	if got := n.Density("a"); got != 2 {
		t.Fatalf("Density = %d, want 2", got)
	}
	if err := n.Kill("b"); err != nil {
		t.Fatal(err)
	}
	if got := n.Density("a"); got != 1 {
		t.Fatalf("Density after kill = %d, want 1", got)
	}
	if _, err := n.Neighbors("nope"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestSeverAndHeal(t *testing.T) {
	n := testNet(t, Config{Range: 10})
	mustAdd(t, n, "a", Position{0, 0})
	mustAdd(t, n, "b", Position{1, 0})
	n.Sever("a", "b")
	if err := n.Send("a", "b", nil); !errors.Is(err, ErrLinkSevered) {
		t.Fatalf("err = %v, want ErrLinkSevered", err)
	}
	if err := n.Send("b", "a", nil); !errors.Is(err, ErrLinkSevered) {
		t.Fatalf("reverse direction: err = %v", err)
	}
	if n.Density("a") != 0 {
		t.Fatal("severed link still counted as neighbour")
	}
	n.Heal("a", "b")
	if err := n.Send("a", "b", nil); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestPartitionGroups(t *testing.T) {
	n := testNet(t, Config{Range: 100})
	for _, id := range []NodeID{"a1", "a2", "b1", "b2"} {
		mustAdd(t, n, id, Position{0, 0})
	}
	n.Partition([]NodeID{"a1", "a2"}, []NodeID{"b1", "b2"})
	if err := n.Send("a1", "b1", nil); !errors.Is(err, ErrLinkSevered) {
		t.Fatalf("cross-group: %v", err)
	}
	if err := n.Send("a1", "a2", nil); err != nil {
		t.Fatalf("intra-group: %v", err)
	}
	if Connected(n) {
		t.Fatal("partitioned network reported connected")
	}
	n.HealAll()
	if err := n.Send("a1", "b1", nil); err != nil {
		t.Fatalf("after HealAll: %v", err)
	}
	if !Connected(n) {
		t.Fatal("healed network reported disconnected")
	}
}

func TestBroadcast(t *testing.T) {
	n := testNet(t, Config{Range: 10})
	mustAdd(t, n, "src", Position{0, 0})
	mustAdd(t, n, "n1", Position{3, 0})
	mustAdd(t, n, "n2", Position{0, 3})
	mustAdd(t, n, "far", Position{99, 99})
	delivered, err := n.Broadcast("src", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2", delivered)
	}
	for _, id := range []NodeID{"n1", "n2"} {
		rx, _ := n.Recv(id)
		select {
		case pkt := <-rx:
			if pkt.From != "src" || pkt.To != "" {
				t.Fatalf("bad broadcast packet: %+v", pkt)
			}
		default:
			t.Fatalf("%s did not receive broadcast", id)
		}
	}
	rx, _ := n.Recv("far")
	select {
	case <-rx:
		t.Fatal("out-of-range node received broadcast")
	default:
	}
}

func TestBroadcastFromDead(t *testing.T) {
	n := testNet(t, Config{Range: 10})
	mustAdd(t, n, "a", Position{0, 0})
	if err := n.Kill("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Broadcast("a", nil); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("err = %v", err)
	}
}

func TestInboxOverflow(t *testing.T) {
	n := testNet(t, Config{Range: 10, InboxSize: 2, Unlimited: true})
	mustAdd(t, n, "a", Position{0, 0})
	mustAdd(t, n, "b", Position{1, 0})
	var overflow error
	for i := 0; i < 3; i++ {
		overflow = n.Send("a", "b", []byte("x"))
	}
	if !errors.Is(overflow, ErrInboxFull) {
		t.Fatalf("err = %v, want ErrInboxFull", err(overflow))
	}
	if c := n.Counters(); c["dropped_full"] != 1 {
		t.Fatalf("counters = %v", c)
	}
}

func err(e error) error { return e }

func TestLatencyWithVirtualClock(t *testing.T) {
	clk := simtime.NewVirtual(time.Date(2003, 1, 1, 0, 0, 0, 0, time.UTC))
	n := testNet(t, Config{Range: 10, Latency: 100 * time.Millisecond, Clock: clk, Unlimited: true})
	mustAdd(t, n, "a", Position{0, 0})
	mustAdd(t, n, "b", Position{1, 0})
	if e := n.Send("a", "b", []byte("x")); e != nil {
		t.Fatal(e)
	}
	rx, _ := n.Recv("b")
	select {
	case <-rx:
		t.Fatal("packet arrived before latency elapsed")
	default:
	}
	// Wait until the delivery goroutine registers its timer, then advance.
	deadline := time.Now().Add(5 * time.Second)
	for clk.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("delivery goroutine never registered timer")
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(100 * time.Millisecond)
	select {
	case pkt := <-rx:
		if string(pkt.Data) != "x" {
			t.Fatalf("bad packet: %+v", pkt)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("packet never arrived after advancing clock")
	}
}

func TestCloseStopsDeliveries(t *testing.T) {
	clk := simtime.NewVirtual(time.Date(2003, 1, 1, 0, 0, 0, 0, time.UTC))
	n := New(Config{Range: 10, Latency: time.Hour, Clock: clk, Unlimited: true})
	mustAdd(t, n, "a", Position{0, 0})
	mustAdd(t, n, "b", Position{1, 0})
	if e := n.Send("a", "b", []byte("x")); e != nil {
		t.Fatal(e)
	}
	done := make(chan struct{})
	go func() {
		n.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on in-flight delayed delivery")
	}
	if e := n.Send("a", "b", nil); !errors.Is(e, ErrNetworkClosed) {
		t.Fatalf("send after close: %v", e)
	}
	if e := n.AddNode("c", Position{}); !errors.Is(e, ErrNetworkClosed) {
		t.Fatalf("add after close: %v", e)
	}
	n.Close() // idempotent
}

func TestMoveNodeAffectsRange(t *testing.T) {
	n := testNet(t, Config{Range: 10})
	mustAdd(t, n, "a", Position{0, 0})
	mustAdd(t, n, "b", Position{50, 0})
	if e := n.Send("a", "b", nil); !errors.Is(e, ErrNotNeighbor) {
		t.Fatalf("before move: %v", e)
	}
	if e := n.MoveNode("b", Position{5, 0}); e != nil {
		t.Fatal(e)
	}
	if e := n.Send("a", "b", nil); e != nil {
		t.Fatalf("after move: %v", e)
	}
	p, e := n.PositionOf("b")
	if e != nil || p != (Position{5, 0}) {
		t.Fatalf("PositionOf = %v, %v", p, e)
	}
	if e := n.MoveNode("zz", Position{}); !errors.Is(e, ErrUnknownNode) {
		t.Fatalf("move unknown: %v", e)
	}
}

func TestUniformField(t *testing.T) {
	n := testNet(t, Config{Range: 30})
	ids, e := UniformField(n, "s", 50, 100, 7)
	if e != nil {
		t.Fatal(e)
	}
	if len(ids) != 50 || len(n.Nodes()) != 50 {
		t.Fatalf("placed %d nodes", len(ids))
	}
	for _, id := range ids {
		p, err := n.PositionOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if p.X < 0 || p.X > 100 || p.Y < 0 || p.Y > 100 {
			t.Fatalf("node %s outside field: %+v", id, p)
		}
	}
	// Same seed reproduces the same layout.
	n2 := testNet(t, Config{Range: 30})
	if _, e := UniformField(n2, "s", 50, 100, 7); e != nil {
		t.Fatal(e)
	}
	for _, id := range ids {
		p1, _ := n.PositionOf(id)
		p2, _ := n2.PositionOf(id)
		if p1 != p2 {
			t.Fatalf("layout not reproducible for %s: %v vs %v", id, p1, p2)
		}
	}
}

func TestGridFieldConnected(t *testing.T) {
	n := testNet(t, Config{Range: 10})
	ids, e := GridField(n, "g", 16, 10)
	if e != nil {
		t.Fatal(e)
	}
	if len(ids) != 16 {
		t.Fatalf("placed %d", len(ids))
	}
	if !Connected(n) {
		t.Fatal("grid with spacing == range should be connected")
	}
}

func TestConnectedTrivial(t *testing.T) {
	n := testNet(t, Config{})
	if !Connected(n) {
		t.Fatal("empty network should be connected")
	}
	mustAdd(t, n, "solo", Position{0, 0})
	if !Connected(n) {
		t.Fatal("single node should be connected")
	}
}

func TestWaypointMovesNodes(t *testing.T) {
	n := testNet(t, Config{Range: 10, Unlimited: true})
	mustAdd(t, n, "m", Position{0, 0})
	w := NewWaypoint(n, 100, 5, 3)
	start, _ := n.PositionOf("m")
	moved := false
	for i := 0; i < 10; i++ {
		w.Step()
		p, _ := n.PositionOf("m")
		if p != start {
			moved = true
		}
		if p.X < 0 || p.X > 100 || p.Y < 0 || p.Y > 100 {
			t.Fatalf("node left field: %+v", p)
		}
	}
	if !moved {
		t.Fatal("waypoint model never moved the node")
	}
}

func TestWaypointStepSize(t *testing.T) {
	n := testNet(t, Config{Range: 10, Unlimited: true})
	mustAdd(t, n, "m", Position{0, 0})
	w := NewWaypoint(n, 1000, 2, 5)
	prev, _ := n.PositionOf("m")
	for i := 0; i < 20; i++ {
		w.Step()
		cur, _ := n.PositionOf("m")
		if d := prev.Distance(cur); d > 2+1e-9 {
			t.Fatalf("step %d moved %v > speed 2", i, d)
		}
		prev = cur
	}
}

func TestAliveCount(t *testing.T) {
	n := testNet(t, Config{Range: 10})
	mustAdd(t, n, "a", Position{0, 0})
	mustAdd(t, n, "b", Position{1, 0})
	if got := n.AliveCount(); got != 2 {
		t.Fatalf("AliveCount = %d, want 2", got)
	}
	_ = n.Kill("a")
	if got := n.AliveCount(); got != 1 {
		t.Fatalf("AliveCount after kill = %d, want 1", got)
	}
}
