package milan

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ndsm/internal/netsim"
)

const (
	varBP Variable = "blood-pressure"
	varHR Variable = "heart-rate"

	stNormal    State = "normal"
	stEmergency State = "emergency"
)

// demoSystem: 4 sensors; s0/s1 measure BP, s2/s3 measure HR.
func demoSystem() *System {
	return &System{
		App: AppSpec{
			Variables: []Variable{varBP, varHR},
			Required: map[State]map[Variable]float64{
				stNormal:    {varBP: 0.7, varHR: 0.7},
				stEmergency: {varBP: 0.95, varHR: 0.9},
			},
		},
		Sensors: []Sensor{
			{Node: "s0", QoS: map[Variable]float64{varBP: 0.8}, SampleBytes: 100},
			{Node: "s1", QoS: map[Variable]float64{varBP: 0.75}, SampleBytes: 100},
			{Node: "s2", QoS: map[Variable]float64{varHR: 0.85}, SampleBytes: 100},
			{Node: "s3", QoS: map[Variable]float64{varHR: 0.7}, SampleBytes: 100},
		},
		Sink:    "sink",
		SinkPos: netsim.Position{X: 0, Y: 0},
		Range:   30,
	}
}

func fullEnergies(s *System, e float64) Energies {
	out := make(Energies)
	for _, sn := range s.Sensors {
		out[sn.Node] = e
	}
	return out
}

func positionsAt(s *System, d float64) map[netsim.NodeID]netsim.Position {
	out := make(map[netsim.NodeID]netsim.Position)
	for _, sn := range s.Sensors {
		out[sn.Node] = netsim.Position{X: d, Y: 0}
	}
	return out
}

func TestAppSpecValidate(t *testing.T) {
	s := demoSystem()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	var nilSpec *AppSpec
	if err := nilSpec.Validate(); err == nil {
		t.Error("nil spec validated")
	}
	bad := demoSystem()
	bad.App.Variables = nil
	if err := bad.Validate(); err == nil {
		t.Error("no variables validated")
	}
	bad = demoSystem()
	bad.App.Required[stNormal][varBP] = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("requirement > 1 validated")
	}
	bad = demoSystem()
	bad.Sensors = nil
	if err := bad.Validate(); err == nil {
		t.Error("no sensors validated")
	}
	bad = demoSystem()
	bad.Sensors[1].Node = "s0"
	if err := bad.Validate(); err == nil {
		t.Error("duplicate sensor validated")
	}
	bad = demoSystem()
	bad.Sensors[0].QoS[varBP] = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("negative sensor QoS validated")
	}
}

func TestCombineProb(t *testing.T) {
	if got := CombineProb([]float64{0.7}); math.Abs(got-0.7) > 1e-9 {
		t.Fatalf("single = %v", got)
	}
	if got := CombineProb([]float64{0.7, 0.7}); math.Abs(got-0.91) > 1e-9 {
		t.Fatalf("pair = %v, want 0.91", got)
	}
	if got := CombineProb(nil); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestCombineMax(t *testing.T) {
	if got := CombineMax([]float64{0.3, 0.9, 0.5}); got != 0.9 {
		t.Fatalf("max = %v", got)
	}
	if got := CombineMax(nil); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestSetQualityAndFeasibility(t *testing.T) {
	s := demoSystem()
	// s0 alone: BP 0.8 >= 0.7 but HR 0 < 0.7.
	if s.Feasible([]int{0}, stNormal) {
		t.Fatal("BP-only set feasible for both variables")
	}
	// s0+s2 covers both at normal level.
	if !s.Feasible([]int{0, 2}, stNormal) {
		t.Fatal("s0+s2 should be feasible at normal")
	}
	// Emergency BP needs 0.95: one BP sensor (0.8) is not enough...
	if s.Feasible([]int{0, 2}, stEmergency) {
		t.Fatal("single BP sensor feasible at emergency")
	}
	// ...but two BP sensors combine to 1-(0.2*0.25)=0.95, and the two HR
	// sensors to 1-(0.15*0.3)=0.955 ≥ 0.9.
	if !s.Feasible([]int{0, 1, 2, 3}, stEmergency) {
		t.Fatal("redundant sensors should reach emergency QoS")
	}
	if q := s.SetQuality([]int{0, 1}, varBP); math.Abs(q-0.95) > 1e-9 {
		t.Fatalf("combined BP quality = %v, want 0.95", q)
	}
	if s.Feasible([]int{0}, "no-such-state") {
		t.Fatal("unknown state feasible")
	}
}

func TestCombineMaxChangesFeasibility(t *testing.T) {
	s := demoSystem()
	s.Combine = CombineMax
	// Under max-combining, redundancy gives nothing: emergency BP (0.95)
	// unreachable with 0.8-quality sensors.
	if s.Feasible([]int{0, 1, 2, 3}, stEmergency) {
		t.Fatal("max combine should not reach 0.95")
	}
}

func TestPredictedLifetime(t *testing.T) {
	s := demoSystem()
	energies := fullEnergies(s, 1.0)
	positions := positionsAt(s, 10)
	life1 := s.PredictedLifetime([]int{0}, energies, positions)
	if life1 <= 0 {
		t.Fatalf("lifetime = %v", life1)
	}
	// Half the energy on one member halves the set lifetime.
	energies["s0"] = 0.5
	life2 := s.PredictedLifetime([]int{0}, energies, positions)
	if math.Abs(life2-life1/2) > 1e-6 {
		t.Fatalf("lifetime = %v, want %v", life2, life1/2)
	}
	// A set's lifetime is its weakest member's.
	lifeSet := s.PredictedLifetime([]int{0, 1}, energies, positions)
	if math.Abs(lifeSet-life2) > 1e-6 {
		t.Fatalf("set lifetime = %v, want weakest %v", lifeSet, life2)
	}
	if s.PredictedLifetime(nil, energies, positions) != 0 {
		t.Fatal("empty set lifetime should be 0")
	}
}

func TestExhaustiveSelectsMinimalFeasible(t *testing.T) {
	s := demoSystem()
	energies := fullEnergies(s, 1.0)
	positions := positionsAt(s, 10)
	set, err := Exhaustive{}.Select(s, stNormal, energies, positions)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Feasible(set, stNormal) {
		t.Fatal("selected set infeasible")
	}
	// All sensors are cost-identical here, so lifetime ties; minimal sets
	// (one BP + one HR) must win over larger ones.
	if len(set) != 2 {
		t.Fatalf("selected %v, want a 2-sensor set", set)
	}
}

func TestExhaustivePrefersLongerLifetime(t *testing.T) {
	s := demoSystem()
	energies := fullEnergies(s, 1.0)
	energies["s0"] = 0.1 // s0 nearly drained: choose s1 for BP instead
	positions := positionsAt(s, 10)
	set, err := Exhaustive{}.Select(s, stNormal, energies, positions)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range set {
		if s.Sensors[i].Node == "s0" {
			t.Fatalf("selected drained sensor: %v", set)
		}
	}
}

func TestExhaustiveInfeasible(t *testing.T) {
	s := demoSystem()
	energies := fullEnergies(s, 1.0)
	// Kill both HR sensors.
	energies["s2"], energies["s3"] = 0, 0
	if _, err := (Exhaustive{}).Select(s, stNormal, energies, positionsAt(s, 10)); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
	// No alive sensors at all.
	if _, err := (Exhaustive{}).Select(s, stNormal, Energies{}, nil); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestGreedyFindsFeasible(t *testing.T) {
	s := demoSystem()
	energies := fullEnergies(s, 1.0)
	positions := positionsAt(s, 10)
	set, err := Greedy{}.Select(s, stEmergency, energies, positions)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Feasible(set, stEmergency) {
		t.Fatalf("greedy set %v infeasible", set)
	}
}

func TestGreedyInfeasible(t *testing.T) {
	s := demoSystem()
	energies := fullEnergies(s, 1.0)
	energies["s2"], energies["s3"] = 0, 0
	if _, err := (Greedy{}).Select(s, stNormal, energies, positionsAt(s, 10)); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

// Property: whenever exhaustive finds a set, greedy also finds one, and both
// are feasible; exhaustive's predicted lifetime is never worse than
// greedy's.
func TestSelectorDominanceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	f := func() bool {
		n := 2 + r.Intn(6)
		s := &System{
			App: AppSpec{
				Variables: []Variable{varBP, varHR},
				Required: map[State]map[Variable]float64{
					stNormal: {varBP: 0.5 + r.Float64()*0.3, varHR: 0.5 + r.Float64()*0.3},
				},
			},
			Sink:    "sink",
			SinkPos: netsim.Position{},
			Range:   30,
		}
		for i := 0; i < n; i++ {
			s.Sensors = append(s.Sensors, Sensor{
				Node:        netsim.NodeID(rune('a' + i)),
				QoS:         map[Variable]float64{varBP: r.Float64(), varHR: r.Float64()},
				SampleBytes: 50 + r.Intn(100),
			})
		}
		energies := fullEnergies(s, 0.5+r.Float64())
		positions := make(map[netsim.NodeID]netsim.Position)
		for _, sn := range s.Sensors {
			positions[sn.Node] = netsim.Position{X: r.Float64() * 50, Y: r.Float64() * 50}
		}
		exSet, exErr := Exhaustive{}.Select(s, stNormal, energies, positions)
		grSet, grErr := Greedy{}.Select(s, stNormal, energies, positions)
		if exErr != nil {
			// If the optimal search fails, greedy must fail too.
			return grErr != nil
		}
		if grErr != nil {
			return false // greedy failed where a feasible set exists
		}
		if !s.Feasible(exSet, stNormal) || !s.Feasible(grSet, stNormal) {
			return false
		}
		exLife := s.PredictedLifetime(exSet, energies, positions)
		grLife := s.PredictedLifetime(grSet, energies, positions)
		return exLife >= grLife-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestAllSensorsSelector(t *testing.T) {
	s := demoSystem()
	energies := fullEnergies(s, 1.0)
	set, err := AllSensors{}.Select(s, stNormal, energies, nil)
	if err != nil || len(set) != 4 {
		t.Fatalf("set = %v, %v", set, err)
	}
	energies["s2"], energies["s3"] = 0, 0
	if _, err := (AllSensors{}).Select(s, stNormal, energies, nil); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestRandomFeasibleSelector(t *testing.T) {
	s := demoSystem()
	energies := fullEnergies(s, 1.0)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		set, err := (RandomFeasible{Rng: rng}).Select(s, stNormal, energies, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Feasible(set, stNormal) {
			t.Fatalf("random set %v infeasible", set)
		}
	}
	energies["s2"], energies["s3"] = 0, 0
	if _, err := (RandomFeasible{Rng: rng}).Select(s, stNormal, energies, nil); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

// --- manager / lifetime ---

// buildField places the demo sensors in a line toward the sink with the
// given initial energy.
func buildField(t *testing.T, sys *System, energy float64) *netsim.Network {
	t.Helper()
	net := netsim.New(netsim.Config{Range: sys.Range})
	t.Cleanup(net.Close)
	if err := net.AddNodeEnergy(sys.Sink, sys.SinkPos, 1000); err != nil {
		t.Fatal(err)
	}
	for i, sn := range sys.Sensors {
		pos := netsim.Position{X: 10 + float64(i)*5, Y: 0}
		if err := net.AddNodeEnergy(sn.Node, pos, energy); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func TestManagerRoundsDeliver(t *testing.T) {
	sys := demoSystem()
	net := buildField(t, sys, 1.0)
	m, err := NewManager(sys, net, Exhaustive{}, stNormal)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Active()); got != 2 {
		t.Fatalf("active = %v", m.Active())
	}
	for i := 0; i < 5; i++ {
		if err := m.Round(); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Rounds != 5 || st.Delivered != 10 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestManagerReconfiguresOnDeath(t *testing.T) {
	sys := demoSystem()
	net := buildField(t, sys, 1.0)
	m, err := NewManager(sys, net, Exhaustive{}, stNormal)
	if err != nil {
		t.Fatal(err)
	}
	// Kill one active sensor; the next round must reconfigure, not fail.
	active := m.Active()
	if err := net.Kill(active[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Round(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Reconfigs != 1 {
		t.Fatalf("reconfigs = %d", m.Stats().Reconfigs)
	}
	for _, id := range m.Active() {
		if id == active[0] {
			t.Fatal("dead sensor still active")
		}
	}
}

func TestManagerLifetimeEndsWhenInfeasible(t *testing.T) {
	sys := demoSystem()
	// Tiny batteries: a few rounds drain each sensor.
	net := buildField(t, sys, 3e-4)
	m, err := NewManager(sys, net, Exhaustive{}, stNormal)
	if err != nil {
		t.Fatal(err)
	}
	life, err := m.Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	if life <= 0 || life >= 100000 {
		t.Fatalf("lifetime = %d", life)
	}
	// After the run, no feasible set remains.
	if _, err := (Exhaustive{}).Select(sys, stNormal, m.energies(), m.positions()); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected infeasible at end of life, got %v", err)
	}
}

func TestMilanOutlivesAllSensorsBaseline(t *testing.T) {
	// The paper's headline claim (E6's shape): MiLAN's minimal feasible
	// sets outlive the all-sensors-on baseline.
	run := func(sel Selector) int {
		sys := demoSystem()
		net := buildField(t, sys, 1e-3)
		m, err := NewManager(sys, net, sel, stNormal)
		if err != nil {
			t.Fatal(err)
		}
		life, err := m.Run(1000000)
		if err != nil {
			t.Fatal(err)
		}
		return life
	}
	milanLife := run(Exhaustive{})
	allLife := run(AllSensors{})
	if milanLife <= allLife {
		t.Fatalf("milan %d rounds <= all-sensors %d rounds", milanLife, allLife)
	}
	// With 2 disjoint sensors per variable and rotation via reconfiguration,
	// MiLAN should get close to 2x; require at least 1.4x to avoid
	// brittleness.
	if float64(milanLife) < 1.4*float64(allLife) {
		t.Fatalf("milan advantage too small: %d vs %d", milanLife, allLife)
	}
}

func TestManagerSetState(t *testing.T) {
	sys := demoSystem()
	net := buildField(t, sys, 1.0)
	m, err := NewManager(sys, net, Exhaustive{}, stNormal)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetState(stEmergency); err != nil {
		t.Fatal(err)
	}
	// Emergency needs both BP sensors (combined 0.95) plus an HR sensor.
	if got := len(m.Active()); got < 3 {
		t.Fatalf("emergency active = %v", m.Active())
	}
	if err := m.SetState("bogus"); err == nil {
		t.Fatal("unknown state accepted")
	}
}

func TestNewManagerValidation(t *testing.T) {
	sys := demoSystem()
	net := buildField(t, sys, 1.0)
	if _, err := NewManager(&System{}, net, nil, stNormal); err == nil {
		t.Fatal("invalid system accepted")
	}
	if _, err := NewManager(sys, net, nil, "bogus"); err == nil {
		t.Fatal("unknown state accepted")
	}
	// nil selector defaults to Exhaustive.
	m, err := NewManager(sys, net, nil, stNormal)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Active()) == 0 {
		t.Fatal("default selector selected nothing")
	}
}

func TestManagerRoles(t *testing.T) {
	// A far sensor whose path to the sink must pass through a relay sensor.
	sys := &System{
		App: AppSpec{
			Variables: []Variable{varBP},
			Required:  map[State]map[Variable]float64{stNormal: {varBP: 0.7}},
		},
		Sensors: []Sensor{
			{Node: "far", QoS: map[Variable]float64{varBP: 0.9}, SampleBytes: 50},
			{Node: "mid", QoS: map[Variable]float64{varBP: 0.1}, SampleBytes: 50}, // useless for QoS
		},
		Sink:    "sink",
		SinkPos: netsim.Position{X: 0, Y: 0},
		Range:   12,
	}
	net := netsim.New(netsim.Config{Range: 12})
	t.Cleanup(net.Close)
	if err := net.AddNodeEnergy("sink", netsim.Position{}, 100); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNodeEnergy("mid", netsim.Position{X: 10}, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNodeEnergy("far", netsim.Position{X: 20}, 1); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(sys, net, Exhaustive{}, stNormal)
	if err != nil {
		t.Fatal(err)
	}
	roles := m.Roles()
	if roles["sink"] != RoleSink {
		t.Fatalf("sink role = %s", roles["sink"])
	}
	if roles["far"] != RoleSource {
		t.Fatalf("far role = %s, want source", roles["far"])
	}
	if roles["mid"] != RoleRouter {
		t.Fatalf("mid role = %s, want router (it relays far's data)", roles["mid"])
	}
	// One round still works with that configuration.
	if err := m.Round(); err != nil {
		t.Fatal(err)
	}
}

func TestManagerRolesSleeper(t *testing.T) {
	sys := demoSystem()
	net := buildField(t, sys, 1.0)
	m, err := NewManager(sys, net, Exhaustive{}, stNormal)
	if err != nil {
		t.Fatal(err)
	}
	roles := m.Roles()
	sleepers := 0
	sources := 0
	for _, r := range roles {
		switch r {
		case RoleSleeper:
			sleepers++
		case RoleSource:
			sources++
		}
	}
	if sources != 2 || sleepers != 2 {
		t.Fatalf("sources=%d sleepers=%d roles=%v", sources, sleepers, roles)
	}
}
