package milan

import (
	"errors"
	"fmt"

	"ndsm/internal/netsim"
)

// Manager is MiLAN's runtime: each reporting round it (re)selects the
// operating sensor set, routes every selected sensor's sample to the sink
// over greedy geographic multi-hop paths, and lets the radio energy model
// drain batteries. The network "lives" for as long as a feasible set exists.
//
// The manager performs forwarding itself, hop by hop — this *is* MiLAN's
// design point: the middleware, not the application and not a separate
// routing layer, decides which nodes transmit and which relay (§4: "we do
// not exploit any existing routing algorithms, but rather the middleware
// incorporates this functionality").
type Manager struct {
	sys      *System
	net      *netsim.Network
	selector Selector
	state    State

	active []int

	rounds     int
	reconfigs  int
	delivered  int64
	failed     int64
	firstDeath int // round of first sensor death (0: none yet)
}

// NewManager validates the system and selects the initial configuration.
func NewManager(sys *System, net *netsim.Network, selector Selector, state State) (*Manager, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if selector == nil {
		selector = Exhaustive{}
	}
	if _, ok := sys.App.Required[state]; !ok {
		return nil, fmt.Errorf("milan: unknown state %q", state)
	}
	m := &Manager{sys: sys, net: net, selector: selector, state: state}
	if err := m.reconfigure(); err != nil {
		return nil, err
	}
	m.reconfigs = 0 // the initial selection is not an adaptation
	return m, nil
}

// Active returns the currently selected sensor nodes, sorted by index.
func (m *Manager) Active() []netsim.NodeID {
	out := make([]netsim.NodeID, 0, len(m.active))
	for _, i := range m.active {
		out = append(out, m.sys.Sensors[i].Node)
	}
	return out
}

// Stats reports the run so far.
type Stats struct {
	Rounds     int
	Reconfigs  int
	Delivered  int64
	Failed     int64
	FirstDeath int
}

// Stats returns a snapshot.
func (m *Manager) Stats() Stats {
	return Stats{
		Rounds:     m.rounds,
		Reconfigs:  m.reconfigs,
		Delivered:  m.delivered,
		Failed:     m.failed,
		FirstDeath: m.firstDeath,
	}
}

// energies snapshots residual energy for all sensors.
func (m *Manager) energies() Energies {
	e := make(Energies, len(m.sys.Sensors))
	for _, sn := range m.sys.Sensors {
		if !m.net.Alive(sn.Node) {
			e[sn.Node] = 0
			continue
		}
		v, err := m.net.Energy(sn.Node)
		if err != nil {
			v = 0
		}
		e[sn.Node] = v
	}
	return e
}

// positions snapshots sensor positions.
func (m *Manager) positions() map[netsim.NodeID]netsim.Position {
	p := make(map[netsim.NodeID]netsim.Position, len(m.sys.Sensors))
	for _, sn := range m.sys.Sensors {
		if pos, err := m.net.PositionOf(sn.Node); err == nil {
			p[sn.Node] = pos
		}
	}
	return p
}

// reconfigure reselects the active set.
func (m *Manager) reconfigure() error {
	set, err := m.selector.Select(m.sys, m.state, m.energies(), m.positions())
	if err != nil {
		return err
	}
	m.active = set
	m.reconfigs++
	return nil
}

// SetState switches the application state (e.g. "normal" → "emergency") and
// reconfigures for its requirements.
func (m *Manager) SetState(state State) error {
	if _, ok := m.sys.App.Required[state]; !ok {
		return fmt.Errorf("milan: unknown state %q", state)
	}
	m.state = state
	return m.reconfigure()
}

// activeHealthy reports whether every active sensor is alive and the set is
// still feasible.
func (m *Manager) activeHealthy() bool {
	if len(m.active) == 0 {
		return false
	}
	for _, i := range m.active {
		if !m.net.Alive(m.sys.Sensors[i].Node) {
			return false
		}
	}
	return m.sys.Feasible(m.active, m.state)
}

// Role is a node's network assignment under the current configuration —
// §4: MiLAN "must then configure the network (e.g., determine which
// components should send data, which nodes should be routers in multi-hop
// networks...)".
type Role string

// Network roles.
const (
	// RoleSource nodes sample and transmit.
	RoleSource Role = "source"
	// RoleRouter nodes relay on some source's path to the sink.
	RoleRouter Role = "router"
	// RoleSleeper nodes are not needed and may power down.
	RoleSleeper Role = "sleeper"
	// RoleSink is the data destination.
	RoleSink Role = "sink"
)

// Roles computes the current network configuration: every active sensor is a
// source; nodes on any source's greedy path to the sink are routers; all
// remaining sensors sleep.
func (m *Manager) Roles() map[netsim.NodeID]Role {
	roles := make(map[netsim.NodeID]Role, len(m.sys.Sensors)+1)
	roles[m.sys.Sink] = RoleSink
	for _, sn := range m.sys.Sensors {
		roles[sn.Node] = RoleSleeper
	}
	// Mark routers first so sources that also relay end up as sources.
	for _, i := range m.active {
		cur := m.sys.Sensors[i].Node
		for hops := 0; hops < 64; hops++ {
			next, err := m.nextHop(cur)
			if err != nil || next == m.sys.Sink {
				break
			}
			roles[next] = RoleRouter
			cur = next
		}
	}
	for _, i := range m.active {
		roles[m.sys.Sensors[i].Node] = RoleSource
	}
	return roles
}

// Round executes one reporting round. It returns ErrInfeasible when the
// network can no longer satisfy the application (lifetime reached).
func (m *Manager) Round() error {
	if !m.activeHealthy() {
		if err := m.reconfigure(); err != nil {
			return err
		}
	}
	for _, i := range m.active {
		sn := m.sys.Sensors[i]
		if err := m.routeToSink(sn.Node, make([]byte, sn.SampleBytes)); err != nil {
			m.failed++
		} else {
			m.delivered++
		}
	}
	m.rounds++
	if m.firstDeath == 0 {
		for _, sn := range m.sys.Sensors {
			if !m.net.Alive(sn.Node) {
				m.firstDeath = m.rounds
				break
			}
		}
	}
	return nil
}

// Run executes rounds until the system becomes infeasible or maxRounds is
// reached; it returns the achieved lifetime in rounds.
func (m *Manager) Run(maxRounds int) (int, error) {
	for r := 0; r < maxRounds; r++ {
		if err := m.Round(); err != nil {
			if errors.Is(err, ErrInfeasible) {
				return m.rounds, nil
			}
			return m.rounds, err
		}
	}
	return m.rounds, nil
}

// routeToSink forwards a payload hop by hop along the greedy geographic
// path, draining each relay's inbox so queues stay empty and delivery is
// verified synchronously.
func (m *Manager) routeToSink(from netsim.NodeID, payload []byte) error {
	cur := from
	for hops := 0; hops < 64; hops++ {
		if cur == m.sys.Sink {
			return nil
		}
		next, err := m.nextHop(cur)
		if err != nil {
			return err
		}
		if err := m.net.Send(cur, next, payload); err != nil {
			return err
		}
		// Consume the packet at the relay (synchronous delivery).
		if ch, err := m.net.Recv(next); err == nil {
			select {
			case <-ch:
			default:
			}
		}
		cur = next
	}
	return errors.New("milan: hop limit exceeded")
}

// nextHop picks the alive neighbour strictly closest to the sink.
func (m *Manager) nextHop(cur netsim.NodeID) (netsim.NodeID, error) {
	curPos, err := m.net.PositionOf(cur)
	if err != nil {
		return "", err
	}
	neighbors, err := m.net.Neighbors(cur)
	if err != nil {
		return "", err
	}
	best := netsim.NodeID("")
	bestDist := curPos.Distance(m.sys.SinkPos)
	for _, nb := range neighbors {
		if nb == m.sys.Sink {
			return nb, nil
		}
		pos, err := m.net.PositionOf(nb)
		if err != nil {
			continue
		}
		if d := pos.Distance(m.sys.SinkPos); d < bestDist {
			best, bestDist = nb, d
		}
	}
	if best == "" {
		return "", fmt.Errorf("milan: no route from %s toward sink", cur)
	}
	return best, nil
}
