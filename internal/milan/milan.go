// Package milan implements MiLAN — Middleware Linking Applications and
// Networks (§4 of the paper; Murphy & Heinzelman, TR-795) — the paper's
// primary system contribution.
//
// MiLAN inverts the usual middleware layering: instead of sitting above the
// network protocols, it *configures the network itself* from application
// requirements. The application declares, per application state, the QoS it
// requires for each variable of interest; each sensor declares the QoS it
// can contribute to each variable. MiLAN then
//
//  1. computes the *feasible sets* of sensors whose combined QoS meets every
//     variable's requirement in the current state,
//  2. selects among them the set that maximizes predicted network lifetime
//     (the application-performance vs network-cost tradeoff), and
//  3. configures the network: selected sensors become sources, nodes on
//     their routes become routers, everyone else sleeps.
//
// The runtime (Manager) re-runs this loop as sensors drain and die, so the
// application keeps its required QoS for as long as any feasible set exists.
package milan

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ndsm/internal/netsim"
)

// Variable names an application-level quantity of interest (e.g.
// "blood-pressure").
type Variable string

// State names an application state; QoS requirements differ per state (a
// patient in "emergency" needs more reliable readings than in "normal").
type State string

// AppSpec is the application's declared QoS needs.
type AppSpec struct {
	// Variables the application monitors.
	Variables []Variable
	// Required maps state -> variable -> minimum acceptable combined QoS in
	// [0,1].
	Required map[State]map[Variable]float64
}

// Validate checks the spec.
func (a *AppSpec) Validate() error {
	if a == nil {
		return errors.New("milan: nil app spec")
	}
	if len(a.Variables) == 0 {
		return errors.New("milan: app spec needs variables")
	}
	if len(a.Required) == 0 {
		return errors.New("milan: app spec needs at least one state")
	}
	for state, reqs := range a.Required {
		for v, q := range reqs {
			if q < 0 || q > 1 {
				return fmt.Errorf("milan: state %s variable %s requirement %v outside [0,1]", state, v, q)
			}
		}
	}
	return nil
}

// Sensor describes one sensor node's capabilities.
type Sensor struct {
	// Node is the sensor's network identity.
	Node netsim.NodeID
	// QoS maps variable -> the quality this sensor alone contributes, in
	// [0,1] (0 / absent: unrelated to the variable).
	QoS map[Variable]float64
	// SampleBytes is the payload this sensor transmits per reporting round.
	SampleBytes int
}

// Combine merges the per-sensor qualities for one variable into the set's
// combined quality.
type Combine func(qs []float64) float64

// CombineProb treats sensors as independent evidence: 1-∏(1-q). Two 0.7
// sensors give 0.91 — redundancy increases reliability, which is what makes
// multi-sensor feasible sets interesting.
func CombineProb(qs []float64) float64 {
	p := 1.0
	for _, q := range qs {
		p *= 1 - q
	}
	return 1 - p
}

// CombineMax takes the best single sensor: no redundancy benefit.
func CombineMax(qs []float64) float64 {
	best := 0.0
	for _, q := range qs {
		if q > best {
			best = q
		}
	}
	return best
}

// System is the static MiLAN problem: app spec + sensor inventory + combine
// rule.
type System struct {
	App     AppSpec
	Sensors []Sensor
	// Combine defaults to CombineProb.
	Combine Combine
	// Sink is the node sensor data flows to.
	Sink netsim.NodeID
	// SinkPos is used for per-round energy estimation.
	SinkPos netsim.Position
	// Range is the radio range for hop estimation (default 25).
	Range float64
	// Radio is the energy model (default netsim.DefaultRadio).
	Radio netsim.RadioParams
}

// Validate checks the system.
func (s *System) Validate() error {
	if err := s.App.Validate(); err != nil {
		return err
	}
	if len(s.Sensors) == 0 {
		return errors.New("milan: no sensors")
	}
	seen := make(map[netsim.NodeID]bool, len(s.Sensors))
	for _, sn := range s.Sensors {
		if sn.Node == "" {
			return errors.New("milan: sensor without node id")
		}
		if seen[sn.Node] {
			return fmt.Errorf("milan: duplicate sensor %s", sn.Node)
		}
		seen[sn.Node] = true
		for v, q := range sn.QoS {
			if q < 0 || q > 1 {
				return fmt.Errorf("milan: sensor %s variable %s QoS %v outside [0,1]", sn.Node, v, q)
			}
		}
	}
	return nil
}

func (s *System) combine() Combine {
	if s.Combine != nil {
		return s.Combine
	}
	return CombineProb
}

func (s *System) radioRange() float64 {
	if s.Range > 0 {
		return s.Range
	}
	return 25
}

func (s *System) radio() netsim.RadioParams {
	if s.Radio != (netsim.RadioParams{}) {
		return s.Radio
	}
	return netsim.DefaultRadio()
}

// SetQuality computes the combined quality the sensor subset (indices into
// s.Sensors) provides for a variable.
func (s *System) SetQuality(set []int, v Variable) float64 {
	var qs []float64
	for _, i := range set {
		if q := s.Sensors[i].QoS[v]; q > 0 {
			qs = append(qs, q)
		}
	}
	if len(qs) == 0 {
		return 0
	}
	return s.combine()(qs)
}

// Feasible reports whether the subset meets every variable requirement of
// the state.
func (s *System) Feasible(set []int, state State) bool {
	reqs, ok := s.App.Required[state]
	if !ok {
		return false
	}
	const eps = 1e-9 // tolerate float error in combined products
	for v, required := range reqs {
		if required <= 0 {
			continue
		}
		if s.SetQuality(set, v) < required-eps {
			return false
		}
	}
	return true
}

// Energies reports per-sensor residual energy; the selectors use it to
// predict lifetime.
type Energies map[netsim.NodeID]float64

// roundCost estimates sensor i's energy per reporting round: transmit
// SampleBytes toward the sink over ceil(dist/range) hops of at most range
// meters each. A multi-hop path also costs the relays, but the *sensor's*
// drain — which bounds its own lifetime — is the first hop.
func (s *System) roundCost(i int, positions map[netsim.NodeID]netsim.Position) float64 {
	sn := s.Sensors[i]
	pos, ok := positions[sn.Node]
	if !ok {
		return s.radio().TxEnergy(sn.SampleBytes, s.radioRange())
	}
	d := pos.Distance(s.SinkPos)
	hop := math.Min(d, s.radioRange())
	return s.radio().TxEnergy(sn.SampleBytes, hop)
}

// PredictedLifetime estimates how many reporting rounds the subset survives:
// the minimum over members of residual energy / per-round cost.
func (s *System) PredictedLifetime(set []int, energies Energies, positions map[netsim.NodeID]netsim.Position) float64 {
	if len(set) == 0 {
		return 0
	}
	lifetime := math.Inf(1)
	for _, i := range set {
		cost := s.roundCost(i, positions)
		if cost <= 0 {
			continue
		}
		e := energies[s.Sensors[i].Node]
		if rounds := e / cost; rounds < lifetime {
			lifetime = rounds
		}
	}
	if math.IsInf(lifetime, 1) {
		return 0
	}
	return lifetime
}

// aliveIndices returns the indices of sensors with positive energy.
func (s *System) aliveIndices(energies Energies) []int {
	var out []int
	for i, sn := range s.Sensors {
		if energies[sn.Node] > 0 {
			out = append(out, i)
		}
	}
	return out
}

// Selector picks the operating sensor set for a state.
type Selector interface {
	// Name identifies the selector for reporting.
	Name() string
	// Select returns sensor indices to activate, or an error when no
	// feasible set exists among alive sensors.
	Select(s *System, state State, energies Energies, positions map[netsim.NodeID]netsim.Position) ([]int, error)
}

// ErrInfeasible reports that no alive sensor subset meets the state's QoS.
var ErrInfeasible = errors.New("milan: no feasible sensor set")

// Exhaustive is MiLAN's optimal selector: enumerate all subsets of alive
// sensors, keep the feasible ones, pick the one with the longest predicted
// lifetime (ties: fewer sensors, then higher total quality). Exponential —
// fine for the ≤20-sensor deployments MiLAN targets; Greedy is the scalable
// ablation.
type Exhaustive struct{}

// Name implements Selector.
func (Exhaustive) Name() string { return "milan-exhaustive" }

// Select implements Selector.
func (Exhaustive) Select(s *System, state State, energies Energies, positions map[netsim.NodeID]netsim.Position) ([]int, error) {
	alive := s.aliveIndices(energies)
	n := len(alive)
	if n == 0 {
		return nil, ErrInfeasible
	}
	if n > 24 {
		return nil, fmt.Errorf("milan: %d sensors exceed exhaustive search limit (use Greedy)", n)
	}
	var best []int
	bestLife := -1.0
	for mask := 1; mask < 1<<n; mask++ {
		set := make([]int, 0, n)
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				set = append(set, alive[b])
			}
		}
		if !s.Feasible(set, state) {
			continue
		}
		life := s.PredictedLifetime(set, energies, positions)
		if life > bestLife || (life == bestLife && best != nil && len(set) < len(best)) {
			best = set
			bestLife = life
		}
	}
	if best == nil {
		return nil, ErrInfeasible
	}
	sort.Ints(best)
	return best, nil
}

// Greedy is the scalable heuristic: repeatedly add the sensor that most
// improves the worst-satisfied variable, preferring sensors with long
// individual lifetimes, until feasible.
type Greedy struct{}

// Name implements Selector.
func (Greedy) Name() string { return "milan-greedy" }

// Select implements Selector.
func (Greedy) Select(s *System, state State, energies Energies, positions map[netsim.NodeID]netsim.Position) ([]int, error) {
	alive := s.aliveIndices(energies)
	if len(alive) == 0 {
		return nil, ErrInfeasible
	}
	reqs := s.App.Required[state]
	var set []int
	inSet := make(map[int]bool)
	for !s.Feasible(set, state) {
		// Find the most violated variable.
		worstVar := Variable("")
		worstGap := 0.0
		for v, required := range reqs {
			if gap := required - s.SetQuality(set, v); gap > worstGap {
				worstGap = gap
				worstVar = v
			}
		}
		if worstVar == "" {
			break // feasible (or no positive requirements)
		}
		// Add the best candidate for that variable: highest contribution,
		// ties by individual predicted lifetime.
		bestIdx := -1
		bestQ := 0.0
		bestLife := -1.0
		for _, i := range alive {
			if inSet[i] {
				continue
			}
			q := s.Sensors[i].QoS[worstVar]
			if q <= 0 {
				continue
			}
			life := s.PredictedLifetime([]int{i}, energies, positions)
			if q > bestQ || (q == bestQ && life > bestLife) {
				bestIdx, bestQ, bestLife = i, q, life
			}
		}
		if bestIdx < 0 {
			return nil, ErrInfeasible
		}
		set = append(set, bestIdx)
		inSet[bestIdx] = true
	}
	if !s.Feasible(set, state) {
		return nil, ErrInfeasible
	}
	sort.Ints(set)
	return set, nil
}

// AllSensors is the "no middleware" baseline: every alive sensor transmits.
type AllSensors struct{}

// Name implements Selector.
func (AllSensors) Name() string { return "all-sensors" }

// Select implements Selector.
func (AllSensors) Select(s *System, state State, energies Energies, positions map[netsim.NodeID]netsim.Position) ([]int, error) {
	alive := s.aliveIndices(energies)
	if len(alive) == 0 || !s.Feasible(alive, state) {
		return nil, ErrInfeasible
	}
	return alive, nil
}

// RandomFeasible picks a uniformly random feasible set — the "any feasible
// set is as good as another" baseline MiLAN's optimization is measured
// against.
type RandomFeasible struct {
	// Rng must be seeded by the caller for reproducibility.
	Rng *rand.Rand
}

// Name implements Selector.
func (RandomFeasible) Name() string { return "random-feasible" }

// Select implements Selector.
func (r RandomFeasible) Select(s *System, state State, energies Energies, positions map[netsim.NodeID]netsim.Position) ([]int, error) {
	alive := s.aliveIndices(energies)
	n := len(alive)
	if n == 0 {
		return nil, ErrInfeasible
	}
	if n > 24 {
		return nil, fmt.Errorf("milan: %d sensors exceed enumeration limit", n)
	}
	var feasible [][]int
	for mask := 1; mask < 1<<n; mask++ {
		set := make([]int, 0, n)
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				set = append(set, alive[b])
			}
		}
		if s.Feasible(set, state) {
			feasible = append(feasible, set)
		}
	}
	if len(feasible) == 0 {
		return nil, ErrInfeasible
	}
	rng := r.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	set := feasible[rng.Intn(len(feasible))]
	sort.Ints(set)
	return set, nil
}
