package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// TopKEntry is one heavy-hitter estimate: the key's count is overestimated
// by at most Err (the count the slot held when the key evicted its previous
// occupant — the space-saving guarantee).
type TopKEntry struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
	// Err bounds the overestimate: true count >= Count - Err.
	Err uint64 `json:"err,omitempty"`
}

// TopK tracks the heaviest keys of a stream in bounded memory with the
// space-saving algorithm: a fixed set of counters; an unseen key evicts the
// minimum counter and inherits its count as error bound. Any key whose true
// frequency exceeds total/capacity is guaranteed present, which is what
// makes a hot topic un-hideable. Not safe for concurrent use (callers lock).
type TopK struct {
	capacity int
	idx      map[string]int
	entries  []TopKEntry
	total    uint64
}

// DefaultTopKCapacity balances footprint (a few KB serialized) against the
// guarantee threshold (any key above 1/32 of traffic is always tracked).
const DefaultTopKCapacity = 32

// NewTopK builds a summary tracking up to capacity keys (<= 0 gets
// DefaultTopKCapacity).
func NewTopK(capacity int) *TopK {
	if capacity <= 0 {
		capacity = DefaultTopKCapacity
	}
	return &TopK{
		capacity: capacity,
		idx:      make(map[string]int, capacity),
		entries:  make([]TopKEntry, 0, capacity),
	}
}

// Offer counts w occurrences of key (w == 0 ignored). Steady-state
// allocation-free for keys already tracked; an eviction re-keys an existing
// slot.
func (t *TopK) Offer(key string, w uint64) {
	if w == 0 {
		return
	}
	t.total += w
	if i, ok := t.idx[key]; ok {
		t.entries[i].Count += w
		return
	}
	if len(t.entries) < t.capacity {
		t.idx[key] = len(t.entries)
		t.entries = append(t.entries, TopKEntry{Key: key, Count: w})
		return
	}
	// Evict the minimum counter: the newcomer inherits its count as error
	// bound. Linear scan — capacity is small by design.
	min := 0
	for i := 1; i < len(t.entries); i++ {
		if t.entries[i].Count < t.entries[min].Count {
			min = i
		}
	}
	evicted := &t.entries[min]
	delete(t.idx, evicted.Key)
	t.idx[key] = min
	evicted.Err = evicted.Count
	evicted.Count += w
	evicted.Key = key
}

// Total is the stream weight folded in.
func (t *TopK) Total() uint64 { return t.total }

// Len is the number of tracked keys.
func (t *TopK) Len() int { return len(t.entries) }

// Top returns the n heaviest tracked keys, count-descending (key-ascending
// on ties, so output is deterministic). n <= 0 returns all tracked keys.
func (t *TopK) Top(n int) []TopKEntry {
	out := append([]TopKEntry(nil), t.entries...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// Merge folds another summary in: counts and error bounds of shared keys
// add; distinct keys are offered with their error carried over. The merged
// summary keeps the heavy-hitter guarantee over the combined stream (error
// bounds remain valid overestimate caps, since dropped keys in either input
// were already below that input's minimum counter).
func (t *TopK) Merge(other *TopK) {
	if other == nil {
		return
	}
	for _, e := range other.entries {
		t.total += e.Count
		if i, ok := t.idx[e.Key]; ok {
			t.entries[i].Count += e.Count
			t.entries[i].Err += e.Err
			continue
		}
		if len(t.entries) < t.capacity {
			t.idx[e.Key] = len(t.entries)
			t.entries = append(t.entries, e)
			continue
		}
		min := 0
		for i := 1; i < len(t.entries); i++ {
			if t.entries[i].Count < t.entries[min].Count {
				min = i
			}
		}
		victim := &t.entries[min]
		if victim.Count >= e.Count {
			// The incoming key cannot displace a heavier slot; its weight is
			// still part of the total (absorbed below the tracking floor).
			continue
		}
		delete(t.idx, victim.Key)
		t.idx[e.Key] = min
		newErr := victim.Count + e.Err
		victim.Key = e.Key
		victim.Count += e.Count
		victim.Err = newErr
	}
}

// topkMagic versions the binary encoding.
const topkMagic = 0x7C

// maxTopKCapacity bounds what DecodeTopK accepts from untrusted input.
const maxTopKCapacity = 1 << 12

// maxTopKKeyLen bounds a single serialized key.
const maxTopKKeyLen = 1 << 10

// AppendBinary appends the summary's binary encoding to dst: magic,
// capacity, total, entry count, then length-prefixed key + count + err per
// entry.
func (t *TopK) AppendBinary(dst []byte) []byte {
	dst = append(dst, topkMagic)
	dst = binary.BigEndian.AppendUint32(dst, uint32(t.capacity))
	dst = binary.BigEndian.AppendUint64(dst, t.total)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(t.entries)))
	for _, e := range t.entries {
		key := e.Key
		if len(key) > maxTopKKeyLen {
			key = key[:maxTopKKeyLen]
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(key)))
		dst = append(dst, key...)
		dst = binary.BigEndian.AppendUint64(dst, e.Count)
		dst = binary.BigEndian.AppendUint64(dst, e.Err)
	}
	return dst
}

// DecodeTopK parses an AppendBinary encoding, validating every length and
// count against untrusted input (fuzzed by FuzzSketchDecode).
func DecodeTopK(data []byte) (*TopK, error) {
	if len(data) < 1+4+8+4 {
		return nil, fmt.Errorf("sketch: topk truncated (%d bytes)", len(data))
	}
	if data[0] != topkMagic {
		return nil, fmt.Errorf("sketch: topk bad magic 0x%02x", data[0])
	}
	capacity := int(binary.BigEndian.Uint32(data[1:]))
	if capacity <= 0 || capacity > maxTopKCapacity {
		return nil, fmt.Errorf("sketch: topk capacity %d out of range", capacity)
	}
	total := binary.BigEndian.Uint64(data[5:])
	n := int(binary.BigEndian.Uint32(data[13:]))
	if n > capacity {
		return nil, fmt.Errorf("sketch: topk entry count %d exceeds capacity %d", n, capacity)
	}
	t := NewTopK(capacity)
	off := 17
	var sum uint64
	for i := 0; i < n; i++ {
		if off+2 > len(data) {
			return nil, fmt.Errorf("sketch: topk entry %d truncated", i)
		}
		klen := int(binary.BigEndian.Uint16(data[off:]))
		off += 2
		if klen == 0 || klen > maxTopKKeyLen || off+klen+16 > len(data) {
			return nil, fmt.Errorf("sketch: topk entry %d key length %d invalid", i, klen)
		}
		key := string(data[off : off+klen])
		off += klen
		count := binary.BigEndian.Uint64(data[off:])
		err := binary.BigEndian.Uint64(data[off+8:])
		off += 16
		if _, dup := t.idx[key]; dup {
			return nil, fmt.Errorf("sketch: topk duplicate key %q", key)
		}
		if err > count || count > math.MaxUint64-sum {
			return nil, fmt.Errorf("sketch: topk entry %q counts invalid", key)
		}
		sum += count
		t.idx[key] = len(t.entries)
		t.entries = append(t.entries, TopKEntry{Key: key, Count: count, Err: err})
	}
	if off != len(data) {
		return nil, fmt.Errorf("sketch: topk trailing %d bytes", len(data)-off)
	}
	if sum > total {
		return nil, fmt.Errorf("sketch: topk entry sum %d exceeds total %d", sum, total)
	}
	t.total = total
	return t, nil
}
