package sketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ndsm/internal/obs"
)

// TestQuantileFidelity pins the error bounds of the repo's two quantile
// estimators against exact order statistics on the same heavy-tailed latency
// stream, documenting which is authoritative where:
//
//   - sketch.TDigest: authoritative for tail quantiles and for anything
//     merged across nodes. Error ≤ 5% through p99 on a lognormal stream.
//   - obs.Histogram: authoritative for per-node in-process series (it is
//     delta-able and lock-cheap), but its power-of-two buckets make any
//     single quantile carry up to a bucket's relative width of error — the
//     bound pinned here is 35%, and its bucket counts cannot be merged into
//     a cluster-wide quantile at all.
//
// If either bound stops holding, the wrong estimator has started feeding
// something (the SLO latency objectives read t-digest quantiles precisely
// because of this gap).
func TestQuantileFidelity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 100_000
	td := NewTDigest(0)
	reg := obs.NewRegistry()
	hist := reg.Histogram("latency_ms")
	samples := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := math.Exp(3 + 1*rng.NormFloat64()) // lognormal, median ~20ms
		samples = append(samples, v)
		td.Add(v)
		hist.Observe(v)
	}
	sort.Float64s(samples)

	for _, tc := range []struct {
		q           float64
		digestBound float64 // pinned t-digest relative error
		histBound   float64 // pinned geometric-bucket relative error
	}{
		{0.50, 0.05, 0.35},
		{0.90, 0.05, 0.35},
		{0.99, 0.05, 0.35},
	} {
		exact := exactQuantile(samples, tc.q)
		dEst := td.Quantile(tc.q)
		hEst := hist.Quantile(tc.q)
		dErr := math.Abs(dEst-exact) / exact
		hErr := math.Abs(hEst-exact) / exact
		t.Logf("q=%.2f exact=%.2f tdigest=%.2f (%.1f%%) histogram=%.2f (%.1f%%)",
			tc.q, exact, dEst, 100*dErr, hEst, 100*hErr)
		if dErr > tc.digestBound {
			t.Errorf("q=%v: t-digest error %.1f%% exceeds pinned %.0f%%", tc.q, 100*dErr, 100*tc.digestBound)
		}
		if hErr > tc.histBound {
			t.Errorf("q=%v: histogram error %.1f%% exceeds pinned %.0f%%", tc.q, 100*hErr, 100*tc.histBound)
		}
		if dErr > hErr {
			t.Errorf("q=%v: t-digest (%.1f%%) should beat bucketed interpolation (%.1f%%)", tc.q, 100*dErr, 100*hErr)
		}
	}
}
