package sketch

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzSketchDecode hammers both binary decoders with arbitrary input. The
// invariants: never panic, and any input a decoder accepts must re-encode to
// a form the decoder accepts again with identical aggregate state (decoders
// are the trust boundary for digests arriving inside telemetry reports).
func FuzzSketchDecode(f *testing.F) {
	td := NewTDigest(0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		td.Add(rng.Float64() * 100)
	}
	f.Add(td.AppendBinary(nil))
	f.Add(NewTDigest(0).AppendBinary(nil))
	tk := NewTopK(8)
	tk.Offer("alpha", 7)
	tk.Offer("beta", 3)
	f.Add(tk.AppendBinary(nil))
	f.Add(NewTopK(4).AppendBinary(nil))
	f.Add([]byte{})
	f.Add([]byte{tdigestMagic})
	f.Add([]byte{topkMagic, 0, 0, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		if d, err := DecodeTDigest(data); err == nil {
			re := d.AppendBinary(nil)
			d2, err2 := DecodeTDigest(re)
			if err2 != nil {
				t.Fatalf("re-decode of accepted tdigest failed: %v", err2)
			}
			if d2.Count() != d.Count() {
				t.Fatalf("tdigest count drifted across re-encode: %v vs %v", d2.Count(), d.Count())
			}
			_ = d.Quantile(0.99) // must not panic on any accepted state
		}
		if k, err := DecodeTopK(data); err == nil {
			re := k.AppendBinary(nil)
			k2, err2 := DecodeTopK(re)
			if err2 != nil {
				t.Fatalf("re-decode of accepted topk failed: %v", err2)
			}
			if !bytes.Equal(re, k2.AppendBinary(nil)) {
				t.Fatalf("topk encoding not stable across round trip")
			}
			_ = k.Top(3)
		}
	})
}
