package sketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile computes the true q-th quantile of a sorted sample set.
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// lognormal draws a heavy-tailed latency-like sample.
func lognormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

func TestTDigestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	td := NewTDigest(0)
	const n = 200_000
	samples := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := lognormal(rng, 3, 1) // median ~20, long right tail
		samples = append(samples, v)
		td.Add(v)
	}
	sort.Float64s(samples)
	if got := td.Count(); got != n {
		t.Fatalf("Count = %v, want %d", got, n)
	}
	// Pinned bounds: ≤5% through p99 (the E15 gate), ≤20% at p999 — beyond
	// p99 the default compression's edge clusters dominate the estimate.
	for _, tc := range []struct{ q, bound float64 }{
		{0.5, 0.05}, {0.9, 0.05}, {0.99, 0.05}, {0.999, 0.20},
	} {
		exact := exactQuantile(samples, tc.q)
		est := td.Quantile(tc.q)
		relErr := math.Abs(est-exact) / exact
		if relErr > tc.bound {
			t.Errorf("q=%v: estimate %.2f vs exact %.2f (rel err %.1f%%)", tc.q, est, exact, 100*relErr)
		}
	}
	if td.Quantile(0) != td.Min() || td.Quantile(1) != td.Max() {
		t.Errorf("extreme quantiles: got [%v, %v], want [%v, %v]",
			td.Quantile(0), td.Quantile(1), td.Min(), td.Max())
	}
}

func TestTDigestMergeMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var parts [4]*TDigest
	union := NewTDigest(0)
	all := make([]float64, 0, 80_000)
	for i := range parts {
		parts[i] = NewTDigest(0)
		for j := 0; j < 20_000; j++ {
			// Each node sees a different latency regime — the situation
			// cluster merging exists for.
			v := lognormal(rng, 2+float64(i), 0.7)
			parts[i].Add(v)
			all = append(all, v)
		}
	}
	for _, p := range parts {
		union.Merge(p)
	}
	sort.Float64s(all)
	if got, want := union.Count(), float64(len(all)); got != want {
		t.Fatalf("merged Count = %v, want %v", got, want)
	}
	for _, q := range []float64{0.5, 0.99} {
		exact := exactQuantile(all, q)
		est := union.Quantile(q)
		if relErr := math.Abs(est-exact) / exact; relErr > 0.05 {
			t.Errorf("merged q=%v: %.2f vs exact %.2f (rel err %.1f%%)", q, est, exact, 100*relErr)
		}
	}
}

func TestTDigestEmptyAndSingle(t *testing.T) {
	td := NewTDigest(0)
	if got := td.Quantile(0.5); got != 0 {
		t.Errorf("empty digest quantile = %v, want 0", got)
	}
	td.Add(42)
	for _, q := range []float64{0, 0.5, 1} {
		if got := td.Quantile(q); got != 42 {
			t.Errorf("single-sample quantile(%v) = %v, want 42", q, got)
		}
	}
	// Invalid samples are ignored, not folded in.
	td.Add(math.NaN())
	td.Add(math.Inf(1))
	td.AddWeighted(7, -1)
	if got := td.Count(); got != 1 {
		t.Errorf("Count after invalid adds = %v, want 1", got)
	}
}

func TestTDigestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	td := NewTDigest(50)
	for i := 0; i < 10_000; i++ {
		td.Add(lognormal(rng, 3, 1))
	}
	data := td.AppendBinary(nil)
	back, err := DecodeTDigest(data)
	if err != nil {
		t.Fatalf("DecodeTDigest: %v", err)
	}
	if back.Count() != td.Count() || back.Min() != td.Min() || back.Max() != td.Max() {
		t.Fatalf("round trip lost count/min/max: %v/%v/%v vs %v/%v/%v",
			back.Count(), back.Min(), back.Max(), td.Count(), td.Min(), td.Max())
	}
	for _, q := range []float64{0.5, 0.99} {
		if got, want := back.Quantile(q), td.Quantile(q); got != want {
			t.Errorf("round trip quantile(%v) = %v, want %v", q, got, want)
		}
	}
	// Encoding an empty digest round-trips too (a node with no traffic).
	empty, err := DecodeTDigest(NewTDigest(0).AppendBinary(nil))
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if empty.Count() != 0 {
		t.Errorf("empty round trip count = %v", empty.Count())
	}
}

func TestTDigestDecodeRejectsCorruption(t *testing.T) {
	td := NewTDigest(0)
	for i := 0; i < 100; i++ {
		td.Add(float64(i))
	}
	good := td.AppendBinary(nil)
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte{0xFF}, good[1:]...),
		"truncated":    good[:len(good)-3],
		"trailing":     append(append([]byte(nil), good...), 0),
		"count bomb":   func() []byte { b := append([]byte(nil), good...); b[25], b[26] = 0xFF, 0xFF; return b }(),
		"nan compress": func() []byte { b := append([]byte(nil), good...); b[1] = 0x7F; b[2] = 0xF8; return b }(),
	}
	for name, data := range cases {
		if _, err := DecodeTDigest(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

func TestTDigestAddAllocFree(t *testing.T) {
	td := NewTDigest(0)
	// Warm up: grow every internal buffer to steady state.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50_000; i++ {
		td.Add(lognormal(rng, 3, 1))
	}
	i := 0
	if avg := testing.AllocsPerRun(10_000, func() {
		td.Add(float64(i%1000) + 0.5)
		i++
	}); avg != 0 {
		t.Errorf("steady-state Add allocates %.3f allocs/op, want 0", avg)
	}
}

func TestTopKHotKeyAlwaysRanksFirst(t *testing.T) {
	tk := NewTopK(8)
	rng := rand.New(rand.NewSource(5))
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l", "m", "n", "o", "p"}
	for i := 0; i < 100_000; i++ {
		// "hot" gets ~30% of the stream; the rest spread over 16 cold keys.
		if rng.Intn(10) < 3 {
			tk.Offer("hot", 1)
		} else {
			tk.Offer(keys[rng.Intn(len(keys))], 1)
		}
	}
	top := tk.Top(3)
	if len(top) == 0 || top[0].Key != "hot" {
		t.Fatalf("Top(3) = %+v, want hot first", top)
	}
	// Space-saving guarantee: the estimate brackets the true count.
	if top[0].Count < 25_000 || top[0].Count-top[0].Err > 35_000 {
		t.Errorf("hot estimate %d (err %d) outside plausible range", top[0].Count, top[0].Err)
	}
	if tk.Total() != 100_000 {
		t.Errorf("Total = %d, want 100000", tk.Total())
	}
}

func TestTopKMerge(t *testing.T) {
	a, b := NewTopK(8), NewTopK(8)
	for i := 0; i < 600; i++ {
		a.Offer("hot", 1)
	}
	for i := 0; i < 500; i++ {
		b.Offer("hot", 1)
		b.Offer("warm", 1)
	}
	a.Offer("only-a", 10)
	a.Merge(b)
	if got := a.Total(); got != 600+500+500+10 {
		t.Fatalf("merged Total = %d", got)
	}
	top := a.Top(0)
	if top[0].Key != "hot" || top[0].Count != 1100 {
		t.Fatalf("merged top = %+v, want hot=1100", top[0])
	}
	found := map[string]uint64{}
	for _, e := range top {
		found[e.Key] = e.Count
	}
	if found["warm"] != 500 || found["only-a"] != 10 {
		t.Errorf("merged entries = %v", found)
	}
}

func TestTopKOfferAllocFree(t *testing.T) {
	tk := NewTopK(16)
	keys := []string{"q/a", "q/b", "q/c", "q/d"}
	for _, k := range keys {
		tk.Offer(k, 1)
	}
	i := 0
	if avg := testing.AllocsPerRun(10_000, func() {
		tk.Offer(keys[i%len(keys)], 1)
		i++
	}); avg != 0 {
		t.Errorf("steady-state Offer allocates %.3f allocs/op, want 0", avg)
	}
}

func TestTopKBinaryRoundTrip(t *testing.T) {
	tk := NewTopK(8)
	tk.Offer("alpha", 100)
	tk.Offer("beta", 50)
	tk.Offer("gamma", 25)
	data := tk.AppendBinary(nil)
	back, err := DecodeTopK(data)
	if err != nil {
		t.Fatalf("DecodeTopK: %v", err)
	}
	if back.Total() != tk.Total() || back.Len() != tk.Len() {
		t.Fatalf("round trip total/len: %d/%d vs %d/%d", back.Total(), back.Len(), tk.Total(), tk.Len())
	}
	want, got := tk.Top(0), back.Top(0)
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("entry %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestTopKDecodeRejectsCorruption(t *testing.T) {
	tk := NewTopK(4)
	tk.Offer("x", 3)
	tk.Offer("y", 2)
	good := tk.AppendBinary(nil)
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte{0}, good[1:]...),
		"truncated": good[:len(good)-1],
		"trailing":  append(append([]byte(nil), good...), 1, 2, 3),
		"cap zero":  func() []byte { b := append([]byte(nil), good...); b[1], b[2], b[3], b[4] = 0, 0, 0, 0; return b }(),
	}
	for name, data := range cases {
		if _, err := DecodeTopK(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}
