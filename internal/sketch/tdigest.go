// Package sketch provides the mergeable, serializable summaries the request
// analytics plane ships in-band: a t-digest for latency quantiles and a
// space-saving summary for heavy-hitter topics. Both are cardinality- and
// memory-bounded (O(compression) and O(capacity) respectively, independent of
// stream length), both merge losslessly across nodes — the property that lets
// the telemetry aggregator fold per-node digests into cluster-wide per-topic
// quantiles and top-k without ever seeing a raw sample — and both encode to a
// compact length-checked binary form suitable for riding inside telemetry
// reports.
//
// Accuracy contract (pinned by TestQuantileFidelity): the t-digest is the
// authoritative estimator for tail quantiles of merged streams — its error
// concentrates samples at the extremes, so p99 of a heavy-tailed latency
// distribution lands within a few percent of exact. obs.Histogram remains
// authoritative for per-node in-process series: its fixed geometric buckets
// are delta-able (the telemetry plane's counter arithmetic needs that), but
// quantiles interpolated inside a bucket carry the bucket's relative width as
// irreducible error, and bucket counts cannot be merged into a cluster
// quantile at all.
package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// centroid is one t-digest cluster: a mean and the sample weight behind it.
type centroid struct {
	mean   float64
	weight float64
}

// TDigest estimates quantiles of a stream in bounded memory using the
// merging t-digest algorithm: incoming samples buffer unsorted, and when the
// buffer fills they are merged into a sorted centroid list whose cluster
// sizes follow the k1 scale function — tiny clusters at the extremes, large
// in the middle — so tail quantiles stay sharp. The zero value is not ready;
// use NewTDigest. Not safe for concurrent use (callers lock).
type TDigest struct {
	compression float64
	clusters    []centroid
	pend        []centroid
	scratch     []centroid
	sorter      centroidSorter
	count       float64
	min, max    float64
}

// centroidSorter sorts a centroid slice by mean through sort.Sort via a
// pointer receiver — unlike sort.Slice it allocates nothing, which the
// zero-alloc record path depends on (compress runs amortized inside Add).
type centroidSorter struct{ s []centroid }

func (c *centroidSorter) Len() int           { return len(c.s) }
func (c *centroidSorter) Less(i, j int) bool { return c.s[i].mean < c.s[j].mean }
func (c *centroidSorter) Swap(i, j int)      { c.s[i], c.s[j] = c.s[j], c.s[i] }

// DefaultCompression is the default δ: ~100 retained clusters, which keeps
// p99 of heavy-tailed distributions within a few percent of exact while the
// serialized form stays under ~1.7 KB.
const DefaultCompression = 100

// NewTDigest builds a digest with the given compression (δ); values < 20
// (including 0) get DefaultCompression. All buffers are preallocated, so
// steady-state Add performs no allocations.
func NewTDigest(compression float64) *TDigest {
	if compression < 20 {
		compression = DefaultCompression
	}
	capacity := int(4 * compression)
	return &TDigest{
		compression: compression,
		clusters:    make([]centroid, 0, capacity),
		pend:        make([]centroid, 0, capacity),
		scratch:     make([]centroid, 0, 2*capacity),
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// Add folds one sample in.
func (t *TDigest) Add(v float64) { t.AddWeighted(v, 1) }

// AddWeighted folds a sample with weight w (w <= 0 or non-finite v ignored).
func (t *TDigest) AddWeighted(v, w float64) {
	if w <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if v < t.min {
		t.min = v
	}
	if v > t.max {
		t.max = v
	}
	t.count += w
	t.pend = append(t.pend, centroid{mean: v, weight: w})
	if len(t.pend) == cap(t.pend) {
		t.compress()
	}
}

// Merge folds another digest's clusters in; other is unchanged. Merging is
// the whole point of the type: per-node digests sum into a cluster digest
// whose quantiles reflect the union stream.
func (t *TDigest) Merge(other *TDigest) {
	if other == nil {
		return
	}
	other.flushPend()
	for _, c := range other.clusters {
		if c.mean < t.min {
			t.min = c.mean
		}
		if c.mean > t.max {
			t.max = c.mean
		}
		t.count += c.weight
		t.pend = append(t.pend, c)
		if len(t.pend) == cap(t.pend) {
			t.compress()
		}
	}
	// Extremes survive merging even when their clusters got averaged away.
	if other.min < t.min {
		t.min = other.min
	}
	if other.max > t.max {
		t.max = other.max
	}
}

// Count is the total sample weight folded in.
func (t *TDigest) Count() float64 { return t.count }

// Min and Max are the exact stream extremes (Inf on an empty digest).
func (t *TDigest) Min() float64 { return t.min }
func (t *TDigest) Max() float64 { return t.max }

// flushPend merges buffered samples into the cluster list.
func (t *TDigest) flushPend() {
	if len(t.pend) > 0 {
		t.compress()
	}
}

func centroidLess(a, b centroid) bool { return a.mean < b.mean }

// k1 is the scale function: it maps a quantile to a cluster-size budget that
// shrinks toward both extremes.
func (t *TDigest) k1(q float64) float64 {
	return t.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

// compress merges pend into clusters, rebuilding the centroid list greedily
// under the k1 size budget. Both working slices are reused; the only
// allocation ever is initial growth.
func (t *TDigest) compress() {
	t.sorter.s = t.pend
	sort.Sort(&t.sorter)
	// Merge the two sorted runs (clusters, pend) into scratch.
	merged := t.scratch[:0]
	i, j := 0, 0
	for i < len(t.clusters) && j < len(t.pend) {
		if centroidLess(t.clusters[i], t.pend[j]) {
			merged = append(merged, t.clusters[i])
			i++
		} else {
			merged = append(merged, t.pend[j])
			j++
		}
	}
	merged = append(merged, t.clusters[i:]...)
	merged = append(merged, t.pend[j:]...)
	t.pend = t.pend[:0]
	if len(merged) == 0 {
		t.scratch = merged
		return
	}

	// Greedy rebuild: grow the current cluster while the scale function
	// allows, emit it when the budget is spent.
	out := t.clusters[:0]
	cur := merged[0]
	seen := 0.0 // weight fully emitted before cur
	kLeft := t.k1(0)
	for _, c := range merged[1:] {
		qRight := (seen + cur.weight + c.weight) / t.count
		if t.k1(qRight)-kLeft <= 1 {
			// Absorb: weighted-mean update keeps the cluster centered.
			cur.mean += (c.mean - cur.mean) * c.weight / (cur.weight + c.weight)
			cur.weight += c.weight
			continue
		}
		out = append(out, cur)
		seen += cur.weight
		kLeft = t.k1(seen / t.count)
		cur = c
	}
	out = append(out, cur)
	t.clusters = out
	t.scratch = merged[:0]
}

// Quantile estimates the q-th quantile (q clamped to [0,1]). Interpolation
// runs between adjacent centroid midpoints, with the exact min/max anchoring
// the extremes. Returns 0 on an empty digest.
func (t *TDigest) Quantile(q float64) float64 {
	t.flushPend()
	if t.count == 0 || len(t.clusters) == 0 {
		return 0
	}
	if q <= 0 {
		return t.min
	}
	if q >= 1 {
		return t.max
	}
	target := q * t.count
	// cum is the weight strictly before cluster i's midpoint.
	cum := 0.0
	for i, c := range t.clusters {
		mid := cum + c.weight/2
		if target < mid {
			if i == 0 {
				// Inside the first half-cluster: interpolate from min.
				if mid <= 0 {
					return t.min
				}
				return t.min + (c.mean-t.min)*(target/mid)
			}
			prev := t.clusters[i-1]
			prevMid := cum - prev.weight/2
			frac := (target - prevMid) / (mid - prevMid)
			return prev.mean + (c.mean-prev.mean)*frac
		}
		cum += c.weight
	}
	last := t.clusters[len(t.clusters)-1]
	lastMid := t.count - last.weight/2
	if t.count == lastMid {
		return t.max
	}
	frac := (target - lastMid) / (t.count - lastMid)
	return last.mean + (t.max-last.mean)*frac
}

// tdigestMagic versions the binary encoding.
const tdigestMagic = 0xD1

// maxClusters bounds what DecodeTDigest will accept, against corrupt or
// hostile length prefixes (a δ=1000 digest stays far below this).
const maxClusters = 1 << 16

// AppendBinary appends the digest's binary encoding to dst and returns the
// extended slice: magic, compression, min, max, cluster count, then
// mean/weight pairs. Fixed-width big-endian throughout — the format must
// round-trip bit-exactly across nodes.
func (t *TDigest) AppendBinary(dst []byte) []byte {
	t.flushPend()
	dst = append(dst, tdigestMagic)
	dst = appendF64(dst, t.compression)
	dst = appendF64(dst, t.min)
	dst = appendF64(dst, t.max)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(t.clusters)))
	for _, c := range t.clusters {
		dst = appendF64(dst, c.mean)
		dst = appendF64(dst, c.weight)
	}
	return dst
}

// DecodeTDigest parses an AppendBinary encoding. Every length and every
// value is validated — the decoder is fuzzed (FuzzSketchDecode) and must
// treat its input as untrusted wire data.
func DecodeTDigest(data []byte) (*TDigest, error) {
	if len(data) < 1+3*8+4 {
		return nil, fmt.Errorf("sketch: tdigest truncated (%d bytes)", len(data))
	}
	if data[0] != tdigestMagic {
		return nil, fmt.Errorf("sketch: tdigest bad magic 0x%02x", data[0])
	}
	compression := f64At(data, 1)
	if math.IsNaN(compression) || compression < 20 || compression > 1e6 {
		return nil, fmt.Errorf("sketch: tdigest compression %v out of range", compression)
	}
	min, max := f64At(data, 9), f64At(data, 17)
	n := int(binary.BigEndian.Uint32(data[25:]))
	if n > maxClusters {
		return nil, fmt.Errorf("sketch: tdigest cluster count %d exceeds cap", n)
	}
	if len(data) != 29+16*n {
		return nil, fmt.Errorf("sketch: tdigest length %d != %d for %d clusters", len(data), 29+16*n, n)
	}
	t := NewTDigest(compression)
	t.min, t.max = min, max
	prev := math.Inf(-1)
	for i := 0; i < n; i++ {
		mean := f64At(data, 29+16*i)
		weight := f64At(data, 37+16*i)
		if math.IsNaN(mean) || math.IsInf(mean, 0) || mean < prev {
			return nil, fmt.Errorf("sketch: tdigest cluster %d mean %v not ascending", i, mean)
		}
		if math.IsNaN(weight) || weight <= 0 || weight > math.MaxUint32 {
			return nil, fmt.Errorf("sketch: tdigest cluster %d weight %v invalid", i, weight)
		}
		prev = mean
		t.clusters = append(t.clusters, centroid{mean: mean, weight: weight})
		t.count += weight
	}
	if n > 0 {
		if math.IsNaN(min) || math.IsNaN(max) || min > t.clusters[0].mean || max < t.clusters[n-1].mean {
			return nil, fmt.Errorf("sketch: tdigest min/max %v/%v inconsistent with clusters", min, max)
		}
	}
	return t, nil
}

func appendF64(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

func f64At(data []byte, off int) float64 {
	return math.Float64frombits(binary.BigEndian.Uint64(data[off:]))
}
