package webbridge

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ndsm/internal/discovery"
	"ndsm/internal/flightrec"
	"ndsm/internal/obs"
	"ndsm/internal/simtime"
	"ndsm/internal/slo"
	"ndsm/internal/telemetry"
)

// sloFixture builds a bridge with an aggregator + engine whose one
// deadline-miss objective is driven to critical on a virtual clock.
func sloFixture(t *testing.T) (*httptest.Server, *slo.Engine, *flightrec.Recorder) {
	t.Helper()
	vc := simtime.NewVirtual(time.Unix(0, 0))
	agg := telemetry.NewAggregator(telemetry.AggregatorOptions{
		Clock: vc, StaleAfter: time.Hour, Registry: obs.NewRegistry(),
	})
	eng, err := slo.New(slo.Options{Aggregator: agg, Clock: vc, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Add(slo.Objective{
		Name: "ctl-miss", Kind: slo.KindRatio, Node: "n1",
		BadSeries: "ctl.miss", TotalSeries: "ctl.total",
		Budget: 0.1, Window: 10 * time.Second, ShortWindow: 2 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	rec := flightrec.NewRecorder(flightrec.Options{Clock: vc, Aggregator: agg})
	eng.Alerts().Notify(func(tr slo.Transition) {
		if tr.To == slo.Critical {
			rec.Snapshot(flightrec.Trigger{
				Objective: tr.Objective, Node: tr.Node, Severity: tr.To.String(),
				Windows: map[string]float64{"burnLong": tr.BurnLong, "burnShort": tr.BurnShort},
			})
		}
	})
	for i := 1; i <= 4; i++ {
		vc.Advance(time.Second)
		if err := agg.Ingest(&telemetry.Report{
			Node: "n1", Seq: uint64(i), Time: vc.Now(),
			Counters: map[string]int64{"ctl.total": 10, "ctl.miss": 10},
		}); err != nil {
			t.Fatal(err)
		}
		eng.Evaluate()
	}

	bridge := New(discovery.NewStore(nil, 0), nil)
	bridge.SetAggregator(agg)
	bridge.SetSLO(eng)
	bridge.SetFlightRecorder(rec)
	srv := httptest.NewServer(bridge)
	t.Cleanup(srv.Close)
	return srv, eng, rec
}

// TestAlertsEndpoint serves live alert state with the severity summary.
func TestAlertsEndpoint(t *testing.T) {
	srv, _, _ := sloFixture(t)
	resp, err := http.Get(srv.URL + "/alerts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc struct {
		Summary slo.Summary `json:"summary"`
		Alerts  []struct {
			Objective string  `json:"objective"`
			Severity  string  `json:"severity"`
			BurnLong  float64 `json:"burnLong"`
		} `json:"alerts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Summary.Critical != 1 {
		t.Fatalf("summary %+v, want 1 critical", doc.Summary)
	}
	if len(doc.Alerts) != 1 || doc.Alerts[0].Objective != "ctl-miss" || doc.Alerts[0].Severity != "critical" {
		t.Fatalf("alerts %+v", doc.Alerts)
	}
	if doc.Alerts[0].BurnLong < 4 {
		t.Fatalf("burn %v, want >= 4", doc.Alerts[0].BurnLong)
	}
}

// TestFlightEndpoint serves the recorder's post-mortem bundles.
func TestFlightEndpoint(t *testing.T) {
	srv, _, rec := sloFixture(t)
	if rec.Len() == 0 {
		t.Fatal("critical transition cut no bundle")
	}
	resp, err := http.Get(srv.URL + "/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck
	var doc struct {
		Bundles []struct {
			Trigger flightrec.Trigger `json:"trigger"`
		} `json:"bundles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Bundles) != 1 || doc.Bundles[0].Trigger.Objective != "ctl-miss" {
		t.Fatalf("flight doc %+v", doc)
	}
	if doc.Bundles[0].Trigger.Windows["burnLong"] < 4 {
		t.Fatalf("bundle lacks window values: %+v", doc.Bundles[0].Trigger)
	}
}

// TestHealthzAlertSummary is the satellite bugfix: /healthz must carry the
// severity digest when an engine is attached, and stay clean without one.
func TestHealthzAlertSummary(t *testing.T) {
	srv, _, _ := sloFixture(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck
	var doc struct {
		Status string       `json:"status"`
		Alerts *slo.Summary `json:"alerts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "ok" || doc.Alerts == nil || doc.Alerts.Critical != 1 {
		t.Fatalf("healthz %+v, want alert summary with 1 critical", doc)
	}

	// Without an engine the field is absent entirely.
	bare := httptest.NewServer(New(discovery.NewStore(nil, 0), nil))
	defer bare.Close()
	resp2, err := http.Get(bare.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close() //nolint:errcheck
	body, _ := io.ReadAll(resp2.Body)
	if strings.Contains(string(body), "alerts") {
		t.Fatalf("bare healthz leaks an alerts field: %s", body)
	}
}

// TestDashAlertsPanel: the dashboard shows the alerts panel when an engine
// is attached.
func TestDashAlertsPanel(t *testing.T) {
	srv, _, _ := sloFixture(t)
	resp, err := http.Get(srv.URL + "/dash")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck
	body, _ := io.ReadAll(resp.Body)
	page := string(body)
	for _, want := range []string{"SLO alerts", "ctl-miss", "sev-critical"} {
		if !strings.Contains(page, want) {
			t.Fatalf("dash missing %q", want)
		}
	}
}

// TestAlertsNotAttached: both endpoints 404 cleanly without their planes.
func TestAlertsNotAttached(t *testing.T) {
	srv := httptest.NewServer(New(discovery.NewStore(nil, 0), nil))
	defer srv.Close()
	for _, path := range []string{"/alerts", "/flight"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() //nolint:errcheck
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status %d, want 404", path, resp.StatusCode)
		}
	}
}
