package webbridge

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ndsm/internal/discovery"
	"ndsm/internal/obs"
	"ndsm/internal/reqlog"
)

// reqlogFixture builds a bridge with a populated wide-event recorder.
func reqlogFixture(t *testing.T) (*reqlog.Recorder, *httptest.Server) {
	t.Helper()
	rec := reqlog.New(reqlog.Options{Capacity: 64, SampleEvery: 1, Registry: obs.NewRegistry()})
	base := time.Unix(1_700_000_000, 0)
	for i := 0; i < 8; i++ {
		rec.Record(reqlog.Record{
			Time: base.Add(time.Duration(i) * time.Second), Kind: reqlog.KindServer,
			Topic: "svc/hot", Lane: "default", Outcome: reqlog.OutcomeOK,
			Latency: 5 * time.Millisecond,
		})
	}
	rec.Record(reqlog.Record{
		Time: base.Add(10 * time.Second), Kind: reqlog.KindServer,
		Topic: "svc/hot", Lane: "bulk", Outcome: reqlog.OutcomeShed,
		ShedReason: "server at capacity",
	})
	rec.Record(reqlog.Record{
		Time: base.Add(11 * time.Second), Kind: reqlog.KindClient,
		Topic: "svc/cold", Lane: "default", Outcome: reqlog.OutcomeOK,
		Latency: 40 * time.Millisecond,
	})

	bridge := New(discovery.NewStore(nil, 0), nil)
	t.Cleanup(func() { _ = bridge.Close() })
	bridge.SetReqLog(rec)
	srv := httptest.NewServer(bridge)
	t.Cleanup(srv.Close)
	return rec, srv
}

// TestRequestsEndpoint exercises GET /requests: 404 when unattached, full
// listing, and each filter parameter.
func TestRequestsEndpoint(t *testing.T) {
	bare := New(discovery.NewStore(nil, 0), nil)
	bareSrv := httptest.NewServer(bare)
	t.Cleanup(bareSrv.Close)
	if code, _ := get(t, bareSrv.URL+"/requests"); code != http.StatusNotFound {
		t.Fatalf("/requests without recorder = %d, want 404", code)
	}
	if code, _ := get(t, bareSrv.URL+"/topk"); code != http.StatusNotFound {
		t.Fatalf("/topk without recorder = %d, want 404", code)
	}

	_, srv := reqlogFixture(t)
	var doc struct {
		Records []reqlog.Record `json:"records"`
		Tail    int             `json:"tailRetained"`
		Healthy int             `json:"healthyRetained"`
	}
	fetch := func(query string) []reqlog.Record {
		t.Helper()
		code, body := get(t, srv.URL+"/requests"+query)
		if code != http.StatusOK {
			t.Fatalf("/requests%s = %d body=%q", query, code, body)
		}
		doc.Records = nil
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("/requests%s not JSON: %v", query, err)
		}
		return doc.Records
	}

	if all := fetch(""); len(all) != 10 || !all[0].Time.After(all[9].Time) {
		t.Fatalf("unfiltered: %d records (newest-first=%v), want 10", len(all), len(all) > 1 && all[0].Time.After(all[len(all)-1].Time))
	}
	if doc.Tail != 1 || doc.Healthy != 9 {
		t.Fatalf("retained counts tail=%d healthy=%d, want 1/9", doc.Tail, doc.Healthy)
	}
	if sheds := fetch("?outcome=shed"); len(sheds) != 1 || sheds[0].ShedReason != "server at capacity" {
		t.Fatalf("outcome filter: %+v", sheds)
	}
	if cold := fetch("?topic=svc/cold&kind=client"); len(cold) != 1 || cold[0].Latency != 40*time.Millisecond {
		t.Fatalf("topic+kind filter: %+v", cold)
	}
	if lane := fetch("?lane=bulk"); len(lane) != 1 || lane[0].Outcome != reqlog.OutcomeShed {
		t.Fatalf("lane filter: %+v", lane)
	}
	if lim := fetch("?limit=3"); len(lim) != 3 {
		t.Fatalf("limit: %d records, want 3", len(lim))
	}
	if code, _ := get(t, srv.URL+"/requests?limit=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad limit accepted: %d", code)
	}
}

// TestTopKEndpoint exercises GET /topk: ranked topics with local quantiles.
func TestTopKEndpoint(t *testing.T) {
	_, srv := reqlogFixture(t)
	code, body := get(t, srv.URL+"/topk")
	if code != http.StatusOK {
		t.Fatalf("/topk = %d body=%q", code, body)
	}
	var doc struct {
		Topics []struct {
			Topic string  `json:"topic"`
			Count uint64  `json:"count"`
			P99   float64 `json:"p99Ms"`
		} `json:"topics"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/topk not JSON: %v\n%s", err, body)
	}
	if len(doc.Topics) != 2 || doc.Topics[0].Topic != "svc/hot" || doc.Topics[0].Count != 9 {
		t.Fatalf("/topk ranking: %+v", doc.Topics)
	}
	if doc.Topics[1].Topic != "svc/cold" || doc.Topics[1].P99 < 35 {
		t.Fatalf("/topk quantiles: %+v", doc.Topics)
	}
	if n1, _ := get(t, srv.URL+"/topk?n=1"); n1 != http.StatusOK {
		t.Fatalf("/topk?n=1 = %d", n1)
	}
	if code, _ := get(t, srv.URL+"/topk?n=-2"); code != http.StatusBadRequest {
		t.Fatalf("bad n accepted: %d", code)
	}
}
