// Package webbridge is the paper's §2 "embedded web server" integration:
// "the use of embedded web servers on small hardware devices may allow
// access to the web's basic functionality — enabling client programs and
// browsers to fetch web pages". The bridge exposes the middleware to plain
// HTTP clients:
//
//	GET /services?name=<pattern>   -> XML <services> list from discovery
//	GET /figure1                   -> the paper's Figure 1 as text
//	POST /call/<service>           -> bind best supplier, forward body,
//	                                  return the reply payload
//	GET /metrics                   -> JSON snapshot of the shared
//	                                  observability registry
//	GET /trace                     -> collected spans as Chrome trace-event
//	                                  JSON (?format=jsonl for JSONL)
//	GET /healthz                   -> liveness, with per-peer failure-detector
//	                                  state when a health monitor is attached
//	GET /cluster                   -> merged telemetry view (JSON per-node
//	                                  time series + freshness) when an
//	                                  aggregator is attached
//	GET /dash                      -> self-contained HTML dashboard over the
//	                                  same view (inline SVG sparklines, no
//	                                  external assets), with an SLO alerts
//	                                  panel when an engine is attached
//	GET /alerts                    -> live SLO alert state (per-instance
//	                                  severity, burn rates) plus a severity
//	                                  summary, when an engine is attached
//	GET /flight                    -> the flight recorder's retained
//	                                  post-mortem bundles, when one is
//	                                  attached
//	GET /requests                  -> retained wide-event records from the
//	                                  request-analytics recorder, filterable
//	                                  by ?topic=&lane=&outcome=&kind=&limit=
//	GET /topk                      -> the recorder's heaviest topics plus
//	                                  per-topic latency quantiles
//	GET /debug/pprof/*             -> Go profiling endpoints, only after an
//	                                  explicit EnablePprof (opt-in: profiles
//	                                  leak internals and burn CPU)
//
// It is a compact http.Handler, so it embeds into any mux; cmd/ndsm-node
// can front a node with it for browser access.
package webbridge

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"ndsm/internal/bibliometrics"
	"ndsm/internal/core"
	"ndsm/internal/discovery"
	"ndsm/internal/flightrec"
	"ndsm/internal/health"
	"ndsm/internal/obs"
	"ndsm/internal/qos"
	"ndsm/internal/reqlog"
	"ndsm/internal/slo"
	"ndsm/internal/svcdesc"
	"ndsm/internal/telemetry"
	"ndsm/internal/trace"
)

// maxCallBody bounds POST /call payloads.
const maxCallBody = 1 << 20

// serverConfig is the bridge's one resolved lookup path for every
// observability dependency. Handlers used to each re-derive their sources
// (obs.Or sprinkled through /metrics, /healthz, /trace); now they take one
// consistent copy per request via Bridge.config, and the Set*/Enable*
// mutators swap fields under a single lock.
type serverConfig struct {
	metrics *obs.Registry
	health  *health.Monitor
	spans   *trace.Collector
	agg     *telemetry.Aggregator
	slo     *slo.Engine
	flight  *flightrec.Recorder
	reqlog  *reqlog.Recorder
	// sampleRuntime refreshes the runtime gauges (EnableRuntimeMetrics);
	// /metrics calls it before snapshotting.
	sampleRuntime func()
	pprof         bool
}

// Bridge serves the middleware over HTTP.
type Bridge struct {
	registry discovery.Resolver
	node     *core.Node

	cfgMu sync.RWMutex
	cfg   serverConfig

	mu       sync.Mutex
	bindings map[string]*core.Binding // service name -> cached binding
}

// New creates a bridge. node may be nil, in which case /call is disabled
// (lookup-only bridges suit registry hosts). When node carries a health
// monitor, /healthz reports its per-peer state; attach one explicitly with
// SetHealth otherwise.
func New(registry discovery.Resolver, node *core.Node) *Bridge {
	b := &Bridge{
		registry: registry,
		node:     node,
		cfg:      serverConfig{metrics: obs.Default()},
		bindings: make(map[string]*core.Binding),
	}
	if node != nil {
		b.cfg.health = node.Health()
	}
	return b
}

// config resolves the effective per-request configuration: the stored
// fields plus the process-default fallbacks (metrics registry, the default
// tracer's collector).
func (b *Bridge) config() serverConfig {
	b.cfgMu.RLock()
	c := b.cfg
	b.cfgMu.RUnlock()
	if c.metrics == nil {
		c.metrics = obs.Default()
	}
	if c.spans == nil {
		c.spans = trace.Default().Collector()
	}
	return c
}

// SetMetricsRegistry points /metrics at a specific registry instead of the
// process-wide default (isolated tests, embedded multi-stack processes).
func (b *Bridge) SetMetricsRegistry(r *obs.Registry) {
	b.cfgMu.Lock()
	b.cfg.metrics = obs.Or(r)
	b.cfgMu.Unlock()
}

// SetHealth points /healthz at a failure-detector monitor (overriding the
// node's, if any).
func (b *Bridge) SetHealth(m *health.Monitor) {
	b.cfgMu.Lock()
	b.cfg.health = m
	b.cfgMu.Unlock()
}

// SetTraceCollector points /trace at a span collector. Without one, /trace
// falls back to the process-default tracer's collector.
func (b *Bridge) SetTraceCollector(c *trace.Collector) {
	b.cfgMu.Lock()
	b.cfg.spans = c
	b.cfgMu.Unlock()
}

// SetAggregator attaches a telemetry aggregator, enabling GET /cluster and
// GET /dash over its merged view.
func (b *Bridge) SetAggregator(a *telemetry.Aggregator) {
	b.cfgMu.Lock()
	b.cfg.agg = a
	b.cfgMu.Unlock()
}

// SetSLO attaches an alerting engine, enabling GET /alerts (live alert
// state), the alerts panel on /dash, and the alert summary in /healthz.
func (b *Bridge) SetSLO(e *slo.Engine) {
	b.cfgMu.Lock()
	b.cfg.slo = e
	b.cfgMu.Unlock()
}

// SetFlightRecorder attaches a flight recorder, enabling GET /flight
// (retained post-mortem bundles).
func (b *Bridge) SetFlightRecorder(r *flightrec.Recorder) {
	b.cfgMu.Lock()
	b.cfg.flight = r
	b.cfgMu.Unlock()
}

// SetReqLog attaches a wide-event recorder, enabling GET /requests (retained
// exemplars, filterable) and GET /topk (heaviest topics with latency
// quantiles).
func (b *Bridge) SetReqLog(r *reqlog.Recorder) {
	b.cfgMu.Lock()
	b.cfg.reqlog = r
	b.cfgMu.Unlock()
}

// EnableRuntimeMetrics registers the Go runtime gauges (goroutines, heap
// bytes, GC pause total) in the bridge's metrics registry and refreshes them
// on every /metrics request.
func (b *Bridge) EnableRuntimeMetrics() {
	b.cfgMu.Lock()
	update := obs.RuntimeGauges(b.cfg.metrics)
	b.cfg.sampleRuntime = update
	b.cfgMu.Unlock()
}

// EnablePprof turns on the /debug/pprof/* endpoints. Off by default: on the
// hardened embedded server, profiling is an operator decision, not a
// default attack surface.
func (b *Bridge) EnablePprof() {
	b.cfgMu.Lock()
	b.cfg.pprof = true
	b.cfgMu.Unlock()
}

var _ http.Handler = (*Bridge)(nil)

// Close releases all cached bindings.
func (b *Bridge) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	var firstErr error
	for name, binding := range b.bindings {
		if err := binding.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(b.bindings, name)
	}
	return firstErr
}

// ServeHTTP implements http.Handler.
func (b *Bridge) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		b.handleHealthz(w, r)
	case r.URL.Path == "/trace":
		b.handleTrace(w, r)
	case r.URL.Path == "/figure1":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, bibliometrics.Chart(bibliometrics.Figure1(), 50))
	case r.URL.Path == "/metrics":
		b.handleMetrics(w, r)
	case r.URL.Path == "/cluster":
		b.handleCluster(w, r)
	case r.URL.Path == "/dash":
		b.handleDash(w, r)
	case r.URL.Path == "/alerts":
		b.handleAlerts(w, r)
	case r.URL.Path == "/flight":
		b.handleFlight(w, r)
	case r.URL.Path == "/requests":
		b.handleRequests(w, r)
	case r.URL.Path == "/topk":
		b.handleTopK(w, r)
	case r.URL.Path == "/services":
		b.handleServices(w, r)
	case strings.HasPrefix(r.URL.Path, "/call/"):
		b.handleCall(w, r)
	case strings.HasPrefix(r.URL.Path, "/debug/pprof/"):
		b.handlePprof(w, r)
	default:
		http.NotFound(w, r)
	}
}

// handleMetrics serves the observability snapshot: every counter, gauge,
// and histogram the middleware stack registered — transport traffic, netsim
// radio activity, netmux drops, discovery query costs, WAL persistence — in
// one JSON document.
func (b *Bridge) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	c := b.config()
	c.metrics.Counter("webbridge.metrics_requests").Inc(1)
	if c.sampleRuntime != nil {
		c.sampleRuntime()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(c.metrics.Snapshot())
}

// handleCluster serves the telemetry aggregator's merged view: per-node
// windowed time series, per-node freshness, health, and trace depth.
func (b *Bridge) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	c := b.config()
	if c.agg == nil {
		http.Error(w, "telemetry aggregator not attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(c.agg.View())
}

// handleDash serves the single-file HTML dashboard over the same view.
func (b *Bridge) handleDash(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	c := b.config()
	if c.agg == nil {
		http.Error(w, "telemetry aggregator not attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(telemetry.RenderDashAlerts(c.agg.View(), dashAlerts(c.slo)))
}

// dashAlerts flattens the engine's live alert state into the telemetry
// package's neutral dashboard rows (nil engine: no panel).
func dashAlerts(e *slo.Engine) []telemetry.DashAlert {
	if e == nil {
		return nil
	}
	states := e.States()
	out := make([]telemetry.DashAlert, 0, len(states))
	for _, s := range states {
		out = append(out, telemetry.DashAlert{
			Objective: s.Objective,
			Node:      s.Node,
			Severity:  s.Severity.String(),
			Burn:      s.BurnLong,
			Since:     s.Since,
		})
	}
	return out
}

// handleAlerts serves the engine's live alert state: one row per alert
// instance (objective × node) with severity, window burn rates, and the
// severity digest external probes want.
func (b *Bridge) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	c := b.config()
	if c.slo == nil {
		http.Error(w, "slo engine not attached", http.StatusNotFound)
		return
	}
	doc := struct {
		Summary slo.Summary      `json:"summary"`
		Alerts  []slo.AlertState `json:"alerts"`
	}{Summary: c.slo.Summary(), Alerts: c.slo.States()}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// handleFlight serves the flight recorder's retained post-mortem bundles as
// one JSON document.
func (b *Bridge) handleFlight(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	c := b.config()
	if c.flight == nil {
		http.Error(w, "flight recorder not attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = c.flight.WriteJSON(w)
}

// handleRequests serves the wide-event recorder's retained exemplars,
// newest first, filtered by the query parameters the reqlog Filter knows:
// topic, lane, outcome, kind, limit (default 100).
func (b *Bridge) handleRequests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	c := b.config()
	if c.reqlog == nil {
		http.Error(w, "request analytics not attached", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	f := reqlog.Filter{
		Topic:   q.Get("topic"),
		Lane:    q.Get("lane"),
		Outcome: q.Get("outcome"),
		Kind:    q.Get("kind"),
		Limit:   100,
	}
	if lim := q.Get("limit"); lim != "" {
		n, err := strconv.Atoi(lim)
		if err != nil || n <= 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		f.Limit = n
	}
	records := c.reqlog.Snapshot(f)
	tail, healthy := c.reqlog.Len()
	doc := struct {
		Records []reqlog.Record `json:"records"`
		Tail    int             `json:"tailRetained"`
		Healthy int             `json:"healthyRetained"`
	}{Records: records, Tail: tail, Healthy: healthy}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// handleTopK serves the recorder's heavy-hitter estimate with each tracked
// topic's local latency quantiles — the single-node attribution answer (the
// cluster-merged one lives in /cluster and /dash via the aggregator).
func (b *Bridge) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	c := b.config()
	if c.reqlog == nil {
		http.Error(w, "request analytics not attached", http.StatusNotFound)
		return
	}
	n := 10
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	type topicRow struct {
		Topic string  `json:"topic"`
		Count uint64  `json:"count"`
		Err   uint64  `json:"err,omitempty"`
		P50   float64 `json:"p50Ms"`
		P99   float64 `json:"p99Ms"`
	}
	entries := c.reqlog.TopK(n)
	rows := make([]topicRow, 0, len(entries))
	for _, e := range entries {
		row := topicRow{Topic: e.Key, Count: e.Count, Err: e.Err}
		if p, ok := c.reqlog.TopicQuantile(e.Key, 0.50); ok {
			row.P50 = p
		}
		if p, ok := c.reqlog.TopicQuantile(e.Key, 0.99); ok {
			row.P99 = p
		}
		rows = append(rows, row)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Topics []topicRow `json:"topics"`
	}{Topics: rows})
}

// handlePprof gates the Go profiling endpoints behind EnablePprof.
func (b *Bridge) handlePprof(w http.ResponseWriter, r *http.Request) {
	if !b.config().pprof {
		http.NotFound(w, r)
		return
	}
	switch r.URL.Path {
	case "/debug/pprof/cmdline":
		pprof.Cmdline(w, r)
	case "/debug/pprof/profile":
		pprof.Profile(w, r)
	case "/debug/pprof/symbol":
		pprof.Symbol(w, r)
	case "/debug/pprof/trace":
		pprof.Trace(w, r)
	default:
		// Index also serves the named profiles (heap, goroutine, ...).
		pprof.Index(w, r)
	}
}

// handleHealthz reports liveness plus, when a health monitor is attached,
// every tracked peer's failure-detector verdict: suspected flag, phi level,
// and circuit-breaker state.
func (b *Bridge) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	type healthDoc struct {
		Status string              `json:"status"`
		Peers  []health.PeerStatus `json:"peers,omitempty"`
		// Alerts is the SLO severity digest — external probes learn "is
		// anything critical" from the same endpoint they already poll,
		// without parsing /alerts.
		Alerts *slo.Summary `json:"alerts,omitempty"`
	}
	doc := healthDoc{Status: "ok"}
	c := b.config()
	if m := c.health; m != nil {
		doc.Peers = m.Status()
	}
	if c.slo != nil {
		sum := c.slo.Summary()
		doc.Alerts = &sum
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// handleTrace serves the collected spans — Chrome trace-event JSON by
// default (load it in chrome://tracing or Perfetto), JSONL with
// ?format=jsonl.
func (b *Bridge) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	col := b.config().spans
	if col == nil {
		http.Error(w, "tracing disabled (no collector)", http.StatusNotFound)
		return
	}
	spans := col.Spans()
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = trace.WriteJSONL(w, spans)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = trace.WriteChromeTrace(w, spans)
}

func (b *Bridge) handleServices(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	q := &svcdesc.Query{Name: r.URL.Query().Get("name")}
	if min := r.URL.Query().Get("minReliability"); min != "" {
		if _, err := fmt.Sscanf(min, "%f", &q.MinReliability); err != nil {
			http.Error(w, "bad minReliability", http.StatusBadRequest)
			return
		}
	}
	descs, err := b.registry.Lookup(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	payload, err := svcdesc.MarshalDescriptionList(descs)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	_, _ = w.Write(payload)
}

func (b *Bridge) handleCall(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if b.node == nil {
		http.Error(w, "call bridge disabled (no node)", http.StatusNotImplemented)
		return
	}
	service := strings.TrimPrefix(r.URL.Path, "/call/")
	if service == "" {
		http.Error(w, "missing service name", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxCallBody))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	binding, err := b.binding(service)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	b.config().metrics.Counter("webbridge.calls").Inc(1)
	out, err := binding.Request(body)
	if err != nil {
		// Drop the cached binding so the next call re-matches from scratch.
		b.evict(service, binding)
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-NDSM-Supplier", binding.Peer())
	_, _ = w.Write(out)
}

// binding returns (creating and caching on demand) a QoS-managed binding for
// the service.
func (b *Bridge) binding(service string) (*core.Binding, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if bd, ok := b.bindings[service]; ok {
		return bd, nil
	}
	bd, err := b.node.Bind(&qos.Spec{Query: svcdesc.Query{Name: service}}, core.BindOptions{})
	if err != nil {
		return nil, err
	}
	b.bindings[service] = bd
	return bd, nil
}

func (b *Bridge) evict(service string, binding *core.Binding) {
	b.mu.Lock()
	if b.bindings[service] == binding {
		delete(b.bindings, service)
	}
	b.mu.Unlock()
	_ = binding.Close()
}

// NewHTTPServer wraps a handler (typically a *Bridge) in an http.Server with
// hardened timeouts: slow-header and slow-body clients cannot pin a
// connection open indefinitely, and idle keep-alives are reaped. The paper's
// embedded-web-server deployments sit on constrained devices where a handful
// of stuck connections is a denial of service; explicit timeouts are the
// standing defence. Callers own Shutdown/Close.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}
