package webbridge

import (
	"context"
	"encoding/json"
	"path/filepath"
	"time"

	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ndsm/internal/core"
	"ndsm/internal/discovery"
	"ndsm/internal/netmux"
	"ndsm/internal/netsim"
	"ndsm/internal/obs"
	"ndsm/internal/recovery"
	"ndsm/internal/svcdesc"
	"ndsm/internal/transport"
)

func fixture(t *testing.T) (*discovery.Store, *core.Node, *httptest.Server) {
	t.Helper()
	fabric := transport.NewFabric()
	registry := discovery.NewStore(nil, 0)

	sup, err := core.NewNode(core.Config{Name: "sup", Transport: transport.NewMem(fabric), Registry: registry})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sup.Close() })
	if err := sup.Serve(&svcdesc.Description{Name: "sensor/bp", Reliability: 0.9, PowerLevel: 1},
		func(p []byte) ([]byte, error) { return append([]byte("web:"), p...), nil }); err != nil {
		t.Fatal(err)
	}

	web, err := core.NewNode(core.Config{Name: "web", Transport: transport.NewMem(fabric), Registry: registry})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = web.Close() })

	bridge := New(registry, web)
	t.Cleanup(func() { _ = bridge.Close() })
	srv := httptest.NewServer(bridge)
	t.Cleanup(srv.Close)
	return registry, web, srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url) //nolint:gosec // test URL
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}

func TestHealthz(t *testing.T) {
	_, _, srv := fixture(t)
	code, body := get(t, srv.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("code=%d body=%q", code, body)
	}
}

func TestFigure1Endpoint(t *testing.T) {
	_, _, srv := fixture(t)
	code, body := get(t, srv.URL+"/figure1")
	if code != http.StatusOK || !strings.Contains(body, "1993") {
		t.Fatalf("code=%d body=%q", code, body)
	}
}

func TestServicesEndpoint(t *testing.T) {
	_, _, srv := fixture(t)
	code, body := get(t, srv.URL+"/services?name=sensor/*")
	if code != http.StatusOK {
		t.Fatalf("code=%d body=%q", code, body)
	}
	descs, err := svcdesc.UnmarshalDescriptionList([]byte(body))
	if err != nil {
		t.Fatalf("response not a service list: %v\n%s", err, body)
	}
	if len(descs) != 1 || descs[0].Provider != "sup" {
		t.Fatalf("descs = %+v", descs)
	}
}

func TestServicesFilter(t *testing.T) {
	_, _, srv := fixture(t)
	code, body := get(t, srv.URL+"/services?name=sensor/*&minReliability=0.99")
	if code != http.StatusOK {
		t.Fatalf("code=%d", code)
	}
	descs, err := svcdesc.UnmarshalDescriptionList([]byte(body))
	if err != nil || len(descs) != 0 {
		t.Fatalf("floor not applied: %v, %v", descs, err)
	}
	if code, _ := get(t, srv.URL+"/services?minReliability=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad filter accepted: %d", code)
	}
}

func TestCallEndpoint(t *testing.T) {
	_, _, srv := fixture(t)
	resp, err := http.Post(srv.URL+"/call/sensor/bp", "application/octet-stream", strings.NewReader("read"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("code = %d", resp.StatusCode)
	}
	buf := make([]byte, 64)
	n, _ := resp.Body.Read(buf)
	if string(buf[:n]) != "web:read" {
		t.Fatalf("body = %q", buf[:n])
	}
	if got := resp.Header.Get("X-NDSM-Supplier"); got != "sup" {
		t.Fatalf("supplier header = %q", got)
	}
	// The binding is cached: a second call works without a new Bind.
	resp2, err := http.Post(srv.URL+"/call/sensor/bp", "application/octet-stream", strings.NewReader("again"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second call code = %d", resp2.StatusCode)
	}
}

func TestCallUnknownService(t *testing.T) {
	_, _, srv := fixture(t)
	resp, err := http.Post(srv.URL+"/call/nothing", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("code = %d", resp.StatusCode)
	}
}

func TestCallMethodAndPathValidation(t *testing.T) {
	_, _, srv := fixture(t)
	if code, _ := get(t, srv.URL+"/call/sensor/bp"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET on /call = %d", code)
	}
	resp, err := http.Post(srv.URL+"/call/", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty service = %d", resp.StatusCode)
	}
}

func TestCallDisabledWithoutNode(t *testing.T) {
	registry := discovery.NewStore(nil, 0)
	bridge := New(registry, nil)
	srv := httptest.NewServer(bridge)
	t.Cleanup(srv.Close)
	resp, err := http.Post(srv.URL+"/call/x", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("code = %d", resp.StatusCode)
	}
}

func TestNotFound(t *testing.T) {
	_, _, srv := fixture(t)
	if code, _ := get(t, srv.URL+"/nope"); code != http.StatusNotFound {
		t.Fatalf("code = %d", code)
	}
}

func TestServicesMethodValidation(t *testing.T) {
	_, _, srv := fixture(t)
	resp, err := http.Post(srv.URL+"/services", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("code = %d", resp.StatusCode)
	}
}

// TestMetricsEndpoint drives one workload through every instrumented layer —
// an instrumented transport carrying a central discovery lookup, a netmux
// overflow drop, and a WAL append — then asserts /metrics reports live
// counters for all of them.
func TestMetricsEndpoint(t *testing.T) {
	before := obs.Default().Snapshot()

	// Transport + discovery: a central registry exercised over an
	// instrumented mem transport.
	fabric := transport.NewFabric()
	tr := transport.Instrument(transport.NewMem(fabric), nil)
	l, err := tr.Listen("registry")
	if err != nil {
		t.Fatal(err)
	}
	dsrv := discovery.NewServer(discovery.NewStore(nil, 0), l)
	t.Cleanup(func() { _ = dsrv.Close() })
	dcli := discovery.NewClient(transport.Instrument(transport.NewMem(fabric), nil), "registry")
	t.Cleanup(func() { _ = dcli.Close() })
	if err := dcli.Register(&svcdesc.Description{Name: "svc", Provider: "n1", Reliability: 0.9, PowerLevel: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := dcli.Lookup(&svcdesc.Query{Name: "svc"}); err != nil {
		t.Fatal(err)
	}

	// Netmux: an unregistered protocol byte is dropped and counted.
	net := netsim.New(netsim.Config{Range: 100, Unlimited: true})
	t.Cleanup(net.Close)
	for _, id := range []netsim.NodeID{"a", "b"} {
		if err := net.AddNode(id, netsim.Position{}); err != nil {
			t.Fatal(err)
		}
	}
	mux, err := netmux.New(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mux.Close)
	if err := net.Send("a", "b", []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for mux.Dropped(0xEE) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("netmux never dropped the unknown-protocol packet")
		}
		time.Sleep(time.Millisecond)
	}

	// WAL: one append.
	wal, err := recovery.OpenWAL(filepath.Join(t.TempDir(), "wal.log"), recovery.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = wal.Close() })
	if _, err := wal.Append(recovery.Record{Type: recovery.RecordOp, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}

	bridge := New(discovery.NewStore(nil, 0), nil)
	srv := httptest.NewServer(bridge)
	t.Cleanup(srv.Close)
	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	diff := snap.Diff(before)
	for _, counter := range []string{
		"transport.mem.sent_msgs",
		"transport.mem.recv_msgs",
		"discovery.lookup.queries",
		"netmux.dropped.238",
		"wal.appends",
	} {
		if diff.Counters[counter] <= 0 {
			t.Errorf("counter %s did not move: snapshot has %d (delta %d)",
				counter, snap.Counters[counter], diff.Counters[counter])
		}
	}
	if diff.Counters["discovery.lookup.hits"] <= 0 {
		t.Errorf("lookup hit not counted: %v", diff.Counters["discovery.lookup.hits"])
	}
}

func TestNewHTTPServerHardened(t *testing.T) {
	srv := NewHTTPServer("127.0.0.1:0", http.NewServeMux())
	if srv.Addr != "127.0.0.1:0" {
		t.Fatalf("addr = %q", srv.Addr)
	}
	// Every slow-client timeout must be set: an unset one is an unbounded
	// hold on a connection from a constrained device's tiny pool.
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Fatalf("unbounded timeout in %+v", srv)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown idle server: %v", err)
	}
}
