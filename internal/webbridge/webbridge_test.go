package webbridge

import (
	"context"
	"encoding/json"
	"path/filepath"
	"time"

	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ndsm/internal/core"
	"ndsm/internal/discovery"
	"ndsm/internal/endpoint"
	"ndsm/internal/health"
	"ndsm/internal/netmux"
	"ndsm/internal/netsim"
	"ndsm/internal/obs"
	"ndsm/internal/recovery"
	"ndsm/internal/simtime"
	"ndsm/internal/svcdesc"
	"ndsm/internal/telemetry"
	"ndsm/internal/trace"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

func fixture(t *testing.T) (*discovery.Store, *core.Node, *httptest.Server) {
	t.Helper()
	fabric := transport.NewFabric()
	registry := discovery.NewStore(nil, 0)

	sup, err := core.NewNode(core.Config{Name: "sup", Transport: transport.NewMem(fabric), Registry: registry})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sup.Close() })
	if err := sup.Serve(&svcdesc.Description{Name: "sensor/bp", Reliability: 0.9, PowerLevel: 1},
		func(p []byte) ([]byte, error) { return append([]byte("web:"), p...), nil }); err != nil {
		t.Fatal(err)
	}

	web, err := core.NewNode(core.Config{Name: "web", Transport: transport.NewMem(fabric), Registry: registry})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = web.Close() })

	bridge := New(registry, web)
	t.Cleanup(func() { _ = bridge.Close() })
	srv := httptest.NewServer(bridge)
	t.Cleanup(srv.Close)
	return registry, web, srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url) //nolint:gosec // test URL
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}

func TestHealthz(t *testing.T) {
	_, _, srv := fixture(t)
	code, body := get(t, srv.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("code=%d body=%q", code, body)
	}
}

func TestFigure1Endpoint(t *testing.T) {
	_, _, srv := fixture(t)
	code, body := get(t, srv.URL+"/figure1")
	if code != http.StatusOK || !strings.Contains(body, "1993") {
		t.Fatalf("code=%d body=%q", code, body)
	}
}

func TestServicesEndpoint(t *testing.T) {
	_, _, srv := fixture(t)
	code, body := get(t, srv.URL+"/services?name=sensor/*")
	if code != http.StatusOK {
		t.Fatalf("code=%d body=%q", code, body)
	}
	descs, err := svcdesc.UnmarshalDescriptionList([]byte(body))
	if err != nil {
		t.Fatalf("response not a service list: %v\n%s", err, body)
	}
	if len(descs) != 1 || descs[0].Provider != "sup" {
		t.Fatalf("descs = %+v", descs)
	}
}

func TestServicesFilter(t *testing.T) {
	_, _, srv := fixture(t)
	code, body := get(t, srv.URL+"/services?name=sensor/*&minReliability=0.99")
	if code != http.StatusOK {
		t.Fatalf("code=%d", code)
	}
	descs, err := svcdesc.UnmarshalDescriptionList([]byte(body))
	if err != nil || len(descs) != 0 {
		t.Fatalf("floor not applied: %v, %v", descs, err)
	}
	if code, _ := get(t, srv.URL+"/services?minReliability=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad filter accepted: %d", code)
	}
}

func TestCallEndpoint(t *testing.T) {
	_, _, srv := fixture(t)
	resp, err := http.Post(srv.URL+"/call/sensor/bp", "application/octet-stream", strings.NewReader("read"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("code = %d", resp.StatusCode)
	}
	buf := make([]byte, 64)
	n, _ := resp.Body.Read(buf)
	if string(buf[:n]) != "web:read" {
		t.Fatalf("body = %q", buf[:n])
	}
	if got := resp.Header.Get("X-NDSM-Supplier"); got != "sup" {
		t.Fatalf("supplier header = %q", got)
	}
	// The binding is cached: a second call works without a new Bind.
	resp2, err := http.Post(srv.URL+"/call/sensor/bp", "application/octet-stream", strings.NewReader("again"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second call code = %d", resp2.StatusCode)
	}
}

func TestCallUnknownService(t *testing.T) {
	_, _, srv := fixture(t)
	resp, err := http.Post(srv.URL+"/call/nothing", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("code = %d", resp.StatusCode)
	}
}

func TestCallMethodAndPathValidation(t *testing.T) {
	_, _, srv := fixture(t)
	if code, _ := get(t, srv.URL+"/call/sensor/bp"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET on /call = %d", code)
	}
	resp, err := http.Post(srv.URL+"/call/", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty service = %d", resp.StatusCode)
	}
}

func TestCallDisabledWithoutNode(t *testing.T) {
	registry := discovery.NewStore(nil, 0)
	bridge := New(registry, nil)
	srv := httptest.NewServer(bridge)
	t.Cleanup(srv.Close)
	resp, err := http.Post(srv.URL+"/call/x", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("code = %d", resp.StatusCode)
	}
}

func TestNotFound(t *testing.T) {
	_, _, srv := fixture(t)
	if code, _ := get(t, srv.URL+"/nope"); code != http.StatusNotFound {
		t.Fatalf("code = %d", code)
	}
}

func TestServicesMethodValidation(t *testing.T) {
	_, _, srv := fixture(t)
	resp, err := http.Post(srv.URL+"/services", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("code = %d", resp.StatusCode)
	}
}

// TestMetricsEndpoint drives one workload through every instrumented layer —
// an instrumented transport carrying a central discovery lookup, a netmux
// overflow drop, and a WAL append — then asserts /metrics reports live
// counters for all of them.
func TestMetricsEndpoint(t *testing.T) {
	before := obs.Default().Snapshot()

	// Transport + discovery: a central registry exercised over an
	// instrumented mem transport.
	fabric := transport.NewFabric()
	tr := transport.Instrument(transport.NewMem(fabric), nil)
	l, err := tr.Listen("registry")
	if err != nil {
		t.Fatal(err)
	}
	dsrv := discovery.NewServer(discovery.NewStore(nil, 0), l)
	t.Cleanup(func() { _ = dsrv.Close() })
	dcli := discovery.NewClient(transport.Instrument(transport.NewMem(fabric), nil), "registry")
	t.Cleanup(func() { _ = dcli.Close() })
	if err := dcli.Register(&svcdesc.Description{Name: "svc", Provider: "n1", Reliability: 0.9, PowerLevel: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := dcli.Lookup(&svcdesc.Query{Name: "svc"}); err != nil {
		t.Fatal(err)
	}

	// Netmux: an unregistered protocol byte is dropped and counted.
	net := netsim.New(netsim.Config{Range: 100, Unlimited: true})
	t.Cleanup(net.Close)
	for _, id := range []netsim.NodeID{"a", "b"} {
		if err := net.AddNode(id, netsim.Position{}); err != nil {
			t.Fatal(err)
		}
	}
	mux, err := netmux.New(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mux.Close)
	if err := net.Send("a", "b", []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for mux.Dropped(0xEE) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("netmux never dropped the unknown-protocol packet")
		}
		time.Sleep(time.Millisecond)
	}

	// WAL: one append.
	wal, err := recovery.OpenWAL(filepath.Join(t.TempDir(), "wal.log"), recovery.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = wal.Close() })
	if _, err := wal.Append(recovery.Record{Type: recovery.RecordOp, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}

	bridge := New(discovery.NewStore(nil, 0), nil)
	srv := httptest.NewServer(bridge)
	t.Cleanup(srv.Close)
	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	diff := snap.Diff(before)
	for _, counter := range []string{
		"transport.mem.sent_msgs",
		"transport.mem.recv_msgs",
		"discovery.lookup.queries",
		"netmux.dropped.238",
		"wal.appends",
	} {
		if diff.Counters[counter] <= 0 {
			t.Errorf("counter %s did not move: snapshot has %d (delta %d)",
				counter, snap.Counters[counter], diff.Counters[counter])
		}
	}
	if diff.Counters["discovery.lookup.hits"] <= 0 {
		t.Errorf("lookup hit not counted: %v", diff.Counters["discovery.lookup.hits"])
	}
}

// TestMetricsEndpointLaneCounters sheds one bulk call at a lane-aware
// endpoint server on the default registry and asserts /metrics exposes the
// per-lane admission series (and /dash picks the node's prefix up as a
// series group, since both render the same registry).
func TestMetricsEndpointLaneCounters(t *testing.T) {
	before := obs.Default().Snapshot()

	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	l, err := tr.Listen("lane-srv")
	if err != nil {
		t.Fatal(err)
	}
	// Capacity 1, all of it reserved for control: a bulk call sheds without
	// blocking, a control call admits through the reservation.
	esrv := endpoint.NewServer(l, endpoint.ServerOptions{
		Name:        "lanesrv",
		MaxInFlight: 1,
		Lanes:       &endpoint.LaneConfig{Quota: map[endpoint.Lane]int{endpoint.LaneControl: 1}},
	})
	t.Cleanup(func() { _ = esrv.Close() })
	esrv.Handle("w", func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	caller, err := endpoint.NewCaller(tr, "lane-srv", endpoint.CallerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = caller.Close() })
	if _, err := caller.Do(&endpoint.Call{Topic: "w", Lane: endpoint.LaneBulk, Timeout: 5 * time.Second}); !endpoint.IsShed(err) {
		t.Fatalf("bulk call: got %v, want shed", err)
	}
	if _, err := caller.Do(&endpoint.Call{Topic: "w", Lane: endpoint.LaneControl, Timeout: 5 * time.Second}); err != nil {
		t.Fatalf("control call: %v", err)
	}

	bridge := New(discovery.NewStore(nil, 0), nil)
	srv := httptest.NewServer(bridge)
	t.Cleanup(srv.Close)
	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	diff := snap.Diff(before)
	for _, counter := range []string{
		"lanesrv.lane.bulk.shed",
		"lanesrv.lane.control.admitted",
		"lanesrv.shed",
	} {
		if diff.Counters[counter] <= 0 {
			t.Errorf("counter %s did not move (delta %d)", counter, diff.Counters[counter])
		}
	}
}

func TestNewHTTPServerHardened(t *testing.T) {
	srv := NewHTTPServer("127.0.0.1:0", http.NewServeMux())
	if srv.Addr != "127.0.0.1:0" {
		t.Fatalf("addr = %q", srv.Addr)
	}
	// Every slow-client timeout must be set: an unset one is an unbounded
	// hold on a connection from a constrained device's tiny pool.
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Fatalf("unbounded timeout in %+v", srv)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown idle server: %v", err)
	}
}

// TestHealthzPeerStates drives a failure detector to a mixed verdict — one
// alive peer, one suspected with an open breaker — and asserts /healthz
// reports both per-peer records with suspicion, phi, and breaker state.
func TestHealthzPeerStates(t *testing.T) {
	vc := simtime.NewVirtual(time.Unix(5000, 0))
	mon := health.NewMonitor(health.Options{
		Clock:            vc,
		MinSamples:       3,
		FallbackTimeout:  5 * time.Second,
		FailureThreshold: 2,
		Registry:         obs.NewRegistry(),
	})
	// "alive" heartbeats steadily; "dead" stops and fails calls.
	for i := 0; i < 6; i++ {
		mon.Heartbeat("alive")
		if i < 3 {
			mon.Heartbeat("dead")
		}
		vc.Advance(time.Second)
	}
	mon.Heartbeat("alive")
	mon.ReportFailure("dead")
	mon.ReportFailure("dead")
	vc.Advance(10 * time.Second)
	mon.Heartbeat("alive")

	bridge := New(discovery.NewStore(nil, 0), nil)
	bridge.SetHealth(mon)
	srv := httptest.NewServer(bridge)
	t.Cleanup(srv.Close)

	code, body := get(t, srv.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("code=%d body=%q", code, body)
	}
	var doc struct {
		Status string              `json:"status"`
		Peers  []health.PeerStatus `json:"peers"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, body)
	}
	if doc.Status != "ok" {
		t.Errorf("status = %q", doc.Status)
	}
	if len(doc.Peers) != 2 {
		t.Fatalf("got %d peers, want 2: %s", len(doc.Peers), body)
	}
	// Status() sorts by peer name: alive then dead.
	alive, dead := doc.Peers[0], doc.Peers[1]
	if alive.Peer != "alive" || dead.Peer != "dead" {
		t.Fatalf("peer order: %q, %q", alive.Peer, dead.Peer)
	}
	if alive.Suspected {
		t.Errorf("alive peer suspected (phi=%v)", alive.Phi)
	}
	if !dead.Suspected {
		t.Errorf("dead peer not suspected (phi=%v)", dead.Phi)
	}
	if dead.Breaker != "open" {
		t.Errorf("dead breaker = %q, want open", dead.Breaker)
	}
	if alive.Breaker != "closed" {
		t.Errorf("alive breaker = %q, want closed", alive.Breaker)
	}

	// Method validation.
	resp, err := http.Post(srv.URL+"/healthz", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d, want 405", resp.StatusCode)
	}
}

// TestTraceEndpoint records spans into an attached collector and reads them
// back in both export formats.
func TestTraceEndpoint(t *testing.T) {
	col := trace.NewCollector(64)
	tr := trace.New(trace.Options{Name: "bridge", Collector: col})
	sp := tr.StartSpan("client.call", trace.Context{})
	child := tr.StartSpan("server.handle", sp.Context())
	child.Finish()
	sp.Finish()

	bridge := New(discovery.NewStore(nil, 0), nil)
	bridge.SetTraceCollector(col)
	srv := httptest.NewServer(bridge)
	t.Cleanup(srv.Close)

	// Default: Chrome trace-event JSON.
	code, body := get(t, srv.URL+"/trace")
	if code != http.StatusOK {
		t.Fatalf("code=%d body=%q", code, body)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace not Chrome JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	if !names["client.call"] || !names["server.handle"] {
		t.Errorf("missing spans in %v", names)
	}

	// JSONL format: one object per line.
	code, body = get(t, srv.URL+"/trace?format=jsonl")
	if code != http.StatusOK {
		t.Fatalf("jsonl code=%d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2:\n%s", len(lines), body)
	}
	for _, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if obj["trace"] == "" || obj["span"] == "" {
			t.Errorf("JSONL line missing IDs: %v", obj)
		}
	}
}

// TestTraceEndpointDisabled: with no attached collector and no process
// default tracer, /trace answers 404.
func TestTraceEndpointDisabled(t *testing.T) {
	prev := trace.Default()
	trace.SetDefault(nil)
	t.Cleanup(func() { trace.SetDefault(prev) })

	bridge := New(discovery.NewStore(nil, 0), nil)
	srv := httptest.NewServer(bridge)
	t.Cleanup(srv.Close)
	code, _ := get(t, srv.URL+"/trace")
	if code != http.StatusNotFound {
		t.Fatalf("code=%d, want 404", code)
	}
}

// TestMetricsQuantileKeys asserts /metrics histograms serve the p50/p95/p99
// summary keys.
func TestMetricsQuantileKeys(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("rt")
	for i := 1; i <= 50; i++ {
		h.Observe(float64(i))
	}
	bridge := New(discovery.NewStore(nil, 0), nil)
	bridge.SetMetricsRegistry(reg)
	srv := httptest.NewServer(bridge)
	t.Cleanup(srv.Close)
	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("code=%d", code)
	}
	for _, key := range []string{`"p50"`, `"p95"`, `"p99"`} {
		if !strings.Contains(body, key) {
			t.Errorf("/metrics missing %s:\n%s", key, body)
		}
	}
}

func TestClusterAndDashEndpoints(t *testing.T) {
	_, _, srv := fixture(t)
	// Without an aggregator attached, the telemetry endpoints 404.
	if code, _ := get(t, srv.URL+"/cluster"); code != http.StatusNotFound {
		t.Fatalf("/cluster without aggregator = %d, want 404", code)
	}
	if code, _ := get(t, srv.URL+"/dash"); code != http.StatusNotFound {
		t.Fatalf("/dash without aggregator = %d, want 404", code)
	}
}

func TestClusterEndpointServesView(t *testing.T) {
	fabric := transport.NewFabric()
	registry := discovery.NewStore(nil, 0)
	web, err := core.NewNode(core.Config{Name: "web", Transport: transport.NewMem(fabric), Registry: registry})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = web.Close() })
	bridge := New(registry, web)
	t.Cleanup(func() { _ = bridge.Close() })

	clock := simtime.NewVirtual(time.Unix(0, 0))
	agg := telemetry.NewAggregator(telemetry.AggregatorOptions{Clock: clock, Registry: obs.NewRegistry()})
	if err := agg.Ingest(&telemetry.Report{
		Node: "n1", Seq: 1, Time: time.Unix(1, 0),
		Counters: map[string]int64{"reqs": 12},
	}); err != nil {
		t.Fatal(err)
	}
	bridge.SetAggregator(agg)

	srv := httptest.NewServer(bridge)
	t.Cleanup(srv.Close)

	code, body := get(t, srv.URL+"/cluster")
	if code != http.StatusOK {
		t.Fatalf("/cluster = %d body=%q", code, body)
	}
	var view telemetry.ClusterView
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatalf("/cluster not JSON: %v\n%s", err, body)
	}
	if len(view.Nodes) != 1 || view.Nodes[0].Node != "n1" || !view.Nodes[0].Fresh {
		t.Fatalf("cluster view = %+v", view)
	}
	if len(view.Nodes[0].Series["reqs"]) != 1 {
		t.Fatalf("reqs series missing: %+v", view.Nodes[0].Series)
	}

	code, page := get(t, srv.URL+"/dash")
	if code != http.StatusOK || !strings.Contains(page, "<svg") || !strings.Contains(page, "n1") {
		t.Fatalf("/dash = %d page=%.120q", code, page)
	}

	// POST is rejected on both read-only endpoints.
	resp, err := http.Post(srv.URL+"/cluster", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /cluster = %d, want 405", resp.StatusCode)
	}
}

func TestPprofGated(t *testing.T) {
	registry := discovery.NewStore(nil, 0)
	bridge := New(registry, nil)
	t.Cleanup(func() { _ = bridge.Close() })
	srv := httptest.NewServer(bridge)
	t.Cleanup(srv.Close)

	// Profiling endpoints stay dark until explicitly enabled.
	if code, _ := get(t, srv.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof index before opt-in = %d, want 404", code)
	}
	bridge.EnablePprof()
	code, body := get(t, srv.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index after opt-in = %d body=%.120q", code, body)
	}
	if code, _ := get(t, srv.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof cmdline = %d, want 200", code)
	}
}

func TestRuntimeMetricsOptIn(t *testing.T) {
	registry := discovery.NewStore(nil, 0)
	bridge := New(registry, nil)
	t.Cleanup(func() { _ = bridge.Close() })
	reg := obs.NewRegistry()
	bridge.SetMetricsRegistry(reg)
	srv := httptest.NewServer(bridge)
	t.Cleanup(srv.Close)

	_, before := get(t, srv.URL+"/metrics")
	if strings.Contains(before, obs.GaugeGoroutines) {
		t.Fatalf("runtime gauges present before opt-in:\n%s", before)
	}
	bridge.EnableRuntimeMetrics()
	code, after := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, name := range []string{obs.GaugeGoroutines, obs.GaugeHeapBytes, obs.GaugeGCPauseMS} {
		if !strings.Contains(after, name) {
			t.Errorf("runtime gauge %s missing from /metrics:\n%s", name, after)
		}
	}
}
