// Package location implements the paper's locating feature (§3.5): a
// middleware-level location service that tracks both *physical* positions
// (coordinates, for spatial QoS and routing) and *logical* locations
// (hierarchical place names like "hospital/ward-3/bed-12"), which the paper
// points out are distinct notions that matching algorithms often conflate.
//
// For mobile nodes the service derives a velocity estimate from successive
// updates and extrapolates positions, supporting the paper's
// "intermittent with some prediction" transactions and handoff decisions
// ("a mobile service moving out of range", §3.7).
package location

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ndsm/internal/svcdesc"
)

// Entry is one node's location record.
type Entry struct {
	// Node is the tracked node's address.
	Node string
	// Physical is the last reported coordinate.
	Physical svcdesc.Location
	// Logical is the hierarchical place name, "/"-separated.
	Logical string
	// UpdatedAt is when Physical was last reported.
	UpdatedAt time.Time
	// VX and VY estimate velocity in meters/second, derived from the last
	// two updates.
	VX float64
	VY float64
}

// PredictAt linearly extrapolates the node's position to time at.
func (e Entry) PredictAt(at time.Time) svcdesc.Location {
	dt := at.Sub(e.UpdatedAt).Seconds()
	if dt <= 0 {
		return e.Physical
	}
	return svcdesc.Location{X: e.Physical.X + e.VX*dt, Y: e.Physical.Y + e.VY*dt}
}

// ErrUnknownNode reports a lookup for an untracked node.
var ErrUnknownNode = errors.New("location: unknown node")

// Service is the location registry. All methods are safe for concurrent use.
type Service struct {
	mu      sync.Mutex
	entries map[string]Entry
}

// NewService returns an empty location service.
func NewService() *Service {
	return &Service{entries: make(map[string]Entry)}
}

// Update records a node's position (and optionally its logical place; an
// empty logical keeps the previous value). Velocity is re-estimated from the
// previous update.
func (s *Service) Update(node string, pos svcdesc.Location, logical string, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, ok := s.entries[node]
	e := Entry{Node: node, Physical: pos, Logical: logical, UpdatedAt: now}
	if logical == "" && ok {
		e.Logical = prev.Logical
	}
	if ok {
		dt := now.Sub(prev.UpdatedAt).Seconds()
		if dt > 0 {
			e.VX = (pos.X - prev.Physical.X) / dt
			e.VY = (pos.Y - prev.Physical.Y) / dt
		} else {
			e.VX, e.VY = prev.VX, prev.VY
		}
	}
	s.entries[node] = e
}

// Remove forgets a node.
func (s *Service) Remove(node string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, node)
}

// Get returns a node's entry.
func (s *Service) Get(node string) (Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[node]
	if !ok {
		return Entry{}, fmt.Errorf("%w: %s", ErrUnknownNode, node)
	}
	return e, nil
}

// All returns every entry, sorted by node name.
func (s *Service) All() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// NearestK returns up to k tracked nodes closest to pos, nearest first.
func (s *Service) NearestK(pos svcdesc.Location, k int) []Entry {
	all := s.All()
	sort.SliceStable(all, func(i, j int) bool {
		return all[i].Physical.Distance(pos) < all[j].Physical.Distance(pos)
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// Within returns all tracked nodes within radius of pos, nearest first.
func (s *Service) Within(pos svcdesc.Location, radius float64) []Entry {
	near := s.NearestK(pos, len(s.All()))
	out := near[:0]
	for _, e := range near {
		if e.Physical.Distance(pos) <= radius {
			out = append(out, e)
		}
	}
	return out
}

// InLogicalArea returns the nodes whose logical location is the given place
// or any descendant of it ("hospital/ward-3" matches
// "hospital/ward-3/bed-12"), sorted by node.
func (s *Service) InLogicalArea(area string) []Entry {
	area = strings.TrimSuffix(area, "/")
	var out []Entry
	for _, e := range s.All() {
		if e.Logical == area || strings.HasPrefix(e.Logical, area+"/") {
			out = append(out, e)
		}
	}
	return out
}

// Stale returns nodes not updated within maxAge of now — candidates for
// departure handling and transaction handoff.
func (s *Service) Stale(maxAge time.Duration, now time.Time) []Entry {
	var out []Entry
	for _, e := range s.All() {
		if now.Sub(e.UpdatedAt) > maxAge {
			out = append(out, e)
		}
	}
	return out
}

// Predict extrapolates a node's position to time at.
func (s *Service) Predict(node string, at time.Time) (svcdesc.Location, error) {
	e, err := s.Get(node)
	if err != nil {
		return svcdesc.Location{}, err
	}
	return e.PredictAt(at), nil
}

// WillLeave reports whether the node's predicted position at time at is
// farther than radius from ref — the §3.7 trigger for scheduling a handoff
// before a mobile supplier moves out of range.
func (s *Service) WillLeave(node string, ref svcdesc.Location, radius float64, at time.Time) (bool, error) {
	pos, err := s.Predict(node, at)
	if err != nil {
		return false, err
	}
	return pos.Distance(ref) > radius, nil
}
