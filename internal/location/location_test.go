package location

import (
	"errors"
	"math"
	"testing"
	"time"

	"ndsm/internal/svcdesc"
)

var t0 = time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)

func TestUpdateAndGet(t *testing.T) {
	s := NewService()
	s.Update("n1", svcdesc.Location{X: 1, Y: 2}, "bldg/floor1", t0)
	e, err := s.Get("n1")
	if err != nil {
		t.Fatal(err)
	}
	if e.Physical.X != 1 || e.Physical.Y != 2 || e.Logical != "bldg/floor1" {
		t.Fatalf("entry = %+v", e)
	}
	if e.VX != 0 || e.VY != 0 {
		t.Fatalf("first update should have zero velocity: %+v", e)
	}
	if _, err := s.Get("missing"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpdateKeepsLogicalWhenEmpty(t *testing.T) {
	s := NewService()
	s.Update("n1", svcdesc.Location{}, "ward-3", t0)
	s.Update("n1", svcdesc.Location{X: 5}, "", t0.Add(time.Second))
	e, _ := s.Get("n1")
	if e.Logical != "ward-3" {
		t.Fatalf("logical lost: %q", e.Logical)
	}
	s.Update("n1", svcdesc.Location{X: 6}, "ward-4", t0.Add(2*time.Second))
	e, _ = s.Get("n1")
	if e.Logical != "ward-4" {
		t.Fatalf("logical not replaced: %q", e.Logical)
	}
}

func TestVelocityEstimation(t *testing.T) {
	s := NewService()
	s.Update("m", svcdesc.Location{X: 0, Y: 0}, "", t0)
	s.Update("m", svcdesc.Location{X: 10, Y: -5}, "", t0.Add(2*time.Second))
	e, _ := s.Get("m")
	if math.Abs(e.VX-5) > 1e-9 || math.Abs(e.VY+2.5) > 1e-9 {
		t.Fatalf("velocity = (%v, %v), want (5, -2.5)", e.VX, e.VY)
	}
}

func TestVelocityZeroDT(t *testing.T) {
	s := NewService()
	s.Update("m", svcdesc.Location{X: 0}, "", t0)
	s.Update("m", svcdesc.Location{X: 10}, "", t0.Add(time.Second)) // VX=10
	s.Update("m", svcdesc.Location{X: 20}, "", t0.Add(time.Second)) // same timestamp
	e, _ := s.Get("m")
	if e.VX != 10 {
		t.Fatalf("zero-dt update should keep previous velocity, got %v", e.VX)
	}
}

func TestPredict(t *testing.T) {
	s := NewService()
	s.Update("m", svcdesc.Location{X: 0, Y: 0}, "", t0)
	s.Update("m", svcdesc.Location{X: 10, Y: 0}, "", t0.Add(time.Second))
	pos, err := s.Predict("m", t0.Add(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pos.X-30) > 1e-9 {
		t.Fatalf("predicted X = %v, want 30", pos.X)
	}
	// Prediction at or before the last update returns the reported position.
	pos, _ = s.Predict("m", t0)
	if pos.X != 10 {
		t.Fatalf("past prediction = %v, want last position", pos.X)
	}
	if _, err := s.Predict("ghost", t0); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestWillLeave(t *testing.T) {
	s := NewService()
	// Moving away from origin at 10 m/s.
	s.Update("m", svcdesc.Location{X: 0, Y: 0}, "", t0)
	s.Update("m", svcdesc.Location{X: 10, Y: 0}, "", t0.Add(time.Second))
	ref := svcdesc.Location{X: 0, Y: 0}
	leave, err := s.WillLeave("m", ref, 25, t0.Add(3*time.Second)) // predicted X=30
	if err != nil || !leave {
		t.Fatalf("WillLeave = %v, %v; want true", leave, err)
	}
	stay, err := s.WillLeave("m", ref, 100, t0.Add(3*time.Second))
	if err != nil || stay {
		t.Fatalf("WillLeave large radius = %v, %v; want false", stay, err)
	}
	if _, err := s.WillLeave("ghost", ref, 1, t0); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestNearestK(t *testing.T) {
	s := NewService()
	s.Update("a", svcdesc.Location{X: 1, Y: 0}, "", t0)
	s.Update("b", svcdesc.Location{X: 10, Y: 0}, "", t0)
	s.Update("c", svcdesc.Location{X: 5, Y: 0}, "", t0)
	got := s.NearestK(svcdesc.Location{X: 0, Y: 0}, 2)
	if len(got) != 2 || got[0].Node != "a" || got[1].Node != "c" {
		t.Fatalf("NearestK = %+v", got)
	}
	all := s.NearestK(svcdesc.Location{}, 10)
	if len(all) != 3 {
		t.Fatalf("NearestK with k>n returned %d", len(all))
	}
}

func TestWithin(t *testing.T) {
	s := NewService()
	s.Update("a", svcdesc.Location{X: 1, Y: 0}, "", t0)
	s.Update("b", svcdesc.Location{X: 10, Y: 0}, "", t0)
	got := s.Within(svcdesc.Location{}, 5)
	if len(got) != 1 || got[0].Node != "a" {
		t.Fatalf("Within = %+v", got)
	}
}

func TestInLogicalArea(t *testing.T) {
	s := NewService()
	s.Update("bed12", svcdesc.Location{}, "hospital/ward-3/bed-12", t0)
	s.Update("bed13", svcdesc.Location{}, "hospital/ward-3/bed-13", t0)
	s.Update("lab", svcdesc.Location{}, "hospital/lab", t0)
	s.Update("ward3", svcdesc.Location{}, "hospital/ward-3", t0)

	got := s.InLogicalArea("hospital/ward-3")
	if len(got) != 3 {
		t.Fatalf("InLogicalArea = %d entries, want 3", len(got))
	}
	got = s.InLogicalArea("hospital/ward-3/")
	if len(got) != 3 {
		t.Fatalf("trailing slash handling: %d", len(got))
	}
	got = s.InLogicalArea("hospital")
	if len(got) != 4 {
		t.Fatalf("root area: %d", len(got))
	}
	// Prefix must respect path boundaries: "hospital/ward" is not an
	// ancestor of "hospital/ward-3".
	got = s.InLogicalArea("hospital/ward")
	if len(got) != 0 {
		t.Fatalf("partial segment matched: %+v", got)
	}
}

func TestStale(t *testing.T) {
	s := NewService()
	s.Update("fresh", svcdesc.Location{}, "", t0.Add(50*time.Second))
	s.Update("old", svcdesc.Location{}, "", t0)
	got := s.Stale(30*time.Second, t0.Add(60*time.Second))
	if len(got) != 1 || got[0].Node != "old" {
		t.Fatalf("Stale = %+v", got)
	}
}

func TestRemove(t *testing.T) {
	s := NewService()
	s.Update("n", svcdesc.Location{}, "", t0)
	s.Remove("n")
	if _, err := s.Get("n"); !errors.Is(err, ErrUnknownNode) {
		t.Fatal("entry survived Remove")
	}
	s.Remove("n") // idempotent
}

func TestAllSorted(t *testing.T) {
	s := NewService()
	for _, n := range []string{"c", "a", "b"} {
		s.Update(n, svcdesc.Location{}, "", t0)
	}
	all := s.All()
	if len(all) != 3 || all[0].Node != "a" || all[2].Node != "c" {
		t.Fatalf("All = %+v", all)
	}
}
