// Package obs is the middleware's shared observability layer: a
// zero-dependency metrics registry holding named counters, gauges, and
// latency histograms. Every subsystem that owns a hot path — transports,
// the netsim substrate, netmux, discovery, the recovery WAL, the endpoint
// interceptor chain — registers its instruments here, so one snapshot of
// the default registry describes the whole stack. The webbridge serves
// that snapshot as JSON on /metrics and ndsm-bench dumps it with -metrics.
//
// Instruments are cheap enough for per-message paths: counters and gauges
// are single atomics, histograms take one short mutex hold. Snapshots are
// consistent per-instrument (not cross-instrument) and support named marks
// with diffing (Mark/Since), which is how tests assert "this workload moved
// exactly these counters".
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ndsm/internal/stats"
)

// Counter is a monotonically increasing tally. The zero value is ready to
// use; instances obtained from a Registry are shared by name.
type Counter struct {
	v atomic.Int64
}

// Inc adds delta (which should be non-negative) to the counter.
func (c *Counter) Inc(delta int64) { c.v.Add(delta) }

// Add is an alias for Inc, for call-site readability with computed deltas.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current tally.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value (queue depth, energy budget).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets are the histogram's upper bounds: powers of two covering
// sub-microsecond to multi-hour observations in milliseconds (the unit all
// middleware latency histograms use). A fixed geometric grid keeps Observe
// allocation-free and snapshots deterministic.
var histBuckets = func() []float64 {
	out := make([]float64, 0, 40)
	for i := -10; i < 30; i++ {
		out = append(out, math.Pow(2, float64(i)))
	}
	return out
}()

// Histogram accumulates observations into fixed geometric buckets and
// tracks exact count/sum/min/max. Quantiles are interpolated within the
// bucket the rank falls into, which bounds their error by the bucket width.
type Histogram struct {
	mu       sync.Mutex
	counts   []int64
	overflow int64
	count    int64
	sum      float64
	sumSq    float64
	min      float64
	max      float64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	if h.counts == nil {
		h.counts = make([]int64, len(histBuckets))
	}
	idx := sort.SearchFloat64s(histBuckets, v)
	if idx >= len(histBuckets) {
		h.overflow++
	} else {
		h.counts[idx]++
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.sumSq += v * v
	h.mu.Unlock()
}

// Summary digests the histogram into the stats package's Summary shape, so
// obs histograms render through the same tables the experiment harness uses.
func (h *Histogram) Summary() stats.Summary {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.summaryLocked()
}

func (h *Histogram) summaryLocked() stats.Summary {
	s := stats.Summary{Count: int(h.count), Min: h.min, Max: h.max}
	if h.count == 0 {
		return s
	}
	s.Mean = h.sum / float64(h.count)
	variance := h.sumSq/float64(h.count) - s.Mean*s.Mean
	if variance > 0 {
		s.StdDev = math.Sqrt(variance)
	}
	s.P50 = h.quantileLocked(0.50)
	s.P95 = h.quantileLocked(0.95)
	s.P99 = h.quantileLocked(0.99)
	return s
}

// Quantile estimates the q-th quantile (q in (0, 1]) by linear
// interpolation inside the geometric bucket holding that rank, clamped to
// the observed min/max. With an empty histogram or q outside (0, 1] it
// returns 0. P50/P95/P99 in Summary (and therefore in every /metrics and
// ndsm-bench -metrics snapshot) are this estimate at the standard points.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || q <= 0 || q > 1 {
		return 0
	}
	return h.quantileLocked(q)
}

// quantileLocked estimates the q-th quantile by linear interpolation inside
// the bucket holding that rank, clamped to the observed min/max.
func (h *Histogram) quantileLocked(q float64) float64 {
	rank := q * float64(h.count)
	var seen int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if float64(seen+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = histBuckets[i-1]
			}
			hi := histBuckets[i]
			frac := (rank - float64(seen)) / float64(c)
			v := lo + (hi-lo)*frac
			return math.Max(h.min, math.Min(h.max, v))
		}
		seen += c
	}
	return h.max
}

// Registry is a named set of instruments. Instruments are created on first
// use and shared by name thereafter. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	marks    map[string]Snapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		marks:    make(map[string]Snapshot),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that all middleware components
// use unless they are given an explicit one.
func Default() *Registry { return defaultRegistry }

// Or returns r, or the default registry when r is nil — the idiom components
// use to accept an optional registry.
func Or(r *Registry) *Registry {
	if r == nil {
		return defaultRegistry
	}
	return r
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument in a registry. It
// marshals directly to the /metrics JSON document.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]float64       `json:"gauges"`
	Histograms map[string]stats.Summary `json:"histograms"`
}

// Snapshot captures all instruments.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]stats.Summary, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Summary()
	}
	return s
}

// Diff returns the change from prev to s: counters and histogram counts are
// subtracted (instruments absent from prev diff against zero), gauges keep
// their current reading (an instantaneous value has no meaningful delta).
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]stats.Summary, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		ph := prev.Histograms[name]
		h.Count -= ph.Count
		out.Histograms[name] = h
	}
	return out
}

// Rate converts the snapshot's counters — typically the deltas a Diff
// produced — into per-second rates over elapsed. This is how telemetry
// reports turn "requests since last publish" into requests/second. A
// non-positive elapsed yields an empty map: a rate over no time is
// meaningless, not infinite.
func (s Snapshot) Rate(elapsed time.Duration) map[string]float64 {
	out := make(map[string]float64, len(s.Counters))
	if elapsed <= 0 {
		return out
	}
	secs := elapsed.Seconds()
	for name, v := range s.Counters {
		out[name] = float64(v) / secs
	}
	return out
}

// Names returns the sorted counter names in the snapshot (rendering helper).
func (s Snapshot) Names() []string {
	out := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Mark stores a named snapshot of the registry's current state.
func (r *Registry) Mark(name string) {
	snap := r.Snapshot()
	r.mu.Lock()
	r.marks[name] = snap
	r.mu.Unlock()
}

// Since diffs the current state against the named mark. An unknown mark
// diffs against the empty snapshot (i.e. returns absolute values).
func (r *Registry) Since(name string) Snapshot {
	r.mu.RLock()
	mark := r.marks[name]
	r.mu.RUnlock()
	return r.Snapshot().Diff(mark)
}
