package obs

import (
	"math"
	"runtime/metrics"
)

// Runtime gauge names RuntimeGauges maintains.
const (
	// GaugeGoroutines is the live goroutine count.
	GaugeGoroutines = "runtime.goroutines"
	// GaugeHeapBytes is the bytes of live heap objects.
	GaugeHeapBytes = "runtime.heap_bytes"
	// GaugeGCPauseMS is the approximate cumulative GC stop-the-world pause
	// time in milliseconds (bucket-midpoint estimate over the runtime's
	// pause histogram).
	GaugeGCPauseMS = "runtime.gc_pause_total_ms"
)

// runtimeSamples are the runtime/metrics series the gauges sample.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/pauses:seconds",
}

// RuntimeGauges registers Go runtime introspection gauges — goroutine
// count, live heap bytes, cumulative GC pause — in r (nil: the default
// registry), sampled through runtime/metrics. It samples once immediately
// and returns the update function; call it before taking snapshots (the
// webbridge calls it per /metrics request) to refresh the readings.
// Sampling on demand instead of on a timer keeps idle processes free of a
// background goroutine.
func RuntimeGauges(r *Registry) func() {
	r = Or(r)
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	goroutines := r.Gauge(GaugeGoroutines)
	heapBytes := r.Gauge(GaugeHeapBytes)
	gcPause := r.Gauge(GaugeGCPauseMS)
	update := func() {
		metrics.Read(samples)
		for _, s := range samples {
			switch s.Name {
			case "/sched/goroutines:goroutines":
				if s.Value.Kind() == metrics.KindUint64 {
					goroutines.Set(float64(s.Value.Uint64()))
				}
			case "/memory/classes/heap/objects:bytes":
				if s.Value.Kind() == metrics.KindUint64 {
					heapBytes.Set(float64(s.Value.Uint64()))
				}
			case "/gc/pauses:seconds":
				if s.Value.Kind() == metrics.KindFloat64Histogram {
					gcPause.Set(histTotal(s.Value.Float64Histogram()) * 1000)
				}
			}
		}
	}
	update()
	return update
}

// histTotal approximates a runtime histogram's total observed value as
// count × bucket midpoint, clamping the open-ended boundary buckets. The
// runtime only exposes pause durations as a distribution; the midpoint sum
// bounds the error by half a bucket width per observation, plenty for a
// trend gauge.
func histTotal(h *metrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	var total float64
	for i, count := range h.Counts {
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) {
			lo = 0
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		total += float64(count) * (lo + hi) / 2
	}
	return total
}
