package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, each = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				// Shared instrument fetched by name every time: exercises the
				// registry's read path under contention too.
				r.Counter("c").Inc(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	const workers, each = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				r.Gauge("g").Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := r.Gauge("g").Value(), float64(workers*each)*0.5; got != want {
		t.Fatalf("gauge = %v, want %v", got, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, each = 8, 400
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				r.Histogram("h").Observe(float64(i + 1))
			}
		}(i)
	}
	wg.Wait()
	s := r.Histogram("h").Summary()
	if s.Count != workers*each {
		t.Fatalf("count = %d, want %d", s.Count, workers*each)
	}
	if s.Min != 1 || s.Max != workers {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Mean < 1 || s.Mean > workers {
		t.Fatalf("mean = %v out of range", s.Mean)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	s := h.Summary()
	// Bucketed quantiles are estimates; the geometric grid bounds the error
	// by one bucket width, so accept a generous band around the exact ranks.
	if s.P50 < 250 || s.P50 > 1000 {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P99 < s.P50 || s.P99 > 1000 {
		t.Fatalf("p99 = %v (p50 = %v)", s.P99, s.P50)
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc(3)
	r.Gauge("b").Set(1.25)
	r.Histogram("c").Observe(4)
	r.Histogram("c").Observe(8)

	s1, s2 := r.Snapshot(), r.Snapshot()
	j1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(s2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("snapshots differ:\n%s\n%s", j1, j2)
	}
	if s1.Counters["a"] != 3 || s1.Gauges["b"] != 1.25 || s1.Histograms["c"].Count != 2 {
		t.Fatalf("snapshot = %+v", s1)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc(10)
	r.Histogram("lat").Observe(1)
	before := r.Snapshot()

	r.Counter("x").Inc(5)
	r.Counter("fresh").Inc(2) // appears only after the first snapshot
	r.Histogram("lat").Observe(2)
	r.Histogram("lat").Observe(3)

	d := r.Snapshot().Diff(before)
	if d.Counters["x"] != 5 {
		t.Fatalf("x delta = %d", d.Counters["x"])
	}
	if d.Counters["fresh"] != 2 {
		t.Fatalf("fresh delta = %d", d.Counters["fresh"])
	}
	if d.Histograms["lat"].Count != 2 {
		t.Fatalf("lat count delta = %d", d.Histograms["lat"].Count)
	}
}

func TestMarkSince(t *testing.T) {
	r := NewRegistry()
	r.Counter("n").Inc(7)
	r.Mark("warmup")
	r.Counter("n").Inc(4)
	if got := r.Since("warmup").Counters["n"]; got != 4 {
		t.Fatalf("since = %d, want 4", got)
	}
	// Unknown marks diff against zero: absolute values.
	if got := r.Since("nonexistent").Counters["n"]; got != 11 {
		t.Fatalf("since unknown mark = %d, want 11", got)
	}
}

func TestConcurrentSnapshotWhileWriting(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter(fmt.Sprintf("c%d", i%2)).Inc(1)
				r.Histogram("h").Observe(float64(j % 10))
				r.Gauge("g").Add(1)
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		snap := r.Snapshot()
		if snap.Counters["c0"] < 0 {
			t.Fatal("negative counter")
		}
		_ = r.Since("never-marked")
	}
	close(stop)
	wg.Wait()
}

func TestOrDefault(t *testing.T) {
	if Or(nil) != Default() {
		t.Fatal("Or(nil) should be the default registry")
	}
	r := NewRegistry()
	if Or(r) != r {
		t.Fatal("Or(r) should be r")
	}
}

// TestQuantileBucketInterpolation pins the bucket→quantile math exactly.
// The histogram's buckets are powers of two; observations of 3 land in the
// (2,4] bucket and observations of 12 in the (8,16] bucket, so every
// interpolated quantile is computable by hand:
//
//	rank q*count falls in a bucket (lo,hi] holding c observations after
//	`seen` earlier ones; the estimate is lo + (hi-lo)*(rank-seen)/c,
//	clamped to the observed [min, max].
func TestQuantileBucketInterpolation(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 4; i++ {
		h.Observe(3) // bucket (2,4]
	}
	for i := 0; i < 4; i++ {
		h.Observe(12) // bucket (8,16]
	}
	cases := []struct {
		q, want float64
	}{
		{0.10, 3},  // rank 0.8 → 2 + 2*(0.8/4) = 2.4, clamped up to min 3
		{0.25, 3},  // rank 2 → 2 + 2*(2/4) = 3
		{0.50, 4},  // rank 4 → 2 + 2*(4/4) = 4
		{0.75, 12}, // rank 6 → 8 + 8*(2/4) = 12
		{1.00, 12}, // rank 8 → 8 + 8*(4/4) = 16, clamped down to max 12
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Out-of-domain q and empty histograms answer 0.
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want 0", got)
	}
	if got := h.Quantile(1.5); got != 0 {
		t.Errorf("Quantile(1.5) = %v, want 0", got)
	}
	empty := &Histogram{}
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %v, want 0", got)
	}
}

// TestSnapshotJSONQuantileKeys pins the /metrics JSON contract: every
// histogram serialises with lowercase p50/p95/p99 keys.
func TestSnapshotJSONQuantileKeys(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Histograms map[string]map[string]float64 `json:"histograms"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	lat := doc.Histograms["latency"]
	if lat == nil {
		t.Fatalf("no latency histogram in snapshot: %s", data)
	}
	for _, key := range []string{"count", "mean", "min", "max", "p50", "p95", "p99", "stddev"} {
		if _, ok := lat[key]; !ok {
			t.Errorf("snapshot histogram JSON missing key %q: %s", key, data)
		}
	}
	if lat["p50"] > lat["p95"] || lat["p95"] > lat["p99"] {
		t.Errorf("quantiles not monotone: p50=%v p95=%v p99=%v", lat["p50"], lat["p95"], lat["p99"])
	}
}

func TestSnapshotRate(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Inc(100)
	r.Counter("errs").Inc(5)
	r.Gauge("depth").Set(3)
	prev := r.Snapshot()
	r.Counter("reqs").Inc(40)
	r.Counter("errs").Inc(1)
	diff := r.Snapshot().Diff(prev)

	rates := diff.Rate(2 * time.Second)
	if got := rates["reqs"]; got != 20 {
		t.Errorf("reqs rate = %v, want 20 (40 over 2s)", got)
	}
	if got := rates["errs"]; got != 0.5 {
		t.Errorf("errs rate = %v, want 0.5", got)
	}
	if _, ok := rates["depth"]; ok {
		t.Error("gauges must not appear in counter rates")
	}

	// Zero or negative elapsed means no rate claims at all, not Inf.
	if got := diff.Rate(0); len(got) != 0 {
		t.Errorf("rate over zero elapsed = %v, want empty", got)
	}
	if got := diff.Rate(-time.Second); len(got) != 0 {
		t.Errorf("rate over negative elapsed = %v, want empty", got)
	}
}

func TestRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	update := RuntimeGauges(r)

	check := func() map[string]float64 {
		t.Helper()
		g := r.Snapshot().Gauges
		if g[GaugeGoroutines] < 1 {
			t.Errorf("%s = %v, want >= 1", GaugeGoroutines, g[GaugeGoroutines])
		}
		if g[GaugeHeapBytes] <= 0 {
			t.Errorf("%s = %v, want > 0", GaugeHeapBytes, g[GaugeHeapBytes])
		}
		if g[GaugeGCPauseMS] < 0 {
			t.Errorf("%s = %v, want >= 0", GaugeGCPauseMS, g[GaugeGCPauseMS])
		}
		return g
	}
	check() // RuntimeGauges samples once at registration

	// Spin up goroutines and resample: the gauge must move with the runtime.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); <-stop }()
	}
	update()
	after := check()
	close(stop)
	wg.Wait()
	if after[GaugeGoroutines] < 11 {
		t.Errorf("goroutine gauge = %v after spawning 10, want >= 11", after[GaugeGoroutines])
	}
}
