package simtime

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)

func TestRealNow(t *testing.T) {
	c := Real{}
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v, want between %v and %v", got, before, after)
	}
}

func TestRealAfter(t *testing.T) {
	c := Real{}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("Real.After never fired")
	}
}

func TestVirtualNow(t *testing.T) {
	v := NewVirtual(epoch)
	if got := v.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
	v.Advance(3 * time.Second)
	if got := v.Now(); !got.Equal(epoch.Add(3 * time.Second)) {
		t.Fatalf("Now() after advance = %v, want %v", got, epoch.Add(3*time.Second))
	}
}

func TestVirtualAfterFiresAtDeadline(t *testing.T) {
	v := NewVirtual(epoch)
	ch := v.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before advance")
	default:
	}

	v.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired 1s early")
	default:
	}

	v.Advance(time.Second)
	select {
	case at := <-ch:
		if want := epoch.Add(10 * time.Second); !at.Equal(want) {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire at deadline")
	}
}

func TestVirtualAfterNonPositive(t *testing.T) {
	v := NewVirtual(epoch)
	select {
	case <-v.After(0):
	default:
		t.Fatal("After(0) should fire immediately")
	}
	select {
	case <-v.After(-time.Second):
	default:
		t.Fatal("After(<0) should fire immediately")
	}
}

func TestVirtualFiringOrder(t *testing.T) {
	v := NewVirtual(epoch)
	var mu sync.Mutex
	var order []int

	var wg sync.WaitGroup
	waitFor := func(id int, d time.Duration) {
		ch := v.After(d)
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-ch
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		}()
	}
	// Register out of order; they must still complete by deadline order once
	// the clock jumps past all of them. Because each goroutine just appends,
	// we check set membership via sorted deadlines firing: the channel sends
	// happen in deadline order inside Advance, but goroutine scheduling can
	// reorder the appends, so we only verify all fired.
	waitFor(3, 30*time.Millisecond)
	waitFor(1, 10*time.Millisecond)
	waitFor(2, 20*time.Millisecond)

	v.Advance(time.Second)
	wg.Wait()
	if len(order) != 3 {
		t.Fatalf("fired %d timers, want 3", len(order))
	}
}

func TestVirtualSleepUnblocksOnAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	done := make(chan struct{})
	go func() {
		v.Sleep(time.Minute)
		close(done)
	}()
	// Wait for the sleeper to register.
	for v.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}

func TestVirtualAdvanceToNext(t *testing.T) {
	v := NewVirtual(epoch)
	ch1 := v.After(5 * time.Second)
	ch2 := v.After(7 * time.Second)

	if !v.AdvanceToNext() {
		t.Fatal("AdvanceToNext() = false with pending timer")
	}
	if got := v.Now(); !got.Equal(epoch.Add(5 * time.Second)) {
		t.Fatalf("Now() = %v, want +5s", got)
	}
	select {
	case <-ch1:
	default:
		t.Fatal("first timer did not fire")
	}
	select {
	case <-ch2:
		t.Fatal("second timer fired early")
	default:
	}

	if !v.AdvanceToNext() {
		t.Fatal("AdvanceToNext() = false with one timer left")
	}
	select {
	case <-ch2:
	default:
		t.Fatal("second timer did not fire")
	}
	if v.AdvanceToNext() {
		t.Fatal("AdvanceToNext() = true with no timers")
	}
}

func TestVirtualPending(t *testing.T) {
	v := NewVirtual(epoch)
	if got := v.Pending(); got != 0 {
		t.Fatalf("Pending() = %d, want 0", got)
	}
	v.After(time.Second)
	v.After(2 * time.Second)
	if got := v.Pending(); got != 2 {
		t.Fatalf("Pending() = %d, want 2", got)
	}
	v.Advance(3 * time.Second)
	if got := v.Pending(); got != 0 {
		t.Fatalf("Pending() after advance = %d, want 0", got)
	}
}

func TestVirtualTiesFireInRegistrationOrder(t *testing.T) {
	v := NewVirtual(epoch)
	ch1 := v.After(time.Second)
	ch2 := v.After(time.Second)
	v.Advance(time.Second)
	// Both fired; deterministic pop order is 1 then 2. We can only observe
	// both are ready since sends buffered; check both.
	select {
	case <-ch1:
	default:
		t.Fatal("ch1 not fired")
	}
	select {
	case <-ch2:
	default:
		t.Fatal("ch2 not fired")
	}
}
