// Package simtime provides a clock abstraction so that the middleware and the
// network simulator can run either against the wall clock or against a
// deterministic virtual clock driven by tests and benchmarks.
//
// Using a virtual clock keeps simulation experiments reproducible and lets
// the test suite exercise long simulated horizons (hours of network lifetime)
// in microseconds of real time.
package simtime

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the time source used throughout the middleware. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After returns a channel that receives the then-current time once d has
	// elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the wall clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// waiter is a pending timer on a virtual clock.
type waiter struct {
	at time.Time
	ch chan time.Time
	// seq breaks ties so the heap pops waiters in registration order.
	seq uint64
}

// waiterHeap orders waiters by deadline, then registration order.
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// Virtual is a deterministic Clock that only moves when Advance is called.
// The zero value is not usable; construct with NewVirtual.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     uint64
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a virtual clock positioned at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After implements Clock. The returned channel has capacity one so firing
// never blocks Advance.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.seq++
	heap.Push(&v.waiters, &waiter{at: v.now.Add(d), ch: ch, seq: v.seq})
	return ch
}

// Sleep implements Clock. It blocks until another goroutine advances the
// clock past the deadline.
func (v *Virtual) Sleep(d time.Duration) {
	<-v.After(d)
}

// Advance moves the clock forward by d, firing every timer whose deadline is
// reached, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	for len(v.waiters) > 0 && !v.waiters[0].at.After(target) {
		w := heap.Pop(&v.waiters).(*waiter)
		v.now = w.at
		w.ch <- w.at
	}
	v.now = target
	v.mu.Unlock()
}

// AdvanceToNext advances the clock to the next pending timer, if any, and
// reports whether a timer fired.
func (v *Virtual) AdvanceToNext() bool {
	v.mu.Lock()
	if len(v.waiters) == 0 {
		v.mu.Unlock()
		return false
	}
	w := heap.Pop(&v.waiters).(*waiter)
	v.now = w.at
	w.ch <- w.at
	v.mu.Unlock()
	return true
}

// Pending reports the number of outstanding timers.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}
