// Package recovery implements the paper's recovery-system feature (§3.8):
// "if middleware works with critical transactions, it must include a
// recovery system to deal with failures. Sometimes a simple log-based scheme
// can be used" — this is that log-based scheme, grown the rest of the way:
//
//   - WAL: an append-only, CRC-framed write-ahead log that survives torn
//     tails (a crash mid-append loses at most the unfinished record),
//   - Manager: checkpointing + replay that restores any StateMachine to its
//     pre-crash state, with operation-key de-duplication so retried client
//     operations apply at most once.
package recovery

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"ndsm/internal/obs"
)

// RecordType classifies WAL records.
type RecordType uint8

// Record types.
const (
	// RecordOp is an application operation to re-apply on replay.
	RecordOp RecordType = iota + 1
	// RecordCommit and RecordAbort bracket multi-op transactions.
	RecordCommit
	RecordAbort
)

// Record is one WAL entry.
type Record struct {
	// LSN is the log sequence number, assigned by Append.
	LSN uint64
	// Type classifies the record.
	Type RecordType
	// TxnID groups records of one transaction (0 for standalone ops).
	TxnID uint64
	// OpKey, when non-empty, identifies the operation for exactly-once
	// application across client retries.
	OpKey string
	// Data is the opaque operation body.
	Data []byte
}

// WAL errors.
var (
	ErrWALClosed = errors.New("recovery: wal closed")
	ErrCorrupt   = errors.New("recovery: corrupt record")
)

// WALOptions tunes durability vs throughput.
type WALOptions struct {
	// SyncEveryAppend fsyncs after each record — maximum durability, the
	// slow path of the E9 ablation. When false, callers decide when to call
	// Sync (group commit).
	SyncEveryAppend bool
}

// WAL is an append-only record log. Safe for concurrent use.
type WAL struct {
	opts WALOptions

	mu      sync.Mutex
	f       *os.File
	path    string
	nextLSN uint64
	closed  bool
}

// OpenWAL opens (creating if missing) the log at path and positions the next
// LSN after the last valid record. A torn final record is truncated away.
func OpenWAL(path string, opts WALOptions) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("recovery: open wal: %w", err)
	}
	w := &WAL{opts: opts, f: f, path: path, nextLSN: 1}
	validEnd, lastLSN, err := w.scan()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := f.Truncate(validEnd); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("recovery: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("recovery: seek: %w", err)
	}
	w.nextLSN = lastLSN + 1
	return w, nil
}

// scan walks the log, returning the offset after the last valid record and
// that record's LSN.
func (w *WAL) scan() (int64, uint64, error) {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("recovery: seek: %w", err)
	}
	var offset int64
	var lastLSN uint64
	for {
		rec, n, err := readRecord(w.f)
		if err != nil {
			// Any error here is a torn or corrupt tail: keep what was valid.
			return offset, lastLSN, nil
		}
		offset += int64(n)
		lastLSN = rec.LSN
	}
}

// Append writes a record, assigns its LSN, and returns it.
func (w *WAL) Append(rec Record) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrWALClosed
	}
	rec.LSN = w.nextLSN
	body := encodeBody(rec)
	frame := make([]byte, 8, 8+len(body))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	frame = append(frame, body...)
	if _, err := w.f.Write(frame); err != nil {
		return 0, fmt.Errorf("recovery: append: %w", err)
	}
	obs.Default().Counter("wal.appends").Inc(1)
	obs.Default().Counter("wal.append_bytes").Inc(int64(len(frame)))
	if w.opts.SyncEveryAppend {
		if err := w.f.Sync(); err != nil {
			return 0, fmt.Errorf("recovery: sync: %w", err)
		}
		obs.Default().Counter("wal.syncs").Inc(1)
	}
	w.nextLSN++
	return rec.LSN, nil
}

// Sync flushes buffered appends to stable storage (group commit).
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	obs.Default().Counter("wal.syncs").Inc(1)
	return nil
}

// Replay calls fn for every valid record in LSN order. It stops silently at
// a torn tail, and with fn's error if fn fails.
func (w *WAL) Replay(fn func(Record) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	obs.Default().Counter("wal.replays").Inc(1)
	pos, err := w.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return fmt.Errorf("recovery: seek: %w", err)
	}
	defer w.f.Seek(pos, io.SeekStart) //nolint:errcheck // restore append position
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("recovery: seek: %w", err)
	}
	for {
		rec, _, err := readRecord(w.f)
		if err != nil {
			return nil // torn/ended
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Reset truncates the log to empty (after a successful checkpoint).
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("recovery: reset: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("recovery: seek: %w", err)
	}
	return w.f.Sync()
}

// NextLSN returns the LSN the next append will receive.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Size returns the current log size in bytes.
func (w *WAL) Size() (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrWALClosed
	}
	st, err := w.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("recovery: stat: %w", err)
	}
	return st.Size(), nil
}

// Close syncs and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.f.Sync(); err != nil {
		_ = w.f.Close()
		return fmt.Errorf("recovery: close sync: %w", err)
	}
	return w.f.Close()
}

func encodeBody(rec Record) []byte {
	body := binary.AppendUvarint(nil, rec.LSN)
	body = append(body, byte(rec.Type))
	body = binary.AppendUvarint(body, rec.TxnID)
	body = binary.AppendUvarint(body, uint64(len(rec.OpKey)))
	body = append(body, rec.OpKey...)
	body = append(body, rec.Data...)
	return body
}

// readRecord reads one frame. n is the total bytes consumed.
func readRecord(r io.Reader) (Record, int, error) {
	header := make([]byte, 8)
	if _, err := io.ReadFull(r, header); err != nil {
		return Record{}, 0, err
	}
	length := binary.BigEndian.Uint32(header[:4])
	if length > 64<<20 {
		return Record{}, 0, ErrCorrupt
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return Record{}, 0, err
	}
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(header[4:8]) {
		return Record{}, 0, ErrCorrupt
	}
	rec, err := decodeBody(body)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, 8 + int(length), nil
}

func decodeBody(body []byte) (Record, error) {
	var rec Record
	lsn, n := binary.Uvarint(body)
	if n <= 0 {
		return rec, ErrCorrupt
	}
	body = body[n:]
	if len(body) < 1 {
		return rec, ErrCorrupt
	}
	rec.LSN = lsn
	rec.Type = RecordType(body[0])
	body = body[1:]
	txn, n := binary.Uvarint(body)
	if n <= 0 {
		return rec, ErrCorrupt
	}
	body = body[n:]
	rec.TxnID = txn
	keyLen, n := binary.Uvarint(body)
	if n <= 0 || keyLen > uint64(len(body)-n) {
		return rec, ErrCorrupt
	}
	body = body[n:]
	rec.OpKey = string(body[:keyLen])
	body = body[keyLen:]
	if len(body) > 0 {
		rec.Data = append([]byte(nil), body...)
	}
	return rec, nil
}

// walPath and checkpointPath name the files inside a recovery directory.
func walPath(dir string) string        { return filepath.Join(dir, "wal.log") }
func checkpointPath(dir string) string { return filepath.Join(dir, "checkpoint") }
