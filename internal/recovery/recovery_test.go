package recovery

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

// kvState is a simple recoverable state machine: "set k v" operations.
type kvState struct {
	m map[string]string
}

func newKV() *kvState { return &kvState{m: make(map[string]string)} }

func (s *kvState) Apply(data []byte) error {
	var op [2]string
	if err := json.Unmarshal(data, &op); err != nil {
		return err
	}
	s.m[op[0]] = op[1]
	return nil
}

func (s *kvState) Snapshot() ([]byte, error) { return json.Marshal(s.m) }

func (s *kvState) Restore(snap []byte) error {
	s.m = make(map[string]string)
	return json.Unmarshal(snap, &s.m)
}

func setOp(k, v string) []byte {
	data, err := json.Marshal([2]string{k, v})
	if err != nil {
		panic(err)
	}
	return data
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(walPath(dir), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 1; i <= 3; i++ {
		lsn, err := w.Append(Record{Type: RecordOp, TxnID: uint64(i), OpKey: fmt.Sprintf("op%d", i), Data: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	var got []Record
	if err := w.Replay(func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].LSN != 1 || got[2].OpKey != "op3" || got[1].Data[0] != 2 {
		t.Fatalf("replay = %+v", got)
	}
}

func TestWALPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(walPath(dir), WALOptions{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(Record{Type: RecordOp, Data: []byte("persist")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(walPath(dir), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.NextLSN() != 2 {
		t.Fatalf("NextLSN = %d, want 2", w2.NextLSN())
	}
	count := 0
	_ = w2.Replay(func(r Record) error {
		count++
		if string(r.Data) != "persist" {
			t.Fatalf("data = %q", r.Data)
		}
		return nil
	})
	if count != 1 {
		t.Fatalf("replayed %d", count)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(walPath(dir), WALOptions{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append(Record{Type: RecordOp, Data: []byte("full-record")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: chop bytes off the tail.
	raw, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath(dir), raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(walPath(dir), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	count := 0
	_ = w2.Replay(func(Record) error { count++; return nil })
	if count != 2 {
		t.Fatalf("survived records = %d, want 2", count)
	}
	if w2.NextLSN() != 3 {
		t.Fatalf("NextLSN = %d, want 3", w2.NextLSN())
	}
	// New appends after the torn tail work.
	if _, err := w2.Append(Record{Type: RecordOp, Data: []byte("after-crash")}); err != nil {
		t.Fatal(err)
	}
	count = 0
	_ = w2.Replay(func(Record) error { count++; return nil })
	if count != 3 {
		t.Fatalf("after append: %d", count)
	}
}

func TestWALCorruptMiddleStopsReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(walPath(dir), WALOptions{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append(Record{Type: RecordOp, Data: []byte("record-data")}); err != nil {
			t.Fatal(err)
		}
	}
	_ = w.Close()
	raw, _ := os.ReadFile(walPath(dir))
	raw[12] ^= 0xFF // corrupt first record's body
	if err := os.WriteFile(walPath(dir), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(walPath(dir), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	count := 0
	_ = w2.Replay(func(Record) error { count++; return nil })
	if count != 0 {
		t.Fatalf("replayed %d records from corrupt log", count)
	}
}

func TestWALReset(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(walPath(dir), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	_, _ = w.Append(Record{Type: RecordOp})
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	size, err := w.Size()
	if err != nil || size != 0 {
		t.Fatalf("size = %d, %v", size, err)
	}
	count := 0
	_ = w.Replay(func(Record) error { count++; return nil })
	if count != 0 {
		t.Fatal("records survived reset")
	}
}

func TestWALClosed(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(walPath(dir), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = w.Close()
	_ = w.Close() // idempotent
	if _, err := w.Append(Record{Type: RecordOp}); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("err = %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("err = %v", err)
	}
	if err := w.Replay(func(Record) error { return nil }); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestWALReplayCallbackError(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(walPath(dir), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	_, _ = w.Append(Record{Type: RecordOp})
	wantErr := errors.New("callback failed")
	if err := w.Replay(func(Record) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
}

func TestManagerLogAndRecover(t *testing.T) {
	dir := t.TempDir()
	sm := newKV()
	m, err := NewManager(dir, sm, WALOptions{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := m.Log("op1", setOp("color", "red")); err != nil || !ok {
		t.Fatalf("log: %v %v", ok, err)
	}
	if ok, err := m.Log("op2", setOp("size", "xl")); err != nil || !ok {
		t.Fatalf("log: %v %v", ok, err)
	}
	if sm.m["color"] != "red" {
		t.Fatal("apply didn't run")
	}
	_ = m.Close()

	// Crash: fresh state machine, fresh manager, same directory.
	sm2 := newKV()
	m2, err := NewManager(dir, sm2, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	applied, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
	if sm2.m["color"] != "red" || sm2.m["size"] != "xl" {
		t.Fatalf("state = %v", sm2.m)
	}
}

func TestManagerOpKeyDedup(t *testing.T) {
	dir := t.TempDir()
	sm := newKV()
	m, err := NewManager(dir, sm, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if ok, _ := m.Log("retry-1", setOp("k", "v1")); !ok {
		t.Fatal("first apply rejected")
	}
	if ok, _ := m.Log("retry-1", setOp("k", "v2")); ok {
		t.Fatal("duplicate op applied")
	}
	if sm.m["k"] != "v1" {
		t.Fatalf("k = %q", sm.m["k"])
	}
	// Empty keys never dedup.
	if ok, _ := m.Log("", setOp("a", "1")); !ok {
		t.Fatal("empty-key op rejected")
	}
	if ok, _ := m.Log("", setOp("a", "2")); !ok {
		t.Fatal("second empty-key op rejected")
	}
}

func TestManagerCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	sm := newKV()
	m, err := NewManager(dir, sm, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = m.Log("1", setOp("a", "1"))
	_, _ = m.Log("2", setOp("b", "2"))
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	size, _ := m.WAL().Size()
	if size != 0 {
		t.Fatalf("wal size after checkpoint = %d", size)
	}
	_, _ = m.Log("3", setOp("c", "3"))
	_ = m.Close()

	sm2 := newKV()
	m2, err := NewManager(dir, sm2, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	applied, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 { // only the post-checkpoint op replays
		t.Fatalf("applied = %d, want 1", applied)
	}
	if sm2.m["a"] != "1" || sm2.m["b"] != "2" || sm2.m["c"] != "3" {
		t.Fatalf("state = %v", sm2.m)
	}
}

func TestManagerRecoverDedupsAcrossReplay(t *testing.T) {
	dir := t.TempDir()
	sm := newKV()
	m, err := NewManager(dir, sm, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Force two records with the same OpKey into the log (as a retried
	// client would after a crash between append and ack).
	_, _ = m.WAL().Append(Record{Type: RecordOp, OpKey: "dup", Data: setOp("k", "first")})
	_, _ = m.WAL().Append(Record{Type: RecordOp, OpKey: "dup", Data: setOp("k", "second")})
	applied, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Fatalf("applied = %d, want 1", applied)
	}
	if sm.m["k"] != "first" {
		t.Fatalf("k = %q, want first application to win", sm.m["k"])
	}
	_ = m.Close()
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	sm := newKV()
	m, err := NewManager(dir, sm, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = m.Log("1", setOp("a", "1"))
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_ = m.Close()
	raw, _ := os.ReadFile(checkpointPath(dir))
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(checkpointPath(dir), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	sm2 := newKV()
	m2, err := NewManager(dir, sm2, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if _, err := m2.Recover(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestRecoverWithoutAnyState(t *testing.T) {
	dir := t.TempDir()
	sm := newKV()
	m, err := NewManager(dir, sm, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	applied, err := m.Recover()
	if err != nil || applied != 0 {
		t.Fatalf("recover empty = %d, %v", applied, err)
	}
}

// Property: for any random op sequence with random crash-truncation of the
// log tail, recovery reproduces exactly the prefix of operations whose
// records survived intact.
func TestCrashRecoveryPrefixProperty(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	f := func() bool {
		dir, err := os.MkdirTemp("", "walprop")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)

		sm := newKV()
		m, err := NewManager(dir, sm, WALOptions{SyncEveryAppend: true})
		if err != nil {
			return false
		}
		nOps := 1 + r.Intn(10)
		for i := 0; i < nOps; i++ {
			if _, err := m.Log(fmt.Sprintf("op%d", i), setOp(fmt.Sprintf("k%d", i%3), fmt.Sprintf("v%d", i))); err != nil {
				return false
			}
		}
		_ = m.Close()

		// Crash: truncate the log at a random byte offset.
		path := filepath.Join(dir, "wal.log")
		raw, err := os.ReadFile(path)
		if err != nil {
			return false
		}
		cut := r.Intn(len(raw) + 1)
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			return false
		}

		// Recover and independently replay the surviving prefix.
		sm2 := newKV()
		m2, err := NewManager(dir, sm2, WALOptions{})
		if err != nil {
			return false
		}
		defer m2.Close()
		if _, err := m2.Recover(); err != nil {
			return false
		}
		expected := newKV()
		_ = m2.WAL().Replay(func(rec Record) error {
			return expected.Apply(rec.Data)
		})
		return reflect.DeepEqual(sm2.m, expected.m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// applyFailState fails Apply on demand, to exercise error propagation.
type applyFailState struct {
	kvState
	failApply bool
}

func (s *applyFailState) Apply(data []byte) error {
	if s.failApply {
		return errors.New("apply rejected")
	}
	return s.kvState.Apply(data)
}

func TestManagerLogApplyError(t *testing.T) {
	dir := t.TempDir()
	sm := &applyFailState{kvState: *newKV(), failApply: true}
	m, err := NewManager(dir, sm, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Log("op1", setOp("k", "v")); err == nil {
		t.Fatal("apply error swallowed")
	}
}

func TestManagerRecoverApplyError(t *testing.T) {
	dir := t.TempDir()
	good := newKV()
	m, err := NewManager(dir, good, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Log("op1", setOp("k", "v")); err != nil {
		t.Fatal(err)
	}
	_ = m.Close()

	bad := &applyFailState{failApply: true}
	m2, err := NewManager(dir, bad, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if _, err := m2.Recover(); err == nil {
		t.Fatal("replay apply error swallowed")
	}
}

func TestOpenWALOnDirectoryFails(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenWAL(dir, WALOptions{}); err == nil {
		t.Fatal("opening a directory as WAL succeeded")
	}
}

func TestNewManagerBadDir(t *testing.T) {
	// A file where the directory should be.
	dir := t.TempDir()
	path := dir + "/occupied"
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewManager(path, newKV(), WALOptions{}); err == nil {
		t.Fatal("manager created under a file path")
	}
}

func TestCheckpointShortFile(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, newKV(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := os.WriteFile(checkpointPath(dir), []byte("xy"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Recover(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckpointLengthMismatch(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, newKV(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = m.Log("1", setOp("a", "1"))
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_ = m.Close()
	raw, _ := os.ReadFile(checkpointPath(dir))
	if err := os.WriteFile(checkpointPath(dir), append(raw, 'x'), 0o644); err != nil {
		t.Fatal(err)
	}
	m2, err := NewManager(dir, newKV(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if _, err := m2.Recover(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
}

func TestWALSizeAndNextLSN(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(walPath(dir), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.NextLSN() != 1 {
		t.Fatalf("fresh NextLSN = %d", w.NextLSN())
	}
	size0, err := w.Size()
	if err != nil || size0 != 0 {
		t.Fatalf("fresh size = %d, %v", size0, err)
	}
	_, _ = w.Append(Record{Type: RecordOp, Data: []byte("x")})
	size1, _ := w.Size()
	if size1 <= size0 {
		t.Fatal("size did not grow")
	}
	if _, err := w.Size(); err != nil {
		t.Fatal(err)
	}
}

func TestManagerSyncPassthrough(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, newKV(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
}
