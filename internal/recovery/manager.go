package recovery

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// StateMachine is the recoverable application state: the middleware replays
// logged operations into it after a crash.
type StateMachine interface {
	// Apply executes one logged operation.
	Apply(data []byte) error
	// Snapshot serializes the full state for a checkpoint.
	Snapshot() ([]byte, error)
	// Restore replaces the state from a checkpoint snapshot.
	Restore(snapshot []byte) error
}

// Manager combines a WAL and checkpoints to make a StateMachine durable.
//
// Protocol: Log each operation before applying it; call Checkpoint
// periodically to bound replay time; after a crash, construct a new Manager
// over the same directory and call Recover.
type Manager struct {
	dir string
	sm  StateMachine
	wal *WAL

	mu   sync.Mutex
	seen map[string]bool // OpKeys already applied (exactly-once)
}

// NewManager opens (or creates) the recovery state in dir.
func NewManager(dir string, sm StateMachine, opts WALOptions) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recovery: mkdir: %w", err)
	}
	wal, err := OpenWAL(walPath(dir), opts)
	if err != nil {
		return nil, err
	}
	return &Manager{dir: dir, sm: sm, wal: wal, seen: make(map[string]bool)}, nil
}

// Close releases the WAL.
func (m *Manager) Close() error { return m.wal.Close() }

// WAL exposes the underlying log (for size/metrics).
func (m *Manager) WAL() *WAL { return m.wal }

// Log durably records an operation and applies it. opKey de-duplicates
// client retries: an operation whose key was already applied is skipped
// (and reports applied=false).
func (m *Manager) Log(opKey string, data []byte) (applied bool, err error) {
	m.mu.Lock()
	if opKey != "" && m.seen[opKey] {
		m.mu.Unlock()
		return false, nil
	}
	m.mu.Unlock()

	if _, err := m.wal.Append(Record{Type: RecordOp, OpKey: opKey, Data: data}); err != nil {
		return false, err
	}
	if err := m.sm.Apply(data); err != nil {
		return false, fmt.Errorf("recovery: apply: %w", err)
	}
	if opKey != "" {
		m.mu.Lock()
		m.seen[opKey] = true
		m.mu.Unlock()
	}
	return true, nil
}

// Sync flushes the WAL (group commit).
func (m *Manager) Sync() error { return m.wal.Sync() }

// Recover restores the state machine: checkpoint first, then WAL replay.
// It returns how many operations were re-applied.
func (m *Manager) Recover() (int, error) {
	if snap, ok, err := loadCheckpoint(checkpointPath(m.dir)); err != nil {
		return 0, err
	} else if ok {
		if err := m.sm.Restore(snap); err != nil {
			return 0, fmt.Errorf("recovery: restore checkpoint: %w", err)
		}
	}
	applied := 0
	m.mu.Lock()
	m.seen = make(map[string]bool)
	m.mu.Unlock()
	err := m.wal.Replay(func(rec Record) error {
		if rec.Type != RecordOp {
			return nil
		}
		m.mu.Lock()
		if rec.OpKey != "" {
			if m.seen[rec.OpKey] {
				m.mu.Unlock()
				return nil
			}
			m.seen[rec.OpKey] = true
		}
		m.mu.Unlock()
		if err := m.sm.Apply(rec.Data); err != nil {
			return fmt.Errorf("recovery: replay apply: %w", err)
		}
		applied++
		return nil
	})
	return applied, err
}

// Checkpoint snapshots the state machine, persists it atomically, and
// truncates the WAL. After a checkpoint, recovery starts from the snapshot.
func (m *Manager) Checkpoint() error {
	snap, err := m.sm.Snapshot()
	if err != nil {
		return fmt.Errorf("recovery: snapshot: %w", err)
	}
	if err := saveCheckpoint(checkpointPath(m.dir), snap); err != nil {
		return err
	}
	return m.wal.Reset()
}

// Checkpoint file format: [4B body length][4B CRC][body].

func saveCheckpoint(path string, snap []byte) error {
	tmp := path + ".tmp"
	frame := make([]byte, 8, 8+len(snap))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(snap)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(snap))
	frame = append(frame, snap...)
	if err := os.WriteFile(tmp, frame, 0o644); err != nil {
		return fmt.Errorf("recovery: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("recovery: install checkpoint: %w", err)
	}
	return nil
}

func loadCheckpoint(path string) ([]byte, bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("recovery: read checkpoint: %w", err)
	}
	if len(data) < 8 {
		return nil, false, fmt.Errorf("%w: checkpoint too short", ErrCorrupt)
	}
	length := binary.BigEndian.Uint32(data[:4])
	if uint64(length) != uint64(len(data)-8) {
		return nil, false, fmt.Errorf("%w: checkpoint length mismatch", ErrCorrupt)
	}
	body := data[8:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(data[4:8]) {
		return nil, false, fmt.Errorf("%w: checkpoint CRC", ErrCorrupt)
	}
	return body, true, nil
}
