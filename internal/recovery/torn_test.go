package recovery

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildWAL writes n records with varied payload sizes and returns the raw
// file bytes plus the byte offset at which each frame ends.
func buildWAL(t *testing.T, n int) ([]byte, []int64) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := OpenWAL(path, WALOptions{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	var ends []int64
	for i := 0; i < n; i++ {
		payload := make([]byte, 1+(i*13)%57)
		for j := range payload {
			payload[j] = byte(i + j)
		}
		if _, err := w.Append(Record{Type: RecordOp, OpKey: fmt.Sprintf("op-%d", i), Data: payload}); err != nil {
			t.Fatal(err)
		}
		size, err := w.Size()
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, size)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != ends[n-1] {
		t.Fatalf("file is %d bytes, last frame ends at %d", len(data), ends[n-1])
	}
	return data, ends
}

// replayAll reopens the log at path and returns every replayed record.
func replayAll(t *testing.T, path string) (*WAL, []Record) {
	t.Helper()
	w, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatalf("reopen torn wal: %v", err)
	}
	var recs []Record
	if err := w.Replay(func(r Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return w, recs
}

// TestWALTornWriteEveryCutOffset is the torn-write crash property: for EVERY
// possible truncation point of the log file — a crash can tear an in-flight
// frame at any byte — reopening must (a) not error, (b) replay exactly the
// longest prefix of whole frames before the cut, with LSNs intact, and
// (c) accept new appends that continue the LSN sequence from that prefix.
func TestWALTornWriteEveryCutOffset(t *testing.T) {
	const records = 8
	data, ends := buildWAL(t, records)

	// wholeBefore(cut) = how many complete frames fit before the cut.
	wholeBefore := func(cut int64) int {
		n := 0
		for _, end := range ends {
			if end <= cut {
				n++
			}
		}
		return n
	}

	for cut := int64(len(data)); cut >= 0; cut-- {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs := replayAll(t, path)
		want := wholeBefore(cut)
		if len(recs) != want {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(recs), want)
		}
		for i, rec := range recs {
			if rec.LSN != uint64(i+1) || rec.OpKey != fmt.Sprintf("op-%d", i) {
				t.Fatalf("cut at %d: record %d = {LSN %d, key %q}", cut, i, rec.LSN, rec.OpKey)
			}
		}
		// The log must keep working after crash recovery: the next append
		// continues the LSN sequence right after the surviving prefix.
		lsn, err := w.Append(Record{Type: RecordOp, OpKey: "post-crash", Data: []byte("x")})
		if err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		if lsn != uint64(want+1) {
			t.Fatalf("cut at %d: post-crash LSN %d, want %d", cut, lsn, want+1)
		}
		_, recs2 := replayAllReusing(t, w, path)
		if len(recs2) != want+1 || recs2[len(recs2)-1].OpKey != "post-crash" {
			t.Fatalf("cut at %d: post-crash replay has %d records (last %q)",
				cut, len(recs2), recs2[len(recs2)-1].OpKey)
		}
		_ = w.Close()
	}
}

// replayAllReusing closes w and reopens the same file, replaying everything —
// a second crash-restart cycle over the same directory.
func replayAllReusing(t *testing.T, w *WAL, path string) (*WAL, []Record) {
	t.Helper()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return replayAll(t, path)
}

// TestWALBitFlipTruncatesToValidPrefix is the corruption property: flipping
// any single bit anywhere in the file must never break reopen, and the
// replayed records must be an exact prefix of the originals — a frame whose
// CRC no longer matches ends the log, it does not poison it.
func TestWALBitFlipTruncatesToValidPrefix(t *testing.T) {
	const records = 6
	data, _ := buildWAL(t, records)

	for pos := 0; pos < len(data); pos += 3 { // every 3rd byte keeps runtime low
		corrupted := append([]byte(nil), data...)
		corrupted[pos] ^= 0x40
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, corrupted, 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs := replayAll(t, path)
		if len(recs) > records {
			t.Fatalf("flip at %d: replayed %d records from a %d-record log", pos, len(recs), records)
		}
		for i, rec := range recs {
			if rec.LSN != uint64(i+1) || rec.OpKey != fmt.Sprintf("op-%d", i) {
				t.Fatalf("flip at %d: record %d = {LSN %d, key %q} is not the original prefix",
					pos, i, rec.LSN, rec.OpKey)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestManagerRecoverAfterTornTail runs the crash property through the full
// Manager path: ops are logged, the file is torn mid-frame, and recovery must
// rebuild exactly the surviving prefix into the state machine and keep
// accepting ops with correct LSNs.
func TestManagerRecoverAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	state := newKV()
	mgr, err := NewManager(dir, state, WALOptions{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := mgr.Log(fmt.Sprintf("k%d", i), setOp(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final frame: chop 3 bytes off the file.
	path := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	recovered := newKV()
	mgr2, err := NewManager(dir, recovered, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close() //nolint:errcheck
	if _, err := mgr2.Recover(); err != nil {
		t.Fatalf("recover over torn tail: %v", err)
	}
	for i := 0; i < 4; i++ {
		if got := recovered.m[fmt.Sprintf("k%d", i)]; got != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d = %q after torn-tail recovery", i, got)
		}
	}
	if _, torn := recovered.m["k4"]; torn {
		t.Fatal("torn final record resurrected by recovery")
	}
	// The manager keeps logging: the WAL's LSN sequence continues right
	// after the surviving prefix (4 records survived, so the next is 5).
	if next := mgr2.WAL().NextLSN(); next != 5 {
		t.Fatalf("post-recovery NextLSN %d, want 5", next)
	}
	if _, err := mgr2.Log("k5", setOp("k5", "v5")); err != nil {
		t.Fatal(err)
	}
	if got := recovered.m["k5"]; got != "v5" {
		t.Fatalf("k5 = %q after post-recovery log", got)
	}
}
