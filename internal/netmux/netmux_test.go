package netmux

import (
	"errors"
	"testing"
	"time"

	"ndsm/internal/netsim"
	"ndsm/internal/obs"
)

func pairNet(t *testing.T) *netsim.Network {
	t.Helper()
	net := netsim.New(netsim.Config{Range: 100, Unlimited: true})
	t.Cleanup(net.Close)
	for _, id := range []netsim.NodeID{"a", "b"} {
		if err := net.AddNode(id, netsim.Position{}); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func recvOne(t *testing.T, ch <-chan netsim.Packet) netsim.Packet {
	t.Helper()
	select {
	case pkt := <-ch:
		return pkt
	case <-time.After(5 * time.Second):
		t.Fatal("no packet")
		return netsim.Packet{}
	}
}

func TestDispatchByProtocol(t *testing.T) {
	net := pairNet(t)
	m, err := New(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	chA := m.Channel(0xAA)
	chB := m.Channel(0xBB)
	if err := net.Send("a", "b", []byte{0xAA, 1}); err != nil {
		t.Fatal(err)
	}
	if err := net.Send("a", "b", []byte{0xBB, 2}); err != nil {
		t.Fatal(err)
	}
	pa := recvOne(t, chA)
	if pa.Data[0] != 0xAA || pa.Data[1] != 1 {
		t.Fatalf("chan A got %v", pa.Data)
	}
	pb := recvOne(t, chB)
	if pb.Data[0] != 0xBB || pb.Data[1] != 2 {
		t.Fatalf("chan B got %v", pb.Data)
	}
}

func TestUnknownProtocolDropped(t *testing.T) {
	net := pairNet(t)
	m, err := New(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	if err := net.Send("a", "b", []byte{0xEE, 9}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Dropped(0xEE) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("unknown-protocol packet not counted dropped")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEmptyPacketIgnored(t *testing.T) {
	net := pairNet(t)
	m, err := New(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	if err := net.Send("a", "b", nil); err != nil {
		t.Fatal(err)
	}
	// Nothing to assert except no panic and no dispatch; give the loop a
	// moment.
	time.Sleep(5 * time.Millisecond)
}

func TestSendBroadcastHelpers(t *testing.T) {
	net := pairNet(t)
	ma, err := New(net, "a")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ma.Close)
	mb, err := New(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mb.Close)

	ch := mb.Channel(0x01)
	if err := ma.Send("b", []byte{0x01, 42}); err != nil {
		t.Fatal(err)
	}
	if pkt := recvOne(t, ch); pkt.Data[1] != 42 {
		t.Fatalf("got %v", pkt.Data)
	}
	n, err := ma.Broadcast([]byte{0x01, 43})
	if err != nil || n != 1 {
		t.Fatalf("Broadcast = %d, %v", n, err)
	}
	if pkt := recvOne(t, ch); pkt.Data[1] != 43 {
		t.Fatalf("got %v", pkt.Data)
	}
	if ma.ID() != "a" || ma.Network() != net {
		t.Fatal("accessors wrong")
	}
}

func TestMuxUnknownNode(t *testing.T) {
	net := pairNet(t)
	if _, err := New(net, "ghost"); err == nil {
		t.Fatal("mux for unknown node created")
	}
}

func TestCloseIdempotent(t *testing.T) {
	net := pairNet(t)
	m, err := New(net, "a")
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close()
}

func TestChannelOverflowCounted(t *testing.T) {
	net := pairNet(t)
	m, err := New(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	_ = m.Channel(0x07) // registered but never drained
	// Keep sending until the mux-level drop counter moves: the raw netsim
	// inbox can also overflow while the mux loop lags, so we pace sends and
	// tolerate inbox-full errors.
	deadline := time.Now().Add(10 * time.Second)
	for m.Dropped(0x07) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("overflow never counted")
		}
		for i := 0; i < channelSize; i++ {
			if err := net.Send("a", "b", []byte{0x07}); err != nil && !errors.Is(err, netsim.ErrInboxFull) {
				t.Fatal(err)
			}
		}
		time.Sleep(time.Millisecond)
	}
}

func TestChannelOverflowRegistersObs(t *testing.T) {
	net := pairNet(t)
	m, err := New(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	_ = m.Channel(0x09) // registered but never drained
	// The obs registry is process-wide, so assert on the delta.
	before := obs.Default().Counter("netmux.dropped.9").Value()
	deadline := time.Now().Add(10 * time.Second)
	for m.Dropped(0x09) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("overflow never counted")
		}
		for i := 0; i < channelSize; i++ {
			if err := net.Send("a", "b", []byte{0x09}); err != nil && !errors.Is(err, netsim.ErrInboxFull) {
				t.Fatal(err)
			}
		}
		time.Sleep(time.Millisecond)
	}
	// Let the mux drain the queued backlog so the tallies stop moving.
	for prev := int64(-1); prev != m.Dropped(0x09); {
		prev = m.Dropped(0x09)
		time.Sleep(10 * time.Millisecond)
	}
	if got := obs.Default().Counter("netmux.dropped.9").Value() - before; got != m.Dropped(0x09) {
		t.Fatalf("obs mirror = %d, mux tally = %d", got, m.Dropped(0x09))
	}
	counts := m.DroppedCounts()
	if counts[0x09] != m.Dropped(0x09) || counts[0x09] == 0 {
		t.Fatalf("DroppedCounts = %v, want [9]=%d", counts, m.Dropped(0x09))
	}
}
