// Package netmux splits a node's single netsim receive queue into
// per-protocol channels keyed by the first payload byte. Several middleware
// components run on every node at once — the routing agent, the distributed
// discovery agent — and each speaks its own datagram protocol; the mux lets
// them coexist on one radio without consuming each other's packets.
package netmux

import (
	"fmt"
	"sync"

	"ndsm/internal/netsim"
	"ndsm/internal/obs"
)

// channelSize is each protocol channel's buffer depth.
const channelSize = 256

// Mux demultiplexes one node's inbound packets by protocol byte.
type Mux struct {
	net *netsim.Network
	id  netsim.NodeID

	mu     sync.Mutex
	chans  map[byte]chan netsim.Packet
	closed bool

	stop chan struct{}
	done chan struct{}

	droppedMu sync.Mutex
	dropped   map[byte]int64
	// obsDropped mirrors per-protocol drops into the shared observability
	// registry under "netmux.dropped.<proto>", created on first drop.
	obsDropped map[byte]*obs.Counter
}

// New starts a mux for node id. The mux takes ownership of the node's
// receive queue; create it before any component that would otherwise consume
// the queue directly.
func New(net *netsim.Network, id netsim.NodeID) (*Mux, error) {
	inbox, err := net.Recv(id)
	if err != nil {
		return nil, fmt.Errorf("netmux: %w", err)
	}
	m := &Mux{
		net:     net,
		id:      id,
		chans:   make(map[byte]chan netsim.Packet),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		dropped: make(map[byte]int64),

		obsDropped: make(map[byte]*obs.Counter),
	}
	go m.loop(inbox)
	return m, nil
}

// ID returns the mux's node.
func (m *Mux) ID() netsim.NodeID { return m.id }

// Network returns the underlying substrate.
func (m *Mux) Network() *netsim.Network { return m.net }

// Channel returns (registering on first use) the receive channel for a
// protocol byte. Packets whose first byte matches proto are delivered here
// with the protocol byte preserved.
func (m *Mux) Channel(proto byte) <-chan netsim.Packet {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch, ok := m.chans[proto]
	if !ok {
		ch = make(chan netsim.Packet, channelSize)
		m.chans[proto] = ch
	}
	return ch
}

// Send transmits a datagram to a radio neighbour (single hop).
func (m *Mux) Send(to netsim.NodeID, data []byte) error {
	return m.net.Send(m.id, to, data)
}

// Broadcast transmits a datagram to all radio neighbours.
func (m *Mux) Broadcast(data []byte) (int, error) {
	return m.net.Broadcast(m.id, data)
}

// Dropped reports packets discarded for a protocol (unknown protocol bytes
// are tallied under their own byte value).
func (m *Mux) Dropped(proto byte) int64 {
	m.droppedMu.Lock()
	defer m.droppedMu.Unlock()
	return m.dropped[proto]
}

// DroppedCounts returns a copy of the full per-protocol drop tally.
func (m *Mux) DroppedCounts() map[byte]int64 {
	m.droppedMu.Lock()
	defer m.droppedMu.Unlock()
	out := make(map[byte]int64, len(m.dropped))
	for proto, n := range m.dropped {
		out[proto] = n
	}
	return out
}

// Close stops the demux loop.
func (m *Mux) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.stop)
	<-m.done
}

func (m *Mux) loop(inbox <-chan netsim.Packet) {
	defer close(m.done)
	for {
		select {
		case <-m.stop:
			return
		case pkt, ok := <-inbox:
			if !ok {
				return
			}
			m.dispatch(pkt)
		}
	}
}

func (m *Mux) dispatch(pkt netsim.Packet) {
	if len(pkt.Data) == 0 {
		return
	}
	proto := pkt.Data[0]
	m.mu.Lock()
	ch := m.chans[proto]
	m.mu.Unlock()
	if ch == nil {
		m.drop(proto)
		return
	}
	select {
	case ch <- pkt:
	default:
		m.drop(proto)
	}
}

func (m *Mux) drop(proto byte) {
	m.droppedMu.Lock()
	m.dropped[proto]++
	c := m.obsDropped[proto]
	if c == nil {
		c = obs.Default().Counter(fmt.Sprintf("netmux.dropped.%d", proto))
		m.obsDropped[proto] = c
	}
	m.droppedMu.Unlock()
	c.Inc(1)
}
