package transaction

import (
	"sync"
	"time"

	"ndsm/internal/simtime"
)

// Class is the paper's transaction taxonomy (§3.6): continuous, intermittent
// with some prediction, or on-demand.
type Class int

// Transaction classes.
const (
	Continuous Class = iota + 1
	Intermittent
	OnDemand
)

var classNames = [...]string{"?", "continuous", "intermittent", "on-demand"}

// String returns the class name.
func (c Class) String() string {
	if int(c) > 0 && int(c) < len(classNames) {
		return classNames[c]
	}
	return "class(?)"
}

// Schedule decides when a transaction's next proactive transmission should
// happen.
type Schedule interface {
	// Class reports which transaction class the schedule realizes.
	Class() Class
	// Next returns the time of the next transmission after now, or false if
	// transmissions only happen on demand.
	Next(now time.Time) (time.Time, bool)
	// Observe feeds the schedule an actual event time (a demand, a sample
	// arrival) so predictive schedules can learn.
	Observe(at time.Time)
}

// Periodic is the continuous class: fire every Period.
type Periodic struct {
	Period time.Duration
}

var _ Schedule = Periodic{}

// Class implements Schedule.
func (Periodic) Class() Class { return Continuous }

// Next implements Schedule.
func (p Periodic) Next(now time.Time) (time.Time, bool) { return now.Add(p.Period), true }

// Observe implements Schedule.
func (Periodic) Observe(time.Time) {}

// Demand is the on-demand class: never proactive.
type Demand struct{}

var _ Schedule = Demand{}

// Class implements Schedule.
func (Demand) Class() Class { return OnDemand }

// Next implements Schedule.
func (Demand) Next(time.Time) (time.Time, bool) { return time.Time{}, false }

// Observe implements Schedule.
func (Demand) Observe(time.Time) {}

// Predictor is the intermittent-with-prediction class: it learns the
// inter-event interval with an exponentially weighted moving average and
// predicts the next event one smoothed interval after the last observed one.
// Until two observations arrive it falls back to Initial.
type Predictor struct {
	// Initial is the interval assumed before any history exists.
	Initial time.Duration
	// Alpha is the EWMA smoothing factor in (0,1]; higher reacts faster
	// (default 0.5 when 0).
	Alpha float64

	mu       sync.Mutex
	last     time.Time
	haveLast bool
	smoothed time.Duration
}

var _ Schedule = (*Predictor)(nil)

// Class implements Schedule.
func (*Predictor) Class() Class { return Intermittent }

// Observe implements Schedule.
func (p *Predictor) Observe(at time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.haveLast {
		interval := at.Sub(p.last)
		if interval > 0 {
			alpha := p.Alpha
			if alpha <= 0 || alpha > 1 {
				alpha = 0.5
			}
			if p.smoothed == 0 {
				p.smoothed = interval
			} else {
				p.smoothed = time.Duration(alpha*float64(interval) + (1-alpha)*float64(p.smoothed))
			}
		}
	}
	p.last = at
	p.haveLast = true
}

// Predicted returns the current interval estimate.
func (p *Predictor) Predicted() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.smoothed > 0 {
		return p.smoothed
	}
	return p.Initial
}

// Next implements Schedule: one predicted interval after the later of (last
// observation, now).
func (p *Predictor) Next(now time.Time) (time.Time, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	interval := p.smoothed
	if interval <= 0 {
		interval = p.Initial
	}
	if interval <= 0 {
		return time.Time{}, false
	}
	base := now
	if p.haveLast && p.last.After(now) {
		base = p.last
	}
	return base.Add(interval), true
}

// Pump drives a supplier's proactive transmissions: at each schedule time it
// pulls a payload from source and hands it to emit. It is the machinery
// behind continuous and intermittent transactions; on-demand transactions
// never start a pump.
type Pump struct {
	clock    simtime.Clock
	schedule Schedule
	source   func() ([]byte, bool)
	emit     func([]byte) error

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	mu   sync.Mutex
	sent int
	errs int
}

// NewPump starts pumping. source returns the next payload (false ends the
// pump); emit transmits it (errors are counted, not fatal).
func NewPump(clock simtime.Clock, schedule Schedule, source func() ([]byte, bool), emit func([]byte) error) *Pump {
	if clock == nil {
		clock = simtime.Real{}
	}
	p := &Pump{
		clock:    clock,
		schedule: schedule,
		source:   source,
		emit:     emit,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go p.run()
	return p
}

// Stop halts the pump and waits for it to exit.
func (p *Pump) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// Stats reports how many payloads were sent and how many emits failed.
func (p *Pump) Stats() (sent, errs int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent, p.errs
}

func (p *Pump) run() {
	defer close(p.done)
	for {
		next, ok := p.schedule.Next(p.clock.Now())
		if !ok {
			return // on-demand: nothing proactive to do
		}
		delay := next.Sub(p.clock.Now())
		select {
		case <-p.stop:
			return
		case <-p.clock.After(delay):
		}
		payload, more := p.source()
		if !more {
			return
		}
		p.schedule.Observe(p.clock.Now())
		err := p.emit(payload)
		p.mu.Lock()
		if err != nil {
			p.errs++
		} else {
			p.sent++
		}
		p.mu.Unlock()
	}
}
