package transaction

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ndsm/internal/qos"
	"ndsm/internal/simtime"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

var epoch = time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)

// linkPair builds two linked endpoints over the mem transport.
func linkPair(t *testing.T, cfg LinkConfig) (*Link, *Link) {
	t.Helper()
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	l, err := tr.Listen("peer")
	if err != nil {
		t.Fatal(err)
	}
	dialed, err := tr.Dial("peer")
	if err != nil {
		t.Fatal(err)
	}
	accepted, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	a := NewLink(dialed, cfg)
	b := NewLink(accepted, cfg)
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
		_ = tr.Close()
	})
	return a, b
}

// lossyConn drops the first n data sends (acks pass through).
type lossyConn struct {
	transport.Conn
	mu    sync.Mutex
	drops int
}

func (c *lossyConn) Send(m *wire.Message) error {
	if m.Kind != wire.KindAck {
		c.mu.Lock()
		if c.drops > 0 {
			c.drops--
			c.mu.Unlock()
			return nil // silently lost
		}
		c.mu.Unlock()
	}
	return c.Conn.Send(m)
}

func TestLinkBestEffortSend(t *testing.T) {
	a, b := linkPair(t, LinkConfig{})
	if err := a.Send(&wire.Message{Kind: wire.KindData, Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Payload) != "hi" {
		t.Fatalf("payload = %q", m.Payload)
	}
}

func TestLinkReliableDelivery(t *testing.T) {
	a, b := linkPair(t, LinkConfig{RetryInterval: 10 * time.Millisecond})
	done := make(chan error, 1)
	go func() {
		done <- a.SendReliable(&wire.Message{Kind: wire.KindData, Src: "a", Payload: []byte("rel")})
	}()
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Payload) != "rel" {
		t.Fatalf("payload = %q", m.Payload)
	}
	if err := <-done; err != nil {
		t.Fatalf("SendReliable: %v", err)
	}
}

func TestLinkRetransmitsThroughLoss(t *testing.T) {
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	t.Cleanup(func() { _ = tr.Close() })
	l, err := tr.Listen("peer")
	if err != nil {
		t.Fatal(err)
	}
	dialed, err := tr.Dial("peer")
	if err != nil {
		t.Fatal(err)
	}
	accepted, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	lossy := &lossyConn{Conn: dialed, drops: 2}
	a := NewLink(lossy, LinkConfig{RetryInterval: 5 * time.Millisecond, MaxRetries: 10})
	b := NewLink(accepted, LinkConfig{})
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })

	done := make(chan error, 1)
	go func() {
		done <- a.SendReliable(&wire.Message{Kind: wire.KindData, Src: "a", Payload: []byte("x")})
	}()
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if a.Retransmissions.Load() < 2 {
		t.Fatalf("retransmissions = %d, want >= 2", a.Retransmissions.Load())
	}
}

func TestLinkGivesUpAfterMaxRetries(t *testing.T) {
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	t.Cleanup(func() { _ = tr.Close() })
	l, err := tr.Listen("peer")
	if err != nil {
		t.Fatal(err)
	}
	dialed, err := tr.Dial("peer")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Accept(); err != nil {
		t.Fatal(err)
	}
	// Drop everything: the peer never sees the message, never acks.
	lossy := &lossyConn{Conn: dialed, drops: 1 << 30}
	a := NewLink(lossy, LinkConfig{RetryInterval: time.Millisecond, MaxRetries: 3})
	t.Cleanup(func() { _ = a.Close() })
	err = a.SendReliable(&wire.Message{Kind: wire.KindData, Src: "a"})
	if !errors.Is(err, ErrDeliveryFailed) {
		t.Fatalf("err = %v, want ErrDeliveryFailed", err)
	}
}

func TestLinkDuplicateSuppression(t *testing.T) {
	// Slow the sender's ack processing by delaying our read: the sender
	// retransmits, receiver must deliver only once.
	a, b := linkPair(t, LinkConfig{RetryInterval: 5 * time.Millisecond, MaxRetries: 20})
	done := make(chan error, 1)
	go func() {
		done <- a.SendReliable(&wire.Message{Kind: wire.KindData, Src: "a", Payload: []byte("once")})
	}()
	// First delivery.
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// No duplicate delivery afterwards.
	got := make(chan *wire.Message, 1)
	go func() {
		if m, err := b.Recv(); err == nil {
			got <- m
		}
	}()
	select {
	case m := <-got:
		t.Fatalf("duplicate delivered: %+v", m)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestLinkCloseUnblocksRecv(t *testing.T) {
	a, _ := linkPair(t, LinkConfig{})
	done := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrLinkClosed) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv not unblocked")
	}
	_ = a.Close() // idempotent
}

func TestLinkSendReliableAfterClose(t *testing.T) {
	a, _ := linkPair(t, LinkConfig{})
	_ = a.Close()
	err := a.SendReliable(&wire.Message{Kind: wire.KindData})
	if err == nil {
		t.Fatal("send after close succeeded")
	}
}

func TestParseDeadlineHeader(t *testing.T) {
	if _, ok := ParseDeadlineHeader(nil); ok {
		t.Fatal("nil message had deadline")
	}
	if _, ok := ParseDeadlineHeader(&wire.Message{}); ok {
		t.Fatal("empty message had deadline")
	}
	when := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	m := &wire.Message{Headers: map[string]string{"deadline": when.Format(time.RFC3339Nano)}}
	got, ok := ParseDeadlineHeader(m)
	if !ok || !got.Equal(when) {
		t.Fatalf("got %v, %v", got, ok)
	}
	m = &wire.Message{Headers: map[string]string{"deadline": "123456789"}}
	got, ok = ParseDeadlineHeader(m)
	if !ok || got.UnixNano() != 123456789 {
		t.Fatalf("unix nanos: %v, %v", got, ok)
	}
	m = &wire.Message{Headers: map[string]string{"deadline": "not a time"}}
	if _, ok := ParseDeadlineHeader(m); ok {
		t.Fatal("garbage deadline parsed")
	}
}

// --- schedules ---

func TestClassString(t *testing.T) {
	if Continuous.String() != "continuous" || Intermittent.String() != "intermittent" ||
		OnDemand.String() != "on-demand" || Class(9).String() != "class(?)" {
		t.Fatal("class names wrong")
	}
}

func TestPeriodicSchedule(t *testing.T) {
	p := Periodic{Period: time.Second}
	if p.Class() != Continuous {
		t.Fatal("wrong class")
	}
	next, ok := p.Next(epoch)
	if !ok || !next.Equal(epoch.Add(time.Second)) {
		t.Fatalf("Next = %v, %v", next, ok)
	}
}

func TestDemandSchedule(t *testing.T) {
	d := Demand{}
	if d.Class() != OnDemand {
		t.Fatal("wrong class")
	}
	if _, ok := d.Next(epoch); ok {
		t.Fatal("on-demand schedule proposed a proactive send")
	}
}

func TestPredictorLearnsInterval(t *testing.T) {
	p := &Predictor{Initial: time.Second, Alpha: 0.5}
	if p.Class() != Intermittent {
		t.Fatal("wrong class")
	}
	if got := p.Predicted(); got != time.Second {
		t.Fatalf("initial prediction = %v", got)
	}
	// Feed regular 100ms events; prediction must converge there.
	at := epoch
	for i := 0; i < 12; i++ {
		p.Observe(at)
		at = at.Add(100 * time.Millisecond)
	}
	got := p.Predicted()
	if got < 90*time.Millisecond || got > 110*time.Millisecond {
		t.Fatalf("prediction = %v, want ≈100ms", got)
	}
	next, ok := p.Next(at)
	if !ok {
		t.Fatal("predictor refused to predict")
	}
	if next.Sub(at) != got {
		t.Fatalf("Next interval %v != predicted %v", next.Sub(at), got)
	}
}

func TestPredictorAdaptsToChange(t *testing.T) {
	p := &Predictor{Initial: time.Second, Alpha: 0.5}
	at := epoch
	for i := 0; i < 10; i++ {
		p.Observe(at)
		at = at.Add(100 * time.Millisecond)
	}
	// Rate slows 10x; EWMA must move toward 1s.
	for i := 0; i < 10; i++ {
		p.Observe(at)
		at = at.Add(time.Second)
	}
	got := p.Predicted()
	if got < 800*time.Millisecond {
		t.Fatalf("prediction = %v, want near 1s after slowdown", got)
	}
}

func TestPredictorNoInitial(t *testing.T) {
	p := &Predictor{}
	if _, ok := p.Next(epoch); ok {
		t.Fatal("predictor with no data and no initial predicted")
	}
}

func TestPumpPeriodic(t *testing.T) {
	clk := simtime.NewVirtual(epoch)
	var mu sync.Mutex
	var emitted [][]byte
	i := 0
	pump := NewPump(clk, Periodic{Period: time.Second},
		func() ([]byte, bool) {
			i++
			return []byte{byte(i)}, i <= 3
		},
		func(b []byte) error {
			mu.Lock()
			emitted = append(emitted, b)
			mu.Unlock()
			return nil
		})
	for j := 0; j < 4; j++ {
		deadline := time.Now().Add(5 * time.Second)
		for clk.Pending() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("pump never armed its timer")
			}
			time.Sleep(time.Millisecond)
		}
		clk.Advance(time.Second)
	}
	pump.Stop()
	sent, errs := pump.Stats()
	if sent != 3 || errs != 0 {
		t.Fatalf("sent=%d errs=%d, want 3/0", sent, errs)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(emitted) != 3 || emitted[0][0] != 1 || emitted[2][0] != 3 {
		t.Fatalf("emitted = %v", emitted)
	}
}

func TestPumpOnDemandExitsImmediately(t *testing.T) {
	pump := NewPump(nil, Demand{}, func() ([]byte, bool) { return nil, true }, func([]byte) error { return nil })
	done := make(chan struct{})
	go func() {
		pump.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("on-demand pump did not exit")
	}
}

func TestPumpCountsEmitErrors(t *testing.T) {
	clk := simtime.NewVirtual(epoch)
	n := 0
	pump := NewPump(clk, Periodic{Period: time.Second},
		func() ([]byte, bool) { n++; return nil, n <= 2 },
		func([]byte) error { return errors.New("boom") })
	for j := 0; j < 3; j++ {
		deadline := time.Now().Add(5 * time.Second)
		for clk.Pending() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("pump never armed")
			}
			time.Sleep(time.Millisecond)
		}
		clk.Advance(time.Second)
	}
	pump.Stop()
	sent, errs := pump.Stats()
	if sent != 0 || errs != 2 {
		t.Fatalf("sent=%d errs=%d, want 0/2", sent, errs)
	}
}

// --- table ---

func TestTableLifecycle(t *testing.T) {
	tbl := NewTable()
	txn := tbl.Open("sensors/bp", "supplier-1", Continuous, 5, qos.Benefit{}, epoch)
	if txn.ID == 0 || txn.State != StateActive {
		t.Fatalf("open: %+v", txn)
	}
	got, err := tbl.Get(txn.ID)
	if err != nil || got.Topic != "sensors/bp" || got.Peer != "supplier-1" {
		t.Fatalf("get: %+v, %v", got, err)
	}
	if err := tbl.Complete(txn.ID); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Complete(txn.ID); !errors.Is(err, ErrBadState) {
		t.Fatalf("double complete: %v", err)
	}
	if _, err := tbl.Get(999); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("unknown get: %v", err)
	}
}

func TestTableHandoff(t *testing.T) {
	tbl := NewTable()
	txn := tbl.Open("svc", "old-peer", Continuous, 0, qos.Benefit{}, epoch)
	// Record some QoS history, which must reset on rebind.
	tr, err := tbl.Tracker(txn.ID)
	if err != nil {
		t.Fatal(err)
	}
	tr.ObserveFailure()

	if err := tbl.CompleteHandoff(txn.ID, "new-peer"); !errors.Is(err, ErrBadState) {
		t.Fatalf("complete before begin: %v", err)
	}
	if err := tbl.BeginHandoff(txn.ID); err != nil {
		t.Fatal(err)
	}
	if err := tbl.BeginHandoff(txn.ID); !errors.Is(err, ErrBadState) {
		t.Fatalf("double begin: %v", err)
	}
	if err := tbl.CompleteHandoff(txn.ID, "new-peer"); err != nil {
		t.Fatal(err)
	}
	got, _ := tbl.Get(txn.ID)
	if got.Peer != "new-peer" || got.State != StateActive || got.Handoffs != 1 {
		t.Fatalf("after handoff: %+v", got)
	}
	if got.Tracker.Report().Failed != 0 {
		t.Fatal("tracker not reset on rebind")
	}
}

func TestTableAbortDuringHandoff(t *testing.T) {
	tbl := NewTable()
	txn := tbl.Open("svc", "p", OnDemand, 0, qos.Benefit{}, epoch)
	if err := tbl.BeginHandoff(txn.ID); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Abort(txn.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := tbl.Get(txn.ID)
	if got.State != StateAborted {
		t.Fatalf("state = %v", got.State)
	}
}

func TestTableByPeer(t *testing.T) {
	tbl := NewTable()
	t1 := tbl.Open("a", "p1", Continuous, 0, qos.Benefit{}, epoch)
	tbl.Open("b", "p2", Continuous, 0, qos.Benefit{}, epoch)
	t3 := tbl.Open("c", "p1", OnDemand, 0, qos.Benefit{}, epoch)
	done := tbl.Open("d", "p1", OnDemand, 0, qos.Benefit{}, epoch)
	_ = tbl.Complete(done.ID)

	got := tbl.ByPeer("p1")
	if len(got) != 2 || got[0].ID != t1.ID || got[1].ID != t3.ID {
		t.Fatalf("ByPeer = %+v", got)
	}
}

func TestTableActiveAndPurge(t *testing.T) {
	tbl := NewTable()
	t1 := tbl.Open("a", "p", Continuous, 0, qos.Benefit{}, epoch)
	t2 := tbl.Open("b", "p", Continuous, 0, qos.Benefit{}, epoch)
	_ = tbl.Complete(t2.ID)
	if act := tbl.Active(); len(act) != 1 || act[0].ID != t1.ID {
		t.Fatalf("Active = %+v", act)
	}
	if n := tbl.Purge(); n != 1 {
		t.Fatalf("Purge = %d", n)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestStateString(t *testing.T) {
	if StateActive.String() != "active" || StateHandingOff.String() != "handing-off" ||
		StateCompleted.String() != "completed" || StateAborted.String() != "aborted" ||
		State(99).String() != "state(?)" {
		t.Fatal("state names wrong")
	}
}
