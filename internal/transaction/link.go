// Package transaction implements the paper's transaction feature (§3.6):
// the managed interaction between a service supplier and a service consumer.
//
// It provides three things:
//
//   - Link: delivery guarantees over any transport connection — best-effort
//     sends, or at-least-once with acknowledgements, retransmission, and
//     receiver-side duplicate suppression (which together give the consumer
//     effectively-once delivery),
//   - Schedules: the paper's transaction classes — continuous (periodic),
//     intermittent with prediction (an EWMA next-arrival predictor), and
//     on-demand,
//   - Table: per-node transaction lifecycle bookkeeping, including the
//     hand-off state the scheduler (§3.7) drives when a supplier departs.
package transaction

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ndsm/internal/simtime"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// Link errors.
var (
	ErrDeliveryFailed = errors.New("transaction: delivery failed after retries")
	ErrLinkClosed     = errors.New("transaction: link closed")
)

// reliableHeader marks messages that demand an acknowledgement.
const reliableHeader = "tx-rel"

// dedupeWindow bounds the receiver's duplicate-suppression memory per peer.
const dedupeWindow = 4096

// LinkConfig tunes a reliable link.
type LinkConfig struct {
	// RetryInterval is the retransmission period (default 50ms).
	RetryInterval time.Duration
	// MaxRetries bounds retransmissions per message (default 5).
	MaxRetries int
	// RecvBuffer is the delivered-message queue depth (default 64).
	RecvBuffer int
	// Clock drives retransmission timers (default real).
	Clock simtime.Clock
}

func (c LinkConfig) withDefaults() LinkConfig {
	if c.RetryInterval <= 0 {
		c.RetryInterval = 50 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.RecvBuffer <= 0 {
		c.RecvBuffer = 64
	}
	if c.Clock == nil {
		c.Clock = simtime.Real{}
	}
	return c
}

// Link layers delivery guarantees over one transport connection. Both ends
// of a conversation wrap their side in a Link.
type Link struct {
	cfg  LinkConfig
	conn transport.Conn

	nextID atomic.Uint64

	mu      sync.Mutex
	waiters map[uint64]chan struct{}
	seen    map[string]map[uint64]bool
	seenOrd map[string][]uint64
	closed  bool

	recv chan *wire.Message
	stop chan struct{} // closed by Close to abort blocked deliveries
	done chan struct{} // closed when demux exits

	// Retransmissions counts retries actually sent.
	Retransmissions atomic.Int64
	// Duplicates counts received duplicates suppressed.
	Duplicates atomic.Int64
}

// NewLink wraps a connection. The link owns the connection's receive side;
// do not call conn.Recv directly afterwards.
func NewLink(conn transport.Conn, cfg LinkConfig) *Link {
	l := &Link{
		cfg:     cfg.withDefaults(),
		conn:    conn,
		waiters: make(map[uint64]chan struct{}),
		seen:    make(map[string]map[uint64]bool),
		seenOrd: make(map[string][]uint64),
		recv:    make(chan *wire.Message, cfg.withDefaults().RecvBuffer),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go l.demux()
	return l
}

// Close shuts the link and its connection down.
func (l *Link) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	err := l.conn.Close()
	<-l.done
	return err
}

// Send transmits best-effort: no ack, no retry (the transport may still be
// reliable on its own, e.g. tcp).
func (l *Link) Send(m *wire.Message) error {
	m = m.Clone()
	m.ID = l.nextID.Add(1)
	return l.conn.Send(m)
}

// SendReliable transmits at-least-once: it blocks until the peer
// acknowledges or retries are exhausted.
func (l *Link) SendReliable(m *wire.Message) error {
	m = m.Clone()
	m.ID = l.nextID.Add(1)
	if m.Headers == nil {
		m.Headers = make(map[string]string, 1)
	}
	m.Headers[reliableHeader] = "1"

	ackCh := make(chan struct{}, 1)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrLinkClosed
	}
	l.waiters[m.ID] = ackCh
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.waiters, m.ID)
		l.mu.Unlock()
	}()

	var lastErr error
	for attempt := 0; attempt <= l.cfg.MaxRetries; attempt++ {
		err := l.conn.Send(m)
		switch {
		case err == nil:
			lastErr = nil
		case errors.Is(err, transport.ErrClosed):
			// A dead connection cannot recover by retrying.
			return fmt.Errorf("%w: %v", ErrDeliveryFailed, err)
		default:
			// Transient transmission failure (e.g. a lossy radio dropped the
			// datagram): retrying is exactly the point of this method.
			lastErr = err
		}
		if attempt > 0 {
			l.Retransmissions.Add(1)
		}
		select {
		case <-ackCh:
			return nil
		case <-l.cfg.Clock.After(l.cfg.RetryInterval):
		case <-l.done:
			return ErrLinkClosed
		}
	}
	if lastErr != nil {
		return fmt.Errorf("%w: %d attempts, last error: %v", ErrDeliveryFailed, l.cfg.MaxRetries+1, lastErr)
	}
	return fmt.Errorf("%w: %d attempts", ErrDeliveryFailed, l.cfg.MaxRetries+1)
}

// Recv blocks for the next delivered message. Reliable messages are
// acknowledged and de-duplicated before delivery, so the caller sees each at
// most once.
func (l *Link) Recv() (*wire.Message, error) {
	select {
	case m := <-l.recv:
		return m, nil
	case <-l.done:
		select {
		case m := <-l.recv:
			return m, nil
		default:
			return nil, ErrLinkClosed
		}
	}
}

func (l *Link) demux() {
	defer close(l.done)
	for {
		m, err := l.conn.Recv()
		if err != nil {
			return
		}
		switch {
		case m.Kind == wire.KindAck:
			l.mu.Lock()
			ch := l.waiters[m.Corr]
			l.mu.Unlock()
			if ch != nil {
				select {
				case ch <- struct{}{}:
				default:
				}
			}
		default:
			if m.Headers[reliableHeader] == "1" {
				// Ack first so a blocked delivery queue cannot stall the
				// peer's retransmission loop forever. A transiently lost ack
				// is fine — the sender retransmits and we ack again; only a
				// closed connection ends the loop.
				ack := &wire.Message{Kind: wire.KindAck, Corr: m.ID}
				if err := l.conn.Send(ack); errors.Is(err, transport.ErrClosed) {
					return
				}
				if l.isDuplicate(m.Src, m.ID) {
					l.Duplicates.Add(1)
					continue
				}
			}
			select {
			case l.recv <- m:
			case <-l.stop:
				return
			}
		}
	}
}

// isDuplicate records and tests the (src, id) pair.
func (l *Link) isDuplicate(src string, id uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := l.seen[src]
	if m == nil {
		m = make(map[uint64]bool)
		l.seen[src] = m
	}
	if m[id] {
		return true
	}
	m[id] = true
	ord := append(l.seenOrd[src], id)
	if len(ord) > dedupeWindow {
		delete(m, ord[0])
		ord = ord[1:]
	}
	l.seenOrd[src] = ord
	return false
}

// ParsePriority extracts the scheduling priority a message carries (0 when
// absent or malformed).
func ParsePriority(m *wire.Message) uint8 {
	if m == nil {
		return 0
	}
	return m.Priority
}

// ParseDeadlineHeader reads an RFC3339 deadline from headers as fallback for
// codecs that lack a native deadline field (none of ours do; kept for
// cross-middleware messages arriving via the interop gateway).
func ParseDeadlineHeader(m *wire.Message) (time.Time, bool) {
	if m == nil || m.Headers == nil {
		return time.Time{}, false
	}
	raw, ok := m.Headers["deadline"]
	if !ok {
		return time.Time{}, false
	}
	if unix, err := strconv.ParseInt(raw, 10, 64); err == nil {
		return time.Unix(0, unix).UTC(), true
	}
	t, err := time.Parse(time.RFC3339Nano, raw)
	if err != nil {
		return time.Time{}, false
	}
	return t.UTC(), true
}
