package transaction

import (
	"fmt"
	"testing"
	"time"

	"ndsm/internal/netsim"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// TestReliableLinkOverLossyRadio is the cross-stack reliability test: the
// at-least-once Link rides the sim transport over a radio dropping 30% of
// packets, and every message still arrives exactly once — the §3.6 delivery
// guarantee built from an unreliable substrate.
func TestReliableLinkOverLossyRadio(t *testing.T) {
	net := netsim.New(netsim.Config{Range: 50, LossRate: 0.3, Unlimited: true, Seed: 99})
	t.Cleanup(net.Close)
	for _, id := range []netsim.NodeID{"a", "b"} {
		if err := net.AddNode(id, netsim.Position{}); err != nil {
			t.Fatal(err)
		}
	}
	ta, err := transport.NewSim(net, "a", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ta.Close() })
	tb, err := transport.NewSim(net, "b", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tb.Close() })

	lb, err := tb.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	connA, err := ta.Dial("b")
	if err != nil {
		t.Fatal(err)
	}

	// The accepting side only materializes when the first datagram survives
	// the loss; SendReliable's retransmissions make that happen.
	linkA := NewLink(lossyConnWrap{connA}, LinkConfig{RetryInterval: 5 * time.Millisecond, MaxRetries: 100})
	t.Cleanup(func() { _ = linkA.Close() })

	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := lb.Accept()
		if err == nil {
			accepted <- c
		}
	}()

	const messages = 30
	done := make(chan error, 1)
	go func() {
		for i := 0; i < messages; i++ {
			m := &wire.Message{Kind: wire.KindData, Src: "a", Payload: []byte(fmt.Sprintf("m%d", i))}
			if err := linkA.SendReliable(m); err != nil {
				done <- fmt.Errorf("send %d: %w", i, err)
				return
			}
		}
		done <- nil
	}()

	var linkB *Link
	select {
	case c := <-accepted:
		linkB = NewLink(c, LinkConfig{RetryInterval: 5 * time.Millisecond, MaxRetries: 100})
		t.Cleanup(func() { _ = linkB.Close() })
	case <-time.After(30 * time.Second):
		t.Fatal("first datagram never survived the lossy radio")
	}

	seen := make(map[string]bool)
	deadline := time.After(60 * time.Second)
	for len(seen) < messages {
		type res struct {
			m   *wire.Message
			err error
		}
		ch := make(chan res, 1)
		go func() {
			m, err := linkB.Recv()
			ch <- res{m, err}
		}()
		select {
		case r := <-ch:
			if r.err != nil {
				t.Fatalf("recv: %v", r.err)
			}
			key := string(r.m.Payload)
			if seen[key] {
				t.Fatalf("duplicate delivery of %s", key)
			}
			seen[key] = true
		case <-deadline:
			t.Fatalf("only %d/%d messages arrived", len(seen), messages)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if linkA.Retransmissions.Load() == 0 {
		t.Fatal("30% loss produced zero retransmissions — loss not exercised")
	}
}

// lossyConnWrap is a pass-through (the loss lives in the radio); it exists
// so the test reads clearly.
type lossyConnWrap struct{ transport.Conn }
