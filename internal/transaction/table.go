package transaction

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ndsm/internal/qos"
)

// State is a transaction's lifecycle position.
type State int

// Transaction states. A transaction the scheduler moves to a new supplier
// passes through StateHandingOff before returning to StateActive bound to
// the new peer.
const (
	StateActive State = iota + 1
	StateHandingOff
	StateCompleted
	StateAborted
)

var stateNames = [...]string{"?", "active", "handing-off", "completed", "aborted"}

// String returns the state name.
func (s State) String() string {
	if int(s) > 0 && int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "state(?)"
}

// Txn is one managed supplier↔consumer interaction.
type Txn struct {
	// ID is the table-assigned identifier.
	ID uint64
	// Topic names the service the transaction exchanges.
	Topic string
	// Class is the transaction's paper classification.
	Class Class
	// Peer is the current remote endpoint (supplier for a consumer-side
	// record and vice versa).
	Peer string
	// Priority feeds the scheduler (§3.7); higher is more urgent.
	Priority uint8
	// State is the lifecycle position.
	State State
	// OpenedAt records creation time.
	OpenedAt time.Time
	// Handoffs counts how many times the transaction moved to a new peer.
	Handoffs int
	// Tracker measures achieved QoS for the binding.
	Tracker *qos.Tracker
}

// Table errors.
var (
	ErrUnknownTxn = errors.New("transaction: unknown transaction")
	ErrBadState   = errors.New("transaction: invalid state transition")
)

// Table is a node's transaction registry. All methods are safe for
// concurrent use.
type Table struct {
	mu     sync.Mutex
	nextID uint64
	txns   map[uint64]*Txn
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{txns: make(map[uint64]*Txn)}
}

// Open creates an active transaction and returns its record.
func (t *Table) Open(topic, peer string, class Class, priority uint8, benefit qos.Benefit, now time.Time) *Txn {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	txn := &Txn{
		ID:       t.nextID,
		Topic:    topic,
		Class:    class,
		Peer:     peer,
		Priority: priority,
		State:    StateActive,
		OpenedAt: now,
		Tracker:  qos.NewTracker(benefit),
	}
	t.txns[txn.ID] = txn
	return txn
}

// Get returns a copy of the transaction record.
func (t *Table) Get(id uint64) (Txn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	txn, ok := t.txns[id]
	if !ok {
		return Txn{}, fmt.Errorf("%w: %d", ErrUnknownTxn, id)
	}
	return *txn, nil
}

// Complete marks an active or handing-off transaction finished.
func (t *Table) Complete(id uint64) error {
	return t.transition(id, StateCompleted, StateActive, StateHandingOff)
}

// Abort marks a transaction failed.
func (t *Table) Abort(id uint64) error {
	return t.transition(id, StateAborted, StateActive, StateHandingOff)
}

// BeginHandoff marks an active transaction as migrating away from its
// current peer (e.g. a mobile supplier predicted to leave range, §3.7).
func (t *Table) BeginHandoff(id uint64) error {
	return t.transition(id, StateHandingOff, StateActive)
}

// CompleteHandoff binds a handing-off transaction to its new peer and
// reactivates it. The QoS tracker resets: achieved QoS is per-binding.
func (t *Table) CompleteHandoff(id uint64, newPeer string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	txn, ok := t.txns[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownTxn, id)
	}
	if txn.State != StateHandingOff {
		return fmt.Errorf("%w: %s -> active (handoff)", ErrBadState, txn.State)
	}
	txn.Peer = newPeer
	txn.State = StateActive
	txn.Handoffs++
	txn.Tracker.Reset()
	return nil
}

func (t *Table) transition(id uint64, to State, from ...State) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	txn, ok := t.txns[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownTxn, id)
	}
	for _, f := range from {
		if txn.State == f {
			txn.State = to
			return nil
		}
	}
	return fmt.Errorf("%w: %s -> %s", ErrBadState, txn.State, to)
}

// Tracker returns the live QoS tracker of a transaction (shared, not a
// copy).
func (t *Table) Tracker(id uint64) (*qos.Tracker, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	txn, ok := t.txns[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownTxn, id)
	}
	return txn.Tracker, nil
}

// ByPeer returns copies of all non-terminal transactions bound to peer,
// ordered by ID — the set the scheduler must hand off when that peer
// departs.
func (t *Table) ByPeer(peer string) []Txn {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Txn
	for _, txn := range t.txns {
		if txn.Peer == peer && (txn.State == StateActive || txn.State == StateHandingOff) {
			out = append(out, *txn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Active returns copies of all active transactions, ordered by ID.
func (t *Table) Active() []Txn {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Txn
	for _, txn := range t.txns {
		if txn.State == StateActive {
			out = append(out, *txn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the total number of records (any state).
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.txns)
}

// Purge removes terminal (completed/aborted) records and returns how many
// were removed.
func (t *Table) Purge() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id, txn := range t.txns {
		if txn.State == StateCompleted || txn.State == StateAborted {
			delete(t.txns, id)
			n++
		}
	}
	return n
}
