// Package flightrec is the middleware's black-box flight recorder. When an
// SLO alert goes critical, the moments *before* the page are exactly the
// data an operator needs and exactly the data that is gone by the time they
// attach a debugger: the recent spans, the counter deltas, which peers the
// failure detector suspected, how the admission lanes were spending their
// slots. A Recorder snapshots all of it into one bounded JSON bundle at the
// instant of the transition — the aviation flight-recorder idea applied to
// middleware: always armed, overwritten in a ring, read only after the
// incident (webbridge GET /flight, or dumped beside a failing chaos seed's
// trace).
//
// The recorder takes no dependency on the alerting engine — any caller may
// trigger a snapshot — so the slo package and this one stay independently
// testable; node binaries and chaos worlds wire an engine's transition feed
// to Recorder.Snapshot in a few lines.
package flightrec

import (
	"encoding/json"
	"io"
	"strings"
	"sync"
	"time"

	"ndsm/internal/health"
	"ndsm/internal/obs"
	"ndsm/internal/reqlog"
	"ndsm/internal/simtime"
	"ndsm/internal/telemetry"
	"ndsm/internal/trace"
)

// Options assembles a Recorder. Every source is optional — a bundle records
// whatever planes the host process runs.
type Options struct {
	// Clock stamps bundles and paces the rate limit (default real time).
	Clock simtime.Clock
	// Capacity bounds the retained bundle ring (default 8; oldest evicted).
	Capacity int
	// MaxSpans bounds the spans copied per bundle (default 256, newest
	// kept) — a post-mortem wants the last moments, not the whole ring.
	MaxSpans int
	// MinInterval rate-limits snapshots: triggers arriving sooner after the
	// previous bundle are counted but not recorded (default 0: no limit).
	// A flapping alert must not turn the recorder into an allocation storm.
	MinInterval time.Duration
	// Spans is the trace collector recent spans are pulled from.
	Spans *trace.Collector
	// Metrics is the obs registry snapshotted into every bundle (and
	// diffed against the previous bundle's snapshot).
	Metrics *obs.Registry
	// Health contributes the per-peer failure-detector states.
	Health *health.Monitor
	// Aggregator contributes per-node telemetry freshness at the instant
	// of the snapshot.
	Aggregator *telemetry.Aggregator
	// ReqLog contributes the wide-event tail ring — the anomalous request
	// exemplars (sheds, errors, deadline-tight calls) retained at snapshot
	// time.
	ReqLog *reqlog.Recorder
	// MaxRequests bounds the tail records copied per bundle (default 128,
	// newest kept).
	MaxRequests int
}

// Trigger describes why a bundle was cut — the firing SLO and its window
// values, or any caller-defined reason.
type Trigger struct {
	// Objective and Node identify the firing alert instance.
	Objective string `json:"objective"`
	Node      string `json:"node,omitempty"`
	// Severity is the level the alert transitioned to.
	Severity string `json:"severity"`
	// Windows carries the firing SLO's window values (burn rates, bad
	// fraction) — the numbers the post-mortem reads first.
	Windows map[string]float64 `json:"windows,omitempty"`
}

// NodeFreshness is one reporting node's telemetry liveness at snapshot
// time.
type NodeFreshness struct {
	Node  string `json:"node"`
	Fresh bool   `json:"fresh"`
}

// Bundle is one post-mortem snapshot, serialized as a single JSON object.
type Bundle struct {
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	Trigger Trigger   `json:"trigger"`
	// Spans are the newest spans in the collector at snapshot time.
	Spans       []trace.Span `json:"spans,omitempty"`
	SpanTotal   uint64       `json:"spanTotal,omitempty"`
	SpanDropped uint64       `json:"spanDropped,omitempty"`
	// Obs is the full instrument snapshot; ObsDelta is its diff against
	// the previous bundle's snapshot (nil on the first bundle) — "what
	// changed since the last incident" without replaying counters by hand.
	Obs      *obs.Snapshot `json:"obs,omitempty"`
	ObsDelta *obs.Snapshot `json:"obsDelta,omitempty"`
	// Lanes extracts the per-lane admission counters and gauges
	// (".lane." and ".shed" series) from Obs for direct reading.
	Lanes map[string]float64 `json:"lanes,omitempty"`
	// Health is every tracked peer's failure-detector verdict.
	Health []health.PeerStatus `json:"health,omitempty"`
	// Telemetry is per-node freshness from the aggregator.
	Telemetry []NodeFreshness `json:"telemetry,omitempty"`
	// Requests is the wide-event tail ring at snapshot time, newest first:
	// every shed, errored, or deadline-tight request the recorder retained.
	Requests []reqlog.Record `json:"requests,omitempty"`
}

// Recorder keeps the bounded bundle ring. Safe for concurrent use.
type Recorder struct {
	opts Options

	mu         sync.Mutex
	seq        uint64
	lastCut    time.Time
	hasCut     bool
	prevObs    obs.Snapshot
	hasPrev    bool
	ring       []*Bundle
	suppressed uint64
}

// NewRecorder builds a recorder.
func NewRecorder(opts Options) *Recorder {
	if opts.Clock == nil {
		opts.Clock = simtime.Real{}
	}
	if opts.Capacity <= 0 {
		opts.Capacity = 8
	}
	if opts.MaxSpans <= 0 {
		opts.MaxSpans = 256
	}
	if opts.MaxRequests <= 0 {
		opts.MaxRequests = 128
	}
	return &Recorder{opts: opts}
}

// Snapshot cuts one bundle now. Returns nil when the rate limit suppressed
// it (the suppression is counted; see Suppressed).
func (r *Recorder) Snapshot(t Trigger) *Bundle {
	now := r.opts.Clock.Now()
	r.mu.Lock()
	if r.opts.MinInterval > 0 && r.hasCut && now.Sub(r.lastCut) < r.opts.MinInterval {
		r.suppressed++
		r.mu.Unlock()
		return nil
	}
	r.seq++
	b := &Bundle{Seq: r.seq, Time: now, Trigger: t}
	if c := r.opts.Spans; c != nil {
		spans := c.Spans()
		if len(spans) > r.opts.MaxSpans {
			spans = spans[len(spans)-r.opts.MaxSpans:]
		}
		b.Spans = spans
		b.SpanTotal = c.Total()
		b.SpanDropped = c.Dropped()
	}
	if reg := r.opts.Metrics; reg != nil {
		snap := reg.Snapshot()
		b.Obs = &snap
		if r.hasPrev {
			delta := snap.Diff(r.prevObs)
			b.ObsDelta = &delta
		}
		r.prevObs = snap
		r.hasPrev = true
		b.Lanes = laneCounters(snap)
	}
	if m := r.opts.Health; m != nil {
		b.Health = m.Status()
	}
	if agg := r.opts.Aggregator; agg != nil {
		for _, node := range agg.Nodes() {
			b.Telemetry = append(b.Telemetry, NodeFreshness{Node: node, Fresh: agg.Fresh(node)})
		}
	}
	if rec := r.opts.ReqLog; rec != nil {
		reqs := rec.Tail()
		if len(reqs) > r.opts.MaxRequests {
			reqs = reqs[:r.opts.MaxRequests] // newest first: keep the head
		}
		b.Requests = reqs
	}
	r.lastCut = now
	r.hasCut = true
	r.ring = append(r.ring, b)
	if len(r.ring) > r.opts.Capacity {
		r.ring = r.ring[len(r.ring)-r.opts.Capacity:]
	}
	r.mu.Unlock()
	return b
}

// laneCounters pulls the admission-plane series out of a snapshot: per-lane
// admitted/shed/queued plus the shed totals.
func laneCounters(s obs.Snapshot) map[string]float64 {
	out := make(map[string]float64)
	for name, v := range s.Counters {
		if strings.Contains(name, ".lane.") || strings.Contains(name, ".shed") {
			out[name] = float64(v)
		}
	}
	for name, v := range s.Gauges {
		if strings.Contains(name, ".lane.") {
			out[name] = v
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Bundles returns the retained bundles, oldest first.
func (r *Recorder) Bundles() []*Bundle {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Bundle(nil), r.ring...)
}

// Len is the retained bundle count; Total counts every bundle ever cut;
// Suppressed counts triggers the rate limit swallowed.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

func (r *Recorder) Suppressed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.suppressed
}

// WriteJSON serializes the retained bundles as one indented JSON document —
// the body of GET /flight and of the chaos soak's failure artifacts.
func (r *Recorder) WriteJSON(w io.Writer) error {
	doc := struct {
		Bundles    []*Bundle `json:"bundles"`
		Total      uint64    `json:"total"`
		Suppressed uint64    `json:"suppressed"`
	}{Bundles: r.Bundles(), Total: r.Total(), Suppressed: r.Suppressed()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
