package flightrec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"ndsm/internal/health"
	"ndsm/internal/obs"
	"ndsm/internal/reqlog"
	"ndsm/internal/simtime"
	"ndsm/internal/telemetry"
	"ndsm/internal/trace"
)

// fullRecorder builds a recorder with every source populated.
func fullRecorder(t *testing.T, vc *simtime.Virtual, opts Options) (*Recorder, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("srv.lane.control.admitted").Inc(7)
	reg.Counter("srv.lane.bulk.shed").Inc(3)
	reg.Counter("srv.shed").Inc(3)
	reg.Counter("unrelated.requests").Inc(100)
	reg.Gauge("srv.lane.control.queued").Set(2)

	col := trace.NewCollector(16)
	for i := 0; i < 4; i++ {
		col.Record(trace.Span{TraceID: 1, SpanID: uint64(i + 1), Name: "op", Node: "n1",
			Start: vc.Now(), End: vc.Now().Add(time.Millisecond)})
	}

	mon := health.NewMonitor(health.Options{Clock: vc})
	mon.Heartbeat("peer-1")

	agg := telemetry.NewAggregator(telemetry.AggregatorOptions{
		Clock: vc, StaleAfter: 5 * time.Second, Registry: obs.NewRegistry(),
	})
	if err := agg.Ingest(&telemetry.Report{Node: "n1", Seq: 1, Time: vc.Now(),
		Counters: map[string]int64{"x": 1}}); err != nil {
		t.Fatal(err)
	}

	opts.Clock = vc
	opts.Spans = col
	opts.Metrics = reg
	opts.Health = mon
	opts.Aggregator = agg
	return NewRecorder(opts), reg
}

// TestSnapshotCapturesAllPlanes cuts one bundle and checks every plane
// landed: spans, obs snapshot + lane extraction, health, telemetry
// freshness, and the trigger's window values.
func TestSnapshotCapturesAllPlanes(t *testing.T) {
	vc := simtime.NewVirtual(time.Unix(0, 0))
	rec, reg := fullRecorder(t, vc, Options{})

	b := rec.Snapshot(Trigger{
		Objective: "ctl-miss", Node: "n1", Severity: "critical",
		Windows: map[string]float64{"burnLong": 6.2, "burnShort": 9.1},
	})
	if b == nil {
		t.Fatal("snapshot suppressed with no rate limit")
	}
	if b.Seq != 1 || b.Trigger.Objective != "ctl-miss" || b.Trigger.Windows["burnLong"] != 6.2 {
		t.Fatalf("bundle header wrong: %+v", b)
	}
	if len(b.Spans) != 4 || b.SpanTotal != 4 {
		t.Fatalf("spans: got %d (total %d), want 4", len(b.Spans), b.SpanTotal)
	}
	if b.Obs == nil || b.Obs.Counters["srv.lane.control.admitted"] != 7 {
		t.Fatalf("obs snapshot missing: %+v", b.Obs)
	}
	if b.ObsDelta != nil {
		t.Fatal("first bundle has an obs delta")
	}
	for _, k := range []string{"srv.lane.control.admitted", "srv.lane.bulk.shed", "srv.shed", "srv.lane.control.queued"} {
		if _, ok := b.Lanes[k]; !ok {
			t.Fatalf("lane extraction missing %s: %+v", k, b.Lanes)
		}
	}
	if _, ok := b.Lanes["unrelated.requests"]; ok {
		t.Fatal("lane extraction swept in unrelated counters")
	}
	if len(b.Health) != 1 || b.Health[0].Peer != "peer-1" {
		t.Fatalf("health states: %+v", b.Health)
	}
	if len(b.Telemetry) != 1 || b.Telemetry[0].Node != "n1" || !b.Telemetry[0].Fresh {
		t.Fatalf("telemetry freshness: %+v", b.Telemetry)
	}

	// A second bundle carries the delta since the first.
	reg.Counter("srv.lane.control.admitted").Inc(5)
	vc.Advance(time.Second)
	b2 := rec.Snapshot(Trigger{Objective: "ctl-miss", Severity: "critical"})
	if b2.ObsDelta == nil || b2.ObsDelta.Counters["srv.lane.control.admitted"] != 5 {
		t.Fatalf("second bundle delta: %+v", b2.ObsDelta)
	}
}

// TestRingBoundAndRateLimit checks eviction and MinInterval suppression.
func TestRingBoundAndRateLimit(t *testing.T) {
	vc := simtime.NewVirtual(time.Unix(0, 0))
	rec, _ := fullRecorder(t, vc, Options{Capacity: 3, MinInterval: time.Second})

	for i := 0; i < 5; i++ {
		vc.Advance(time.Second)
		if b := rec.Snapshot(Trigger{Objective: fmt.Sprintf("o%d", i), Severity: "critical"}); b == nil {
			t.Fatalf("snapshot %d suppressed despite interval", i)
		}
	}
	if rec.Len() != 3 || rec.Total() != 5 {
		t.Fatalf("ring len %d total %d, want 3/5", rec.Len(), rec.Total())
	}
	bundles := rec.Bundles()
	if bundles[0].Trigger.Objective != "o2" || bundles[2].Trigger.Objective != "o4" {
		t.Fatalf("eviction order wrong: %s..%s", bundles[0].Trigger.Objective, bundles[2].Trigger.Objective)
	}

	// A flapping alert inside MinInterval is counted, not recorded.
	if b := rec.Snapshot(Trigger{Objective: "flap", Severity: "critical"}); b != nil {
		t.Fatal("rate limit did not suppress")
	}
	if rec.Suppressed() != 1 || rec.Total() != 5 {
		t.Fatalf("suppressed %d total %d, want 1/5", rec.Suppressed(), rec.Total())
	}
}

// TestMaxSpansKeepsNewest bounds the per-bundle span copy to the tail.
func TestMaxSpansKeepsNewest(t *testing.T) {
	vc := simtime.NewVirtual(time.Unix(0, 0))
	col := trace.NewCollector(64)
	for i := 0; i < 10; i++ {
		col.Record(trace.Span{TraceID: 1, SpanID: uint64(i + 1), Name: "op", Node: "n1"})
	}
	rec := NewRecorder(Options{Clock: vc, Spans: col, MaxSpans: 3})
	b := rec.Snapshot(Trigger{Objective: "x", Severity: "critical"})
	if len(b.Spans) != 3 || b.Spans[2].SpanID != 10 {
		t.Fatalf("span tail wrong: %+v", b.Spans)
	}
}

// TestBundleCarriesRequestTail pins the wide-event plane: a bundle embeds
// the reqlog tail ring (sheds and errors), newest first, bounded by
// MaxRequests, and healthy sampled records stay out of it.
func TestBundleCarriesRequestTail(t *testing.T) {
	vc := simtime.NewVirtual(time.Unix(0, 0))
	rl := reqlog.New(reqlog.Options{Capacity: 64, SampleEvery: 1, Registry: obs.NewRegistry()})
	for i := 0; i < 5; i++ {
		rl.Record(reqlog.Record{
			Time: vc.Now().Add(time.Duration(i) * time.Second), Kind: reqlog.KindServer,
			Topic: fmt.Sprintf("t%d", i), Outcome: reqlog.OutcomeShed, ShedReason: "server at capacity",
		})
	}
	rl.Record(reqlog.Record{Time: vc.Now(), Kind: reqlog.KindClient, Topic: "healthy",
		Outcome: reqlog.OutcomeOK, Latency: time.Millisecond})

	rec := NewRecorder(Options{Clock: vc, ReqLog: rl, MaxRequests: 3})
	b := rec.Snapshot(Trigger{Objective: "x", Severity: "critical"})
	if len(b.Requests) != 3 {
		t.Fatalf("bundle holds %d requests, want MaxRequests=3", len(b.Requests))
	}
	if b.Requests[0].Topic != "t4" || b.Requests[2].Topic != "t2" {
		t.Fatalf("request tail not newest-first: %+v", b.Requests)
	}
	for _, r := range b.Requests {
		if r.Outcome != reqlog.OutcomeShed {
			t.Fatalf("healthy record leaked into the tail plane: %+v", r)
		}
	}
}

// TestWriteJSON serializes the retained bundles as one parseable document.
func TestWriteJSON(t *testing.T) {
	vc := simtime.NewVirtual(time.Unix(0, 0))
	rec, _ := fullRecorder(t, vc, Options{})
	rec.Snapshot(Trigger{Objective: "ctl-miss", Severity: "critical"})

	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Bundles []json.RawMessage `json:"bundles"`
		Total   uint64            `json:"total"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("flight document does not parse: %v", err)
	}
	if len(doc.Bundles) != 1 || doc.Total != 1 {
		t.Fatalf("document %+v", doc)
	}
}
