package scheduler

import (
	"sync"
	"sync/atomic"

	"ndsm/internal/simtime"
)

// Dispatcher executes queued items in policy order under a bandwidth budget.
// Items whose deadline has already passed at dispatch time are counted as
// missed; by default they are still executed (the data may retain partial
// benefit), or dropped when DropLate is set.
type Dispatcher struct {
	queue  *Queue
	bucket *TokenBucket
	clock  simtime.Clock
	// DropLate discards items already past deadline instead of running them.
	dropLate bool

	// maxBacklog bounds the queue; overflow preemptively evicts the
	// lowest-priority, lowest-benefit item (0: unbounded).
	maxBacklog int

	kick     chan struct{}
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	dispatched atomic.Int64
	missed     atomic.Int64
	dropped    atomic.Int64
	shed       atomic.Int64
}

// DispatcherConfig configures a Dispatcher.
type DispatcherConfig struct {
	// Policy orders dispatch (default PriorityOrder).
	Policy Policy
	// RateBytesPerSec and BurstBytes configure the bandwidth budget
	// (0 rate: unlimited).
	RateBytesPerSec float64
	BurstBytes      float64
	// DropLate discards items past their deadline instead of executing.
	DropLate bool
	// MaxBacklog bounds the pending queue (0: unbounded). When a Submit
	// overflows it, the least-valuable item is preemptively shed — lowest
	// Priority first, lowest remaining benefit (Item.Benefit decayed from
	// submission time) within a priority — so under overload a backlog of
	// bulk work surrenders before fresh high-priority work queues behind it.
	MaxBacklog int
	// Clock times deadlines and bandwidth (default real).
	Clock simtime.Clock
}

// NewDispatcher starts a dispatcher loop.
func NewDispatcher(cfg DispatcherConfig) *Dispatcher {
	if cfg.Policy == 0 {
		cfg.Policy = PriorityOrder
	}
	if cfg.Clock == nil {
		cfg.Clock = simtime.Real{}
	}
	d := &Dispatcher{
		queue:      NewQueue(cfg.Policy),
		clock:      cfg.Clock,
		dropLate:   cfg.DropLate,
		maxBacklog: cfg.MaxBacklog,
		kick:       make(chan struct{}, 1),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if cfg.RateBytesPerSec > 0 {
		burst := cfg.BurstBytes
		if burst <= 0 {
			burst = cfg.RateBytesPerSec
		}
		d.bucket = NewTokenBucket(cfg.RateBytesPerSec, burst, cfg.Clock.Now())
	}
	go d.run()
	return d
}

// Submit enqueues an item for dispatch. With MaxBacklog set, an overflowing
// Submit sheds the least-valuable queued item (possibly this one) instead of
// growing the backlog without bound.
func (d *Dispatcher) Submit(it Item) {
	it.enq = d.clock.Now()
	d.queue.Push(it)
	if d.maxBacklog > 0 && d.queue.Len() > d.maxBacklog {
		if _, ok := d.queue.EvictLowest(d.clock.Now()); ok {
			d.shed.Add(1)
		}
	}
	select {
	case d.kick <- struct{}{}:
	default:
	}
}

// Stop halts the loop (queued items stay undispatched) and waits for exit.
func (d *Dispatcher) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	<-d.done
}

// Stats reports dispatched, deadline-missed, and dropped item counts.
func (d *Dispatcher) Stats() (dispatched, missed, dropped int64) {
	return d.dispatched.Load(), d.missed.Load(), d.dropped.Load()
}

// Shed reports how many items preemptive backlog shedding evicted.
func (d *Dispatcher) Shed() int64 { return d.shed.Load() }

// Backlog reports the queued item count.
func (d *Dispatcher) Backlog() int { return d.queue.Len() }

func (d *Dispatcher) run() {
	defer close(d.done)
	for {
		it, err := d.queue.Pop()
		if err != nil {
			select {
			case <-d.stop:
				return
			case <-d.kick:
				continue
			}
		}
		// Bandwidth gate.
		if d.bucket != nil && it.Size > 0 {
			for {
				wait := d.bucket.WaitTime(it.Size, d.clock.Now())
				if wait <= 0 {
					d.bucket.Take(it.Size, d.clock.Now())
					break
				}
				select {
				case <-d.stop:
					return
				case <-d.clock.After(wait):
				}
			}
		}
		late := !it.Deadline.IsZero() && d.clock.Now().After(it.Deadline)
		if late {
			d.missed.Add(1)
			if d.dropLate {
				d.dropped.Add(1)
				continue
			}
		}
		if it.Do != nil {
			it.Do()
		}
		d.dispatched.Add(1)
	}
}
