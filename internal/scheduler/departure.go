package scheduler

import (
	"sort"
	"time"

	"ndsm/internal/location"
	"ndsm/internal/svcdesc"
)

// DepartureMonitor closes the loop between the location service (§3.5) and
// the handoff machinery (§3.7): using each mobile supplier's velocity
// estimate, it predicts who will leave the service area within the lookahead
// horizon and hands their transactions off *before* the link breaks — the
// paper's "if a service is about to be discontinued (e.g., a mobile service
// moving out of range), then the transactions involving it should be either
// completed, or transferred to different services matching the constraints".
type DepartureMonitor struct {
	locations *location.Service
	handoff   *HandoffManager
	// Center and Radius define the service area.
	Center svcdesc.Location
	Radius float64
	// Lookahead is how far ahead positions are extrapolated.
	Lookahead time.Duration
	// StaleAfter treats suppliers with no location update in this long as
	// departed (silent loss). Zero disables the staleness check.
	StaleAfter time.Duration
}

// NewDepartureMonitor wires a monitor; callers fill the area fields.
func NewDepartureMonitor(locations *location.Service, handoff *HandoffManager, center svcdesc.Location, radius float64, lookahead time.Duration) *DepartureMonitor {
	return &DepartureMonitor{
		locations: locations,
		handoff:   handoff,
		Center:    center,
		Radius:    radius,
		Lookahead: lookahead,
	}
}

// PredictDepartures returns the tracked nodes predicted to be outside the
// service area at now+Lookahead (or stale), sorted by name.
func (m *DepartureMonitor) PredictDepartures(now time.Time) []string {
	horizon := now.Add(m.Lookahead)
	var out []string
	for _, e := range m.locations.All() {
		if m.StaleAfter > 0 && now.Sub(e.UpdatedAt) > m.StaleAfter {
			out = append(out, e.Node)
			continue
		}
		if e.PredictAt(horizon).Distance(m.Center) > m.Radius {
			out = append(out, e.Node)
		}
	}
	sort.Strings(out)
	return out
}

// Sweep predicts departures and hands off every affected transaction,
// returning one report per departing peer.
func (m *DepartureMonitor) Sweep(now time.Time) ([]HandoffReport, error) {
	var reports []HandoffReport
	for _, peer := range m.PredictDepartures(now) {
		report, err := m.handoff.HandoffPeer(peer, now)
		if err != nil {
			return reports, err
		}
		if len(report.Results) > 0 {
			reports = append(reports, report)
		}
	}
	return reports, nil
}
