package scheduler

import (
	"testing"
	"time"

	"ndsm/internal/location"
	"ndsm/internal/qos"
	"ndsm/internal/svcdesc"
	"ndsm/internal/transaction"
)

func TestPredictDepartures(t *testing.T) {
	ls := location.NewService()
	center := svcdesc.Location{X: 0, Y: 0}
	// "leaver" moves outward at 10 m/s; "stayer" is parked near the center.
	ls.Update("leaver", svcdesc.Location{X: 0, Y: 0}, "", epoch)
	ls.Update("leaver", svcdesc.Location{X: 10, Y: 0}, "", epoch.Add(time.Second))
	ls.Update("stayer", svcdesc.Location{X: 2, Y: 2}, "", epoch.Add(time.Second))

	m := NewDepartureMonitor(ls, nil, center, 50, 10*time.Second)
	got := m.PredictDepartures(epoch.Add(time.Second))
	// leaver's predicted position at +10s: x=110 > radius 50.
	if len(got) != 1 || got[0] != "leaver" {
		t.Fatalf("departures = %v", got)
	}

	// Shrink the lookahead: nobody leaves within 2 seconds (x=30 < 50).
	m.Lookahead = 2 * time.Second
	if got := m.PredictDepartures(epoch.Add(time.Second)); len(got) != 0 {
		t.Fatalf("short-lookahead departures = %v", got)
	}
}

func TestPredictDeparturesStale(t *testing.T) {
	ls := location.NewService()
	ls.Update("silent", svcdesc.Location{X: 1, Y: 1}, "", epoch)
	m := NewDepartureMonitor(ls, nil, svcdesc.Location{}, 100, time.Second)
	m.StaleAfter = 30 * time.Second
	if got := m.PredictDepartures(epoch.Add(10 * time.Second)); len(got) != 0 {
		t.Fatalf("fresh node flagged: %v", got)
	}
	if got := m.PredictDepartures(epoch.Add(time.Minute)); len(got) != 1 || got[0] != "silent" {
		t.Fatalf("stale node not flagged: %v", got)
	}
}

func TestDepartureSweepHandsOff(t *testing.T) {
	ls := location.NewService()
	table := transaction.NewTable()
	registry := NewRegistryStore()
	hm := NewHandoffManager(table, registry, nil)
	m := NewDepartureMonitor(ls, hm, svcdesc.Location{}, 50, 10*time.Second)

	// The mobile supplier races out of the area with one open transaction; a
	// parked backup offers the same service.
	ls.Update("mobile", svcdesc.Location{X: 0, Y: 0}, "", epoch)
	ls.Update("mobile", svcdesc.Location{X: 20, Y: 0}, "", epoch.Add(time.Second))
	ls.Update("backup", svcdesc.Location{X: 3, Y: 3}, "", epoch.Add(time.Second))
	if err := registry.Register(&svcdesc.Description{
		Name: "svc", Provider: "backup", Reliability: 0.9, PowerLevel: 1,
	}); err != nil {
		t.Fatal(err)
	}
	txn := table.Open("svc", "mobile", transaction.Continuous, 1, qos.Benefit{}, epoch)

	reports, err := m.Sweep(epoch.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Peer != "mobile" || reports[0].Moved != 1 {
		t.Fatalf("reports = %+v", reports)
	}
	got, _ := table.Get(txn.ID)
	if got.Peer != "backup" || got.State != transaction.StateActive {
		t.Fatalf("txn = %+v", got)
	}

	// A second sweep finds nothing left to do (transactions already moved;
	// backup is parked inside the area).
	reports, err = m.Sweep(epoch.Add(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	// The mobile node still predicts as departing but has no transactions;
	// empty reports are suppressed.
	if len(reports) != 0 {
		t.Fatalf("second sweep reports = %+v", reports)
	}
}
