package scheduler

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"ndsm/internal/discovery"
	"ndsm/internal/qos"
	"ndsm/internal/simtime"
	"ndsm/internal/svcdesc"
	"ndsm/internal/transaction"
)

var epoch = time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || PriorityOrder.String() != "priority" ||
		EDF.String() != "edf" || Policy(9).String() != "policy(?)" {
		t.Fatal("policy names wrong")
	}
}

func popAll(t *testing.T, q *Queue) []Item {
	t.Helper()
	var out []Item
	for {
		it, err := q.Pop()
		if errors.Is(err, ErrEmpty) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, it)
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(FIFO)
	for i := 0; i < 3; i++ {
		q.Push(Item{Priority: uint8(i), Size: i})
	}
	got := popAll(t, q)
	if len(got) != 3 || got[0].Size != 0 || got[1].Size != 1 || got[2].Size != 2 {
		t.Fatalf("order: %+v", got)
	}
}

func TestQueuePriority(t *testing.T) {
	q := NewQueue(PriorityOrder)
	q.Push(Item{Priority: 1, Size: 1})
	q.Push(Item{Priority: 9, Size: 9})
	q.Push(Item{Priority: 5, Size: 5})
	q.Push(Item{Priority: 9, Size: 10}) // same priority: FIFO
	got := popAll(t, q)
	sizes := []int{got[0].Size, got[1].Size, got[2].Size, got[3].Size}
	want := []int{9, 10, 5, 1}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("order %v, want %v", sizes, want)
		}
	}
}

func TestQueueEDF(t *testing.T) {
	q := NewQueue(EDF)
	q.Push(Item{Size: 1}) // no deadline: last
	q.Push(Item{Deadline: epoch.Add(3 * time.Second), Size: 3})
	q.Push(Item{Deadline: epoch.Add(1 * time.Second), Size: 2})
	got := popAll(t, q)
	if got[0].Size != 2 || got[1].Size != 3 || got[2].Size != 1 {
		t.Fatalf("order: %+v", got)
	}
}

func TestQueueEmptyPop(t *testing.T) {
	q := NewQueue(FIFO)
	if _, err := q.Pop(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
	if q.Len() != 0 {
		t.Fatal("Len != 0")
	}
}

func TestTokenBucketTake(t *testing.T) {
	b := NewTokenBucket(100, 50, epoch) // 100 B/s, 50 B burst
	if !b.Take(50, epoch) {
		t.Fatal("initial burst refused")
	}
	if b.Take(1, epoch) {
		t.Fatal("empty bucket granted")
	}
	// After 0.25s, 25 tokens refilled.
	if !b.Take(25, epoch.Add(250*time.Millisecond)) {
		t.Fatal("refill not granted")
	}
	if b.Take(1, epoch.Add(250*time.Millisecond)) {
		t.Fatal("over-refill granted")
	}
}

func TestTokenBucketCapacityCap(t *testing.T) {
	b := NewTokenBucket(100, 50, epoch)
	// After a long idle period tokens must cap at capacity.
	if got := b.Available(epoch.Add(time.Hour)); got != 50 {
		t.Fatalf("Available = %d, want 50", got)
	}
}

func TestTokenBucketWaitTime(t *testing.T) {
	b := NewTokenBucket(100, 100, epoch)
	if w := b.WaitTime(100, epoch); w != 0 {
		t.Fatalf("full bucket wait = %v", w)
	}
	b.Take(100, epoch)
	if w := b.WaitTime(50, epoch); w != 500*time.Millisecond {
		t.Fatalf("wait for 50B at 100B/s = %v, want 500ms", w)
	}
	// Requests above capacity wait only for a full bucket.
	if w := b.WaitTime(1000, epoch); w != time.Second {
		t.Fatalf("oversize wait = %v, want 1s", w)
	}
}

func TestUtilizationAndBounds(t *testing.T) {
	tasks := []Task{
		{C: 10 * time.Millisecond, T: 100 * time.Millisecond}, // 0.1
		{C: 30 * time.Millisecond, T: 100 * time.Millisecond}, // 0.3
	}
	if u := Utilization(tasks); math.Abs(u-0.4) > 1e-9 {
		t.Fatalf("U = %v", u)
	}
	if b := RMBound(1); b != 1 {
		t.Fatalf("RMBound(1) = %v", b)
	}
	if b := RMBound(2); math.Abs(b-0.8284) > 1e-3 {
		t.Fatalf("RMBound(2) = %v", b)
	}
	if b := RMBound(0); b != 1 {
		t.Fatalf("RMBound(0) = %v", b)
	}
}

func TestRMAdmission(t *testing.T) {
	ok := []Task{
		{C: 10 * time.Millisecond, T: 100 * time.Millisecond},
		{C: 20 * time.Millisecond, T: 100 * time.Millisecond},
	} // U=0.3 <= 0.828
	if !RMAdmissible(ok) {
		t.Fatal("feasible set rejected")
	}
	over := []Task{
		{C: 50 * time.Millisecond, T: 100 * time.Millisecond},
		{C: 45 * time.Millisecond, T: 100 * time.Millisecond},
	} // U=0.95 > 0.828
	if RMAdmissible(over) {
		t.Fatal("overloaded set admitted by RM")
	}
	if !EDFAdmissible(over) {
		t.Fatal("U=0.95 should pass EDF bound")
	}
	tooMuch := []Task{{C: 110 * time.Millisecond, T: 100 * time.Millisecond}}
	if EDFAdmissible(tooMuch) {
		t.Fatal("U>1 admitted by EDF")
	}
	if Utilization([]Task{{C: 1, T: 0}}) != 0 {
		t.Fatal("zero-period task should contribute 0")
	}
}

func TestDispatcherExecutesInPriorityOrder(t *testing.T) {
	d := NewDispatcher(DispatcherConfig{Policy: PriorityOrder})
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	wg.Add(3)
	record := func(id int) func() {
		return func() {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			wg.Done()
		}
	}
	// Stall the dispatcher with a blocker so the queue orders before
	// execution starts.
	gate := make(chan struct{})
	var gateWg sync.WaitGroup
	gateWg.Add(1)
	d.Submit(Item{Priority: 255, Do: func() { gateWg.Done(); <-gate }})
	gateWg.Wait() // blocker is running; now queue the test items
	d.Submit(Item{Priority: 1, Do: record(1)})
	d.Submit(Item{Priority: 3, Do: record(3)})
	d.Submit(Item{Priority: 2, Do: record(2)})
	close(gate)
	wg.Wait()
	d.Stop()
	mu.Lock()
	defer mu.Unlock()
	if order[0] != 3 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("order = %v", order)
	}
	dispatched, missed, dropped := d.Stats()
	if dispatched != 4 || missed != 0 || dropped != 0 {
		t.Fatalf("stats = %d/%d/%d", dispatched, missed, dropped)
	}
}

func TestDispatcherCountsMisses(t *testing.T) {
	clk := simtime.NewVirtual(epoch)
	clk.Advance(time.Hour) // now = epoch+1h
	d := NewDispatcher(DispatcherConfig{Policy: EDF, Clock: clk})
	var wg sync.WaitGroup
	wg.Add(1)
	d.Submit(Item{Deadline: epoch, Do: func() { wg.Done() }}) // long past
	wg.Wait()
	d.Stop()
	dispatched, missed, dropped := d.Stats()
	if dispatched != 1 || missed != 1 || dropped != 0 {
		t.Fatalf("stats = %d/%d/%d", dispatched, missed, dropped)
	}
}

func TestDispatcherDropLate(t *testing.T) {
	clk := simtime.NewVirtual(epoch)
	clk.Advance(time.Hour)
	d := NewDispatcher(DispatcherConfig{Policy: EDF, Clock: clk, DropLate: true})
	ran := make(chan struct{}, 1)
	d.Submit(Item{Deadline: epoch, Do: func() { ran <- struct{}{} }})
	// Submit an on-time item to observe progress past the dropped one.
	var wg sync.WaitGroup
	wg.Add(1)
	d.Submit(Item{Deadline: epoch.Add(2 * time.Hour), Do: func() { wg.Done() }})
	wg.Wait()
	d.Stop()
	select {
	case <-ran:
		t.Fatal("late item executed despite DropLate")
	default:
	}
	_, missed, dropped := d.Stats()
	if missed != 1 || dropped != 1 {
		t.Fatalf("missed/dropped = %d/%d", missed, dropped)
	}
}

func TestDispatcherBandwidthThrottle(t *testing.T) {
	clk := simtime.NewVirtual(epoch)
	d := NewDispatcher(DispatcherConfig{
		Policy:          FIFO,
		RateBytesPerSec: 100,
		BurstBytes:      100,
		Clock:           clk,
	})
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	wg.Add(1)
	// First 100B item passes on the initial burst.
	d.Submit(Item{Size: 100, Do: func() {
		mu.Lock()
		count++
		mu.Unlock()
		wg.Done()
	}})
	wg.Wait()

	done2 := make(chan struct{})
	d.Submit(Item{Size: 100, Do: func() { close(done2) }})
	// The second must wait ~1 virtual second; it cannot have run yet.
	select {
	case <-done2:
		t.Fatal("second item ran without bandwidth")
	case <-time.After(50 * time.Millisecond):
	}
	// Advance virtual time so the bucket refills.
	deadline := time.Now().Add(5 * time.Second)
	for clk.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dispatcher never armed its bandwidth timer")
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(time.Second)
	select {
	case <-done2:
	case <-time.After(5 * time.Second):
		t.Fatal("second item never ran after refill")
	}
	d.Stop()
}

func TestDispatcherStopIdempotent(t *testing.T) {
	d := NewDispatcher(DispatcherConfig{})
	d.Stop()
	d.Stop()
	if d.Backlog() != 0 {
		t.Fatal("backlog nonzero")
	}
}

// --- handoff ---

func handoffFixture(t *testing.T) (*transaction.Table, *discovery.Store, *HandoffManager) {
	t.Helper()
	table := transaction.NewTable()
	reg := NewRegistryStore()
	hm := NewHandoffManager(table, reg, nil)
	return table, reg, hm
}

// NewRegistryStore returns a plain discovery store registry for tests.
func NewRegistryStore() *discovery.Store {
	return discovery.NewStore(nil, 0)
}

func TestHandoffMovesTransactions(t *testing.T) {
	table, reg, hm := handoffFixture(t)
	// Replacement supplier exists.
	if err := reg.Register(&svcdesc.Description{Name: "sensor/bp", Provider: "backup", Reliability: 0.9, PowerLevel: 1}); err != nil {
		t.Fatal(err)
	}
	// Old supplier also registered (must not be chosen).
	if err := reg.Register(&svcdesc.Description{Name: "sensor/bp", Provider: "dying", Reliability: 0.99, PowerLevel: 1}); err != nil {
		t.Fatal(err)
	}
	txn := table.Open("sensor/bp", "dying", transaction.Continuous, 1, qos.Benefit{}, epoch)

	report, err := hm.HandoffPeer("dying", epoch)
	if err != nil {
		t.Fatal(err)
	}
	if report.Moved != 1 || report.Aborted != 0 {
		t.Fatalf("report = %+v", report)
	}
	got, _ := table.Get(txn.ID)
	if got.Peer != "backup" || got.State != transaction.StateActive || got.Handoffs != 1 {
		t.Fatalf("txn after handoff: %+v", got)
	}
}

func TestHandoffAbortsWhenNoReplacement(t *testing.T) {
	table, _, hm := handoffFixture(t)
	txn := table.Open("sensor/unique", "dying", transaction.Continuous, 1, qos.Benefit{}, epoch)
	report, err := hm.HandoffPeer("dying", epoch)
	if err != nil {
		t.Fatal(err)
	}
	if report.Moved != 0 || report.Aborted != 1 {
		t.Fatalf("report = %+v", report)
	}
	got, _ := table.Get(txn.ID)
	if got.State != transaction.StateAborted {
		t.Fatalf("state = %v", got.State)
	}
}

func TestHandoffUsesQoSSpec(t *testing.T) {
	table := transaction.NewTable()
	reg := NewRegistryStore()
	// Two candidates; the spec's reliability floor excludes one.
	_ = reg.Register(&svcdesc.Description{Name: "svc", Provider: "weak", Reliability: 0.4, PowerLevel: 1})
	_ = reg.Register(&svcdesc.Description{Name: "svc", Provider: "strong", Reliability: 0.95, PowerLevel: 1})
	hm := NewHandoffManager(table, reg, func(txn transaction.Txn) *qos.Spec {
		return &qos.Spec{Query: svcdesc.Query{Name: txn.Topic, MinReliability: 0.9}}
	})
	txn := table.Open("svc", "old", transaction.OnDemand, 0, qos.Benefit{}, epoch)
	report, err := hm.HandoffPeer("old", epoch)
	if err != nil || report.Moved != 1 {
		t.Fatalf("report = %+v, %v", report, err)
	}
	got, _ := table.Get(txn.ID)
	if got.Peer != "strong" {
		t.Fatalf("rebound to %s, want strong", got.Peer)
	}
}

func TestHandoffMultipleTransactions(t *testing.T) {
	table, reg, hm := handoffFixture(t)
	_ = reg.Register(&svcdesc.Description{Name: "a", Provider: "backup-a", Reliability: 0.9, PowerLevel: 1})
	// topic b has no backup.
	table.Open("a", "dying", transaction.Continuous, 0, qos.Benefit{}, epoch)
	table.Open("b", "dying", transaction.Continuous, 0, qos.Benefit{}, epoch)
	table.Open("a", "other-peer", transaction.Continuous, 0, qos.Benefit{}, epoch)

	report, err := hm.HandoffPeer("dying", epoch)
	if err != nil {
		t.Fatal(err)
	}
	if report.Moved != 1 || report.Aborted != 1 || len(report.Results) != 2 {
		t.Fatalf("report = %+v", report)
	}
	// The unrelated peer's transaction is untouched.
	unrelated := table.ByPeer("other-peer")
	if len(unrelated) != 1 {
		t.Fatalf("unrelated transactions affected: %+v", unrelated)
	}
}

func TestHandoffEmptyPeer(t *testing.T) {
	_, _, hm := handoffFixture(t)
	report, err := hm.HandoffPeer("ghost", epoch)
	if err != nil || report.Moved != 0 || report.Aborted != 0 {
		t.Fatalf("report = %+v, %v", report, err)
	}
}

// Property: the queue pops items in non-increasing priority order under
// PriorityOrder and non-decreasing deadline order under EDF, regardless of
// push order.
func TestQueueOrderProperty(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	f := func() bool {
		n := 1 + r.Intn(30)
		pq := NewQueue(PriorityOrder)
		eq := NewQueue(EDF)
		for i := 0; i < n; i++ {
			it := Item{
				Priority: uint8(r.Intn(8)),
				Deadline: epoch.Add(time.Duration(r.Intn(1000)) * time.Millisecond),
			}
			pq.Push(it)
			eq.Push(it)
		}
		lastPrio := 256
		for {
			it, err := pq.Pop()
			if err != nil {
				break
			}
			if int(it.Priority) > lastPrio {
				return false
			}
			lastPrio = int(it.Priority)
		}
		var lastDeadline time.Time
		for {
			it, err := eq.Pop()
			if err != nil {
				break
			}
			if !lastDeadline.IsZero() && it.Deadline.Before(lastDeadline) {
				return false
			}
			lastDeadline = it.Deadline
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a token bucket never grants more than capacity within any
// instant and never goes negative.
func TestTokenBucketProperty(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	f := func() bool {
		rate := 1 + r.Float64()*1000
		capacity := 1 + r.Float64()*1000
		b := NewTokenBucket(rate, capacity, epoch)
		now := epoch
		granted := 0.0
		lastRefill := epoch
		for i := 0; i < 50; i++ {
			step := time.Duration(r.Intn(100)) * time.Millisecond
			now = now.Add(step)
			n := 1 + r.Intn(200)
			if b.Take(n, now) {
				granted += float64(n)
			}
			// Tokens granted since lastRefill cannot exceed capacity +
			// rate*elapsed.
			budget := capacity + rate*now.Sub(lastRefill).Seconds() + 1e-6
			if granted > budget {
				return false
			}
			if b.Available(now) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
