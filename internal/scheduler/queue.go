// Package scheduler implements the paper's scheduling feature (§3.7): the
// middleware decides interaction order from priority and deadline, allocates
// bandwidth with token buckets, admission-tests periodic real-time
// transactions with the rate-monotonic bound (the paper cites Mizunuma's
// rate-monotonic middleware as the first real-time middleware), and — when a
// supplier is about to depart — hands its transactions off to replacement
// suppliers at elevated priority.
package scheduler

import (
	"container/heap"
	"errors"
	"sync"
	"time"

	"ndsm/internal/qos"
)

// Policy selects the dispatch order.
type Policy int

// Dispatch policies.
const (
	// FIFO dispatches in arrival order (the baseline E8 compares against).
	FIFO Policy = iota + 1
	// PriorityOrder dispatches the highest Priority first, FIFO within a
	// priority.
	PriorityOrder
	// EDF dispatches the earliest deadline first (no deadline sorts last).
	EDF
)

var policyNames = [...]string{"?", "fifo", "priority", "edf"}

// String returns the policy name.
func (p Policy) String() string {
	if int(p) > 0 && int(p) < len(policyNames) {
		return policyNames[p]
	}
	return "policy(?)"
}

// Item is one schedulable unit of work.
type Item struct {
	// Priority orders PriorityOrder dispatch; higher first.
	Priority uint8
	// Deadline orders EDF dispatch and defines misses; zero means none.
	Deadline time.Time
	// Size in bytes feeds bandwidth accounting.
	Size int
	// Do is executed at dispatch.
	Do func()
	// Benefit is the item's time-constraint benefit function, evaluated from
	// submission time: under a bounded backlog (DispatcherConfig.MaxBacklog)
	// the lowest-benefit item of the lowest priority sheds first. The zero
	// value never decays.
	Benefit qos.Benefit

	seq uint64    // arrival order, for FIFO and tie-breaking
	enq time.Time // submission time, stamped by Dispatcher.Submit
}

// benefitAt evaluates the item's remaining worth at now, in [0,1].
func (it Item) benefitAt(now time.Time) float64 {
	if it.enq.IsZero() {
		return it.Benefit.At(0)
	}
	return it.Benefit.At(now.Sub(it.enq))
}

// Queue is a policy-ordered queue of items. The zero value is not usable;
// construct with NewQueue. Safe for concurrent use.
type Queue struct {
	mu      sync.Mutex
	policy  Policy
	items   itemHeap
	nextSeq uint64
}

// NewQueue returns an empty queue under the given policy.
func NewQueue(policy Policy) *Queue {
	q := &Queue{policy: policy}
	q.items.policy = policy
	return q
}

// ErrEmpty reports a pop from an empty queue.
var ErrEmpty = errors.New("scheduler: queue empty")

// Push enqueues an item.
func (q *Queue) Push(it Item) {
	q.mu.Lock()
	q.nextSeq++
	it.seq = q.nextSeq
	heap.Push(&q.items, it)
	q.mu.Unlock()
}

// Pop dequeues the next item per policy.
func (q *Queue) Pop() (Item, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items.items) == 0 {
		return Item{}, ErrEmpty
	}
	return heap.Pop(&q.items).(Item), nil
}

// EvictLowest removes and returns the least-valuable queued item — the one
// preemptive overload shedding drops first: lowest Priority, then lowest
// remaining benefit (so decayed work yields before fresh work), then oldest
// arrival. ok=false when the queue is empty.
func (q *Queue) EvictLowest(now time.Time) (Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.items.items)
	if n == 0 {
		return Item{}, false
	}
	worst := 0
	for i := 1; i < n; i++ {
		if shedBefore(q.items.items[i], q.items.items[worst], now) {
			worst = i
		}
	}
	return heap.Remove(&q.items, worst).(Item), true
}

// shedBefore orders overload eviction: a sheds before b.
func shedBefore(a, b Item, now time.Time) bool {
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	ab, bb := a.benefitAt(now), b.benefitAt(now)
	if ab != bb {
		return ab < bb
	}
	return a.seq < b.seq
}

// Len returns the number of queued items.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items.items)
}

// itemHeap orders items per policy.
type itemHeap struct {
	policy Policy
	items  []Item
}

func (h itemHeap) Len() int { return len(h.items) }

func (h itemHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	switch h.policy {
	case PriorityOrder:
		if a.Priority != b.Priority {
			return a.Priority > b.Priority
		}
	case EDF:
		ad, bd := a.Deadline, b.Deadline
		switch {
		case ad.IsZero() && !bd.IsZero():
			return false
		case !ad.IsZero() && bd.IsZero():
			return true
		case !ad.IsZero() && !bd.IsZero() && !ad.Equal(bd):
			return ad.Before(bd)
		}
	}
	return a.seq < b.seq
}

func (h itemHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *itemHeap) Push(x interface{}) { h.items = append(h.items, x.(Item)) }

func (h *itemHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
