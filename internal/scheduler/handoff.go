package scheduler

import (
	"fmt"
	"time"

	"ndsm/internal/discovery"
	"ndsm/internal/qos"
	"ndsm/internal/svcdesc"
	"ndsm/internal/transaction"
)

// HandoffPriority is the elevated priority handoff work is scheduled at —
// §3.7: "if a service is about to be discontinued ... the transactions
// involving it should be either completed, or transferred to different
// services matching the constraints. These interactions can be scheduled
// with high priority".
const HandoffPriority uint8 = 255

// SpecFor maps a transaction to the QoS spec used to find its replacement
// supplier.
type SpecFor func(txn transaction.Txn) *qos.Spec

// HandoffResult describes the outcome for one transaction.
type HandoffResult struct {
	TxnID    uint64
	Topic    string
	OldPeer  string
	NewPeer  string
	Rebound  bool
	ErrorMsg string
}

// HandoffReport aggregates a departure's handling.
type HandoffReport struct {
	Peer    string
	Moved   int
	Aborted int
	Results []HandoffResult
}

// HandoffManager transfers a departing supplier's transactions to
// replacement suppliers discovered and selected under each transaction's
// QoS spec.
type HandoffManager struct {
	table    *transaction.Table
	registry discovery.Resolver
	specFor  SpecFor
}

// NewHandoffManager wires the pieces together. specFor may be nil, in which
// case a name-only query on the transaction's topic is used.
func NewHandoffManager(table *transaction.Table, registry discovery.Resolver, specFor SpecFor) *HandoffManager {
	if specFor == nil {
		specFor = func(txn transaction.Txn) *qos.Spec {
			return &qos.Spec{Query: svcdesc.Query{Name: txn.Topic}}
		}
	}
	return &HandoffManager{table: table, registry: registry, specFor: specFor}
}

// HandoffPeer moves every non-terminal transaction bound to peer onto the
// best alternative supplier; transactions with no feasible alternative are
// aborted (graceful degradation rather than silent stall).
func (h *HandoffManager) HandoffPeer(peer string, now time.Time) (HandoffReport, error) {
	report := HandoffReport{Peer: peer}
	txns := h.table.ByPeer(peer)
	for _, txn := range txns {
		res := HandoffResult{TxnID: txn.ID, Topic: txn.Topic, OldPeer: peer}
		if err := h.table.BeginHandoff(txn.ID); err != nil {
			res.ErrorMsg = err.Error()
			report.Results = append(report.Results, res)
			continue
		}
		newPeer, err := h.findReplacement(txn, peer, now)
		if err != nil {
			_ = h.table.Abort(txn.ID)
			report.Aborted++
			res.ErrorMsg = err.Error()
			report.Results = append(report.Results, res)
			continue
		}
		if err := h.table.CompleteHandoff(txn.ID, newPeer); err != nil {
			res.ErrorMsg = err.Error()
			report.Results = append(report.Results, res)
			continue
		}
		report.Moved++
		res.NewPeer = newPeer
		res.Rebound = true
		report.Results = append(report.Results, res)
	}
	return report, nil
}

func (h *HandoffManager) findReplacement(txn transaction.Txn, oldPeer string, now time.Time) (string, error) {
	spec := h.specFor(txn)
	candidates, err := h.registry.Lookup(&spec.Query)
	if err != nil {
		return "", fmt.Errorf("scheduler: handoff lookup: %w", err)
	}
	// Never rebind to the departing peer.
	filtered := candidates[:0]
	for _, c := range candidates {
		if c.Provider != oldPeer {
			filtered = append(filtered, c)
		}
	}
	best := qos.Select(spec, filtered, now)
	if best == nil {
		return "", fmt.Errorf("scheduler: no feasible replacement for %s", txn.Topic)
	}
	return best.Provider, nil
}
