package scheduler

import (
	"math"
	"sync"
	"time"
)

// TokenBucket allocates bandwidth (§3.7: transactions "possibly allocated
// more bandwidth"): tokens are bytes, refilled at Rate bytes/second up to
// Capacity. Time is passed in explicitly so the bucket is exact and
// deterministic under the virtual clock.
type TokenBucket struct {
	mu       sync.Mutex
	rate     float64 // bytes per second
	capacity float64
	tokens   float64
	last     time.Time
}

// NewTokenBucket returns a full bucket. rate is bytes/second; capacity is
// the burst size in bytes.
func NewTokenBucket(rate, capacity float64, now time.Time) *TokenBucket {
	return &TokenBucket{rate: rate, capacity: capacity, tokens: capacity, last: now}
}

// refillLocked advances the bucket to now.
func (b *TokenBucket) refillLocked(now time.Time) {
	if now.After(b.last) {
		b.tokens = math.Min(b.capacity, b.tokens+b.rate*now.Sub(b.last).Seconds())
		b.last = now
	}
}

// Take consumes n bytes if available, reporting success.
func (b *TokenBucket) Take(n int, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if float64(n) > b.tokens {
		return false
	}
	b.tokens -= float64(n)
	return true
}

// WaitTime returns how long from now until n bytes could be taken (0 when
// available immediately). Requests larger than capacity report the time to
// fill the whole bucket.
func (b *TokenBucket) WaitTime(n int, now time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	need := math.Min(float64(n), b.capacity) - b.tokens
	if need <= 0 {
		return 0
	}
	if b.rate <= 0 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(need / b.rate * float64(time.Second))
}

// Available reports the current token count in bytes.
func (b *TokenBucket) Available(now time.Time) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	return int(b.tokens)
}

// Task is a periodic real-time transaction for admission testing: worst-case
// execution (or transmission) time C every period T.
type Task struct {
	C time.Duration
	T time.Duration
}

// Utilization returns Σ C_i/T_i.
func Utilization(tasks []Task) float64 {
	u := 0.0
	for _, t := range tasks {
		if t.T > 0 {
			u += float64(t.C) / float64(t.T)
		}
	}
	return u
}

// RMBound returns the Liu-Layland rate-monotonic schedulability bound
// n(2^(1/n)-1) for n tasks (1 for n <= 0, approaching ln 2 ≈ 0.693).
func RMBound(n int) float64 {
	if n <= 0 {
		return 1
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// RMAdmissible reports whether the task set passes the rate-monotonic
// utilization test: U ≤ n(2^(1/n)-1). It is sufficient, not necessary; sets
// above the bound may still be schedulable but are rejected.
func RMAdmissible(tasks []Task) bool {
	return Utilization(tasks) <= RMBound(len(tasks))+1e-12
}

// EDFAdmissible reports the earliest-deadline-first bound: U ≤ 1.
func EDFAdmissible(tasks []Task) bool {
	return Utilization(tasks) <= 1+1e-12
}
