package trace

import "sync"

// DefaultCollectorCap is the span ring capacity when none is given.
const DefaultCollectorCap = 4096

// Collector is a bounded ring buffer of finished spans: the newest spans
// win, the oldest are overwritten and counted — a trace buffer that can run
// unattended for an arbitrarily long soak without growing. Safe for
// concurrent use; share one collector across a simulated world's tracers to
// get a single merged timeline.
type Collector struct {
	mu      sync.Mutex
	buf     []Span
	next    int
	full    bool
	total   uint64
	dropped uint64
}

// NewCollector builds a collector holding up to capacity spans
// (DefaultCollectorCap when <= 0).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultCollectorCap
	}
	return &Collector{buf: make([]Span, 0, capacity)}
}

// Record stores a finished span, evicting the oldest when full.
func (c *Collector) Record(s Span) {
	// The stored copy must not retain the live tracer.
	s.tracer = nil
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total++
	if !c.full {
		c.buf = append(c.buf, s)
		if len(c.buf) == cap(c.buf) {
			c.full = true
			c.next = 0
		}
		return
	}
	c.dropped++
	c.buf[c.next] = s
	c.next = (c.next + 1) % len(c.buf)
}

// Spans returns the retained spans in completion order, oldest first.
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, 0, len(c.buf))
	if c.full {
		out = append(out, c.buf[c.next:]...)
		out = append(out, c.buf[:c.next]...)
	} else {
		out = append(out, c.buf...)
	}
	return out
}

// Len reports how many spans are retained.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buf)
}

// Total reports how many spans were ever recorded.
func (c *Collector) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Dropped reports how many spans were evicted by the ring.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Reset discards all retained spans and zeroes the counters.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = c.buf[:0]
	c.next = 0
	c.full = false
	c.total = 0
	c.dropped = 0
}
