// Package trace is the middleware's causal-tracing layer: X-Trace-style
// metadata propagation (see PAPERS.md) with zero dependencies, driven
// entirely by an injected simtime.Clock so virtual-time chaos runs produce
// coherent timelines.
//
// A Tracer mints spans; a span is one timed operation (a call, a discovery
// round, a radio hop) with a trace ID shared by every span in the same
// causal tree, a span ID of its own, and its parent's span ID. Context
// crosses process boundaries in-band through wire.Message.Headers (the
// HeaderTraceID / HeaderSpanID keys — set once at the endpoint layer, so
// every codec carries it for free) and crosses layers within a process
// through the tracer's ambient span stack. Finished spans land in a bounded
// ring-buffer Collector and export as JSONL or Chrome trace-event JSON
// (loadable in chrome://tracing or Perfetto).
//
// Everything is nil-tolerant: a nil *Tracer and a nil *Span are valid
// no-op receivers, so call sites never branch on "is tracing on" and the
// disabled path allocates nothing.
package trace

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ndsm/internal/simtime"
)

// Header keys for in-band context propagation via wire.Message.Headers.
// Values are 16-digit lowercase hex.
const (
	HeaderTraceID = "trace-id"
	HeaderSpanID  = "span-id"
)

// Context is a span's position in a trace: enough to parent a child span on
// the other side of a wire.
type Context struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context identifies a real sampled span.
func (c Context) Valid() bool { return c.TraceID != 0 && c.SpanID != 0 }

// Inject writes c into a header map, allocating one when h is nil. Invalid
// contexts (unsampled or disabled tracing) inject nothing and return h
// unchanged — downstream stays untraced at zero cost.
func Inject(c Context, h map[string]string) map[string]string {
	if !c.Valid() {
		return h
	}
	if h == nil {
		h = make(map[string]string, 2)
	}
	h[HeaderTraceID] = formatID(c.TraceID)
	h[HeaderSpanID] = formatID(c.SpanID)
	return h
}

// Extract reads a context out of a header map; a zero Context means the
// message carried none (or carried garbage — malformed IDs are ignored, not
// errors, because headers travel over lossy fuzzable wires).
func Extract(h map[string]string) Context {
	if len(h) == 0 {
		return Context{}
	}
	tid := parseID(h[HeaderTraceID])
	sid := parseID(h[HeaderSpanID])
	if tid == 0 || sid == 0 {
		return Context{}
	}
	return Context{TraceID: tid, SpanID: sid}
}

// FormatID renders a trace or span ID the way it travels on the wire:
// 16 lowercase hex digits. Carriers that cannot use wire.Message headers
// (e.g. the flood protocol's JSON envelope) embed IDs in this form.
func FormatID(id uint64) string { return formatID(id) }

// ParseID reads a wire-format ID; malformed or empty input yields 0 (the
// invalid ID), never an error — IDs travel over lossy fuzzable paths.
func ParseID(s string) uint64 { return parseID(s) }

func formatID(id uint64) string { return fmt.Sprintf("%016x", id) }

func parseID(s string) uint64 {
	if s == "" {
		return 0
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return v
}

// Span is one timed, attributed operation. Exported fields are the recorded
// artifact; a Span is mutated only by its creating goroutine and becomes
// immutable once End (or EndAt) runs.
type Span struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
	// Name is the operation ("call disc.lookup", "radio.send", ...).
	Name string
	// Node is the tracer name that recorded the span — the process/endpoint
	// row on the exported timeline.
	Node  string
	Start time.Time
	End   time.Time
	// Attrs carries key/value annotations (peer, topic, outcome detail).
	Attrs map[string]string
	// Err is the failure description; empty means the operation succeeded.
	Err string

	tracer *Tracer
	ended  bool
}

// Context returns the span's propagation context (zero for nil / unsampled
// spans, so Inject on it is a no-op).
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return Context{TraceID: s.TraceID, SpanID: s.SpanID}
}

// SetAttr annotates the span. No-op on nil.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[k] = v
}

// SetError marks the span failed. A nil error (or nil span) is a no-op, so
// `sp.SetError(err)` needs no guard at call sites.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.Err = err.Error()
}

// Finish ends the span at the tracer clock's current time and records it.
func (s *Span) Finish() {
	if s == nil || s.ended {
		return
	}
	s.FinishAt(s.tracer.now())
}

// FinishAt ends the span at an explicit instant — netsim uses it to give a
// delayed hop span its scheduled arrival time. Instants before Start are
// clamped to Start (a zero-length span, exported as an instant event).
func (s *Span) FinishAt(at time.Time) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	if at.Before(s.Start) {
		at = s.Start
	}
	s.End = at
	if s.tracer != nil && s.tracer.col != nil {
		s.tracer.col.Record(*s)
	}
}

// Activate pushes the span onto its tracer's ambient stack, making it the
// default parent for spans started without an explicit context — the
// within-process analogue of header propagation. The returned func pops it;
// always call it (defer). Ambient state is per-tracer, so under concurrency
// it is a best-effort parent hint: the deterministic simulated worlds this
// repo traces run their causal chains on one goroutine at a time, where it
// is exact.
func (s *Span) Activate() func() {
	if s == nil || s.tracer == nil {
		return noopRelease
	}
	return s.tracer.push(s.Context())
}

var noopRelease = func() {}

// Options configures a Tracer. The zero value works: real clock, private
// 4096-span collector, every trace sampled.
type Options struct {
	// Name stamps spans' Node field (default "node").
	Name string
	// Clock supplies span timestamps (default real time; pass the world's
	// *simtime.Virtual so traces line up with the fault schedule).
	Clock simtime.Clock
	// Collector receives finished spans; share one across the tracers of a
	// simulated world to get a single merged timeline (default: a fresh
	// collector of DefaultCollectorCap spans).
	Collector *Collector
	// SampleEvery records every Nth root trace (default 1: all). Unsampled
	// traces cost one counter increment; their spans are nil and propagate
	// nothing.
	SampleEvery int
	// Seed differentiates the ID streams of tracers that share a collector
	// (default 1). IDs are deterministic functions of Seed and a counter, so
	// seeded runs yield byte-identical traces.
	Seed int64
}

// Tracer mints spans. Safe for concurrent use; nil is a valid no-op tracer.
type Tracer struct {
	name   string
	clock  simtime.Clock
	col    *Collector
	sample uint64
	seed   uint64

	idCtr   atomic.Uint64
	rootCtr atomic.Uint64

	mu      sync.Mutex
	ambient []Context
}

// New builds a tracer.
func New(o Options) *Tracer {
	if o.Name == "" {
		o.Name = "node"
	}
	if o.Clock == nil {
		o.Clock = simtime.Real{}
	}
	if o.Collector == nil {
		o.Collector = NewCollector(0)
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return &Tracer{
		name:   o.Name,
		clock:  o.Clock,
		col:    o.Collector,
		sample: uint64(o.SampleEvery),
		seed:   uint64(o.Seed),
	}
}

// Name returns the tracer's node name ("" for nil).
func (t *Tracer) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Collector returns the tracer's span sink (nil for a nil tracer).
func (t *Tracer) Collector() *Collector {
	if t == nil {
		return nil
	}
	return t.col
}

func (t *Tracer) now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.clock.Now()
}

// newID derives the next ID with a splitmix64 finalizer over a seeded
// counter: deterministic per (Seed, call order), never zero.
func (t *Tracer) newID() uint64 {
	z := t.idCtr.Add(1)*0x9E3779B97F4A7C15 + t.seed*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// StartSpan starts a span under parent. An invalid parent falls back to the
// tracer's ambient span; with no ambient either, a new root trace starts
// (subject to sampling). Returns nil — a valid no-op span — when tracing is
// disabled or the root was sampled out.
func (t *Tracer) StartSpan(name string, parent Context) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		parent = t.Ambient()
	}
	var traceID, parentID uint64
	if parent.Valid() {
		traceID, parentID = parent.TraceID, parent.SpanID
	} else {
		if t.sample > 1 && (t.rootCtr.Add(1)-1)%t.sample != 0 {
			return nil
		}
		traceID = t.newID()
	}
	return &Span{
		TraceID:  traceID,
		SpanID:   t.newID(),
		ParentID: parentID,
		Name:     name,
		Node:     t.name,
		Start:    t.now(),
		tracer:   t,
	}
}

// Scope starts an ambient-parented span and activates it; the returned func
// deactivates and finishes it. The two-line idiom for tracing a call path:
//
//	sp, done := tracer.Scope("binding.request")
//	defer done()
func (t *Tracer) Scope(name string) (*Span, func()) {
	if t == nil {
		return nil, noopRelease
	}
	sp := t.StartSpan(name, Context{})
	if sp == nil {
		return nil, noopRelease
	}
	release := sp.Activate()
	return sp, func() {
		release()
		sp.Finish()
	}
}

// Event records an instantaneous occurrence (a heartbeat, a suspicion flip,
// a breaker transition) as a zero-length span under the ambient parent — or
// as a root event when nothing is ambient. kv is alternating key/value
// attribute pairs.
func (t *Tracer) Event(name string, kv ...string) {
	if t == nil {
		return
	}
	sp := t.StartSpan(name, Context{})
	if sp == nil {
		return
	}
	for i := 0; i+1 < len(kv); i += 2 {
		sp.SetAttr(kv[i], kv[i+1])
	}
	sp.FinishAt(sp.Start)
}

// Ambient returns the tracer's current ambient context (zero when none).
func (t *Tracer) Ambient() Context {
	if t == nil {
		return Context{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.ambient); n > 0 {
		return t.ambient[n-1]
	}
	return Context{}
}

// push makes ctx ambient and returns the pop. Pops remove by span identity
// (searched from the top) so out-of-order releases cannot corrupt the stack.
func (t *Tracer) push(ctx Context) func() {
	t.mu.Lock()
	t.ambient = append(t.ambient, ctx)
	t.mu.Unlock()
	return func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		for i := len(t.ambient) - 1; i >= 0; i-- {
			if t.ambient[i].SpanID == ctx.SpanID {
				t.ambient = append(t.ambient[:i], t.ambient[i+1:]...)
				return
			}
		}
	}
}

// defaultTracer is the process-wide tracer (nil: tracing disabled), the
// analogue of obs.Default for components not wired with an explicit tracer.
var defaultTracer atomic.Pointer[Tracer]

// Default returns the process-wide tracer, nil when tracing is off.
func Default() *Tracer { return defaultTracer.Load() }

// SetDefault installs (or, with nil, removes) the process-wide tracer.
// ndsm-bench -trace uses it to turn every default-wired component's tracing
// on for a run.
func SetDefault(t *Tracer) { defaultTracer.Store(t) }

// Or resolves an optional explicit tracer against the process default:
// trace.Or(cfg.Tracer) is the call-time idiom for components whose tracer is
// optional configuration.
func Or(t *Tracer) *Tracer {
	if t != nil {
		return t
	}
	return Default()
}

// Ref is an atomically settable tracer cell for components that are
// constructed before tracing is wired (long-lived clients, servers whose
// interceptor chains are fixed at creation). A nil *Ref and an empty Ref
// both resolve to the process default, so interceptors built around a Ref
// follow SetDefault until an explicit tracer is Set.
type Ref struct{ p atomic.Pointer[Tracer] }

// NewRef returns a Ref pre-set to t (which may be nil).
func NewRef(t *Tracer) *Ref {
	r := &Ref{}
	r.Set(t)
	return r
}

// Set installs the explicit tracer (nil reverts to default-following).
func (r *Ref) Set(t *Tracer) {
	if r == nil {
		return
	}
	r.p.Store(t)
}

// Get resolves the cell: the explicit tracer when set, else the process
// default, else nil (tracing off).
func (r *Ref) Get() *Tracer {
	if r == nil {
		return Default()
	}
	return Or(r.p.Load())
}
