package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"os"

	"ndsm/internal/simtime"
)

func newTestTracer(col *Collector) (*Tracer, *simtime.Virtual) {
	vc := simtime.NewVirtual(time.Unix(1000, 0))
	return New(Options{Name: "test", Clock: vc, Collector: col}), vc
}

func TestSpanTreeParentLinks(t *testing.T) {
	col := NewCollector(16)
	tr, vc := newTestTracer(col)

	root := tr.StartSpan("root", Context{})
	if root == nil {
		t.Fatal("root span is nil")
	}
	release := root.Activate()
	vc.Advance(time.Millisecond)

	child := tr.StartSpan("child", Context{}) // ambient parent
	vc.Advance(time.Millisecond)
	grand := tr.StartSpan("grand", child.Context()) // explicit parent
	vc.Advance(time.Millisecond)
	grand.Finish()
	child.Finish()
	release()
	root.Finish()

	spans := col.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	r, c, g := byName["root"], byName["child"], byName["grand"]
	if r.TraceID == 0 || c.TraceID != r.TraceID || g.TraceID != r.TraceID {
		t.Fatalf("trace IDs not shared: root=%x child=%x grand=%x", r.TraceID, c.TraceID, g.TraceID)
	}
	if r.ParentID != 0 {
		t.Errorf("root has parent %x, want 0", r.ParentID)
	}
	if c.ParentID != r.SpanID {
		t.Errorf("child parent = %x, want root span %x", c.ParentID, r.SpanID)
	}
	if g.ParentID != c.SpanID {
		t.Errorf("grand parent = %x, want child span %x", g.ParentID, c.SpanID)
	}
	// Virtual-clock timestamps: completion order is grand, child, root.
	if !spans[0].End.Before(spans[2].End) && !spans[0].End.Equal(spans[2].End) {
		t.Errorf("span order not by completion: %v vs %v", spans[0].End, spans[2].End)
	}
	if got := r.End.Sub(r.Start); got != 3*time.Millisecond {
		t.Errorf("root duration = %v, want 3ms (virtual clock)", got)
	}
}

func TestInjectExtractRoundTrip(t *testing.T) {
	c := Context{TraceID: 0xdeadbeefcafe, SpanID: 0x42}
	h := Inject(c, nil)
	if h[HeaderTraceID] != "0000deadbeefcafe" || h[HeaderSpanID] != "0000000000000042" {
		t.Fatalf("unexpected headers: %v", h)
	}
	if got := Extract(h); got != c {
		t.Fatalf("round trip: got %+v, want %+v", got, c)
	}

	// Invalid context injects nothing.
	if h := Inject(Context{}, nil); h != nil {
		t.Errorf("invalid context injected headers: %v", h)
	}

	// Malformed / partial headers extract to zero, never panic.
	for _, h := range []map[string]string{
		nil,
		{},
		{HeaderTraceID: "xyz", HeaderSpanID: "0000000000000042"},
		{HeaderTraceID: "0000000000000042"},
		{HeaderSpanID: "0000000000000042"},
		{HeaderTraceID: "0000000000000000", HeaderSpanID: "0000000000000042"},
		{HeaderTraceID: strings.Repeat("f", 17), HeaderSpanID: "1"},
		{HeaderTraceID: "-1", HeaderSpanID: "1"},
	} {
		if got := Extract(h); got.Valid() {
			t.Errorf("Extract(%v) = %+v, want invalid", h, got)
		}
	}
}

func TestFormatParseID(t *testing.T) {
	for _, id := range []uint64{1, 0x42, ^uint64(0)} {
		s := FormatID(id)
		if len(s) != 16 || s != strings.ToLower(s) {
			t.Errorf("FormatID(%x) = %q, want 16 lowercase hex digits", id, s)
		}
		if got := ParseID(s); got != id {
			t.Errorf("ParseID(FormatID(%x)) = %x", id, got)
		}
	}
	if got := ParseID(""); got != 0 {
		t.Errorf("ParseID(\"\") = %x, want 0", got)
	}
	if got := ParseID("not-hex"); got != 0 {
		t.Errorf("ParseID(garbage) = %x, want 0", got)
	}
}

func TestCollectorRingWrap(t *testing.T) {
	col := NewCollector(4)
	tr, vc := newTestTracer(col)
	for i := 0; i < 10; i++ {
		sp := tr.StartSpan("op", Context{})
		sp.SetAttr("i", FormatID(uint64(i)))
		vc.Advance(time.Millisecond)
		sp.Finish()
	}
	if col.Len() != 4 {
		t.Fatalf("Len = %d, want 4", col.Len())
	}
	if col.Total() != 10 {
		t.Fatalf("Total = %d, want 10", col.Total())
	}
	if col.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", col.Dropped())
	}
	spans := col.Spans()
	// Oldest-first: the survivors are iterations 6..9.
	for i, s := range spans {
		if want := FormatID(uint64(6 + i)); s.Attrs["i"] != want {
			t.Errorf("spans[%d].Attrs[i] = %s, want %s", i, s.Attrs["i"], want)
		}
		if s.tracer != nil {
			t.Errorf("spans[%d] retains its tracer", i)
		}
	}
	col.Reset()
	if col.Len() != 0 || col.Total() != 0 || col.Dropped() != 0 {
		t.Errorf("Reset left state: len=%d total=%d dropped=%d", col.Len(), col.Total(), col.Dropped())
	}
}

func TestSampling(t *testing.T) {
	col := NewCollector(64)
	tr := New(Options{Name: "s", Collector: col, SampleEvery: 3})
	kept := 0
	for i := 0; i < 9; i++ {
		sp := tr.StartSpan("root", Context{})
		if sp != nil {
			kept++
			// Children of a sampled trace are always recorded.
			ch := tr.StartSpan("child", sp.Context())
			if ch == nil {
				t.Fatal("child of sampled root was dropped")
			}
			ch.Finish()
			sp.Finish()
		}
	}
	if kept != 3 {
		t.Errorf("kept %d of 9 roots with SampleEvery=3, want 3", kept)
	}
	if got := col.Total(); got != 6 {
		t.Errorf("recorded %d spans, want 6 (3 roots + 3 children)", got)
	}
}

func TestNilTracerAndSpanAreNoops(t *testing.T) {
	var tr *Tracer
	if sp := tr.StartSpan("x", Context{}); sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	sp, done := tr.Scope("x")
	if sp != nil {
		t.Fatal("nil tracer Scope minted a span")
	}
	done()
	tr.Event("x", "k", "v")
	if tr.Collector() != nil || tr.Name() != "" || tr.Ambient().Valid() {
		t.Error("nil tracer accessors not zero")
	}

	var s *Span
	s.SetAttr("k", "v")
	s.SetError(errors.New("boom"))
	s.Finish()
	s.FinishAt(time.Now())
	s.Activate()()
	if s.Context().Valid() {
		t.Error("nil span context is valid")
	}
}

func TestScopeAndEvent(t *testing.T) {
	col := NewCollector(16)
	tr, vc := newTestTracer(col)

	sp, done := tr.Scope("outer")
	if sp == nil {
		t.Fatal("Scope returned nil span with tracing on")
	}
	vc.Advance(2 * time.Millisecond)
	tr.Event("tick", "peer", "n1", "phi", "3.14")
	done()

	spans := col.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	ev, outer := spans[0], spans[1]
	if ev.Name != "tick" || outer.Name != "outer" {
		t.Fatalf("unexpected order: %s, %s", ev.Name, outer.Name)
	}
	if ev.ParentID != outer.SpanID || ev.TraceID != outer.TraceID {
		t.Errorf("event not parented under ambient scope: parent=%x want %x", ev.ParentID, outer.SpanID)
	}
	if !ev.End.Equal(ev.Start) {
		t.Errorf("event has nonzero duration: %v", ev.End.Sub(ev.Start))
	}
	if ev.Attrs["peer"] != "n1" || ev.Attrs["phi"] != "3.14" {
		t.Errorf("event attrs = %v", ev.Attrs)
	}
	if tr.Ambient().Valid() {
		t.Error("ambient stack not empty after done()")
	}
}

func TestSetErrorAndFinishIdempotent(t *testing.T) {
	col := NewCollector(16)
	tr, vc := newTestTracer(col)
	sp := tr.StartSpan("op", Context{})
	sp.SetError(nil) // no-op
	sp.SetError(errors.New("dropped by radio"))
	vc.Advance(time.Millisecond)
	sp.Finish()
	sp.Finish() // second finish must not double-record
	if col.Total() != 1 {
		t.Fatalf("double Finish recorded %d spans", col.Total())
	}
	if got := col.Spans()[0].Err; got != "dropped by radio" {
		t.Errorf("Err = %q", got)
	}
}

func TestFinishAtClampsToStart(t *testing.T) {
	col := NewCollector(4)
	tr, _ := newTestTracer(col)
	sp := tr.StartSpan("op", Context{})
	sp.FinishAt(sp.Start.Add(-time.Hour))
	s := col.Spans()[0]
	if !s.End.Equal(s.Start) {
		t.Errorf("End %v not clamped to Start %v", s.End, s.Start)
	}
}

func TestDeterministicIDs(t *testing.T) {
	mk := func(seed int64) []uint64 {
		tr := New(Options{Seed: seed, Collector: NewCollector(4)})
		var ids []uint64
		for i := 0; i < 4; i++ {
			ids = append(ids, tr.newID())
		}
		return ids
	}
	a, b := mk(7), mk(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %x vs %x", i, a[i], b[i])
		}
		if a[i] == 0 {
			t.Fatalf("zero ID minted at %d", i)
		}
	}
	c := mk(8)
	if a[0] == c[0] {
		t.Error("different seeds produced the same first ID")
	}
}

func TestRefAndDefault(t *testing.T) {
	prev := Default()
	defer SetDefault(prev)
	SetDefault(nil)

	var nilRef *Ref
	if nilRef.Get() != nil {
		t.Error("nil Ref with no default should resolve nil")
	}
	r := NewRef(nil)
	if r.Get() != nil {
		t.Error("empty Ref with no default should resolve nil")
	}

	dflt := New(Options{Name: "default", Collector: NewCollector(4)})
	SetDefault(dflt)
	if r.Get() != dflt {
		t.Error("empty Ref should follow the process default")
	}
	if nilRef.Get() != dflt {
		t.Error("nil Ref should follow the process default")
	}

	explicit := New(Options{Name: "explicit", Collector: NewCollector(4)})
	r.Set(explicit)
	if r.Get() != explicit {
		t.Error("Set tracer should win over default")
	}
	r.Set(nil)
	if r.Get() != dflt {
		t.Error("Set(nil) should revert to default-following")
	}

	if Or(explicit) != explicit || Or(nil) != dflt {
		t.Error("Or resolution wrong")
	}
}

func TestWriteJSONL(t *testing.T) {
	col := NewCollector(16)
	tr, vc := newTestTracer(col)
	sp := tr.StartSpan("call", Context{})
	sp.SetAttr("topic", "echo")
	vc.Advance(5 * time.Millisecond)
	sp.Finish()
	ch := tr.StartSpan("hop", sp.Context())
	ch.SetError(errors.New("lossy"))
	ch.Finish()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, col.Spans()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var first struct {
		Trace  string            `json:"trace"`
		Span   string            `json:"span"`
		Parent string            `json:"parent"`
		Name   string            `json:"name"`
		Node   string            `json:"node"`
		DurUS  int64             `json:"dur_us"`
		Attrs  map[string]string `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if first.Name != "call" || first.Node != "test" || first.Parent != "" {
		t.Errorf("line 1 = %+v", first)
	}
	if first.DurUS != 5000 {
		t.Errorf("dur_us = %d, want 5000", first.DurUS)
	}
	if first.Attrs["topic"] != "echo" {
		t.Errorf("attrs = %v", first.Attrs)
	}
	var second struct {
		Trace  string `json:"trace"`
		Parent string `json:"parent"`
		Error  string `json:"error"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if second.Trace != first.Trace || second.Parent != first.Span {
		t.Errorf("child links wrong: %+v (parent should be %s)", second, first.Span)
	}
	if second.Error != "lossy" {
		t.Errorf("error = %q", second.Error)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	colA := NewCollector(16)
	vc := simtime.NewVirtual(time.Unix(2000, 0))
	trA := New(Options{Name: "alpha", Clock: vc, Collector: colA, Seed: 1})
	trB := New(Options{Name: "beta", Clock: vc, Collector: colA, Seed: 2})

	sp := trA.StartSpan("client.call", Context{})
	vc.Advance(3 * time.Millisecond)
	remote := trB.StartSpan("server.handle", sp.Context())
	vc.Advance(time.Millisecond)
	remote.Finish()
	trB.Event("beat") // instant event, its own trace
	sp.Finish()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, colA.Spans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   int64             `json:"ts"`
			Dur  int64             `json:"dur"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var procs []string
	byName := map[string]int{}
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				procs = append(procs, ev.Args["name"])
			}
		case "X", "i":
			byName[ev.Name] = i
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if len(procs) != 2 || procs[0] != "beta" && procs[0] != "alpha" {
		t.Errorf("process rows = %v, want alpha and beta", procs)
	}
	for _, name := range []string{"client.call", "server.handle", "beat"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("missing event %q", name)
		}
	}
	call := doc.TraceEvents[byName["client.call"]]
	handle := doc.TraceEvents[byName["server.handle"]]
	beat := doc.TraceEvents[byName["beat"]]
	if call.Ph != "X" || call.Dur != 4000 {
		t.Errorf("client.call ph=%s dur=%d, want X/4000us", call.Ph, call.Dur)
	}
	if beat.Ph != "i" {
		t.Errorf("beat ph=%s, want i (instant)", beat.Ph)
	}
	if handle.Args["parent"] != call.Args["span"] || handle.Args["trace"] != call.Args["trace"] {
		t.Errorf("cross-node links lost: handle=%v call=%v", handle.Args, call.Args)
	}
	if call.PID == handle.PID {
		t.Error("alpha and beta share a pid row")
	}
}

func TestWriteChromeFile(t *testing.T) {
	col := NewCollector(4)
	tr, _ := newTestTracer(col)
	tr.Event("only")
	path := t.TempDir() + "/trace.json"
	if err := WriteChromeFile(path, col.Spans()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("file not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Error("missing traceEvents key")
	}
}
