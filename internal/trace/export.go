package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// jsonSpan is the JSONL export shape: one object per line, IDs in hex so
// they grep against the on-wire header values.
type jsonSpan struct {
	Trace   string            `json:"trace"`
	Span    string            `json:"span"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	Node    string            `json:"node,omitempty"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Error   string            `json:"error,omitempty"`
}

// WriteJSONL writes one JSON object per span — the diffable, grep-friendly
// form (timestamps in microseconds since the Unix epoch of the span clock).
func WriteJSONL(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	for _, s := range spans {
		js := jsonSpan{
			Trace:   formatID(s.TraceID),
			Span:    formatID(s.SpanID),
			Name:    s.Name,
			Node:    s.Node,
			StartUS: s.Start.UnixMicro(),
			DurUS:   s.End.Sub(s.Start).Microseconds(),
			Attrs:   s.Attrs,
			Error:   s.Err,
		}
		if s.ParentID != 0 {
			js.Parent = formatID(s.ParentID)
		}
		if err := enc.Encode(js); err != nil {
			return fmt.Errorf("trace: write jsonl: %w", err)
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace-event format (the
// "traceEvents" array understood by chrome://tracing and Perfetto).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  *int64            `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
	Cat  string            `json:"cat,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the spans as a Chrome trace-event JSON document:
// open chrome://tracing (or https://ui.perfetto.dev) and load the file to
// see the causal timeline. Each tracer Node becomes a process row and each
// trace becomes a thread track within it, so one user-level call reads as
// one left-to-right cascade across node rows. Zero-length spans (Events)
// render as instant markers.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	pids := map[string]int{}
	tids := map[string]int{}
	doc := chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, s := range spans {
		node := s.Node
		if node == "" {
			node = "node"
		}
		pid, ok := pids[node]
		if !ok {
			pid = len(pids) + 1
			pids[node] = pid
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]string{"name": node},
			})
		}
		tkey := fmt.Sprintf("%s/%016x", node, s.TraceID)
		tid, ok := tids[tkey]
		if !ok {
			tid = len(tids) + 1
			tids[tkey] = tid
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]string{"name": "trace " + formatID(s.TraceID)},
			})
		}
		args := map[string]string{
			"trace": formatID(s.TraceID),
			"span":  formatID(s.SpanID),
		}
		if s.ParentID != 0 {
			args["parent"] = formatID(s.ParentID)
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		if s.Err != "" {
			args["error"] = s.Err
		}
		ev := chromeEvent{
			Name: s.Name,
			TS:   s.Start.UnixMicro(),
			PID:  pid,
			TID:  tid,
			Args: args,
			Cat:  "ndsm",
		}
		if dur := s.End.Sub(s.Start).Microseconds(); dur > 0 {
			ev.Ph = "X"
			ev.Dur = &dur
		} else {
			ev.Ph = "i"
			ev.S = "t"
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("trace: write chrome trace: %w", err)
	}
	return nil
}

// WriteChromeFile writes the spans as a Chrome trace-event file at path —
// what ndsm-bench -trace and the chaos failure-seed dumps produce.
func WriteChromeFile(path string, spans []Span) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: create %s: %w", path, err)
	}
	if err := WriteChromeTrace(f, spans); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace: close %s: %w", path, err)
	}
	return nil
}
