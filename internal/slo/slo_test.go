package slo

import (
	"testing"
	"time"

	"ndsm/internal/endpoint"
	"ndsm/internal/obs"
	"ndsm/internal/simtime"
	"ndsm/internal/telemetry"
)

// harness is one aggregator + engine pair on a shared virtual clock, with a
// per-node report sequencer.
type harness struct {
	t   *testing.T
	vc  *simtime.Virtual
	agg *telemetry.Aggregator
	eng *Engine
	seq map[string]uint64
}

func newHarness(t *testing.T, staleAfter time.Duration) *harness {
	t.Helper()
	vc := simtime.NewVirtual(time.Unix(0, 0))
	agg := telemetry.NewAggregator(telemetry.AggregatorOptions{
		Clock:      vc,
		StaleAfter: staleAfter,
		Registry:   obs.NewRegistry(),
	})
	eng, err := New(Options{Aggregator: agg, Clock: vc, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &harness{t: t, vc: vc, agg: agg, eng: eng, seq: make(map[string]uint64)}
}

// report ingests one report for node with counter deltas, stamped now.
func (h *harness) report(node string, counters map[string]int64, gauges map[string]float64) {
	h.t.Helper()
	h.seq[node]++
	if err := h.agg.Ingest(&telemetry.Report{
		Node:     node,
		Seq:      h.seq[node],
		Time:     h.vc.Now(),
		Counters: counters,
		Gauges:   gauges,
	}); err != nil {
		h.t.Fatalf("ingest %s: %v", node, err)
	}
}

func missObjective() Objective {
	return Objective{
		Name:        "ctl-miss",
		Kind:        KindRatio,
		Node:        "n1",
		BadSeries:   "ctl.miss",
		TotalSeries: "ctl.total",
		Budget:      0.1,
		Window:      10 * time.Second,
		ShortWindow: 2 * time.Second,
		WarnBurn:    1,
		CritBurn:    4,
		ClearAfter:  2,
	}
}

// TestRatioBurnRateWindows walks a deadline-miss ratio objective across its
// window boundaries: healthy traffic stays ok, a sustained 100% miss burst
// trips critical once both windows see it, and once the burst ages out of
// the long window the alert steps all the way back down.
func TestRatioBurnRateWindows(t *testing.T) {
	h := newHarness(t, time.Hour)
	if err := h.eng.Add(missObjective()); err != nil {
		t.Fatal(err)
	}

	// 5s of healthy traffic: burn 0, severity ok, no transitions.
	for i := 0; i < 5; i++ {
		h.vc.Advance(time.Second)
		h.report("n1", map[string]int64{"ctl.total": 10}, nil)
		if tr := h.eng.Evaluate(); len(tr) != 0 {
			t.Fatalf("healthy traffic produced transitions: %+v", tr)
		}
	}
	if sev := h.eng.SeverityOf("ctl-miss"); sev != OK {
		t.Fatalf("severity = %v, want ok", sev)
	}

	// 100% misses. One bad second pushes the long-window burn to
	// (10/60)/0.1 = 1.67 — warning territory but short of critical's 4.
	h.vc.Advance(time.Second)
	h.report("n1", map[string]int64{"ctl.total": 10, "ctl.miss": 10}, nil)
	tr := h.eng.Evaluate()
	if len(tr) != 1 || tr[0].To != Warning {
		t.Fatalf("after 1 bad second: transitions %+v, want one to warning", tr)
	}

	// More bad seconds. The long burn crawls up — (30/80)/0.1 = 3.75 after
	// the 3rd, (40/90)/0.1 = 4.44 after the 4th — so critical lands exactly
	// when the long window crosses 4, the short window having been all-bad
	// for a while: a boundary crossing, not a spike reaction.
	for i := 0; i < 2; i++ {
		h.vc.Advance(time.Second)
		h.report("n1", map[string]int64{"ctl.total": 10, "ctl.miss": 10}, nil)
		if tr := h.eng.Evaluate(); len(tr) != 0 {
			t.Fatalf("bad second %d transitioned early: %+v", i+2, tr)
		}
	}
	h.vc.Advance(time.Second)
	h.report("n1", map[string]int64{"ctl.total": 10, "ctl.miss": 10}, nil)
	tr = h.eng.Evaluate()
	if len(tr) != 1 || tr[0].To != Critical || tr[0].From != Warning {
		t.Fatalf("after 3 bad seconds: transitions %+v, want warning→critical", tr)
	}
	if tr[0].BurnShort < 4 || tr[0].BurnLong < 4 {
		t.Fatalf("critical transition carries burns %.2f/%.2f, want >= 4", tr[0].BurnLong, tr[0].BurnShort)
	}

	// Healthy again. The short window clears within 2s but the long window
	// still holds the burst, so the level must ratchet down one step per
	// ClearAfter evaluations — not snap.
	var downs []Transition
	for i := 0; i < 12; i++ {
		h.vc.Advance(time.Second)
		h.report("n1", map[string]int64{"ctl.total": 10}, nil)
		downs = append(downs, h.eng.Evaluate()...)
	}
	if len(downs) != 2 || downs[0].To != Warning || downs[1].To != OK {
		t.Fatalf("recovery transitions %+v, want critical→warning→ok", downs)
	}
	if sev := h.eng.SeverityOf("ctl-miss"); sev != OK {
		t.Fatalf("post-recovery severity = %v, want ok", sev)
	}
}

// TestHysteresisNoFlapping oscillates the miss rate right across the
// critical threshold every other second. The state machine must latch
// critical and emit no further transitions while the oscillation lasts:
// upgrades reset the calm counter before it reaches ClearAfter.
func TestHysteresisNoFlapping(t *testing.T) {
	h := newHarness(t, time.Hour)
	o := missObjective()
	o.ShortWindow = time.Second // judge only the newest report
	if err := h.eng.Add(o); err != nil {
		t.Fatal(err)
	}

	// Drive straight to critical with an all-bad burst.
	for i := 0; i < 4; i++ {
		h.vc.Advance(time.Second)
		h.report("n1", map[string]int64{"ctl.total": 10, "ctl.miss": 10}, nil)
		h.eng.Evaluate()
	}
	if sev := h.eng.SeverityOf("ctl-miss"); sev != Critical {
		t.Fatalf("severity = %v, want critical", sev)
	}

	// Oscillate: all-bad one second, all-good the next, 20 times. The calm
	// counter (ClearAfter 2) must keep resetting — zero transitions.
	for i := 0; i < 20; i++ {
		h.vc.Advance(time.Second)
		miss := int64(0)
		if i%2 == 0 {
			miss = 10
		}
		h.report("n1", map[string]int64{"ctl.total": 10, "ctl.miss": miss}, nil)
		if tr := h.eng.Evaluate(); len(tr) != 0 {
			t.Fatalf("oscillation tick %d flapped: %+v", i, tr)
		}
	}
	if sev := h.eng.SeverityOf("ctl-miss"); sev != Critical {
		t.Fatalf("severity after oscillation = %v, want critical held", sev)
	}
}

// TestReplayedTelemetryNeverAdvancesWindows replays an already-ingested
// sequence number with inflated counters: the aggregator must reject it and
// the engine's window values must not move — replayed telemetry cannot
// forge a burn.
func TestReplayedTelemetryNeverAdvancesWindows(t *testing.T) {
	h := newHarness(t, time.Hour)
	if err := h.eng.Add(missObjective()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		h.vc.Advance(time.Second)
		h.report("n1", map[string]int64{"ctl.total": 10}, nil)
	}
	h.eng.Evaluate()
	before := h.eng.States()[0]

	// Replay seq 3 (and a stale seq 1) carrying a fabricated all-miss
	// burst. Both must bounce off the aggregator's monotonicity check.
	for _, seq := range []uint64{3, 1} {
		err := h.agg.Ingest(&telemetry.Report{
			Node:     "n1",
			Seq:      seq,
			Time:     h.vc.Now().Add(time.Hour),
			Counters: map[string]int64{"ctl.total": 1000, "ctl.miss": 1000},
		})
		if err == nil {
			t.Fatalf("replayed seq %d was accepted", seq)
		}
	}
	if tr := h.eng.Evaluate(); len(tr) != 0 {
		t.Fatalf("replay caused transitions: %+v", tr)
	}
	after := h.eng.States()[0]
	if after.BurnLong != before.BurnLong || after.BurnShort != before.BurnShort || after.BadFraction != before.BadFraction {
		t.Fatalf("replay moved windows: before %+v after %+v", before, after)
	}
	if after.Severity != OK {
		t.Fatalf("severity after replay = %v, want ok", after.Severity)
	}
}

// TestFreshnessObjective silences a node and expects the per-node freshness
// alert to go critical within a bounded number of evaluations, then recover
// after reports resume.
func TestFreshnessObjective(t *testing.T) {
	h := newHarness(t, 3*time.Second)
	err := h.eng.Add(Objective{
		Name:        "fresh",
		Kind:        KindFreshness,
		Budget:      0.05,
		Window:      10 * time.Second,
		ShortWindow: 2 * time.Second,
		CritBurn:    10, // stale half the window
		ClearAfter:  2,
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		h.vc.Advance(time.Second)
		h.report("n1", map[string]int64{"ticks": 1}, nil)
		if tr := h.eng.Evaluate(); len(tr) != 0 {
			t.Fatalf("fresh node produced transitions: %+v", tr)
		}
	}

	// Silence the node. Staleness begins 3s later; critical requires half
	// of both windows stale — bounded detection within the long window.
	critAt := -1
	for i := 0; i < 15; i++ {
		h.vc.Advance(time.Second)
		for _, tr := range h.eng.Evaluate() {
			if tr.To == Critical {
				critAt = i
			}
		}
		if critAt >= 0 {
			break
		}
	}
	if critAt < 0 {
		t.Fatal("freshness alert never reached critical")
	}
	if critAt > 12 {
		t.Fatalf("critical after %d silent seconds, want bounded by staleAfter+window/2", critAt)
	}

	// Resume publishing: the alert must fully recover.
	recovered := false
	for i := 0; i < 30 && !recovered; i++ {
		h.vc.Advance(time.Second)
		h.report("n1", map[string]int64{"ticks": 1}, nil)
		h.eng.Evaluate()
		recovered = h.eng.SeverityOf("fresh") == OK
	}
	if !recovered {
		t.Fatal("freshness alert never recovered after reports resumed")
	}
}

// TestThresholdObjective drives a published p99 gauge over its limit and
// expects the latency objective to page, carrying the offending fraction.
func TestThresholdObjective(t *testing.T) {
	h := newHarness(t, time.Hour)
	err := h.eng.Add(Objective{
		Name:        "p99-latency",
		Kind:        KindThreshold,
		Node:        "n1",
		Series:      "rpc.latency.p99",
		Max:         50,
		Budget:      0.25, // a quarter of samples may exceed
		Window:      8 * time.Second,
		ShortWindow: 2 * time.Second,
		WarnBurn:    1,
		CritBurn:    3,
		ClearAfter:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		h.vc.Advance(time.Second)
		h.report("n1", nil, map[string]float64{"rpc.latency.p99": 12})
		h.eng.Evaluate()
	}
	if sev := h.eng.SeverityOf("p99-latency"); sev != OK {
		t.Fatalf("fast p99 severity = %v, want ok", sev)
	}
	critical := false
	for i := 0; i < 8 && !critical; i++ {
		h.vc.Advance(time.Second)
		h.report("n1", nil, map[string]float64{"rpc.latency.p99": 180})
		for _, tr := range h.eng.Evaluate() {
			critical = critical || tr.To == Critical
		}
	}
	if !critical {
		t.Fatal("slow p99 never reached critical")
	}
}

// TestAlertsFeedAndSummary checks the subscription feed delivers
// transitions and the severity digest matches the live states.
func TestAlertsFeedAndSummary(t *testing.T) {
	h := newHarness(t, time.Hour)
	if err := h.eng.Add(missObjective()); err != nil {
		t.Fatal(err)
	}
	ch, cancel := h.eng.Alerts().Subscribe(8)
	defer cancel()
	var hooked []Transition
	h.eng.Alerts().Notify(func(tr Transition) { hooked = append(hooked, tr) })

	for i := 0; i < 4; i++ {
		h.vc.Advance(time.Second)
		h.report("n1", map[string]int64{"ctl.total": 10, "ctl.miss": 10}, nil)
		h.eng.Evaluate()
	}
	if len(hooked) == 0 {
		t.Fatal("Notify callback saw no transitions")
	}
	select {
	case tr := <-ch:
		if tr.Objective != "ctl-miss" {
			t.Fatalf("feed delivered %+v", tr)
		}
	default:
		t.Fatal("subscription channel empty")
	}
	sum := h.eng.Summary()
	if sum.Critical != 1 || sum.OK != 0 {
		t.Fatalf("summary %+v, want 1 critical", sum)
	}
	states := h.eng.States()
	if len(states) != 1 || states[0].Severity != Critical {
		t.Fatalf("states %+v", states)
	}
}

// TestEvaluateNoObjectivesZeroAlloc is the satellite guard: an engine with
// nothing configured must evaluate for free — the alerting plane costs
// zero when disabled.
func TestEvaluateNoObjectivesZeroAlloc(t *testing.T) {
	h := newHarness(t, time.Hour)
	if allocs := testing.AllocsPerRun(1000, func() { h.eng.Evaluate() }); allocs != 0 {
		t.Fatalf("Evaluate with no objectives allocates %.1f/op, want 0", allocs)
	}
}

// TestParseObjectives round-trips the declarative config form.
func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives([]byte(`[
		{"name":"avail","kind":"ratio","badSeries":"err","totalSeries":"req","budget":0.001,"window":"5m"},
		{"name":"lat","kind":"threshold","series":"rpc.p99","max":50,"window":"1m","shortWindow":"10s"},
		{"name":"fresh","kind":"freshness"}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 || objs[0].Kind != KindRatio || objs[1].Kind != KindThreshold || objs[2].Kind != KindFreshness {
		t.Fatalf("parsed %+v", objs)
	}
	if objs[0].Window != 5*time.Minute || objs[1].ShortWindow != 10*time.Second {
		t.Fatalf("durations wrong: %+v", objs)
	}
	if _, err := ParseObjectives([]byte(`[{"name":"x","kind":"nope"}]`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ParseObjectives([]byte(`[{"name":"x","kind":"ratio","badSeries":"a","totalSeries":"b","window":"soon"}]`)); err == nil {
		t.Fatal("bad duration accepted")
	}
}

// TestAddValidation rejects malformed objectives and duplicates.
func TestAddValidation(t *testing.T) {
	h := newHarness(t, time.Hour)
	if err := h.eng.Add(Objective{Kind: KindRatio}); err == nil {
		t.Fatal("nameless objective accepted")
	}
	if err := h.eng.Add(Objective{Name: "r", Kind: KindRatio}); err == nil {
		t.Fatal("ratio without series accepted")
	}
	if err := h.eng.Add(Objective{Name: "t", Kind: KindThreshold}); err == nil {
		t.Fatal("threshold without series accepted")
	}
	if err := h.eng.Add(Objective{Name: "b", Kind: KindFreshness, Budget: 7}); err == nil {
		t.Fatal("budget > 1 accepted")
	}
	if err := h.eng.Add(Objective{Name: "f", Kind: KindFreshness}); err != nil {
		t.Fatal(err)
	}
	if err := h.eng.Add(Objective{Name: "f", Kind: KindFreshness}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

// fakeLaneServer records quota mutations for adapter tests.
type fakeLaneServer struct {
	quota map[endpoint.Lane]int
	sets  int
}

func (f *fakeLaneServer) SetLaneQuota(lane endpoint.Lane, q int) bool {
	if f.quota == nil {
		f.quota = make(map[endpoint.Lane]int)
	}
	f.quota[lane] = q
	f.sets++
	return true
}
func (f *fakeLaneServer) LaneQuota(lane endpoint.Lane) int { return f.quota[lane] }

// TestQuotaAdapterBoostAndDecay drives the end-to-end reactive loop: the
// deadline-miss objective burns → the control lane's quota jumps to Boost;
// recovery → the quota decays back to Base one step per calm evaluation.
func TestQuotaAdapterBoostAndDecay(t *testing.T) {
	h := newHarness(t, time.Hour)
	if err := h.eng.Add(missObjective()); err != nil {
		t.Fatal(err)
	}
	srv := &fakeLaneServer{}
	ad, err := NewQuotaAdapter(h.eng, QuotaAdapterOptions{
		Objective: "ctl-miss",
		Base:      1,
		Boost:     4,
		Servers:   []LaneServer{srv},
		Registry:  obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if srv.quota[endpoint.LaneControl] != 1 {
		t.Fatalf("base quota not applied: %+v", srv.quota)
	}

	// Burn: sustained misses push the objective to warning then critical;
	// the adapter must boost on the first burning evaluation.
	for i := 0; i < 3; i++ {
		h.vc.Advance(time.Second)
		h.report("n1", map[string]int64{"ctl.total": 10, "ctl.miss": 10}, nil)
		h.eng.Evaluate()
	}
	if srv.quota[endpoint.LaneControl] != 4 || ad.Quota() != 4 {
		t.Fatalf("quota while burning = %d (server %d), want boost 4", ad.Quota(), srv.quota[endpoint.LaneControl])
	}

	// Recover: after the alert steps down, each calm evaluation walks the
	// quota back by one until Base.
	seen := map[int]bool{}
	for i := 0; i < 40; i++ {
		h.vc.Advance(time.Second)
		h.report("n1", map[string]int64{"ctl.total": 10}, nil)
		h.eng.Evaluate()
		seen[ad.Quota()] = true
	}
	if ad.Quota() != 1 || srv.quota[endpoint.LaneControl] != 1 {
		t.Fatalf("quota after recovery = %d (server %d), want base 1", ad.Quota(), srv.quota[endpoint.LaneControl])
	}
	for _, step := range []int{3, 2} {
		if !seen[step] {
			t.Fatalf("decay skipped quota %d: saw %+v", step, seen)
		}
	}
}

// TestQuotaAdapterValidation rejects inverted boost configurations.
func TestQuotaAdapterValidation(t *testing.T) {
	h := newHarness(t, time.Hour)
	if _, err := NewQuotaAdapter(nil, QuotaAdapterOptions{}); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewQuotaAdapter(h.eng, QuotaAdapterOptions{Objective: "x"}); err == nil {
		t.Fatal("no servers accepted")
	}
	if _, err := NewQuotaAdapter(h.eng, QuotaAdapterOptions{
		Objective: "x", Servers: []LaneServer{&fakeLaneServer{}}, Base: 3, Boost: 2,
	}); err == nil {
		t.Fatal("boost <= base accepted")
	}
}
