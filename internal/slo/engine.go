package slo

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ndsm/internal/obs"
	"ndsm/internal/simtime"
	"ndsm/internal/telemetry"
)

// Options assembles an Engine.
type Options struct {
	// Aggregator supplies the per-node series the objectives judge
	// (required).
	Aggregator *telemetry.Aggregator
	// Clock drives window boundaries and evaluation pacing (default real
	// time; a *simtime.Virtual makes burn-rate math deterministic in
	// tests and simulated worlds).
	Clock simtime.Clock
	// Registry receives the engine's own instruments (nil: the process
	// default): "slo.evaluations", "slo.transitions", and the
	// "slo.alerts.warning" / "slo.alerts.critical" gauges.
	Registry *obs.Registry
	// FreshnessWindow caps the per-node sample ring freshness objectives
	// evaluate over (default 64 samples). Bounded: a freshness objective
	// costs a fixed ring per node, nothing more.
	FreshnessWindow int
}

// Transition is one alert state change.
type Transition struct {
	// Objective and Node identify the alert instance.
	Objective string `json:"objective"`
	Node      string `json:"node,omitempty"`
	// From and To are the severities crossed.
	From Severity `json:"from"`
	To   Severity `json:"to"`
	// At is the engine clock at the evaluation that crossed.
	At time.Time `json:"at"`
	// BurnLong/BurnShort/BadFraction are the window values that drove the
	// decision — the numbers a post-mortem wants first.
	BurnLong    float64 `json:"burnLong"`
	BurnShort   float64 `json:"burnShort"`
	BadFraction float64 `json:"badFraction"`
}

// AlertState is one alert instance's live view, served at GET /alerts.
type AlertState struct {
	Objective   string        `json:"objective"`
	Description string        `json:"description,omitempty"`
	Kind        string        `json:"kind"`
	Node        string        `json:"node,omitempty"`
	Severity    Severity      `json:"severity"`
	Since       time.Time     `json:"since"`
	BurnLong    float64       `json:"burnLong"`
	BurnShort   float64       `json:"burnShort"`
	BadFraction float64       `json:"badFraction"`
	Budget      float64       `json:"budget"`
	Window      time.Duration `json:"windowNs"`
}

// Summary counts live alert instances by severity — the cheap digest
// /healthz embeds so external probes see SLO state without parsing /alerts.
type Summary struct {
	OK       int `json:"ok"`
	Warning  int `json:"warning"`
	Critical int `json:"critical"`
}

// Alerts is the engine's transition feed. Subscribers get every transition
// after they subscribe; a slow subscriber's channel drops (the live state is
// always recoverable from Engine.States, so the feed is a nudge, not a log).
type Alerts struct {
	mu    sync.Mutex
	chans []chan Transition
	fns   []func(Transition)
}

// Subscribe returns a buffered channel of future transitions and a cancel
// function. buffer <= 0 gets a default of 16.
func (a *Alerts) Subscribe(buffer int) (<-chan Transition, func()) {
	if buffer <= 0 {
		buffer = 16
	}
	ch := make(chan Transition, buffer)
	a.mu.Lock()
	a.chans = append(a.chans, ch)
	a.mu.Unlock()
	cancel := func() {
		a.mu.Lock()
		for i, c := range a.chans {
			if c == ch {
				a.chans = append(a.chans[:i], a.chans[i+1:]...)
				break
			}
		}
		a.mu.Unlock()
	}
	return ch, cancel
}

// Notify registers a synchronous callback invoked (outside the engine lock)
// for every transition. Callbacks must not block.
func (a *Alerts) Notify(fn func(Transition)) {
	a.mu.Lock()
	a.fns = append(a.fns, fn)
	a.mu.Unlock()
}

func (a *Alerts) emit(t Transition) {
	a.mu.Lock()
	chans := append([]chan Transition(nil), a.chans...)
	fns := append([]func(Transition){}, a.fns...)
	a.mu.Unlock()
	for _, ch := range chans {
		select {
		case ch <- t:
		default: // slow subscriber: drop rather than wedge evaluation
		}
	}
	for _, fn := range fns {
		fn(t)
	}
}

// alertInstance is the per-(objective, node) burn-rate state machine.
type alertInstance struct {
	obj  *Objective
	node string

	sev        Severity
	since      time.Time
	calm       int // consecutive evaluations below the current level
	burnLong   float64
	burnShort  float64
	badFrac    float64
	freshRing  []telemetry.Point // KindFreshness: engine-recorded samples
	freshStart int
	freshLen   int
}

// Engine evaluates objectives against the aggregator on demand (Evaluate)
// or on a paced loop (Start). All window math runs on the injected clock.
type Engine struct {
	opts   Options
	alerts *Alerts

	evals       *obs.Counter
	transitions *obs.Counter
	gWarn       *obs.Gauge
	gCrit       *obs.Gauge

	mu        sync.Mutex
	objs      []*Objective
	instances map[string]*alertInstance
	afterEval []func()
	stop      chan struct{}
	done      chan struct{}
	closed    bool
}

// New builds an engine. It starts with no objectives; Add installs them.
func New(opts Options) (*Engine, error) {
	if opts.Aggregator == nil {
		return nil, fmt.Errorf("slo: engine needs an aggregator")
	}
	if opts.Clock == nil {
		opts.Clock = simtime.Real{}
	}
	if opts.FreshnessWindow <= 0 {
		opts.FreshnessWindow = 64
	}
	r := obs.Or(opts.Registry)
	return &Engine{
		opts:        opts,
		alerts:      &Alerts{},
		evals:       r.Counter("slo.evaluations"),
		transitions: r.Counter("slo.transitions"),
		gWarn:       r.Gauge("slo.alerts.warning"),
		gCrit:       r.Gauge("slo.alerts.critical"),
		instances:   make(map[string]*alertInstance),
	}, nil
}

// Add validates, normalizes, and installs one objective.
func (e *Engine) Add(o Objective) error {
	o, err := o.withDefaults()
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, prev := range e.objs {
		if prev.Name == o.Name {
			return fmt.Errorf("slo: duplicate objective %q", o.Name)
		}
	}
	e.objs = append(e.objs, &o)
	return nil
}

// Objectives returns the installed objectives (copies, sorted by name).
func (e *Engine) Objectives() []Objective {
	e.mu.Lock()
	out := make([]Objective, 0, len(e.objs))
	for _, o := range e.objs {
		out = append(out, *o)
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Alerts returns the engine's transition feed.
func (e *Engine) Alerts() *Alerts { return e.alerts }

// OnEvaluate registers a callback invoked (outside the engine lock) after
// every evaluation pass — the hook reactive consumers like the quota
// adapter pace their decay on.
func (e *Engine) OnEvaluate(fn func()) {
	e.mu.Lock()
	e.afterEval = append(e.afterEval, fn)
	e.mu.Unlock()
}

// Evaluate runs one burn-rate pass over every objective at the engine
// clock's now, returning the transitions it caused (also emitted on the
// Alerts feed). With no objectives configured it is a guarded no-op — zero
// allocations, so an idle engine costs nothing (the ndsm-bench AllocsPerRun
// guard holds it to that).
func (e *Engine) Evaluate() []Transition {
	e.mu.Lock()
	if len(e.objs) == 0 {
		e.mu.Unlock()
		return nil
	}
	now := e.opts.Clock.Now()
	var trans []Transition
	live := make(map[string]bool)
	for _, o := range e.objs {
		nodes := []string{o.Node}
		// Quantile objectives judge the cluster-merged digest, so they get
		// exactly one instance even with Node unset.
		if o.Node == "" && o.Kind != KindQuantile {
			nodes = e.opts.Aggregator.Nodes()
		}
		for _, node := range nodes {
			k := o.key(node)
			live[k] = true
			inst := e.instances[k]
			if inst == nil {
				inst = &alertInstance{obj: o, node: node, since: now}
				if o.Kind == KindFreshness || o.Kind == KindQuantile {
					inst.freshRing = make([]telemetry.Point, e.opts.FreshnessWindow)
				}
				e.instances[k] = inst
			}
			if t, changed := e.judgeLocked(inst, now); changed {
				trans = append(trans, t)
			}
		}
	}
	// Drop instances whose node vanished from a per-node objective (the
	// aggregator never forgets nodes today, but the map must not grow
	// unbounded if that changes).
	for k := range e.instances {
		if !live[k] {
			delete(e.instances, k)
		}
	}
	var warn, crit int
	for _, inst := range e.instances {
		switch inst.sev {
		case Warning:
			warn++
		case Critical:
			crit++
		}
	}
	hooks := e.afterEval
	e.mu.Unlock()
	e.evals.Inc(1)
	e.gWarn.Set(float64(warn))
	e.gCrit.Set(float64(crit))
	if len(trans) > 0 {
		e.transitions.Inc(int64(len(trans)))
		for _, t := range trans {
			e.alerts.emit(t)
		}
	}
	for _, fn := range hooks {
		fn()
	}
	return trans
}

// judgeLocked computes one instance's window burns and advances its state
// machine. Upgrades are immediate (paging late is the one unforgivable
// failure mode); downgrades wait for ClearAfter consecutive calm
// evaluations and step one level at a time, so burn oscillating across a
// threshold keeps its level instead of flapping transitions.
func (e *Engine) judgeLocked(inst *alertInstance, now time.Time) (Transition, bool) {
	o := inst.obj
	var longFrac, shortFrac float64
	var longOK, shortOK bool
	switch o.Kind {
	case KindRatio:
		bad := e.opts.Aggregator.Series(inst.node, o.BadSeries)
		total := e.opts.Aggregator.Series(inst.node, o.TotalSeries)
		longFrac, longOK = ratioOver(bad, total, now, o.Window)
		shortFrac, shortOK = ratioOver(bad, total, now, o.ShortWindow)
	case KindThreshold:
		pts := e.opts.Aggregator.Series(inst.node, o.Series)
		longFrac, longOK = overFraction(pts, now, o.Window, o.Max)
		shortFrac, shortOK = overFraction(pts, now, o.ShortWindow, o.Max)
	case KindFreshness:
		stale := 0.0
		if !e.opts.Aggregator.Fresh(inst.node) {
			stale = 1
		}
		inst.pushFresh(telemetry.Point{T: now, V: stale})
		pts := inst.freshPoints()
		longFrac, longOK = overFraction(pts, now, o.Window, 0.5)
		shortFrac, shortOK = overFraction(pts, now, o.ShortWindow, 0.5)
	case KindQuantile:
		// Sample the cluster-merged digest into the instance's ring — the
		// same engine-recorded mechanism freshness uses, because a merged
		// quantile (like a staleness verdict) is not a stored series. No
		// digests yet: no sample, and the windows stay inconclusive.
		if v, ok := e.opts.Aggregator.TopicQuantile(o.Topic, o.Quantile); ok {
			inst.pushFresh(telemetry.Point{T: now, V: v})
		}
		pts := inst.freshPoints()
		longFrac, longOK = overFraction(pts, now, o.Window, o.Max)
		shortFrac, shortOK = overFraction(pts, now, o.ShortWindow, o.Max)
	}
	inst.burnLong, inst.burnShort, inst.badFrac = 0, 0, 0
	if longOK {
		inst.burnLong = longFrac / o.Budget
		inst.badFrac = longFrac
	}
	if shortOK {
		inst.burnShort = shortFrac / o.Budget
	}

	target := OK
	switch {
	case longOK && shortOK && inst.burnLong >= o.CritBurn && inst.burnShort >= o.CritBurn:
		target = Critical
	case longOK && inst.burnLong >= o.WarnBurn:
		target = Warning
	}

	prev := inst.sev
	switch {
	case target > inst.sev:
		inst.sev = target
		inst.calm = 0
	case target < inst.sev:
		inst.calm++
		if inst.calm >= o.ClearAfter {
			inst.sev-- // step down one level, re-arm the counter
			inst.calm = 0
		}
	default:
		inst.calm = 0
	}
	if inst.sev == prev {
		return Transition{}, false
	}
	inst.since = now
	return Transition{
		Objective:   o.Name,
		Node:        inst.node,
		From:        prev,
		To:          inst.sev,
		At:          now,
		BurnLong:    inst.burnLong,
		BurnShort:   inst.burnShort,
		BadFraction: inst.badFrac,
	}, true
}

// ratioOver is the KindRatio window math: windowed bad-counter growth over
// windowed total growth. No total growth means no traffic — not a burn.
func ratioOver(bad, total []telemetry.Point, now time.Time, w time.Duration) (float64, bool) {
	totalD, ok := counterDelta(total, now, w)
	if !ok || totalD <= 0 {
		return 0, false
	}
	badD, _ := counterDelta(bad, now, w)
	if badD > totalD {
		badD = totalD
	}
	return badD / totalD, true
}

// pushFresh appends one staleness sample to the instance's bounded ring.
func (inst *alertInstance) pushFresh(p telemetry.Point) {
	n := len(inst.freshRing)
	inst.freshRing[(inst.freshStart+inst.freshLen)%n] = p
	if inst.freshLen < n {
		inst.freshLen++
	} else {
		inst.freshStart = (inst.freshStart + 1) % n
	}
}

// freshPoints returns the ring oldest-first. The slice is rebuilt per
// evaluation; freshness objectives are few and the ring is small.
func (inst *alertInstance) freshPoints() []telemetry.Point {
	out := make([]telemetry.Point, 0, inst.freshLen)
	for i := 0; i < inst.freshLen; i++ {
		out = append(out, inst.freshRing[(inst.freshStart+i)%len(inst.freshRing)])
	}
	return out
}

// States snapshots every alert instance, sorted by objective then node.
func (e *Engine) States() []AlertState {
	e.mu.Lock()
	out := make([]AlertState, 0, len(e.instances))
	for _, inst := range e.instances {
		out = append(out, AlertState{
			Objective:   inst.obj.Name,
			Description: inst.obj.Description,
			Kind:        inst.obj.Kind.String(),
			Node:        inst.node,
			Severity:    inst.sev,
			Since:       inst.since,
			BurnLong:    inst.burnLong,
			BurnShort:   inst.burnShort,
			BadFraction: inst.badFrac,
			Budget:      inst.obj.Budget,
			Window:      inst.obj.Window,
		})
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Objective != out[j].Objective {
			return out[i].Objective < out[j].Objective
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// SeverityOf returns the worst live severity across the objective's alert
// instances — what an adapter watching one objective keys off.
func (e *Engine) SeverityOf(objective string) Severity {
	worst := OK
	e.mu.Lock()
	for _, inst := range e.instances {
		if inst.obj.Name == objective && inst.sev > worst {
			worst = inst.sev
		}
	}
	e.mu.Unlock()
	return worst
}

// Summary counts live alert instances by severity.
func (e *Engine) Summary() Summary {
	var s Summary
	e.mu.Lock()
	for _, inst := range e.instances {
		switch inst.sev {
		case Critical:
			s.Critical++
		case Warning:
			s.Warning++
		default:
			s.OK++
		}
	}
	e.mu.Unlock()
	return s
}

// Start launches a paced evaluation loop on the engine's clock (interval
// <= 0 defaults to 5s). Simulated worlds skip Start and call Evaluate from
// their tick instead.
func (e *Engine) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	e.mu.Lock()
	if e.closed || e.stop != nil {
		e.mu.Unlock()
		return
	}
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	stop, done := e.stop, e.done
	e.mu.Unlock()
	go func() {
		defer close(done)
		for {
			select {
			case <-e.opts.Clock.After(interval):
				e.Evaluate()
			case <-stop:
				return
			}
		}
	}()
}

// Close stops the Start loop, if running.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	stop, done := e.stop, e.done
	e.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return nil
}
