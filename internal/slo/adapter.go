package slo

import (
	"fmt"
	"sync"

	"ndsm/internal/endpoint"
	"ndsm/internal/obs"
)

// LaneServer is the slice of an endpoint server (or core node) the quota
// adapter drives: runtime re-reservation of one lane's admission quota.
type LaneServer interface {
	SetLaneQuota(lane endpoint.Lane, quota int) bool
	LaneQuota(lane endpoint.Lane) int
}

// QuotaAdapterOptions wires a QuotaAdapter.
type QuotaAdapterOptions struct {
	// Objective names the SLO whose burn drives the adapter — typically the
	// control lane's deadline-miss ratio (required).
	Objective string
	// Lane is the lane whose reservation widens. The zero value means
	// LaneControl — the adapter exists to protect hard-deadline traffic,
	// and the default lane has no reservation to widen.
	Lane endpoint.Lane
	// Base is the steady-state reserved quota the adapter decays back to.
	Base int
	// Boost is the widened quota applied while the objective burns at
	// warning or worse (must exceed Base).
	Boost int
	// Step is how many slots each calm evaluation decays the quota by on
	// the way back down (default 1) — recovery is gradual so a flapping
	// burn does not slam the shared pool open and shut.
	Step int
	// Servers are the admission controllers to retune (at least one).
	Servers []LaneServer
	// Registry receives the adapter's instruments (nil: process default):
	// the "slo.adapter.quota" gauge and "slo.adapter.boosts" counter.
	Registry *obs.Registry
}

// QuotaAdapter is the end-to-end reactive consumer of the alert feed: while
// its objective burns, the control lane's reserved quota widens to Boost —
// borrowing from the shared pool so bulk work funds the control loop's
// headroom — and after recovery it decays back to Base one step per calm
// evaluation. It closes the PR-8 loop: quotas stop being a hand-tuned
// constant and start following the telemetry the lanes themselves emit.
type QuotaAdapter struct {
	opts   QuotaAdapterOptions
	gauge  *obs.Gauge
	boosts *obs.Counter

	mu      sync.Mutex
	current int
}

// NewQuotaAdapter validates the wiring, applies Base immediately, and
// registers the adapter on the engine's evaluation hook.
func NewQuotaAdapter(e *Engine, opts QuotaAdapterOptions) (*QuotaAdapter, error) {
	if e == nil {
		return nil, fmt.Errorf("slo: quota adapter needs an engine")
	}
	if opts.Objective == "" {
		return nil, fmt.Errorf("slo: quota adapter needs an objective name")
	}
	if len(opts.Servers) == 0 {
		return nil, fmt.Errorf("slo: quota adapter needs at least one server")
	}
	if opts.Lane == endpoint.LaneDefault {
		opts.Lane = endpoint.LaneControl
	}
	if opts.Base < 0 || opts.Boost <= opts.Base {
		return nil, fmt.Errorf("slo: quota adapter needs Boost (%d) > Base (%d) >= 0", opts.Boost, opts.Base)
	}
	if opts.Step <= 0 {
		opts.Step = 1
	}
	r := obs.Or(opts.Registry)
	a := &QuotaAdapter{
		opts:    opts,
		gauge:   r.Gauge("slo.adapter.quota"),
		boosts:  r.Counter("slo.adapter.boosts"),
		current: opts.Base,
	}
	a.apply(opts.Base)
	e.OnEvaluate(func() { a.step(e.SeverityOf(opts.Objective)) })
	return a, nil
}

// step is the per-evaluation decision: burning (warning or worse) jumps the
// quota to Boost at once — widening late defeats the point — while calm
// evaluations walk it back toward Base by Step.
func (a *QuotaAdapter) step(sev Severity) {
	a.mu.Lock()
	next := a.current
	if sev >= Warning {
		next = a.opts.Boost
	} else if a.current > a.opts.Base {
		next = a.current - a.opts.Step
		if next < a.opts.Base {
			next = a.opts.Base
		}
	}
	changed := next != a.current
	boosted := changed && next == a.opts.Boost && a.current < next
	a.current = next
	a.mu.Unlock()
	if changed {
		a.apply(next)
	}
	if boosted {
		a.boosts.Inc(1)
	}
}

// apply pushes the quota to every server and records it.
func (a *QuotaAdapter) apply(quota int) {
	for _, s := range a.opts.Servers {
		s.SetLaneQuota(a.opts.Lane, quota)
	}
	a.gauge.Set(float64(quota))
}

// Quota returns the adapter's current target quota.
func (a *QuotaAdapter) Quota() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.current
}
