package slo

import (
	"encoding/json"
	"fmt"
	"time"
)

// objectiveConfig is the JSON wire form of an Objective: durations as Go
// duration strings, the kind by name. This is what `ndsm-node -slo-config`
// reads, so operators declare SLOs without recompiling.
type objectiveConfig struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Node        string  `json:"node,omitempty"`
	Kind        string  `json:"kind"`
	BadSeries   string  `json:"badSeries,omitempty"`
	TotalSeries string  `json:"totalSeries,omitempty"`
	Series      string  `json:"series,omitempty"`
	Topic       string  `json:"topic,omitempty"`
	Quantile    float64 `json:"quantile,omitempty"`
	Max         float64 `json:"max,omitempty"`
	Budget      float64 `json:"budget,omitempty"`
	Window      string  `json:"window,omitempty"`
	ShortWindow string  `json:"shortWindow,omitempty"`
	WarnBurn    float64 `json:"warnBurn,omitempty"`
	CritBurn    float64 `json:"critBurn,omitempty"`
	ClearAfter  int     `json:"clearAfter,omitempty"`
}

// ParseObjectives decodes a JSON array of declarative objectives. Validation
// beyond shape (required series names, budget range) happens in Engine.Add.
func ParseObjectives(data []byte) ([]Objective, error) {
	var cfgs []objectiveConfig
	if err := json.Unmarshal(data, &cfgs); err != nil {
		return nil, fmt.Errorf("slo: config: %w", err)
	}
	out := make([]Objective, 0, len(cfgs))
	for i, c := range cfgs {
		o := Objective{
			Name:        c.Name,
			Description: c.Description,
			Node:        c.Node,
			BadSeries:   c.BadSeries,
			TotalSeries: c.TotalSeries,
			Series:      c.Series,
			Topic:       c.Topic,
			Quantile:    c.Quantile,
			Max:         c.Max,
			Budget:      c.Budget,
			WarnBurn:    c.WarnBurn,
			CritBurn:    c.CritBurn,
			ClearAfter:  c.ClearAfter,
		}
		switch c.Kind {
		case "", "ratio":
			o.Kind = KindRatio
		case "threshold":
			o.Kind = KindThreshold
		case "freshness":
			o.Kind = KindFreshness
		case "quantile":
			o.Kind = KindQuantile
		default:
			return nil, fmt.Errorf("slo: config objective %d: unknown kind %q", i, c.Kind)
		}
		var err error
		if o.Window, err = parseDuration(c.Window); err != nil {
			return nil, fmt.Errorf("slo: config objective %q window: %w", c.Name, err)
		}
		if o.ShortWindow, err = parseDuration(c.ShortWindow); err != nil {
			return nil, fmt.Errorf("slo: config objective %q shortWindow: %w", c.Name, err)
		}
		out = append(out, o)
	}
	return out, nil
}

func parseDuration(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	return time.ParseDuration(s)
}

// DefaultObjectives is the out-of-the-box set a node enables with a bare
// `-slo` flag: telemetry freshness across every reporting node (the
// universal "is anyone silent" page) plus a shed-rate watch over the
// endpoint servers' admission counters.
func DefaultObjectives(window time.Duration) []Objective {
	if window <= 0 {
		window = time.Minute
	}
	return []Objective{
		{
			Name:        "telemetry-freshness",
			Description: "every reporting node publishes within the staleness horizon",
			Kind:        KindFreshness,
			Budget:      0.05,
			Window:      window,
			ShortWindow: window / 6,
			CritBurn:    10,
		},
		{
			Name:        "telemetry-rejects",
			Description: "replayed or reordered telemetry stays rare",
			Kind:        KindRatio,
			BadSeries:   "telemetry.rejected",
			TotalSeries: "telemetry.reports",
			Budget:      0.05,
			Window:      window,
		},
	}
}
