// Package slo judges the middleware's own signals. The repo emits rich
// telemetry — obs counters, in-band trace spans, the per-node series the
// telemetry Aggregator keeps — but until now nothing *evaluated* them: an
// operator had to stare at /dash to notice a deadline-miss spike or a stale
// shard. "Towards Adaptable and Adaptive Policy-Free Middleware" argues the
// middleware itself should detect and react to such conditions, and the
// networked-control-systems literature makes bounded detection latency a
// first-class requirement.
//
// The package provides declarative Objectives (availability, deadline-miss
// rate, shed rate, latency-quantile targets, telemetry freshness) evaluated
// by a clock-injected multi-window burn-rate Engine against the Aggregator's
// per-node series. Each objective owns an error budget (the fraction of bad
// events it tolerates); the engine measures how fast that budget is burning
// over a long and a short window and walks an ok → warning → critical state
// machine with hysteresis, emitting every transition on an Alerts feed.
// Consumers hang off the feed: the flight recorder snapshots a post-mortem
// bundle on any transition to critical, and the quota adapter widens the
// control lane's reservation while its deadline-miss objective burns.
package slo

import (
	"encoding/json"
	"fmt"
	"time"

	"ndsm/internal/telemetry"
)

// Severity is an alert level. Ordered: comparisons like sev >= Warning are
// meaningful.
type Severity int

const (
	// OK means the objective is within budget.
	OK Severity = iota
	// Warning means the long-window burn rate exceeds the warn threshold:
	// the budget is eroding, but not fast enough to page.
	Warning
	// Critical means both windows exceed the critical burn threshold: the
	// budget is burning now and has been for the whole short window.
	Critical
)

// String renders the severity for JSON documents and dashboards.
func (s Severity) String() string {
	switch s {
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	default:
		return "ok"
	}
}

// MarshalJSON encodes severities as their names, not bare ints — alert
// documents are read by humans and external probes.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Kind selects how an objective turns series points into a bad-event
// fraction.
type Kind int

const (
	// KindRatio divides the windowed delta of one cumulative counter series
	// (BadSeries) by another (TotalSeries): availability (errors/requests),
	// deadline-miss rate (missed/issued), shed rate (shed/offered).
	KindRatio Kind = iota
	// KindThreshold takes the fraction of window samples of one gauge or
	// rate series that lie above Max: latency-quantile targets (a published
	// p99 gauge over its limit), queue-depth ceilings.
	KindThreshold
	// KindFreshness watches the aggregator's staleness verdict for the
	// node: each evaluation contributes one sample, bad when the node's
	// telemetry has gone stale. It needs no series name — the absence of
	// reports is the signal.
	KindFreshness
	// KindQuantile samples the cluster-merged t-digest latency quantile for
	// one Topic (telemetry.Aggregator.TopicQuantile) each evaluation, bad
	// when it exceeds Max milliseconds. Unlike KindThreshold — which judges a
	// per-node published p99 gauge — this reads the merged digest of every
	// node's samples, so a quantile target holds across the cluster, not per
	// node. One alert instance per objective, regardless of Node.
	KindQuantile
)

// String names the kind for documents and config files.
func (k Kind) String() string {
	switch k {
	case KindThreshold:
		return "threshold"
	case KindFreshness:
		return "freshness"
	case KindQuantile:
		return "quantile"
	default:
		return "ratio"
	}
}

// Objective is one declarative SLO. The zero value is not valid; Engine.Add
// validates and fills defaults.
type Objective struct {
	// Name identifies the objective in alerts, documents, and adapters
	// (required, unique per engine).
	Name string
	// Description is free text for dashboards.
	Description string
	// Node restricts evaluation to one reporting node. Empty means every
	// node the aggregator knows, each tracked as its own alert instance —
	// that is what "per-node series" buys: a stale shard pages for itself.
	Node string
	// Kind selects the bad-fraction computation (default KindRatio).
	Kind Kind
	// BadSeries / TotalSeries name the cumulative counter series a
	// KindRatio objective divides (as stored by the aggregator: counter
	// names from telemetry reports).
	BadSeries   string
	TotalSeries string
	// Series names the gauge/rate series a KindThreshold objective samples.
	Series string
	// Topic names the request topic a KindQuantile objective judges, as
	// recorded by the reqlog wide events.
	Topic string
	// Quantile is the KindQuantile probe point in (0,1) (default 0.99).
	Quantile float64
	// Max is the KindThreshold / KindQuantile limit: a sample above it is a
	// bad event. For KindQuantile the unit is milliseconds (the digests
	// record latency in ms).
	Max float64
	// Budget is the tolerated bad-event fraction — the error budget. A
	// 99.9% availability target is Budget 0.001. Default 0.01.
	Budget float64
	// Window is the long evaluation window (default 1m). The budget burn
	// measured over it drives the warning level.
	Window time.Duration
	// ShortWindow confirms a critical burn is still happening (default
	// Window/12, the SRE convention): criticals need both windows hot, so a
	// burst that already stopped pages nobody.
	ShortWindow time.Duration
	// WarnBurn and CritBurn are budget burn-rate thresholds (multiples of
	// "exactly spending the budget"). Defaults 1 and 4.
	WarnBurn float64
	CritBurn float64
	// ClearAfter is the hysteresis depth: how many consecutive evaluations
	// below a level's threshold before the alert steps down one level
	// (default 3). Burn oscillating across a threshold therefore holds the
	// level instead of flapping transitions.
	ClearAfter int
}

// key identifies an alert instance: the objective plus the node it binds to.
func (o *Objective) key(node string) string { return o.Name + "\x00" + node }

// withDefaults validates and normalizes.
func (o Objective) withDefaults() (Objective, error) {
	if o.Name == "" {
		return o, fmt.Errorf("slo: objective needs a name")
	}
	switch o.Kind {
	case KindRatio:
		if o.BadSeries == "" || o.TotalSeries == "" {
			return o, fmt.Errorf("slo: ratio objective %s needs BadSeries and TotalSeries", o.Name)
		}
	case KindThreshold:
		if o.Series == "" {
			return o, fmt.Errorf("slo: threshold objective %s needs a Series", o.Name)
		}
	case KindFreshness:
		// No series: the aggregator's staleness verdict is the signal.
	case KindQuantile:
		if o.Topic == "" {
			return o, fmt.Errorf("slo: quantile objective %s needs a Topic", o.Name)
		}
		if o.Max <= 0 {
			return o, fmt.Errorf("slo: quantile objective %s needs Max > 0 (ms)", o.Name)
		}
		if o.Quantile < 0 || o.Quantile >= 1 {
			return o, fmt.Errorf("slo: quantile objective %s quantile %v outside [0,1)", o.Name, o.Quantile)
		}
		if o.Quantile == 0 {
			o.Quantile = 0.99
		}
	default:
		return o, fmt.Errorf("slo: objective %s has unknown kind %d", o.Name, o.Kind)
	}
	if o.Budget <= 0 || o.Budget > 1 {
		if o.Budget != 0 {
			return o, fmt.Errorf("slo: objective %s budget %v outside (0,1]", o.Name, o.Budget)
		}
		o.Budget = 0.01
	}
	if o.Window <= 0 {
		o.Window = time.Minute
	}
	if o.ShortWindow <= 0 {
		o.ShortWindow = o.Window / 12
		if o.ShortWindow <= 0 {
			o.ShortWindow = o.Window
		}
	}
	if o.WarnBurn <= 0 {
		o.WarnBurn = 1
	}
	if o.CritBurn <= 0 {
		o.CritBurn = 4
	}
	if o.CritBurn < o.WarnBurn {
		o.CritBurn = o.WarnBurn
	}
	if o.ClearAfter <= 0 {
		o.ClearAfter = 3
	}
	return o, nil
}

// counterDelta measures a cumulative counter series' growth across the
// window ending at now: newest value minus the value at the window's start
// (the latest point at or before now-w). A series born inside the window
// counts from zero — the aggregator builds these series from deltas, so
// before the first point the counter simply didn't exist. A series whose
// newest point predates the window contributes nothing — windows only ever
// advance on ingested points, so replayed (seq-rejected) telemetry cannot
// move them.
func counterDelta(pts []telemetry.Point, now time.Time, w time.Duration) (float64, bool) {
	if len(pts) == 0 {
		return 0, false
	}
	last := pts[len(pts)-1]
	cut := now.Add(-w)
	if !last.T.After(cut) {
		return 0, false // newest data predates the window
	}
	base := 0.0
	for i := len(pts) - 1; i >= 0; i-- {
		if !pts[i].T.After(cut) {
			base = pts[i].V
			break
		}
	}
	d := last.V - base
	if d < 0 {
		d = 0 // counter reset (node restart): treat as fresh start
	}
	return d, true
}

// overFraction is the threshold kinds' window math: the fraction of samples
// inside (now-w, now] whose value exceeds max. ok=false when the window
// holds no samples.
func overFraction(pts []telemetry.Point, now time.Time, w time.Duration, max float64) (float64, bool) {
	cut := now.Add(-w)
	var n, over int
	for i := len(pts) - 1; i >= 0; i-- {
		if !pts[i].T.After(cut) {
			break
		}
		n++
		if pts[i].V > max {
			over++
		}
	}
	if n == 0 {
		return 0, false
	}
	return float64(over) / float64(n), true
}
