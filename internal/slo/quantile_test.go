package slo

import (
	"testing"
	"time"

	"ndsm/internal/sketch"
	"ndsm/internal/telemetry"
)

// reportDigest ingests one report carrying a latency digest for topic whose
// samples all sit at latencyMs.
func (h *harness) reportDigest(node, topic string, n int, latencyMs float64) {
	h.t.Helper()
	d := sketch.NewTDigest(0)
	for i := 0; i < n; i++ {
		d.Add(latencyMs)
	}
	h.seq[node]++
	if err := h.agg.Ingest(&telemetry.Report{
		Node:         node,
		Seq:          h.seq[node],
		Time:         h.vc.Now(),
		TopicDigests: map[string][]byte{topic: d.AppendBinary(nil)},
	}); err != nil {
		h.t.Fatalf("ingest %s: %v", node, err)
	}
}

func quantileObjective() Objective {
	return Objective{
		Name:        "hot-p99",
		Kind:        KindQuantile,
		Topic:       "svc/hot",
		Quantile:    0.99,
		Max:         50, // ms
		Budget:      0.1,
		Window:      10 * time.Second,
		ShortWindow: 2 * time.Second,
		ClearAfter:  2,
	}
}

// TestQuantileObjective walks a cluster-merged p99 target: fast digests stay
// ok, a node publishing slow samples pushes the merged p99 over Max and burns
// to critical, and the alert carries the quantile kind with a single
// cluster-wide instance.
func TestQuantileObjective(t *testing.T) {
	h := newHarness(t, time.Hour)
	if err := h.eng.Add(quantileObjective()); err != nil {
		t.Fatal(err)
	}

	// No digests anywhere: evaluation is inconclusive — no transitions, no
	// severity.
	h.vc.Advance(time.Second)
	if tr := h.eng.Evaluate(); len(tr) != 0 {
		t.Fatalf("empty cluster produced transitions: %+v", tr)
	}

	// 5s of fast traffic: merged p99 = 10ms, well under the 50ms target.
	for i := 0; i < 5; i++ {
		h.vc.Advance(time.Second)
		h.reportDigest("n1", "svc/hot", 100, 10)
		if tr := h.eng.Evaluate(); len(tr) != 0 {
			t.Fatalf("fast traffic produced transitions: %+v", tr)
		}
	}
	if sev := h.eng.SeverityOf("hot-p99"); sev != OK {
		t.Fatalf("severity = %v, want ok", sev)
	}

	// A second node floods slow samples; its digest dominates the merge so
	// the cluster p99 jumps over 50ms even though n1 stays fast. Every
	// evaluation is a bad sample now; with budget 0.1 the burn crosses
	// critical once both windows agree.
	var worst Severity
	for i := 0; i < 6; i++ {
		h.vc.Advance(time.Second)
		h.reportDigest("n2", "svc/hot", 10_000, 200)
		for _, tr := range h.eng.Evaluate() {
			if tr.To > worst {
				worst = tr.To
			}
			if tr.Objective != "hot-p99" || tr.Node != "" {
				t.Fatalf("unexpected instance: %+v", tr)
			}
		}
	}
	if worst != Critical {
		t.Fatalf("slow flood reached %v, want critical", worst)
	}

	states := h.eng.States()
	found := false
	for _, st := range states {
		if st.Objective == "hot-p99" {
			found = true
			if st.Kind != "quantile" || st.Node != "" {
				t.Fatalf("state = %+v, want kind quantile on the cluster instance", st)
			}
		}
	}
	if !found {
		t.Fatal("no hot-p99 state")
	}
}

// TestQuantileObjectiveValidationAndConfig pins the declarative surface: the
// JSON form parses into KindQuantile, and bad shapes are rejected.
func TestQuantileObjectiveValidationAndConfig(t *testing.T) {
	objs, err := ParseObjectives([]byte(`[
		{"name":"p99","kind":"quantile","topic":"svc/hot","quantile":0.99,"max":50,"window":"30s"}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || objs[0].Kind != KindQuantile || objs[0].Topic != "svc/hot" || objs[0].Max != 50 {
		t.Fatalf("parsed = %+v", objs)
	}

	h := newHarness(t, time.Hour)
	bad := []Objective{
		{Name: "no-topic", Kind: KindQuantile, Max: 50},
		{Name: "no-max", Kind: KindQuantile, Topic: "t"},
		{Name: "bad-q", Kind: KindQuantile, Topic: "t", Max: 50, Quantile: 1.5},
	}
	for _, o := range bad {
		if err := h.eng.Add(o); err == nil {
			t.Errorf("%s: accepted", o.Name)
		}
	}
	// Default quantile fills to p99.
	if err := h.eng.Add(Objective{Name: "defq", Kind: KindQuantile, Topic: "t", Max: 50}); err != nil {
		t.Fatal(err)
	}
	for _, o := range h.eng.Objectives() {
		if o.Name == "defq" && o.Quantile != 0.99 {
			t.Errorf("default quantile = %v, want 0.99", o.Quantile)
		}
	}
}
