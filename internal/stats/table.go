package stats

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them as an aligned plain-text table or
// as CSV. It is the uniform output format for all experiment harness output,
// mirroring the "one table per experiment" reporting style.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case float32:
			row[i] = trimFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Render returns the aligned plain-text form.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the comma-separated form with a header line. Cells containing
// commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// BarChart renders a horizontal ASCII bar chart for a label->value series,
// preserving the order given. It is used to regenerate the paper's Figure 1.
func BarChart(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	maxV := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if i < len(labels) && len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "## %s\n", title)
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(width))
		}
		fmt.Fprintf(&b, "%-*s | %s %s\n", maxLabel, label, strings.Repeat("#", n), trimFloat(v))
	}
	return b.String()
}
