package stats

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Count() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 ||
		s.Percentile(50) != 0 || s.StdDev() != 0 || s.Sum() != 0 {
		t.Fatal("empty sample should return zeros everywhere")
	}
}

func TestSampleBasics(t *testing.T) {
	s := NewSample(8)
	for _, v := range []float64{4, 1, 3, 2} {
		s.Add(v)
	}
	if got := s.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	if got := s.Sum(); got != 10 {
		t.Fatalf("Sum = %v, want 10", got)
	}
	if got := s.Mean(); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := s.Min(); got != 1 {
		t.Fatalf("Min = %v, want 1", got)
	}
	if got := s.Max(); got != 4 {
		t.Fatalf("Max = %v, want 4", got)
	}
	if got := s.Median(); got != 2.5 {
		t.Fatalf("Median = %v, want 2.5", got)
	}
}

func TestSampleAddAfterQuery(t *testing.T) {
	var s Sample
	s.Add(5)
	if got := s.Max(); got != 5 {
		t.Fatalf("Max = %v, want 5", got)
	}
	s.Add(9) // must re-sort after the earlier query
	if got := s.Max(); got != 9 {
		t.Fatalf("Max after second add = %v, want 9", got)
	}
	if got := s.Min(); got != 5 {
		t.Fatalf("Min = %v, want 5", got)
	}
}

func TestSamplePercentileBounds(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(-5); got != 1 {
		t.Fatalf("P(-5) = %v, want 1", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v, want 1", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("P100 = %v, want 100", got)
	}
	if got := s.Percentile(200); got != 100 {
		t.Fatalf("P(200) = %v, want 100", got)
	}
	if got := s.Percentile(50); !almostEqual(got, 50.5, 1e-9) {
		t.Fatalf("P50 = %v, want 50.5", got)
	}
}

func TestSampleStdDev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.StdDev(); !almostEqual(got, 2, 1e-9) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestSampleAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Microsecond)
	if got := s.Mean(); !almostEqual(got, 1.5, 1e-9) {
		t.Fatalf("mean ms = %v, want 1.5", got)
	}
}

func TestSampleSummarize(t *testing.T) {
	var s Sample
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	sum := s.Summarize()
	if sum.Count != 10 || sum.Min != 1 || sum.Max != 10 {
		t.Fatalf("bad summary: %+v", sum)
	}
	if !strings.Contains(sum.String(), "n=10") {
		t.Fatalf("String() missing count: %q", sum.String())
	}
}

func TestSampleConcurrentAdd(t *testing.T) {
	var s Sample
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := s.Count(); got != 8000 {
		t.Fatalf("Count = %d, want 8000", got)
	}
	if got := s.Sum(); got != 8000 {
		t.Fatalf("Sum = %v, want 8000", got)
	}
}

// Property: percentile is monotone in p and bounded by [min, max].
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			s.Add(v)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			if v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if got := c.Get("x"); got != 0 {
		t.Fatalf("Get on empty = %d, want 0", got)
	}
	c.Inc("x", 2)
	c.Inc("x", 3)
	c.Inc("y", 1)
	if got := c.Get("x"); got != 5 {
		t.Fatalf("x = %d, want 5", got)
	}
	snap := c.Snapshot()
	if snap["x"] != 5 || snap["y"] != 1 {
		t.Fatalf("bad snapshot: %v", snap)
	}
	snap["x"] = 99
	if got := c.Get("x"); got != 5 {
		t.Fatal("snapshot must be a copy")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != 4000 {
		t.Fatalf("n = %d, want 4000", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 12345)
	out := tb.Render()
	if !strings.Contains(out, "## demo") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "12345") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableFloatTrim(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(2.5000)
	tb.AddRow(3.0)
	tb.AddRow(float32(0.25))
	out := tb.CSV()
	if !strings.Contains(out, "2.5\n") || !strings.Contains(out, "3\n") || !strings.Contains(out, "0.25\n") {
		t.Fatalf("bad float trimming:\n%s", out)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`x,y`, `he said "hi"`)
	out := tb.CSV()
	if !strings.Contains(out, `"x,y"`) {
		t.Fatalf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"he said ""hi"""`) {
		t.Fatalf("quote cell not escaped:\n%s", out)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("refs", []string{"1999", "2000"}, []float64{10, 20}, 10)
	if !strings.Contains(out, "## refs") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "1999 | ##### 10") {
		t.Fatalf("bad half bar:\n%s", out)
	}
	if !strings.Contains(out, "2000 | ########## 20") {
		t.Fatalf("bad full bar:\n%s", out)
	}
}

func TestBarChartZeroValues(t *testing.T) {
	out := BarChart("", []string{"a"}, []float64{0}, 0)
	if !strings.Contains(out, "a") {
		t.Fatalf("label missing:\n%s", out)
	}
}
