// Package stats provides the small measurement toolkit used by the
// experiment harness: streaming summaries, percentile estimation over raw
// samples, counters, and plain-text table / CSV / ASCII-chart rendering for
// reporting experiment results in the shape the paper's figures use.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Sample accumulates float64 observations and answers summary queries.
// The zero value is ready to use. Sample is safe for concurrent use.
type Sample struct {
	mu     sync.Mutex
	values []float64
	sum    float64
	sorted bool
}

// NewSample returns a Sample pre-allocated for n observations.
func NewSample(n int) *Sample {
	return &Sample{values: make([]float64, 0, n)}
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.mu.Lock()
	s.values = append(s.values, v)
	s.sum += v
	s.sorted = false
	s.mu.Unlock()
}

// AddDuration records a duration observation in milliseconds.
func (s *Sample) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// Count returns the number of observations.
func (s *Sample) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.values)
}

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sum
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSortedLocked()
	return s.values[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSortedLocked()
	return s.values[len(s.values)-1]
}

// StdDev returns the population standard deviation, or 0 for fewer than two
// observations.
func (s *Sample) StdDev() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.sum / float64(n)
	var ss float64
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.values)
	if n == 0 {
		return 0
	}
	s.ensureSortedLocked()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

func (s *Sample) ensureSortedLocked() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Summary is a point-in-time digest of a Sample. The JSON shape (lowercase
// keys, quantiles as p50/p95/p99) is what /metrics and ndsm-bench -metrics
// serve for every histogram.
type Summary struct {
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
	StdDev float64 `json:"stddev"`
}

// Summarize computes a Summary of the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		Count:  s.Count(),
		Mean:   s.Mean(),
		Min:    s.Min(),
		Max:    s.Max(),
		P50:    s.Percentile(50),
		P95:    s.Percentile(95),
		P99:    s.Percentile(99),
		StdDev: s.StdDev(),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f sd=%.3f",
		s.Count, s.Mean, s.Min, s.P50, s.P95, s.P99, s.Max, s.StdDev)
}

// Counter is a concurrency-safe monotonically named tally set.
// The zero value is ready to use.
type Counter struct {
	mu sync.Mutex
	m  map[string]int64
}

// Inc adds delta to the named tally.
func (c *Counter) Inc(name string, delta int64) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns the named tally.
func (c *Counter) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all tallies.
func (c *Counter) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}
