package chaos

import (
	"fmt"

	"ndsm/internal/discovery/cluster"
	"ndsm/internal/reqlog"
)

// Invariant is a property of a finished chaos run. Check returns one message
// per violation (empty means the invariant held).
type Invariant interface {
	Name() string
	Check(w *World, events []Event) []string
}

// AckedDurable checks at-least-once durability: every operation the consumer
// holds an ack for must exist in some supplier's recovered state. A supplier
// only acks after its recovery manager logged and applied the operation, so
// an acked-but-missing key means the stack lost an acknowledged write.
type AckedDurable struct{}

// Name implements Invariant.
func (AckedDurable) Name() string { return "acked-durable" }

// Check implements Invariant.
func (AckedDurable) Check(w *World, _ []Event) []string {
	var out []string
	for _, key := range w.Acked() {
		if !w.Durable(key) {
			out = append(out, fmt.Sprintf("acked op %s not durable on any supplier", key))
		}
	}
	return out
}

// RebindRecovery checks the §3.4 graceful-degradation bound: after a
// supplier crash is injected, the consumer must complete a successful
// request within Bound ticks — the binding has other suppliers to re-match
// to, and fault windows never overlap.
type RebindRecovery struct {
	// Bound is the tick budget (default 8).
	Bound int
}

// Name implements Invariant.
func (r RebindRecovery) Name() string { return "rebind-recovery" }

// Check implements Invariant.
func (r RebindRecovery) Check(w *World, events []Event) []string {
	bound := r.Bound
	if bound <= 0 {
		bound = 8
	}
	ticks := w.TickOK()
	var out []string
	for _, ev := range events {
		if ev.Phase != PhaseInject || ev.Fault != FaultCrashSupplier {
			continue
		}
		from := w.TickOf(ev.At)
		if from+bound >= len(ticks) {
			continue // crash too close to the end of the run to judge
		}
		recovered := false
		for i := from; i <= from+bound; i++ {
			if ticks[i] {
				recovered = true
				break
			}
		}
		if !recovered {
			out = append(out, fmt.Sprintf(
				"no successful request within %d ticks of %s crash at %v (tick %d)",
				bound, ev.Target, ev.At, from))
		}
	}
	return out
}

// DiscoveryConvergence checks that adaptive discovery converges to a working
// mode after the centralized registry dies: within Bound ticks of the kill,
// a lookup probe must succeed again (via flood fail-over).
type DiscoveryConvergence struct {
	// Bound is the tick budget (default 8).
	Bound int
}

// Name implements Invariant.
func (d DiscoveryConvergence) Name() string { return "discovery-convergence" }

// Check implements Invariant.
func (d DiscoveryConvergence) Check(w *World, events []Event) []string {
	bound := d.Bound
	if bound <= 0 {
		bound = 8
	}
	lookups := w.LookupOK()
	var out []string
	for _, ev := range events {
		if ev.Phase != PhaseInject || ev.Fault != FaultKillRegistry {
			continue
		}
		from := w.TickOf(ev.At)
		if from+bound >= len(lookups) {
			continue
		}
		converged := false
		for i := from; i <= from+bound; i++ {
			if lookups[i] {
				converged = true
				break
			}
		}
		if !converged {
			out = append(out, fmt.Sprintf(
				"no successful lookup within %d ticks of registry kill at %v (tick %d)",
				bound, ev.At, from))
		}
	}
	return out
}

// SuspectBeforeViolate checks the liveness layer's two promises around a
// supplier crash (it only applies to worlds built with Liveness):
//
//  1. Detection: the consumer's failure detector suspects a killed supplier
//     within Bound ticks of the kill — before the crash can fester into a
//     QoS violation the application sees.
//  2. No traffic after suspicion: once the killed supplier is suspected at
//     the end of a tick, no later tick (while it is still dead) may end with
//     the binding pointed at it — proactive rebinding must have moved on.
//
// Crashes reverted before the detection deadline are skipped: a supplier may
// legitimately come back before the detector is required to have noticed.
type SuspectBeforeViolate struct {
	// Bound is the detection tick budget (default 8, matching the
	// rebind-recovery bound the detector must beat).
	Bound int
}

// Name implements Invariant.
func (s SuspectBeforeViolate) Name() string { return "suspect-before-violate" }

// Check implements Invariant.
func (s SuspectBeforeViolate) Check(w *World, events []Event) []string {
	if w.Health() == nil {
		return nil
	}
	bound := s.Bound
	if bound <= 0 {
		bound = 8
	}
	sus := w.SuspectedTrace()
	bnd := w.BoundTrace()
	n := len(sus)
	var out []string
	for idx, ev := range events {
		if ev.Phase != PhaseInject || ev.Fault != FaultCrashSupplier {
			continue
		}
		from := w.TickOf(ev.At)
		// Revive tick: end of run unless an explicit (non-permanent) revert
		// for this target lands earlier.
		revive := n
		for _, rv := range events[idx+1:] {
			if rv.Phase == PhaseRevert && rv.Fault == FaultCrashSupplier && rv.Target == ev.Target {
				if rv.At < permanentAt {
					revive = w.TickOf(rv.At)
				}
				break
			}
		}
		if revive > n {
			revive = n
		}

		deadline := from + bound
		if deadline < revive && deadline < n {
			detected := false
			for i := from; i <= deadline; i++ {
				if i >= 0 && sus[i] != nil && sus[i][ev.Target] {
					detected = true
					break
				}
			}
			if !detected {
				out = append(out, fmt.Sprintf(
					"%s killed at %v (tick %d) never suspected within %d ticks",
					ev.Target, ev.At, from, bound))
			}
		}

		// Once suspected at end of tick i-1 (and still dead), tick i must not
		// end bound to the corpse.
		for i := from + 1; i < revive && i < len(bnd); i++ {
			if sus[i-1] != nil && sus[i-1][ev.Target] && bnd[i] == ev.Target {
				out = append(out, fmt.Sprintf(
					"binding still pointed at suspected dead %s at end of tick %d",
					ev.Target, i))
			}
		}
	}
	return out
}

// TelemetryFreshness checks the telemetry plane's staleness contract around
// network partitions (it only applies to worlds built with Telemetry):
//
//  1. Stale on silence: once a supplier is partitioned away from the
//     aggregator, its reports stop arriving, so the aggregator must mark it
//     stale within Bound ticks of the inject.
//  2. Fresh on heal: after the partition reverts, the next successful
//     publish must flip the supplier back to fresh within Bound ticks.
//
// Partitions reverted before the staleness deadline are skipped, exactly
// like short-lived crashes in SuspectBeforeViolate: a report may
// legitimately get through again before staleness was required.
type TelemetryFreshness struct {
	// Bound is the tick budget for both transitions (default 5; the world
	// marks stale after 2.5 missed ticks, so 5 leaves detection margin).
	Bound int
}

// Name implements Invariant.
func (TelemetryFreshness) Name() string { return "telemetry-freshness" }

// Check implements Invariant.
func (t TelemetryFreshness) Check(w *World, events []Event) []string {
	if w.Aggregator() == nil {
		return nil
	}
	bound := t.Bound
	if bound <= 0 {
		bound = 5
	}
	fresh := w.FreshTrace()
	n := len(fresh)
	isSupplier := make(map[string]bool, len(w.supplier))
	for _, id := range w.supplier {
		isSupplier[id] = true
	}
	var out []string
	for idx, ev := range events {
		if ev.Phase != PhaseInject || ev.Fault != FaultPartition || !isSupplier[ev.Target] {
			continue
		}
		from := w.TickOf(ev.At)
		// Heal tick: end of run unless an explicit (non-permanent) revert
		// for this target lands earlier.
		heal := n
		for _, rv := range events[idx+1:] {
			if rv.Phase == PhaseRevert && rv.Fault == FaultPartition && rv.Target == ev.Target {
				if rv.At < permanentAt {
					heal = w.TickOf(rv.At)
				}
				break
			}
		}
		if heal > n {
			heal = n
		}

		staleDeadline := from + bound
		if staleDeadline < heal && staleDeadline < n {
			wentStale := false
			for i := from; i <= staleDeadline; i++ {
				if i >= 0 && fresh[i] != nil && !fresh[i][ev.Target] {
					wentStale = true
					break
				}
			}
			if !wentStale {
				out = append(out, fmt.Sprintf(
					"%s partitioned at %v (tick %d) never marked stale within %d ticks",
					ev.Target, ev.At, from, bound))
			}
		}

		freshDeadline := heal + bound
		if heal < n && freshDeadline < n {
			recovered := false
			for i := heal; i <= freshDeadline; i++ {
				if fresh[i] != nil && fresh[i][ev.Target] {
					recovered = true
					break
				}
			}
			if !recovered {
				out = append(out, fmt.Sprintf(
					"%s not fresh within %d ticks of partition heal at tick %d",
					ev.Target, bound, heal))
			}
		}
	}
	return out
}

// ClusterLookupAvailability checks the registry cluster's headline promise:
// a single member kill must not cost the consumer a single cached-cluster
// lookup once the detection bound has passed. The probe runs without flood
// fallback, so only replication (RF owners per key), lookup quorums, and the
// lease cache's stale window can absorb the loss — exactly the mechanisms
// under test. It only applies to worlds built with a RegistryCluster.
type ClusterLookupAvailability struct {
	// Bound is the tick allowance after the kill during which a probe may
	// still fail while timeouts and suspicion settle (default 3).
	Bound int
}

// Name implements Invariant.
func (ClusterLookupAvailability) Name() string { return "cluster-lookup-availability" }

// Check implements Invariant.
func (c ClusterLookupAvailability) Check(w *World, events []Event) []string {
	probes := w.ClusterLookupOK()
	if len(probes) == 0 {
		return nil
	}
	bound := c.Bound
	if bound <= 0 {
		bound = 3
	}
	n := len(probes)
	var out []string
	for idx, ev := range events {
		if ev.Phase != PhaseInject || ev.Fault != FaultKillRegistryNode {
			continue
		}
		from := w.TickOf(ev.At)
		// Revive tick: end of run unless an explicit (non-permanent) revert
		// for this member lands earlier.
		revive := n
		for _, rv := range events[idx+1:] {
			if rv.Phase == PhaseRevert && rv.Fault == FaultKillRegistryNode && rv.Target == ev.Target {
				if rv.At < permanentAt {
					revive = w.TickOf(rv.At)
				}
				break
			}
		}
		if revive > n {
			revive = n
		}
		for i := from + bound; i < revive; i++ {
			if i >= 0 && !probes[i] {
				out = append(out, fmt.Sprintf(
					"cluster lookup failed at tick %d with only %s down (killed at %v, tick %d)",
					i, ev.Target, ev.At, from))
			}
		}
	}
	return out
}

// ClusterReplication checks anti-entropy's repair promise: once every member
// is back (the checker runs after Finish reverted all kills) and gossip has
// settled, every live registration must be held by all of its RF ring owners.
// A key still missing from an owner means a member death permanently shrank
// the replica set — repair never happened. It only applies to cluster worlds.
type ClusterReplication struct{}

// Name implements Invariant.
func (ClusterReplication) Name() string { return "cluster-replication" }

// Check implements Invariant.
func (ClusterReplication) Check(w *World, _ []Event) []string {
	nodes := w.ClusterNodes()
	if len(nodes) == 0 {
		return nil
	}
	// Give gossip a bounded, deterministic chance to finish in-flight repair:
	// the engine's Finish revived every member, so full-mesh rounds converge.
	w.SettleCluster()
	rf := w.ReplicationFactor()
	byID := make(map[string]*cluster.Node, len(nodes))
	for _, n := range nodes {
		byID[n.Self()] = n
	}
	ring := nodes[0].Ring()
	// The union of live keys across members is the replicated set; check each
	// against every owner the ring assigns it.
	seen := make(map[string]bool)
	var out []string
	for _, n := range nodes {
		for _, key := range n.Table().LiveKeys() {
			if seen[key] {
				continue
			}
			seen[key] = true
			for _, owner := range ring.Owners(key, rf) {
				if on := byID[owner]; on != nil && !on.Table().HasLive(key) {
					out = append(out, fmt.Sprintf(
						"key %s not replicated on owner %s after settle", key, owner))
				}
			}
		}
	}
	return out
}

// WALReplayClean surfaces replay-fidelity violations recorded by wal-crash
// injections: a reopened WAL must reproduce every acknowledged operation.
type WALReplayClean struct{}

// Name implements Invariant.
func (WALReplayClean) Name() string { return "wal-replay-clean" }

// Check implements Invariant.
func (WALReplayClean) Check(w *World, _ []Event) []string { return w.WALViolations() }

// TailCapture checks the wide-event plane's retention contract (it only
// applies to worlds built with Overload): a shed the consumer observed is,
// by construction, a deliberate server rejection — and the server records
// the wide event *before* it sends the rejection — so every client-observed
// shed must be present as a shed record in some supplier's tail ring.
// Sheds are always tail-worthy (never sampled) and the chaos recorders are
// sized so the ring cannot evict within a run, which makes the count exact:
// fewer retained sheds than observed sheds means the observability plane
// dropped an anomalous request. The reverse inequality is legal — a shed
// whose rejection the network ate is recorded server-side but reaches the
// client as a timeout.
//
// Each retained shed must also be attributable: a record without a topic or
// a shed reason is a violation on its own, because an exemplar an operator
// cannot act on is not an exemplar.
type TailCapture struct{}

// Name implements Invariant.
func (TailCapture) Name() string { return "tail-capture" }

// Check implements Invariant.
func (TailCapture) Check(w *World, _ []Event) []string {
	logs := w.ReqLogs()
	if len(logs) == 0 {
		return nil
	}
	observed := 0
	for _, n := range w.BulkShedTrace() {
		observed += n
	}
	for _, shed := range w.ControlShedTrace() {
		if shed {
			observed++
		}
	}
	retained := 0
	var out []string
	for id, rl := range logs {
		for _, rec := range rl.Snapshot(reqlog.Filter{Outcome: reqlog.OutcomeShed}) {
			retained++
			if rec.Topic == "" || rec.ShedReason == "" {
				out = append(out, fmt.Sprintf(
					"%s retained a shed record without attribution (topic=%q reason=%q)",
					id, rec.Topic, rec.ShedReason))
			}
		}
	}
	if retained < observed {
		out = append(out, fmt.Sprintf(
			"consumer observed %d sheds but supplier tail rings retain only %d",
			observed, retained))
	}
	return out
}

// AlertLatency checks the alerting plane's detection promise (it only
// applies to worlds built with SLO): any injected fault that silences a
// supplier's telemetry — a partition or a crash — must drive the freshness
// objective for that supplier to critical within Bound ticks of the inject.
// The engine's multi-window burn math needs the silence to fill both windows
// before paging, so the bound is wider than raw staleness marking; faults
// reverted before the deadline are skipped, like every detection invariant
// here — a short blip may legitimately never page.
type AlertLatency struct {
	// Bound is the tick budget from inject to critical (default 10: ~3 ticks
	// for staleness marking plus ~4 for the long window to cross half-stale,
	// with margin).
	Bound int
}

// Name implements Invariant.
func (AlertLatency) Name() string { return "alert-latency" }

// Check implements Invariant.
func (a AlertLatency) Check(w *World, events []Event) []string {
	if w.SLO() == nil {
		return nil
	}
	bound := a.Bound
	if bound <= 0 {
		bound = 10
	}
	trace := w.AlertTrace()
	n := len(trace)
	isSupplier := make(map[string]bool, len(w.supplier))
	for _, id := range w.supplier {
		isSupplier[id] = true
	}
	var out []string
	for idx, ev := range events {
		if ev.Phase != PhaseInject || !isSupplier[ev.Target] {
			continue
		}
		if ev.Fault != FaultPartition && ev.Fault != FaultCrashSupplier {
			continue
		}
		from := w.TickOf(ev.At)
		// Revert tick: end of run unless an explicit (non-permanent) revert
		// for this target lands earlier.
		revert := n
		for _, rv := range events[idx+1:] {
			if rv.Phase == PhaseRevert && rv.Fault == ev.Fault && rv.Target == ev.Target {
				if rv.At < permanentAt {
					revert = w.TickOf(rv.At)
				}
				break
			}
		}
		if revert > n {
			revert = n
		}
		deadline := from + bound
		if deadline >= revert || deadline >= n {
			continue // fault too short or too late in the run to judge
		}
		if !freshnessCriticalWithin(trace, ev.Target, from, deadline) {
			out = append(out, fmt.Sprintf(
				"%s of %s at %v (tick %d) never drove %s critical within %d ticks",
				ev.Fault, ev.Target, ev.At, from, FreshnessObjective, bound))
		}
	}
	return out
}

// PriorityIsolation checks the admission controller's overload contract (it
// only applies to worlds built with Overload): the control lane's reserved
// slot means a control probe is never shed while the same supplier is
// admitting bulk traffic. A tick where the control probe came back shed AND
// any of that tick's bulk burst was admitted and served is a violation —
// the server had capacity, and spent it on lower-priority work.
//
// Sheds are judged, not raw failures: a control probe lost to the radio or
// a partition times out rather than sheds, so network faults cannot fake a
// violation.
type PriorityIsolation struct{}

// Name implements Invariant.
func (PriorityIsolation) Name() string { return "priority-isolation" }

// Check implements Invariant.
func (PriorityIsolation) Check(w *World, _ []Event) []string {
	ctlShed := w.ControlShedTrace()
	bulkAdm := w.BulkAdmitTrace()
	var out []string
	for i, shed := range ctlShed {
		if shed && i < len(bulkAdm) && bulkAdm[i] > 0 {
			out = append(out, fmt.Sprintf(
				"tick %d: control probe shed while %d bulk requests were admitted", i, bulkAdm[i]))
		}
	}
	return out
}
