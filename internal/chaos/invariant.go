package chaos

import "fmt"

// Invariant is a property of a finished chaos run. Check returns one message
// per violation (empty means the invariant held).
type Invariant interface {
	Name() string
	Check(w *World, events []Event) []string
}

// AckedDurable checks at-least-once durability: every operation the consumer
// holds an ack for must exist in some supplier's recovered state. A supplier
// only acks after its recovery manager logged and applied the operation, so
// an acked-but-missing key means the stack lost an acknowledged write.
type AckedDurable struct{}

// Name implements Invariant.
func (AckedDurable) Name() string { return "acked-durable" }

// Check implements Invariant.
func (AckedDurable) Check(w *World, _ []Event) []string {
	var out []string
	for _, key := range w.Acked() {
		if !w.Durable(key) {
			out = append(out, fmt.Sprintf("acked op %s not durable on any supplier", key))
		}
	}
	return out
}

// RebindRecovery checks the §3.4 graceful-degradation bound: after a
// supplier crash is injected, the consumer must complete a successful
// request within Bound ticks — the binding has other suppliers to re-match
// to, and fault windows never overlap.
type RebindRecovery struct {
	// Bound is the tick budget (default 8).
	Bound int
}

// Name implements Invariant.
func (r RebindRecovery) Name() string { return "rebind-recovery" }

// Check implements Invariant.
func (r RebindRecovery) Check(w *World, events []Event) []string {
	bound := r.Bound
	if bound <= 0 {
		bound = 8
	}
	ticks := w.TickOK()
	var out []string
	for _, ev := range events {
		if ev.Phase != PhaseInject || ev.Fault != FaultCrashSupplier {
			continue
		}
		from := w.TickOf(ev.At)
		if from+bound >= len(ticks) {
			continue // crash too close to the end of the run to judge
		}
		recovered := false
		for i := from; i <= from+bound; i++ {
			if ticks[i] {
				recovered = true
				break
			}
		}
		if !recovered {
			out = append(out, fmt.Sprintf(
				"no successful request within %d ticks of %s crash at %v (tick %d)",
				bound, ev.Target, ev.At, from))
		}
	}
	return out
}

// DiscoveryConvergence checks that adaptive discovery converges to a working
// mode after the centralized registry dies: within Bound ticks of the kill,
// a lookup probe must succeed again (via flood fail-over).
type DiscoveryConvergence struct {
	// Bound is the tick budget (default 8).
	Bound int
}

// Name implements Invariant.
func (d DiscoveryConvergence) Name() string { return "discovery-convergence" }

// Check implements Invariant.
func (d DiscoveryConvergence) Check(w *World, events []Event) []string {
	bound := d.Bound
	if bound <= 0 {
		bound = 8
	}
	lookups := w.LookupOK()
	var out []string
	for _, ev := range events {
		if ev.Phase != PhaseInject || ev.Fault != FaultKillRegistry {
			continue
		}
		from := w.TickOf(ev.At)
		if from+bound >= len(lookups) {
			continue
		}
		converged := false
		for i := from; i <= from+bound; i++ {
			if lookups[i] {
				converged = true
				break
			}
		}
		if !converged {
			out = append(out, fmt.Sprintf(
				"no successful lookup within %d ticks of registry kill at %v (tick %d)",
				bound, ev.At, from))
		}
	}
	return out
}

// WALReplayClean surfaces replay-fidelity violations recorded by wal-crash
// injections: a reopened WAL must reproduce every acknowledged operation.
type WALReplayClean struct{}

// Name implements Invariant.
func (WALReplayClean) Name() string { return "wal-replay-clean" }

// Check implements Invariant.
func (WALReplayClean) Check(w *World, _ []Event) []string { return w.WALViolations() }
