package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ndsm/internal/simtime"
)

// recordingInjector logs inject/revert order for engine tests.
type recordingInjector struct {
	log *[]string
}

func (r recordingInjector) Inject(target string) (func() error, error) {
	*r.log = append(*r.log, "inject "+target)
	return func() error {
		*r.log = append(*r.log, "revert "+target)
		return nil
	}, nil
}

func TestEngineAppliesScheduleInOrder(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	e := NewEngine(clock)
	var log []string
	e.Register(FaultLossBurst, recordingInjector{&log})
	e.Register(FaultPartition, recordingInjector{&log})
	e.Load(Schedule{
		{At: 10 * time.Millisecond, Fault: FaultLossBurst, Target: "a", Duration: 20 * time.Millisecond},
		{At: 15 * time.Millisecond, Fault: FaultPartition, Target: "b", Duration: 5 * time.Millisecond},
	})
	for i := 0; i < 10; i++ {
		clock.Advance(5 * time.Millisecond)
		if err := e.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	want := []string{"inject a", "inject b", "revert b", "revert a"}
	if got := strings.Join(log, ", "); got != strings.Join(want, ", ") {
		t.Fatalf("order = %q, want %q", got, strings.Join(want, ", "))
	}
	events := e.Events()
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	// b's window closes at 20ms, before a's at 30ms: reverts win time order.
	if events[2].Target != "b" || events[2].Phase != PhaseRevert || events[2].At != 20*time.Millisecond {
		t.Fatalf("unexpected third event %+v", events[2])
	}
}

func TestEngineFinishRevertsPermanentFaults(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	e := NewEngine(clock)
	var log []string
	e.Register(FaultCrashSupplier, recordingInjector{&log})
	e.Load(Schedule{{At: time.Millisecond, Fault: FaultCrashSupplier, Target: "s0"}})
	clock.Advance(time.Second)
	if err := e.Step(); err != nil {
		t.Fatalf("step: %v", err)
	}
	if got := strings.Join(log, ", "); got != "inject s0" {
		t.Fatalf("before finish: %q", got)
	}
	if err := e.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if got := strings.Join(log, ", "); got != "inject s0, revert s0" {
		t.Fatalf("after finish: %q", got)
	}
}

func TestEngineUnknownFault(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	e := NewEngine(clock)
	e.Load(Schedule{{At: time.Millisecond, Fault: "no-such-fault"}})
	clock.Advance(time.Second)
	if err := e.Step(); err == nil {
		t.Fatal("expected an error for an unregistered fault kind")
	}
}

func TestGenerateDeterministicAndNonOverlapping(t *testing.T) {
	cfg := GeneratorConfig{
		Seed:    42,
		Horizon: 4 * time.Second,
		Windows: 6,
		Choices: []FaultChoice{
			{Kind: FaultLossBurst, Targets: []string{"0.4"}},
			{Kind: FaultCrashSupplier, Targets: []string{"s0", "s1"}},
			{Kind: FaultWALCrash, Targets: []string{"s0"}, Instant: true},
		},
	}
	a, b := Generate(cfg), Generate(cfg)
	if a.String() != b.String() {
		t.Fatalf("same seed produced different schedules:\n%s\nvs\n%s", a, b)
	}
	if len(a) != cfg.Windows {
		t.Fatalf("generated %d steps, want %d", len(a), cfg.Windows)
	}
	for i := range a {
		if i > 0 {
			prevEnd := a[i-1].At + a[i-1].Duration
			if a[i].At <= prevEnd {
				t.Fatalf("windows overlap: step %d starts at %v, step %d ends at %v",
					i, a[i].At, i-1, prevEnd)
			}
		}
	}
	cfg.Seed = 43
	if c := Generate(cfg); c.String() == a.String() {
		t.Fatalf("different seeds produced identical schedules")
	}
}

// shortScenario keeps wall time per scenario low for short mode.
func shortScenario(seed int64) ScenarioConfig {
	return ScenarioConfig{Seed: seed, Ticks: 60, Windows: 4}
}

func TestScenarioMatrixShort(t *testing.T) {
	seeds := []int64{1, 2}
	if !testing.Short() {
		seeds = []int64{1, 2, 3, 4, 5, 6}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res, err := RunScenario(shortScenario(seed))
			if err != nil {
				t.Fatalf("scenario: %v", err)
			}
			if len(res.Events) == 0 {
				t.Fatalf("no fault events applied")
			}
			if res.TicksOK == 0 {
				t.Fatalf("no tick succeeded at all")
			}
			for _, v := range res.Violations {
				t.Errorf("seed %d violation: %s", seed, v)
			}
		})
	}
}

func TestScenarioReproducible(t *testing.T) {
	const seed = 7
	a, err := RunScenario(shortScenario(seed))
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := RunScenario(shortScenario(seed))
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Schedule.String() != b.Schedule.String() {
		t.Fatalf("same seed, different schedules:\n%s\nvs\n%s", a.Schedule, b.Schedule)
	}
	if a.EventsString() != b.EventsString() {
		t.Fatalf("same seed, different event traces:\n%s\nvs\n%s", a.EventsString(), b.EventsString())
	}
	av := strings.Join(a.Violations, "\n")
	bv := strings.Join(b.Violations, "\n")
	if av != bv {
		t.Fatalf("same seed, different verdicts:\n%q\nvs\n%q", av, bv)
	}
}

func TestSoakReportsReproducingSeed(t *testing.T) {
	scenarios := 2
	if !testing.Short() {
		scenarios = 4
	}
	report, err := Soak(SoakConfig{
		Scenarios: scenarios,
		BaseSeed:  11,
		Scenario:  shortScenario(0),
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if len(report.Results) != scenarios {
		t.Fatalf("results = %d, want %d", len(report.Results), scenarios)
	}
	for i, res := range report.Results {
		if res.Seed != 11+int64(i) {
			t.Fatalf("scenario %d ran seed %d, want %d", i, res.Seed, 11+int64(i))
		}
	}
	for _, v := range report.Violations() {
		if !strings.HasPrefix(v, "seed ") {
			t.Fatalf("violation %q lacks a reproducing-seed prefix", v)
		}
		t.Errorf("soak violation: %s", v)
	}
	if !strings.Contains(report.String(), "scenarios clean") {
		t.Fatalf("report summary malformed: %q", report.String())
	}
}

func TestWorldTickOf(t *testing.T) {
	w := &World{cfg: WorldConfig{TickEvery: 50 * time.Millisecond}}
	cases := []struct {
		at   time.Duration
		want int
	}{
		{0, 0},
		{time.Millisecond, 0},
		{50 * time.Millisecond, 0},
		{51 * time.Millisecond, 1},
		{100 * time.Millisecond, 1},
		{101 * time.Millisecond, 2},
	}
	for _, c := range cases {
		if got := w.TickOf(c.at); got != c.want {
			t.Errorf("TickOf(%v) = %d, want %d", c.at, got, c.want)
		}
	}
}

// TestTracedScenarioCollectsSpans: a clean traced run collects a causal
// timeline but dumps no file.
func TestTracedScenarioCollectsSpans(t *testing.T) {
	dir := t.TempDir()
	cfg := shortScenario(1)
	cfg.TraceDir = dir
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	for _, v := range res.Violations {
		t.Fatalf("expected a clean run, got violation: %s", v)
	}
	if res.Spans == 0 {
		t.Fatal("traced scenario collected no spans")
	}
	if res.TraceFile != "" {
		t.Fatalf("clean run dumped a trace file: %s", res.TraceFile)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("clean run left files in TraceDir: %v", entries)
	}
}

// TestViolatingScenarioDumpsTrace: any violation on a traced run — here a
// deterministic inject error from a schedule naming an unknown fault — dumps
// the full causal trace as Chrome trace-event JSON next to the seed.
func TestViolatingScenarioDumpsTrace(t *testing.T) {
	dir := t.TempDir()
	cfg := shortScenario(9)
	cfg.TraceDir = dir
	cfg.Schedule = Schedule{
		{At: 100 * time.Millisecond, Fault: FaultKind("no-such-fault"), Target: "x"},
	}
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("unknown fault kind produced no violation")
	}
	want := filepath.Join(dir, "chaos-seed-9.json")
	if res.TraceFile != want {
		t.Fatalf("TraceFile = %q, want %q", res.TraceFile, want)
	}
	data, err := os.ReadFile(want)
	if err != nil {
		t.Fatalf("trace dump missing: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("dump is not Chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("dump has no trace events")
	}
	// The soak report points at the dump.
	report := &SoakReport{Results: []*ScenarioResult{res}}
	if !strings.Contains(report.String(), want) {
		t.Errorf("soak report does not mention the trace file:\n%s", report.String())
	}
}
