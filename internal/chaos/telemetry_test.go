package chaos

import (
	"testing"
	"time"

	"ndsm/internal/simtime"
)

// partitionSchedule severs every link of one node for a fixed tick window —
// the telemetry plane's canonical failure: the node keeps running but its
// reports stop arriving at the aggregator.
func partitionSchedule(target string, fromTick, ticks int, tickEvery time.Duration) Schedule {
	return Schedule{{
		At:       time.Duration(fromTick) * tickEvery,
		Fault:    FaultPartition,
		Target:   target,
		Duration: time.Duration(ticks) * tickEvery,
	}}
}

// TestTelemetryFreshnessAroundPartition drives a telemetry world directly and
// watches one supplier's freshness verdict flip stale while partitioned from
// the aggregator and fresh again after the heal.
func TestTelemetryFreshnessAroundPartition(t *testing.T) {
	const tickEvery = 50 * time.Millisecond
	vclock := simtime.NewVirtual(time.Unix(0, 0))
	w, err := NewWorld(WorldConfig{
		Seed:      1,
		TickEvery: tickEvery,
		Clock:     vclock,
		Telemetry: true,
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	defer w.Close() //nolint:errcheck

	engine := NewEngine(vclock)
	w.RegisterInjectors(engine)
	const total = 30
	// Partition s2: it is not the initially bound supplier, so the workload
	// keeps flowing and the run isolates the telemetry plane's reaction.
	sched := partitionSchedule("s2", 5, 12, tickEvery)
	// The engine applies an action during the first tick whose clock has
	// passed its offset, so map schedule time to tick indices the same way
	// the invariants do.
	cutAt := w.TickOf(sched[0].At)
	healTick := w.TickOf(sched[0].At + sched[0].Duration)
	engine.Load(sched)

	for i := 0; i < total; i++ {
		vclock.Advance(tickEvery)
		if err := engine.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		w.Tick(i)
	}
	if err := engine.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}

	if w.Aggregator() == nil {
		t.Fatal("telemetry world has no aggregator")
	}
	fresh := w.FreshTrace()
	if len(fresh) != total {
		t.Fatalf("freshness trace has %d entries, want %d", len(fresh), total)
	}

	// Every supplier publishes on tick 0, so the whole fleet starts fresh.
	for _, id := range w.SupplierIDs() {
		if !fresh[0][id] {
			t.Errorf("%s not fresh at tick 0", id)
		}
	}

	// The partitioned supplier must be marked stale within the bound
	// (staleness is 2.5 ticks; 5 leaves margin), and stay stale until heal.
	staleAt := -1
	for i := cutAt; i < healTick; i++ {
		if !fresh[i]["s2"] {
			staleAt = i
			break
		}
	}
	if staleAt < 0 {
		t.Fatalf("s2 never stale while partitioned; trace: %v", fresh[cutAt:healTick])
	}
	if staleAt > cutAt+5 {
		t.Errorf("s2 stale only at tick %d, budget was tick %d", staleAt, cutAt+5)
	}
	for i := staleAt; i < healTick; i++ {
		if fresh[i]["s2"] {
			t.Errorf("s2 flapped back to fresh at tick %d while still partitioned", i)
		}
	}

	// After the heal the next successful publish must restore freshness.
	recovered := -1
	for i := healTick; i < total; i++ {
		if fresh[i]["s2"] {
			recovered = i
			break
		}
	}
	if recovered < 0 {
		t.Fatalf("s2 never fresh after heal at tick %d; trace: %v", healTick, fresh[healTick:])
	}
	if recovered > healTick+5 {
		t.Errorf("s2 fresh only at tick %d, budget was tick %d", recovered, healTick+5)
	}

	// The unpartitioned suppliers must stay fresh for the whole run.
	for i, m := range fresh {
		for _, id := range []string{"s0", "s1"} {
			if !m[id] {
				t.Errorf("%s stale at tick %d with no fault on it", id, i)
			}
		}
	}

	// The aggregator's merged view carries one series set per supplier.
	view := w.Aggregator().View()
	if len(view.Nodes) != len(w.SupplierIDs()) {
		t.Fatalf("cluster view has %d nodes, want %d", len(view.Nodes), len(w.SupplierIDs()))
	}
}

// TestTelemetryScenarioInvariantClean runs the same partition window through
// RunScenario with telemetry on: the telemetry-freshness invariant must judge
// the run clean, alongside every pre-existing invariant.
func TestTelemetryScenarioInvariantClean(t *testing.T) {
	const tickEvery = 50 * time.Millisecond
	res, err := RunScenario(ScenarioConfig{
		Seed:      2,
		Ticks:     30,
		TickEvery: tickEvery,
		Telemetry: true,
		Schedule:  partitionSchedule("s1", 6, 10, tickEvery),
	})
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestTelemetryInvariantSkipsPlainWorlds guards the soak path: worlds built
// without telemetry carry no aggregator, and the invariant must pass through
// without verdicts rather than flag every partition as undetected.
func TestTelemetryInvariantSkipsPlainWorlds(t *testing.T) {
	const tickEvery = 50 * time.Millisecond
	res, err := RunScenario(ScenarioConfig{
		Seed:      3,
		Ticks:     20,
		TickEvery: tickEvery,
		Schedule:  partitionSchedule("s1", 4, 8, tickEvery),
	})
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
}
