// Package chaos is a deterministic, seeded fault-injection engine for the
// middleware stack. The paper's central robustness claim (§3.4/§3.8) is
// graceful degradation in the presence of failures; this package turns that
// claim into a repeatable experiment instead of an ad-hoc kill loop.
//
// The pieces compose:
//
//   - Schedule: a declarative list of {at, fault, target, duration} steps on
//     a simtime clock. Generate derives one deterministically from a seed.
//   - Engine: applies due steps as the clock advances, tracks the revert of
//     every windowed fault, and records an event trace.
//   - Injector: one per fault kind; the chaos World wires them to the netsim
//     substrate (loss bursts, latency spikes, partitions), to node lifecycle
//     (supplier crash/restart, registry kill), and to the recovery WAL
//     (crash-replay cycles).
//   - Invariant: checkers over the finished run (at-least-once durability,
//     re-bind bounds, discovery convergence, WAL replay fidelity).
//   - Soak: runs N seeded scenarios and reports violations with the
//     reproducing seed.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"ndsm/internal/simtime"
)

// FaultKind names one class of injectable fault.
type FaultKind string

// The fault kinds the standard World knows how to inject. The engine itself
// is open: any kind with a registered Injector works.
const (
	// FaultLossBurst raises the substrate's packet loss rate for the window.
	// Target is the burst loss rate, e.g. "0.4" (default 0.5).
	FaultLossBurst FaultKind = "loss-burst"
	// FaultLatencySpike raises one-hop delivery latency for the window.
	// Target is the spike latency, e.g. "30ms".
	FaultLatencySpike FaultKind = "latency-spike"
	// FaultPartition severs every link of the target node for the window.
	FaultPartition FaultKind = "partition"
	// FaultCrashSupplier crash-stops the target supplier node; the revert
	// restarts it.
	FaultCrashSupplier FaultKind = "crash-supplier"
	// FaultKillRegistry crash-stops the centralized registry node, forcing
	// adaptive discovery to fail over to flooding; the revert restarts it.
	FaultKillRegistry FaultKind = "kill-registry"
	// FaultKillRegistryNode crash-stops one member of a registry cluster
	// (target is the member ID, e.g. "registry1"); the revert restarts it.
	// Replication and lookup quorums are expected to absorb the loss.
	FaultKillRegistryNode FaultKind = "kill-registry-node"
	// FaultWALCrash crashes the target supplier's durable storage: the WAL is
	// closed mid-run, reopened, and replayed into a fresh state machine.
	// Instantaneous (no revert window).
	FaultWALCrash FaultKind = "wal-crash"
)

// Step is one scheduled fault.
type Step struct {
	// At is when the fault is injected, measured from the engine's start on
	// its clock.
	At time.Duration
	// Fault selects the registered injector.
	Fault FaultKind
	// Target is injector-specific (a node ID, a rate, a latency).
	Target string
	// Duration is how long the fault lasts before its revert runs. Zero or
	// negative means permanent: the revert (if the injector returned one)
	// only runs at Finish.
	Duration time.Duration
}

// Schedule is a fault plan, ordered by At.
type Schedule []Step

// String renders the schedule canonically — two runs are identical iff their
// Schedule strings are equal.
func (s Schedule) String() string {
	var b strings.Builder
	for _, st := range s {
		fmt.Fprintf(&b, "%v %s %q for %v\n", st.At, st.Fault, st.Target, st.Duration)
	}
	return b.String()
}

// Injector applies one kind of fault. Inject returns the revert that undoes
// the fault (nil when the fault has no undo, e.g. a WAL crash-replay cycle).
type Injector interface {
	Inject(target string) (revert func() error, err error)
}

// InjectorFunc adapts a function to the Injector interface.
type InjectorFunc func(target string) (func() error, error)

// Inject implements Injector.
func (f InjectorFunc) Inject(target string) (func() error, error) { return f(target) }

// Event phases.
const (
	PhaseInject = "inject"
	PhaseRevert = "revert"
)

// Event records one applied schedule action.
type Event struct {
	// At is the action's scheduled offset (not the clock reading when it was
	// applied — schedules, and therefore event traces, are deterministic).
	At     time.Duration
	Fault  FaultKind
	Target string
	Phase  string
}

func (e Event) String() string {
	return fmt.Sprintf("%v %s %s %q", e.At, e.Phase, e.Fault, e.Target)
}

// pendingRevert is a windowed fault waiting to be undone.
type pendingRevert struct {
	at   time.Duration
	step Step
	fn   func() error
}

// Engine drives a Schedule against registered injectors. It is not safe for
// concurrent use: one goroutine advances the clock and calls Step.
type Engine struct {
	clock     simtime.Clock
	start     time.Time
	injectors map[FaultKind]Injector
	pending   []Step          // sorted by At
	reverts   []pendingRevert // sorted by at; permanent faults sit at the tail
	events    []Event
}

// NewEngine creates an engine on the given clock (wall clock if nil). The
// schedule origin is the clock reading at Load.
func NewEngine(clock simtime.Clock) *Engine {
	if clock == nil {
		clock = simtime.Real{}
	}
	return &Engine{clock: clock, start: clock.Now(), injectors: make(map[FaultKind]Injector)}
}

// Register installs the injector for a fault kind.
func (e *Engine) Register(kind FaultKind, inj Injector) { e.injectors[kind] = inj }

// Load installs the schedule and re-anchors the engine's origin at the
// clock's current reading.
func (e *Engine) Load(s Schedule) {
	e.pending = append(Schedule(nil), s...)
	sort.SliceStable(e.pending, func(i, j int) bool { return e.pending[i].At < e.pending[j].At })
	e.start = e.clock.Now()
}

// Elapsed is the schedule time: how far the clock has moved since Load.
func (e *Engine) Elapsed() time.Duration { return e.clock.Now().Sub(e.start) }

// Events returns the applied actions so far, in application order.
func (e *Engine) Events() []Event { return append([]Event(nil), e.events...) }

// permanentAt marks reverts that only Finish applies.
const permanentAt = time.Duration(1<<63 - 1)

// Step applies every due action — injections whose At has passed and reverts
// whose window has closed — in global schedule order, reverts winning ties.
// The first injector or revert error is returned after all due actions ran.
func (e *Engine) Step() error {
	now := e.Elapsed()
	var firstErr error
	for {
		dueRevert := len(e.reverts) > 0 && e.reverts[0].at <= now
		dueInject := len(e.pending) > 0 && e.pending[0].At <= now
		switch {
		case dueRevert && (!dueInject || e.reverts[0].at <= e.pending[0].At):
			r := e.reverts[0]
			e.reverts = e.reverts[1:]
			if err := r.fn(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("chaos: revert %s %q: %w", r.step.Fault, r.step.Target, err)
			}
			e.events = append(e.events, Event{At: r.at, Fault: r.step.Fault, Target: r.step.Target, Phase: PhaseRevert})
		case dueInject:
			s := e.pending[0]
			e.pending = e.pending[1:]
			if err := e.inject(s); err != nil && firstErr == nil {
				firstErr = err
			}
		default:
			return firstErr
		}
	}
}

func (e *Engine) inject(s Step) error {
	inj := e.injectors[s.Fault]
	if inj == nil {
		return fmt.Errorf("chaos: no injector registered for %s", s.Fault)
	}
	revert, err := inj.Inject(s.Target)
	if err != nil {
		return fmt.Errorf("chaos: inject %s %q: %w", s.Fault, s.Target, err)
	}
	e.events = append(e.events, Event{At: s.At, Fault: s.Fault, Target: s.Target, Phase: PhaseInject})
	if revert == nil {
		return nil
	}
	at := permanentAt
	if s.Duration > 0 {
		at = s.At + s.Duration
	}
	r := pendingRevert{at: at, step: s, fn: revert}
	i := sort.Search(len(e.reverts), func(i int) bool { return e.reverts[i].at > at })
	e.reverts = append(e.reverts, pendingRevert{})
	copy(e.reverts[i+1:], e.reverts[i:])
	e.reverts[i] = r
	return nil
}

// Finish injects nothing further and applies every outstanding revert in
// window order, restoring the world to its pre-fault configuration. Events
// for early-applied reverts keep their scheduled At.
func (e *Engine) Finish() error {
	e.pending = nil
	var firstErr error
	for _, r := range e.reverts {
		if err := r.fn(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("chaos: revert %s %q: %w", r.step.Fault, r.step.Target, err)
		}
		e.events = append(e.events, Event{At: r.at, Fault: r.step.Fault, Target: r.step.Target, Phase: PhaseRevert})
	}
	e.reverts = nil
	return firstErr
}

// FaultChoice is one option the schedule generator can draw.
type FaultChoice struct {
	Kind FaultKind
	// Targets to draw from (empty means an empty target string).
	Targets []string
	// Instant marks faults with no revert window (e.g. WAL crash cycles).
	Instant bool
}

// GeneratorConfig parameterizes Generate.
type GeneratorConfig struct {
	// Seed fixes the drawn schedule completely.
	Seed int64
	// Horizon is the schedule's total span.
	Horizon time.Duration
	// Windows is how many faults to draw. The horizon is divided into this
	// many equal windows with one fault each; windows never overlap, so
	// invariant bounds (time-to-recover after a fault clears) stay checkable.
	Windows int
	// Choices is the fault population to draw from.
	Choices []FaultChoice
}

// Generate draws a deterministic schedule: one fault per window, injected in
// the window's first half and reverted by its seventh eighth, leaving at
// least a quarter window of fault-free recovery room before the next fault.
func Generate(cfg GeneratorConfig) Schedule {
	if cfg.Windows <= 0 || cfg.Horizon <= 0 || len(cfg.Choices) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	window := cfg.Horizon / time.Duration(cfg.Windows)
	if window < 8 {
		return nil
	}
	out := make(Schedule, 0, cfg.Windows)
	for i := 0; i < cfg.Windows; i++ {
		c := cfg.Choices[rng.Intn(len(cfg.Choices))]
		target := ""
		if len(c.Targets) > 0 {
			target = c.Targets[rng.Intn(len(c.Targets))]
		}
		at := time.Duration(i)*window + window/8 + time.Duration(rng.Int63n(int64(window/4)))
		dur := window / 2
		if c.Instant {
			dur = 0
		}
		out = append(out, Step{At: at, Fault: c.Kind, Target: target, Duration: dur})
	}
	return out
}
