package chaos

import (
	"os"
	"testing"
	"time"

	"ndsm/internal/simtime"
)

// registryKillSchedule crash-kills one cluster member for a fixed window,
// with nothing else going on — the cleanest stage for watching replication
// and the lookup cache absorb the loss.
func registryKillSchedule(target string, fromTick, ticks int, tickEvery time.Duration) Schedule {
	return Schedule{{
		At:       time.Duration(fromTick) * tickEvery,
		Fault:    FaultKillRegistryNode,
		Target:   target,
		Duration: time.Duration(ticks) * tickEvery,
	}}
}

// TestClusterWorldAbsorbsMemberKill drives a 3-member RF=2 cluster world
// directly and inspects the per-tick cluster probe trace: after the detection
// allowance, a single member kill must cost the consumer zero cached-cluster
// lookups — the acceptance claim behind the whole registry-cluster design.
func TestClusterWorldAbsorbsMemberKill(t *testing.T) {
	const tickEvery = 50 * time.Millisecond
	vclock := simtime.NewVirtual(time.Unix(0, 0))
	w, err := NewWorld(WorldConfig{
		Seed:            1,
		TickEvery:       tickEvery,
		Clock:           vclock,
		Liveness:        true,
		RegistryCluster: 3,
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	defer w.Close() //nolint:errcheck

	if got := len(w.ClusterMembers()); got != 3 {
		t.Fatalf("cluster has %d members, want 3", got)
	}
	if got := w.ReplicationFactor(); got != 2 {
		t.Fatalf("replication factor %d, want the default 2", got)
	}

	engine := NewEngine(vclock)
	w.RegisterInjectors(engine)
	const killAt, killTicks, total = 5, 15, 30
	engine.Load(registryKillSchedule("registry1", killAt, killTicks, tickEvery))

	for i := 0; i < total; i++ {
		vclock.Advance(tickEvery)
		if err := engine.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		w.Tick(i)
	}
	if err := engine.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}

	probes := w.ClusterLookupOK()
	if len(probes) != total {
		t.Fatalf("cluster probe trace has %d entries, want %d", len(probes), total)
	}
	// The kill window, past the allowance: every probe must succeed — two
	// live members clear the N-RF+1=2 lookup quorum and every key has a
	// surviving replica.
	for i := killAt + 3; i < killAt+killTicks; i++ {
		if !probes[i] {
			t.Errorf("cluster lookup failed at tick %d with only registry1 down", i)
		}
	}

	// After the revive, anti-entropy must restore full replication: every
	// live key present on all of its ring owners.
	if msgs := (ClusterReplication{}).Check(w, engine.Events()); len(msgs) > 0 {
		for _, m := range msgs {
			t.Errorf("replication: %s", m)
		}
	}
	// And the availability invariant must agree with the hand check.
	if msgs := (ClusterLookupAvailability{}).Check(w, engine.Events()); len(msgs) > 0 {
		for _, m := range msgs {
			t.Errorf("availability: %s", m)
		}
	}
}

// TestClusterScenarioInvariantsClean is the CI smoke: one full seeded
// scenario on the cluster world, every invariant clean. The generated
// schedule draws single-member kills (never whole-registry kills) because
// StandardChoices sees the cluster.
func TestClusterScenarioInvariantsClean(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{
		Seed:            4,
		Ticks:           40,
		Windows:         3,
		RegistryCluster: 3,
	})
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	for _, ev := range res.Events {
		if ev.Fault == FaultKillRegistry {
			t.Errorf("cluster scenario drew a whole-registry kill: %s", ev)
		}
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestClusterInvariantsSkipPlainWorlds guards the invariant plumbing: the
// cluster checks must be inert on classic single-registry worlds even when
// handed a (bogus) member-kill event.
func TestClusterInvariantsSkipPlainWorlds(t *testing.T) {
	w, err := NewWorld(WorldConfig{Seed: 1})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	defer w.Close() //nolint:errcheck
	events := []Event{{At: 0, Fault: FaultKillRegistryNode, Target: "registry0", Phase: PhaseInject}}
	if msgs := (ClusterLookupAvailability{}).Check(w, events); len(msgs) != 0 {
		t.Errorf("availability check fired on a plain world: %v", msgs)
	}
	if msgs := (ClusterReplication{}).Check(w, events); len(msgs) != 0 {
		t.Errorf("replication check fired on a plain world: %v", msgs)
	}
}

// TestClusterSoak is the acceptance-gate soak: >=20 seeds of the standard
// scenario on a 3-member RF=2 cluster with liveness on, every invariant —
// including cluster-lookup-availability and cluster-replication — clean,
// every violation reproducible by seed.
func TestClusterSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed soak skipped in short mode")
	}
	report, err := Soak(SoakConfig{
		Scenarios: 20,
		BaseSeed:  301,
		Scenario: ScenarioConfig{
			Ticks:           60,
			Windows:         4,
			RegistryCluster: 3,
		},
		TraceDir: os.Getenv("NDSM_CHAOS_TRACE_DIR"),
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	clean := 0
	for _, res := range report.Results {
		if len(res.Violations) == 0 {
			clean++
		}
	}
	for _, v := range report.Violations() {
		t.Errorf("soak violation: %s", v)
	}
	t.Logf("cluster soak: %d/%d scenarios clean", clean, len(report.Results))
}
