package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ndsm/internal/flightrec"
	"ndsm/internal/reqlog"
	"ndsm/internal/simtime"
	"ndsm/internal/slo"
	"ndsm/internal/trace"
)

// ScenarioConfig sizes one seeded chaos scenario.
type ScenarioConfig struct {
	// Seed fixes the fault schedule and the substrate RNG. The same seed
	// reproduces the same schedule and the same invariant verdicts.
	Seed int64
	// Ticks is the workload length (default 90).
	Ticks int
	// TickEvery is the virtual time per tick (default 50ms).
	TickEvery time.Duration
	// Suppliers sizes the world (default 3).
	Suppliers int
	// Windows is how many faults the generator draws (default 5).
	Windows int
	// RebindBound and ConvergeBound are the invariant tick budgets
	// (default 8 each).
	RebindBound   int
	ConvergeBound int
	// SuspectBound is the suspect-before-violate detection budget
	// (default 8).
	SuspectBound int
	// DisableLiveness turns the health layer off: long leases, no failure
	// detector, no breaker — the reactive-only baseline E11 measures
	// against. Scenarios run with liveness on by default.
	DisableLiveness bool
	// Telemetry turns the in-band telemetry plane on: the consumer hosts an
	// aggregator, live suppliers publish one report per tick, and the
	// telemetry-freshness invariant is checked over the run.
	Telemetry bool
	// FreshBound is the telemetry-freshness tick budget (default 5).
	FreshBound int
	// RegistryCluster, when >= 2, runs the replicated sharded registry world
	// of that many members: the generator draws single-member kills instead
	// of whole-registry kills, and the cluster availability and replication
	// invariants are checked over the run.
	RegistryCluster int
	// ReplicationFactor is the cluster's owner-set size (default 2; cluster
	// scenarios only).
	ReplicationFactor int
	// ClusterBound is the cluster-lookup-availability tick allowance after a
	// member kill (default 3).
	ClusterBound int
	// Overload runs the priority-lane overload world: lane-aware admission
	// on every supplier, a per-tick bulk burst plus control probe at the
	// bound supplier, and the priority-isolation invariant checked over the
	// run.
	Overload bool
	// SLO runs the alerting plane (implies Telemetry; see WorldConfig.SLO)
	// and checks the alert-latency invariant: silencing faults must drive
	// the freshness objective critical within AlertBound ticks. Violating
	// runs additionally dump the flight recorder's bundles next to the
	// causal trace when TraceDir is set.
	SLO bool
	// AlertBound is the alert-latency tick budget (default 10).
	AlertBound int
	// NoFaults suppresses schedule generation entirely: the world runs calm.
	// With SLO on, this is the false-positive soak — a calm run must end
	// with zero alert transitions.
	NoFaults bool
	// Schedule overrides the generated fault schedule (Seed still fixes the
	// substrate RNG). Experiments use this to replay one hand-built kill
	// schedule under different world configurations.
	Schedule Schedule
	// Dir overrides the world's WAL root (default: fresh temp dir).
	Dir string
	// TraceDir, when set, runs the whole scenario under a shared tracer and
	// — the payoff — dumps the full causal trace of any violating run as
	// Chrome trace-event JSON at <TraceDir>/chaos-seed-<seed>.json, so a
	// reproducing failure seed arrives with its timeline attached. Clean
	// runs dump nothing.
	TraceDir string
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Ticks <= 0 {
		c.Ticks = 90
	}
	if c.TickEvery <= 0 {
		c.TickEvery = 50 * time.Millisecond
	}
	if c.Suppliers <= 0 {
		c.Suppliers = 3
	}
	if c.Windows <= 0 {
		c.Windows = 5
	}
	if c.RebindBound <= 0 {
		c.RebindBound = 8
	}
	if c.ConvergeBound <= 0 {
		c.ConvergeBound = 8
	}
	return c
}

// ScenarioResult is one scenario's outcome.
type ScenarioResult struct {
	Seed      int64
	Schedule  Schedule
	Events    []Event
	Ticks     int
	TicksOK   int
	LookupsOK int
	Rebinds   int64
	// DeadAttempts counts ticks whose request was aimed at a dead supplier
	// without liveness diversion (see World.DeadAttempts).
	DeadAttempts int64
	// OKByTick is the per-tick request outcome trace.
	OKByTick []bool
	// LookupOKByTick is the per-tick discovery probe trace (through the
	// consumer's full registry view, flood fallback included).
	LookupOKByTick []bool
	// ClusterOKByTick is the per-tick cached cluster-path probe trace (nil
	// for classic single-registry worlds).
	ClusterOKByTick []bool
	// ClusterLookupsOK counts the successful entries of ClusterOKByTick.
	ClusterLookupsOK int
	// Violations holds every invariant violation, prefixed by the invariant
	// name. Empty means the run was clean.
	Violations []string
	// TraceFile is the Chrome trace-event dump of a violating traced run
	// (empty for clean runs or when ScenarioConfig.TraceDir was unset).
	TraceFile string
	// Spans counts the causal spans collected for a traced run.
	Spans int
	// Alerts is every SLO alert transition over the run, in order (empty
	// unless ScenarioConfig.SLO). The calm-world soak asserts it stays
	// empty; faulty runs read detection latency off the At stamps.
	Alerts []slo.Transition
	// FlightFile is the flight-recorder bundle dump of a violating SLO run
	// (empty for clean runs or when TraceDir was unset).
	FlightFile string
	// TailFile is the wide-event shed-record dump of a violating overload
	// run — every supplier's retained shed exemplars, keyed by supplier
	// (empty for clean runs or when TraceDir was unset).
	TailFile string
}

// EventsString renders the applied-event trace canonically.
func (r *ScenarioResult) EventsString() string {
	var b strings.Builder
	for _, ev := range r.Events {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// StandardChoices is the fault population a standard world supports, with
// targets wired to its node IDs.
func StandardChoices(w *World) []FaultChoice {
	sups := w.SupplierIDs()
	registryKill := FaultChoice{Kind: FaultKillRegistry, Targets: []string{RegistryID}}
	if members := w.ClusterMembers(); len(members) > 0 {
		// Cluster worlds have no single registry to kill; the generator draws
		// single-member kills instead, which replication must absorb.
		registryKill = FaultChoice{Kind: FaultKillRegistryNode, Targets: members}
	}
	return []FaultChoice{
		{Kind: FaultLossBurst, Targets: []string{"0.4"}},
		{Kind: FaultLatencySpike, Targets: []string{"30ms"}},
		{Kind: FaultPartition, Targets: sups},
		{Kind: FaultCrashSupplier, Targets: sups},
		registryKill,
		{Kind: FaultWALCrash, Targets: sups, Instant: true},
	}
}

// RunScenario builds a world, generates the seed's fault schedule, drives
// the workload tick by tick with the engine injecting along the way, and
// checks every invariant over the finished run.
//
// Determinism: the schedule and the applied-event trace are pure functions
// of the seed. Per-tick outcomes can shift between runs (concurrent flood
// replies consume substrate RNG draws in nondeterministic order), which is
// why the invariant bounds are set conservatively — verdicts, not individual
// ticks, are the reproducible artifact.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	cfg = cfg.withDefaults()
	vclock := simtime.NewVirtual(time.Unix(0, 0))
	var tracer *trace.Tracer
	var collector *trace.Collector
	if cfg.TraceDir != "" {
		collector = trace.NewCollector(1 << 16)
		// The tracer shares the scenario's virtual clock, so span timestamps
		// land on the same timeline as the fault schedule (tick i starts at
		// i*TickEvery).
		tracer = trace.New(trace.Options{
			Name:      fmt.Sprintf("seed-%d", cfg.Seed),
			Clock:     vclock,
			Collector: collector,
		})
	}
	world, err := NewWorld(WorldConfig{
		Seed:              cfg.Seed,
		Suppliers:         cfg.Suppliers,
		TickEvery:         cfg.TickEvery,
		Clock:             vclock,
		Dir:               cfg.Dir,
		Liveness:          !cfg.DisableLiveness,
		Telemetry:         cfg.Telemetry,
		RegistryCluster:   cfg.RegistryCluster,
		ReplicationFactor: cfg.ReplicationFactor,
		Overload:          cfg.Overload,
		SLO:               cfg.SLO,
		SpanCollector:     collector,
		Tracer:            tracer,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: world seed %d: %w", cfg.Seed, err)
	}
	defer world.Close() //nolint:errcheck

	schedule := cfg.Schedule
	if len(schedule) == 0 && !cfg.NoFaults {
		schedule = Generate(GeneratorConfig{
			Seed:    cfg.Seed,
			Horizon: time.Duration(cfg.Ticks) * cfg.TickEvery,
			Windows: cfg.Windows,
			Choices: StandardChoices(world),
		})
	}
	engine := NewEngine(vclock)
	world.RegisterInjectors(engine)
	engine.Load(schedule)

	var injectErrs []string
	for i := 0; i < cfg.Ticks; i++ {
		vclock.Advance(cfg.TickEvery)
		if err := engine.Step(); err != nil {
			injectErrs = append(injectErrs, err.Error())
		}
		world.Tick(i)
	}
	if err := engine.Finish(); err != nil {
		injectErrs = append(injectErrs, err.Error())
	}
	events := engine.Events()

	res := &ScenarioResult{
		Seed:         cfg.Seed,
		Schedule:     schedule,
		Events:       events,
		Ticks:        cfg.Ticks,
		Rebinds:      world.Binding().Rebinds.Load(),
		DeadAttempts: world.DeadAttempts(),
		OKByTick:     world.TickOK(),
	}
	for _, ok := range world.TickOK() {
		if ok {
			res.TicksOK++
		}
	}
	res.LookupOKByTick = world.LookupOK()
	for _, ok := range res.LookupOKByTick {
		if ok {
			res.LookupsOK++
		}
	}
	res.ClusterOKByTick = world.ClusterLookupOK()
	for _, ok := range res.ClusterOKByTick {
		if ok {
			res.ClusterLookupsOK++
		}
	}
	for _, msg := range injectErrs {
		res.Violations = append(res.Violations, "inject: "+msg)
	}
	res.Alerts = world.AlertTransitions()
	invariants := []Invariant{
		AckedDurable{},
		RebindRecovery{Bound: cfg.RebindBound},
		DiscoveryConvergence{Bound: cfg.ConvergeBound},
		SuspectBeforeViolate{Bound: cfg.SuspectBound},
		TelemetryFreshness{Bound: cfg.FreshBound},
		ClusterLookupAvailability{Bound: cfg.ClusterBound},
		ClusterReplication{},
		WALReplayClean{},
		PriorityIsolation{},
		TailCapture{},
		AlertLatency{Bound: cfg.AlertBound},
	}
	for _, inv := range invariants {
		for _, v := range inv.Check(world, events) {
			res.Violations = append(res.Violations, inv.Name()+": "+v)
		}
	}
	if collector != nil {
		res.Spans = collector.Len()
		if len(res.Violations) > 0 {
			path := filepath.Join(cfg.TraceDir, fmt.Sprintf("chaos-seed-%d.json", cfg.Seed))
			if err := trace.WriteChromeFile(path, collector.Spans()); err != nil {
				res.Violations = append(res.Violations, "trace: dump failed: "+err.Error())
			} else {
				res.TraceFile = path
			}
		}
	}
	// A violating SLO run dumps its post-mortem bundles beside the trace —
	// the black box arrives with the failure report.
	if rec := world.FlightRecorder(); rec != nil && cfg.TraceDir != "" && len(res.Violations) > 0 {
		path := filepath.Join(cfg.TraceDir, fmt.Sprintf("chaos-flight-%d.json", cfg.Seed))
		if err := writeFlightFile(path, rec); err != nil {
			res.Violations = append(res.Violations, "flight: dump failed: "+err.Error())
		} else {
			res.FlightFile = path
		}
	}
	// A violating overload run dumps its shed exemplars too: the tail ring
	// holds exactly the anomalous requests a post-mortem starts from.
	if cfg.TraceDir != "" && len(res.Violations) > 0 {
		if sheds := world.ShedRecords(); len(sheds) > 0 {
			path := filepath.Join(cfg.TraceDir, fmt.Sprintf("chaos-tail-%d.json", cfg.Seed))
			if err := writeTailFile(path, sheds); err != nil {
				res.Violations = append(res.Violations, "tail: dump failed: "+err.Error())
			} else {
				res.TailFile = path
			}
		}
	}
	return res, nil
}

// writeTailFile dumps per-supplier shed wide events to path as one indented
// JSON document.
func writeTailFile(path string, sheds map[string][]reqlog.Record) error {
	data, err := json.MarshalIndent(sheds, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeFlightFile dumps a recorder's retained bundles to path.
func writeFlightFile(path string, rec *flightrec.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// SoakConfig sizes a multi-scenario soak.
type SoakConfig struct {
	// Scenarios is how many seeds to run (default 5).
	Scenarios int
	// BaseSeed is the first seed; scenario i runs seed BaseSeed+i
	// (default 1).
	BaseSeed int64
	// Scenario sizes each run (its Seed field is overridden).
	Scenario ScenarioConfig
	// TraceDir propagates to every scenario (see ScenarioConfig.TraceDir):
	// each violating seed dumps its causal trace there.
	TraceDir string
}

// SoakReport aggregates a soak's scenario results.
type SoakReport struct {
	Results []*ScenarioResult
}

// Soak runs N seeded scenarios and aggregates their results. Any violation
// comes back tagged with the seed that reproduces it.
func Soak(cfg SoakConfig) (*SoakReport, error) {
	if cfg.Scenarios <= 0 {
		cfg.Scenarios = 5
	}
	if cfg.BaseSeed == 0 {
		cfg.BaseSeed = 1
	}
	report := &SoakReport{}
	for i := 0; i < cfg.Scenarios; i++ {
		sc := cfg.Scenario
		sc.Seed = cfg.BaseSeed + int64(i)
		if cfg.TraceDir != "" {
			sc.TraceDir = cfg.TraceDir
		}
		res, err := RunScenario(sc)
		if err != nil {
			return nil, err
		}
		report.Results = append(report.Results, res)
	}
	return report, nil
}

// Violations returns every violation across the soak, each prefixed with
// the reproducing seed.
func (r *SoakReport) Violations() []string {
	var out []string
	for _, res := range r.Results {
		for _, v := range res.Violations {
			out = append(out, fmt.Sprintf("seed %d: %s", res.Seed, v))
		}
	}
	return out
}

// String summarizes the soak, including the reproduction recipe for any
// violation.
func (r *SoakReport) String() string {
	var b strings.Builder
	clean := 0
	for _, res := range r.Results {
		if len(res.Violations) == 0 {
			clean++
		}
	}
	fmt.Fprintf(&b, "chaos soak: %d/%d scenarios clean\n", clean, len(r.Results))
	for _, v := range r.Violations() {
		fmt.Fprintf(&b, "  VIOLATION %s\n", v)
	}
	for _, res := range r.Results {
		if res.TraceFile != "" {
			fmt.Fprintf(&b, "  trace for seed %d: %s\n", res.Seed, res.TraceFile)
		}
		if res.FlightFile != "" {
			fmt.Fprintf(&b, "  flight bundles for seed %d: %s\n", res.Seed, res.FlightFile)
		}
		if res.TailFile != "" {
			fmt.Fprintf(&b, "  shed tail records for seed %d: %s\n", res.Seed, res.TailFile)
		}
	}
	if len(r.Violations()) > 0 {
		b.WriteString("  reproduce with chaos.RunScenario(chaos.ScenarioConfig{Seed: <seed>})\n")
	}
	return b.String()
}
